/**
 * @file
 * Serving-plane throughput: batched vs per-sample inference on every
 * workload, plus serving QPS measured *while* a pipelined training run
 * streams striped commit waves into the store, written to
 * BENCH_serve_throughput.json.
 *
 * The headline gate is the batching win: the batched InferenceEngine
 * must clear 2x the per-sample (batch_size = 1) eval throughput on the
 * LSTM workload, where the per-step projections collapse from
 * batch_size GEMV-shaped calls into one GEMM. The serving-under-load
 * phase records QPS and mean snapshot lag with no gate beyond liveness
 * (at least one query per training round must land).
 */
#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <mutex>
#include <thread>

#include "bench_common.h"
#include "data/synthetic.h"
#include "fl/system.h"
#include "kernels/kernels.h"
#include "ps/ps_server.h"
#include "serve/model_service.h"

using namespace autofl;
using namespace autofl::bench;

namespace {

constexpr int kTestSamples = 384;
constexpr int kBatchedBatch = 16;  // ServeConfig default: the cache knee.

double
now_s()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Samples/sec of repeated full-testset evaluation at one batch size. */
double
eval_samples_per_sec(Workload w, const Dataset &test,
                     const std::vector<float> &weights, int batch_size)
{
    ServeConfig cfg;
    cfg.batch_size = batch_size;
    cfg.workers = 1;  // Isolate batching: one slot, fan-out 1.
    ModelService ms(w, cfg);
    ms.publish(weights);
    const SnapshotHandle h = ms.acquire();

    ms.evaluate(h, test, 1);  // Warm the slot (weight load, caches).
    // Calibrate rep count for a stable >= 0.25 s measurement.
    double t0 = now_s();
    ms.evaluate(h, test, 1);
    const double once = std::max(1e-6, now_s() - t0);
    const int reps = std::max(1, static_cast<int>(0.25 / once));

    t0 = now_s();
    for (int r = 0; r < reps; ++r)
        ms.evaluate(h, test, 1);
    const double elapsed = now_s() - t0;
    return static_cast<double>(test.size()) * reps / elapsed;
}

struct WorkloadRow
{
    Workload workload;
    double per_sample_sps = 0.0;
    double batched_sps = 0.0;
    double speedup() const
    {
        return per_sample_sps > 0.0 ? batched_sps / per_sample_sps : 0.0;
    }
};

WorkloadRow
measure_workload(Workload w)
{
    SyntheticConfig dcfg;
    dcfg.train_samples = 16;
    dcfg.test_samples = kTestSamples;
    dcfg.seed = kBenchSeed;
    const Dataset test = make_dataset(w, dcfg).test;

    Sequential model = make_model(w);
    Rng rng(kBenchSeed);
    model.init_weights(rng);
    const std::vector<float> weights = model.flat_weights();

    WorkloadRow row;
    row.workload = w;
    row.per_sample_sps = eval_samples_per_sec(w, test, weights, 1);
    row.batched_sps = eval_samples_per_sec(w, test, weights, kBatchedBatch);
    return row;
}

struct ServingUnderLoad
{
    double qps = 0.0;
    double rounds_per_sec = 0.0;
    double mean_lag = 0.0;       ///< Mean epochs behind latest at query.
    uint64_t final_epoch = 0;
    int queries = 0;
    double first_acc = 0.0;
    double last_acc = 0.0;
};

/** Serve from two threads while a pipelined SemiAsync run streams. */
ServingUnderLoad
measure_serving_under_load()
{
    constexpr int kDevices = 8;
    constexpr int kRounds = 10;
    constexpr int kServers = 2;

    FlSystemConfig cfg;
    cfg.workload = Workload::CnnMnist;
    cfg.params = {16, 1, kDevices};
    cfg.hyper.lr = 0.05;
    cfg.data.train_samples = 240;
    cfg.data.test_samples = 96;
    cfg.data.noise = 0.6;
    cfg.partition.num_devices = kDevices;
    cfg.seed = kBenchSeed;
    cfg.threads = 4;
    cfg.ps.mode = SyncMode::SemiAsync;
    cfg.ps.staleness_bound = 1;
    cfg.ps.pipeline_depth = 4;
    cfg.ps.sim_device_latency_s = 0.02;
    cfg.serve.batch_size = kBatchedBatch;
    cfg.serve.workers = kServers;
    cfg.serve.max_snapshot_lag = 1;
    FlSystem fl(cfg);
    ModelService &serve = fl.serve();

    std::vector<int> ids(kDevices);
    for (int d = 0; d < kDevices; ++d)
        ids[static_cast<size_t>(d)] = d;

    ServingUnderLoad out;
    std::atomic<bool> stop{false};
    std::atomic<int> queries{0};
    std::mutex acc_mu;
    double lag_sum = 0.0;
    bool first_recorded = false;

    std::vector<std::thread> servers;
    servers.reserve(kServers);
    for (int s = 0; s < kServers; ++s) {
        servers.emplace_back([&] {
            SnapshotHandle h;
            while (!stop.load(std::memory_order_acquire)) {
                serve.refresh(h);
                const double lag = static_cast<double>(
                    serve.latest_epoch() - h.epoch());
                const EvalStats st = serve.evaluate(h, fl.test_set(), 1);
                queries.fetch_add(1, std::memory_order_relaxed);
                std::lock_guard<std::mutex> lk(acc_mu);
                lag_sum += lag;
                if (!first_recorded) {
                    out.first_acc = st.accuracy;
                    first_recorded = true;
                }
                out.last_acc = st.accuracy;
            }
        });
    }

    const double t0 = now_s();
    for (int round = 0; round < kRounds; ++round)
        fl.submit_round(ids, static_cast<uint64_t>(round), nullptr);
    fl.drain();
    const double train_elapsed = now_s() - t0;
    stop.store(true, std::memory_order_release);
    for (auto &t : servers)
        t.join();

    out.queries = queries.load();
    out.qps = out.queries / train_elapsed;
    out.rounds_per_sec = kRounds / train_elapsed;
    out.mean_lag = out.queries > 0 ? lag_sum / out.queries : 0.0;
    out.final_epoch = serve.latest_epoch();
    return out;
}

} // namespace

int
main()
{
    print_banner(std::cout,
                 "Serving-plane throughput: batched (" +
                     std::to_string(kBatchedBatch) +
                     ") vs per-sample inference, " +
                     std::to_string(kTestSamples) + " test samples");

    std::vector<WorkloadRow> rows;
    for (Workload w : all_workloads())
        rows.push_back(measure_workload(w));

    TextTable t;
    t.set_header({"workload", "per-sample (samples/s)",
                  "batched (samples/s)", "speedup"});
    for (const auto &r : rows) {
        t.add_row({workload_name(r.workload),
                   TextTable::num(r.per_sample_sps, 0),
                   TextTable::num(r.batched_sps, 0),
                   ratio(r.batched_sps, r.per_sample_sps)});
    }
    t.render(std::cout);

    double lstm_speedup = 0.0, mobilenet_speedup = 0.0;
    for (const auto &r : rows) {
        if (r.workload == Workload::LstmShakespeare)
            lstm_speedup = r.speedup();
        if (r.workload == Workload::MobileNetImageNet)
            mobilenet_speedup = r.speedup();
    }
    const bool batching_ok = lstm_speedup >= 2.0;
    std::cout << "LSTM batched vs per-sample: "
              << TextTable::num(lstm_speedup, 2) << "x ("
              << (batching_ok ? "PASS" : "FAIL") << " >= 2x)\n";
    // Batching must never LOSE throughput: the pointwise convs that
    // dominate MobileNet used to repack W per sample inside batched
    // infer (0.86x); batch-wide panel reuse in convolve() closed that.
    const bool mobilenet_ok = mobilenet_speedup >= 1.0;
    std::cout << "MobileNet batched vs per-sample: "
              << TextTable::num(mobilenet_speedup, 2) << "x ("
              << (mobilenet_ok ? "PASS" : "FAIL") << " >= 1x)\n\n";

    const ServingUnderLoad load = measure_serving_under_load();
    print_banner(std::cout, "Serving while pipelined training streams");
    TextTable s;
    s.set_header({"serving QPS", "train rounds/s", "mean snapshot lag",
                  "queries", "acc first->last"});
    s.add_row({TextTable::num(load.qps, 1),
               TextTable::num(load.rounds_per_sec, 2),
               TextTable::num(load.mean_lag, 2),
               std::to_string(load.queries),
               TextTable::num(load.first_acc * 100.0, 1) + "% -> " +
                   TextTable::num(load.last_acc * 100.0, 1) + "%"});
    s.render(std::cout);
    const bool serving_ok = load.queries >= 10;  // >= 1 query per round.
    std::cout << "Serving liveness under training load: " << load.queries
              << " queries (" << (serving_ok ? "PASS" : "FAIL")
              << " >= 10)\n";

    std::ofstream json("BENCH_serve_throughput.json");
    json << "{\n  \"kernel_arch\": \""
         << kernels::kernel_arch_name(kernels::current_kernel_arch())
         << "\",\n"
         << "  \"hardware_threads\": "
         << std::thread::hardware_concurrency() << ",\n"
         << "  \"test_samples\": " << kTestSamples << ",\n"
         << "  \"batched_batch_size\": " << kBatchedBatch << ",\n"
         << "  \"lstm_batched_speedup\": " << lstm_speedup << ",\n"
         << "  \"mobilenet_batched_speedup\": " << mobilenet_speedup
         << ",\n"
         << "  \"workloads\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const auto &r = rows[i];
        json << "    {\"workload\": \"" << workload_name(r.workload)
             << "\", \"per_sample_sps\": " << r.per_sample_sps
             << ", \"batched_sps\": " << r.batched_sps
             << ", \"speedup\": " << r.speedup() << "}"
             << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"serving_under_load\": {\"qps\": " << load.qps
         << ", \"train_rounds_per_sec\": " << load.rounds_per_sec
         << ", \"mean_snapshot_lag\": " << load.mean_lag
         << ", \"queries\": " << load.queries
         << ", \"final_epoch\": " << load.final_epoch << "}\n}\n";
    std::cout << "wrote BENCH_serve_throughput.json\n";
    return batching_ok && mobilenet_ok && serving_ok ? 0 : 1;
}
