/**
 * @file
 * Figure 11: AutoFL's adaptability to data heterogeneity — PPW,
 * convergence and accuracy across Ideal IID / Non-IID(50%) /
 * Non-IID(75%) / Non-IID(100%) (CNN-MNIST, S3).
 *
 * Paper-reported shape: heterogeneity-blind baselines suffer badly and
 * stop converging within the round budget at 75-100% non-IID, while
 * AutoFL learns (through the S_Data state) to prefer devices whose
 * shards cover many classes and keeps converging — 4.0x / 5.5x / 9.3x /
 * 7.3x the baseline's energy efficiency across the four scenarios.
 */
#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace autofl;
using namespace autofl::bench;

namespace {

void
run_figure()
{
    for (DataDistribution d : {DataDistribution::IdealIid,
                               DataDistribution::NonIid50,
                               DataDistribution::NonIid75,
                               DataDistribution::NonIid100}) {
        ExperimentConfig cfg =
            base_config(Workload::CnnMnist, ParamSetting::S3,
                        VarianceScenario::None, d);
        cfg.max_rounds = 60;  // Give the baselines room to fall behind.
        std::vector<ExperimentResult> runs;
        for (PolicyKind kind :
             {PolicyKind::FedAvgRandom, PolicyKind::Power,
              PolicyKind::Performance, PolicyKind::AutoFl,
              PolicyKind::OracleFl})
            runs.push_back(run_policy(cfg, kind));
        print_comparison("Fig. 11: data heterogeneity — " +
                             data_distribution_name(d) + " (CNN-MNIST, S3)",
                         runs);
    }
}

/** Micro: local-state encoding for the full fleet. */
void
BM_EncodeLocalStates(benchmark::State &state)
{
    Fleet fleet(FleetMix{}, VarianceScenario::Combined, kBenchSeed);
    fleet.begin_round();
    for (auto _ : state) {
        int acc = 0;
        for (int d = 0; d < fleet.size(); ++d) {
            acc += encode_local(
                make_local_state(fleet.device(d).state(), 5, 10));
        }
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_EncodeLocalStates);

} // namespace

int
main(int argc, char **argv)
{
    run_figure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
