/**
 * @file
 * Figure 10: AutoFL's adaptability to stochastic runtime variance — PPW,
 * convergence and accuracy under (a) no variance, (b) on-device
 * interference, (c) network variance (CNN-MNIST, S3).
 *
 * Paper-reported shape: baselines degrade badly under variance (longer
 * rounds, straggler drops hurting accuracy) while AutoFL keeps picking
 * good participants and targets, improving PPW ~5.1x / 6.9x / 2.6x over
 * FedAvg-Random / Power / Performance and staying close to O_FL.
 */
#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace autofl;
using namespace autofl::bench;

namespace {

void
run_figure()
{
    for (VarianceScenario v : {VarianceScenario::None,
                               VarianceScenario::Interference,
                               VarianceScenario::WeakNetwork}) {
        ExperimentConfig cfg =
            base_config(Workload::CnnMnist, ParamSetting::S3, v);
        std::vector<ExperimentResult> runs;
        for (PolicyKind kind : fig8_policies())
            runs.push_back(run_policy(cfg, kind));
        print_comparison("Fig. 10: adaptability to runtime variance — " +
                             variance_scenario_name(v) + " (CNN-MNIST, S3)",
                         runs);
    }
}

/** Micro: round simulation with 20 participants under variance. */
void
BM_SimulateRound(benchmark::State &state)
{
    Fleet fleet(FleetMix{}, VarianceScenario::Combined, kBenchSeed);
    fleet.begin_round();
    std::vector<ParticipantPlan> plans;
    std::vector<ComputeProfile> profiles;
    for (int i = 0; i < 20; ++i) {
        plans.push_back({i * 10, ExecTarget::Cpu, DvfsLevel::High});
        profiles.push_back({5e7, 0.25, 25000});
    }
    for (auto _ : state) {
        auto exec = simulate_round(fleet, plans, profiles);
        benchmark::DoNotOptimize(exec.energy_participants_j);
    }
}
BENCHMARK(BM_SimulateRound);

} // namespace

int
main(int argc, char **argv)
{
    run_figure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
