/**
 * @file
 * Serving-plane latency and admission control under load, written to
 * BENCH_serve_latency.json.
 *
 * Two measurements on the LSTM workload (the one whose per-step
 * projections collapse best under coalescing):
 *
 *  1. Closed-loop saturation at high concurrency (clients = 16x the
 *     worker slots, each issuing single-sample queries back to back):
 *     per-call submission (every caller pays its own engine forward)
 *     vs dynamic batching through ModelService::submit(). Gate: the
 *     coalesced path clears >= 1.5x the per-call QPS.
 *
 *  2. Open-loop generator at a sweep of offered loads around the
 *     measured capacity: requests fire on a fixed arrival schedule
 *     whether or not earlier ones finished (submit never blocks), and
 *     completion latency is measured from the *scheduled* arrival via
 *     the reply's completion timestamp. Gate: under overload the
 *     bounded queue sheds (typed rejections observed) and the p99 of
 *     admitted requests stays within a capacity-derived bound instead
 *     of growing with the backlog.
 *
 *  3. Two-model isolation through a ServingGateway sharing one slot
 *     pool: model A at a nominal rate, first solo, then with model B
 *     offered 2x the pool's capacity, every request carrying a
 *     feasible deadline. Gates: A's admitted p99 stays within 1.5x of
 *     its solo baseline, A sheds nothing at nominal load, and no
 *     admitted request on either model misses its deadline (work that
 *     cannot make it is shed typed as DeadlineExceeded *before*
 *     executing, never served late).
 */
#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "data/synthetic.h"
#include "kernels/kernels.h"
#include "serve/model_service.h"
#include "serve/serving_gateway.h"
#include "util/stats.h"

using namespace autofl;
using namespace autofl::bench;

namespace {

using Clock = std::chrono::steady_clock;

constexpr Workload kWorkload = Workload::LstmShakespeare;
constexpr int kProbeSamples = 64;   ///< Distinct single-sample inputs.
constexpr int kSlots = 2;           ///< Engine worker slots.
constexpr int kClients = 32;        ///< 16x concurrency over slots.
constexpr int kBatch = 32;
constexpr int kQueueDepth = 64;
constexpr int kBatchTimeoutUs = 200;
constexpr double kClosedLoopSecs = 1.0;
constexpr double kOpenLoopSecs = 1.2;

/**
 * Two-model isolation scenario. Few generator threads and a light
 * nominal rate keep the *generators* schedulable even on small/shared
 * runners — the scenario measures how the gateway shares dispatcher
 * slots, so the load generation itself must never be the bottleneck
 * (32 threads ticking at a 91k QPS schedule on one core would measure
 * OS scheduling delay, not the serving plane). B's overload still
 * offers 2x the measured pool capacity; the deeper per-model queue
 * absorbs generator wakeup bursts so A's nominal traffic is shed only
 * if the serving plane itself falls behind.
 */
constexpr int kIsoClients = 4;          ///< Generator threads per model.
constexpr int kIsoQueueDepth = 256;
constexpr double kIsoNominalFactor = 0.1;   ///< A: well under its share.
constexpr double kIsoOverloadFactor = 2.0;  ///< B: 2x pool capacity.
constexpr double kIsoP99FloorMs = 10.0;     ///< Scheduler-noise floor.

double
secs(Clock::duration d)
{
    return std::chrono::duration<double>(d).count();
}

ServeConfig
serve_config()
{
    ServeConfig cfg;
    cfg.batch_size = kBatch;
    cfg.workers = kSlots;
    cfg.queue_depth = kQueueDepth;
    cfg.batch_timeout_us = kBatchTimeoutUs;
    cfg.shed = ShedPolicy::RejectNew;
    return cfg;
}

/** Single-sample model-ready inputs, cycled by the load generators. */
std::vector<Tensor>
probe_rows(const Dataset &test)
{
    std::vector<Tensor> rows;
    rows.reserve(kProbeSamples);
    for (int i = 0; i < kProbeSamples; ++i)
        rows.push_back(test.batch_x({i}));
    return rows;
}

struct ClosedLoopResult
{
    double qps = 0.0;
    double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
};

/**
 * kClients threads issue single-sample queries back to back for a
 * fixed wall-clock window; per-request latency is the caller-observed
 * round trip. @p dynamic routes through submit(); otherwise every call
 * runs its own engine forward (the PR-4 serving path).
 */
ClosedLoopResult
closed_loop(ModelService &ms, const std::vector<Tensor> &rows,
            bool dynamic)
{
    std::atomic<bool> stop{false};
    std::vector<std::vector<double>> lat(
        static_cast<size_t>(kClients));
    const SnapshotHandle h = ms.acquire();

    std::vector<std::thread> clients;
    clients.reserve(kClients);
    const auto t0 = Clock::now();
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            std::vector<double> &mine =
                lat[static_cast<size_t>(c)];
            size_t i = static_cast<size_t>(c);
            while (!stop.load(std::memory_order_acquire)) {
                Tensor row = rows[i % rows.size()];
                ++i;
                const auto q0 = Clock::now();
                if (dynamic) {
                    const InferenceReply r = ms.query(std::move(row));
                    if (!r.ok())
                        continue;
                } else {
                    ms.engine().forward(h, std::move(row));
                }
                mine.push_back(secs(Clock::now() - q0));
            }
        });
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double>(kClosedLoopSecs));
    stop.store(true, std::memory_order_release);
    for (auto &t : clients)
        t.join();
    const double elapsed = secs(Clock::now() - t0);

    std::vector<double> all;
    for (auto &v : lat)
        all.insert(all.end(), v.begin(), v.end());
    ClosedLoopResult out;
    out.qps = static_cast<double>(all.size()) / elapsed;
    out.p50_ms = percentile(all, 50) * 1e3;
    out.p95_ms = percentile(all, 95) * 1e3;
    out.p99_ms = percentile(all, 99) * 1e3;
    return out;
}

struct OpenLoopResult
{
    double offered_qps = 0.0;
    double goodput_qps = 0.0;   ///< Ok completions per second.
    int requests = 0;
    int ok = 0;
    int shed = 0;
    double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;  ///< Ok only.
};

/**
 * Open-loop generator: request i fires at t0 + i/rate across kClients
 * threads regardless of completions (submit never blocks; sheds
 * resolve immediately). Latency is completion minus *scheduled*
 * arrival, so falling behind shows up as queueing delay, not as a
 * lower offered rate.
 */
OpenLoopResult
open_loop(ModelService &ms, const std::vector<Tensor> &rows,
          double offered_qps)
{
    const int total =
        static_cast<int>(offered_qps * kOpenLoopSecs);
    struct Pending
    {
        Clock::time_point scheduled;
        std::future<InferenceReply> fut;
    };
    std::vector<std::vector<Pending>> pending(
        static_cast<size_t>(kClients));
    const auto t0 = Clock::now() + std::chrono::milliseconds(10);
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            auto &mine = pending[static_cast<size_t>(c)];
            for (int i = c; i < total; i += kClients) {
                const auto at = t0 +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(i / offered_qps));
                std::this_thread::sleep_until(at);
                Tensor row =
                    rows[static_cast<size_t>(i) % rows.size()];
                mine.push_back(
                    {at, ms.submit(std::move(row))});
            }
        });
    }
    for (auto &t : clients)
        t.join();

    OpenLoopResult out;
    out.offered_qps = offered_qps;
    out.requests = total;
    std::vector<double> lat;
    Clock::time_point last_done = t0;
    for (auto &v : pending) {
        for (auto &p : v) {
            const InferenceReply r = p.fut.get();
            if (r.ok()) {
                ++out.ok;
                lat.push_back(secs(r.completed_at - p.scheduled));
                last_done = std::max(last_done, r.completed_at);
            } else {
                ++out.shed;
            }
        }
    }
    const double window = std::max(1e-9, secs(last_done - t0));
    out.goodput_qps = out.ok / window;
    out.p50_ms = percentile(lat, 50) * 1e3;
    out.p95_ms = percentile(lat, 95) * 1e3;
    out.p99_ms = percentile(lat, 99) * 1e3;
    return out;
}

struct IsolationResult
{
    double offered_qps = 0.0;
    int requests = 0;
    int ok = 0;
    int shed = 0;           ///< Admission-control sheds (queue full).
    int deadline_shed = 0;  ///< Typed DeadlineExceeded (never executed).
    int missed = 0;         ///< Admitted, served, but past the deadline.
    double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;  ///< Admitted (Ok).
};

/**
 * Open-loop generator against one gateway model: same fixed arrival
 * schedule as open_loop(), but every request carries an absolute
 * deadline of scheduled-arrival + @p deadline_slack_us. A reply that
 * comes back Ok *after* its deadline counts as missed — the SLO
 * failure mode the feasibility shed exists to prevent.
 */
IsolationResult
gateway_open_loop(ServingGateway &gw, const std::string &key,
                  const std::vector<Tensor> &rows, double offered_qps,
                  uint64_t deadline_slack_us)
{
    const int total = static_cast<int>(offered_qps * kOpenLoopSecs);
    struct Pending
    {
        Clock::time_point scheduled;
        uint64_t deadline_us = 0;
        std::future<InferenceReply> fut;
    };
    std::vector<std::vector<Pending>> pending(
        static_cast<size_t>(kIsoClients));
    const auto t0 = Clock::now() + std::chrono::milliseconds(10);
    std::vector<std::thread> clients;
    clients.reserve(kIsoClients);
    for (int c = 0; c < kIsoClients; ++c) {
        clients.emplace_back([&, c] {
            auto &mine = pending[static_cast<size_t>(c)];
            for (int i = c; i < total; i += kIsoClients) {
                const auto at = t0 +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(i / offered_qps));
                std::this_thread::sleep_until(at);
                SubmitOptions opts;
                // serve_now_us() and Clock share the steady epoch.
                opts.deadline_us =
                    static_cast<uint64_t>(
                        std::chrono::duration_cast<
                            std::chrono::microseconds>(
                            at.time_since_epoch())
                            .count()) +
                    deadline_slack_us;
                Tensor row =
                    rows[static_cast<size_t>(i) % rows.size()];
                mine.push_back({at, opts.deadline_us,
                                gw.submit(key, std::move(row), false,
                                          opts)});
            }
        });
    }
    for (auto &t : clients)
        t.join();

    IsolationResult out;
    out.offered_qps = offered_qps;
    out.requests = total;
    std::vector<double> lat;
    for (auto &v : pending) {
        for (auto &p : v) {
            const InferenceReply r = p.fut.get();
            if (r.ok()) {
                ++out.ok;
                lat.push_back(secs(r.completed_at - p.scheduled));
                const uint64_t done_us = static_cast<uint64_t>(
                    std::chrono::duration_cast<
                        std::chrono::microseconds>(
                        r.completed_at.time_since_epoch())
                        .count());
                if (done_us > p.deadline_us)
                    ++out.missed;
            } else if (r.status == ReplyStatus::DeadlineExceeded) {
                ++out.deadline_shed;
            } else {
                ++out.shed;
            }
        }
    }
    out.p50_ms = percentile(lat, 50) * 1e3;
    out.p95_ms = percentile(lat, 95) * 1e3;
    out.p99_ms = percentile(lat, 99) * 1e3;
    return out;
}

std::string
isolation_json(const IsolationResult &r)
{
    return "{\"offered_qps\": " + std::to_string(r.offered_qps) +
        ", \"requests\": " + std::to_string(r.requests) +
        ", \"ok\": " + std::to_string(r.ok) +
        ", \"shed\": " + std::to_string(r.shed) +
        ", \"deadline_shed\": " + std::to_string(r.deadline_shed) +
        ", \"missed\": " + std::to_string(r.missed) +
        ", \"p50_ms\": " + std::to_string(r.p50_ms) +
        ", \"p95_ms\": " + std::to_string(r.p95_ms) +
        ", \"p99_ms\": " + std::to_string(r.p99_ms) + "}";
}

} // namespace

int
main()
{
    print_banner(std::cout,
                 "Serving-plane latency: dynamic batching vs per-call, " +
                     std::string(workload_name(kWorkload)) + ", " +
                     std::to_string(kClients) + " clients over " +
                     std::to_string(kSlots) + " slots");

    SyntheticConfig dcfg;
    dcfg.train_samples = 16;
    dcfg.test_samples = kProbeSamples;
    dcfg.seed = kBenchSeed;
    const Dataset test = make_dataset(kWorkload, dcfg).test;
    const std::vector<Tensor> rows = probe_rows(test);

    Sequential model = make_model(kWorkload);
    Rng rng(kBenchSeed);
    model.init_weights(rng);

    ModelService ms(kWorkload, serve_config());
    ms.publish(model.flat_weights());

    // Warm every slot (weight load) and the batcher threads.
    for (int i = 0; i < 64; ++i)
        ms.query(Tensor(rows[static_cast<size_t>(i) % rows.size()]));

    // ---- closed-loop saturation: per-call vs dynamic batching.
    const ClosedLoopResult percall = closed_loop(ms, rows, false);
    const ClosedLoopResult dynamic = closed_loop(ms, rows, true);
    const double speedup =
        percall.qps > 0.0 ? dynamic.qps / percall.qps : 0.0;

    TextTable t;
    t.set_header({"mode", "QPS", "p50 (ms)", "p95 (ms)", "p99 (ms)"});
    t.add_row({"per-call", TextTable::num(percall.qps, 0),
               TextTable::num(percall.p50_ms, 2),
               TextTable::num(percall.p95_ms, 2),
               TextTable::num(percall.p99_ms, 2)});
    t.add_row({"dynamic-batch", TextTable::num(dynamic.qps, 0),
               TextTable::num(dynamic.p50_ms, 2),
               TextTable::num(dynamic.p95_ms, 2),
               TextTable::num(dynamic.p99_ms, 2)});
    t.render(std::cout);
    const bool batching_ok = speedup >= 1.5;
    std::cout << "dynamic batching vs per-call QPS at " << kClients
              << " clients / " << kSlots << " slots: "
              << TextTable::num(speedup, 2) << "x ("
              << (batching_ok ? "PASS" : "FAIL") << " >= 1.5x)\n\n";

    // ---- open-loop sweep around the measured capacity.
    const double capacity = dynamic.qps;
    const std::vector<double> load_factors = {0.5, 1.0, 2.0};
    std::vector<OpenLoopResult> sweep;
    for (double f : load_factors)
        sweep.push_back(open_loop(ms, rows, f * capacity));

    print_banner(std::cout,
                 "Open-loop offered load sweep (capacity " +
                     TextTable::num(capacity, 0) + " QPS)");
    TextTable o;
    o.set_header({"offered QPS", "goodput", "ok", "shed", "p50 (ms)",
                  "p95 (ms)", "p99 (ms)"});
    for (const auto &r : sweep) {
        o.add_row({TextTable::num(r.offered_qps, 0),
                   TextTable::num(r.goodput_qps, 0),
                   std::to_string(r.ok), std::to_string(r.shed),
                   TextTable::num(r.p50_ms, 2),
                   TextTable::num(r.p95_ms, 2),
                   TextTable::num(r.p99_ms, 2)});
    }
    o.render(std::cout);

    // Admitted latency is bounded by what is ever allowed to wait:
    // queue_depth queued samples + one coalesced batch per slot, drained
    // at capacity, plus the coalescing deadline — with generous slack
    // for scheduler noise on shared runners. An unbounded queue at 2x
    // offered load would blow through this within the measured window.
    const OpenLoopResult &over = sweep.back();
    const double bound_ms =
        5.0 * 1e3 * (kQueueDepth + kSlots * kBatch) / capacity +
        5.0 * kBatchTimeoutUs / 1e3 + 50.0;
    const bool sheds_ok = over.shed > 0;
    // ok > 0 guards against a vacuous pass: percentile({}) is 0, so an
    // all-shed overload (zero goodput) must fail, not sail through.
    const bool p99_ok = over.ok > 0 && over.p99_ms <= bound_ms;
    std::cout << "overload (2x) sheds: " << over.shed << " ("
              << (sheds_ok ? "PASS" : "FAIL") << " > 0); p99 "
              << TextTable::num(over.p99_ms, 2) << " ms over "
              << over.ok << " admitted ("
              << (p99_ok ? "PASS" : "FAIL") << " <= bound "
              << TextTable::num(bound_ms, 2) << " ms, > 0 admitted)\n";
    const ServeStats st = ms.serving_stats();
    std::cout << "mean coalesced batch: "
              << TextTable::num(st.mean_batch_rows(), 2)
              << " samples over " << st.batches << " batches\n\n";

    // ---- two-model isolation through one gateway slot pool.
    ServeConfig iso_cfg = serve_config();
    iso_cfg.queue_depth = kIsoQueueDepth;
    ModelService model_a(kWorkload, iso_cfg);
    ModelService model_b(kWorkload, iso_cfg);
    {
        Sequential ma = make_model(kWorkload);
        Sequential mb = make_model(kWorkload);
        Rng ra(kBenchSeed + 1), rb(kBenchSeed + 2);
        ma.init_weights(ra);
        mb.init_weights(rb);
        model_a.publish(ma.flat_weights());
        model_b.publish(mb.flat_weights());
    }
    ServeConfig base = iso_cfg;
    ServingGateway gw(base);
    gw.add_service("a", model_a);
    gw.add_service("b", model_b);
    gw.start();
    // Warm both models' slots and their batch-service-time EWMAs (the
    // feasibility shed needs an estimate before it can protect SLOs).
    for (int i = 0; i < 64; ++i) {
        gw.query("a", Tensor(rows[static_cast<size_t>(i) % rows.size()]));
        gw.query("b", Tensor(rows[static_cast<size_t>(i) % rows.size()]));
    }

    // A runs well inside its guaranteed half of the pool; B is offered
    // 2x the whole pool's capacity. Deadlines are feasible: the same
    // admitted-latency bound the single-model gate uses.
    const double nominal_qps = kIsoNominalFactor * capacity;
    const double overload_qps = kIsoOverloadFactor * capacity;
    const uint64_t slack_us = static_cast<uint64_t>(bound_ms * 1e3);

    const IsolationResult solo_a =
        gateway_open_loop(gw, "a", rows, nominal_qps, slack_us);
    IsolationResult cont_a, cont_b;
    {
        std::thread tb([&] {
            cont_b = gateway_open_loop(gw, "b", rows, overload_qps,
                                       slack_us);
        });
        cont_a = gateway_open_loop(gw, "a", rows, nominal_qps, slack_us);
        tb.join();
    }

    print_banner(std::cout,
                 "Two-model isolation (A nominal " +
                     TextTable::num(nominal_qps, 0) + " QPS, B overload " +
                     TextTable::num(overload_qps, 0) + " QPS)");
    TextTable iso;
    iso.set_header({"model", "offered QPS", "ok", "shed", "ddl-shed",
                    "missed", "p50 (ms)", "p95 (ms)", "p99 (ms)"});
    const auto iso_row = [&](const char *name, const IsolationResult &r) {
        iso.add_row({name, TextTable::num(r.offered_qps, 0),
                     std::to_string(r.ok), std::to_string(r.shed),
                     std::to_string(r.deadline_shed),
                     std::to_string(r.missed), TextTable::num(r.p50_ms, 2),
                     TextTable::num(r.p95_ms, 2),
                     TextTable::num(r.p99_ms, 2)});
    };
    iso_row("A solo", solo_a);
    iso_row("A contended", cont_a);
    iso_row("B overload", cont_b);
    iso.render(std::cout);

    // A's p99 under contention within 1.5x of solo. The floor absorbs
    // OS scheduler noise: on an oversubscribed or single-core runner a
    // few-millisecond wakeup delay hits the contended run harder than
    // the solo one for reasons outside the serving plane.
    const double iso_p99_bound_ms =
        1.5 * std::max(solo_a.p99_ms, kIsoP99FloorMs);
    const bool iso_p99_ok =
        cont_a.ok > 0 && cont_a.p99_ms <= iso_p99_bound_ms;
    const bool iso_shed_ok =
        cont_a.shed == 0 && cont_a.deadline_shed == 0;
    const bool iso_missed_ok = cont_a.missed == 0 && cont_b.missed == 0;
    std::cout << "A contended p99 "
              << TextTable::num(cont_a.p99_ms, 2) << " ms ("
              << (iso_p99_ok ? "PASS" : "FAIL") << " <= "
              << TextTable::num(iso_p99_bound_ms, 2)
              << " ms = 1.5x solo); A sheds at nominal: "
              << (cont_a.shed + cont_a.deadline_shed) << " ("
              << (iso_shed_ok ? "PASS" : "FAIL")
              << " == 0); admitted-but-missed deadlines: "
              << (cont_a.missed + cont_b.missed) << " ("
              << (iso_missed_ok ? "PASS" : "FAIL") << " == 0)\n";
    gw.stop_serving();

    std::ofstream json("BENCH_serve_latency.json");
    json << "{\n  \"kernel_arch\": \""
         << kernels::kernel_arch_name(kernels::current_kernel_arch())
         << "\",\n"
         << "  \"hardware_threads\": "
         << std::thread::hardware_concurrency() << ",\n"
         << "  \"workload\": \"" << workload_name(kWorkload) << "\",\n"
         << "  \"clients\": " << kClients << ",\n"
         << "  \"slots\": " << kSlots << ",\n"
         << "  \"batch_size\": " << kBatch << ",\n"
         << "  \"queue_depth\": " << kQueueDepth << ",\n"
         << "  \"batch_timeout_us\": " << kBatchTimeoutUs << ",\n"
         << "  \"closed_loop\": {\n"
         << "    \"per_call\": {\"qps\": " << percall.qps
         << ", \"p50_ms\": " << percall.p50_ms
         << ", \"p95_ms\": " << percall.p95_ms
         << ", \"p99_ms\": " << percall.p99_ms << "},\n"
         << "    \"dynamic_batch\": {\"qps\": " << dynamic.qps
         << ", \"p50_ms\": " << dynamic.p50_ms
         << ", \"p95_ms\": " << dynamic.p95_ms
         << ", \"p99_ms\": " << dynamic.p99_ms << "},\n"
         << "    \"batching_speedup\": " << speedup << "\n  },\n"
         << "  \"open_loop\": [\n";
    for (size_t i = 0; i < sweep.size(); ++i) {
        const auto &r = sweep[i];
        json << "    {\"offered_qps\": " << r.offered_qps
             << ", \"goodput_qps\": " << r.goodput_qps
             << ", \"requests\": " << r.requests << ", \"ok\": " << r.ok
             << ", \"shed\": " << r.shed << ", \"p50_ms\": " << r.p50_ms
             << ", \"p95_ms\": " << r.p95_ms
             << ", \"p99_ms\": " << r.p99_ms << "}"
             << (i + 1 < sweep.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"mean_coalesced_batch_rows\": " << st.mean_batch_rows()
         << ",\n"
         << "  \"overload_p99_bound_ms\": " << bound_ms << ",\n"
         << "  \"isolation\": {\n"
         << "    \"deadline_slack_us\": " << slack_us << ",\n"
         << "    \"a_solo\": " << isolation_json(solo_a) << ",\n"
         << "    \"a_contended\": " << isolation_json(cont_a) << ",\n"
         << "    \"b_overload\": " << isolation_json(cont_b) << ",\n"
         << "    \"a_p99_bound_ms\": " << iso_p99_bound_ms << "\n  },\n"
         << "  \"gates\": {\"batching_speedup_ok\": "
         << (batching_ok ? "true" : "false")
         << ", \"overload_sheds_ok\": " << (sheds_ok ? "true" : "false")
         << ", \"overload_p99_ok\": " << (p99_ok ? "true" : "false")
         << ", \"isolation_p99_ok\": " << (iso_p99_ok ? "true" : "false")
         << ", \"isolation_no_shed_ok\": "
         << (iso_shed_ok ? "true" : "false")
         << ", \"isolation_no_missed_ok\": "
         << (iso_missed_ok ? "true" : "false") << "}\n}\n";
    std::cout << "wrote BENCH_serve_latency.json\n";
    return batching_ok && sheds_ok && p99_ok && iso_p99_ok &&
            iso_shed_ok && iso_missed_ok
        ? 0
        : 1;
}
