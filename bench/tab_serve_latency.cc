/**
 * @file
 * Serving-plane latency and admission control under load, written to
 * BENCH_serve_latency.json.
 *
 * Two measurements on the LSTM workload (the one whose per-step
 * projections collapse best under coalescing):
 *
 *  1. Closed-loop saturation at high concurrency (clients = 16x the
 *     worker slots, each issuing single-sample queries back to back):
 *     per-call submission (every caller pays its own engine forward)
 *     vs dynamic batching through ModelService::submit(). Gate: the
 *     coalesced path clears >= 1.5x the per-call QPS.
 *
 *  2. Open-loop generator at a sweep of offered loads around the
 *     measured capacity: requests fire on a fixed arrival schedule
 *     whether or not earlier ones finished (submit never blocks), and
 *     completion latency is measured from the *scheduled* arrival via
 *     the reply's completion timestamp. Gate: under overload the
 *     bounded queue sheds (typed rejections observed) and the p99 of
 *     admitted requests stays within a capacity-derived bound instead
 *     of growing with the backlog.
 */
#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "data/synthetic.h"
#include "kernels/kernels.h"
#include "serve/model_service.h"
#include "util/stats.h"

using namespace autofl;
using namespace autofl::bench;

namespace {

using Clock = std::chrono::steady_clock;

constexpr Workload kWorkload = Workload::LstmShakespeare;
constexpr int kProbeSamples = 64;   ///< Distinct single-sample inputs.
constexpr int kSlots = 2;           ///< Engine worker slots.
constexpr int kClients = 32;        ///< 16x concurrency over slots.
constexpr int kBatch = 32;
constexpr int kQueueDepth = 64;
constexpr int kBatchTimeoutUs = 200;
constexpr double kClosedLoopSecs = 1.0;
constexpr double kOpenLoopSecs = 1.2;

double
secs(Clock::duration d)
{
    return std::chrono::duration<double>(d).count();
}

ServeConfig
serve_config()
{
    ServeConfig cfg;
    cfg.batch_size = kBatch;
    cfg.workers = kSlots;
    cfg.queue_depth = kQueueDepth;
    cfg.batch_timeout_us = kBatchTimeoutUs;
    cfg.shed = ShedPolicy::RejectNew;
    return cfg;
}

/** Single-sample model-ready inputs, cycled by the load generators. */
std::vector<Tensor>
probe_rows(const Dataset &test)
{
    std::vector<Tensor> rows;
    rows.reserve(kProbeSamples);
    for (int i = 0; i < kProbeSamples; ++i)
        rows.push_back(test.batch_x({i}));
    return rows;
}

struct ClosedLoopResult
{
    double qps = 0.0;
    double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
};

/**
 * kClients threads issue single-sample queries back to back for a
 * fixed wall-clock window; per-request latency is the caller-observed
 * round trip. @p dynamic routes through submit(); otherwise every call
 * runs its own engine forward (the PR-4 serving path).
 */
ClosedLoopResult
closed_loop(ModelService &ms, const std::vector<Tensor> &rows,
            bool dynamic)
{
    std::atomic<bool> stop{false};
    std::vector<std::vector<double>> lat(
        static_cast<size_t>(kClients));
    const SnapshotHandle h = ms.acquire();

    std::vector<std::thread> clients;
    clients.reserve(kClients);
    const auto t0 = Clock::now();
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            std::vector<double> &mine =
                lat[static_cast<size_t>(c)];
            size_t i = static_cast<size_t>(c);
            while (!stop.load(std::memory_order_acquire)) {
                Tensor row = rows[i % rows.size()];
                ++i;
                const auto q0 = Clock::now();
                if (dynamic) {
                    const InferenceReply r = ms.query(std::move(row));
                    if (!r.ok())
                        continue;
                } else {
                    ms.engine().forward(h, std::move(row));
                }
                mine.push_back(secs(Clock::now() - q0));
            }
        });
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double>(kClosedLoopSecs));
    stop.store(true, std::memory_order_release);
    for (auto &t : clients)
        t.join();
    const double elapsed = secs(Clock::now() - t0);

    std::vector<double> all;
    for (auto &v : lat)
        all.insert(all.end(), v.begin(), v.end());
    ClosedLoopResult out;
    out.qps = static_cast<double>(all.size()) / elapsed;
    out.p50_ms = percentile(all, 50) * 1e3;
    out.p95_ms = percentile(all, 95) * 1e3;
    out.p99_ms = percentile(all, 99) * 1e3;
    return out;
}

struct OpenLoopResult
{
    double offered_qps = 0.0;
    double goodput_qps = 0.0;   ///< Ok completions per second.
    int requests = 0;
    int ok = 0;
    int shed = 0;
    double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;  ///< Ok only.
};

/**
 * Open-loop generator: request i fires at t0 + i/rate across kClients
 * threads regardless of completions (submit never blocks; sheds
 * resolve immediately). Latency is completion minus *scheduled*
 * arrival, so falling behind shows up as queueing delay, not as a
 * lower offered rate.
 */
OpenLoopResult
open_loop(ModelService &ms, const std::vector<Tensor> &rows,
          double offered_qps)
{
    const int total =
        static_cast<int>(offered_qps * kOpenLoopSecs);
    struct Pending
    {
        Clock::time_point scheduled;
        std::future<InferenceReply> fut;
    };
    std::vector<std::vector<Pending>> pending(
        static_cast<size_t>(kClients));
    const auto t0 = Clock::now() + std::chrono::milliseconds(10);
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            auto &mine = pending[static_cast<size_t>(c)];
            for (int i = c; i < total; i += kClients) {
                const auto at = t0 +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(i / offered_qps));
                std::this_thread::sleep_until(at);
                Tensor row =
                    rows[static_cast<size_t>(i) % rows.size()];
                mine.push_back(
                    {at, ms.submit(std::move(row))});
            }
        });
    }
    for (auto &t : clients)
        t.join();

    OpenLoopResult out;
    out.offered_qps = offered_qps;
    out.requests = total;
    std::vector<double> lat;
    Clock::time_point last_done = t0;
    for (auto &v : pending) {
        for (auto &p : v) {
            const InferenceReply r = p.fut.get();
            if (r.ok()) {
                ++out.ok;
                lat.push_back(secs(r.completed_at - p.scheduled));
                last_done = std::max(last_done, r.completed_at);
            } else {
                ++out.shed;
            }
        }
    }
    const double window = std::max(1e-9, secs(last_done - t0));
    out.goodput_qps = out.ok / window;
    out.p50_ms = percentile(lat, 50) * 1e3;
    out.p95_ms = percentile(lat, 95) * 1e3;
    out.p99_ms = percentile(lat, 99) * 1e3;
    return out;
}

} // namespace

int
main()
{
    print_banner(std::cout,
                 "Serving-plane latency: dynamic batching vs per-call, " +
                     std::string(workload_name(kWorkload)) + ", " +
                     std::to_string(kClients) + " clients over " +
                     std::to_string(kSlots) + " slots");

    SyntheticConfig dcfg;
    dcfg.train_samples = 16;
    dcfg.test_samples = kProbeSamples;
    dcfg.seed = kBenchSeed;
    const Dataset test = make_dataset(kWorkload, dcfg).test;
    const std::vector<Tensor> rows = probe_rows(test);

    Sequential model = make_model(kWorkload);
    Rng rng(kBenchSeed);
    model.init_weights(rng);

    ModelService ms(kWorkload, serve_config());
    ms.publish(model.flat_weights());

    // Warm every slot (weight load) and the batcher threads.
    for (int i = 0; i < 64; ++i)
        ms.query(Tensor(rows[static_cast<size_t>(i) % rows.size()]));

    // ---- closed-loop saturation: per-call vs dynamic batching.
    const ClosedLoopResult percall = closed_loop(ms, rows, false);
    const ClosedLoopResult dynamic = closed_loop(ms, rows, true);
    const double speedup =
        percall.qps > 0.0 ? dynamic.qps / percall.qps : 0.0;

    TextTable t;
    t.set_header({"mode", "QPS", "p50 (ms)", "p95 (ms)", "p99 (ms)"});
    t.add_row({"per-call", TextTable::num(percall.qps, 0),
               TextTable::num(percall.p50_ms, 2),
               TextTable::num(percall.p95_ms, 2),
               TextTable::num(percall.p99_ms, 2)});
    t.add_row({"dynamic-batch", TextTable::num(dynamic.qps, 0),
               TextTable::num(dynamic.p50_ms, 2),
               TextTable::num(dynamic.p95_ms, 2),
               TextTable::num(dynamic.p99_ms, 2)});
    t.render(std::cout);
    const bool batching_ok = speedup >= 1.5;
    std::cout << "dynamic batching vs per-call QPS at " << kClients
              << " clients / " << kSlots << " slots: "
              << TextTable::num(speedup, 2) << "x ("
              << (batching_ok ? "PASS" : "FAIL") << " >= 1.5x)\n\n";

    // ---- open-loop sweep around the measured capacity.
    const double capacity = dynamic.qps;
    const std::vector<double> load_factors = {0.5, 1.0, 2.0};
    std::vector<OpenLoopResult> sweep;
    for (double f : load_factors)
        sweep.push_back(open_loop(ms, rows, f * capacity));

    print_banner(std::cout,
                 "Open-loop offered load sweep (capacity " +
                     TextTable::num(capacity, 0) + " QPS)");
    TextTable o;
    o.set_header({"offered QPS", "goodput", "ok", "shed", "p50 (ms)",
                  "p95 (ms)", "p99 (ms)"});
    for (const auto &r : sweep) {
        o.add_row({TextTable::num(r.offered_qps, 0),
                   TextTable::num(r.goodput_qps, 0),
                   std::to_string(r.ok), std::to_string(r.shed),
                   TextTable::num(r.p50_ms, 2),
                   TextTable::num(r.p95_ms, 2),
                   TextTable::num(r.p99_ms, 2)});
    }
    o.render(std::cout);

    // Admitted latency is bounded by what is ever allowed to wait:
    // queue_depth queued samples + one coalesced batch per slot, drained
    // at capacity, plus the coalescing deadline — with generous slack
    // for scheduler noise on shared runners. An unbounded queue at 2x
    // offered load would blow through this within the measured window.
    const OpenLoopResult &over = sweep.back();
    const double bound_ms =
        5.0 * 1e3 * (kQueueDepth + kSlots * kBatch) / capacity +
        5.0 * kBatchTimeoutUs / 1e3 + 50.0;
    const bool sheds_ok = over.shed > 0;
    // ok > 0 guards against a vacuous pass: percentile({}) is 0, so an
    // all-shed overload (zero goodput) must fail, not sail through.
    const bool p99_ok = over.ok > 0 && over.p99_ms <= bound_ms;
    std::cout << "overload (2x) sheds: " << over.shed << " ("
              << (sheds_ok ? "PASS" : "FAIL") << " > 0); p99 "
              << TextTable::num(over.p99_ms, 2) << " ms over "
              << over.ok << " admitted ("
              << (p99_ok ? "PASS" : "FAIL") << " <= bound "
              << TextTable::num(bound_ms, 2) << " ms, > 0 admitted)\n";
    const ServeStats st = ms.serving_stats();
    std::cout << "mean coalesced batch: "
              << TextTable::num(st.mean_batch_rows(), 2)
              << " samples over " << st.batches << " batches\n";

    std::ofstream json("BENCH_serve_latency.json");
    json << "{\n  \"kernel_arch\": \""
         << kernels::kernel_arch_name(kernels::current_kernel_arch())
         << "\",\n"
         << "  \"hardware_threads\": "
         << std::thread::hardware_concurrency() << ",\n"
         << "  \"workload\": \"" << workload_name(kWorkload) << "\",\n"
         << "  \"clients\": " << kClients << ",\n"
         << "  \"slots\": " << kSlots << ",\n"
         << "  \"batch_size\": " << kBatch << ",\n"
         << "  \"queue_depth\": " << kQueueDepth << ",\n"
         << "  \"batch_timeout_us\": " << kBatchTimeoutUs << ",\n"
         << "  \"closed_loop\": {\n"
         << "    \"per_call\": {\"qps\": " << percall.qps
         << ", \"p50_ms\": " << percall.p50_ms
         << ", \"p95_ms\": " << percall.p95_ms
         << ", \"p99_ms\": " << percall.p99_ms << "},\n"
         << "    \"dynamic_batch\": {\"qps\": " << dynamic.qps
         << ", \"p50_ms\": " << dynamic.p50_ms
         << ", \"p95_ms\": " << dynamic.p95_ms
         << ", \"p99_ms\": " << dynamic.p99_ms << "},\n"
         << "    \"batching_speedup\": " << speedup << "\n  },\n"
         << "  \"open_loop\": [\n";
    for (size_t i = 0; i < sweep.size(); ++i) {
        const auto &r = sweep[i];
        json << "    {\"offered_qps\": " << r.offered_qps
             << ", \"goodput_qps\": " << r.goodput_qps
             << ", \"requests\": " << r.requests << ", \"ok\": " << r.ok
             << ", \"shed\": " << r.shed << ", \"p50_ms\": " << r.p50_ms
             << ", \"p95_ms\": " << r.p95_ms
             << ", \"p99_ms\": " << r.p99_ms << "}"
             << (i + 1 < sweep.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"mean_coalesced_batch_rows\": " << st.mean_batch_rows()
         << ",\n"
         << "  \"overload_p99_bound_ms\": " << bound_ms << ",\n"
         << "  \"gates\": {\"batching_speedup_ok\": "
         << (batching_ok ? "true" : "false")
         << ", \"overload_sheds_ok\": " << (sheds_ok ? "true" : "false")
         << ", \"overload_p99_ok\": " << (p99_ok ? "true" : "false")
         << "}\n}\n";
    std::cout << "wrote BENCH_serve_latency.json\n";
    return batching_ok && sheds_ok && p99_ok ? 0 : 1;
}
