/**
 * @file
 * Figure 9: AutoFL's adaptability to the FL global parameters — PPW and
 * convergence across S1-S4 for CNN-MNIST.
 *
 * Paper-reported shape: AutoFL consistently beats FedAvg-Random,
 * Performance and Power across all four settings (it re-identifies the
 * per-setting optimal cluster), and gains a further ~16% over
 * O_participant by also picking execution targets.
 */
#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace autofl;
using namespace autofl::bench;

namespace {

void
run_figure()
{
    for (ParamSetting s : all_param_settings()) {
        ExperimentConfig cfg = base_config(Workload::CnnMnist, s,
                                           VarianceScenario::Combined);
        std::vector<ExperimentResult> runs;
        for (PolicyKind kind :
             {PolicyKind::FedAvgRandom, PolicyKind::Power,
              PolicyKind::Performance, PolicyKind::OracleParticipant,
              PolicyKind::AutoFl})
            runs.push_back(run_policy(cfg, kind));
        print_comparison("Fig. 9: adaptability to global parameters, " +
                             param_setting_name(s) + " (CNN-MNIST)",
                         runs);
    }
}

/** Micro: oracle participant search (full C1-C7 sweep). */
void
BM_OracleParticipantSearch(benchmark::State &state)
{
    ExperimentConfig cfg = base_config(Workload::CnnMnist, ParamSetting::S3,
                                       VarianceScenario::Combined);
    for (auto _ : state) {
        auto res = search_oracle_participant(cfg, 8);
        benchmark::DoNotOptimize(res.ppw);
    }
}
BENCHMARK(BM_OracleParticipantSearch)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    run_figure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
