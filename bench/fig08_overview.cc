/**
 * @file
 * Figure 8: result overview — PPW, convergence time and accuracy of
 * FedAvg-Random, Power, Performance, O_participant, AutoFL and O_FL on
 * the three FL workloads.
 *
 * Paper-reported shape: AutoFL beats FedAvg-Random / Power / Performance
 * on energy efficiency for every workload (4.0x / 3.7x / 5.1x over the
 * baseline for CNN / LSTM / MobileNet), lands close to O_FL, and beats
 * O_participant by exploiting per-device execution targets; CONV-heavy
 * workloads favor Performance over Power while the RC-heavy LSTM narrows
 * that difference.
 */
#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace autofl;
using namespace autofl::bench;

namespace {

void
run_figure()
{
    for (Workload w : all_workloads()) {
        ExperimentConfig cfg = base_config(w, ParamSetting::S3,
                                           VarianceScenario::Combined);
        std::vector<ExperimentResult> runs;
        for (PolicyKind kind : fig8_policies())
            runs.push_back(run_policy(cfg, kind));
        print_comparison("Fig. 8: overview (" + workload_name(w) +
                             ", S3, field variance)",
                         runs);
    }
}

/** Micro: one full FL training round (20 clients, CNN-MNIST). */
void
BM_FullTrainingRound(benchmark::State &state)
{
    FlSystemConfig fcfg;
    fcfg.workload = Workload::CnnMnist;
    fcfg.params = global_params_for(ParamSetting::S3);
    fcfg.threads = 16;
    FlSystem fl(fcfg);
    std::vector<int> ids;
    for (int d = 0; d < 20; ++d)
        ids.push_back(d * 10);
    uint64_t round = 0;
    for (auto _ : state) {
        auto updates = fl.run_local_round(ids, round++);
        fl.aggregate(updates);
        benchmark::DoNotOptimize(updates.size());
    }
}
BENCHMARK(BM_FullTrainingRound)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    run_figure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
