/**
 * @file
 * Figure 14: AutoFL vs FedNova and FEDL under (a) on-device
 * interference, (b) network variance, and (c) data heterogeneity.
 *
 * Paper-reported shape: FedNova and FEDL improve over the baseline under
 * variance (partial/normalized updates help), but AutoFL still gains
 * ~62.7% / 48.8% PPW over them; under non-IID data they are more robust
 * than plain FedAvg yet still pay for randomly including non-IID
 * devices, which AutoFL learns to avoid.
 */
#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace autofl;
using namespace autofl::bench;

namespace {

void
run_scenario(const std::string &title, const ExperimentConfig &base)
{
    std::vector<ExperimentResult> runs;
    runs.push_back(run_policy(base, PolicyKind::FedAvgRandom));

    ExperimentConfig nova = base;
    nova.algorithm = Algorithm::FedNova;
    auto nova_res = run_policy(nova, PolicyKind::FedAvgRandom);
    nova_res.policy_name = "FedNova";
    runs.push_back(nova_res);

    ExperimentConfig fedl = base;
    fedl.algorithm = Algorithm::Fedl;
    auto fedl_res = run_policy(fedl, PolicyKind::FedAvgRandom);
    fedl_res.policy_name = "FEDL";
    runs.push_back(fedl_res);

    runs.push_back(run_policy(base, PolicyKind::AutoFl));
    print_comparison(title, runs);
}

void
run_figure()
{
    run_scenario("Fig. 14(a): prior work under on-device interference "
                 "(CNN-MNIST, S3)",
                 base_config(Workload::CnnMnist, ParamSetting::S3,
                             VarianceScenario::Interference));
    run_scenario("Fig. 14(b): prior work under network variance "
                 "(CNN-MNIST, S3)",
                 base_config(Workload::CnnMnist, ParamSetting::S3,
                             VarianceScenario::WeakNetwork));
    ExperimentConfig noniid =
        base_config(Workload::CnnMnist, ParamSetting::S3,
                    VarianceScenario::None, DataDistribution::NonIid50);
    noniid.max_rounds = 80;
    run_scenario("Fig. 14(c): prior work under data heterogeneity "
                 "(CNN-MNIST, S3, Non-IID 50%)",
                 noniid);
}

/** Micro: FEDL full-gradient exchange for one client. */
void
BM_FedlFullGradient(benchmark::State &state)
{
    FlSystemConfig fcfg;
    fcfg.workload = Workload::CnnMnist;
    fcfg.algorithm = Algorithm::Fedl;
    fcfg.data.train_samples = 2000;
    FlSystem fl(fcfg);
    LocalTrainer trainer(Workload::CnnMnist);
    for (auto _ : state) {
        auto g = trainer.full_gradient(fl.server().global_weights(),
                                       fl.shard(0));
        benchmark::DoNotOptimize(g[0]);
    }
}
BENCHMARK(BM_FedlFullGradient)->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    run_figure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
