/**
 * @file
 * Figure 6: (a) accuracy-vs-round convergence under increasing data
 * heterogeneity with random selection; (b) the resulting energy-
 * efficiency gap between the ideal (IID-aware) selection and the
 * heterogeneity-blind baseline.
 *
 * Paper-reported shape: non-IID participation slows or stalls
 * convergence, and the PPW gap between ideal and non-IID-blind
 * selection exceeds 85%.
 */
#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace autofl;
using namespace autofl::bench;

namespace {

const std::vector<DataDistribution> kDistributions = {
    DataDistribution::IdealIid, DataDistribution::NonIid50,
    DataDistribution::NonIid75, DataDistribution::NonIid100};

void
run_figure()
{
    print_banner(std::cout,
                 "Fig. 6(a): accuracy vs round under data heterogeneity "
                 "(CNN-MNIST, S3, FedAvg-Random)");
    std::vector<ExperimentResult> runs;
    TextTable curve;
    curve.set_header({"round", "Ideal IID", "Non-IID(50%)", "Non-IID(75%)",
                      "Non-IID(100%)"});
    for (DataDistribution d : kDistributions) {
        ExperimentConfig cfg =
            base_config(Workload::CnnMnist, ParamSetting::S3,
                        VarianceScenario::None, d);
        cfg.target_accuracy = 2.0;  // Trace the full curve.
        cfg.max_rounds = 50;
        runs.push_back(run_policy(cfg, PolicyKind::FedAvgRandom));
    }
    for (size_t round = 0; round < runs[0].rounds.size(); round += 5) {
        std::vector<std::string> cells = {std::to_string(round)};
        for (const auto &r : runs)
            cells.push_back(
                TextTable::num(r.rounds[round].accuracy * 100.0, 1));
        curve.add_row(cells);
    }
    curve.render(std::cout);

    print_banner(std::cout,
                 "Fig. 6(b): energy to reach the accuracy target, ideal "
                 "IID-aware selection vs heterogeneity-blind baseline");
    TextTable t;
    t.set_header({"distribution", "baseline", "ideal(O_participant+IID)",
                  "PPW gap"});
    for (DataDistribution d : kDistributions) {
        ExperimentConfig cfg =
            base_config(Workload::CnnMnist, ParamSetting::S3,
                        VarianceScenario::None, d);
        auto blind = run_policy(cfg, PolicyKind::FedAvgRandom);
        auto ideal = run_policy(cfg, PolicyKind::OracleParticipant);
        const double b = blind.ppw_convergence();
        const double i = ideal.ppw_convergence();
        t.add_row({data_distribution_name(d),
                   blind.converged() ?
                       TextTable::num(blind.energy_to_target_j, 0) + "J" :
                       "no-conv",
                   ideal.converged() ?
                       TextTable::num(ideal.energy_to_target_j, 0) + "J" :
                       "no-conv",
                   (b > 0.0 && i > 0.0) ?
                       TextTable::num((1.0 - b / i) * 100.0, 0) + "%" :
                       (i > 0.0 ? ">85%" : "n/a")});
    }
    t.render(std::cout);
}

/** Micro: Dirichlet non-IID partitioning of the full training set. */
void
BM_DirichletPartition(benchmark::State &state)
{
    SyntheticConfig scfg;
    scfg.train_samples = 4000;
    auto split = make_synthetic_mnist(scfg);
    PartitionConfig pcfg;
    pcfg.distribution = DataDistribution::NonIid100;
    for (auto _ : state) {
        auto part = partition_dataset(split.train, pcfg);
        benchmark::DoNotOptimize(part.shards.size());
    }
}
BENCHMARK(BM_DirichletPartition);

} // namespace

int
main(int argc, char **argv)
{
    run_figure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
