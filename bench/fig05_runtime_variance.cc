/**
 * @file
 * Figure 5: round-level PPW of the Table 4 clusters under (a) no runtime
 * variance, (b) on-device interference, (c) weak/unstable network.
 *
 * Paper-reported shape: the optimal cluster shifts from a mixed interior
 * composition (no variance) to the all-high-end C1 under interference
 * (big SoCs absorb co-running load), and toward lower-power compositions
 * when the network is weak (communication bounds the round, so the tier
 * performance gap stops mattering).
 */
#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace autofl;
using namespace autofl::bench;

namespace {

void
run_figure()
{
    print_banner(std::cout,
                 "Fig. 5: PPW of clusters C0-C7 under runtime variance "
                 "(CNN-MNIST, S3, normalized to C0 no-variance)");
    TextTable t;
    t.set_header({"scenario", "C0", "C1", "C2", "C3", "C4", "C5", "C6",
                  "C7", "best"});
    double norm = 0.0;
    for (VarianceScenario v : {VarianceScenario::None,
                               VarianceScenario::Interference,
                               VarianceScenario::WeakNetwork}) {
        ExperimentConfig cfg =
            base_config(Workload::CnnMnist, ParamSetting::S3, v);
        auto rows = characterize_clusters(cfg);
        if (norm == 0.0)
            norm = rows.front().second.ppw_round();
        std::vector<std::string> cells = {variance_scenario_name(v)};
        std::string best_label;
        double best = 0.0;
        for (const auto &[tmpl, res] : rows) {
            cells.push_back(TextTable::num(res.ppw_round() / norm, 2));
            if (!tmpl.random && res.ppw_round() > best) {
                best = res.ppw_round();
                best_label = tmpl.label;
            }
        }
        cells.push_back(best_label);
        t.add_row(cells);
    }
    t.render(std::cout);
}

/** Micro: per-round state sampling cost across the 200-device fleet. */
void
BM_FleetStateSampling(benchmark::State &state)
{
    Fleet fleet(FleetMix{}, VarianceScenario::Combined, kBenchSeed);
    for (auto _ : state) {
        fleet.begin_round();
        benchmark::DoNotOptimize(fleet.device(0).state().bandwidth_mbps);
    }
}
BENCHMARK(BM_FleetStateSampling);

} // namespace

int
main(int argc, char **argv)
{
    run_figure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
