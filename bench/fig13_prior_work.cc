/**
 * @file
 * Figure 13: comparison with the closely-related prior works FedNova
 * (normalized averaging) and FEDL (gradient-correction local objective),
 * both of which use random participant selection.
 *
 * Paper-reported shape: AutoFL achieves ~49.8% / 39.3% higher energy
 * efficiency than FedNova / FEDL and better convergence time — the
 * aggregation-side fixes cannot recover the energy wasted by random
 * participant/target selection.
 */
#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace autofl;
using namespace autofl::bench;

namespace {

void
run_figure()
{
    ExperimentConfig cfg = base_config(Workload::CnnMnist, ParamSetting::S3,
                                       VarianceScenario::None);
    std::vector<ExperimentResult> runs;

    runs.push_back(run_policy(cfg, PolicyKind::FedAvgRandom));

    ExperimentConfig nova = cfg;
    nova.algorithm = Algorithm::FedNova;
    auto nova_res = run_policy(nova, PolicyKind::FedAvgRandom);
    nova_res.policy_name = "FedNova";
    runs.push_back(nova_res);

    ExperimentConfig fedl = cfg;
    fedl.algorithm = Algorithm::Fedl;
    auto fedl_res = run_policy(fedl, PolicyKind::FedAvgRandom);
    fedl_res.policy_name = "FEDL";
    runs.push_back(fedl_res);

    runs.push_back(run_policy(cfg, PolicyKind::AutoFl));

    print_comparison(
        "Fig. 13: AutoFL vs FedNova and FEDL (CNN-MNIST, S3, no variance)",
        runs);
}

/** Micro: FedNova aggregation of 20 updates. */
void
BM_FedNovaAggregate(benchmark::State &state)
{
    Server server(Workload::CnnMnist, Algorithm::FedNova, TrainHyper{}, 1);
    const size_t dim = server.num_params();
    std::vector<LocalUpdate> updates(20);
    Rng rng(2);
    for (auto &u : updates) {
        u.num_samples = 20;
        u.num_steps = static_cast<int>(rng.randint(3, 10));
        u.weights.assign(dim, 0.01f);
    }
    for (auto _ : state) {
        server.aggregate(updates);
        benchmark::DoNotOptimize(server.global_weights()[0]);
    }
}
BENCHMARK(BM_FedNovaAggregate)->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    run_figure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
