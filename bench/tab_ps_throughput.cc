/**
 * @file
 * Parameter-server runtime throughput: rounds/sec for Sync vs SemiAsync
 * aggregation at 1/2/4/8 executor threads on the CnnMnist workload,
 * written to BENCH_ps_throughput.json.
 *
 * Each client job carries a deterministic simulated device latency
 * (0.5x-2x across devices, cf. the fleet's tier spread) on top of its
 * real local SGD, so the measurement captures what the executor exists
 * for: overlapping device latency across concurrent client jobs. The
 * headline check is the scaling ratio — 8-thread SemiAsync must clear
 * 2x the 1-thread rounds/sec.
 */
#include <chrono>
#include <fstream>
#include <iostream>

#include "bench_common.h"

using namespace autofl;
using namespace autofl::bench;

namespace {

constexpr int kDevices = 12;
constexpr int kRounds = 6;
constexpr double kDeviceLatencyS = 0.02;

FlSystemConfig
ps_config(SyncMode mode, int threads)
{
    FlSystemConfig cfg;
    cfg.workload = Workload::CnnMnist;
    cfg.params = {16, 1, kDevices};
    cfg.hyper.lr = 0.05;
    cfg.data.train_samples = 360;
    cfg.data.test_samples = 60;
    cfg.data.noise = 0.6;
    cfg.partition.num_devices = kDevices;
    cfg.seed = kBenchSeed;
    cfg.threads = threads;
    cfg.ps.mode = mode;
    cfg.ps.staleness_bound = 1;
    cfg.ps.sim_device_latency_s = kDeviceLatencyS;
    return cfg;
}

struct Measurement
{
    SyncMode mode;
    int threads = 0;
    double rounds_per_sec = 0.0;
    double mean_staleness = 0.0;
    int evicted = 0;
};

Measurement
measure(SyncMode mode, int threads)
{
    FlSystem fl(ps_config(mode, threads));
    std::vector<int> ids(kDevices);
    for (int d = 0; d < kDevices; ++d)
        ids[static_cast<size_t>(d)] = d;

    fl.run_round(ids, 0);  // Warm caches outside the timed region.

    Measurement m;
    m.mode = mode;
    m.threads = threads;
    double staleness = 0.0;
    const auto start = std::chrono::steady_clock::now();
    for (int round = 1; round <= kRounds; ++round) {
        const PsRoundStats st =
            fl.run_round(ids, static_cast<uint64_t>(round));
        staleness += st.mean_staleness;
        m.evicted += st.evicted;
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    m.rounds_per_sec = kRounds / elapsed.count();
    m.mean_staleness = staleness / kRounds;
    return m;
}

} // namespace

int
main()
{
    print_banner(std::cout,
                 "PS runtime throughput: CnnMnist, " +
                     std::to_string(kDevices) + " clients/round, " +
                     TextTable::num(kDeviceLatencyS * 1e3, 0) +
                     " ms base device latency");

    const std::vector<int> thread_counts = {1, 2, 4, 8};
    std::vector<Measurement> results;
    for (SyncMode mode : {SyncMode::Sync, SyncMode::SemiAsync})
        for (int threads : thread_counts)
            results.push_back(measure(mode, threads));

    TextTable t;
    t.set_header({"mode", "threads", "rounds/s", "vs 1-thread",
                  "mean-staleness", "evicted"});
    double base_sync = 0.0, base_semi = 0.0;
    for (const auto &m : results) {
        double &base = m.mode == SyncMode::Sync ? base_sync : base_semi;
        if (m.threads == 1)
            base = m.rounds_per_sec;
        t.add_row({sync_mode_name(m.mode), std::to_string(m.threads),
                   TextTable::num(m.rounds_per_sec, 2),
                   ratio(m.rounds_per_sec, base),
                   TextTable::num(m.mean_staleness, 2),
                   std::to_string(m.evicted)});
    }
    t.render(std::cout);

    double semi1 = 0.0, semi8 = 0.0;
    for (const auto &m : results) {
        if (m.mode != SyncMode::SemiAsync)
            continue;
        if (m.threads == 1)
            semi1 = m.rounds_per_sec;
        if (m.threads == 8)
            semi8 = m.rounds_per_sec;
    }
    const double speedup = semi1 > 0.0 ? semi8 / semi1 : 0.0;
    std::cout << "SemiAsync 8-thread vs 1-thread: "
              << TextTable::num(speedup, 2) << "x ("
              << (speedup >= 2.0 ? "PASS" : "FAIL") << " >= 2x)\n";

    std::ofstream json("BENCH_ps_throughput.json");
    json << "{\n  \"workload\": \"CnnMnist\",\n"
         << "  \"clients_per_round\": " << kDevices << ",\n"
         << "  \"timed_rounds\": " << kRounds << ",\n"
         << "  \"base_device_latency_s\": " << kDeviceLatencyS << ",\n"
         << "  \"semiasync_speedup_8v1\": " << speedup << ",\n"
         << "  \"results\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const auto &m = results[i];
        json << "    {\"mode\": \"" << sync_mode_name(m.mode)
             << "\", \"threads\": " << m.threads
             << ", \"rounds_per_sec\": " << m.rounds_per_sec
             << ", \"mean_staleness\": " << m.mean_staleness
             << ", \"evicted\": " << m.evicted << "}"
             << (i + 1 < results.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::cout << "wrote BENCH_ps_throughput.json\n";
    return speedup >= 2.0 ? 0 : 1;
}
