/**
 * @file
 * Parameter-server runtime throughput: rounds/sec for Sync, SemiAsync
 * and Async aggregation at 1/2/4/8 executor threads on the CnnMnist
 * workload, plus the streaming pipeline (SemiAsync at kPipelineDepth) rows,
 * written to BENCH_ps_throughput.json.
 *
 * Each client job carries a deterministic simulated device latency
 * (0.5x-2x across devices, cf. the fleet's tier spread) on top of its
 * real local SGD, so the measurement captures what the runtime exists
 * for: overlapping device latency across concurrent client jobs — and,
 * pipelined, across round boundaries. Two headline checks gate the
 * exit code: 8-thread SemiAsync must clear 2x the 1-thread rounds/sec,
 * and the pipelined runtime must clear 1.3x the drained (depth-1)
 * SemiAsync runtime at 8 threads.
 */
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <mutex>
#include <thread>

#include "bench_common.h"
#include "kernels/kernels.h"
#include "ps/ps_server.h"

using namespace autofl;
using namespace autofl::bench;

namespace {

constexpr int kDevices = 8;
constexpr int kRounds = 12;
constexpr int kPipelineDepth = 6;
constexpr double kDeviceLatencyS = 0.05;

FlSystemConfig
ps_config(SyncMode mode, int threads, int pipeline_depth)
{
    FlSystemConfig cfg;
    cfg.workload = Workload::CnnMnist;
    cfg.params = {16, 1, kDevices};
    cfg.hyper.lr = 0.05;
    cfg.data.train_samples = 120;
    cfg.data.test_samples = 60;
    cfg.data.noise = 0.6;
    cfg.partition.num_devices = kDevices;
    cfg.seed = kBenchSeed;
    cfg.threads = threads;
    cfg.ps.mode = mode;
    cfg.ps.staleness_bound = 1;
    cfg.ps.pipeline_depth = pipeline_depth;
    cfg.ps.sim_device_latency_s = kDeviceLatencyS;
    return cfg;
}

struct Measurement
{
    SyncMode mode;
    int threads = 0;
    int pipeline_depth = 1;
    double rounds_per_sec = 0.0;
    double mean_staleness = 0.0;
    int evicted = 0;
};

std::string
mode_label(const Measurement &m)
{
    std::string label = sync_mode_name(m.mode);
    if (m.pipeline_depth > 1)
        label += "-p" + std::to_string(m.pipeline_depth);
    return label;
}

Measurement
measure(SyncMode mode, int threads, int pipeline_depth)
{
    FlSystem fl(ps_config(mode, threads, pipeline_depth));
    if (fl.ps() != nullptr) {
        // Rounds/sec measures the training runtime; keep snapshot
        // evaluation out of both the drained and the pipelined rows.
        fl.ps()->set_eval_fn(nullptr);
    }
    // Submit in expected completion order (fast devices first), as the
    // experiment harness does: the pipeline's launch trigger is the
    // first commit, so front-loading the quick clients is what lets
    // round t+1 start while round t's stragglers are still asleep.
    std::vector<int> ids(kDevices);
    for (int d = 0; d < kDevices; ++d)
        ids[static_cast<size_t>(d)] = d;
    std::stable_sort(ids.begin(), ids.end(), [&](int a, int b) {
        return fl.config().ps.sim_latency_for(a) <
            fl.config().ps.sim_latency_for(b);
    });

    Measurement m;
    m.mode = mode;
    m.threads = threads;
    m.pipeline_depth = pipeline_depth;
    double staleness = 0.0;

    if (fl.pipelined()) {
        // Streaming: submit every round up front and let the pipeline
        // keep `depth` of them in flight; the wall clock covers first
        // submit to last retirement.
        fl.submit_round(ids, 0, nullptr);  // Warm caches.
        fl.drain();
        std::mutex mu;
        const auto start = std::chrono::steady_clock::now();
        for (int round = 1; round <= kRounds; ++round) {
            fl.submit_round(ids, static_cast<uint64_t>(round),
                            [&](const PsRoundResult &res) {
                                std::lock_guard<std::mutex> lk(mu);
                                staleness += res.stats.mean_staleness;
                                m.evicted += res.stats.evicted;
                            });
        }
        fl.drain();
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        m.rounds_per_sec = kRounds / elapsed.count();
    } else {
        fl.run_round(ids, 0);  // Warm caches outside the timed region.
        const auto start = std::chrono::steady_clock::now();
        for (int round = 1; round <= kRounds; ++round) {
            const PsRoundStats st =
                fl.run_round(ids, static_cast<uint64_t>(round));
            staleness += st.mean_staleness;
            m.evicted += st.evicted;
        }
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        m.rounds_per_sec = kRounds / elapsed.count();
    }
    m.mean_staleness = staleness / kRounds;
    return m;
}

} // namespace

int
main()
{
    print_banner(std::cout,
                 "PS runtime throughput: CnnMnist, " +
                     std::to_string(kDevices) + " clients/round, " +
                     TextTable::num(kDeviceLatencyS * 1e3, 0) +
                     " ms base device latency");

    const std::vector<int> thread_counts = {1, 2, 4, 8};
    std::vector<Measurement> results;
    for (SyncMode mode :
         {SyncMode::Sync, SyncMode::SemiAsync, SyncMode::Async})
        for (int threads : thread_counts)
            results.push_back(measure(mode, threads, 1));
    for (int threads : thread_counts)
        results.push_back(measure(SyncMode::SemiAsync, threads,
                                  kPipelineDepth));

    TextTable t;
    t.set_header({"mode", "threads", "rounds/s", "vs 1-thread",
                  "mean-staleness", "evicted"});
    double base_sync = 0.0, base_semi = 0.0, base_async = 0.0,
           base_piped = 0.0;
    for (const auto &m : results) {
        double &base = m.pipeline_depth > 1 ? base_piped :
            m.mode == SyncMode::Sync ? base_sync :
            m.mode == SyncMode::SemiAsync ? base_semi : base_async;
        if (m.threads == 1)
            base = m.rounds_per_sec;
        t.add_row({mode_label(m), std::to_string(m.threads),
                   TextTable::num(m.rounds_per_sec, 2),
                   ratio(m.rounds_per_sec, base),
                   TextTable::num(m.mean_staleness, 2),
                   std::to_string(m.evicted)});
    }
    t.render(std::cout);

    double semi1 = 0.0, semi8 = 0.0, piped8 = 0.0;
    for (const auto &m : results) {
        if (m.mode != SyncMode::SemiAsync)
            continue;
        if (m.pipeline_depth > 1) {
            if (m.threads == 8)
                piped8 = m.rounds_per_sec;
        } else {
            if (m.threads == 1)
                semi1 = m.rounds_per_sec;
            if (m.threads == 8)
                semi8 = m.rounds_per_sec;
        }
    }
    const double speedup = semi1 > 0.0 ? semi8 / semi1 : 0.0;
    const double pipeline_speedup = semi8 > 0.0 ? piped8 / semi8 : 0.0;
    const bool scaling_ok = speedup >= 2.0;
    const bool pipeline_ok = pipeline_speedup >= 1.3;
    std::cout << "SemiAsync 8-thread vs 1-thread: "
              << TextTable::num(speedup, 2) << "x ("
              << (scaling_ok ? "PASS" : "FAIL") << " >= 2x)\n";
    std::cout << "Pipeline depth-" << kPipelineDepth
              << " vs drained at 8 threads: "
              << TextTable::num(pipeline_speedup, 2) << "x ("
              << (pipeline_ok ? "PASS" : "FAIL") << " >= 1.3x)\n";

    // Record the compute backend + hardware so rounds/sec trajectories
    // from different machines (and arch variants) are comparable.
    std::ofstream json("BENCH_ps_throughput.json");
    json << "{\n  \"workload\": \"CnnMnist\",\n"
         << "  \"kernel_arch\": \""
         << kernels::kernel_arch_name(kernels::current_kernel_arch())
         << "\",\n"
         << "  \"kernel_arch_best\": \""
         << kernels::kernel_arch_name(kernels::best_kernel_arch())
         << "\",\n"
         << "  \"hardware_threads\": "
         << std::thread::hardware_concurrency() << ",\n"
         << "  \"clients_per_round\": " << kDevices << ",\n"
         << "  \"timed_rounds\": " << kRounds << ",\n"
         << "  \"base_device_latency_s\": " << kDeviceLatencyS << ",\n"
         << "  \"semiasync_speedup_8v1\": " << speedup << ",\n"
         << "  \"pipeline_depth\": " << kPipelineDepth << ",\n"
         << "  \"pipeline_speedup\": " << pipeline_speedup << ",\n"
         << "  \"results\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const auto &m = results[i];
        json << "    {\"mode\": \"" << mode_label(m)
             << "\", \"threads\": " << m.threads
             << ", \"pipeline_depth\": " << m.pipeline_depth
             << ", \"rounds_per_sec\": " << m.rounds_per_sec
             << ", \"mean_staleness\": " << m.mean_staleness
             << ", \"evicted\": " << m.evicted << "}"
             << (i + 1 < results.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::cout << "wrote BENCH_ps_throughput.json\n";
    return scaling_ok && pipeline_ok ? 0 : 1;
}
