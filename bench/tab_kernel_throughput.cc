/**
 * @file
 * Kernel-dispatch compute backend throughput, written to
 * BENCH_kernel_throughput.json with the kernel arch + hardware recorded
 * so trajectories across machines are comparable.
 *
 * Three measurements:
 *  - GEMM micro: 512x512x512, the seed's scalar triple loop (inlined
 *    here as the frozen reference) vs the dispatched kernel at the
 *    scalar and best arch variants.
 *  - Conv micro: one Conv2D forward+backward (im2col + GEMM path) at
 *    scalar vs best variant.
 *  - End to end: pipelined SemiAsync rounds/sec on CnnMnist with zero
 *    simulated device latency (pure compute), scalar vs best variant —
 *    the scalar variant is bit- and speed-compatible with the PR 2
 *    baseline path, so this ratio is the round-time win on this
 *    machine.
 *
 * Also measured: a GEMM row per supported kernel arch (scalar, neon,
 * avx2, avx512 — whatever this box can run), and the packed-panel
 * driver vs the direct blocked kernels at a deep-K shape
 * (256x256x4096, the conv-backward / LSTM regime packing exists for).
 *
 * Exit-code gates (skipped with a note when the CPU has no vector
 * variant): vectorized GEMM >= 3x the seed scalar loop, the
 * end-to-end pipelined round time must improve (>= 1.05x), and on
 * AVX2-capable boxes the packed path must beat the direct AVX2
 * kernels by >= 1.25x at the deep-K shape.
 */
#include <chrono>
#include <fstream>
#include <iostream>
#include <thread>

#include "bench_common.h"
#include "kernels/kernels.h"
#include "nn/conv2d.h"
#include "ps/ps_server.h"
#include "util/rng.h"

using namespace autofl;
using namespace autofl::bench;

namespace {

constexpr int kGemmDim = 512;
constexpr int kDevices = 8;
constexpr int kRounds = 6;
constexpr int kPipelineDepth = 4;

double
now_s()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** The seed's matmul triple loop, frozen as the reference baseline. */
void
seed_matmul(int m, int n, int k, const float *pa, const float *pb, float *po)
{
    for (int i = 0; i < m; ++i) {
        for (int kk = 0; kk < k; ++kk) {
            const float av = pa[static_cast<size_t>(i) * k + kk];
            if (av == 0.0f)
                continue;
            const float *brow = pb + static_cast<size_t>(kk) * n;
            float *orow = po + static_cast<size_t>(i) * n;
            for (int j = 0; j < n; ++j)
                orow[j] += av * brow[j];
        }
    }
}

/** Best-of-@p iters wall time of @p fn (one warmup call first). */
template <typename Fn>
double
time_best(int iters, Fn &&fn)
{
    fn();
    double best = 1e30;
    for (int it = 0; it < iters; ++it) {
        const double t0 = now_s();
        fn();
        best = std::min(best, now_s() - t0);
    }
    return best;
}

double
gemm_gflops(double seconds)
{
    const double flops = 2.0 * kGemmDim * kGemmDim * kGemmDim;
    return flops / seconds / 1e9;
}

FlSystemConfig
e2e_config()
{
    FlSystemConfig cfg;
    cfg.workload = Workload::CnnMnist;
    cfg.params = {16, 1, kDevices};
    cfg.hyper.lr = 0.05;
    cfg.data.train_samples = 240;
    cfg.data.test_samples = 40;
    cfg.data.noise = 0.6;
    cfg.partition.num_devices = kDevices;
    cfg.seed = kBenchSeed;
    cfg.threads = 8;
    cfg.ps.mode = SyncMode::SemiAsync;
    cfg.ps.staleness_bound = 1;
    cfg.ps.pipeline_depth = kPipelineDepth;
    cfg.ps.sim_device_latency_s = 0.0;  // Pure compute: kernels visible.
    return cfg;
}

/** Pipelined rounds/sec under the currently selected kernel arch. */
double
e2e_rounds_per_sec()
{
    FlSystem fl(e2e_config());
    if (fl.ps() != nullptr)
        fl.ps()->set_eval_fn(nullptr);
    std::vector<int> ids(kDevices);
    for (int d = 0; d < kDevices; ++d)
        ids[static_cast<size_t>(d)] = d;

    fl.submit_round(ids, 0, nullptr);  // Warm caches.
    fl.drain();
    const double t0 = now_s();
    for (int round = 1; round <= kRounds; ++round)
        fl.submit_round(ids, static_cast<uint64_t>(round), nullptr);
    fl.drain();
    return kRounds / (now_s() - t0);
}

} // namespace

int
main()
{
    using kernels::KernelArch;
    const KernelArch best = kernels::best_kernel_arch();
    const bool vectorized = best != KernelArch::Scalar;
    const unsigned hw_threads = std::thread::hardware_concurrency();

    print_banner(std::cout,
                 std::string("Kernel backend throughput (best arch: ") +
                     kernels::kernel_arch_name(best) + ", " +
                     std::to_string(hw_threads) + " hw threads)");

    // ------------------------------------------------------ GEMM micro
    Rng rng(kBenchSeed);
    const size_t elems = static_cast<size_t>(kGemmDim) * kGemmDim;
    std::vector<float> a(elems), b(elems), c(elems, 0.0f);
    for (auto &v : a)
        v = static_cast<float>(rng.uniform(-1, 1));
    for (auto &v : b)
        v = static_cast<float>(rng.uniform(-1, 1));

    // Best-of-5 keeps the ratio stable on noisy shared (or 1-core)
    // machines; the CI job additionally allows one retry.
    const double t_naive = time_best(5, [&] {
        std::fill(c.begin(), c.end(), 0.0f);
        seed_matmul(kGemmDim, kGemmDim, kGemmDim, a.data(), b.data(),
                    c.data());
    });
    kernels::set_kernel_arch(KernelArch::Scalar);
    const double t_scalar = time_best(5, [&] {
        kernels::gemm(kGemmDim, kGemmDim, kGemmDim, a.data(), kGemmDim,
                      b.data(), kGemmDim, c.data(), kGemmDim);
    });
    kernels::set_kernel_arch(best);
    const double t_simd = time_best(5, [&] {
        kernels::gemm(kGemmDim, kGemmDim, kGemmDim, a.data(), kGemmDim,
                      b.data(), kGemmDim, c.data(), kGemmDim);
    });
    const double gemm_speedup = t_naive / t_simd;

    // One GEMM row per variant the box can run (Auto path policy, like
    // the production call sites).
    std::vector<std::pair<KernelArch, double>> arch_rows;
    for (KernelArch arch : kernels::supported_kernel_archs()) {
        kernels::set_kernel_arch(arch);
        const double t = time_best(5, [&] {
            kernels::gemm(kGemmDim, kGemmDim, kGemmDim, a.data(), kGemmDim,
                          b.data(), kGemmDim, c.data(), kGemmDim);
        });
        arch_rows.emplace_back(arch, gemm_gflops(t));
    }

    // -------------------------------------------- packed vs direct path
    // Deep-K shape where panel reuse pays; measured on the AVX2 table
    // specifically so the ratio is comparable across boxes whose best
    // arch differs.
    constexpr int kPackM = 256, kPackN = 256, kPackK = 4096;
    const bool has_avx2 = kernels::kernel_arch_supported(KernelArch::Avx2);
    double packed_ratio = 0.0;
    if (has_avx2) {
        kernels::set_kernel_arch(KernelArch::Avx2);
        std::vector<float> pa(static_cast<size_t>(kPackM) * kPackK);
        std::vector<float> pb(static_cast<size_t>(kPackK) * kPackN);
        std::vector<float> pc(static_cast<size_t>(kPackM) * kPackN);
        for (auto &v : pa)
            v = static_cast<float>(rng.uniform(-1, 1));
        for (auto &v : pb)
            v = static_cast<float>(rng.uniform(-1, 1));
        const auto deep_gemm = [&] {
            kernels::gemm(kPackM, kPackN, kPackK, pa.data(), kPackK,
                          pb.data(), kPackN, pc.data(), kPackN);
        };
        kernels::set_gemm_path(kernels::GemmPath::Direct);
        const double t_direct = time_best(5, deep_gemm);
        kernels::set_gemm_path(kernels::GemmPath::Packed);
        const double t_packed = time_best(5, deep_gemm);
        kernels::set_gemm_path(kernels::GemmPath::Auto);
        packed_ratio = t_direct / t_packed;
    }
    kernels::set_kernel_arch(best);

    // ------------------------------------------------------ conv micro
    // CnnMnist's first 5x5 conv shape, batch 16. Setup (layer, weights,
    // input) stays outside the timed region: only fwd+bwd is measured.
    Conv2D conv(1, 8, 5, 1, 2);
    Rng crng(kBenchSeed);
    conv.init_weights(crng);
    Tensor conv_x({16, 1, 28, 28});
    for (size_t i = 0; i < conv_x.size(); ++i)
        conv_x[i] = static_cast<float>(crng.uniform(-1, 1));
    const auto conv_pass = [&] {
        Tensor y = conv.forward(conv_x);
        conv.zero_grad();
        conv.backward(y);
    };
    kernels::set_kernel_arch(KernelArch::Scalar);
    const double t_conv_scalar = time_best(3, conv_pass);
    kernels::set_kernel_arch(best);
    const double t_conv_simd = time_best(3, conv_pass);
    const double conv_speedup = t_conv_scalar / t_conv_simd;

    // ------------------------------------------------------ end to end
    kernels::set_kernel_arch(KernelArch::Scalar);
    const double rps_scalar = e2e_rounds_per_sec();
    kernels::set_kernel_arch(best);
    const double rps_simd = e2e_rounds_per_sec();
    const double e2e_speedup = rps_simd / rps_scalar;

    TextTable t;
    t.set_header({"measure", "scalar", "best-arch", "speedup",
                  "seed-naive"});
    t.add_row({"gemm-512 (GFLOP/s)", TextTable::num(gemm_gflops(t_scalar), 2),
               TextTable::num(gemm_gflops(t_simd), 2),
               ratio(t_naive, t_simd), TextTable::num(gemm_gflops(t_naive), 2)});
    t.add_row({"conv fwd+bwd (ms)", TextTable::num(t_conv_scalar * 1e3, 2),
               TextTable::num(t_conv_simd * 1e3, 2),
               ratio(t_conv_scalar, t_conv_simd), "-"});
    t.add_row({"pipelined rounds/s", TextTable::num(rps_scalar, 2),
               TextTable::num(rps_simd, 2), ratio(rps_simd, rps_scalar),
               "-"});
    t.render(std::cout);

    TextTable ta;
    ta.set_header({"arch", "gemm-512 GFLOP/s", "parity: gemm",
                   "elementwise", "codec", "transcendental"});
    for (const auto &[arch, gflops] : arch_rows) {
        const kernels::KernelParity &p = kernels::kernel_parity(arch);
        ta.add_row({kernels::kernel_arch_name(arch),
                    TextTable::num(gflops, 2),
                    kernels::parity_tier_name(p.gemm),
                    kernels::parity_tier_name(p.elementwise),
                    kernels::parity_tier_name(p.codec),
                    kernels::parity_tier_name(p.transcendental)});
    }
    ta.render(std::cout);

    bool gemm_ok = true, e2e_ok = true, packed_ok = true;
    if (vectorized) {
        gemm_ok = gemm_speedup >= 3.0;
        e2e_ok = e2e_speedup >= 1.05;
        std::cout << "vectorized GEMM vs seed scalar loop: "
                  << TextTable::num(gemm_speedup, 2) << "x ("
                  << (gemm_ok ? "PASS" : "FAIL") << " >= 3x)\n";
        std::cout << "pipelined round time vs scalar backend: "
                  << TextTable::num(e2e_speedup, 2) << "x ("
                  << (e2e_ok ? "PASS" : "FAIL") << " >= 1.05x)\n";
    } else {
        std::cout << "no vector variant on this CPU; speedup gates "
                     "skipped\n";
    }
    if (has_avx2) {
        packed_ok = packed_ratio >= 1.25;
        std::cout << "packed-panel vs direct AVX2 GEMM (256x256x4096): "
                  << TextTable::num(packed_ratio, 2) << "x ("
                  << (packed_ok ? "PASS" : "FAIL") << " >= 1.25x)\n";
    } else {
        std::cout << "no AVX2 on this CPU; packed-path gate skipped\n";
    }

    std::ofstream json("BENCH_kernel_throughput.json");
    json << "{\n"
         << "  \"kernel_arch\": \""
         << kernels::kernel_arch_name(best) << "\",\n"
         << "  \"hardware_threads\": " << hw_threads << ",\n"
         << "  \"gemm_dim\": " << kGemmDim << ",\n"
         << "  \"gemm_naive_gflops\": " << gemm_gflops(t_naive) << ",\n"
         << "  \"gemm_scalar_gflops\": " << gemm_gflops(t_scalar) << ",\n"
         << "  \"gemm_best_gflops\": " << gemm_gflops(t_simd) << ",\n"
         << "  \"gemm_speedup_vs_naive\": " << gemm_speedup << ",\n"
         << "  \"gemm_arch_gflops\": {";
    for (size_t i = 0; i < arch_rows.size(); ++i)
        json << (i != 0 ? ", " : "") << "\""
             << kernels::kernel_arch_name(arch_rows[i].first)
             << "\": " << arch_rows[i].second;
    json << "},\n"
         << "  \"packed_gemm_shape\": [" << kPackM << ", " << kPackN << ", "
         << kPackK << "],\n"
         << "  \"packed_vs_direct_avx2\": " << packed_ratio << ",\n"
         << "  \"conv_speedup\": " << conv_speedup << ",\n"
         << "  \"e2e_pipeline_depth\": " << kPipelineDepth << ",\n"
         << "  \"e2e_rounds_per_sec_scalar\": " << rps_scalar << ",\n"
         << "  \"e2e_rounds_per_sec_best\": " << rps_simd << ",\n"
         << "  \"e2e_speedup\": " << e2e_speedup << "\n"
         << "}\n";
    std::cout << "wrote BENCH_kernel_throughput.json\n";
    return gemm_ok && e2e_ok ? 0 : 1;
}
