/**
 * @file
 * Push-path compression gate: runs the same loopback-cluster training
 * job under every Compression mode and measures what each codec buys
 * and what it costs — push-path wire bytes per round (Push + PushDelta
 * frames only; pulls stay full f32 and would dilute the ratio), final
 * accuracy against the uncompressed run, and raw codec encode/decode
 * throughput on a weight-sized delta.
 *
 * Gates (the exit code):
 *   - Int8 shrinks push bytes/round by >= 3x vs None;
 *   - TopK at the default 10% keeps >= 8x;
 *   - every compressed mode's final accuracy lands within one
 *     percentage point of the uncompressed run;
 *   - Compression::None over the cluster reproduces the direct
 *     in-process runtime bit for bit (the codec must be invisible
 *     when it is off).
 *
 * Results go to BENCH_compression.json.
 */
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "fl/fl_cluster.h"
#include "fl/system.h"
#include "kernels/arch.h"
#include "net/van.h"
#include "ps/compression.h"
#include "util/rng.h"

using namespace autofl;
using namespace autofl::bench;

namespace {

constexpr int kWorkers = 4;
constexpr int kRounds = 48;
constexpr double kMinInt8Reduction = 3.0;
constexpr double kMinTopKReduction = 8.0;
constexpr double kMaxAccDelta = 0.01;  // One percentage point.

// 8 jobs per round out of 32 devices, one latency class (see
// tab_net_throughput.cc for why the stride matters on the cluster).
const std::vector<int> kJobIds = {0, 4, 8, 12, 16, 20, 24, 28};

FlSystemConfig
run_config(Compression mode, bool loopback)
{
    FlSystemConfig cfg;
    cfg.workload = Workload::CnnMnist;
    cfg.params = {16, 1, 6};
    cfg.hyper.lr = 0.05;
    // The accuracy gate compares modes at 1pp resolution: the test set
    // must be large enough that one sample moves accuracy well below
    // the tolerance, and training must reach its plateau so the codecs
    // are compared at convergence, not mid-descent.
    cfg.data.train_samples = 480;
    cfg.data.test_samples = 400;
    cfg.data.noise = 0.6;
    cfg.partition.num_devices = 32;
    cfg.seed = kBenchSeed;
    cfg.threads = kWorkers;
    cfg.ps.mode = SyncMode::SemiAsync;
    cfg.ps.staleness_bound = 0;
    cfg.ps.shards = 5;
    cfg.ps.compression.mode = mode;
    if (loopback) {
        cfg.ps.net.listen = "loopback";
        cfg.ps.net.workers = kWorkers;
    }
    return cfg;
}

/** One mode's measured training run over the loopback cluster. */
struct ModeResult
{
    Compression mode = Compression::None;
    double push_bytes_per_round = 0.0;
    double reduction = 1.0;       ///< None's push bytes / this mode's.
    double final_accuracy = 0.0;
    double acc_delta = 0.0;       ///< vs the uncompressed run.
};

ModeResult
measure_mode(Compression mode)
{
    ModeResult r;
    r.mode = mode;
    FlSystem fl(run_config(mode, true));
    for (uint64_t round = 0; round < kRounds; ++round)
        fl.run_round(kJobIds, round);
    r.final_accuracy = fl.evaluate();
    // Workers send every push-path frame exactly once; counting their
    // sent bytes for the two push types isolates the uplink the codec
    // is allowed to shrink.
    uint64_t push_bytes = 0;
    for (int w = 0; w < kWorkers; ++w) {
        const net::Transport &van = fl.cluster()->loopback_worker(w)->van();
        push_bytes += van.bytes_sent(net::MsgType::Push) +
            van.bytes_sent(net::MsgType::PushDelta);
    }
    r.push_bytes_per_round = static_cast<double>(push_bytes) / kRounds;
    fl.cluster()->shutdown();
    return r;
}

/**
 * The off-switch gate: a None-mode cluster run must produce the very
 * same weight bits as the direct in-process runtime — the compression
 * subsystem may not perturb the uncompressed push path at all.
 */
bool
none_bit_exact()
{
    FlSystem direct(run_config(Compression::None, false));
    FlSystem clustered(run_config(Compression::None, true));
    for (uint64_t round = 0; round < 3; ++round) {
        direct.run_round(kJobIds, round);
        clustered.run_round(kJobIds, round);
    }
    const auto &a = direct.server().global_weights();
    const auto &b = clustered.server().global_weights();
    bool equal = a.size() == b.size();
    for (size_t i = 0; equal && i < a.size(); ++i)
        equal = a[i] == b[i];
    clustered.cluster()->shutdown();
    return equal;
}

/** Raw codec throughput on an n-element delta (no error feedback). */
struct CodecResult
{
    Compression mode = Compression::Fp16;
    size_t payload_bytes = 0;
    double encode_mb_per_sec = 0.0;
    double decode_mb_per_sec = 0.0;
};

CodecResult
measure_codec(Compression mode, size_t n, int reps)
{
    Rng rng(kBenchSeed);
    std::vector<float> delta(n);
    for (auto &v : delta)
        v = rng.uniform(-0.5f, 0.5f);

    CompressionConfig cfg;
    cfg.mode = mode;

    CodecResult r;
    r.mode = mode;
    const double raw_mb = static_cast<double>(n) * 4.0 / 1e6;

    EncodedDelta e;
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i)
        e = encode_delta(cfg, delta);
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    r.payload_bytes = encoded_payload_bytes(e);
    r.encode_mb_per_sec = raw_mb * reps / elapsed.count();

    std::vector<float> out;
    start = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i) {
        if (decode_delta(e, &out) != CodecStatus::Ok)
            return r;  // Leaves decode throughput at 0: visible failure.
    }
    elapsed = std::chrono::steady_clock::now() - start;
    r.decode_mb_per_sec = raw_mb * reps / elapsed.count();
    return r;
}

} // namespace

int
main()
{
    print_banner(std::cout,
                 "Push-path compression: bytes/round per codec, "
                 "accuracy deltas, codec throughput, gates");

    const std::vector<Compression> kModes = {
        Compression::None, Compression::Fp16, Compression::Int8,
        Compression::TopK};

    std::vector<ModeResult> runs;
    for (Compression mode : kModes)
        runs.push_back(measure_mode(mode));
    const ModeResult &none = runs.front();
    for (auto &r : runs) {
        if (r.push_bytes_per_round > 0.0)
            r.reduction = none.push_bytes_per_round / r.push_bytes_per_round;
        r.acc_delta = r.final_accuracy - none.final_accuracy;
    }

    TextTable t;
    t.set_header({"mode", "push-KB/round", "reduction", "final-acc(%)",
                  "acc-delta(pp)"});
    for (const auto &r : runs) {
        t.add_row({compression_name(r.mode),
                   TextTable::num(r.push_bytes_per_round / 1e3, 1),
                   TextTable::num(r.reduction, 2) + "x",
                   TextTable::num(r.final_accuracy * 100.0, 1),
                   TextTable::num(r.acc_delta * 100.0, 2)});
    }
    t.render(std::cout);

    // Codec throughput on a 1M-element delta: large enough that the
    // timed loop measures the kernels, not the allocator.
    std::vector<CodecResult> codecs;
    for (Compression mode :
         {Compression::Fp16, Compression::Int8, Compression::TopK})
        codecs.push_back(measure_codec(mode, 1u << 20, 20));

    TextTable ct;
    ct.set_header({"codec", "payload-bytes", "encode-MB/s", "decode-MB/s"});
    for (const auto &c : codecs) {
        ct.add_row({compression_name(c.mode),
                    std::to_string(c.payload_bytes),
                    TextTable::num(c.encode_mb_per_sec, 0),
                    TextTable::num(c.decode_mb_per_sec, 0)});
    }
    ct.render(std::cout);

    const bool bit_exact = none_bit_exact();
    const ModeResult &int8 = runs[2];
    const ModeResult &topk = runs[3];
    const bool int8_pass = int8.reduction >= kMinInt8Reduction;
    const bool topk_pass = topk.reduction >= kMinTopKReduction;
    bool acc_pass = true;
    for (size_t i = 1; i < runs.size(); ++i)
        acc_pass = acc_pass && std::fabs(runs[i].acc_delta) <= kMaxAccDelta;
    const bool pass = bit_exact && int8_pass && topk_pass && acc_pass;

    std::cout << "int8 reduction: " << TextTable::num(int8.reduction, 2)
              << "x (" << (int8_pass ? "PASS" : "FAIL") << " >= "
              << TextTable::num(kMinInt8Reduction, 1) << "x)\n"
              << "topk reduction: " << TextTable::num(topk.reduction, 2)
              << "x (" << (topk_pass ? "PASS" : "FAIL") << " >= "
              << TextTable::num(kMinTopKReduction, 1) << "x)\n"
              << "accuracy within " << TextTable::num(kMaxAccDelta * 100, 0)
              << "pp of uncompressed: " << (acc_pass ? "PASS" : "FAIL")
              << "\n"
              << "none-mode cluster bit-exact vs direct: "
              << (bit_exact ? "PASS" : "FAIL") << "\n";

    std::ofstream json("BENCH_compression.json");
    json << "{\n  \"workload\": \"CnnMnist\",\n"
         << "  \"kernel_arch\": \""
         << kernels::kernel_arch_name(kernels::current_kernel_arch())
         << "\",\n"
         << "  \"jobs_per_round\": " << kJobIds.size() << ",\n"
         << "  \"rounds\": " << kRounds << ",\n"
         << "  \"workers\": " << kWorkers << ",\n"
         << "  \"hardware_threads\": "
         << std::thread::hardware_concurrency() << ",\n"
         << "  \"modes\": [\n";
    for (size_t i = 0; i < runs.size(); ++i) {
        const auto &r = runs[i];
        json << "    {\"mode\": \"" << compression_name(r.mode)
             << "\", \"push_bytes_per_round\": " << r.push_bytes_per_round
             << ", \"reduction_x\": " << r.reduction
             << ", \"final_accuracy\": " << r.final_accuracy
             << ", \"acc_delta\": " << r.acc_delta << "}"
             << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    json << "  ],\n  \"codec_throughput\": [\n";
    for (size_t i = 0; i < codecs.size(); ++i) {
        const auto &c = codecs[i];
        json << "    {\"codec\": \"" << compression_name(c.mode)
             << "\", \"elements\": " << (1u << 20)
             << ", \"payload_bytes\": " << c.payload_bytes
             << ", \"encode_mb_per_sec\": " << c.encode_mb_per_sec
             << ", \"decode_mb_per_sec\": " << c.decode_mb_per_sec << "}"
             << (i + 1 < codecs.size() ? "," : "") << "\n";
    }
    json << "  ],\n  \"gates\": {"
         << "\"min_int8_reduction\": " << kMinInt8Reduction
         << ", \"int8_reduction\": " << int8.reduction
         << ", \"int8_pass\": " << (int8_pass ? "true" : "false")
         << ", \"min_topk_reduction\": " << kMinTopKReduction
         << ", \"topk_reduction\": " << topk.reduction
         << ", \"topk_pass\": " << (topk_pass ? "true" : "false")
         << ", \"max_acc_delta\": " << kMaxAccDelta
         << ", \"acc_pass\": " << (acc_pass ? "true" : "false")
         << ", \"none_bit_exact\": " << (bit_exact ? "true" : "false")
         << ", \"pass\": " << (pass ? "true" : "false") << "}\n}\n";
    std::cout << "wrote BENCH_compression.json\n";
    return pass ? 0 : 1;
}
