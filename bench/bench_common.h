/**
 * @file
 * Shared helpers for the per-figure bench binaries: config construction,
 * oracle resolution, policy execution, and the paper-shaped comparison
 * tables each binary prints before running its google-benchmark micro
 * measurements.
 */
#ifndef AUTOFL_BENCH_BENCH_COMMON_H
#define AUTOFL_BENCH_BENCH_COMMON_H

#include <iostream>
#include <string>
#include <vector>

#include "harness/oracle_search.h"
#include "util/table.h"

namespace autofl::bench {

/** Default seed shared by every bench so results line up across figures. */
constexpr uint64_t kBenchSeed = 2021;  // MICRO 2021.

/** Base experiment configuration for a scenario. */
inline ExperimentConfig
base_config(Workload workload, ParamSetting setting,
            VarianceScenario variance,
            DataDistribution distribution = DataDistribution::IdealIid,
            uint64_t seed = kBenchSeed)
{
    ExperimentConfig cfg;
    cfg.workload = workload;
    cfg.setting = setting;
    cfg.variance = variance;
    cfg.distribution = distribution;
    cfg.seed = seed;
    cfg.max_rounds = 55;
    cfg.threads = 16;
    return cfg;
}

/**
 * Run one policy on a scenario. Oracle policies are resolved first via
 * the offline search (Section 5.1); under non-IID distributions the
 * oracle additionally prefers IID devices.
 */
inline ExperimentResult
run_policy(ExperimentConfig cfg, PolicyKind kind)
{
    cfg.policy = kind;
    if (kind == PolicyKind::OracleParticipant || kind == PolicyKind::OracleFl) {
        auto part = search_oracle_participant(cfg);
        if (kind == PolicyKind::OracleFl)
            cfg.oracle_spec = search_oracle_fl(cfg, part.spec).spec;
        else
            cfg.oracle_spec = part.spec;
        cfg.oracle_prefers_iid =
            cfg.distribution != DataDistribution::IdealIid;
    }
    return run_experiment(cfg);
}

/** Format a normalized ratio ("2.31x") against a baseline value. */
inline std::string
ratio(double value, double baseline)
{
    if (baseline <= 0.0)
        return "n/a";
    return TextTable::num(value / baseline, 2) + "x";
}

/**
 * Print the standard comparison table for a set of policy runs. The
 * first entry is the normalization baseline (FedAvg-Random in the
 * paper's figures). Energy efficiency (PPW) is reported two ways:
 * round-level (work per Joule) and convergence-level (1 / energy to
 * reach the accuracy target; 0 when the run never converged, matching
 * the paper's "does not converge" bars).
 */
inline void
print_comparison(const std::string &title,
                 const std::vector<ExperimentResult> &runs)
{
    print_banner(std::cout, title);
    TextTable t;
    t.set_header({"policy", "PPW(norm)", "PPW-conv(norm)", "conv-rounds",
                  "time-to-acc(s)", "final-acc(%)", "round(s)",
                  "mix H/M/L"});
    const double base_ppw = runs.front().ppw_round();
    const double base_conv = runs.front().ppw_convergence();
    for (const auto &r : runs) {
        auto mix = r.tier_mix();
        t.add_row({
            r.policy_name,
            ratio(r.ppw_round(), base_ppw),
            r.converged() ? (base_conv > 0.0 ?
                                 ratio(r.ppw_convergence(), base_conv) :
                                 ">" + TextTable::num(1.0, 1) + "x") :
                            "no-conv",
            r.converged() ? std::to_string(r.rounds_to_target) : "no-conv",
            r.converged() ? TextTable::num(r.time_to_target_s, 1) : "-",
            TextTable::num(r.final_accuracy * 100.0, 1),
            TextTable::num(r.avg_round_s(), 2),
            TextTable::num(mix[0] * 100, 0) + "/" +
                TextTable::num(mix[1] * 100, 0) + "/" +
                TextTable::num(mix[2] * 100, 0),
        });
    }
    t.render(std::cout);
}

/** The paper's standard baseline trio plus AutoFL and the oracles. */
inline const std::vector<PolicyKind> &
fig8_policies()
{
    static const std::vector<PolicyKind> kPolicies = {
        PolicyKind::FedAvgRandom, PolicyKind::Power,
        PolicyKind::Performance, PolicyKind::OracleParticipant,
        PolicyKind::AutoFl,      PolicyKind::OracleFl,
    };
    return kPolicies;
}

} // namespace autofl::bench

#endif // AUTOFL_BENCH_BENCH_COMMON_H
