/**
 * @file
 * Distributed transport throughput: ping-pong RTT and messages/sec for
 * the three Van flavors (loopback, Unix socket, TCP) at control-plane
 * and weight-sized payloads, the measured wire bytes per training
 * round (total and attributed per message type), and the headline
 * overhead check — a loopback cluster round
 * must stay within 10% of the direct in-process runtime at equal
 * parallelism (the transport is allowed to cost a copy, not a round).
 * Results go to BENCH_net_throughput.json; the overhead check is the
 * exit code.
 *
 * The gate round uses devices from one latency class only: the cluster
 * assigns jobs round-robin while the in-process executor schedules
 * greedily, and comparing the transports' overhead requires the two
 * schedules to have the same critical path.
 */
#include <chrono>
#include <fstream>
#include <iostream>
#include <thread>
#include <unistd.h>
#include <utility>

#include "bench_common.h"
#include "fl/fl_cluster.h"
#include "fl/system.h"
#include "kernels/arch.h"
#include "net/van.h"
#include "ps/ps_server.h"

using namespace autofl;
using namespace autofl::bench;

namespace {

constexpr int kWorkers = 4;
constexpr int kGateRounds = 12;
constexpr double kDeviceLatencyS = 0.02;
constexpr double kMaxOverhead = 0.10;  // Loopback may cost <= 10%.

// All latency class 0 (device % 4 == 0): see the file comment.
const std::vector<int> kGateIds = {0, 4, 8, 12, 16, 20, 24, 28};

FlSystemConfig
gate_config(bool loopback)
{
    FlSystemConfig cfg;
    cfg.workload = Workload::CnnMnist;
    cfg.params = {16, 1, 6};
    cfg.hyper.lr = 0.05;
    cfg.data.train_samples = 320;
    cfg.data.test_samples = 80;
    cfg.data.noise = 0.6;
    cfg.partition.num_devices = 32;
    cfg.seed = kBenchSeed;
    cfg.threads = kWorkers;
    cfg.ps.mode = SyncMode::SemiAsync;
    cfg.ps.staleness_bound = 0;
    cfg.ps.shards = 5;
    cfg.ps.sim_device_latency_s = kDeviceLatencyS;
    if (loopback) {
        cfg.ps.net.listen = "loopback";
        cfg.ps.net.workers = kWorkers;
    }
    return cfg;
}

struct RttResult
{
    std::string transport;
    std::string payload;
    size_t frame_bytes = 0;
    int pings = 0;
    double rtt_us = 0.0;
    double msgs_per_sec = 0.0;
    double mb_per_sec = 0.0;
};

net::Message
make_ping(size_t floats)
{
    net::Message m;
    m.type = net::MsgType::Push;
    m.from = 1;
    m.round = 7;
    m.seq = 3;
    m.ints = {1, 2, 3};
    m.floats.assign(floats, 1.25f);
    return m;
}

/**
 * Ping-pong @p pings round trips of a @p floats-sized message over an
 * established endpoint pair; @p server echoes from its own thread.
 */
RttResult
measure_rtt(net::Transport &client, net::Transport &server,
            const char *transport, const char *payload, size_t floats,
            int pings)
{
    std::thread echo([&server] {
        net::Message m;
        while (server.recv(&m, -1) == net::RecvStatus::Ok)
            server.send(std::move(m));
    });

    RttResult r;
    r.transport = transport;
    r.payload = payload;
    r.frame_bytes = net::wire_frame_bytes(make_ping(floats));
    r.pings = pings;

    net::Message reply;
    client.send(make_ping(floats));  // Warm both directions.
    client.recv(&reply, -1);
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < pings; ++i) {
        client.send(make_ping(floats));
        if (client.recv(&reply, -1) != net::RecvStatus::Ok)
            break;
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    client.close();
    echo.join();

    r.rtt_us = elapsed.count() / pings * 1e6;
    r.msgs_per_sec = 2.0 * pings / elapsed.count();
    r.mb_per_sec = 2.0 * pings * static_cast<double>(r.frame_bytes) /
        elapsed.count() / 1e6;
    return r;
}

/** RTT over a fresh loopback pair. */
RttResult
rtt_loopback(const char *payload, size_t floats, int pings)
{
    auto [a, b] = net::make_loopback_pair();
    return measure_rtt(*a, *b, "loopback", payload, floats, pings);
}

/**
 * RTT over a socket scheme: listen, dial from a thread, accept, then
 * ping-pong. Returns false when the address cannot be bound (e.g. no
 * TCP on this runner) — the row is skipped, not failed.
 */
bool
rtt_socket(const std::string &addr_str, const char *transport,
           const char *payload, size_t floats, int pings, RttResult *out)
{
    const net::NetAddress addr = net::NetAddress::parse(addr_str);
    std::string err;
    auto listener = net::Listener::listen(addr, &err);
    if (!listener) {
        std::cout << "  (skipping " << transport << ": " << err << ")\n";
        return false;
    }
    std::unique_ptr<net::Transport> client;
    std::thread dialer([&] { client = net::dial(addr, 50, 20, &err); });
    auto server = listener->accept(5000);
    dialer.join();
    if (!client || !server) {
        std::cout << "  (skipping " << transport << ": " << err << ")\n";
        return false;
    }
    *out = measure_rtt(*client, *server, transport, payload, floats, pings);
    return true;
}

struct GateResult
{
    double direct_rps = 0.0;
    double loopback_rps = 0.0;
    double bytes_per_round = 0.0;

    /** Wire bytes per round attributed to each message type (non-zero). */
    std::vector<std::pair<std::string, double>> bytes_by_type;
};

GateResult
measure_gate()
{
    GateResult g;
    {
        FlSystem fl(gate_config(false));
        if (fl.ps() != nullptr)
            fl.ps()->set_eval_fn(nullptr);  // Time the runtime only.
        fl.run_round(kGateIds, 0);  // Warm caches.
        const auto start = std::chrono::steady_clock::now();
        for (int r = 1; r <= kGateRounds; ++r)
            fl.run_round(kGateIds, static_cast<uint64_t>(r));
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        g.direct_rps = kGateRounds / elapsed.count();
    }
    {
        FlSystem fl(gate_config(true));
        fl.run_round(kGateIds, 0);  // Warm caches + assemble the fleet.
        const auto start = std::chrono::steady_clock::now();
        for (int r = 1; r <= kGateRounds; ++r)
            fl.run_round(kGateIds, static_cast<uint64_t>(r));
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        g.loopback_rps = kGateRounds / elapsed.count();
        // Worker-side send+recv covers every wire byte exactly once
        // (each server byte is some worker's peer byte).
        uint64_t bytes = 0;
        for (int w = 0; w < kWorkers; ++w) {
            net::ClusterWorker *cw = fl.cluster()->loopback_worker(w);
            bytes += cw->van().bytes_sent() + cw->van().bytes_received();
        }
        g.bytes_per_round =
            static_cast<double>(bytes) / (kGateRounds + 1);
        for (uint16_t t = net::kMinMsgType; t <= net::kMaxMsgType; ++t) {
            const auto type = static_cast<net::MsgType>(t);
            uint64_t per_type = 0;
            for (int w = 0; w < kWorkers; ++w) {
                const net::Transport &van =
                    fl.cluster()->loopback_worker(w)->van();
                per_type +=
                    van.bytes_sent(type) + van.bytes_received(type);
            }
            if (per_type > 0)
                g.bytes_by_type.emplace_back(
                    net::msg_type_name(type),
                    static_cast<double>(per_type) / (kGateRounds + 1));
        }
        fl.cluster()->shutdown();
    }
    return g;
}

} // namespace

int
main()
{
    // Weight-sized pings use the gate model's real dimension, so the
    // RTT rows measure the frames an actual training round moves.
    const size_t weight_floats =
        FlSystem(gate_config(false)).server().global_weights().size();

    print_banner(std::cout,
                 "Net transport throughput: ping-pong RTT, wire "
                 "bytes/round, loopback-vs-direct overhead gate");

    const std::string unix_addr = "unix:/tmp/autofl_bench_net_" +
        std::to_string(::getpid()) + ".sock";
    const std::string tcp_addr =
        "tcp:127.0.0.1:" + std::to_string(35000 + ::getpid() % 20000);

    std::vector<RttResult> rtts;
    rtts.push_back(rtt_loopback("control", 0, 4000));
    rtts.push_back(rtt_loopback("weights", weight_floats, 400));
    RttResult r;
    if (rtt_socket(unix_addr, "unix", "control", 0, 4000, &r))
        rtts.push_back(r);
    if (rtt_socket(unix_addr, "unix", "weights", weight_floats, 400, &r))
        rtts.push_back(r);
    if (rtt_socket(tcp_addr, "tcp", "control", 0, 4000, &r))
        rtts.push_back(r);
    if (rtt_socket(tcp_addr, "tcp", "weights", weight_floats, 400, &r))
        rtts.push_back(r);

    TextTable t;
    t.set_header({"transport", "payload", "frame-bytes", "rtt-us",
                  "msgs/s", "MB/s"});
    for (const auto &m : rtts) {
        t.add_row({m.transport, m.payload, std::to_string(m.frame_bytes),
                   TextTable::num(m.rtt_us, 1),
                   TextTable::num(m.msgs_per_sec, 0),
                   TextTable::num(m.mb_per_sec, 1)});
    }
    t.render(std::cout);

    const GateResult g = measure_gate();
    const double ratio =
        g.direct_rps > 0.0 ? g.loopback_rps / g.direct_rps : 0.0;
    const bool pass = ratio >= 1.0 - kMaxOverhead;
    std::cout << "wire traffic: "
              << TextTable::num(g.bytes_per_round / 1e6, 2)
              << " MB/round (" << kGateIds.size() << " jobs)\n";
    TextTable bt;
    bt.set_header({"msg-type", "bytes/round", "share-%"});
    for (const auto &[name, per_round] : g.bytes_by_type) {
        bt.add_row({name, TextTable::num(per_round, 0),
                    TextTable::num(100.0 * per_round / g.bytes_per_round,
                                   1)});
    }
    bt.render(std::cout);
    std::cout << "loopback cluster vs direct in-process at " << kWorkers
              << "-way parallelism: " << TextTable::num(ratio, 2) << "x ("
              << (pass ? "PASS" : "FAIL") << " >= "
              << TextTable::num(1.0 - kMaxOverhead, 2) << "x)\n";

    std::ofstream json("BENCH_net_throughput.json");
    json << "{\n  \"workload\": \"CnnMnist\",\n"
         << "  \"kernel_arch\": \""
         << kernels::kernel_arch_name(kernels::current_kernel_arch())
         << "\",\n"
         << "  \"weight_floats\": " << weight_floats << ",\n"
         << "  \"hardware_threads\": "
         << std::thread::hardware_concurrency() << ",\n"
         << "  \"rtt\": [\n";
    for (size_t i = 0; i < rtts.size(); ++i) {
        const auto &m = rtts[i];
        json << "    {\"transport\": \"" << m.transport
             << "\", \"payload\": \"" << m.payload
             << "\", \"frame_bytes\": " << m.frame_bytes
             << ", \"pings\": " << m.pings << ", \"rtt_us\": " << m.rtt_us
             << ", \"msgs_per_sec\": " << m.msgs_per_sec
             << ", \"mb_per_sec\": " << m.mb_per_sec << "}"
             << (i + 1 < rtts.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"gate\": {\"jobs_per_round\": " << kGateIds.size()
         << ", \"workers\": " << kWorkers
         << ", \"device_latency_s\": " << kDeviceLatencyS
         << ", \"bytes_per_round\": " << g.bytes_per_round
         << ",\n    \"bytes_per_round_by_type\": {";
    for (size_t i = 0; i < g.bytes_by_type.size(); ++i) {
        json << (i > 0 ? ", " : "") << "\"" << g.bytes_by_type[i].first
             << "\": " << g.bytes_by_type[i].second;
    }
    json << "}"
         << ",\n    \"direct_rounds_per_sec\": " << g.direct_rps
         << ", \"loopback_rounds_per_sec\": " << g.loopback_rps
         << ", \"loopback_ratio\": " << ratio
         << ", \"max_overhead\": " << kMaxOverhead << ", \"pass\": "
         << (pass ? "true" : "false") << "}\n}\n";
    std::cout << "wrote BENCH_net_throughput.json\n";
    return pass ? 0 : 1;
}
