/**
 * @file
 * Figure 15: Q-learning convergence — the per-round mean reward of a
 * cold-started AutoFL (no warmup), with per-device Q-tables vs shared
 * per-category Q-tables.
 *
 * Paper-reported shape: the reward converges within 50-80 rounds with
 * per-device tables; sharing tables across each performance category
 * speeds RL convergence by ~29% at a small prediction-accuracy cost,
 * and the total Q-table footprint stays small (~80 MB for 200 devices
 * in the paper; far less here since tables are sparse).
 */
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "util/stats.h"

using namespace autofl;
using namespace autofl::bench;

namespace {

/** Round at which the reward EWMA stabilizes (relative delta < tol). */
int
convergence_round(const std::vector<double> &rewards, double tol = 0.02,
                  int window = 8)
{
    Ewma ewma(0.15);
    std::vector<double> trace;
    trace.reserve(rewards.size());
    for (double r : rewards)
        trace.push_back(ewma.add(r));
    int stable = 0;
    for (size_t i = 1; i < trace.size(); ++i) {
        const double denom = std::max(1.0, std::abs(trace[i]));
        if (std::abs(trace[i] - trace[i - 1]) / denom < tol) {
            if (++stable >= window)
                return static_cast<int>(i) - window + 1;
        } else {
            stable = 0;
        }
    }
    return static_cast<int>(trace.size());
}

ExperimentResult
cold_start_run(bool shared)
{
    ExperimentConfig cfg = base_config(Workload::CnnMnist, ParamSetting::S3,
                                       VarianceScenario::Combined);
    cfg.autofl_warmup_rounds = 0;   // Cold start: learn on the job.
    cfg.autofl.shared_tables = shared;
    cfg.max_rounds = 100;
    cfg.target_accuracy = 2.0;      // Keep training to expose the trace.
    return run_policy(cfg, PolicyKind::AutoFl);
}

void
run_figure()
{
    auto per_device = cold_start_run(false);
    auto shared = cold_start_run(true);

    print_banner(std::cout,
                 "Fig. 15: reward trace of cold-started AutoFL "
                 "(CNN-MNIST, S3, field variance)");
    TextTable t;
    t.set_header({"round", "reward (per-device tables)",
                  "reward (shared tables)"});
    for (size_t r = 0; r < per_device.rounds.size(); r += 10) {
        t.add_row({std::to_string(r),
                   TextTable::num(per_device.rounds[r].mean_reward, 2),
                   TextTable::num(shared.rounds[r].mean_reward, 2)});
    }
    t.render(std::cout);

    std::vector<double> rd, rs;
    for (const auto &r : per_device.rounds)
        rd.push_back(r.mean_reward);
    for (const auto &r : shared.rounds)
        rs.push_back(r.mean_reward);
    const int conv_d = convergence_round(rd);
    const int conv_s = convergence_round(rs);

    TextTable s;
    s.set_header({"configuration", "reward-convergence round",
                  "speedup vs per-device"});
    s.add_row({"per-device Q-tables", std::to_string(conv_d), "1.00x"});
    s.add_row({"shared per-category Q-tables", std::to_string(conv_s),
               conv_d > 0 ? TextTable::num(
                                static_cast<double>(conv_d) /
                                    std::max(1, conv_s), 2) + "x" :
                            "n/a"});
    s.render(std::cout);
}

/** Micro: Q-table update for all 200 devices (one round's learning). */
void
BM_QTableRoundUpdate(benchmark::State &state)
{
    Fleet fleet(FleetMix{}, VarianceScenario::Combined, kBenchSeed);
    AutoFlScheduler sched(fleet, AutoFlConfig{});
    GlobalObservation gobs;
    gobs.profile = model_profile(Workload::CnnMnist);
    gobs.params = global_params_for(ParamSetting::S3);
    std::vector<LocalObservation> locals(200);
    for (auto &l : locals) {
        l.state.bandwidth_mbps = 60;
        l.data_classes = 10;
        l.total_classes = 10;
    }
    double acc = 10.0;
    for (auto _ : state) {
        auto plans = sched.select(gobs, locals, 20);
        RoundExec exec;
        exec.round_s = 1.0;
        for (const auto &p : plans) {
            DeviceExec e;
            e.device_id = p.device_id;
            e.comp_j = 2.0;
            exec.participants.push_back(e);
        }
        acc = std::min(95.0, acc + 0.1);
        sched.observe_outcome(exec, acc);
        benchmark::DoNotOptimize(sched.last_mean_reward());
    }
}
BENCHMARK(BM_QTableRoundUpdate);

} // namespace

int
main(int argc, char **argv)
{
    run_figure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
