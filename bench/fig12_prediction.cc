/**
 * @file
 * Figure 12: prediction accuracy — how closely AutoFL's participant
 * selections (tier mix) and execution-target choices (action mix) track
 * the optimal policy O_FL, per workload and per variance scenario.
 *
 * Paper-reported shape: ~94% participant-selection accuracy across
 * workloads and ~93% across variance/heterogeneity scenarios, and ~93%
 * execution-target accuracy; more high-end devices chosen for
 * CONV-heavy workloads, more mid/low-end for the LSTM.
 */
#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace autofl;
using namespace autofl::bench;

namespace {

void
row_for(TextTable &t, const std::string &label, const ExperimentConfig &cfg)
{
    auto autofl_res = run_policy(cfg, PolicyKind::AutoFl);
    auto oracle_res = run_policy(cfg, PolicyKind::OracleFl);
    const double sel =
        mix_similarity(autofl_res.tier_mix(), oracle_res.tier_mix());
    const double act =
        mix_similarity(autofl_res.action_mix(), oracle_res.action_mix());
    auto amix = autofl_res.tier_mix();
    auto omix = oracle_res.tier_mix();
    t.add_row({label,
               TextTable::num(amix[0] * 100, 0) + "/" +
                   TextTable::num(amix[1] * 100, 0) + "/" +
                   TextTable::num(amix[2] * 100, 0),
               TextTable::num(omix[0] * 100, 0) + "/" +
                   TextTable::num(omix[1] * 100, 0) + "/" +
                   TextTable::num(omix[2] * 100, 0),
               TextTable::num(sel * 100, 1) + "%",
               TextTable::num(act * 100, 1) + "%"});
}

void
run_figure()
{
    print_banner(std::cout,
                 "Fig. 12(a): AutoFL vs O_FL selection mix per workload "
                 "(S3, field variance)");
    TextTable by_workload;
    by_workload.set_header({"workload", "AutoFL H/M/L", "O_FL H/M/L",
                            "selection acc", "action acc"});
    for (Workload w : all_workloads()) {
        row_for(by_workload, workload_name(w),
                base_config(w, ParamSetting::S3,
                            VarianceScenario::Combined));
    }
    by_workload.render(std::cout);

    print_banner(std::cout,
                 "Fig. 12(b): AutoFL vs O_FL per variance/heterogeneity "
                 "scenario (CNN-MNIST, S3)");
    TextTable by_scenario;
    by_scenario.set_header({"scenario", "AutoFL H/M/L", "O_FL H/M/L",
                            "selection acc", "action acc"});
    for (VarianceScenario v : {VarianceScenario::None,
                               VarianceScenario::Interference,
                               VarianceScenario::WeakNetwork}) {
        row_for(by_scenario, variance_scenario_name(v),
                base_config(Workload::CnnMnist, ParamSetting::S3, v));
    }
    row_for(by_scenario, "non-IID(50%)",
            base_config(Workload::CnnMnist, ParamSetting::S3,
                        VarianceScenario::None, DataDistribution::NonIid50));
    by_scenario.render(std::cout);
}

/** Micro: AutoFL scheduling decision for one round (200 devices). */
void
BM_AutoFlSelect(benchmark::State &state)
{
    Fleet fleet(FleetMix{}, VarianceScenario::Combined, kBenchSeed);
    AutoFlScheduler sched(fleet, AutoFlConfig{});
    GlobalObservation gobs;
    gobs.profile = model_profile(Workload::CnnMnist);
    gobs.params = global_params_for(ParamSetting::S3);
    std::vector<LocalObservation> locals(200);
    for (auto &l : locals) {
        l.state.bandwidth_mbps = 60;
        l.data_classes = 10;
        l.total_classes = 10;
    }
    for (auto _ : state) {
        auto plans = sched.select(gobs, locals, 20);
        benchmark::DoNotOptimize(plans.size());
    }
}
BENCHMARK(BM_AutoFlSelect);

} // namespace

int
main(int argc, char **argv)
{
    run_figure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
