/**
 * @file
 * Section 6.4 overhead analysis: the runtime cost of AutoFL's per-round
 * machinery — observing states, selecting participants/targets from the
 * Q-tables, computing rewards, and updating the tables — plus the total
 * Q-table memory footprint.
 *
 * Paper-reported numbers: 531.5 us total per round (496.8 observe +
 * 10.5 select + 2.1 reward + 22.1 update), ~0.8% of a round; 80 MB of
 * Q-tables for 200 devices. Our sparse tables are far smaller; the
 * micro benchmarks below print the equivalent measured costs.
 */
#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace autofl;
using namespace autofl::bench;

namespace {

struct Rig
{
    Fleet fleet{FleetMix{}, VarianceScenario::Combined, kBenchSeed};
    AutoFlScheduler sched{fleet, AutoFlConfig{}};
    GlobalObservation gobs;
    std::vector<LocalObservation> locals;

    Rig()
    {
        gobs.profile = model_profile(Workload::CnnMnist);
        gobs.params = global_params_for(ParamSetting::S3);
        locals.resize(200);
        refresh();
    }

    void
    refresh()
    {
        fleet.begin_round();
        for (int d = 0; d < fleet.size(); ++d) {
            locals[static_cast<size_t>(d)].state = fleet.device(d).state();
            locals[static_cast<size_t>(d)].data_classes = 10;
            locals[static_cast<size_t>(d)].total_classes = 10;
        }
    }
};

/** Observe: sample + encode the full fleet's states. */
void
BM_ObserveStates(benchmark::State &state)
{
    Rig rig;
    for (auto _ : state) {
        rig.fleet.begin_round();
        int acc = 0;
        for (int d = 0; d < rig.fleet.size(); ++d) {
            acc += encode_local(make_local_state(
                rig.fleet.device(d).state(), 10, 10));
        }
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_ObserveStates)->Unit(benchmark::kMicrosecond);

/** Select: rank 200 devices by Q and pick top-K with best actions. */
void
BM_SelectParticipants(benchmark::State &state)
{
    Rig rig;
    rig.sched.set_epsilon(0.0);
    for (auto _ : state) {
        auto plans = rig.sched.select(rig.gobs, rig.locals, 20);
        benchmark::DoNotOptimize(plans.size());
    }
}
BENCHMARK(BM_SelectParticipants)->Unit(benchmark::kMicrosecond);

/** Reward: Eq. 7 for all 200 devices. */
void
BM_ComputeRewards(benchmark::State &state)
{
    RewardConfig cfg;
    for (auto _ : state) {
        double acc = 0.0;
        for (int d = 0; d < 200; ++d)
            acc += compute_reward(cfg, 120.0, 2.0 + d * 0.01, 81.0, 80.5);
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_ComputeRewards)->Unit(benchmark::kMicrosecond);

/** Full feedback + deferred table update cycle. */
void
BM_ObserveOutcomeAndUpdate(benchmark::State &state)
{
    Rig rig;
    double acc = 20.0;
    for (auto _ : state) {
        auto plans = rig.sched.select(rig.gobs, rig.locals, 20);
        RoundExec exec;
        exec.round_s = 1.0;
        for (const auto &p : plans) {
            DeviceExec e;
            e.device_id = p.device_id;
            e.comp_j = 2.0;
            exec.participants.push_back(e);
        }
        acc = std::min(95.0, acc + 0.05);
        rig.sched.observe_outcome(exec, acc);
        benchmark::DoNotOptimize(rig.sched.last_mean_reward());
    }
}
BENCHMARK(BM_ObserveOutcomeAndUpdate)->Unit(benchmark::kMicrosecond);

void
print_memory_table()
{
    print_banner(std::cout,
                 "Sec. 6.4: Q-table memory footprint after 200 learning "
                 "rounds (200 devices)");
    Rig rig;
    double acc = 20.0;
    for (int round = 0; round < 200; ++round) {
        rig.refresh();
        auto plans = rig.sched.select(rig.gobs, rig.locals, 20);
        RoundExec exec;
        exec.round_s = 1.0;
        for (const auto &p : plans) {
            DeviceExec e;
            e.device_id = p.device_id;
            e.comp_j = 2.0;
            exec.participants.push_back(e);
        }
        acc = std::min(95.0, acc + 0.2);
        rig.sched.observe_outcome(exec, acc);
    }
    TextTable t;
    t.set_header({"metric", "value", "paper"});
    t.add_row({"materialized Q entries",
               std::to_string(rig.sched.total_entries()), "-"});
    t.add_row({"total Q memory",
               TextTable::num(rig.sched.total_bytes() / 1024.0, 1) + " KiB",
               "80 MB (dense per-device tables)"});
    t.render(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    print_memory_table();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
