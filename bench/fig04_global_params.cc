/**
 * @file
 * Figure 4: round-level PPW of the Table 4 clusters C0-C7 under the
 * global-parameter settings S1-S4, for CNN-MNIST and LSTM-Shakespeare.
 *
 * Paper-reported shape: the optimal cluster shifts away from the
 * high-end-heavy compositions as the per-device computation shrinks
 * (CNN: C1->C2->C3->C4 across S1->S4), and the LSTM's optimum sits at
 * lower-power compositions than the CNN's because the tier performance
 * gap is narrower for memory-bound RC layers.
 */
#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace autofl;
using namespace autofl::bench;

namespace {

void
run_figure()
{
    for (Workload w : {Workload::CnnMnist, Workload::LstmShakespeare}) {
        print_banner(std::cout,
                     "Fig. 4: PPW of clusters C0-C7 across S1-S4 (" +
                         workload_name(w) + ", normalized to C0)");
        TextTable t;
        t.set_header({"setting", "C0", "C1", "C2", "C3", "C4", "C5", "C6",
                      "C7", "best"});
        for (ParamSetting s : all_param_settings()) {
            ExperimentConfig cfg =
                base_config(w, s, VarianceScenario::None);
            auto rows = characterize_clusters(cfg);
            const double base = rows.front().second.ppw_round();
            std::vector<std::string> cells = {param_setting_name(s)};
            std::string best_label;
            double best = 0.0;
            for (const auto &[tmpl, res] : rows) {
                cells.push_back(TextTable::num(res.ppw_round() / base, 2));
                if (!tmpl.random && res.ppw_round() > best) {
                    best = res.ppw_round();
                    best_label = tmpl.label;
                }
            }
            cells.push_back(best_label);
            t.add_row(cells);
        }
        t.render(std::cout);
    }
}

/** Micro: full C0-C7 characterization sweep for one setting. */
void
BM_ClusterSweep(benchmark::State &state)
{
    ExperimentConfig cfg = base_config(Workload::CnnMnist, ParamSetting::S3,
                                       VarianceScenario::None);
    for (auto _ : state) {
        auto rows = characterize_clusters(cfg, 8);
        benchmark::DoNotOptimize(rows.size());
    }
}
BENCHMARK(BM_ClusterSweep);

} // namespace

int
main(int argc, char **argv)
{
    run_figure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
