/**
 * @file
 * Figure 1: headline motivation — judicious participant selection and
 * execution-target choice (Performance, O_FL) improve FL PPW over the
 * random-selection baseline by multiples.
 *
 * Paper-reported shape: Performance and O_FL beat FedAvg-Random, with
 * O_FL up to ~5.4x on energy efficiency and ~4.2x on convergence.
 */
#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace autofl;
using namespace autofl::bench;

namespace {

void
run_figure()
{
    ExperimentConfig cfg = base_config(Workload::CnnMnist, ParamSetting::S3,
                                       VarianceScenario::Combined);
    std::vector<ExperimentResult> runs;
    for (PolicyKind kind : {PolicyKind::FedAvgRandom, PolicyKind::Performance,
                            PolicyKind::OracleFl})
        runs.push_back(run_policy(cfg, kind));
    print_comparison(
        "Fig. 1: PPW of Performance and O_FL vs FedAvg-Random "
        "(CNN-MNIST, S3, field variance)",
        runs);
}

/** Micro: cost of one simulated scheduling round (no NN training). */
void
BM_CharacterizationRound(benchmark::State &state)
{
    ExperimentConfig cfg = base_config(Workload::CnnMnist, ParamSetting::S3,
                                       VarianceScenario::Combined);
    cfg.policy = PolicyKind::FedAvgRandom;
    for (auto _ : state) {
        auto res = run_characterization(cfg, 1);
        benchmark::DoNotOptimize(res.total_energy_j);
    }
}
BENCHMARK(BM_CharacterizationRound);

} // namespace

int
main(int argc, char **argv)
{
    run_figure();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
