/**
 * @file
 * Snapshot persistence gate: measures what the src/store/ subsystem
 * costs the training path and buys the serving path.
 *
 * Three measurements, three gates (the exit code):
 *   - Cold start: mmap an artifact and serve the first prediction from
 *     it alone (MappedSnapshot::open + attach_artifact + classify) must
 *     be >= 5x faster than rebuilding the parameter-server store from
 *     the training stack (FlSystem with resume_from, then the same
 *     first prediction).
 *   - Overhead: checkpointing every retired round must cost <= 5% of
 *     the pipelined runtime's rounds/s — request() hands the writer a
 *     refcounted snapshot and returns, so the train path never waits
 *     on the disk.
 *   - Determinism: a run interrupted at round R and resumed from its
 *     artifact must finish with weights bit-identical to the
 *     uninterrupted run (the SemiAsync(S=0) == Sync contract extended
 *     across a process boundary).
 *
 * Results go to BENCH_snapshot.json.
 */
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "fl/system.h"
#include "kernels/arch.h"
#include "serve/model_service.h"
#include "store/mapped_snapshot.h"
#include "store/snapshot.h"

using namespace autofl;
using namespace autofl::bench;

namespace {

constexpr double kMinColdStartSpeedup = 5.0;
constexpr double kMaxOverheadFrac = 0.05;
constexpr int kThroughputRounds = 24;

/**
 * Simulated device latency for the overhead measurement, as in
 * tab_ps_throughput.cc: with it, rounds/s measures the runtime's
 * ability to overlap work — the regime checkpointing must not
 * perturb — rather than raw arithmetic contention for the same cores
 * the writer thread serializes on.
 */
constexpr double kDeviceLatencyS = 0.005;
constexpr int kResumeRounds = 6;
constexpr int kResumeCut = 2;

using Clock = std::chrono::steady_clock;

double
seconds_since(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** The pipelined training job every measurement runs. */
FlSystemConfig
job_config()
{
    FlSystemConfig cfg;
    cfg.workload = Workload::CnnMnist;
    cfg.params = {8, 1, 4};  // B=8, E=1, K=4.
    cfg.data.train_samples = 256;
    cfg.data.test_samples = 128;
    cfg.partition.num_devices = 16;
    cfg.seed = kBenchSeed;
    cfg.threads = 4;
    cfg.ps.mode = SyncMode::SemiAsync;
    cfg.ps.staleness_bound = 0;  // Single-batch rounds: bit-exact resume.
    cfg.ps.pipeline_depth = 3;
    return cfg;
}

/** Deterministic participants: a pure function of the round. */
std::vector<int>
participants(uint64_t round, int num_devices, int k)
{
    std::vector<int> ids;
    for (int i = 0; i < k; ++i)
        ids.push_back(static_cast<int>((round * 3 +
                                        static_cast<uint64_t>(i) * 2 + 1) %
                                       static_cast<uint64_t>(num_devices)));
    return ids;
}

void
run_rounds(FlSystem &fl, uint64_t first, uint64_t last)
{
    for (uint64_t r = first; r <= last; ++r)
        fl.run_round(participants(r, fl.num_devices(), fl.config().params.k),
                     r);
    fl.drain();
}

/** Pipelined rounds/s via submit_round, optionally checkpointing. */
double
measure_rounds_per_sec(bool checkpoint, const std::string &dir)
{
    FlSystemConfig cfg = job_config();
    cfg.ps.sim_device_latency_s = kDeviceLatencyS;
    if (checkpoint) {
        cfg.ps.snapshot_dir = dir;
        cfg.ps.snapshot_every_epochs = 1;  // Worst case: every round.
    }
    FlSystem fl(cfg);
    int done = 0;
    const auto start = Clock::now();
    for (uint64_t r = 0; r < kThroughputRounds; ++r) {
        fl.submit_round(
            participants(r, fl.num_devices(), cfg.params.k), r,
            [&done](const PsRoundResult &) { ++done; });
    }
    fl.drain();
    const double elapsed = seconds_since(start);
    if (done != kThroughputRounds)
        return 0.0;  // Visible failure: the gate cannot pass on 0.
    return kThroughputRounds / elapsed;
}

} // namespace

int
main()
{
    print_banner(std::cout,
                 "Snapshot persistence: cold-start speedup, checkpoint "
                 "overhead, crash-resume determinism, gates");

    const std::string dir = "bench_snapshot_artifacts";
    [[maybe_unused]] int rc =
        std::system(("rm -rf " + dir + " && mkdir -p " + dir).c_str());

    // ---- Produce the artifact one training run would leave behind.
    FlSystemConfig train_cfg = job_config();
    train_cfg.ps.snapshot_dir = dir;
    std::vector<float> final_weights;
    std::vector<int> want_predictions;
    const std::vector<int> probe = {0, 7, 19, 31, 63, 99};
    {
        FlSystem fl(train_cfg);
        run_rounds(fl, 0, kResumeRounds - 1);
        fl.checkpoint_writer()->flush();
        final_weights = fl.server().global_weights();
        want_predictions =
            fl.serve().classify(fl.serve().acquire(), fl.test_set(), probe);
    }
    const std::string artifact = dir + "/latest.snap";

    // The serving client's own inputs exist before either cold start;
    // dataset generation is timed only where it is inherent (the
    // training-stack rebuild regenerates shards to reconstruct the
    // store).
    const Dataset probe_set = make_dataset(train_cfg.workload,
                                           train_cfg.data)
                                  .test;

    // ---- Cold start A: rebuild the training stack around the artifact.
    double rebuild_s = 0.0;
    {
        FlSystemConfig cfg = job_config();
        cfg.ps.resume_from = artifact;
        const auto start = Clock::now();
        FlSystem fl(cfg);
        const std::vector<int> got =
            fl.serve().classify(fl.serve().acquire(), probe_set, probe);
        rebuild_s = seconds_since(start);
        if (got != want_predictions) {
            std::cout << "FATAL: rebuilt-store predictions diverged\n";
            return 1;
        }
    }

    // ---- Cold start B: mmap the artifact, no training stack at all.
    double mmap_s = 0.0;
    {
        const auto start = Clock::now();
        store::SnapshotStatus st;
        auto snap = store::MappedSnapshot::open(artifact, &st);
        if (!snap) {
            std::cout << "FATAL: " << store::snapshot_status_name(st)
                      << " opening " << artifact << "\n";
            return 1;
        }
        ModelService serve(train_cfg.workload);
        serve.attach_artifact(snap);
        const std::vector<int> got =
            serve.classify(serve.acquire(), probe_set, probe);
        mmap_s = seconds_since(start);
        if (got != want_predictions) {
            std::cout << "FATAL: mmap-served predictions diverged\n";
            return 1;
        }
    }
    const double speedup = mmap_s > 0.0 ? rebuild_s / mmap_s : 0.0;

    // ---- Checkpoint overhead on the pipelined runtime. Best of two
    // trials each: the gate compares steady-state throughput, not a
    // cold allocator.
    double base_rps = 0.0, ckpt_rps = 0.0;
    for (int trial = 0; trial < 2; ++trial) {
        base_rps = std::max(base_rps, measure_rounds_per_sec(false, dir));
        ckpt_rps = std::max(ckpt_rps, measure_rounds_per_sec(true, dir));
    }
    const double overhead =
        base_rps > 0.0 ? 1.0 - ckpt_rps / base_rps : 1.0;

    // ---- Crash-resume determinism across a process-shaped boundary:
    // a second system resumes from round kResumeCut's artifact and
    // must land on the reference run's exact weight bits.
    bool bit_exact = false;
    {
        FlSystemConfig cfg = job_config();
        cfg.ps.resume_from =
            dir + "/model-r" + std::to_string(kResumeCut) + ".snap";
        FlSystem fl(cfg);
        run_rounds(fl, kResumeCut + 1, kResumeRounds - 1);
        const auto &got = fl.server().global_weights();
        bit_exact = got.size() == final_weights.size();
        for (size_t i = 0; bit_exact && i < got.size(); ++i)
            bit_exact = got[i] == final_weights[i];
    }

    TextTable t;
    t.set_header({"measurement", "value"});
    t.add_row({"rebuild-store cold start (ms)",
               TextTable::num(rebuild_s * 1e3, 2)});
    t.add_row({"mmap cold start (ms)", TextTable::num(mmap_s * 1e3, 2)});
    t.add_row({"cold-start speedup", TextTable::num(speedup, 1) + "x"});
    t.add_row({"pipelined rounds/s (no ckpt)", TextTable::num(base_rps, 1)});
    t.add_row({"pipelined rounds/s (ckpt/round)",
               TextTable::num(ckpt_rps, 1)});
    t.add_row({"checkpoint overhead", TextTable::num(overhead * 100, 2) +
               "%"});
    t.add_row({"resumed == uninterrupted", bit_exact ? "yes" : "NO"});
    t.render(std::cout);

    const bool cold_pass = speedup >= kMinColdStartSpeedup;
    const bool overhead_pass = overhead <= kMaxOverheadFrac;
    const bool pass = cold_pass && overhead_pass && bit_exact;

    std::cout << "cold-start speedup: " << TextTable::num(speedup, 1)
              << "x (" << (cold_pass ? "PASS" : "FAIL") << " >= "
              << TextTable::num(kMinColdStartSpeedup, 0) << "x)\n"
              << "checkpoint overhead: " << TextTable::num(overhead * 100, 2)
              << "% (" << (overhead_pass ? "PASS" : "FAIL") << " <= "
              << TextTable::num(kMaxOverheadFrac * 100, 0) << "%)\n"
              << "crash-resume bit-exact: " << (bit_exact ? "PASS" : "FAIL")
              << "\n";

    std::ofstream json("BENCH_snapshot.json");
    json << "{\n  \"workload\": \"CnnMnist\",\n"
         << "  \"kernel_arch\": \""
         << kernels::kernel_arch_name(kernels::current_kernel_arch())
         << "\",\n"
         << "  \"hardware_threads\": "
         << std::thread::hardware_concurrency() << ",\n"
         << "  \"pipeline_depth\": " << job_config().ps.pipeline_depth
         << ",\n"
         << "  \"throughput_rounds\": " << kThroughputRounds << ",\n"
         << "  \"base_device_latency_s\": " << kDeviceLatencyS << ",\n"
         << "  \"cold_start\": {"
         << "\"rebuild_store_s\": " << rebuild_s
         << ", \"mmap_s\": " << mmap_s
         << ", \"speedup_x\": " << speedup << "},\n"
         << "  \"checkpoint_overhead\": {"
         << "\"base_rounds_per_sec\": " << base_rps
         << ", \"ckpt_rounds_per_sec\": " << ckpt_rps
         << ", \"overhead_frac\": " << overhead << "},\n"
         << "  \"gates\": {"
         << "\"min_cold_start_speedup\": " << kMinColdStartSpeedup
         << ", \"cold_start_pass\": " << (cold_pass ? "true" : "false")
         << ", \"max_overhead_frac\": " << kMaxOverheadFrac
         << ", \"overhead_pass\": " << (overhead_pass ? "true" : "false")
         << ", \"resume_bit_exact\": " << (bit_exact ? "true" : "false")
         << ", \"pass\": " << (pass ? "true" : "false") << "}\n}\n";
    std::cout << "wrote BENCH_snapshot.json\n";
    return pass ? 0 : 1;
}
