/**
 * @file
 * AutoFL reward (Equations 5-7).
 *
 * When the round failed to improve accuracy the reward is the (negative)
 * distance from 100% accuracy, steering the agent away from the action.
 * Otherwise the reward trades off global fleet energy, the device's own
 * energy, the absolute accuracy, and the accuracy improvement (the
 * convergence-speed proxy), weighted by alpha and beta.
 */
#ifndef AUTOFL_CORE_REWARD_H
#define AUTOFL_CORE_REWARD_H

namespace autofl {

/** Reward weights and normalization. */
struct RewardConfig
{
    double alpha = 1.0;  ///< Weight of absolute accuracy.
    double beta = 2.0;   ///< Weight of accuracy improvement.

    /**
     * Energies enter Eq. 7 normalized by these scales so they are
     * commensurate with accuracy percentages. Defaults are the typical
     * FedAvg round energies observed in the simulator.
     */
    double energy_scale_global_j = 40.0;
    double energy_scale_local_j = 2.0;

    /**
     * Per-second penalty on a participant's own completion latency. A
     * device's completion time is exactly its contribution to the
     * straggler-gated round length, so this term gives each device
     * individual credit for the convergence-speed objective that the
     * shared beta term (same value for every device) cannot assign.
     */
    double time_penalty_per_s = 1.2;
};

/**
 * Compute the per-device reward (Eq. 7).
 *
 * @param energy_global_j Fleet energy this round (Eq. 6).
 * @param energy_local_j This device's energy this round (Eq. 5; idle
 *        energy when the device did not participate).
 * @param acc Test accuracy after aggregation, in percent.
 * @param acc_prev Test accuracy after the previous round, in percent.
 * @param completion_s The device's own completion latency this round
 *        (0 when it did not participate).
 * @param data_weight Per-device apportionment of the accuracy-improvement
 *        credit: a participant whose shard covers few label classes
 *        contributed less to the round's improvement (Fig. 6), so its
 *        share of the beta term is scaled down.
 */
double compute_reward(const RewardConfig &cfg, double energy_global_j,
                      double energy_local_j, double acc, double acc_prev,
                      double completion_s = 0.0, double data_weight = 1.0);

} // namespace autofl

#endif // AUTOFL_CORE_REWARD_H
