#include "reward.h"

namespace autofl {

double
compute_reward(const RewardConfig &cfg, double energy_global_j,
               double energy_local_j, double acc, double acc_prev,
               double completion_s, double data_weight)
{
    if (acc - acc_prev <= 0.0) {
        // Failure branch of Eq. 7: penalize by distance from 100%.
        return acc - 100.0;
    }
    const double e_global = energy_global_j / cfg.energy_scale_global_j;
    const double e_local = energy_local_j / cfg.energy_scale_local_j;
    return -e_global - e_local + cfg.alpha * acc +
        cfg.beta * (acc - acc_prev) * data_weight -
        cfg.time_penalty_per_s * completion_s;
}

} // namespace autofl
