#include "cluster.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace autofl {

std::vector<double>
device_features(const Device &dev)
{
    const DeviceSpec &s = dev.spec();
    // Normalize against the high-end spec so all features are O(1).
    const DeviceSpec &h = spec_for_tier(Tier::High);
    return {
        s.cpu_gflops / h.cpu_gflops,
        s.mem_gflops / h.mem_gflops,
        s.cpu_peak_w / h.cpu_peak_w,
        s.ram_gb / h.ram_gb,
    };
}

namespace {

double
sq_dist(const std::vector<double> &a, const std::vector<double> &b)
{
    double s = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        s += d * d;
    }
    return s;
}

} // namespace

DeviceClusters
cluster_devices(const Fleet &fleet, int k, uint64_t seed, int max_iters)
{
    assert(k > 0 && k <= fleet.size());
    Rng rng(seed);

    std::vector<std::vector<double>> points;
    points.reserve(static_cast<size_t>(fleet.size()));
    for (int d = 0; d < fleet.size(); ++d)
        points.push_back(device_features(fleet.device(d)));

    DeviceClusters out;
    out.k = k;

    // k-means++ seeding.
    out.centroids.push_back(
        points[static_cast<size_t>(rng.randint(0, fleet.size() - 1))]);
    while (static_cast<int>(out.centroids.size()) < k) {
        std::vector<double> d2(points.size());
        for (size_t p = 0; p < points.size(); ++p) {
            double best = std::numeric_limits<double>::infinity();
            for (const auto &c : out.centroids)
                best = std::min(best, sq_dist(points[p], c));
            d2[p] = best;
        }
        const int pick = rng.categorical(d2);
        out.centroids.push_back(points[static_cast<size_t>(pick)]);
    }

    // Lloyd iterations.
    out.assignment.assign(points.size(), 0);
    for (int iter = 0; iter < max_iters; ++iter) {
        bool changed = false;
        for (size_t p = 0; p < points.size(); ++p) {
            int best = 0;
            double best_d = std::numeric_limits<double>::infinity();
            for (int c = 0; c < k; ++c) {
                const double d =
                    sq_dist(points[p], out.centroids[static_cast<size_t>(c)]);
                if (d < best_d) {
                    best_d = d;
                    best = c;
                }
            }
            if (out.assignment[p] != best) {
                out.assignment[p] = best;
                changed = true;
            }
        }
        // Recompute centroids.
        const size_t dim = points[0].size();
        std::vector<std::vector<double>> sums(
            static_cast<size_t>(k), std::vector<double>(dim, 0.0));
        std::vector<int> counts(static_cast<size_t>(k), 0);
        for (size_t p = 0; p < points.size(); ++p) {
            const auto c = static_cast<size_t>(out.assignment[p]);
            for (size_t i = 0; i < dim; ++i)
                sums[c][i] += points[p][i];
            ++counts[c];
        }
        for (int c = 0; c < k; ++c) {
            if (counts[static_cast<size_t>(c)] == 0)
                continue;  // Keep the stale centroid for empty clusters.
            for (size_t i = 0; i < dim; ++i)
                out.centroids[static_cast<size_t>(c)][i] =
                    sums[static_cast<size_t>(c)][i] /
                    counts[static_cast<size_t>(c)];
        }
        if (!changed)
            break;
    }
    return out;
}

} // namespace autofl
