#include "dbscan.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>

namespace autofl {

namespace {

double
sq_dist(const std::vector<double> &a, const std::vector<double> &b)
{
    assert(a.size() == b.size());
    double s = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        s += d * d;
    }
    return s;
}

std::vector<int>
region_query(const std::vector<std::vector<double>> &points, size_t p,
             double eps_sq)
{
    std::vector<int> out;
    for (size_t q = 0; q < points.size(); ++q)
        if (sq_dist(points[p], points[q]) <= eps_sq)
            out.push_back(static_cast<int>(q));
    return out;
}

} // namespace

DbscanResult
dbscan(const std::vector<std::vector<double>> &points, const DbscanConfig &cfg)
{
    DbscanResult res;
    const size_t n = points.size();
    res.labels.assign(n, -2);  // -2 = unvisited, -1 = noise.
    const double eps_sq = cfg.eps * cfg.eps;
    int cluster = 0;

    for (size_t p = 0; p < n; ++p) {
        if (res.labels[p] != -2)
            continue;
        auto neighbors = region_query(points, p, eps_sq);
        if (static_cast<int>(neighbors.size()) < cfg.min_pts) {
            res.labels[p] = -1;
            continue;
        }
        // Grow a new cluster from this core point.
        res.labels[p] = cluster;
        std::deque<int> frontier(neighbors.begin(), neighbors.end());
        while (!frontier.empty()) {
            const int q = frontier.front();
            frontier.pop_front();
            auto &lq = res.labels[static_cast<size_t>(q)];
            if (lq == -1)
                lq = cluster;  // Border point claimed by this cluster.
            if (lq != -2)
                continue;
            lq = cluster;
            auto q_neighbors =
                region_query(points, static_cast<size_t>(q), eps_sq);
            if (static_cast<int>(q_neighbors.size()) >= cfg.min_pts) {
                for (int r : q_neighbors)
                    frontier.push_back(r);
            }
        }
        ++cluster;
    }
    res.num_clusters = cluster;
    return res;
}

std::vector<double>
derive_thresholds(const std::vector<double> &samples, const DbscanConfig &cfg)
{
    std::vector<std::vector<double>> points;
    points.reserve(samples.size());
    for (double s : samples)
        points.push_back({s});
    const DbscanResult res = dbscan(points, cfg);
    if (res.num_clusters < 2)
        return {};

    // Mean of each cluster, then midpoints between adjacent means.
    std::vector<double> sum(static_cast<size_t>(res.num_clusters), 0.0);
    std::vector<int> count(static_cast<size_t>(res.num_clusters), 0);
    for (size_t i = 0; i < samples.size(); ++i) {
        const int c = res.labels[i];
        if (c >= 0) {
            sum[static_cast<size_t>(c)] += samples[i];
            ++count[static_cast<size_t>(c)];
        }
    }
    std::vector<double> means;
    for (size_t c = 0; c < sum.size(); ++c)
        if (count[c] > 0)
            means.push_back(sum[c] / count[c]);
    std::sort(means.begin(), means.end());

    std::vector<double> thresholds;
    for (size_t i = 0; i + 1 < means.size(); ++i)
        thresholds.push_back(0.5 * (means[i] + means[i + 1]));
    return thresholds;
}

int
bucket_of(double v, const std::vector<double> &thresholds)
{
    int b = 0;
    for (double t : thresholds) {
        if (v >= t)
            ++b;
        else
            break;
    }
    return b;
}

} // namespace autofl
