/**
 * @file
 * AutoFL state encoding (Table 1).
 *
 * The global state captures the NN's layer mix and the FL global
 * parameters; the local (per-device) state captures runtime variance
 * (co-running CPU/memory load, network bandwidth) and data heterogeneity
 * (data classes held this round). Continuous features are discretized
 * into the buckets printed in Table 1; the DBSCAN helper can re-derive
 * equivalent boundaries from observed samples.
 */
#ifndef AUTOFL_CORE_STATE_H
#define AUTOFL_CORE_STATE_H

#include "fl/fl_types.h"
#include "nn/sequential.h"
#include "sim/variance.h"

namespace autofl {

/** Discretized global state (NN features + global parameters). */
struct GlobalState
{
    int s_conv = 0;  ///< CONV-layer-count bucket (4 levels).
    int s_fc = 0;    ///< FC-layer-count bucket (2 levels).
    int s_rc = 0;    ///< RC-layer-count bucket (3 levels).
    int s_b = 0;     ///< Batch-size bucket (3 levels).
    int s_e = 0;     ///< Local-epochs bucket (3 levels).
    int s_k = 0;     ///< Participant-count bucket (3 levels).
    int s_stale = 0; ///< Observed-staleness bucket (3 levels); 0 = sync.

    bool operator==(const GlobalState &) const = default;
};

/** Discretized local state (runtime variance + data classes). */
struct LocalState
{
    int s_co_cpu = 0;   ///< Co-running CPU-utilization bucket (4 levels).
    int s_co_mem = 0;   ///< Co-running memory-usage bucket (4 levels).
    int s_network = 0;  ///< Network bucket: 0 regular, 1 bad.
    int s_data = 0;     ///< Data-classes bucket (3 levels).

    bool operator==(const LocalState &) const = default;
};

/**
 * Bucket counts (Table 1's "Discrete Values" column). One deviation from
 * the printed table: each layer-type feature gains an explicit "none (0)"
 * bucket below "small", since the printed thresholds would otherwise fold
 * a CONV-only model and an RC-only model into one state (both "small").
 */
constexpr int kConvBuckets = 5;
constexpr int kFcBuckets = 3;
constexpr int kRcBuckets = 4;
constexpr int kBatchBuckets = 3;
constexpr int kEpochBuckets = 3;
constexpr int kKBuckets = 3;
constexpr int kStaleBuckets = 3;
constexpr int kCoCpuBuckets = 4;
constexpr int kCoMemBuckets = 4;
constexpr int kNetworkBuckets = 2;
constexpr int kDataBuckets = 3;

/** Number of distinct global state encodings. */
constexpr int kGlobalStates = kConvBuckets * kFcBuckets * kRcBuckets *
    kBatchBuckets * kEpochBuckets * kKBuckets * kStaleBuckets;

/** Number of distinct local state encodings. */
constexpr int kLocalStates = kCoCpuBuckets * kCoMemBuckets *
    kNetworkBuckets * kDataBuckets;

/** Encode the global state to a dense index in [0, kGlobalStates). */
int encode_global(const GlobalState &s);

/** Encode the local state to a dense index in [0, kLocalStates). */
int encode_local(const LocalState &s);

/**
 * Discretize the NN profile + global parameters per Table 1, plus the
 * ps-runtime extension: the job's observed mean update staleness
 * (0 under the synchronous runtime), so the scheduler can condition on
 * how asynchronously the server is consuming updates.
 */
GlobalState make_global_state(const NnProfile &profile,
                              const FlGlobalParams &params,
                              double observed_staleness = 0.0);

/**
 * Discretize one device's observable round state per Table 1.
 * @param data_classes Distinct label classes on the device this round.
 * @param total_classes Classes in the whole task (for the % thresholds).
 */
LocalState make_local_state(const DeviceRoundState &state, int data_classes,
                            int total_classes);

} // namespace autofl

#endif // AUTOFL_CORE_STATE_H
