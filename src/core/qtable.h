/**
 * @file
 * Sparse tabular Q function Q(S_global, S_local, A) with the 2-level
 * action space (execution target x DVFS bucket).
 *
 * Tables are hash maps over visited (global, local) state pairs; each
 * entry stores one value per action. This matches the paper's reported
 * footprint (~80 MB for 200 per-device tables) since only a small
 * fraction of the state space is ever visited.
 */
#ifndef AUTOFL_CORE_QTABLE_H
#define AUTOFL_CORE_QTABLE_H

#include <array>
#include <unordered_map>

#include "core/state.h"
#include "sim/dvfs.h"
#include "util/rng.h"

namespace autofl {

/** Second-level action: where and how fast to train (Section 4.1). */
struct Action
{
    ExecTarget target = ExecTarget::Cpu;
    DvfsLevel dvfs = DvfsLevel::High;

    bool operator==(const Action &) const = default;
};

/** Number of discrete actions (2 targets x 3 DVFS buckets). */
constexpr int kNumActions = 6;

/** Encode an action to [0, kNumActions). */
int encode_action(const Action &a);

/** Decode an action index. */
Action decode_action(int idx);

/** One device's (or one shared category's) Q-table. */
class QTable
{
  public:
    /**
     * @param rng Initialization stream; unseen entries materialize with
     *        small random values, per Algorithm 1's initialization.
     * @param init_range Uniform init range [0, init_range).
     */
    explicit QTable(Rng rng, double init_range = 0.01);

    /** Q value for (state, action); materializes the entry when new. */
    double q(int global_idx, int local_idx, int action_idx);

    /** Largest Q over actions for a state. */
    double max_q(int global_idx, int local_idx);

    /** Action index with the largest Q for a state. */
    int best_action(int global_idx, int local_idx);

    /** Set Q for (state, action). */
    void set_q(int global_idx, int local_idx, int action_idx, double v);

    /**
     * Algorithm 1's update:
     * Q(s,a) += gamma * (r + mu * Q(s',a') - Q(s,a)).
     */
    void update(int global_idx, int local_idx, int action_idx, double reward,
                double next_q, double gamma, double mu);

    /** Number of materialized state entries. */
    size_t entries() const { return table_.size(); }

    /** Approximate memory footprint in bytes. */
    size_t bytes() const;

  private:
    using Row = std::array<double, kNumActions>;
    std::unordered_map<uint32_t, Row> table_;
    Rng rng_;
    double init_range_;

    static uint32_t key(int global_idx, int local_idx);
    Row &row(int global_idx, int local_idx);
};

} // namespace autofl

#endif // AUTOFL_CORE_QTABLE_H
