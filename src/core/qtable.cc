#include "qtable.h"

#include <cassert>

namespace autofl {

int
encode_action(const Action &a)
{
    const int t = a.target == ExecTarget::Cpu ? 0 : 1;
    int d = 0;
    switch (a.dvfs) {
      case DvfsLevel::Low:
        d = 0;
        break;
      case DvfsLevel::Mid:
        d = 1;
        break;
      case DvfsLevel::High:
        d = 2;
        break;
    }
    return t * 3 + d;
}

Action
decode_action(int idx)
{
    assert(idx >= 0 && idx < kNumActions);
    Action a;
    a.target = idx < 3 ? ExecTarget::Cpu : ExecTarget::Gpu;
    switch (idx % 3) {
      case 0:
        a.dvfs = DvfsLevel::Low;
        break;
      case 1:
        a.dvfs = DvfsLevel::Mid;
        break;
      default:
        a.dvfs = DvfsLevel::High;
        break;
    }
    return a;
}

QTable::QTable(Rng rng, double init_range)
    : rng_(rng), init_range_(init_range)
{
}

uint32_t
QTable::key(int global_idx, int local_idx)
{
    assert(global_idx >= 0 && global_idx < kGlobalStates);
    assert(local_idx >= 0 && local_idx < kLocalStates);
    return static_cast<uint32_t>(global_idx) *
        static_cast<uint32_t>(kLocalStates) +
        static_cast<uint32_t>(local_idx);
}

QTable::Row &
QTable::row(int global_idx, int local_idx)
{
    auto [it, inserted] = table_.try_emplace(key(global_idx, local_idx));
    if (inserted) {
        for (auto &v : it->second)
            v = rng_.uniform(0.0, init_range_);
    }
    return it->second;
}

double
QTable::q(int global_idx, int local_idx, int action_idx)
{
    assert(action_idx >= 0 && action_idx < kNumActions);
    return row(global_idx, local_idx)[static_cast<size_t>(action_idx)];
}

double
QTable::max_q(int global_idx, int local_idx)
{
    const Row &r = row(global_idx, local_idx);
    double best = r[0];
    for (double v : r)
        best = std::max(best, v);
    return best;
}

int
QTable::best_action(int global_idx, int local_idx)
{
    const Row &r = row(global_idx, local_idx);
    int best = 0;
    for (int a = 1; a < kNumActions; ++a)
        if (r[static_cast<size_t>(a)] > r[static_cast<size_t>(best)])
            best = a;
    return best;
}

void
QTable::set_q(int global_idx, int local_idx, int action_idx, double v)
{
    row(global_idx, local_idx)[static_cast<size_t>(action_idx)] = v;
}

void
QTable::update(int global_idx, int local_idx, int action_idx, double reward,
               double next_q, double gamma, double mu)
{
    double &q = row(global_idx, local_idx)[static_cast<size_t>(action_idx)];
    q += gamma * (reward + mu * next_q - q);
}

size_t
QTable::bytes() const
{
    // Key + row + hash-map node overhead estimate.
    return table_.size() * (sizeof(uint32_t) + sizeof(Row) + 16);
}

} // namespace autofl
