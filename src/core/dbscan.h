/**
 * @file
 * DBSCAN density clustering.
 *
 * The paper discretizes continuous state features for the Q-table by
 * running DBSCAN over observed feature samples (Section 4.1); the cluster
 * structure determines how many discrete buckets a feature needs and
 * where the boundaries fall. This implementation provides the generic
 * algorithm plus the 1-D threshold-derivation helper the state encoder
 * uses.
 */
#ifndef AUTOFL_CORE_DBSCAN_H
#define AUTOFL_CORE_DBSCAN_H

#include <vector>

namespace autofl {

/** DBSCAN parameters. */
struct DbscanConfig
{
    double eps = 0.5;   ///< Neighborhood radius.
    int min_pts = 4;    ///< Core-point density threshold.
};

/** Clustering result. */
struct DbscanResult
{
    /** Cluster id per point; -1 marks noise. */
    std::vector<int> labels;

    /** Number of clusters found. */
    int num_clusters = 0;
};

/**
 * Run DBSCAN over points in R^d (Euclidean metric).
 * @param points Row-major points; all rows must share one dimension.
 */
DbscanResult dbscan(const std::vector<std::vector<double>> &points,
                    const DbscanConfig &cfg);

/**
 * Derive discretization thresholds for a scalar feature: cluster the
 * samples with 1-D DBSCAN and return the midpoints between adjacent
 * cluster means, sorted ascending. A feature with k clusters yields
 * k - 1 thresholds (k discrete buckets). Returns an empty vector when
 * fewer than two clusters emerge.
 */
std::vector<double> derive_thresholds(const std::vector<double> &samples,
                                      const DbscanConfig &cfg);

/** Bucket index of @p v given ascending thresholds. */
int bucket_of(double v, const std::vector<double> &thresholds);

} // namespace autofl

#endif // AUTOFL_CORE_DBSCAN_H
