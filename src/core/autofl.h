/**
 * @file
 * AutoFlScheduler — the paper's core contribution (Section 4, Algorithm 1).
 *
 * Per aggregation round the scheduler:
 *   1. observes the global state (NN features + global parameters) and
 *      every device's local state (interference, network, data classes);
 *   2. applies the deferred Q update for the previous round now that the
 *      successor state (and its greedy action) is observable;
 *   3. epsilon-greedily either explores (random K participants, random
 *      actions) or exploits (top-K devices by Q, best action each);
 *   4. after training/aggregation, receives the measured round outcome
 *      and converts it into per-device rewards (Eqs. 5-7).
 *
 * Q-tables are per-device by default; the scalability extension shares
 * one table per performance category (Section 4 "Scalability", Fig. 15).
 */
#ifndef AUTOFL_CORE_AUTOFL_H
#define AUTOFL_CORE_AUTOFL_H

#include <optional>
#include <vector>

#include "core/qtable.h"
#include "core/reward.h"
#include "core/state.h"
#include "sim/round.h"

namespace autofl {

/** Scheduler hyperparameters (Section 5.3 defaults). */
struct AutoFlConfig
{
    double epsilon = 0.1;  ///< Exploration probability.
    double gamma = 0.9;    ///< Learning rate (sensitivity study winner).
    double mu = 0.1;       ///< Discount factor (sensitivity study winner).
    RewardConfig reward;
    bool shared_tables = false;  ///< One Q-table per device category.
    double q_init_range = 0.01;
    uint64_t seed = 99;
};

/** Per-round observation of the global configuration. */
struct GlobalObservation
{
    NnProfile profile;
    FlGlobalParams params;

    /**
     * Mean update staleness the ps runtime observed over recent rounds
     * (0 under the synchronous runtime); feeds the S_Stale global-state
     * feature so the scheduler can adapt to semi-async aggregation.
     */
    double observed_staleness = 0.0;
};

/** Per-round observation of one device. */
struct LocalObservation
{
    DeviceRoundState state;
    int data_classes = 0;
    int total_classes = 1;
};

/** The AutoFL reinforcement-learning scheduler. */
class AutoFlScheduler
{
  public:
    /**
     * @param fleet Device population (tier layout fixes table sharing).
     * @param cfg Hyperparameters.
     */
    AutoFlScheduler(const Fleet &fleet, const AutoFlConfig &cfg);

    /**
     * Select K participants and their execution targets for this round.
     * Also applies the deferred Q updates for the previous round.
     * @param locals One observation per device, indexed by device id.
     */
    std::vector<ParticipantPlan> select(const GlobalObservation &global,
                                        const std::vector<LocalObservation> &locals,
                                        int k);

    /**
     * Feed back the measured round outcome (Algorithm 1's reward step).
     * @param exec Simulated round execution (energies, timing).
     * @param accuracy_percent Post-aggregation test accuracy in percent.
     */
    void observe_outcome(const RoundExec &exec, double accuracy_percent);

    /** Freeze learning (pure inference; used after reward convergence). */
    void set_learning_enabled(bool enabled) { learning_enabled_ = enabled; }

    /** Override exploration probability (0 disables exploration). */
    void set_epsilon(double eps) { cfg_.epsilon = eps; }

    /** Q-table backing a device (shared across a category when enabled). */
    QTable &table_for(int device_id);

    /** Total materialized Q entries across tables. */
    size_t total_entries() const;

    /** Approximate total Q memory footprint. */
    size_t total_bytes() const;

    /** Last round's mean per-device reward (Fig. 15's converging signal). */
    double last_mean_reward() const { return last_mean_reward_; }

    /** Number of rounds observed. */
    int rounds_seen() const { return rounds_seen_; }

  private:
    const Fleet &fleet_;
    AutoFlConfig cfg_;
    Rng rng_;
    std::vector<QTable> tables_;
    std::vector<int> table_index_;  ///< Device id -> table index.

    bool learning_enabled_ = true;
    double reward_baseline_ = 0.0;   ///< EWMA of participant raw rewards.
    bool have_baseline_ = false;
    double acc_prev_ = 0.0;
    bool have_acc_prev_ = false;
    double last_mean_reward_ = 0.0;
    int rounds_seen_ = 0;

    /** Previous round's per-device (state, action) pending an update. */
    struct Pending
    {
        int global_idx = 0;
        int local_idx = 0;
        int action_idx = 0;
        double reward = 0.0;
        bool has_reward = false;
        bool participated = false;
    };
    std::vector<Pending> pending_;
    bool have_pending_ = false;

    void apply_pending_updates(int global_idx,
                               const std::vector<int> &local_indices);
};

} // namespace autofl

#endif // AUTOFL_CORE_AUTOFL_H
