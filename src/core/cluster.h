/**
 * @file
 * Device clustering for the shared-Q-table scalability extension.
 *
 * Section 4 ("Scalability") notes an additional clustering algorithm can
 * bind devices of similar capability to one shared table. This k-means
 * clusterer groups devices by their capability profile (compute, memory,
 * power), recovering the H/M/L categories without being told the tiers.
 */
#ifndef AUTOFL_CORE_CLUSTER_H
#define AUTOFL_CORE_CLUSTER_H

#include <vector>

#include "sim/fleet.h"
#include "util/rng.h"

namespace autofl {

/** K-means result over devices. */
struct DeviceClusters
{
    std::vector<int> assignment;             ///< Cluster id per device.
    std::vector<std::vector<double>> centroids;
    int k = 0;
};

/** Capability feature vector of one device (normalized). */
std::vector<double> device_features(const Device &dev);

/**
 * Cluster the fleet into @p k capability groups with k-means++
 * initialization and Lloyd iterations.
 */
DeviceClusters cluster_devices(const Fleet &fleet, int k, uint64_t seed,
                               int max_iters = 50);

} // namespace autofl

#endif // AUTOFL_CORE_CLUSTER_H
