#include "autofl.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "sim/power.h"

namespace autofl {

AutoFlScheduler::AutoFlScheduler(const Fleet &fleet, const AutoFlConfig &cfg)
    : fleet_(fleet), cfg_(cfg), rng_(cfg.seed)
{
    table_index_.resize(static_cast<size_t>(fleet.size()));
    if (cfg_.shared_tables) {
        // One table per performance category (H/M/L).
        for (int t = 0; t < 3; ++t)
            tables_.emplace_back(rng_.fork(static_cast<uint64_t>(t)),
                                 cfg_.q_init_range);
        for (int d = 0; d < fleet.size(); ++d)
            table_index_[static_cast<size_t>(d)] =
                static_cast<int>(fleet.device(d).tier());
    } else {
        for (int d = 0; d < fleet.size(); ++d) {
            tables_.emplace_back(rng_.fork(static_cast<uint64_t>(d) + 1000),
                                 cfg_.q_init_range);
            table_index_[static_cast<size_t>(d)] = d;
        }
    }
    pending_.resize(static_cast<size_t>(fleet.size()));
}

QTable &
AutoFlScheduler::table_for(int device_id)
{
    return tables_[static_cast<size_t>(
        table_index_[static_cast<size_t>(device_id)])];
}

void
AutoFlScheduler::apply_pending_updates(int global_idx,
                                       const std::vector<int> &local_indices)
{
    if (!have_pending_ || !learning_enabled_)
        return;
    for (int d = 0; d < fleet_.size(); ++d) {
        Pending &p = pending_[static_cast<size_t>(d)];
        if (!p.has_reward)
            continue;
        QTable &table = table_for(d);
        // Algorithm 1: the successor value uses the action that would be
        // chosen greedily in the newly observed state.
        const int next_local = local_indices[static_cast<size_t>(d)];
        const int next_action = table.best_action(global_idx, next_local);
        const double next_q = table.q(global_idx, next_local, next_action);
        // Only executed actions carry information: idle devices receive
        // no update (their Q stays at the neutral init), so a device's
        // Q value is the advantage of selecting it in a given state.
        table.update(p.global_idx, p.local_idx, p.action_idx, p.reward,
                     next_q, cfg_.gamma, cfg_.mu);
        p.has_reward = false;
    }
    have_pending_ = false;
}

std::vector<ParticipantPlan>
AutoFlScheduler::select(const GlobalObservation &global,
                        const std::vector<LocalObservation> &locals,
                        int k)
{
    assert(static_cast<int>(locals.size()) == fleet_.size());
    assert(k > 0 && k <= fleet_.size());

    const GlobalState gs = make_global_state(global.profile, global.params,
                                             global.observed_staleness);
    const int gidx = encode_global(gs);

    std::vector<int> lidx(locals.size());
    for (size_t d = 0; d < locals.size(); ++d) {
        lidx[d] = encode_local(make_local_state(
            locals[d].state, locals[d].data_classes,
            locals[d].total_classes));
    }

    apply_pending_updates(gidx, lidx);

    std::vector<int> chosen;
    std::vector<int> actions(locals.size());

    const bool explore =
        learning_enabled_ && rng_.bernoulli(cfg_.epsilon);
    if (explore) {
        // Uniform random K participants and random actions.
        std::vector<int> ids(locals.size());
        std::iota(ids.begin(), ids.end(), 0);
        rng_.shuffle(ids);
        chosen.assign(ids.begin(), ids.begin() + k);
        for (size_t d = 0; d < locals.size(); ++d)
            actions[d] = static_cast<int>(rng_.randint(0, kNumActions - 1));
    } else {
        // Exploit: rank devices by their best attainable Q.
        std::vector<std::pair<double, int>> scored;
        scored.reserve(locals.size());
        for (int d = 0; d < fleet_.size(); ++d) {
            QTable &table = table_for(d);
            const int li = lidx[static_cast<size_t>(d)];
            scored.emplace_back(table.max_q(gidx, li), d);
            actions[static_cast<size_t>(d)] = table.best_action(gidx, li);
        }
        // Random tie-breaking keeps selection unbiased among equals
        // (Section 4.2); the shuffle-then-stable-sort achieves it.
        rng_.shuffle(scored);
        std::stable_sort(scored.begin(), scored.end(),
                         [](const auto &a, const auto &b) {
                             return a.first > b.first;
                         });
        for (int i = 0; i < k; ++i)
            chosen.push_back(scored[static_cast<size_t>(i)].second);
    }

    // Record (state, action) for every device; rewards arrive at
    // observe_outcome() and the Q update happens next round.
    std::vector<bool> is_chosen(locals.size(), false);
    for (int d : chosen)
        is_chosen[static_cast<size_t>(d)] = true;
    for (int d = 0; d < fleet_.size(); ++d) {
        Pending &p = pending_[static_cast<size_t>(d)];
        p.global_idx = gidx;
        p.local_idx = lidx[static_cast<size_t>(d)];
        p.action_idx = actions[static_cast<size_t>(d)];
        p.participated = is_chosen[static_cast<size_t>(d)];
        p.has_reward = false;
    }

    std::vector<ParticipantPlan> plans;
    plans.reserve(static_cast<size_t>(k));
    for (int d : chosen) {
        const Action a = decode_action(actions[static_cast<size_t>(d)]);
        ParticipantPlan plan;
        plan.device_id = d;
        plan.target = a.target;
        plan.dvfs = a.dvfs;
        plans.push_back(plan);
    }
    return plans;
}

void
AutoFlScheduler::observe_outcome(const RoundExec &exec,
                                 double accuracy_percent)
{
    const double acc_prev = have_acc_prev_ ? acc_prev_ : 0.0;

    // Per-device local energy: participants from the execution record,
    // everyone else from the idle model (Eq. 5).
    std::vector<double> local_energy(static_cast<size_t>(fleet_.size()), -1.0);
    std::vector<double> completion(static_cast<size_t>(fleet_.size()), 0.0);
    for (const auto &e : exec.participants) {
        local_energy[static_cast<size_t>(e.device_id)] = e.energy_j();
        completion[static_cast<size_t>(e.device_id)] = e.completion_s();
    }
    for (int d = 0; d < fleet_.size(); ++d) {
        if (local_energy[static_cast<size_t>(d)] < 0.0) {
            local_energy[static_cast<size_t>(d)] =
                idle_energy(fleet_.device(d).spec(), exec.round_s);
        }
    }

    // Raw rewards for the round's participants (Eq. 7), then advantage
    // centering: subtracting a running baseline of typical participant
    // rewards turns the shared accuracy/global-energy components into a
    // zero-mean signal, so Q values rank devices/actions by how much
    // *better or worse than typical* their execution was. Idle devices
    // receive no reward (and no update), leaving their Q neutral.
    double reward_sum = 0.0;
    int participants = 0;
    for (int d = 0; d < fleet_.size(); ++d) {
        Pending &p = pending_[static_cast<size_t>(d)];
        if (!p.participated)
            continue;
        // Apportion the improvement credit by the device's S_Data
        // bucket (small/medium/large class coverage).
        const int s_data = p.local_idx % kDataBuckets;
        const double data_weight = 0.25 + 0.5 * s_data;
        p.reward = compute_reward(cfg_.reward, exec.energy_global_j(),
                                  local_energy[static_cast<size_t>(d)],
                                  accuracy_percent, acc_prev,
                                  completion[static_cast<size_t>(d)],
                                  data_weight);
        reward_sum += p.reward;
        ++participants;
    }
    const double round_mean =
        participants > 0 ? reward_sum / participants : 0.0;
    if (participants > 0) {
        if (!have_baseline_) {
            reward_baseline_ = round_mean;
            have_baseline_ = true;
        } else {
            reward_baseline_ += 0.1 * (round_mean - reward_baseline_);
        }
    }
    for (int d = 0; d < fleet_.size(); ++d) {
        Pending &p = pending_[static_cast<size_t>(d)];
        if (!p.participated)
            continue;
        p.reward = std::clamp(p.reward - reward_baseline_, -10.0, 10.0);
        p.has_reward = true;
    }
    have_pending_ = true;
    last_mean_reward_ = round_mean;
    ++rounds_seen_;

    acc_prev_ = accuracy_percent;
    have_acc_prev_ = true;
}

size_t
AutoFlScheduler::total_entries() const
{
    size_t n = 0;
    for (const auto &t : tables_)
        n += t.entries();
    return n;
}

size_t
AutoFlScheduler::total_bytes() const
{
    size_t n = 0;
    for (const auto &t : tables_)
        n += t.bytes();
    return n;
}

} // namespace autofl
