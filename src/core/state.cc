#include "state.h"

#include <cassert>

namespace autofl {

int
encode_global(const GlobalState &s)
{
    int idx = s.s_conv;
    idx = idx * kFcBuckets + s.s_fc;
    idx = idx * kRcBuckets + s.s_rc;
    idx = idx * kBatchBuckets + s.s_b;
    idx = idx * kEpochBuckets + s.s_e;
    idx = idx * kKBuckets + s.s_k;
    idx = idx * kStaleBuckets + s.s_stale;
    assert(idx >= 0 && idx < kGlobalStates);
    return idx;
}

int
encode_local(const LocalState &s)
{
    int idx = s.s_co_cpu;
    idx = idx * kCoMemBuckets + s.s_co_mem;
    idx = idx * kNetworkBuckets + s.s_network;
    idx = idx * kDataBuckets + s.s_data;
    assert(idx >= 0 && idx < kLocalStates);
    return idx;
}

namespace {

// Table 1 thresholds.

int
bucket_conv(int n)
{
    if (n == 0)
        return 0;  // none
    if (n < 10)
        return 1;  // small
    if (n < 20)
        return 2;  // medium
    if (n < 30)
        return 3;  // large
    return 4;      // larger
}

int
bucket_fc(int n)
{
    if (n == 0)
        return 0;  // none
    return n < 10 ? 1 : 2;
}

int
bucket_rc(int n)
{
    if (n == 0)
        return 0;  // none
    if (n < 5)
        return 1;  // small
    if (n < 10)
        return 2;  // medium
    return 3;      // large
}

int
bucket_batch(int b)
{
    if (b < 8)
        return 0;
    if (b < 32)
        return 1;
    return 2;
}

int
bucket_epochs(int e)
{
    if (e < 5)
        return 0;
    if (e < 10)
        return 1;
    return 2;
}

int
bucket_k(int k)
{
    if (k < 10)
        return 0;
    if (k < 50)
        return 1;
    return 2;
}

int
bucket_util(double u)
{
    // none (0%), small (<25%), medium (<75%), large (<=100%).
    if (u <= 0.0)
        return 0;
    if (u < 0.25)
        return 1;
    if (u < 0.75)
        return 2;
    return 3;
}

int
bucket_staleness(double mean)
{
    // fresh (sync / bound 0), mild (mean < 1 commit), heavy.
    if (mean <= 0.0)
        return 0;
    if (mean < 1.0)
        return 1;
    return 2;
}

int
bucket_data(double fraction)
{
    // small (<25%), medium (<100%), large (=100%).
    if (fraction < 0.25)
        return 0;
    if (fraction < 1.0)
        return 1;
    return 2;
}

} // namespace

GlobalState
make_global_state(const NnProfile &profile, const FlGlobalParams &params,
                  double observed_staleness)
{
    GlobalState s;
    s.s_conv = bucket_conv(profile.conv_layers);
    s.s_fc = bucket_fc(profile.fc_layers);
    s.s_rc = bucket_rc(profile.rc_layers);
    s.s_b = bucket_batch(params.batch_size);
    s.s_e = bucket_epochs(params.epochs);
    s.s_k = bucket_k(params.k);
    s.s_stale = bucket_staleness(observed_staleness);
    return s;
}

LocalState
make_local_state(const DeviceRoundState &state, int data_classes,
                 int total_classes)
{
    assert(total_classes > 0);
    LocalState s;
    s.s_co_cpu = bucket_util(state.co_cpu_util);
    s.s_co_mem = bucket_util(state.co_mem_util);
    s.s_network =
        state.bandwidth_mbps > NetworkModel::kBadBandwidthMbps ? 0 : 1;
    s.s_data = bucket_data(static_cast<double>(data_classes) /
                           static_cast<double>(total_classes));
    return s;
}

} // namespace autofl
