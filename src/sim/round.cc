#include "round.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <limits>

namespace autofl {

int
RoundExec::included_count() const
{
    int n = 0;
    for (const auto &p : participants)
        if (p.included)
            ++n;
    return n;
}

RoundExec
simulate_round(Fleet &fleet, const std::vector<ParticipantPlan> &plans,
               const std::vector<ComputeProfile> &profiles,
               const RoundSimConfig &cfg)
{
    assert(plans.size() == profiles.size());
    RoundExec out;
    out.participants.reserve(plans.size());

    // Pass 1: raw completion time of every participant.
    std::vector<double> completions;
    completions.reserve(plans.size());
    for (size_t i = 0; i < plans.size(); ++i) {
        const ParticipantPlan &plan = plans[i];
        const Device &dev = fleet.device(plan.device_id);
        const DvfsLadder ladder = ladder_for(dev.spec(), plan.target);
        const double freq = ladder.freq_frac_for_level(plan.dvfs);

        DeviceExec e;
        e.device_id = plan.device_id;
        e.comp_s = compute_time_s(dev.spec(), plan.target, freq, profiles[i],
                                  dev.state(), dev.heat());
        e.comm_s = comm_time_s(profiles[i].payload_bytes,
                               profiles[i].uplink_bytes > 0.0 ?
                                   profiles[i].uplink_bytes :
                                   profiles[i].payload_bytes,
                               dev.state().bandwidth_mbps);
        out.participants.push_back(e);
        completions.push_back(e.completion_s());
    }

    // Deadline from the median completion (FedAvg straggler handling).
    double deadline = std::numeric_limits<double>::infinity();
    if (cfg.deadline_multiple > 0.0 && !completions.empty()) {
        std::vector<double> sorted = completions;
        std::nth_element(sorted.begin(),
                         sorted.begin() +
                             static_cast<ptrdiff_t>(sorted.size() / 2),
                         sorted.end());
        deadline = cfg.deadline_multiple * sorted[sorted.size() / 2];
    }
    out.deadline_s = deadline;

    // Round time: slowest included participant (capped at the deadline
    // when anyone was dropped, since the server stops waiting there).
    double slowest_included = 0.0;
    bool any_dropped = false;
    for (size_t i = 0; i < out.participants.size(); ++i) {
        DeviceExec &e = out.participants[i];
        if (e.completion_s() > deadline) {
            e.included = false;
            any_dropped = true;
        } else {
            slowest_included = std::max(slowest_included, e.completion_s());
        }
    }
    out.round_s = any_dropped ? deadline : slowest_included;
    if (out.participants.empty())
        out.round_s = 0.0;

    // Pass 2: energies against the final round duration.
    for (size_t i = 0; i < out.participants.size(); ++i) {
        DeviceExec &e = out.participants[i];
        const ParticipantPlan &plan = plans[i];
        const Device &dev = fleet.device(plan.device_id);
        const DvfsLadder ladder = ladder_for(dev.spec(), plan.target);
        const double freq = ladder.freq_frac_for_level(plan.dvfs);

        double busy_s = e.comp_s;
        double comm_s = e.comm_s;
        if (!e.included) {
            // Dropped device worked until the deadline, then aborted; it
            // had finished the download but never uploaded.
            const double budget = std::max(0.0, deadline - comm_s * 0.5);
            busy_s = std::min(busy_s, budget);
            comm_s = comm_s * 0.5;
            e.wait_s = 0.0;
        } else {
            e.wait_s = std::max(0.0, out.round_s - e.completion_s());
        }
        // The fixed setup overhead runs on the CPU pipeline regardless
        // of the training target; the remaining busy time bills at the
        // training target's rail.
        const double overhead_s =
            std::min(busy_s, profiles[i].include_overhead ?
                                 kRoundOverheadS : 0.0);
        const ComputeEnergy ce = compute_energy(
            dev.spec(), plan.target, freq, busy_s - overhead_s, 0.0);
        e.comp_j = ce.total() +
            overhead_power_w(dev.spec()) * overhead_s;
        e.comm_j = comm_energy(dev.state().bandwidth_mbps, comm_s);
        // Session power runs for as long as the device is checked into
        // the round (until the deadline for dropped stragglers); the
        // wait after finishing additionally costs the idle floor.
        const double session_s = e.included ? out.round_s : deadline;
        e.wait_j = dev.spec().session_w * session_s +
            dev.spec().idle_w * e.wait_s;
        out.energy_participants_j += e.energy_j();
        if (e.included)
            out.work_flops += profiles[i].train_flops;
    }

    // Participants warm up for subsequent rounds.
    for (const auto &plan : plans)
        fleet.device(plan.device_id).add_heat();

    // Idle energy of the rest of the fleet (Eq. 4).
    std::vector<bool> is_participant(static_cast<size_t>(fleet.size()), false);
    for (const auto &plan : plans)
        is_participant[static_cast<size_t>(plan.device_id)] = true;
    for (int d = 0; d < fleet.size(); ++d) {
        if (!is_participant[static_cast<size_t>(d)]) {
            out.energy_idle_fleet_j +=
                idle_energy(fleet.device(d).spec(), out.round_s);
        }
    }
    return out;
}

} // namespace autofl
