/**
 * @file
 * Round-level execution simulation: given a participant plan (who trains,
 * on which target, at which DVFS point), compute the round's timing and
 * the per-device / fleet energy breakdown (Eqs. 1-6).
 *
 * Rounds are straggler-gated: the round lasts until the slowest included
 * participant uploads its gradients. Following the FedAvg deployment the
 * paper baselines against, participants that run past a deadline are
 * dropped from aggregation (their gradients are excluded and their energy
 * is wasted), which is what degrades baseline accuracy under variance.
 */
#ifndef AUTOFL_SIM_ROUND_H
#define AUTOFL_SIM_ROUND_H

#include <vector>

#include "sim/fleet.h"
#include "sim/perf.h"
#include "sim/power.h"

namespace autofl {

/** Scheduled work for one participant. */
struct ParticipantPlan
{
    int device_id = -1;
    ExecTarget target = ExecTarget::Cpu;
    DvfsLevel dvfs = DvfsLevel::High;
};

/** Simulated execution record of one participant. */
struct DeviceExec
{
    int device_id = -1;
    bool included = true;   ///< False when dropped at the round deadline.
    double comp_s = 0.0;    ///< Local training time.
    double comm_s = 0.0;    ///< Gradient down+up transfer time.
    double wait_s = 0.0;    ///< Idle wait after finishing, inside the round.
    double comp_j = 0.0;    ///< Computation energy (Eqs. 1-2).
    double comm_j = 0.0;    ///< Communication energy (Eq. 3).
    double wait_j = 0.0;    ///< Idle-wait energy inside the round.

    /** Total completion latency (transfer + training). */
    double completion_s() const { return comp_s + comm_s; }

    /** Total energy this participant drew during the round. */
    double energy_j() const { return comp_j + comm_j + wait_j; }
};

/** Simulated result of one aggregation round. */
struct RoundExec
{
    double round_s = 0.0;             ///< Wall time of the round.
    double deadline_s = 0.0;          ///< Straggler-drop deadline used.
    std::vector<DeviceExec> participants;
    double energy_participants_j = 0.0;
    double energy_idle_fleet_j = 0.0; ///< Non-participants' idle energy.
    double work_flops = 0.0;          ///< Useful FLOPs from included devices.

    /** Fleet-wide energy (Eq. 6 summed over all N devices). */
    double energy_global_j() const
    {
        return energy_participants_j + energy_idle_fleet_j;
    }

    /** Number of participants whose gradients made it into aggregation. */
    int included_count() const;
};

/** Round simulation knobs. */
struct RoundSimConfig
{
    /**
     * Deadline as a multiple of the median participant completion time;
     * participants above it are dropped (FedAvg straggler handling).
     * <= 0 disables dropping.
     */
    double deadline_multiple = 2.5;
};

/**
 * Simulate one round.
 * @param fleet The device population with per-round states sampled;
 *        participants' thermal-fatigue state is updated at round end.
 * @param plans One entry per selected participant.
 * @param profiles Per-participant compute profile, parallel to @p plans.
 */
RoundExec simulate_round(Fleet &fleet,
                         const std::vector<ParticipantPlan> &plans,
                         const std::vector<ComputeProfile> &profiles,
                         const RoundSimConfig &cfg = {});

} // namespace autofl

#endif // AUTOFL_SIM_ROUND_H
