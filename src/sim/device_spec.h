/**
 * @file
 * Static per-tier device specifications (Tables 2 and 3 of the paper).
 *
 * Three representative smartphone performance tiers are modeled:
 *   H — high-end  (Mi8Pro-class,      m4.large-equivalent, 153.6 GFLOPS)
 *   M — mid-end   (Galaxy S10e-class, t3a.medium-equivalent,  80 GFLOPS)
 *   L — low-end   (Moto X Force-class, t2.small-equivalent, 52.8 GFLOPS)
 */
#ifndef AUTOFL_SIM_DEVICE_SPEC_H
#define AUTOFL_SIM_DEVICE_SPEC_H

#include <string>

namespace autofl {

/** Smartphone performance tier. */
enum class Tier { High, Mid, Low };

/** Short tier label ("H", "M", "L"). */
std::string tier_label(Tier t);

/** Execution target for on-device training (second-level action). */
enum class ExecTarget { Cpu, Gpu };

/** Short target label ("CPU", "GPU"). */
std::string target_label(ExecTarget t);

/**
 * Static capability and power profile of one device tier.
 *
 * Compute throughputs follow Table 2; peak power and V-F step counts
 * follow Table 3. GPU *training* throughput is derated relative to the
 * CPU (mobile training has limited GPU programmability/utilization; the
 * paper observes CPU is the more energy-efficient training target absent
 * interference, which these numbers reproduce). Memory throughput gaps
 * across tiers are narrower than compute gaps, which shrinks the tier
 * performance gap for memory-bound (RC-heavy) models as in Section 3.1.
 */
struct DeviceSpec
{
    Tier tier = Tier::High;
    std::string phone_model;  ///< Measured handset (Table 3).
    std::string ec2_instance; ///< Emulation instance (Table 2).

    double cpu_gflops = 0;    ///< Nominal CPU compute throughput.
    double gpu_gflops = 0;    ///< Nominal GPU training throughput.
    double mem_gflops = 0;    ///< Memory-bound effective throughput.
    double ram_gb = 0;

    double cpu_peak_w = 0;    ///< CPU package power at max V-F, fully busy.
    double gpu_peak_w = 0;    ///< GPU power at max V-F, fully busy.

    /**
     * Average platform power while training at max V-F. Table 3 lists
     * per-step peak powers; the measured average training draw is lower
     * on mid/low tiers (Section 3.1 reports 35.7% / 46.4% lower than
     * high-end), because narrower cores spend more cycles stalled on
     * memory and run at lower sustained operating points.
     */
    double cpu_train_w = 0;
    double gpu_train_w = 0;
    double idle_w = 0;        ///< Device idle (screen-off, connected) power.

    /**
     * Extra base power a device draws for the whole duration of a round
     * it participates in (wakelock, radio session, awake SoC rails), on
     * top of busy/idle power. This is what makes straggler-stretched
     * rounds costly for every participant, not just the straggler.
     */
    double session_w = 0;

    /**
     * Thermal model: a tier can run at full rate for thermal_budget_s of
     * busy time per round before the governor throttles the remainder to
     * throttle_factor of the nominal rate. Small passive devices (low
     * tier) throttle soonest and hardest; this is what keeps high-end
     * devices mandatory for compute-heavy settings (S1) while letting
     * cheaper tiers win when per-round work is small (S3/S4).
     */
    double thermal_budget_s = 0;
    double throttle_factor = 1.0;

    /**
     * Minibatch half-saturation point: effective compute rate scales as
     * B / (B + batch_half). Wide high-end SoCs need larger minibatches
     * to keep their SIMD/core resources fed, so small-B settings (S3,
     * S4) compress the tier performance gap, which is what shifts the
     * optimal cluster toward mid/low tiers in Figure 4.
     */
    double batch_half = 0;

    /**
     * CPU interference sensitivity: fraction of throughput a saturating
     * co-runner can steal. High-end SoCs with more cores/cache absorb
     * co-running load much better (Section 3.2).
     */
    double interference_sens = 0;

    int cpu_vf_steps = 0;     ///< Number of CPU DVFS steps (Table 3).
    int gpu_vf_steps = 0;     ///< Number of GPU DVFS steps (Table 3).

    double cpu_fmax_ghz = 0;  ///< Max CPU frequency (Table 3).
    double gpu_fmax_ghz = 0;  ///< Max GPU frequency (Table 3).
};

/** Canonical spec for a tier. */
const DeviceSpec &spec_for_tier(Tier t);

/** Fleet mix from Section 5.1: 30 high / 70 mid / 100 low of N=200. */
struct FleetMix
{
    int high = 30;
    int mid = 70;
    int low = 100;

    int total() const { return high + mid + low; }
};

} // namespace autofl

#endif // AUTOFL_SIM_DEVICE_SPEC_H
