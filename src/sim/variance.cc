#include "variance.h"

#include <algorithm>

namespace autofl {

std::string
variance_scenario_name(VarianceScenario v)
{
    switch (v) {
      case VarianceScenario::None:
        return "no-variance";
      case VarianceScenario::Interference:
        return "interference";
      case VarianceScenario::WeakNetwork:
        return "weak-network";
      case VarianceScenario::Combined:
        return "combined";
    }
    return "unknown";
}

InterferenceGenerator::InterferenceGenerator(bool active,
                                             double affected_fraction)
    : active_(active), affected_fraction_(affected_fraction)
{
}

void
InterferenceGenerator::sample(Rng &device_rng, double &cpu_out,
                              double &mem_out) const
{
    cpu_out = 0.0;
    mem_out = 0.0;
    if (!active_)
        return;
    if (!device_rng.bernoulli(affected_fraction_))
        return;
    // Browsing is bursty: mostly moderate load with occasional heavy
    // bursts (page loads, JS-heavy tabs).
    if (device_rng.bernoulli(0.3)) {
        cpu_out = std::clamp(device_rng.normal(0.75, 0.12), 0.0, 1.0);
        mem_out = std::clamp(device_rng.normal(0.55, 0.15), 0.0, 1.0);
    } else {
        cpu_out = std::clamp(device_rng.normal(0.35, 0.12), 0.0, 1.0);
        mem_out = std::clamp(device_rng.normal(0.25, 0.10), 0.0, 1.0);
    }
}

NetworkModel::NetworkModel(bool weak) : weak_(weak)
{
}

double
NetworkModel::sample_bandwidth(Rng &device_rng) const
{
    const double mean = weak_ ? 18.0 : 80.0;
    const double std = weak_ ? 8.0 : 15.0;
    return std::max(1.0, device_rng.normal(mean, std));
}

double
NetworkModel::tx_power_w(double bandwidth_mbps)
{
    // Signal-strength buckets: strong / medium / weak. Radio TX power
    // rises steeply at the cell edge (paper's Eq. 3 inputs).
    if (bandwidth_mbps > 60.0)
        return 0.7;
    if (bandwidth_mbps > kBadBandwidthMbps)
        return 1.2;
    if (bandwidth_mbps > 15.0)
        return 1.8;
    return 2.5;
}

} // namespace autofl
