/**
 * @file
 * Stochastic runtime variance sources: co-running application interference
 * and wireless network instability (Sections 2.2, 3.2, 5.2).
 */
#ifndef AUTOFL_SIM_VARIANCE_H
#define AUTOFL_SIM_VARIANCE_H

#include <string>

#include "util/rng.h"

namespace autofl {

/** Runtime-variance scenario evaluated in the paper (Figs. 5 and 10). */
enum class VarianceScenario {
    None,          ///< Ideal: no interference, stable strong network.
    Interference,  ///< Web-browsing-like co-running apps on random devices.
    WeakNetwork,   ///< Degraded, unstable wireless bandwidth.
    Combined,      ///< Both interference and weak network (field mix).
};

/** Human-readable scenario name. */
std::string variance_scenario_name(VarianceScenario v);

/** Per-round observable execution state of one device. */
struct DeviceRoundState
{
    double co_cpu_util = 0.0;   ///< CPU utilization of co-running apps [0,1].
    double co_mem_util = 0.0;   ///< Memory pressure of co-running apps [0,1].
    double bandwidth_mbps = 0;  ///< Current wireless bandwidth.
};

/**
 * Generates bursty web-browsing-shaped co-running load (Section 5.2).
 * Each device independently alternates between idle and browsing phases;
 * while browsing, CPU/memory utilization follow the bursty distribution
 * of interactive web workloads.
 */
class InterferenceGenerator
{
  public:
    /**
     * @param active Whether any interference exists in the scenario.
     * @param affected_fraction Fraction of devices with a co-runner.
     */
    InterferenceGenerator(bool active, double affected_fraction = 0.5);

    /**
     * Sample the co-running load a device experiences this round.
     * @param device_rng Per-device RNG stream.
     * @param cpu_out CPU utilization of the co-runner [0, 1].
     * @param mem_out Memory pressure of the co-runner [0, 1].
     */
    void sample(Rng &device_rng, double &cpu_out, double &mem_out) const;

  private:
    bool active_;
    double affected_fraction_;
};

/**
 * Gaussian-bandwidth wireless network model (the paper models real-world
 * network variability as Gaussian). Signal strength classes derive from
 * the sampled bandwidth and set the radio TX power (Eq. 3).
 */
class NetworkModel
{
  public:
    /**
     * @param weak Whether the scenario degrades the network.
     */
    explicit NetworkModel(bool weak);

    /** Sample this round's bandwidth for one device (Mbps, >= 1). */
    double sample_bandwidth(Rng &device_rng) const;

    /**
     * Radio TX power at a given bandwidth (signal-strength proxy):
     * weaker signal -> higher TX power, per the measurement-driven model
     * the paper cites.
     */
    static double tx_power_w(double bandwidth_mbps);

    /** Paper's S_Network threshold: "bad" when bandwidth <= 40 Mbps. */
    static constexpr double kBadBandwidthMbps = 40.0;

  private:
    bool weak_;
};

} // namespace autofl

#endif // AUTOFL_SIM_VARIANCE_H
