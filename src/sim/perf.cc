#include "perf.h"

#include <algorithm>
#include <cassert>

#include "sim/scale.h"

namespace autofl {

double
mem_bound_fraction(double arithmetic_intensity)
{
    // Small-AI models (RC layers stream weight matrices per timestep)
    // spend most cycles waiting on memory; CONV-heavy models reuse
    // weights heavily. The constants map our model zoo onto the paper's
    // observation that the H/L tier gap shrinks from ~2.1x (CNN) to
    // ~1.5x (LSTM).
    if (arithmetic_intensity <= 0.0)
        return 0.5;
    const double f = 1.8 / (1.8 + arithmetic_intensity);
    return std::clamp(f, 0.05, 0.9);
}

double
compute_time_s(const DeviceSpec &spec, ExecTarget target, double freq_frac,
               const ComputeProfile &prof, const DeviceRoundState &state,
               double heat)
{
    assert(freq_frac > 0.0 && freq_frac <= 1.0);
    assert(heat >= 0.0 && heat <= 1.0);

    const double base_gflops =
        target == ExecTarget::Cpu ? spec.cpu_gflops : spec.gpu_gflops;

    // Interference: a CPU co-runner competes for cores/cache with a CPU
    // training run (big SoCs absorb it better, Section 3.2); a GPU run
    // only contends on memory bandwidth.
    double compute_slowdown = 1.0;
    double mem_slowdown = 1.0 + 0.5 * state.co_mem_util;
    if (target == ExecTarget::Cpu) {
        compute_slowdown = 1.0 /
            std::max(0.10, 1.0 - spec.interference_sens * state.co_cpu_util);
        // Thermal throttling: sustained full-clock training plus a heavy
        // co-runner trips the thermal governor.
        if (state.co_cpu_util > 0.5 && freq_frac > 0.85)
            compute_slowdown *= 1.25;
    } else {
        compute_slowdown = 1.0 + 0.15 * state.co_cpu_util;
    }

    // Minibatch utilization: wide machines need large batches to stay
    // fed; B below the tier's half-saturation point wastes throughput.
    const double batch_eff = static_cast<double>(prof.batch_size) /
        (prof.batch_size + spec.batch_half);

    const double eff_compute = base_gflops * 1e9 * kComputeScale *
        freq_frac * batch_eff / compute_slowdown;
    const double eff_mem = spec.mem_gflops * 1e9 * kComputeScale /
        mem_slowdown;

    const double cf = 1.0 - prof.mem_bound_frac;
    double t = prof.train_flops *
        (cf / eff_compute + prof.mem_bound_frac / eff_mem);

    // Cross-round thermal fatigue: a device selected in recent rounds
    // starts warm and loses headroom.
    t /= std::max(0.3, 1.0 - 0.40 * heat);

    // In-round sustained-load throttling: beyond the tier's thermal
    // budget the remainder of the work runs at the throttled rate.
    if (prof.include_overhead && t > spec.thermal_budget_s &&
        spec.throttle_factor < 1.0) {
        t = spec.thermal_budget_s +
            (t - spec.thermal_budget_s) / spec.throttle_factor;
    }

    // Fixed per-round on-device overhead: runtime init, model
    // (de)serialization, data pipeline setup. Largely tier- and
    // frequency-independent, which is what compresses the tier gap
    // when per-round work is small (Section 3.1's S3/S4 behavior).
    if (prof.include_overhead)
        t += kRoundOverheadS;
    return t;
}

double
comm_time_s(double payload_bytes, double bandwidth_mbps)
{
    return comm_time_s(payload_bytes, payload_bytes, bandwidth_mbps);
}

double
comm_time_s(double down_bytes, double up_bytes, double bandwidth_mbps)
{
    assert(bandwidth_mbps > 0.0);
    const double bits = (down_bytes + up_bytes) * 8.0;
    return bits / (bandwidth_mbps * 1e6 * kCommScale);
}

} // namespace autofl
