/**
 * @file
 * Performance model: training FLOPs -> simulated seconds on a device,
 * as a function of execution target, DVFS point, the model's memory
 * intensity, and co-running interference.
 */
#ifndef AUTOFL_SIM_PERF_H
#define AUTOFL_SIM_PERF_H

#include "sim/device_spec.h"
#include "sim/dvfs.h"
#include "sim/variance.h"

namespace autofl {

/** Workload compute profile the performance model needs. */
struct ComputeProfile
{
    double train_flops = 0;      ///< Total training FLOPs this round.
    double mem_bound_frac = 0;   ///< Fraction of time that is memory-bound.
    double payload_bytes = 0;    ///< Downlink payload (full f32 model).
    int batch_size = 32;         ///< Local minibatch size B (utilization).

    /**
     * Include the fixed per-round overhead and sustained-load throttling
     * (disabled by micro-level tests that isolate the rate model).
     */
    bool include_overhead = true;

    /**
     * Uplink payload when push-path compression shrinks it (see
     * ps/compression.h: encoded_delta_bytes). 0 keeps the symmetric
     * model (uplink == payload_bytes), which is the uncompressed
     * runtime.
     */
    double uplink_bytes = 0;
};

/** Fixed per-round on-device setup/teardown time (simulated seconds). */
constexpr double kRoundOverheadS = 0.35;

/** Derive the memory-bound fraction from a model's arithmetic intensity. */
double mem_bound_fraction(double arithmetic_intensity);

/**
 * Simulated training time for one device-round.
 *
 * Effective throughput combines the compute-bound and memory-bound parts
 * harmonically; DVFS scales only the compute-bound part's clock; CPU
 * interference steals cycles from a CPU-target run and memory pressure
 * mildly degrades both targets (the GPU contends only for bandwidth).
 * Heavy interference at a high V-F point adds a thermal-throttling
 * penalty on the CPU (Section 6.2).
 *
 * @param heat Cross-round thermal fatigue in [0, 1] (see Device::heat()):
 *        devices selected in consecutive rounds start warm and run slower.
 */
double compute_time_s(const DeviceSpec &spec, ExecTarget target,
                      double freq_frac, const ComputeProfile &prof,
                      const DeviceRoundState &state, double heat = 0.0);

/** Simulated up+down gradient transfer time over the current link. */
double comm_time_s(double payload_bytes, double bandwidth_mbps);

/**
 * Asymmetric variant: full-model download, compressed-delta upload.
 * comm_time_s(b, mbps) == comm_time_s(b, b, mbps) exactly.
 */
double comm_time_s(double down_bytes, double up_bytes,
                   double bandwidth_mbps);

} // namespace autofl

#endif // AUTOFL_SIM_PERF_H
