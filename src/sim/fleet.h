/**
 * @file
 * Device and Fleet: the population of N edge devices participating in FL.
 *
 * The default fleet reproduces Section 5.1: 200 devices, 30 high-end,
 * 70 mid-end, 100 low-end. Each device owns an independent RNG stream
 * so its interference/network draws are reproducible and uncorrelated.
 */
#ifndef AUTOFL_SIM_FLEET_H
#define AUTOFL_SIM_FLEET_H

#include <algorithm>
#include <vector>

#include "sim/device_spec.h"
#include "sim/variance.h"
#include "util/rng.h"

namespace autofl {

/** One simulated edge device. */
class Device
{
  public:
    Device(int id, Tier tier, Rng rng);

    int id() const { return id_; }
    Tier tier() const { return tier_; }
    const DeviceSpec &spec() const { return spec_for_tier(tier_); }

    /** Sample this round's interference and bandwidth state. */
    void sample_state(const InterferenceGenerator &interference,
                      const NetworkModel &network);

    /** Observable execution state for the current round. */
    const DeviceRoundState &state() const { return state_; }

    /** Override the state (tests and directed scenarios). */
    void set_state(const DeviceRoundState &s) { state_ = s; }

    /**
     * Cross-round thermal fatigue in [0, 1]: rises when the device
     * participates, decays geometrically between rounds. Hidden from the
     * scheduler's observable state — policies only feel it through the
     * resulting time/energy (the paper's S4 observation that letting
     * high-end devices "stay idle during the round" pays off).
     */
    double heat() const { return heat_; }

    /** Geometric cool-down at the start of every round. */
    void cool_down() { heat_ *= 0.6; }

    /** Heat added by participating in a round. */
    void add_heat() { heat_ = std::min(1.0, heat_ + 0.4); }

  private:
    int id_;
    Tier tier_;
    Rng rng_;
    DeviceRoundState state_;
    double heat_ = 0.0;
};

/** The population of devices plus the variance environment. */
class Fleet
{
  public:
    /**
     * @param mix Tier mix (defaults to the paper's 30/70/100).
     * @param scenario Runtime-variance scenario for state sampling.
     * @param seed Fleet-level RNG seed.
     */
    Fleet(const FleetMix &mix, VarianceScenario scenario, uint64_t seed);

    int size() const { return static_cast<int>(devices_.size()); }
    Device &device(int i) { return devices_[static_cast<size_t>(i)]; }
    const Device &device(int i) const
    {
        return devices_[static_cast<size_t>(i)];
    }

    /** Device ids of one tier, in id order. */
    std::vector<int> ids_of(Tier t) const;

    /** Count of devices of one tier. */
    int count_of(Tier t) const;

    /** Sample every device's round state from the scenario. */
    void begin_round();

    /** Scenario this fleet runs under. */
    VarianceScenario scenario() const { return scenario_; }

  private:
    std::vector<Device> devices_;
    VarianceScenario scenario_;
    InterferenceGenerator interference_;
    NetworkModel network_;
};

} // namespace autofl

#endif // AUTOFL_SIM_FLEET_H
