/**
 * @file
 * Energy models — direct implementations of Equations 1-4 of the paper.
 *
 *  Eq. 1  CPU computation energy: sum over busy/idle residency, with the
 *         busy power taken at the operating V-F point.
 *  Eq. 2  GPU computation energy: same structure on the GPU rail.
 *  Eq. 3  Communication energy: TX power at the current signal strength
 *         times the transmission latency.
 *  Eq. 4  Idle energy of non-selected devices over the round.
 */
#ifndef AUTOFL_SIM_POWER_H
#define AUTOFL_SIM_POWER_H

#include "sim/device_spec.h"
#include "sim/dvfs.h"

namespace autofl {

/** Computation-energy breakdown for one device over one round. */
struct ComputeEnergy
{
    double busy_j = 0.0;  ///< Energy while training.
    double idle_j = 0.0;  ///< Energy while waiting for the round to end.

    double total() const { return busy_j + idle_j; }
};

/**
 * Utilization-based computation energy (Eqs. 1-2). The busy power is the
 * target's peak power scaled by the DVFS power fraction at the chosen
 * frequency plus the always-on idle floor.
 *
 * @param spec Device tier spec (peak/idle powers).
 * @param target Training execution target (selects the power rail).
 * @param freq_frac Operating frequency as a fraction of fmax.
 * @param busy_s Seconds spent training.
 * @param wait_s Seconds spent idle inside the round after finishing.
 */
ComputeEnergy compute_energy(const DeviceSpec &spec, ExecTarget target,
                             double freq_frac, double busy_s, double wait_s);

/**
 * Communication energy (Eq. 3): radio TX power at the current signal
 * strength times the gradient up/down transfer latency.
 */
double comm_energy(double bandwidth_mbps, double comm_s);

/** Idle energy of a non-participant over the round (Eq. 4). */
double idle_energy(const DeviceSpec &spec, double round_s);

/** Busy power draw (W) at an operating point, for tests/inspection. */
double busy_power_w(const DeviceSpec &spec, ExecTarget target,
                    double freq_frac);

/**
 * Power drawn during the fixed per-round setup/teardown overhead: the
 * data pipeline and model (de)serialization run on the CPU at a moderate
 * operating point regardless of the training target.
 */
double overhead_power_w(const DeviceSpec &spec);

} // namespace autofl

#endif // AUTOFL_SIM_POWER_H
