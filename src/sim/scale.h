/**
 * @file
 * Simulation scale constants.
 *
 * The paper trains MB-sized models for minutes per round on real devices.
 * This repo trains deliberately miniaturized models (KB-sized, tens of
 * milliseconds of real CPU work) so the whole 200-device evaluation runs
 * in seconds. To keep the *simulated* time/energy ratios paper-shaped
 * (compute-dominated rounds, communication ~10-20% of round time on a
 * good network and several times larger on a weak one), device throughput
 * and network bandwidth are scaled down by the constants below. Only
 * ratios between policies matter; absolute units are simulator units.
 */
#ifndef AUTOFL_SIM_SCALE_H
#define AUTOFL_SIM_SCALE_H

namespace autofl {

/**
 * Fraction of a device's nominal FLOPS available to the miniature models:
 * a 153.6 GFLOPS high-end device becomes a 153.6 MFLOPS simulated engine,
 * stretching the tiny models' round times to ~1 simulated second.
 */
constexpr double kComputeScale = 1e-3;

/**
 * Fraction of nominal radio bandwidth available to the miniature payloads,
 * chosen so a ~25 KB model at 80 Mbps nominal takes ~0.1 simulated second.
 */
constexpr double kCommScale = 0.04;

/**
 * Training FLOPs per sample as a multiple of forward FLOPs
 * (forward + backward + weight update).
 */
constexpr double kTrainFlopFactor = 3.0;

} // namespace autofl

#endif // AUTOFL_SIM_SCALE_H
