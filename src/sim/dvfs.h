/**
 * @file
 * DVFS ladder: discrete voltage-frequency steps per execution target.
 *
 * AutoFL's second-level action is augmented with DVFS settings so fast
 * participants can ride the straggler slack down to a lower V-F point
 * (Section 4.1 "Action"). The ladder exposes the per-tier step counts of
 * Table 3 and maps them onto the three coarse action buckets the RL agent
 * uses (low / mid / high frequency).
 */
#ifndef AUTOFL_SIM_DVFS_H
#define AUTOFL_SIM_DVFS_H

#include <vector>

#include "sim/device_spec.h"

namespace autofl {

/** Coarse DVFS action bucket used in the RL action space. */
enum class DvfsLevel { Low, Mid, High };

/** Short label ("lo", "mid", "hi"). */
std::string dvfs_label(DvfsLevel l);

/** All DVFS levels, for sweeps. */
const std::vector<DvfsLevel> &all_dvfs_levels();

/** Discrete V-F ladder for one execution target of one device tier. */
class DvfsLadder
{
  public:
    /**
     * @param steps Number of V-F steps (from Table 3).
     * @param fmax_ghz Maximum frequency.
     * @param fmin_frac Lowest step as a fraction of fmax (default 0.4).
     */
    DvfsLadder(int steps, double fmax_ghz, double fmin_frac = 0.4);

    /** Number of discrete steps. */
    int steps() const { return static_cast<int>(freq_frac_.size()); }

    /** Frequency fraction (f/fmax) of step @p i, ascending. */
    double freq_frac(int i) const;

    /** Absolute frequency of step @p i in GHz. */
    double freq_ghz(int i) const;

    /**
     * Relative dynamic power of step @p i: (f/fmax)^3 from the classic
     * f*V^2 scaling with V roughly linear in f.
     */
    double power_frac(int i) const;

    /** Ladder step index for a coarse action bucket. */
    int step_for_level(DvfsLevel level) const;

    /** Frequency fraction for a coarse action bucket. */
    double freq_frac_for_level(DvfsLevel level) const;

    /** Relative dynamic power for a coarse action bucket. */
    double power_frac_for_level(DvfsLevel level) const;

  private:
    std::vector<double> freq_frac_;
    double fmax_ghz_;
};

/** Ladder for a tier's CPU or GPU, built from the tier spec. */
DvfsLadder ladder_for(const DeviceSpec &spec, ExecTarget target);

} // namespace autofl

#endif // AUTOFL_SIM_DVFS_H
