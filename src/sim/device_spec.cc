#include "device_spec.h"

#include <cassert>

namespace autofl {

std::string
tier_label(Tier t)
{
    switch (t) {
      case Tier::High:
        return "H";
      case Tier::Mid:
        return "M";
      case Tier::Low:
        return "L";
    }
    return "?";
}

std::string
target_label(ExecTarget t)
{
    return t == ExecTarget::Cpu ? "CPU" : "GPU";
}

namespace {

DeviceSpec
make_high()
{
    DeviceSpec s;
    s.tier = Tier::High;
    s.phone_model = "Mi8Pro";
    s.ec2_instance = "m4.large";
    s.cpu_gflops = 153.6;
    // Training utilizes the mobile GPU poorly (limited programmability);
    // ~35% of CPU throughput keeps CPU the better PPW target absent
    // interference, as characterized in Section 6.2.
    s.gpu_gflops = 0.35 * s.cpu_gflops;
    s.mem_gflops = 50.0;
    s.ram_gb = 8;
    s.cpu_peak_w = 5.5;
    s.gpu_peak_w = 2.8;
    s.cpu_train_w = 5.5;
    s.gpu_train_w = 2.8;
    s.idle_w = 0.030;
    s.session_w = 0.40;
    s.thermal_budget_s = 1.2;
    s.throttle_factor = 0.85;
    s.interference_sens = 0.50;
    s.batch_half = 18.0;
    s.cpu_vf_steps = 23;
    s.gpu_vf_steps = 7;
    s.cpu_fmax_ghz = 2.8;
    s.gpu_fmax_ghz = 0.7;
    return s;
}

DeviceSpec
make_mid()
{
    DeviceSpec s;
    s.tier = Tier::Mid;
    s.phone_model = "Galaxy S10e";
    s.ec2_instance = "t3a.medium";
    s.cpu_gflops = 80.0;
    s.gpu_gflops = 0.35 * s.cpu_gflops;
    s.mem_gflops = 42.0;
    s.ram_gb = 4;
    s.cpu_peak_w = 5.6;
    s.gpu_peak_w = 2.4;
    // 35.7% below high-end average training draw (Section 3.1).
    s.cpu_train_w = 3.54;
    s.gpu_train_w = 1.80;
    s.idle_w = 0.025;
    s.session_w = 0.35;
    s.thermal_budget_s = 0.8;
    s.throttle_factor = 0.70;
    s.interference_sens = 0.75;
    s.batch_half = 6.0;
    s.cpu_vf_steps = 21;
    s.gpu_vf_steps = 9;
    s.cpu_fmax_ghz = 2.7;
    s.gpu_fmax_ghz = 0.7;
    return s;
}

DeviceSpec
make_low()
{
    DeviceSpec s;
    s.tier = Tier::Low;
    s.phone_model = "Moto X Force";
    s.ec2_instance = "t2.small";
    s.cpu_gflops = 52.8;
    s.gpu_gflops = 0.35 * s.cpu_gflops;
    s.mem_gflops = 34.0;
    s.ram_gb = 2;
    s.cpu_peak_w = 3.6;
    s.gpu_peak_w = 2.0;
    // 46.4% below high-end average training draw (Section 3.1).
    s.cpu_train_w = 2.95;
    s.gpu_train_w = 1.50;
    s.idle_w = 0.020;
    s.session_w = 0.30;
    s.thermal_budget_s = 0.55;
    s.throttle_factor = 0.55;
    s.interference_sens = 0.90;
    s.batch_half = 3.0;
    s.cpu_vf_steps = 15;
    s.gpu_vf_steps = 6;
    s.cpu_fmax_ghz = 1.9;
    s.gpu_fmax_ghz = 0.6;
    return s;
}

} // namespace

const DeviceSpec &
spec_for_tier(Tier t)
{
    static const DeviceSpec kHigh = make_high();
    static const DeviceSpec kMid = make_mid();
    static const DeviceSpec kLow = make_low();
    switch (t) {
      case Tier::High:
        return kHigh;
      case Tier::Mid:
        return kMid;
      case Tier::Low:
        return kLow;
    }
    assert(false);
    return kHigh;
}

} // namespace autofl
