#include "power.h"

#include <cassert>

#include "sim/variance.h"

namespace autofl {

double
busy_power_w(const DeviceSpec &spec, ExecTarget target, double freq_frac)
{
    assert(freq_frac > 0.0 && freq_frac <= 1.0);
    const double peak =
        target == ExecTarget::Cpu ? spec.cpu_train_w : spec.gpu_train_w;
    // Active power = static part + dynamic part. The dynamic part scales
    // ~f^3 (f * V^2 with V roughly linear in f); the static part (leakage,
    // uncore, rails that stay up while training) does not scale down,
    // which is why riding DVFS to the floor is not a free 4x energy win
    // on real phones — the sweet spot sits at mid frequencies.
    const double f3 = freq_frac * freq_frac * freq_frac;
    const double active = (peak - spec.idle_w) * (0.35 + 0.65 * f3);
    return spec.idle_w + active;
}

double
overhead_power_w(const DeviceSpec &spec)
{
    return 0.45 * spec.cpu_train_w + spec.idle_w;
}

ComputeEnergy
compute_energy(const DeviceSpec &spec, ExecTarget target, double freq_frac,
               double busy_s, double wait_s)
{
    ComputeEnergy e;
    e.busy_j = busy_power_w(spec, target, freq_frac) * busy_s;
    e.idle_j = spec.idle_w * wait_s;
    return e;
}

double
comm_energy(double bandwidth_mbps, double comm_s)
{
    return NetworkModel::tx_power_w(bandwidth_mbps) * comm_s;
}

double
idle_energy(const DeviceSpec &spec, double round_s)
{
    return spec.idle_w * round_s;
}

} // namespace autofl
