#include "fleet.h"

namespace autofl {

Device::Device(int id, Tier tier, Rng rng)
    : id_(id), tier_(tier), rng_(rng)
{
    // Default: quiet device on a good link.
    state_.bandwidth_mbps = 80.0;
}

void
Device::sample_state(const InterferenceGenerator &interference,
                     const NetworkModel &network)
{
    interference.sample(rng_, state_.co_cpu_util, state_.co_mem_util);
    state_.bandwidth_mbps = network.sample_bandwidth(rng_);
}

namespace {

bool
scenario_has_interference(VarianceScenario v)
{
    return v == VarianceScenario::Interference ||
        v == VarianceScenario::Combined;
}

bool
scenario_has_weak_network(VarianceScenario v)
{
    return v == VarianceScenario::WeakNetwork ||
        v == VarianceScenario::Combined;
}

} // namespace

Fleet::Fleet(const FleetMix &mix, VarianceScenario scenario, uint64_t seed)
    : scenario_(scenario),
      interference_(scenario_has_interference(scenario)),
      network_(scenario_has_weak_network(scenario))
{
    Rng root(seed);
    devices_.reserve(static_cast<size_t>(mix.total()));
    int id = 0;
    auto add_tier = [&](Tier t, int count) {
        for (int i = 0; i < count; ++i, ++id)
            devices_.emplace_back(id, t,
                                  root.fork(static_cast<uint64_t>(id)));
    };
    add_tier(Tier::High, mix.high);
    add_tier(Tier::Mid, mix.mid);
    add_tier(Tier::Low, mix.low);
}

std::vector<int>
Fleet::ids_of(Tier t) const
{
    std::vector<int> out;
    for (const auto &d : devices_)
        if (d.tier() == t)
            out.push_back(d.id());
    return out;
}

int
Fleet::count_of(Tier t) const
{
    int n = 0;
    for (const auto &d : devices_)
        if (d.tier() == t)
            ++n;
    return n;
}

void
Fleet::begin_round()
{
    for (auto &d : devices_) {
        d.cool_down();
        d.sample_state(interference_, network_);
    }
}

} // namespace autofl
