#include "dvfs.h"

#include <cassert>
#include <cmath>

namespace autofl {

std::string
dvfs_label(DvfsLevel l)
{
    switch (l) {
      case DvfsLevel::Low:
        return "lo";
      case DvfsLevel::Mid:
        return "mid";
      case DvfsLevel::High:
        return "hi";
    }
    return "?";
}

const std::vector<DvfsLevel> &
all_dvfs_levels()
{
    static const std::vector<DvfsLevel> kAll = {
        DvfsLevel::Low, DvfsLevel::Mid, DvfsLevel::High};
    return kAll;
}

DvfsLadder::DvfsLadder(int steps, double fmax_ghz, double fmin_frac)
    : fmax_ghz_(fmax_ghz)
{
    assert(steps >= 2 && fmin_frac > 0.0 && fmin_frac < 1.0);
    freq_frac_.reserve(static_cast<size_t>(steps));
    for (int i = 0; i < steps; ++i) {
        const double t = static_cast<double>(i) / (steps - 1);
        freq_frac_.push_back(fmin_frac + t * (1.0 - fmin_frac));
    }
}

double
DvfsLadder::freq_frac(int i) const
{
    assert(i >= 0 && i < steps());
    return freq_frac_[static_cast<size_t>(i)];
}

double
DvfsLadder::freq_ghz(int i) const
{
    return freq_frac(i) * fmax_ghz_;
}

double
DvfsLadder::power_frac(int i) const
{
    const double f = freq_frac(i);
    return f * f * f;
}

int
DvfsLadder::step_for_level(DvfsLevel level) const
{
    switch (level) {
      case DvfsLevel::Low:
        return 0;
      case DvfsLevel::Mid:
        return steps() / 2;
      case DvfsLevel::High:
        return steps() - 1;
    }
    return steps() - 1;
}

double
DvfsLadder::freq_frac_for_level(DvfsLevel level) const
{
    return freq_frac(step_for_level(level));
}

double
DvfsLadder::power_frac_for_level(DvfsLevel level) const
{
    return power_frac(step_for_level(level));
}

DvfsLadder
ladder_for(const DeviceSpec &spec, ExecTarget target)
{
    if (target == ExecTarget::Cpu)
        return DvfsLadder(spec.cpu_vf_steps, spec.cpu_fmax_ghz);
    return DvfsLadder(spec.gpu_vf_steps, spec.gpu_fmax_ghz);
}

} // namespace autofl
