/**
 * @file
 * AVX-512F + FMA kernel variant. This translation unit is the only one
 * compiled with -mavx512f -mfma (see CMakeLists.txt); dispatch selects
 * the table only after a cpuid check, so the binary still runs on
 * AVX2-only and pre-AVX2 x86-64.
 *
 * The table starts as a copy of the AVX2 table — every AVX-512 CPU
 * runs AVX2 code, and keeping the elementwise/codec entries shared
 * keeps those families in the bit-exact parity tier with zero extra
 * surface. Overridden here:
 *  - the packed-panel GEMM microkernel: an 8 x 32 register tile
 *    (16 zmm accumulators, 32-float panel rows), ascending-k FMA —
 *    the same Tolerance parity class as the AVX2 GEMM tier;
 *  - the fused LSTM gate family, with a 16-lane polynomial exp
 *    (transcendental Tolerance tier, libm tail like the AVX2 kernels).
 * The direct (streaming) GEMM entries stay the AVX2 implementations:
 * small shapes are load-port bound, where 512-bit vectors buy nothing.
 */
#include "kernels/kernel_table.h"

#if defined(__AVX512F__) && defined(__FMA__)

#include <immintrin.h>

namespace autofl::kernels {

namespace {

/**
 * Packed-panel 8 x 32 microkernel: 16 zmm accumulators, one k step
 * loads 2 B vectors and broadcasts 8 A values from contiguous panels
 * (apanel: kc groups of 8 row values; bpanel: kc groups of 32 column
 * values — see the driver in kernels.cc).
 */
void
avx512_micro_8x32(int kc, const float *ap, const float *bp, float *c,
                  int ldc, bool accumulate)
{
    __m512 c00, c01, c10, c11, c20, c21, c30, c31, c40, c41, c50, c51, c60,
        c61, c70, c71;
    if (accumulate) {
        c00 = _mm512_loadu_ps(c + 0 * static_cast<size_t>(ldc));
        c01 = _mm512_loadu_ps(c + 0 * static_cast<size_t>(ldc) + 16);
        c10 = _mm512_loadu_ps(c + 1 * static_cast<size_t>(ldc));
        c11 = _mm512_loadu_ps(c + 1 * static_cast<size_t>(ldc) + 16);
        c20 = _mm512_loadu_ps(c + 2 * static_cast<size_t>(ldc));
        c21 = _mm512_loadu_ps(c + 2 * static_cast<size_t>(ldc) + 16);
        c30 = _mm512_loadu_ps(c + 3 * static_cast<size_t>(ldc));
        c31 = _mm512_loadu_ps(c + 3 * static_cast<size_t>(ldc) + 16);
        c40 = _mm512_loadu_ps(c + 4 * static_cast<size_t>(ldc));
        c41 = _mm512_loadu_ps(c + 4 * static_cast<size_t>(ldc) + 16);
        c50 = _mm512_loadu_ps(c + 5 * static_cast<size_t>(ldc));
        c51 = _mm512_loadu_ps(c + 5 * static_cast<size_t>(ldc) + 16);
        c60 = _mm512_loadu_ps(c + 6 * static_cast<size_t>(ldc));
        c61 = _mm512_loadu_ps(c + 6 * static_cast<size_t>(ldc) + 16);
        c70 = _mm512_loadu_ps(c + 7 * static_cast<size_t>(ldc));
        c71 = _mm512_loadu_ps(c + 7 * static_cast<size_t>(ldc) + 16);
    } else {
        c00 = c01 = c10 = c11 = c20 = c21 = c30 = c31 = c40 = c41 = c50 =
            c51 = c60 = c61 = c70 = c71 = _mm512_setzero_ps();
    }
    for (int kk = 0; kk < kc; ++kk) {
        const __m512 b0 = _mm512_loadu_ps(bp);
        const __m512 b1 = _mm512_loadu_ps(bp + 16);
        bp += 32;
        __m512 av = _mm512_set1_ps(ap[0]);
        c00 = _mm512_fmadd_ps(av, b0, c00);
        c01 = _mm512_fmadd_ps(av, b1, c01);
        av = _mm512_set1_ps(ap[1]);
        c10 = _mm512_fmadd_ps(av, b0, c10);
        c11 = _mm512_fmadd_ps(av, b1, c11);
        av = _mm512_set1_ps(ap[2]);
        c20 = _mm512_fmadd_ps(av, b0, c20);
        c21 = _mm512_fmadd_ps(av, b1, c21);
        av = _mm512_set1_ps(ap[3]);
        c30 = _mm512_fmadd_ps(av, b0, c30);
        c31 = _mm512_fmadd_ps(av, b1, c31);
        av = _mm512_set1_ps(ap[4]);
        c40 = _mm512_fmadd_ps(av, b0, c40);
        c41 = _mm512_fmadd_ps(av, b1, c41);
        av = _mm512_set1_ps(ap[5]);
        c50 = _mm512_fmadd_ps(av, b0, c50);
        c51 = _mm512_fmadd_ps(av, b1, c51);
        av = _mm512_set1_ps(ap[6]);
        c60 = _mm512_fmadd_ps(av, b0, c60);
        c61 = _mm512_fmadd_ps(av, b1, c61);
        av = _mm512_set1_ps(ap[7]);
        c70 = _mm512_fmadd_ps(av, b0, c70);
        c71 = _mm512_fmadd_ps(av, b1, c71);
        ap += 8;
    }
    _mm512_storeu_ps(c + 0 * static_cast<size_t>(ldc), c00);
    _mm512_storeu_ps(c + 0 * static_cast<size_t>(ldc) + 16, c01);
    _mm512_storeu_ps(c + 1 * static_cast<size_t>(ldc), c10);
    _mm512_storeu_ps(c + 1 * static_cast<size_t>(ldc) + 16, c11);
    _mm512_storeu_ps(c + 2 * static_cast<size_t>(ldc), c20);
    _mm512_storeu_ps(c + 2 * static_cast<size_t>(ldc) + 16, c21);
    _mm512_storeu_ps(c + 3 * static_cast<size_t>(ldc), c30);
    _mm512_storeu_ps(c + 3 * static_cast<size_t>(ldc) + 16, c31);
    _mm512_storeu_ps(c + 4 * static_cast<size_t>(ldc), c40);
    _mm512_storeu_ps(c + 4 * static_cast<size_t>(ldc) + 16, c41);
    _mm512_storeu_ps(c + 5 * static_cast<size_t>(ldc), c50);
    _mm512_storeu_ps(c + 5 * static_cast<size_t>(ldc) + 16, c51);
    _mm512_storeu_ps(c + 6 * static_cast<size_t>(ldc), c60);
    _mm512_storeu_ps(c + 6 * static_cast<size_t>(ldc) + 16, c61);
    _mm512_storeu_ps(c + 7 * static_cast<size_t>(ldc), c70);
    _mm512_storeu_ps(c + 7 * static_cast<size_t>(ldc) + 16, c71);
}

// ------------------------------------- fused LSTM gates (16 lanes)

/**
 * Vectorized exp — the same Cephes-style range reduction + degree-5
 * polynomial as the AVX2 variant, widened to 16 lanes (~1e-7 relative
 * on the gate-activation range). AVX512F only: floor via roundscale.
 */
inline __m512
exp512(__m512 x)
{
    x = _mm512_min_ps(x, _mm512_set1_ps(88.3762626647949f));
    x = _mm512_max_ps(x, _mm512_set1_ps(-88.3762626647949f));
    __m512 fx = _mm512_fmadd_ps(x, _mm512_set1_ps(1.44269504088896341f),
                                _mm512_set1_ps(0.5f));
    fx = _mm512_roundscale_ps(fx,
                              _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC);
    x = _mm512_fnmadd_ps(fx, _mm512_set1_ps(0.693359375f), x);
    x = _mm512_fnmadd_ps(fx, _mm512_set1_ps(-2.12194440e-4f), x);
    const __m512 x2 = _mm512_mul_ps(x, x);
    __m512 y = _mm512_set1_ps(1.9875691500e-4f);
    y = _mm512_fmadd_ps(y, x, _mm512_set1_ps(1.3981999507e-3f));
    y = _mm512_fmadd_ps(y, x, _mm512_set1_ps(8.3334519073e-3f));
    y = _mm512_fmadd_ps(y, x, _mm512_set1_ps(4.1665795894e-2f));
    y = _mm512_fmadd_ps(y, x, _mm512_set1_ps(1.6666665459e-1f));
    y = _mm512_fmadd_ps(y, x, _mm512_set1_ps(5.0000001201e-1f));
    y = _mm512_fmadd_ps(y, x2, x);
    y = _mm512_add_ps(y, _mm512_set1_ps(1.0f));
    __m512i pow2 = _mm512_cvttps_epi32(fx);
    pow2 = _mm512_add_epi32(pow2, _mm512_set1_epi32(0x7f));
    pow2 = _mm512_slli_epi32(pow2, 23);
    return _mm512_mul_ps(y, _mm512_castsi512_ps(pow2));
}

inline __m512
sigmoid512(__m512 x)
{
    const __m512 one = _mm512_set1_ps(1.0f);
    const __m512 e = exp512(_mm512_sub_ps(_mm512_setzero_ps(), x));
    return _mm512_div_ps(one, _mm512_add_ps(one, e));
}

inline __m512
tanh512(__m512 x)
{
    // tanh(x) = 2 sigmoid(2x) - 1.
    const __m512 two = _mm512_set1_ps(2.0f);
    const __m512 s = sigmoid512(_mm512_mul_ps(two, x));
    return _mm512_fmsub_ps(two, s, _mm512_set1_ps(1.0f));
}

void
avx512_lstm_gate(int batch, int hidden, float *z, const float *cprev,
                 float *c, float *h, int h_stride)
{
    const int h4 = 4 * hidden;
    const int vec_end = hidden - hidden % 16;
    for (int n = 0; n < batch; ++n) {
        float *zrow = z + static_cast<size_t>(n) * h4;
        const float *cp = cprev + static_cast<size_t>(n) * hidden;
        float *cn = c + static_cast<size_t>(n) * hidden;
        float *hn = h + static_cast<size_t>(n) * h_stride;
        int j = 0;
        for (; j < vec_end; j += 16) {
            const __m512 zi = sigmoid512(_mm512_loadu_ps(zrow + j));
            const __m512 zf =
                sigmoid512(_mm512_loadu_ps(zrow + hidden + j));
            const __m512 zg =
                tanh512(_mm512_loadu_ps(zrow + 2 * hidden + j));
            const __m512 zo =
                sigmoid512(_mm512_loadu_ps(zrow + 3 * hidden + j));
            _mm512_storeu_ps(zrow + j, zi);
            _mm512_storeu_ps(zrow + hidden + j, zf);
            _mm512_storeu_ps(zrow + 2 * hidden + j, zg);
            _mm512_storeu_ps(zrow + 3 * hidden + j, zo);
            const __m512 cv = _mm512_fmadd_ps(
                zf, _mm512_loadu_ps(cp + j), _mm512_mul_ps(zi, zg));
            _mm512_storeu_ps(cn + j, cv);
            _mm512_storeu_ps(hn + j, _mm512_mul_ps(zo, tanh512(cv)));
        }
        for (; j < hidden; ++j) {
            const float zi = 1.0f / (1.0f + __builtin_expf(-zrow[j]));
            const float zf =
                1.0f / (1.0f + __builtin_expf(-zrow[hidden + j]));
            const float zg = __builtin_tanhf(zrow[2 * hidden + j]);
            const float zo =
                1.0f / (1.0f + __builtin_expf(-zrow[3 * hidden + j]));
            zrow[j] = zi;
            zrow[hidden + j] = zf;
            zrow[2 * hidden + j] = zg;
            zrow[3 * hidden + j] = zo;
            const float cv = zf * cp[j] + zi * zg;
            cn[j] = cv;
            hn[j] = zo * __builtin_tanhf(cv);
        }
    }
}

void
avx512_lstm_gate_backward(int batch, int hidden, const float *z,
                          const float *cprev, const float *c,
                          const float *dh, const float *dc, float *dz,
                          float *dc_prev)
{
    const int h4 = 4 * hidden;
    const int vec_end = hidden - hidden % 16;
    const __m512 one = _mm512_set1_ps(1.0f);
    for (int n = 0; n < batch; ++n) {
        const float *zrow = z + static_cast<size_t>(n) * h4;
        const float *cp = cprev + static_cast<size_t>(n) * hidden;
        const float *cn = c + static_cast<size_t>(n) * hidden;
        const float *dhn = dh + static_cast<size_t>(n) * hidden;
        const float *dcn = dc + static_cast<size_t>(n) * hidden;
        float *dzrow = dz + static_cast<size_t>(n) * h4;
        float *dcp = dc_prev + static_cast<size_t>(n) * hidden;
        int j = 0;
        for (; j < vec_end; j += 16) {
            const __m512 i_g = _mm512_loadu_ps(zrow + j);
            const __m512 f_g = _mm512_loadu_ps(zrow + hidden + j);
            const __m512 g_g = _mm512_loadu_ps(zrow + 2 * hidden + j);
            const __m512 o_g = _mm512_loadu_ps(zrow + 3 * hidden + j);
            const __m512 tc = tanh512(_mm512_loadu_ps(cn + j));
            const __m512 dht = _mm512_loadu_ps(dhn + j);

            const __m512 dtc = _mm512_sub_ps(one, _mm512_mul_ps(tc, tc));
            const __m512 dct = _mm512_add_ps(
                _mm512_mul_ps(_mm512_mul_ps(dht, o_g), dtc),
                _mm512_loadu_ps(dcn + j));
            const __m512 d_o = _mm512_mul_ps(dht, tc);
            const __m512 d_i = _mm512_mul_ps(dct, g_g);
            const __m512 d_g = _mm512_mul_ps(dct, i_g);
            const __m512 d_f = _mm512_mul_ps(dct, _mm512_loadu_ps(cp + j));
            _mm512_storeu_ps(dcp + j, _mm512_mul_ps(dct, f_g));

            _mm512_storeu_ps(
                dzrow + j,
                _mm512_mul_ps(_mm512_mul_ps(d_i, i_g),
                              _mm512_sub_ps(one, i_g)));
            _mm512_storeu_ps(
                dzrow + hidden + j,
                _mm512_mul_ps(_mm512_mul_ps(d_f, f_g),
                              _mm512_sub_ps(one, f_g)));
            _mm512_storeu_ps(
                dzrow + 2 * hidden + j,
                _mm512_mul_ps(d_g,
                              _mm512_sub_ps(one, _mm512_mul_ps(g_g, g_g))));
            _mm512_storeu_ps(
                dzrow + 3 * hidden + j,
                _mm512_mul_ps(_mm512_mul_ps(d_o, o_g),
                              _mm512_sub_ps(one, o_g)));
        }
        for (; j < hidden; ++j) {
            const float i_g = zrow[j];
            const float f_g = zrow[hidden + j];
            const float g_g = zrow[2 * hidden + j];
            const float o_g = zrow[3 * hidden + j];
            const float tc = __builtin_tanhf(cn[j]);
            const float dht = dhn[j];

            const float dct = dht * o_g * (1.0f - tc * tc) + dcn[j];
            const float d_o = dht * tc;
            const float d_i = dct * g_g;
            const float d_g = dct * i_g;
            const float d_f = dct * cp[j];
            dcp[j] = dct * f_g;

            dzrow[j] = d_i * i_g * (1.0f - i_g);
            dzrow[hidden + j] = d_f * f_g * (1.0f - f_g);
            dzrow[2 * hidden + j] = d_g * (1.0f - g_g * g_g);
            dzrow[3 * hidden + j] = d_o * o_g * (1.0f - o_g);
        }
    }
}

} // namespace

const KernelTable *
avx512_kernel_table()
{
    static const KernelTable t = [] {
        // Inherit the AVX2 entries (null table only if this binary
        // somehow built the 512-bit TU without the 256-bit one; the
        // per-member scalar fallback covers that).
        const KernelTable *base = avx2_kernel_table();
        KernelTable k = base != nullptr ? *base : KernelTable{};
        k.gemm_micro = avx512_micro_8x32;
        k.gemm_mr = 8;
        k.gemm_nr = 32;
        k.gemm_mc = 160;   // A block 160 x 256 ~ 160 KB, L2-resident.
        k.gemm_kc = 256;   // B panel 256 x 32 = 32 KB, L1-resident.
        k.gemm_nc = 2048;  // B block 256 x 2048 = 2 MB, LLC-resident.
        k.lstm_gate_forward = avx512_lstm_gate;
        k.lstm_gate_infer = avx512_lstm_gate;
        k.lstm_gate_backward = avx512_lstm_gate_backward;
        k.parity_tier = KernelParity{
            .gemm = ParityTier::Tolerance,
            .elementwise = ParityTier::Exact,
            .codec = ParityTier::Exact,
            .transcendental = ParityTier::Tolerance,
        };
        return k;
    }();
    return &t;
}

} // namespace autofl::kernels

#else // !(__AVX512F__ && __FMA__)

namespace autofl::kernels {

const KernelTable *
avx512_kernel_table()
{
    return nullptr;
}

} // namespace autofl::kernels

#endif
