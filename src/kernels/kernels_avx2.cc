/**
 * @file
 * AVX2 + FMA kernel variant. This translation unit is the only one
 * compiled with -mavx2 -mfma (see CMakeLists.txt); everything else in
 * the library stays at the baseline ISA, and the dispatcher only
 * selects this table after a cpuid check, so the binary runs on
 * pre-AVX2 x86-64 too.
 *
 * Reduction-order contract (see README.md):
 *  - GEMM variants reduce over k in ascending order per output element,
 *    one FMA per term, accumulators in registers. Deterministic; agrees
 *    with scalar within FMA-rounding (<< 1e-4 relative). The packed
 *    6x16 microkernel shares that order — the direct and packed paths
 *    are the same parity tier, not bit-identical to each other.
 *  - gemm_nt reduces in 8-lane partial sums (lane l owns k = l mod 8),
 *    combined low-to-high, then the scalar k-tail — fixed order.
 *  - Elementwise kernels use mul/add (never FMA) in the scalar's exact
 *    operation sequence, so they are bit-identical to the scalar table.
 */
#include "kernels/kernel_table.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace autofl::kernels {

namespace {

// ------------------------------------------------------------- GEMM

/** 4 x 16 register tile: rows i..i+3, columns j..j+15, full k sweep. */
inline void
micro_4x16(int k, const float *a, int lda, const float *b, int ldb,
           float *c, int ldc, bool accumulate)
{
    __m256 c00, c01, c10, c11, c20, c21, c30, c31;
    if (accumulate) {
        c00 = _mm256_loadu_ps(c + 0 * ldc);
        c01 = _mm256_loadu_ps(c + 0 * ldc + 8);
        c10 = _mm256_loadu_ps(c + 1 * ldc);
        c11 = _mm256_loadu_ps(c + 1 * ldc + 8);
        c20 = _mm256_loadu_ps(c + 2 * ldc);
        c21 = _mm256_loadu_ps(c + 2 * ldc + 8);
        c30 = _mm256_loadu_ps(c + 3 * ldc);
        c31 = _mm256_loadu_ps(c + 3 * ldc + 8);
    } else {
        c00 = c01 = c10 = c11 = c20 = c21 = c30 = c31 =
            _mm256_setzero_ps();
    }
    for (int kk = 0; kk < k; ++kk) {
        const __m256 b0 = _mm256_loadu_ps(b + static_cast<size_t>(kk) * ldb);
        const __m256 b1 =
            _mm256_loadu_ps(b + static_cast<size_t>(kk) * ldb + 8);
        __m256 av = _mm256_broadcast_ss(a + 0 * lda + kk);
        c00 = _mm256_fmadd_ps(av, b0, c00);
        c01 = _mm256_fmadd_ps(av, b1, c01);
        av = _mm256_broadcast_ss(a + 1 * lda + kk);
        c10 = _mm256_fmadd_ps(av, b0, c10);
        c11 = _mm256_fmadd_ps(av, b1, c11);
        av = _mm256_broadcast_ss(a + 2 * lda + kk);
        c20 = _mm256_fmadd_ps(av, b0, c20);
        c21 = _mm256_fmadd_ps(av, b1, c21);
        av = _mm256_broadcast_ss(a + 3 * lda + kk);
        c30 = _mm256_fmadd_ps(av, b0, c30);
        c31 = _mm256_fmadd_ps(av, b1, c31);
    }
    _mm256_storeu_ps(c + 0 * ldc, c00);
    _mm256_storeu_ps(c + 0 * ldc + 8, c01);
    _mm256_storeu_ps(c + 1 * ldc, c10);
    _mm256_storeu_ps(c + 1 * ldc + 8, c11);
    _mm256_storeu_ps(c + 2 * ldc, c20);
    _mm256_storeu_ps(c + 2 * ldc + 8, c21);
    _mm256_storeu_ps(c + 3 * ldc, c30);
    _mm256_storeu_ps(c + 3 * ldc + 8, c31);
}

/** 1 x 8 tile for row and column tails. */
inline void
micro_1x8(int k, const float *a, int a_stride, const float *b, int ldb,
          float *c, bool accumulate)
{
    __m256 acc = accumulate ? _mm256_loadu_ps(c) : _mm256_setzero_ps();
    for (int kk = 0; kk < k; ++kk) {
        const __m256 bv =
            _mm256_loadu_ps(b + static_cast<size_t>(kk) * ldb);
        const __m256 av =
            _mm256_broadcast_ss(a + static_cast<size_t>(kk) * a_stride);
        acc = _mm256_fmadd_ps(av, bv, acc);
    }
    _mm256_storeu_ps(c, acc);
}

/** Scalar column tail (j columns < 8 wide), register accumulator. */
inline void
tail_cols(int m, int j0, int n, int k, const float *a, int lda,
          int a_kstride, const float *b, int ldb, float *c, int ldc,
          bool accumulate)
{
    for (int i = 0; i < m; ++i) {
        for (int j = j0; j < n; ++j) {
            float acc = accumulate ? c[static_cast<size_t>(i) * ldc + j]
                                   : 0.0f;
            for (int kk = 0; kk < k; ++kk)
                acc += a[static_cast<size_t>(i) * lda +
                         static_cast<size_t>(kk) * a_kstride] *
                       b[static_cast<size_t>(kk) * ldb + j];
            c[static_cast<size_t>(i) * ldc + j] = acc;
        }
    }
}

void
avx2_gemm(int m, int n, int k, const float *a, int lda, const float *b,
          int ldb, float *c, int ldc, bool accumulate)
{
    int j = 0;
    for (; j + 16 <= n; j += 16) {
        int i = 0;
        for (; i + 4 <= m; i += 4)
            micro_4x16(k, a + static_cast<size_t>(i) * lda, lda, b + j, ldb,
                       c + static_cast<size_t>(i) * ldc + j, ldc,
                       accumulate);
        for (; i < m; ++i) {
            micro_1x8(k, a + static_cast<size_t>(i) * lda, 1, b + j, ldb,
                      c + static_cast<size_t>(i) * ldc + j, accumulate);
            micro_1x8(k, a + static_cast<size_t>(i) * lda, 1, b + j + 8,
                      ldb, c + static_cast<size_t>(i) * ldc + j + 8,
                      accumulate);
        }
    }
    for (; j + 8 <= n; j += 8) {
        for (int i = 0; i < m; ++i)
            micro_1x8(k, a + static_cast<size_t>(i) * lda, 1, b + j, ldb,
                      c + static_cast<size_t>(i) * ldc + j, accumulate);
    }
    if (j < n)
        tail_cols(m, j, n, k, a, lda, 1, b, ldb, c, ldc, accumulate);
}

/**
 * Packed-panel 6 x 16 microkernel: 12 ymm accumulators, one k step
 * loads 2 B vectors and broadcasts 6 A values from contiguous panels
 * (apanel: kc groups of 6 row values; bpanel: kc groups of 16 column
 * values — see the driver in kernels.cc).
 */
void
avx2_micro_6x16(int kc, const float *ap, const float *bp, float *c, int ldc,
                bool accumulate)
{
    __m256 c00, c01, c10, c11, c20, c21, c30, c31, c40, c41, c50, c51;
    if (accumulate) {
        c00 = _mm256_loadu_ps(c + 0 * static_cast<size_t>(ldc));
        c01 = _mm256_loadu_ps(c + 0 * static_cast<size_t>(ldc) + 8);
        c10 = _mm256_loadu_ps(c + 1 * static_cast<size_t>(ldc));
        c11 = _mm256_loadu_ps(c + 1 * static_cast<size_t>(ldc) + 8);
        c20 = _mm256_loadu_ps(c + 2 * static_cast<size_t>(ldc));
        c21 = _mm256_loadu_ps(c + 2 * static_cast<size_t>(ldc) + 8);
        c30 = _mm256_loadu_ps(c + 3 * static_cast<size_t>(ldc));
        c31 = _mm256_loadu_ps(c + 3 * static_cast<size_t>(ldc) + 8);
        c40 = _mm256_loadu_ps(c + 4 * static_cast<size_t>(ldc));
        c41 = _mm256_loadu_ps(c + 4 * static_cast<size_t>(ldc) + 8);
        c50 = _mm256_loadu_ps(c + 5 * static_cast<size_t>(ldc));
        c51 = _mm256_loadu_ps(c + 5 * static_cast<size_t>(ldc) + 8);
    } else {
        c00 = c01 = c10 = c11 = c20 = c21 = c30 = c31 = c40 = c41 = c50 =
            c51 = _mm256_setzero_ps();
    }
    for (int kk = 0; kk < kc; ++kk) {
        const __m256 b0 = _mm256_loadu_ps(bp);
        const __m256 b1 = _mm256_loadu_ps(bp + 8);
        bp += 16;
        __m256 av = _mm256_broadcast_ss(ap + 0);
        c00 = _mm256_fmadd_ps(av, b0, c00);
        c01 = _mm256_fmadd_ps(av, b1, c01);
        av = _mm256_broadcast_ss(ap + 1);
        c10 = _mm256_fmadd_ps(av, b0, c10);
        c11 = _mm256_fmadd_ps(av, b1, c11);
        av = _mm256_broadcast_ss(ap + 2);
        c20 = _mm256_fmadd_ps(av, b0, c20);
        c21 = _mm256_fmadd_ps(av, b1, c21);
        av = _mm256_broadcast_ss(ap + 3);
        c30 = _mm256_fmadd_ps(av, b0, c30);
        c31 = _mm256_fmadd_ps(av, b1, c31);
        av = _mm256_broadcast_ss(ap + 4);
        c40 = _mm256_fmadd_ps(av, b0, c40);
        c41 = _mm256_fmadd_ps(av, b1, c41);
        av = _mm256_broadcast_ss(ap + 5);
        c50 = _mm256_fmadd_ps(av, b0, c50);
        c51 = _mm256_fmadd_ps(av, b1, c51);
        ap += 6;
    }
    _mm256_storeu_ps(c + 0 * static_cast<size_t>(ldc), c00);
    _mm256_storeu_ps(c + 0 * static_cast<size_t>(ldc) + 8, c01);
    _mm256_storeu_ps(c + 1 * static_cast<size_t>(ldc), c10);
    _mm256_storeu_ps(c + 1 * static_cast<size_t>(ldc) + 8, c11);
    _mm256_storeu_ps(c + 2 * static_cast<size_t>(ldc), c20);
    _mm256_storeu_ps(c + 2 * static_cast<size_t>(ldc) + 8, c21);
    _mm256_storeu_ps(c + 3 * static_cast<size_t>(ldc), c30);
    _mm256_storeu_ps(c + 3 * static_cast<size_t>(ldc) + 8, c31);
    _mm256_storeu_ps(c + 4 * static_cast<size_t>(ldc), c40);
    _mm256_storeu_ps(c + 4 * static_cast<size_t>(ldc) + 8, c41);
    _mm256_storeu_ps(c + 5 * static_cast<size_t>(ldc), c50);
    _mm256_storeu_ps(c + 5 * static_cast<size_t>(ldc) + 8, c51);
}

/** gemm_tn: A stored {k, m}; element (i, kk) lives at a[kk * lda + i]. */
inline void
micro_tn_4x16(int k, const float *a, int lda, const float *b, int ldb,
              float *c, int ldc, bool accumulate)
{
    __m256 c00, c01, c10, c11, c20, c21, c30, c31;
    if (accumulate) {
        c00 = _mm256_loadu_ps(c + 0 * ldc);
        c01 = _mm256_loadu_ps(c + 0 * ldc + 8);
        c10 = _mm256_loadu_ps(c + 1 * ldc);
        c11 = _mm256_loadu_ps(c + 1 * ldc + 8);
        c20 = _mm256_loadu_ps(c + 2 * ldc);
        c21 = _mm256_loadu_ps(c + 2 * ldc + 8);
        c30 = _mm256_loadu_ps(c + 3 * ldc);
        c31 = _mm256_loadu_ps(c + 3 * ldc + 8);
    } else {
        c00 = c01 = c10 = c11 = c20 = c21 = c30 = c31 =
            _mm256_setzero_ps();
    }
    for (int kk = 0; kk < k; ++kk) {
        const float *arow = a + static_cast<size_t>(kk) * lda;
        const __m256 b0 = _mm256_loadu_ps(b + static_cast<size_t>(kk) * ldb);
        const __m256 b1 =
            _mm256_loadu_ps(b + static_cast<size_t>(kk) * ldb + 8);
        __m256 av = _mm256_broadcast_ss(arow + 0);
        c00 = _mm256_fmadd_ps(av, b0, c00);
        c01 = _mm256_fmadd_ps(av, b1, c01);
        av = _mm256_broadcast_ss(arow + 1);
        c10 = _mm256_fmadd_ps(av, b0, c10);
        c11 = _mm256_fmadd_ps(av, b1, c11);
        av = _mm256_broadcast_ss(arow + 2);
        c20 = _mm256_fmadd_ps(av, b0, c20);
        c21 = _mm256_fmadd_ps(av, b1, c21);
        av = _mm256_broadcast_ss(arow + 3);
        c30 = _mm256_fmadd_ps(av, b0, c30);
        c31 = _mm256_fmadd_ps(av, b1, c31);
    }
    _mm256_storeu_ps(c + 0 * ldc, c00);
    _mm256_storeu_ps(c + 0 * ldc + 8, c01);
    _mm256_storeu_ps(c + 1 * ldc, c10);
    _mm256_storeu_ps(c + 1 * ldc + 8, c11);
    _mm256_storeu_ps(c + 2 * ldc, c20);
    _mm256_storeu_ps(c + 2 * ldc + 8, c21);
    _mm256_storeu_ps(c + 3 * ldc, c30);
    _mm256_storeu_ps(c + 3 * ldc + 8, c31);
}

void
avx2_gemm_tn(int m, int n, int k, const float *a, int lda, const float *b,
             int ldb, float *c, int ldc, bool accumulate)
{
    int j = 0;
    for (; j + 16 <= n; j += 16) {
        int i = 0;
        for (; i + 4 <= m; i += 4)
            micro_tn_4x16(k, a + i, lda, b + j, ldb,
                          c + static_cast<size_t>(i) * ldc + j, ldc,
                          accumulate);
        for (; i < m; ++i) {
            micro_1x8(k, a + i, lda, b + j, ldb,
                      c + static_cast<size_t>(i) * ldc + j, accumulate);
            micro_1x8(k, a + i, lda, b + j + 8, ldb,
                      c + static_cast<size_t>(i) * ldc + j + 8, accumulate);
        }
    }
    for (; j + 8 <= n; j += 8) {
        for (int i = 0; i < m; ++i)
            micro_1x8(k, a + i, lda, b + j, ldb,
                      c + static_cast<size_t>(i) * ldc + j, accumulate);
    }
    if (j < n)
        tail_cols(m, j, n, k, a, 1, lda, b, ldb, c, ldc, accumulate);
}

/** Horizontal sum, low lane to high lane. */
inline float
hsum(__m256 v)
{
    const __m128 lo = _mm256_castps256_ps128(v);
    const __m128 hi = _mm256_extractf128_ps(v, 1);
    __m128 s = _mm_add_ps(lo, hi);
    s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
    return _mm_cvtss_f32(s);
}

void
avx2_gemm_nt(int m, int n, int k, const float *a, int lda, const float *b,
             int ldb, float *c, int ldc, bool accumulate)
{
    const int k8 = k & ~7;
    for (int i = 0; i < m; ++i) {
        const float *arow = a + static_cast<size_t>(i) * lda;
        float *crow = c + static_cast<size_t>(i) * ldc;
        int j = 0;
        for (; j + 4 <= n; j += 4) {
            const float *b0 = b + static_cast<size_t>(j) * ldb;
            const float *b1 = b + static_cast<size_t>(j + 1) * ldb;
            const float *b2 = b + static_cast<size_t>(j + 2) * ldb;
            const float *b3 = b + static_cast<size_t>(j + 3) * ldb;
            __m256 s0 = _mm256_setzero_ps(), s1 = _mm256_setzero_ps();
            __m256 s2 = _mm256_setzero_ps(), s3 = _mm256_setzero_ps();
            for (int kk = 0; kk < k8; kk += 8) {
                const __m256 av = _mm256_loadu_ps(arow + kk);
                s0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b0 + kk), s0);
                s1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b1 + kk), s1);
                s2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b2 + kk), s2);
                s3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b3 + kk), s3);
            }
            float d0 = hsum(s0), d1 = hsum(s1), d2 = hsum(s2),
                  d3 = hsum(s3);
            for (int kk = k8; kk < k; ++kk) {
                const float av = arow[kk];
                d0 += av * b0[kk];
                d1 += av * b1[kk];
                d2 += av * b2[kk];
                d3 += av * b3[kk];
            }
            if (accumulate) {
                crow[j] += d0;
                crow[j + 1] += d1;
                crow[j + 2] += d2;
                crow[j + 3] += d3;
            } else {
                crow[j] = d0;
                crow[j + 1] = d1;
                crow[j + 2] = d2;
                crow[j + 3] = d3;
            }
        }
        for (; j < n; ++j) {
            const float *brow = b + static_cast<size_t>(j) * ldb;
            __m256 s = _mm256_setzero_ps();
            for (int kk = 0; kk < k8; kk += 8)
                s = _mm256_fmadd_ps(_mm256_loadu_ps(arow + kk),
                                    _mm256_loadu_ps(brow + kk), s);
            float d = hsum(s);
            for (int kk = k8; kk < k; ++kk)
                d += arow[kk] * brow[kk];
            crow[j] = accumulate ? crow[j] + d : d;
        }
    }
}

// --------------------------------------------- elementwise (no FMA)

void
avx2_axpy(size_t n, float alpha, const float *x, float *y)
{
    const __m256 va = _mm256_set1_ps(alpha);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 prod = _mm256_mul_ps(va, _mm256_loadu_ps(x + i));
        _mm256_storeu_ps(y + i,
                         _mm256_add_ps(_mm256_loadu_ps(y + i), prod));
    }
    for (; i < n; ++i)
        y[i] += alpha * x[i];
}

void
avx2_scale(size_t n, float alpha, float *y)
{
    const __m256 va = _mm256_set1_ps(alpha);
    size_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(y + i,
                         _mm256_mul_ps(_mm256_loadu_ps(y + i), va));
    for (; i < n; ++i)
        y[i] *= alpha;
}

void
avx2_vadd(size_t n, const float *x, float *y)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i),
                                              _mm256_loadu_ps(x + i)));
    for (; i < n; ++i)
        y[i] += x[i];
}

void
avx2_vsub(size_t n, const float *x, float *y)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(y + i, _mm256_sub_ps(_mm256_loadu_ps(y + i),
                                              _mm256_loadu_ps(x + i)));
    for (; i < n; ++i)
        y[i] -= x[i];
}

void
avx2_add_bias_rows(int rows, int cols, const float *bias, float *y)
{
    for (int r = 0; r < rows; ++r)
        avx2_vadd(static_cast<size_t>(cols), bias,
                  y + static_cast<size_t>(r) * cols);
}

void
avx2_accumulate_rows(int rows, int cols, const float *src, float *dst)
{
    for (int r = 0; r < rows; ++r)
        avx2_vadd(static_cast<size_t>(cols),
                  src + static_cast<size_t>(r) * cols, dst);
}

void
avx2_relu_forward(size_t n, float *y, uint8_t *mask)
{
    const __m256 zero = _mm256_setzero_ps();
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 v = _mm256_loadu_ps(y + i);
        const __m256 gt = _mm256_cmp_ps(v, zero, _CMP_GT_OQ);
        _mm256_storeu_ps(y + i, _mm256_and_ps(v, gt));
        const int bits = _mm256_movemask_ps(gt);
        for (int l = 0; l < 8; ++l)
            mask[i + static_cast<size_t>(l)] =
                static_cast<uint8_t>((bits >> l) & 1);
    }
    for (; i < n; ++i) {
        if (y[i] > 0.0f) {
            mask[i] = 1;
        } else {
            mask[i] = 0;
            y[i] = 0.0f;
        }
    }
}

void
avx2_relu_backward(size_t n, const uint8_t *mask, float *dy)
{
    for (size_t i = 0; i < n; ++i)
        if (!mask[i])
            dy[i] = 0.0f;
}

void
avx2_sgd_step(size_t n, float *w, const float *g, float *v, float lr,
              float wd, float momentum)
{
    const __m256 vwd = _mm256_set1_ps(wd);
    const __m256 vlr = _mm256_set1_ps(lr);
    const bool use_momentum = v != nullptr && momentum != 0.0f;
    const __m256 vmom = _mm256_set1_ps(momentum);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 wv = _mm256_loadu_ps(w + i);
        __m256 grad = _mm256_add_ps(_mm256_loadu_ps(g + i),
                                    _mm256_mul_ps(vwd, wv));
        if (use_momentum) {
            const __m256 vel = _mm256_add_ps(
                _mm256_mul_ps(vmom, _mm256_loadu_ps(v + i)), grad);
            _mm256_storeu_ps(v + i, vel);
            grad = vel;
        }
        _mm256_storeu_ps(w + i,
                         _mm256_sub_ps(wv, _mm256_mul_ps(vlr, grad)));
    }
    for (; i < n; ++i) {
        float grad = g[i] + wd * w[i];
        if (use_momentum) {
            v[i] = momentum * v[i] + grad;
            grad = v[i];
        }
        w[i] -= lr * grad;
    }
}

void
avx2_sgd_step_prox(size_t n, float *w, const float *g, float *v,
                   const float *anchor, float lr, float wd, float momentum,
                   float mu)
{
    const __m256 vwd = _mm256_set1_ps(wd);
    const __m256 vlr = _mm256_set1_ps(lr);
    const __m256 vmu = _mm256_set1_ps(mu);
    const bool use_momentum = v != nullptr && momentum != 0.0f;
    const __m256 vmom = _mm256_set1_ps(momentum);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 wv = _mm256_loadu_ps(w + i);
        const __m256 base = _mm256_add_ps(_mm256_loadu_ps(g + i),
                                          _mm256_mul_ps(vwd, wv));
        const __m256 prox = _mm256_mul_ps(
            vmu, _mm256_sub_ps(wv, _mm256_loadu_ps(anchor + i)));
        __m256 grad = _mm256_add_ps(base, prox);
        if (use_momentum) {
            const __m256 vel = _mm256_add_ps(
                _mm256_mul_ps(vmom, _mm256_loadu_ps(v + i)), grad);
            _mm256_storeu_ps(v + i, vel);
            grad = vel;
        }
        _mm256_storeu_ps(w + i,
                         _mm256_sub_ps(wv, _mm256_mul_ps(vlr, grad)));
    }
    for (; i < n; ++i) {
        float grad = g[i] + wd * w[i] + mu * (w[i] - anchor[i]);
        if (use_momentum) {
            v[i] = momentum * v[i] + grad;
            grad = v[i];
        }
        w[i] -= lr * grad;
    }
}

// ------------------------------------------- push-delta codec family
// Bit-identical to the scalar variants: max is exact, every conversion
// is one RNE rounding (cvtps_epi32 / cvtps_ph under the default MXCSR
// mode match scalar nearbyintf / the bit-manipulation fp16 path).

/** Horizontal max, exact (order-free). */
inline float
hmax(__m256 v)
{
    const __m128 lo = _mm256_castps256_ps128(v);
    const __m128 hi = _mm256_extractf128_ps(v, 1);
    __m128 s = _mm_max_ps(lo, hi);
    s = _mm_max_ps(s, _mm_movehl_ps(s, s));
    s = _mm_max_ss(s, _mm_shuffle_ps(s, s, 1));
    return _mm_cvtss_f32(s);
}

float
avx2_absmax(size_t n, const float *x)
{
    const __m256 absmask =
        _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
    __m256 acc = _mm256_setzero_ps();
    size_t i = 0;
    for (; i + 8 <= n; i += 8)
        acc = _mm256_max_ps(acc,
                            _mm256_and_ps(_mm256_loadu_ps(x + i), absmask));
    float m = hmax(acc);
    for (; i < n; ++i)
        m = __builtin_fmaxf(m, __builtin_fabsf(x[i]));
    return m;
}

/** rne(x * inv) clamped to [-127, 127], as 8 int32 lanes. */
inline __m256i
quant_lanes(const float *x, __m256 vinv, __m256i lo, __m256i hi)
{
    const __m256 prod = _mm256_mul_ps(_mm256_loadu_ps(x), vinv);
    __m256i q = _mm256_cvtps_epi32(prod);  // RNE; NaN -> INT_MIN
    q = _mm256_max_epi32(q, lo);           // NaN lands on -127, like
    q = _mm256_min_epi32(q, hi);           // scalar fmax(NaN,-127).
    return q;
}

void
avx2_quantize_i8(size_t n, const float *x, float inv_scale, int8_t *q)
{
    const __m256 vinv = _mm256_set1_ps(inv_scale);
    const __m256i lo = _mm256_set1_epi32(-127);
    const __m256i hi = _mm256_set1_epi32(127);
    size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i a = quant_lanes(x + i, vinv, lo, hi);
        const __m256i b = quant_lanes(x + i + 8, vinv, lo, hi);
        const __m256i c = quant_lanes(x + i + 16, vinv, lo, hi);
        const __m256i d = quant_lanes(x + i + 24, vinv, lo, hi);
        // packs run per 128-bit lane; the final dword permute restores
        // element order. Saturation never engages (clamped to +-127).
        const __m256i ab = _mm256_packs_epi32(a, b);
        const __m256i cd = _mm256_packs_epi32(c, d);
        __m256i abcd = _mm256_packs_epi16(ab, cd);
        abcd = _mm256_permutevar8x32_epi32(
            abcd, _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(q + i), abcd);
    }
    for (; i < n; ++i) {
        float r = __builtin_nearbyintf(x[i] * inv_scale);
        r = __builtin_fminf(__builtin_fmaxf(r, -127.0f), 127.0f);
        q[i] = static_cast<int8_t>(r);
    }
}

void
avx2_dequantize_i8(size_t n, const int8_t *q, float scale, float *y)
{
    const __m256 vs = _mm256_set1_ps(scale);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m128i b = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(q + i));
        const __m256 v = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(b));
        _mm256_storeu_ps(y + i, _mm256_mul_ps(v, vs));
    }
    for (; i < n; ++i)
        y[i] = static_cast<float>(q[i]) * scale;
}

#if defined(__F16C__)

void
avx2_fp16_encode(size_t n, const float *x, uint16_t *h)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m128i packed = _mm256_cvtps_ph(
            _mm256_loadu_ps(x + i), _MM_FROUND_TO_NEAREST_INT);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(h + i), packed);
    }
    if (i < n) {  // Tail via a masked full vector (same instruction).
        float buf[8] = {};
        uint16_t out[8];
        for (size_t t = i; t < n; ++t)
            buf[t - i] = x[t];
        const __m128i packed = _mm256_cvtps_ph(
            _mm256_loadu_ps(buf), _MM_FROUND_TO_NEAREST_INT);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out), packed);
        for (size_t t = i; t < n; ++t)
            h[t] = out[t - i];
    }
}

void
avx2_fp16_decode(size_t n, const uint16_t *h, float *y)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m128i packed = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(h + i));
        _mm256_storeu_ps(y + i, _mm256_cvtph_ps(packed));
    }
    if (i < n) {
        uint16_t buf[8] = {};
        float out[8];
        for (size_t t = i; t < n; ++t)
            buf[t - i] = h[t];
        const __m128i packed =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(buf));
        _mm256_storeu_ps(out, _mm256_cvtph_ps(packed));
        for (size_t t = i; t < n; ++t)
            y[t] = out[t - i];
    }
}

#endif // __F16C__

// ------------------------------------ f64 accumulation (aggregation)

void
avx2_axpy_f64(size_t n, double alpha, const float *x, double *acc)
{
    const __m256d va = _mm256_set1_pd(alpha);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d xv = _mm256_cvtps_pd(_mm_loadu_ps(x + i));
        _mm256_storeu_pd(acc + i,
                         _mm256_add_pd(_mm256_loadu_pd(acc + i),
                                       _mm256_mul_pd(va, xv)));
    }
    for (; i < n; ++i)
        acc[i] += alpha * x[i];
}

void
avx2_diff_axpy_f64(size_t n, double alpha, const float *w, const float *u,
                   double *acc)
{
    const __m256d va = _mm256_set1_pd(alpha);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d wv = _mm256_cvtps_pd(_mm_loadu_ps(w + i));
        const __m256d uv = _mm256_cvtps_pd(_mm_loadu_ps(u + i));
        const __m256d d = _mm256_sub_pd(wv, uv);
        _mm256_storeu_pd(acc + i,
                         _mm256_add_pd(_mm256_loadu_pd(acc + i),
                                       _mm256_mul_pd(va, d)));
    }
    for (; i < n; ++i)
        acc[i] += alpha * (static_cast<double>(w[i]) - u[i]);
}

void
avx2_cast_f64_to_f32(size_t n, const double *acc, float *out)
{
    size_t i = 0;
    for (; i + 4 <= n; i += 4)
        _mm_storeu_ps(out + i, _mm256_cvtpd_ps(_mm256_loadu_pd(acc + i)));
    for (; i < n; ++i)
        out[i] = static_cast<float>(acc[i]);
}

void
avx2_apply_step_f64(size_t n, float *w, double tau, const double *dir)
{
    const __m256d vt = _mm256_set1_pd(tau);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d wv = _mm256_cvtps_pd(_mm_loadu_ps(w + i));
        const __m256d step = _mm256_mul_pd(vt, _mm256_loadu_pd(dir + i));
        _mm_storeu_ps(w + i, _mm256_cvtpd_ps(_mm256_sub_pd(wv, step)));
    }
    for (; i < n; ++i)
        w[i] = static_cast<float>(w[i] - tau * dir[i]);
}

// ------------------------------------- LSTM inference gate update

/**
 * Vectorized exp (Cephes-style range reduction + degree-5 polynomial,
 * ~1e-7 relative on the gate-activation range). Inference-only: the
 * training gate kernel keeps exact libm transcendentals.
 */
inline __m256
exp256(__m256 x)
{
    x = _mm256_min_ps(x, _mm256_set1_ps(88.3762626647949f));
    x = _mm256_max_ps(x, _mm256_set1_ps(-88.3762626647949f));
    __m256 fx = _mm256_fmadd_ps(x, _mm256_set1_ps(1.44269504088896341f),
                                _mm256_set1_ps(0.5f));
    fx = _mm256_floor_ps(fx);
    x = _mm256_fnmadd_ps(fx, _mm256_set1_ps(0.693359375f), x);
    x = _mm256_fnmadd_ps(fx, _mm256_set1_ps(-2.12194440e-4f), x);
    const __m256 x2 = _mm256_mul_ps(x, x);
    __m256 y = _mm256_set1_ps(1.9875691500e-4f);
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.3981999507e-3f));
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(8.3334519073e-3f));
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(4.1665795894e-2f));
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.6666665459e-1f));
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(5.0000001201e-1f));
    y = _mm256_fmadd_ps(y, x2, x);
    y = _mm256_add_ps(y, _mm256_set1_ps(1.0f));
    __m256i pow2 = _mm256_cvttps_epi32(fx);
    pow2 = _mm256_add_epi32(pow2, _mm256_set1_epi32(0x7f));
    pow2 = _mm256_slli_epi32(pow2, 23);
    return _mm256_mul_ps(y, _mm256_castsi256_ps(pow2));
}

inline __m256
sigmoid256(__m256 x)
{
    const __m256 one = _mm256_set1_ps(1.0f);
    const __m256 e = exp256(_mm256_sub_ps(_mm256_setzero_ps(), x));
    return _mm256_div_ps(one, _mm256_add_ps(one, e));
}

inline __m256
tanh256(__m256 x)
{
    // tanh(x) = 2 sigmoid(2x) - 1.
    const __m256 two = _mm256_set1_ps(2.0f);
    const __m256 s = sigmoid256(_mm256_mul_ps(two, x));
    return _mm256_fmsub_ps(two, s, _mm256_set1_ps(1.0f));
}

void
avx2_lstm_gate_infer(int batch, int hidden, float *z, const float *cprev,
                     float *c, float *h, int h_stride)
{
    const int h4 = 4 * hidden;
    const int vec_end = hidden - hidden % 8;
    for (int n = 0; n < batch; ++n) {
        float *zrow = z + static_cast<size_t>(n) * h4;
        const float *cp = cprev + static_cast<size_t>(n) * hidden;
        float *cn = c + static_cast<size_t>(n) * hidden;
        float *hn = h + static_cast<size_t>(n) * h_stride;
        int j = 0;
        for (; j < vec_end; j += 8) {
            const __m256 zi = sigmoid256(_mm256_loadu_ps(zrow + j));
            const __m256 zf =
                sigmoid256(_mm256_loadu_ps(zrow + hidden + j));
            const __m256 zg =
                tanh256(_mm256_loadu_ps(zrow + 2 * hidden + j));
            const __m256 zo =
                sigmoid256(_mm256_loadu_ps(zrow + 3 * hidden + j));
            const __m256 cv = _mm256_fmadd_ps(
                zf, _mm256_loadu_ps(cp + j), _mm256_mul_ps(zi, zg));
            _mm256_storeu_ps(cn + j, cv);
            _mm256_storeu_ps(hn + j, _mm256_mul_ps(zo, tanh256(cv)));
        }
        for (; j < hidden; ++j) {
            // Scalar tail with the same polynomial-free libm math the
            // scalar variant uses; only full lanes take the fast path.
            const float zi =
                1.0f / (1.0f + __builtin_expf(-zrow[j]));
            const float zf =
                1.0f / (1.0f + __builtin_expf(-zrow[hidden + j]));
            const float zg = __builtin_tanhf(zrow[2 * hidden + j]);
            const float zo =
                1.0f / (1.0f + __builtin_expf(-zrow[3 * hidden + j]));
            const float cv = zf * cp[j] + zi * zg;
            cn[j] = cv;
            hn[j] = zo * __builtin_tanhf(cv);
        }
    }
}

/**
 * Training-path fused gate forward: like the infer kernel, but the
 * activated gates are stored back into z (the backward pass reads the
 * post-activation gate cache).
 */
void
avx2_lstm_gate_forward(int batch, int hidden, float *z, const float *cprev,
                       float *c, float *h, int h_stride)
{
    const int h4 = 4 * hidden;
    const int vec_end = hidden - hidden % 8;
    for (int n = 0; n < batch; ++n) {
        float *zrow = z + static_cast<size_t>(n) * h4;
        const float *cp = cprev + static_cast<size_t>(n) * hidden;
        float *cn = c + static_cast<size_t>(n) * hidden;
        float *hn = h + static_cast<size_t>(n) * h_stride;
        int j = 0;
        for (; j < vec_end; j += 8) {
            const __m256 zi = sigmoid256(_mm256_loadu_ps(zrow + j));
            const __m256 zf =
                sigmoid256(_mm256_loadu_ps(zrow + hidden + j));
            const __m256 zg =
                tanh256(_mm256_loadu_ps(zrow + 2 * hidden + j));
            const __m256 zo =
                sigmoid256(_mm256_loadu_ps(zrow + 3 * hidden + j));
            _mm256_storeu_ps(zrow + j, zi);
            _mm256_storeu_ps(zrow + hidden + j, zf);
            _mm256_storeu_ps(zrow + 2 * hidden + j, zg);
            _mm256_storeu_ps(zrow + 3 * hidden + j, zo);
            const __m256 cv = _mm256_fmadd_ps(
                zf, _mm256_loadu_ps(cp + j), _mm256_mul_ps(zi, zg));
            _mm256_storeu_ps(cn + j, cv);
            _mm256_storeu_ps(hn + j, _mm256_mul_ps(zo, tanh256(cv)));
        }
        for (; j < hidden; ++j) {
            const float zi = 1.0f / (1.0f + __builtin_expf(-zrow[j]));
            const float zf =
                1.0f / (1.0f + __builtin_expf(-zrow[hidden + j]));
            const float zg = __builtin_tanhf(zrow[2 * hidden + j]);
            const float zo =
                1.0f / (1.0f + __builtin_expf(-zrow[3 * hidden + j]));
            zrow[j] = zi;
            zrow[hidden + j] = zf;
            zrow[2 * hidden + j] = zg;
            zrow[3 * hidden + j] = zo;
            const float cv = zf * cp[j] + zi * zg;
            cn[j] = cv;
            hn[j] = zo * __builtin_tanhf(cv);
        }
    }
}

/**
 * Training-path fused gate backward. The only transcendental is
 * tanh(c); full lanes use the polynomial tanh256 (transcendental
 * parity tier, like the forward/infer kernels), the tail the same
 * libm call the scalar variant makes.
 */
void
avx2_lstm_gate_backward(int batch, int hidden, const float *z,
                        const float *cprev, const float *c, const float *dh,
                        const float *dc, float *dz, float *dc_prev)
{
    const int h4 = 4 * hidden;
    const int vec_end = hidden - hidden % 8;
    const __m256 one = _mm256_set1_ps(1.0f);
    for (int n = 0; n < batch; ++n) {
        const float *zrow = z + static_cast<size_t>(n) * h4;
        const float *cp = cprev + static_cast<size_t>(n) * hidden;
        const float *cn = c + static_cast<size_t>(n) * hidden;
        const float *dhn = dh + static_cast<size_t>(n) * hidden;
        const float *dcn = dc + static_cast<size_t>(n) * hidden;
        float *dzrow = dz + static_cast<size_t>(n) * h4;
        float *dcp = dc_prev + static_cast<size_t>(n) * hidden;
        int j = 0;
        for (; j < vec_end; j += 8) {
            const __m256 i_g = _mm256_loadu_ps(zrow + j);
            const __m256 f_g = _mm256_loadu_ps(zrow + hidden + j);
            const __m256 g_g = _mm256_loadu_ps(zrow + 2 * hidden + j);
            const __m256 o_g = _mm256_loadu_ps(zrow + 3 * hidden + j);
            const __m256 tc = tanh256(_mm256_loadu_ps(cn + j));
            const __m256 dht = _mm256_loadu_ps(dhn + j);

            const __m256 dtc = _mm256_sub_ps(one, _mm256_mul_ps(tc, tc));
            const __m256 dct = _mm256_add_ps(
                _mm256_mul_ps(_mm256_mul_ps(dht, o_g), dtc),
                _mm256_loadu_ps(dcn + j));
            const __m256 d_o = _mm256_mul_ps(dht, tc);
            const __m256 d_i = _mm256_mul_ps(dct, g_g);
            const __m256 d_g = _mm256_mul_ps(dct, i_g);
            const __m256 d_f = _mm256_mul_ps(dct, _mm256_loadu_ps(cp + j));
            _mm256_storeu_ps(dcp + j, _mm256_mul_ps(dct, f_g));

            _mm256_storeu_ps(
                dzrow + j,
                _mm256_mul_ps(_mm256_mul_ps(d_i, i_g),
                              _mm256_sub_ps(one, i_g)));
            _mm256_storeu_ps(
                dzrow + hidden + j,
                _mm256_mul_ps(_mm256_mul_ps(d_f, f_g),
                              _mm256_sub_ps(one, f_g)));
            _mm256_storeu_ps(
                dzrow + 2 * hidden + j,
                _mm256_mul_ps(d_g,
                              _mm256_sub_ps(one, _mm256_mul_ps(g_g, g_g))));
            _mm256_storeu_ps(
                dzrow + 3 * hidden + j,
                _mm256_mul_ps(_mm256_mul_ps(d_o, o_g),
                              _mm256_sub_ps(one, o_g)));
        }
        for (; j < hidden; ++j) {
            const float i_g = zrow[j];
            const float f_g = zrow[hidden + j];
            const float g_g = zrow[2 * hidden + j];
            const float o_g = zrow[3 * hidden + j];
            const float tc = __builtin_tanhf(cn[j]);
            const float dht = dhn[j];

            const float dct = dht * o_g * (1.0f - tc * tc) + dcn[j];
            const float d_o = dht * tc;
            const float d_i = dct * g_g;
            const float d_g = dct * i_g;
            const float d_f = dct * cp[j];
            dcp[j] = dct * f_g;

            dzrow[j] = d_i * i_g * (1.0f - i_g);
            dzrow[hidden + j] = d_f * f_g * (1.0f - f_g);
            dzrow[2 * hidden + j] = d_g * (1.0f - g_g * g_g);
            dzrow[3 * hidden + j] = d_o * o_g * (1.0f - o_g);
        }
    }
}

} // namespace

const KernelTable *
avx2_kernel_table()
{
    static const KernelTable t = [] {
        KernelTable k;
        k.gemm = avx2_gemm;
        k.gemm_tn = avx2_gemm_tn;
        k.gemm_nt = avx2_gemm_nt;
        k.gemm_micro = avx2_micro_6x16;
        k.gemm_mr = 6;
        k.gemm_nr = 16;
        k.gemm_mc = 72;    // A block 72 x 256 ~ 72 KB, L2-resident.
        k.gemm_kc = 256;   // B panel 256 x 16 = 16 KB, L1-resident.
        k.gemm_nc = 1024;  // B block 256 x 1024 = 1 MB, LLC-resident.
        k.axpy = avx2_axpy;
        k.scale = avx2_scale;
        k.vadd = avx2_vadd;
        k.vsub = avx2_vsub;
        k.add_bias_rows = avx2_add_bias_rows;
        k.accumulate_rows = avx2_accumulate_rows;
        k.relu_forward = avx2_relu_forward;
        k.relu_backward = avx2_relu_backward;
        k.sgd_step = avx2_sgd_step;
        k.sgd_step_prox = avx2_sgd_step_prox;
        k.absmax = avx2_absmax;
        k.quantize_i8 = avx2_quantize_i8;
        k.dequantize_i8 = avx2_dequantize_i8;
#if defined(__F16C__)
        // F16C is a separate cpuid bit from AVX2; leave the entries
        // null (scalar fallback) on the rare parts without it.
        if (__builtin_cpu_supports("f16c")) {
            k.fp16_encode = avx2_fp16_encode;
            k.fp16_decode = avx2_fp16_decode;
        }
#endif
        k.axpy_f64 = avx2_axpy_f64;
        k.diff_axpy_f64 = avx2_diff_axpy_f64;
        k.cast_f64_to_f32 = avx2_cast_f64_to_f32;
        k.apply_step_f64 = avx2_apply_step_f64;
        // Training numerics are per-arch through the GEMM tier anyway,
        // so the gates share the transcendental Tolerance tier.
        k.lstm_gate_forward = avx2_lstm_gate_forward;
        k.lstm_gate_infer = avx2_lstm_gate_infer;
        k.lstm_gate_backward = avx2_lstm_gate_backward;
        k.parity_tier = KernelParity{
            .gemm = ParityTier::Tolerance,
            .elementwise = ParityTier::Exact,
            .codec = ParityTier::Exact,
            .transcendental = ParityTier::Tolerance,
        };
        return k;
    }();
    return &t;
}

} // namespace autofl::kernels

#else // !(__AVX2__ && __FMA__)

namespace autofl::kernels {

const KernelTable *
avx2_kernel_table()
{
    return nullptr;
}

} // namespace autofl::kernels

#endif
