/**
 * @file
 * Internal dispatch table shared by the kernel variants. Each variant
 * fills one KernelTable with function pointers; kernels.cc picks the
 * table for the currently selected arch per call. Entries left null by
 * a variant fall back to the scalar implementation, so adding a new
 * arch only requires implementing the kernels that actually benefit.
 *
 * Not part of the public API — include "kernels/kernels.h" instead.
 */
#ifndef AUTOFL_KERNELS_KERNEL_TABLE_H
#define AUTOFL_KERNELS_KERNEL_TABLE_H

#include <cstddef>
#include <cstdint>

namespace autofl::kernels {

/** Per-arch kernel entry points (raw row-major float buffers). */
struct KernelTable
{
    // C {m,n} = (or +=) A {m,k} B {k,n}.
    void (*gemm)(int m, int n, int k, const float *a, int lda,
                 const float *b, int ldb, float *c, int ldc,
                 bool accumulate) = nullptr;
    // C {m,n} = (or +=) A^T B for A {k,m}.
    void (*gemm_tn)(int m, int n, int k, const float *a, int lda,
                    const float *b, int ldb, float *c, int ldc,
                    bool accumulate) = nullptr;
    // C {m,n} = (or +=) A B^T for B {n,k}.
    void (*gemm_nt)(int m, int n, int k, const float *a, int lda,
                    const float *b, int ldb, float *c, int ldc,
                    bool accumulate) = nullptr;

    // Elementwise family: bit-identical across variants (no FMA).
    void (*axpy)(size_t n, float alpha, const float *x, float *y) = nullptr;
    void (*scale)(size_t n, float alpha, float *y) = nullptr;
    void (*vadd)(size_t n, const float *x, float *y) = nullptr;
    void (*vsub)(size_t n, const float *x, float *y) = nullptr;
    void (*add_bias_rows)(int rows, int cols, const float *bias,
                          float *y) = nullptr;
    void (*accumulate_rows)(int rows, int cols, const float *src,
                            float *dst) = nullptr;
    void (*relu_forward)(size_t n, float *y, uint8_t *mask) = nullptr;
    void (*relu_backward)(size_t n, const uint8_t *mask,
                          float *dy) = nullptr;
    void (*sgd_step)(size_t n, float *w, const float *g, float *v,
                     float lr, float wd, float momentum) = nullptr;
    void (*sgd_step_prox)(size_t n, float *w, const float *g, float *v,
                          const float *anchor, float lr, float wd,
                          float momentum, float mu) = nullptr;

    // Inference-only fused LSTM gate update. Unlike the training gate
    // kernels (arch-independent by contract), variants may vectorize
    // the transcendentals: scalar is bit-identical to
    // lstm_gate_forward, SIMD agrees within ~1e-6 relative.
    void (*lstm_gate_infer)(int batch, int hidden, float *z,
                            const float *cprev, float *c, float *h,
                            int h_stride) = nullptr;

    // Push-delta codec family (update compression): bit-identical
    // across variants — max is exact, quantize/dequantize and fp16
    // conversions perform one round-to-nearest-even per element.
    float (*absmax)(size_t n, const float *x) = nullptr;
    void (*quantize_i8)(size_t n, const float *x, float inv_scale,
                        int8_t *q) = nullptr;
    void (*dequantize_i8)(size_t n, const int8_t *q, float scale,
                          float *y) = nullptr;
    void (*fp16_encode)(size_t n, const float *x, uint16_t *h) = nullptr;
    void (*fp16_decode)(size_t n, const uint16_t *h, float *y) = nullptr;

    // Double-precision accumulation used by FL aggregation.
    void (*axpy_f64)(size_t n, double alpha, const float *x,
                     double *acc) = nullptr;
    void (*diff_axpy_f64)(size_t n, double alpha, const float *w,
                          const float *u, double *acc) = nullptr;
    void (*cast_f64_to_f32)(size_t n, const double *acc,
                            float *out) = nullptr;
    void (*apply_step_f64)(size_t n, float *w, double tau,
                           const double *dir) = nullptr;
};

/** The portable table; every entry is non-null. */
const KernelTable *scalar_kernel_table();

/**
 * The AVX2/FMA table, or null when this binary was built without AVX2
 * support (defined in kernels_avx2.cc, which is compiled with
 * -mavx2 -mfma on x86-64 only).
 */
const KernelTable *avx2_kernel_table();

} // namespace autofl::kernels

#endif // AUTOFL_KERNELS_KERNEL_TABLE_H
