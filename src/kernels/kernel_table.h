/**
 * @file
 * Internal dispatch table shared by the kernel variants. Each variant
 * fills one KernelTable with function pointers; kernels.cc picks the
 * table for the currently selected arch per call. Entries left null by
 * a variant fall back to the scalar implementation, so adding a new
 * arch only requires implementing the kernels that actually benefit.
 *
 * Not part of the public API — include "kernels/kernels.h" instead.
 */
#ifndef AUTOFL_KERNELS_KERNEL_TABLE_H
#define AUTOFL_KERNELS_KERNEL_TABLE_H

#include <cstddef>
#include <cstdint>

#include "kernels/arch.h"

namespace autofl::kernels {

/** Per-arch kernel entry points (raw row-major float buffers). */
struct KernelTable
{
    // Direct GEMM family: C {m,n} = (or +=) A {m,k} B {k,n}. Streams
    // the operands in place — the small-shape path, and the baseline
    // the packed-panel driver is gated against in the benches.
    void (*gemm)(int m, int n, int k, const float *a, int lda,
                 const float *b, int ldb, float *c, int ldc,
                 bool accumulate) = nullptr;
    // C {m,n} = (or +=) A^T B for A {k,m}.
    void (*gemm_tn)(int m, int n, int k, const float *a, int lda,
                    const float *b, int ldb, float *c, int ldc,
                    bool accumulate) = nullptr;
    // C {m,n} = (or +=) A B^T for B {n,k}.
    void (*gemm_nt)(int m, int n, int k, const float *a, int lda,
                    const float *b, int ldb, float *c, int ldc,
                    bool accumulate) = nullptr;

    // Packed-panel GEMM microkernel (BLIS-style): computes one
    // gemm_mr x gemm_nr register tile from contiguous panels. apanel
    // holds kc groups of gemm_mr row values (one per k step), bpanel
    // kc groups of gemm_nr column values; both are zero-padded to full
    // tile width by the packing routines, so the microkernel never
    // sees a ragged edge (the shared driver stages edge tiles through
    // a scratch tile). Null when the variant has no packed path — the
    // scalar table, whose direct loops are the bit-exactness baseline.
    void (*gemm_micro)(int kc, const float *apanel, const float *bpanel,
                       float *c, int ldc, bool accumulate) = nullptr;
    // Register tile shape and cache-blocking parameters (elements).
    // Invariants the shared driver relies on: gemm_mc % gemm_mr == 0
    // and gemm_nc % gemm_nr == 0 (prepacked-operand offsets assume
    // every non-final block is a whole multiple of the tile).
    int gemm_mr = 0;  ///< Microkernel rows.
    int gemm_nr = 0;  ///< Microkernel columns.
    int gemm_mc = 0;  ///< A block rows per L2-resident pack.
    int gemm_kc = 0;  ///< Shared k depth per pack (B panel fits L1).
    int gemm_nc = 0;  ///< B block columns per outer pack.

    // Elementwise family: bit-identical across variants (no FMA).
    void (*axpy)(size_t n, float alpha, const float *x, float *y) = nullptr;
    void (*scale)(size_t n, float alpha, float *y) = nullptr;
    void (*vadd)(size_t n, const float *x, float *y) = nullptr;
    void (*vsub)(size_t n, const float *x, float *y) = nullptr;
    void (*add_bias_rows)(int rows, int cols, const float *bias,
                          float *y) = nullptr;
    void (*accumulate_rows)(int rows, int cols, const float *src,
                            float *dst) = nullptr;
    void (*relu_forward)(size_t n, float *y, uint8_t *mask) = nullptr;
    void (*relu_backward)(size_t n, const uint8_t *mask,
                          float *dy) = nullptr;
    void (*sgd_step)(size_t n, float *w, const float *g, float *v,
                     float lr, float wd, float momentum) = nullptr;
    void (*sgd_step_prox)(size_t n, float *w, const float *g, float *v,
                          const float *anchor, float lr, float wd,
                          float momentum, float mu) = nullptr;

    // Fused LSTM gate family (transcendental tier). Variants may
    // vectorize sigmoid/tanh with a polynomial exp; the scalar entries
    // keep exact libm transcendentals and are the parity baseline.
    // Training results are already per-arch through the GEMM tier, so
    // the gate kernels share the same Tolerance class; per-variant
    // bitwise determinism (Sync == SemiAsync(S=0)) is unaffected.
    void (*lstm_gate_forward)(int batch, int hidden, float *z,
                              const float *cprev, float *c, float *h,
                              int h_stride) = nullptr;
    void (*lstm_gate_backward)(int batch, int hidden, const float *z,
                               const float *cprev, const float *c,
                               const float *dh, const float *dc, float *dz,
                               float *dc_prev) = nullptr;
    // Inference-only fused gate update (activated z is scratch).
    void (*lstm_gate_infer)(int batch, int hidden, float *z,
                            const float *cprev, float *c, float *h,
                            int h_stride) = nullptr;

    // Push-delta codec family (update compression): bit-identical
    // across variants — max is exact, quantize/dequantize and fp16
    // conversions perform one round-to-nearest-even per element.
    float (*absmax)(size_t n, const float *x) = nullptr;
    void (*quantize_i8)(size_t n, const float *x, float inv_scale,
                        int8_t *q) = nullptr;
    void (*dequantize_i8)(size_t n, const int8_t *q, float scale,
                          float *y) = nullptr;
    void (*fp16_encode)(size_t n, const float *x, uint16_t *h) = nullptr;
    void (*fp16_decode)(size_t n, const uint16_t *h, float *y) = nullptr;

    // Double-precision accumulation used by FL aggregation.
    void (*axpy_f64)(size_t n, double alpha, const float *x,
                     double *acc) = nullptr;
    void (*diff_axpy_f64)(size_t n, double alpha, const float *w,
                          const float *u, double *acc) = nullptr;
    void (*cast_f64_to_f32)(size_t n, const double *acc,
                            float *out) = nullptr;
    void (*apply_step_f64)(size_t n, float *w, double tau,
                           const double *dir) = nullptr;

    // What this variant promises relative to the scalar baseline, per
    // kernel family. tests/test_kernels.cc reads these to decide
    // bit-exact vs 1e-4 assertions — a new table declares its contract
    // here instead of the tests hard-coding per-arch knowledge.
    KernelParity parity_tier{};
};

/** The portable table; every entry is non-null. */
const KernelTable *scalar_kernel_table();

/**
 * The AVX2/FMA table, or null when this binary was built without AVX2
 * support (defined in kernels_avx2.cc, which is compiled with
 * -mavx2 -mfma on x86-64 only).
 */
const KernelTable *avx2_kernel_table();

/**
 * The AVX-512F/FMA table, or null when built without AVX-512 support.
 * Inherits the AVX2 entries (every AVX-512 CPU runs them, and the
 * exact-tier families stay bit-identical that way) and overrides the
 * GEMM microkernel and the transcendental family with 16-lane code
 * (defined in kernels_avx512.cc, compiled with -mavx512f -mfma).
 */
const KernelTable *avx512_kernel_table();

/**
 * The NEON/ASIMD table, or null off aarch64. ASIMD is baseline on
 * aarch64, so the TU needs no special flags — it self-guards on
 * __ARM_NEON (defined in kernels_neon.cc).
 */
const KernelTable *neon_kernel_table();

} // namespace autofl::kernels

#endif // AUTOFL_KERNELS_KERNEL_TABLE_H
