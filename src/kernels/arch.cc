#include "arch.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "kernels/kernel_table.h"

namespace autofl::kernels {

namespace {

KernelArch
detect_best()
{
    // The AVX2 table is null when the TU was built without AVX2/FMA
    // support (non-x86 target), so "binary supports it" is part of the
    // check, not just cpuid.
    if (avx2_kernel_table() == nullptr)
        return KernelArch::Scalar;
#if defined(__x86_64__) || defined(_M_X64)
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
        return KernelArch::Avx2;
#endif
    return KernelArch::Scalar;
}

KernelArch
initial_arch()
{
    const KernelArch best = detect_best();
    const char *env = std::getenv("AUTOFL_KERNEL_ARCH");
    if (env == nullptr || std::strcmp(env, "auto") == 0 ||
        std::strcmp(env, "best") == 0 || env[0] == '\0')
        return best;
    if (std::strcmp(env, "scalar") == 0)
        return KernelArch::Scalar;
    if (std::strcmp(env, "avx2") == 0) {
        if (best == KernelArch::Avx2)
            return KernelArch::Avx2;
        std::fprintf(stderr,
                     "AUTOFL_KERNEL_ARCH=avx2 unsupported here; "
                     "using %s\n",
                     kernel_arch_name(best));
        return best;
    }
    std::fprintf(stderr,
                 "unknown AUTOFL_KERNEL_ARCH=\"%s\"; using %s\n", env,
                 kernel_arch_name(best));
    return best;
}

std::atomic<KernelArch> &
arch_slot()
{
    static std::atomic<KernelArch> arch{initial_arch()};
    return arch;
}

} // namespace

KernelArch
best_kernel_arch()
{
    static const KernelArch best = detect_best();
    return best;
}

KernelArch
current_kernel_arch()
{
    return arch_slot().load(std::memory_order_relaxed);
}

KernelArch
set_kernel_arch(KernelArch arch)
{
    if (arch == KernelArch::Avx2 && best_kernel_arch() != KernelArch::Avx2)
        arch = best_kernel_arch();
    arch_slot().store(arch, std::memory_order_relaxed);
    return arch;
}

const char *
kernel_arch_name(KernelArch arch)
{
    switch (arch) {
      case KernelArch::Scalar:
        return "scalar";
      case KernelArch::Avx2:
        return "avx2";
    }
    return "unknown";
}

} // namespace autofl::kernels
