#include "arch.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "kernels/kernel_table.h"

namespace autofl::kernels {

namespace {

/**
 * "This binary and this CPU can run the variant." The table pointer is
 * null when the TU was built without the ISA (wrong target or missing
 * compiler support), so "binary supports it" is part of the check, not
 * just cpuid. The NEON table is only compiled on targets where ASIMD
 * is baseline, so its pointer alone decides.
 */
bool
arch_supported(KernelArch arch)
{
    switch (arch) {
      case KernelArch::Scalar:
        return true;
      case KernelArch::Neon:
        return neon_kernel_table() != nullptr;
      case KernelArch::Avx2:
#if defined(__x86_64__) || defined(_M_X64)
        return avx2_kernel_table() != nullptr &&
               __builtin_cpu_supports("avx2") &&
               __builtin_cpu_supports("fma");
#else
        return false;
#endif
      case KernelArch::Avx512:
#if defined(__x86_64__) || defined(_M_X64)
        return avx512_kernel_table() != nullptr &&
               __builtin_cpu_supports("avx512f") &&
               __builtin_cpu_supports("fma");
#else
        return false;
#endif
    }
    return false;
}

KernelArch
detect_best()
{
    // Widest first; declaration order in KernelArch is narrow-to-wide.
    for (const KernelArch arch :
         {KernelArch::Avx512, KernelArch::Avx2, KernelArch::Neon})
        if (arch_supported(arch))
            return arch;
    return KernelArch::Scalar;
}

std::atomic<KernelArch> &
arch_slot()
{
    static std::atomic<KernelArch> arch{
        resolve_kernel_arch_request(std::getenv("AUTOFL_KERNEL_ARCH"))};
    return arch;
}

} // namespace

KernelArch
best_kernel_arch()
{
    static const KernelArch best = detect_best();
    return best;
}

bool
kernel_arch_supported(KernelArch arch)
{
    return arch_supported(arch);
}

std::vector<KernelArch>
supported_kernel_archs()
{
    std::vector<KernelArch> archs;
    for (const KernelArch arch : {KernelArch::Scalar, KernelArch::Neon,
                                  KernelArch::Avx2, KernelArch::Avx512})
        if (arch_supported(arch))
            archs.push_back(arch);
    return archs;
}

KernelArch
current_kernel_arch()
{
    return arch_slot().load(std::memory_order_relaxed);
}

KernelArch
set_kernel_arch(KernelArch arch)
{
    if (!arch_supported(arch))
        arch = best_kernel_arch();
    arch_slot().store(arch, std::memory_order_relaxed);
    return arch;
}

KernelArch
resolve_kernel_arch_request(const char *request)
{
    const KernelArch best = best_kernel_arch();
    if (request == nullptr || request[0] == '\0' ||
        std::strcmp(request, "auto") == 0 ||
        std::strcmp(request, "best") == 0)
        return best;
    bool known = false;
    for (const KernelArch arch : {KernelArch::Scalar, KernelArch::Neon,
                                  KernelArch::Avx2, KernelArch::Avx512}) {
        if (std::strcmp(request, kernel_arch_name(arch)) != 0)
            continue;
        known = true;
        if (arch_supported(arch))
            return arch;
        break;
    }
    if (known)
        std::fprintf(stderr,
                     "AUTOFL_KERNEL_ARCH=%s unsupported here; using %s\n",
                     request, kernel_arch_name(best));
    else
        std::fprintf(stderr,
                     "unknown AUTOFL_KERNEL_ARCH=\"%s\"; using %s\n",
                     request, kernel_arch_name(best));
    return best;
}

const char *
kernel_arch_name(KernelArch arch)
{
    switch (arch) {
      case KernelArch::Scalar:
        return "scalar";
      case KernelArch::Neon:
        return "neon";
      case KernelArch::Avx2:
        return "avx2";
      case KernelArch::Avx512:
        return "avx512";
    }
    return "unknown";
}

const char *
parity_tier_name(ParityTier tier)
{
    switch (tier) {
      case ParityTier::Exact:
        return "exact";
      case ParityTier::Tolerance:
        return "tolerance";
    }
    return "unknown";
}

} // namespace autofl::kernels
