#include "kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "kernels/kernel_table.h"

namespace autofl::kernels {

namespace {

// ------------------------------------------------- scalar GEMM family
// Reduction order contract: for every output element, the k terms are
// added in ascending k order, one rounding per add — exactly the seed
// triple loops in src/tensor/tensor.cc, including the skip of zero
// multipliers (adds of +0.0f are rounding no-ops on finite data).

void
scalar_gemm(int m, int n, int k, const float *a, int lda, const float *b,
            int ldb, float *c, int ldc, bool accumulate)
{
    for (int i = 0; i < m; ++i) {
        float *crow = c + static_cast<size_t>(i) * ldc;
        if (!accumulate)
            std::memset(crow, 0, sizeof(float) * static_cast<size_t>(n));
        const float *arow = a + static_cast<size_t>(i) * lda;
        for (int kk = 0; kk < k; ++kk) {
            const float av = arow[kk];
            if (av == 0.0f)
                continue;
            const float *brow = b + static_cast<size_t>(kk) * ldb;
            for (int j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

void
scalar_gemm_tn(int m, int n, int k, const float *a, int lda, const float *b,
               int ldb, float *c, int ldc, bool accumulate)
{
    if (!accumulate) {
        for (int i = 0; i < m; ++i)
            std::memset(c + static_cast<size_t>(i) * ldc, 0,
                        sizeof(float) * static_cast<size_t>(n));
    }
    for (int kk = 0; kk < k; ++kk) {
        const float *arow = a + static_cast<size_t>(kk) * lda;
        const float *brow = b + static_cast<size_t>(kk) * ldb;
        for (int i = 0; i < m; ++i) {
            const float av = arow[i];
            if (av == 0.0f)
                continue;
            float *crow = c + static_cast<size_t>(i) * ldc;
            for (int j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

void
scalar_gemm_nt(int m, int n, int k, const float *a, int lda, const float *b,
               int ldb, float *c, int ldc, bool accumulate)
{
    for (int i = 0; i < m; ++i) {
        const float *arow = a + static_cast<size_t>(i) * lda;
        float *crow = c + static_cast<size_t>(i) * ldc;
        for (int j = 0; j < n; ++j) {
            const float *brow = b + static_cast<size_t>(j) * ldb;
            float acc = 0.0f;
            for (int kk = 0; kk < k; ++kk)
                acc += arow[kk] * brow[kk];
            crow[j] = accumulate ? crow[j] + acc : acc;
        }
    }
}

// --------------------------------------------- scalar elementwise

void
scalar_axpy(size_t n, float alpha, const float *x, float *y)
{
    for (size_t i = 0; i < n; ++i)
        y[i] += alpha * x[i];
}

void
scalar_scale(size_t n, float alpha, float *y)
{
    for (size_t i = 0; i < n; ++i)
        y[i] *= alpha;
}

void
scalar_vadd(size_t n, const float *x, float *y)
{
    for (size_t i = 0; i < n; ++i)
        y[i] += x[i];
}

void
scalar_vsub(size_t n, const float *x, float *y)
{
    for (size_t i = 0; i < n; ++i)
        y[i] -= x[i];
}

void
scalar_add_bias_rows(int rows, int cols, const float *bias, float *y)
{
    for (int r = 0; r < rows; ++r) {
        float *row = y + static_cast<size_t>(r) * cols;
        for (int c = 0; c < cols; ++c)
            row[c] += bias[c];
    }
}

void
scalar_accumulate_rows(int rows, int cols, const float *src, float *dst)
{
    for (int r = 0; r < rows; ++r) {
        const float *row = src + static_cast<size_t>(r) * cols;
        for (int c = 0; c < cols; ++c)
            dst[c] += row[c];
    }
}

void
scalar_relu_forward(size_t n, float *y, uint8_t *mask)
{
    for (size_t i = 0; i < n; ++i) {
        if (y[i] > 0.0f) {
            mask[i] = 1;
        } else {
            mask[i] = 0;
            y[i] = 0.0f;
        }
    }
}

void
scalar_relu_backward(size_t n, const uint8_t *mask, float *dy)
{
    for (size_t i = 0; i < n; ++i)
        if (!mask[i])
            dy[i] = 0.0f;
}

void
scalar_sgd_step(size_t n, float *w, const float *g, float *v, float lr,
                float wd, float momentum)
{
    for (size_t i = 0; i < n; ++i) {
        float grad = g[i] + wd * w[i];
        if (v != nullptr && momentum != 0.0f) {
            v[i] = momentum * v[i] + grad;
            grad = v[i];
        }
        w[i] -= lr * grad;
    }
}

void
scalar_sgd_step_prox(size_t n, float *w, const float *g, float *v,
                     const float *anchor, float lr, float wd, float momentum,
                     float mu)
{
    for (size_t i = 0; i < n; ++i) {
        float grad = g[i] + wd * w[i] + mu * (w[i] - anchor[i]);
        if (v != nullptr && momentum != 0.0f) {
            v[i] = momentum * v[i] + grad;
            grad = v[i];
        }
        w[i] -= lr * grad;
    }
}

void
scalar_axpy_f64(size_t n, double alpha, const float *x, double *acc)
{
    for (size_t i = 0; i < n; ++i)
        acc[i] += alpha * x[i];
}

void
scalar_diff_axpy_f64(size_t n, double alpha, const float *w, const float *u,
                     double *acc)
{
    for (size_t i = 0; i < n; ++i)
        acc[i] += alpha * (static_cast<double>(w[i]) - u[i]);
}

void
scalar_cast_f64_to_f32(size_t n, const double *acc, float *out)
{
    for (size_t i = 0; i < n; ++i)
        out[i] = static_cast<float>(acc[i]);
}

void
scalar_apply_step_f64(size_t n, float *w, double tau, const double *dir)
{
    for (size_t i = 0; i < n; ++i)
        w[i] = static_cast<float>(w[i] - tau * dir[i]);
}

// ------------------------------------------ scalar push-delta codec

float
scalar_absmax(size_t n, const float *x)
{
    float m = 0.0f;
    for (size_t i = 0; i < n; ++i)
        m = std::fmax(m, std::fabs(x[i]));
    return m;
}

void
scalar_quantize_i8(size_t n, const float *x, float inv_scale, int8_t *q)
{
    for (size_t i = 0; i < n; ++i) {
        // One RNE rounding (nearbyintf under the default mode), then a
        // float-domain clamp: NaN products land on -127, exactly like
        // the AVX2 variant's cvtps_epi32(NaN) = INT_MIN -> max(-127).
        float r = std::nearbyint(x[i] * inv_scale);
        r = std::fmin(std::fmax(r, -127.0f), 127.0f);
        q[i] = static_cast<int8_t>(r);
    }
}

void
scalar_dequantize_i8(size_t n, const int8_t *q, float scale, float *y)
{
    for (size_t i = 0; i < n; ++i)
        y[i] = static_cast<float>(q[i]) * scale;
}

/**
 * f32 -> IEEE binary16, round-to-nearest-even, by bit manipulation —
 * bit-identical to F16C's VCVTPS2PH (subnormal halves, mantissa-carry
 * overflow into inf, and NaN quieting with truncated payload).
 */
inline uint16_t
scalar_f32_to_fp16(float x)
{
    uint32_t bits;
    std::memcpy(&bits, &x, sizeof(bits));
    const uint32_t sign = (bits >> 16) & 0x8000u;
    const uint32_t absb = bits & 0x7fffffffu;
    if (absb >= 0x7f800000u) {  // inf / NaN (quiet bit set, payload MSBs)
        if (absb == 0x7f800000u)
            return static_cast<uint16_t>(sign | 0x7c00u);
        return static_cast<uint16_t>(sign | 0x7e00u |
                                     ((absb & 0x7fffffu) >> 13));
    }
    if (absb >= 0x47800000u)  // >= 65536: inf
        return static_cast<uint16_t>(sign | 0x7c00u);
    if (absb >= 0x38800000u) {  // normal half; carry may round to inf
        uint32_t q = ((((absb >> 23) - 112u) << 10) |
                      ((absb >> 13) & 0x3ffu));
        const uint32_t rem = absb & 0x1fffu;
        if (rem > 0x1000u || (rem == 0x1000u && (q & 1u)))
            ++q;
        return static_cast<uint16_t>(sign | q);
    }
    if (absb <= 0x33000000u)  // <= 2^-25: RNE to (signed) zero
        return static_cast<uint16_t>(sign);
    // Subnormal half: value = m24 * 2^(E-150), h = rne(m24 >> (126-E)).
    const uint32_t m24 = (absb & 0x7fffffu) | 0x800000u;
    const uint32_t shift = 126u - (absb >> 23);  // in [1, 24]
    uint32_t q = m24 >> shift;
    const uint32_t rem = m24 & ((1u << shift) - 1u);
    const uint32_t half = 1u << (shift - 1u);
    if (rem > half || (rem == half && (q & 1u)))
        ++q;  // May carry into the smallest normal — correct encoding.
    return static_cast<uint16_t>(sign | q);
}

/** IEEE binary16 -> f32: exact widening. */
inline float
scalar_fp16_to_f32(uint16_t h)
{
    const uint32_t sign = static_cast<uint32_t>(h & 0x8000u) << 16;
    const uint32_t exp = (h >> 10) & 0x1fu;
    uint32_t man = h & 0x3ffu;
    uint32_t bits;
    if (exp == 0x1fu) {  // inf / NaN
        bits = sign | 0x7f800000u | (man << 13);
    } else if (exp != 0u) {  // normal
        bits = sign | ((exp + 112u) << 23) | (man << 13);
    } else if (man == 0u) {  // zero
        bits = sign;
    } else {  // subnormal: normalize
        uint32_t shift = 0;
        while (!(man & 0x400u)) {
            man <<= 1;
            ++shift;
        }
        bits = sign | ((113u - shift) << 23) | ((man & 0x3ffu) << 13);
    }
    float out;
    std::memcpy(&out, &bits, sizeof(out));
    return out;
}

void
scalar_fp16_encode(size_t n, const float *x, uint16_t *h)
{
    for (size_t i = 0; i < n; ++i)
        h[i] = scalar_f32_to_fp16(x[i]);
}

void
scalar_fp16_decode(size_t n, const uint16_t *h, float *y)
{
    for (size_t i = 0; i < n; ++i)
        y[i] = scalar_fp16_to_f32(h[i]);
}

inline float
scalar_sigmoidf(float x)
{
    return 1.0f / (1.0f + std::exp(-x));
}

/**
 * The exact fused gate update. Shared by lstm_gate_forward (training:
 * arch-independent by contract) and the scalar lstm_gate_infer entry.
 */
void
scalar_lstm_gate(int batch, int hidden, float *z, const float *cprev,
                 float *c, float *h, int h_stride)
{
    const int h4 = 4 * hidden;
    for (int n = 0; n < batch; ++n) {
        float *zrow = z + static_cast<size_t>(n) * h4;
        const float *cp = cprev + static_cast<size_t>(n) * hidden;
        float *cn = c + static_cast<size_t>(n) * hidden;
        float *hn = h + static_cast<size_t>(n) * h_stride;
        for (int j = 0; j < hidden; ++j) {
            float &zi = zrow[j];
            float &zf = zrow[hidden + j];
            float &zg = zrow[2 * hidden + j];
            float &zo = zrow[3 * hidden + j];
            zi = scalar_sigmoidf(zi);
            zf = scalar_sigmoidf(zf);
            zg = std::tanh(zg);
            zo = scalar_sigmoidf(zo);
            const float cv = zf * cp[j] + zi * zg;
            cn[j] = cv;
            hn[j] = zo * std::tanh(cv);
        }
    }
}

const KernelTable *
make_scalar_table()
{
    static KernelTable t = [] {
        KernelTable k;
        k.gemm = scalar_gemm;
        k.gemm_tn = scalar_gemm_tn;
        k.gemm_nt = scalar_gemm_nt;
        k.axpy = scalar_axpy;
        k.scale = scalar_scale;
        k.vadd = scalar_vadd;
        k.vsub = scalar_vsub;
        k.add_bias_rows = scalar_add_bias_rows;
        k.accumulate_rows = scalar_accumulate_rows;
        k.relu_forward = scalar_relu_forward;
        k.relu_backward = scalar_relu_backward;
        k.sgd_step = scalar_sgd_step;
        k.sgd_step_prox = scalar_sgd_step_prox;
        k.absmax = scalar_absmax;
        k.quantize_i8 = scalar_quantize_i8;
        k.dequantize_i8 = scalar_dequantize_i8;
        k.fp16_encode = scalar_fp16_encode;
        k.fp16_decode = scalar_fp16_decode;
        k.axpy_f64 = scalar_axpy_f64;
        k.diff_axpy_f64 = scalar_diff_axpy_f64;
        k.cast_f64_to_f32 = scalar_cast_f64_to_f32;
        k.apply_step_f64 = scalar_apply_step_f64;
        k.lstm_gate_infer = scalar_lstm_gate;
        return k;
    }();
    return &t;
}

/**
 * Table for the currently selected arch. Entries a variant left null
 * fall back to scalar, resolved per member at lookup time.
 */
inline const KernelTable &
active()
{
    switch (current_kernel_arch()) {
      case KernelArch::Avx2:
        if (const KernelTable *t = avx2_kernel_table())
            return *t;
        break;
      case KernelArch::Scalar:
        break;
    }
    return *scalar_kernel_table();
}

/** Pick the active table's entry, or the scalar one when null. */
template <typename Fn>
inline Fn
pick(Fn KernelTable::*member)
{
    const Fn fn = active().*member;
    return fn != nullptr ? fn : scalar_kernel_table()->*member;
}

} // namespace

const KernelTable *
scalar_kernel_table()
{
    return make_scalar_table();
}

// ------------------------------------------------ public dispatchers

void
gemm(int m, int n, int k, const float *a, int lda, const float *b, int ldb,
     float *c, int ldc, bool accumulate)
{
    if (m <= 0 || n <= 0)
        return;
    pick(&KernelTable::gemm)(m, n, k, a, lda, b, ldb, c, ldc, accumulate);
}

void
gemm_tn(int m, int n, int k, const float *a, int lda, const float *b,
        int ldb, float *c, int ldc, bool accumulate)
{
    if (m <= 0 || n <= 0)
        return;
    pick(&KernelTable::gemm_tn)(m, n, k, a, lda, b, ldb, c, ldc, accumulate);
}

void
gemm_nt(int m, int n, int k, const float *a, int lda, const float *b,
        int ldb, float *c, int ldc, bool accumulate)
{
    if (m <= 0 || n <= 0)
        return;
    pick(&KernelTable::gemm_nt)(m, n, k, a, lda, b, ldb, c, ldc, accumulate);
}

void
axpy(size_t n, float alpha, const float *x, float *y)
{
    pick(&KernelTable::axpy)(n, alpha, x, y);
}

void
scale(size_t n, float alpha, float *y)
{
    pick(&KernelTable::scale)(n, alpha, y);
}

void
vadd(size_t n, const float *x, float *y)
{
    pick(&KernelTable::vadd)(n, x, y);
}

void
vsub(size_t n, const float *x, float *y)
{
    pick(&KernelTable::vsub)(n, x, y);
}

void
add_bias_rows(int rows, int cols, const float *bias, float *y)
{
    pick(&KernelTable::add_bias_rows)(rows, cols, bias, y);
}

void
accumulate_rows(int rows, int cols, const float *src, float *dst)
{
    pick(&KernelTable::accumulate_rows)(rows, cols, src, dst);
}

void
relu_forward(size_t n, float *y, uint8_t *mask)
{
    pick(&KernelTable::relu_forward)(n, y, mask);
}

void
relu_backward(size_t n, const uint8_t *mask, float *dy)
{
    pick(&KernelTable::relu_backward)(n, mask, dy);
}

void
sgd_step(size_t n, float *w, const float *g, float *v, float lr, float wd,
         float momentum)
{
    pick(&KernelTable::sgd_step)(n, w, g, v, lr, wd, momentum);
}

void
sgd_step_prox(size_t n, float *w, const float *g, float *v,
              const float *anchor, float lr, float wd, float momentum,
              float mu)
{
    pick(&KernelTable::sgd_step_prox)(n, w, g, v, anchor, lr, wd, momentum,
                                      mu);
}

// ------------------------------- push-delta codec (update compression)

float
absmax(size_t n, const float *x)
{
    return pick(&KernelTable::absmax)(n, x);
}

void
quantize_i8(size_t n, const float *x, float inv_scale, int8_t *q)
{
    pick(&KernelTable::quantize_i8)(n, x, inv_scale, q);
}

void
dequantize_i8(size_t n, const int8_t *q, float scale, float *y)
{
    pick(&KernelTable::dequantize_i8)(n, q, scale, y);
}

void
fp16_encode(size_t n, const float *x, uint16_t *h)
{
    pick(&KernelTable::fp16_encode)(n, x, h);
}

void
fp16_decode(size_t n, const uint16_t *h, float *y)
{
    pick(&KernelTable::fp16_decode)(n, h, y);
}

void
topk_select(size_t n, const float *x, size_t k, int32_t *idx)
{
    // Arch-independent by contract: comparison-only selection, no float
    // rounding — one shared implementation keeps the chosen support a
    // pure function of the input across every kernel arch. Magnitudes
    // compare as IEEE bit patterns (monotone with |x| for non-NaN; NaN
    // sorts largest), which is a strict total order even on garbage
    // inputs — no comparator UB.
    std::vector<uint32_t> mag(n);
    std::memcpy(mag.data(), x, n * sizeof(float));
    for (size_t i = 0; i < n; ++i)
        mag[i] &= 0x7fffffffu;
    std::vector<int32_t> order(n);
    for (size_t i = 0; i < n; ++i)
        order[i] = static_cast<int32_t>(i);
    const auto larger_mag = [&mag](int32_t a, int32_t b) {
        return mag[a] > mag[b] || (mag[a] == mag[b] && a < b);
    };
    if (k < n)
        std::nth_element(order.begin(), order.begin() + k, order.end(),
                         larger_mag);
    std::sort(order.begin(), order.begin() + k);
    std::copy(order.begin(), order.begin() + k, idx);
}

void
axpy_f64(size_t n, double alpha, const float *x, double *acc)
{
    pick(&KernelTable::axpy_f64)(n, alpha, x, acc);
}

void
diff_axpy_f64(size_t n, double alpha, const float *w, const float *u,
              double *acc)
{
    pick(&KernelTable::diff_axpy_f64)(n, alpha, w, u, acc);
}

void
cast_f64_to_f32(size_t n, const double *acc, float *out)
{
    pick(&KernelTable::cast_f64_to_f32)(n, acc, out);
}

void
apply_step_f64(size_t n, float *w, double tau, const double *dir)
{
    pick(&KernelTable::apply_step_f64)(n, w, tau, dir);
}

// --------------------------------------------- LSTM fused gate math

void
lstm_gate_forward(int batch, int hidden, float *z, const float *cprev,
                  float *c, float *h, int h_stride)
{
    // Training path: arch-independent exact math (the determinism
    // contract for pipelined-vs-sync bit parity).
    scalar_lstm_gate(batch, hidden, z, cprev, c, h, h_stride);
}

void
lstm_gate_infer(int batch, int hidden, float *z, const float *cprev,
                float *c, float *h, int h_stride)
{
    pick(&KernelTable::lstm_gate_infer)(batch, hidden, z, cprev, c, h,
                                        h_stride);
}

void
lstm_gate_backward(int batch, int hidden, const float *z, const float *cprev,
                   const float *c, const float *dh, const float *dc,
                   float *dz, float *dc_prev)
{
    const int h4 = 4 * hidden;
    for (int n = 0; n < batch; ++n) {
        const float *zrow = z + static_cast<size_t>(n) * h4;
        const float *cp = cprev + static_cast<size_t>(n) * hidden;
        const float *cn = c + static_cast<size_t>(n) * hidden;
        const float *dhn = dh + static_cast<size_t>(n) * hidden;
        const float *dcn = dc + static_cast<size_t>(n) * hidden;
        float *dzrow = dz + static_cast<size_t>(n) * h4;
        float *dcp = dc_prev + static_cast<size_t>(n) * hidden;
        for (int j = 0; j < hidden; ++j) {
            const float i_g = zrow[j];
            const float f_g = zrow[hidden + j];
            const float g_g = zrow[2 * hidden + j];
            const float o_g = zrow[3 * hidden + j];
            const float tc = std::tanh(cn[j]);
            const float dht = dhn[j];

            const float dct = dht * o_g * (1.0f - tc * tc) + dcn[j];
            const float d_o = dht * tc;
            const float d_i = dct * g_g;
            const float d_g = dct * i_g;
            const float d_f = dct * cp[j];
            dcp[j] = dct * f_g;

            dzrow[j] = d_i * i_g * (1.0f - i_g);
            dzrow[hidden + j] = d_f * f_g * (1.0f - f_g);
            dzrow[2 * hidden + j] = d_g * (1.0f - g_g * g_g);
            dzrow[3 * hidden + j] = d_o * o_g * (1.0f - o_g);
        }
    }
}

// --------------------------------------------------- im2col / col2im

void
im2col(const float *x, int channels, int ih, int iw, int k, int stride,
       int pad, float *col)
{
    const int oh = conv_out_size(ih, k, stride, pad);
    const int ow = conv_out_size(iw, k, stride, pad);
    const size_t ospatial = static_cast<size_t>(oh) * ow;
    for (int c = 0; c < channels; ++c) {
        const float *xc = x + static_cast<size_t>(c) * ih * iw;
        for (int ky = 0; ky < k; ++ky) {
            for (int kx = 0; kx < k; ++kx) {
                float *crow =
                    col + ((static_cast<size_t>(c) * k + ky) * k + kx) *
                              ospatial;
                for (int oy = 0; oy < oh; ++oy) {
                    const int y_in = oy * stride + ky - pad;
                    float *orow = crow + static_cast<size_t>(oy) * ow;
                    if (y_in < 0 || y_in >= ih) {
                        std::memset(orow, 0,
                                    sizeof(float) * static_cast<size_t>(ow));
                        continue;
                    }
                    const float *xrow = xc + static_cast<size_t>(y_in) * iw;
                    const int x0 = kx - pad;  // x_in at ox = 0.
                    if (stride == 1) {
                        // Contiguous tap run with zero fill at the edges.
                        const int lo = std::max(0, -x0);
                        const int hi = std::min(ow, iw - x0);
                        for (int ox = 0; ox < lo; ++ox)
                            orow[ox] = 0.0f;
                        if (hi > lo)
                            std::memcpy(orow + lo, xrow + x0 + lo,
                                        sizeof(float) *
                                            static_cast<size_t>(hi - lo));
                        for (int ox = std::max(lo, hi); ox < ow; ++ox)
                            orow[ox] = 0.0f;
                    } else {
                        for (int ox = 0; ox < ow; ++ox) {
                            const int x_in = x0 + ox * stride;
                            orow[ox] = (x_in < 0 || x_in >= iw)
                                           ? 0.0f
                                           : xrow[x_in];
                        }
                    }
                }
            }
        }
    }
}

void
col2im_add(const float *col, int channels, int ih, int iw, int k, int stride,
           int pad, float *x)
{
    const int oh = conv_out_size(ih, k, stride, pad);
    const int ow = conv_out_size(iw, k, stride, pad);
    const size_t ospatial = static_cast<size_t>(oh) * ow;
    for (int c = 0; c < channels; ++c) {
        float *xc = x + static_cast<size_t>(c) * ih * iw;
        for (int ky = 0; ky < k; ++ky) {
            for (int kx = 0; kx < k; ++kx) {
                const float *crow =
                    col + ((static_cast<size_t>(c) * k + ky) * k + kx) *
                              ospatial;
                for (int oy = 0; oy < oh; ++oy) {
                    const int y_in = oy * stride + ky - pad;
                    if (y_in < 0 || y_in >= ih)
                        continue;
                    float *xrow = xc + static_cast<size_t>(y_in) * iw;
                    const float *orow = crow + static_cast<size_t>(oy) * ow;
                    for (int ox = 0; ox < ow; ++ox) {
                        const int x_in = kx - pad + ox * stride;
                        if (x_in >= 0 && x_in < iw)
                            xrow[x_in] += orow[ox];
                    }
                }
            }
        }
    }
}

} // namespace autofl::kernels
