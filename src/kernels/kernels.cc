#include "kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <vector>

#include "kernels/kernel_table.h"

namespace autofl::kernels {

namespace {

// ------------------------------------------------- scalar GEMM family
// Reduction order contract: for every output element, the k terms are
// added in ascending k order, one rounding per add — exactly the seed
// triple loops in src/tensor/tensor.cc, including the skip of zero
// multipliers (adds of +0.0f are rounding no-ops on finite data).

void
scalar_gemm(int m, int n, int k, const float *a, int lda, const float *b,
            int ldb, float *c, int ldc, bool accumulate)
{
    for (int i = 0; i < m; ++i) {
        float *crow = c + static_cast<size_t>(i) * ldc;
        if (!accumulate)
            std::memset(crow, 0, sizeof(float) * static_cast<size_t>(n));
        const float *arow = a + static_cast<size_t>(i) * lda;
        for (int kk = 0; kk < k; ++kk) {
            const float av = arow[kk];
            if (av == 0.0f)
                continue;
            const float *brow = b + static_cast<size_t>(kk) * ldb;
            for (int j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

void
scalar_gemm_tn(int m, int n, int k, const float *a, int lda, const float *b,
               int ldb, float *c, int ldc, bool accumulate)
{
    if (!accumulate) {
        for (int i = 0; i < m; ++i)
            std::memset(c + static_cast<size_t>(i) * ldc, 0,
                        sizeof(float) * static_cast<size_t>(n));
    }
    for (int kk = 0; kk < k; ++kk) {
        const float *arow = a + static_cast<size_t>(kk) * lda;
        const float *brow = b + static_cast<size_t>(kk) * ldb;
        for (int i = 0; i < m; ++i) {
            const float av = arow[i];
            if (av == 0.0f)
                continue;
            float *crow = c + static_cast<size_t>(i) * ldc;
            for (int j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

void
scalar_gemm_nt(int m, int n, int k, const float *a, int lda, const float *b,
               int ldb, float *c, int ldc, bool accumulate)
{
    for (int i = 0; i < m; ++i) {
        const float *arow = a + static_cast<size_t>(i) * lda;
        float *crow = c + static_cast<size_t>(i) * ldc;
        for (int j = 0; j < n; ++j) {
            const float *brow = b + static_cast<size_t>(j) * ldb;
            float acc = 0.0f;
            for (int kk = 0; kk < k; ++kk)
                acc += arow[kk] * brow[kk];
            crow[j] = accumulate ? crow[j] + acc : acc;
        }
    }
}

// --------------------------------------------- scalar elementwise

void
scalar_axpy(size_t n, float alpha, const float *x, float *y)
{
    for (size_t i = 0; i < n; ++i)
        y[i] += alpha * x[i];
}

void
scalar_scale(size_t n, float alpha, float *y)
{
    for (size_t i = 0; i < n; ++i)
        y[i] *= alpha;
}

void
scalar_vadd(size_t n, const float *x, float *y)
{
    for (size_t i = 0; i < n; ++i)
        y[i] += x[i];
}

void
scalar_vsub(size_t n, const float *x, float *y)
{
    for (size_t i = 0; i < n; ++i)
        y[i] -= x[i];
}

void
scalar_add_bias_rows(int rows, int cols, const float *bias, float *y)
{
    for (int r = 0; r < rows; ++r) {
        float *row = y + static_cast<size_t>(r) * cols;
        for (int c = 0; c < cols; ++c)
            row[c] += bias[c];
    }
}

void
scalar_accumulate_rows(int rows, int cols, const float *src, float *dst)
{
    for (int r = 0; r < rows; ++r) {
        const float *row = src + static_cast<size_t>(r) * cols;
        for (int c = 0; c < cols; ++c)
            dst[c] += row[c];
    }
}

void
scalar_relu_forward(size_t n, float *y, uint8_t *mask)
{
    for (size_t i = 0; i < n; ++i) {
        if (y[i] > 0.0f) {
            mask[i] = 1;
        } else {
            mask[i] = 0;
            y[i] = 0.0f;
        }
    }
}

void
scalar_relu_backward(size_t n, const uint8_t *mask, float *dy)
{
    for (size_t i = 0; i < n; ++i)
        if (!mask[i])
            dy[i] = 0.0f;
}

void
scalar_sgd_step(size_t n, float *w, const float *g, float *v, float lr,
                float wd, float momentum)
{
    for (size_t i = 0; i < n; ++i) {
        float grad = g[i] + wd * w[i];
        if (v != nullptr && momentum != 0.0f) {
            v[i] = momentum * v[i] + grad;
            grad = v[i];
        }
        w[i] -= lr * grad;
    }
}

void
scalar_sgd_step_prox(size_t n, float *w, const float *g, float *v,
                     const float *anchor, float lr, float wd, float momentum,
                     float mu)
{
    for (size_t i = 0; i < n; ++i) {
        float grad = g[i] + wd * w[i] + mu * (w[i] - anchor[i]);
        if (v != nullptr && momentum != 0.0f) {
            v[i] = momentum * v[i] + grad;
            grad = v[i];
        }
        w[i] -= lr * grad;
    }
}

void
scalar_axpy_f64(size_t n, double alpha, const float *x, double *acc)
{
    for (size_t i = 0; i < n; ++i)
        acc[i] += alpha * x[i];
}

void
scalar_diff_axpy_f64(size_t n, double alpha, const float *w, const float *u,
                     double *acc)
{
    for (size_t i = 0; i < n; ++i)
        acc[i] += alpha * (static_cast<double>(w[i]) - u[i]);
}

void
scalar_cast_f64_to_f32(size_t n, const double *acc, float *out)
{
    for (size_t i = 0; i < n; ++i)
        out[i] = static_cast<float>(acc[i]);
}

void
scalar_apply_step_f64(size_t n, float *w, double tau, const double *dir)
{
    for (size_t i = 0; i < n; ++i)
        w[i] = static_cast<float>(w[i] - tau * dir[i]);
}

// ------------------------------------------ scalar push-delta codec

float
scalar_absmax(size_t n, const float *x)
{
    float m = 0.0f;
    for (size_t i = 0; i < n; ++i)
        m = std::fmax(m, std::fabs(x[i]));
    return m;
}

void
scalar_quantize_i8(size_t n, const float *x, float inv_scale, int8_t *q)
{
    for (size_t i = 0; i < n; ++i) {
        // One RNE rounding (nearbyintf under the default mode), then a
        // float-domain clamp: NaN products land on -127, exactly like
        // the AVX2 variant's cvtps_epi32(NaN) = INT_MIN -> max(-127).
        float r = std::nearbyint(x[i] * inv_scale);
        r = std::fmin(std::fmax(r, -127.0f), 127.0f);
        q[i] = static_cast<int8_t>(r);
    }
}

void
scalar_dequantize_i8(size_t n, const int8_t *q, float scale, float *y)
{
    for (size_t i = 0; i < n; ++i)
        y[i] = static_cast<float>(q[i]) * scale;
}

/**
 * f32 -> IEEE binary16, round-to-nearest-even, by bit manipulation —
 * bit-identical to F16C's VCVTPS2PH (subnormal halves, mantissa-carry
 * overflow into inf, and NaN quieting with truncated payload).
 */
inline uint16_t
scalar_f32_to_fp16(float x)
{
    uint32_t bits;
    std::memcpy(&bits, &x, sizeof(bits));
    const uint32_t sign = (bits >> 16) & 0x8000u;
    const uint32_t absb = bits & 0x7fffffffu;
    if (absb >= 0x7f800000u) {  // inf / NaN (quiet bit set, payload MSBs)
        if (absb == 0x7f800000u)
            return static_cast<uint16_t>(sign | 0x7c00u);
        return static_cast<uint16_t>(sign | 0x7e00u |
                                     ((absb & 0x7fffffu) >> 13));
    }
    if (absb >= 0x47800000u)  // >= 65536: inf
        return static_cast<uint16_t>(sign | 0x7c00u);
    if (absb >= 0x38800000u) {  // normal half; carry may round to inf
        uint32_t q = ((((absb >> 23) - 112u) << 10) |
                      ((absb >> 13) & 0x3ffu));
        const uint32_t rem = absb & 0x1fffu;
        if (rem > 0x1000u || (rem == 0x1000u && (q & 1u)))
            ++q;
        return static_cast<uint16_t>(sign | q);
    }
    if (absb <= 0x33000000u)  // <= 2^-25: RNE to (signed) zero
        return static_cast<uint16_t>(sign);
    // Subnormal half: value = m24 * 2^(E-150), h = rne(m24 >> (126-E)).
    const uint32_t m24 = (absb & 0x7fffffu) | 0x800000u;
    const uint32_t shift = 126u - (absb >> 23);  // in [1, 24]
    uint32_t q = m24 >> shift;
    const uint32_t rem = m24 & ((1u << shift) - 1u);
    const uint32_t half = 1u << (shift - 1u);
    if (rem > half || (rem == half && (q & 1u)))
        ++q;  // May carry into the smallest normal — correct encoding.
    return static_cast<uint16_t>(sign | q);
}

/** IEEE binary16 -> f32: exact widening. */
inline float
scalar_fp16_to_f32(uint16_t h)
{
    const uint32_t sign = static_cast<uint32_t>(h & 0x8000u) << 16;
    const uint32_t exp = (h >> 10) & 0x1fu;
    uint32_t man = h & 0x3ffu;
    uint32_t bits;
    if (exp == 0x1fu) {  // inf / NaN
        bits = sign | 0x7f800000u | (man << 13);
    } else if (exp != 0u) {  // normal
        bits = sign | ((exp + 112u) << 23) | (man << 13);
    } else if (man == 0u) {  // zero
        bits = sign;
    } else {  // subnormal: normalize
        uint32_t shift = 0;
        while (!(man & 0x400u)) {
            man <<= 1;
            ++shift;
        }
        bits = sign | ((113u - shift) << 23) | ((man & 0x3ffu) << 13);
    }
    float out;
    std::memcpy(&out, &bits, sizeof(out));
    return out;
}

void
scalar_fp16_encode(size_t n, const float *x, uint16_t *h)
{
    for (size_t i = 0; i < n; ++i)
        h[i] = scalar_f32_to_fp16(x[i]);
}

void
scalar_fp16_decode(size_t n, const uint16_t *h, float *y)
{
    for (size_t i = 0; i < n; ++i)
        y[i] = scalar_fp16_to_f32(h[i]);
}

inline float
scalar_sigmoidf(float x)
{
    return 1.0f / (1.0f + std::exp(-x));
}

/**
 * The exact fused gate update. Shared by lstm_gate_forward (training:
 * arch-independent by contract) and the scalar lstm_gate_infer entry.
 */
void
scalar_lstm_gate(int batch, int hidden, float *z, const float *cprev,
                 float *c, float *h, int h_stride)
{
    const int h4 = 4 * hidden;
    for (int n = 0; n < batch; ++n) {
        float *zrow = z + static_cast<size_t>(n) * h4;
        const float *cp = cprev + static_cast<size_t>(n) * hidden;
        float *cn = c + static_cast<size_t>(n) * hidden;
        float *hn = h + static_cast<size_t>(n) * h_stride;
        for (int j = 0; j < hidden; ++j) {
            float &zi = zrow[j];
            float &zf = zrow[hidden + j];
            float &zg = zrow[2 * hidden + j];
            float &zo = zrow[3 * hidden + j];
            zi = scalar_sigmoidf(zi);
            zf = scalar_sigmoidf(zf);
            zg = std::tanh(zg);
            zo = scalar_sigmoidf(zo);
            const float cv = zf * cp[j] + zi * zg;
            cn[j] = cv;
            hn[j] = zo * std::tanh(cv);
        }
    }
}

void
scalar_lstm_gate_backward(int batch, int hidden, const float *z,
                          const float *cprev, const float *c,
                          const float *dh, const float *dc, float *dz,
                          float *dc_prev)
{
    const int h4 = 4 * hidden;
    for (int n = 0; n < batch; ++n) {
        const float *zrow = z + static_cast<size_t>(n) * h4;
        const float *cp = cprev + static_cast<size_t>(n) * hidden;
        const float *cn = c + static_cast<size_t>(n) * hidden;
        const float *dhn = dh + static_cast<size_t>(n) * hidden;
        const float *dcn = dc + static_cast<size_t>(n) * hidden;
        float *dzrow = dz + static_cast<size_t>(n) * h4;
        float *dcp = dc_prev + static_cast<size_t>(n) * hidden;
        for (int j = 0; j < hidden; ++j) {
            const float i_g = zrow[j];
            const float f_g = zrow[hidden + j];
            const float g_g = zrow[2 * hidden + j];
            const float o_g = zrow[3 * hidden + j];
            const float tc = std::tanh(cn[j]);
            const float dht = dhn[j];

            const float dct = dht * o_g * (1.0f - tc * tc) + dcn[j];
            const float d_o = dht * tc;
            const float d_i = dct * g_g;
            const float d_g = dct * i_g;
            const float d_f = dct * cp[j];
            dcp[j] = dct * f_g;

            dzrow[j] = d_i * i_g * (1.0f - i_g);
            dzrow[hidden + j] = d_f * f_g * (1.0f - f_g);
            dzrow[2 * hidden + j] = d_g * (1.0f - g_g * g_g);
            dzrow[3 * hidden + j] = d_o * o_g * (1.0f - o_g);
        }
    }
}

// ----------------------------------------- packed-panel GEMM driver
// Shared BLIS-style 5-loop driver parameterized by the active table's
// register-tile geometry (gemm_mr x gemm_nr) and cache blocking
// (gemm_mc / gemm_kc / gemm_nc). A is repacked into contiguous MR-row
// panels, B into NR-column panels, so the microkernel streams both
// with unit stride regardless of the source layout (plain, ^T via
// strides, or a prepacked handle). Panels are zero-padded to full tile
// width; ragged C edges are staged through a scratch tile. Reduction
// order is ascending k per output element (one FMA per term), fixed by
// (m, n, k, arch) — per-variant bitwise deterministic, same 1e-4
// tolerance class as the direct SIMD kernels.

/** Shapes below these never amortize the packing pass. */
constexpr int kPackedMinK = 48;
/** Operand footprint (elements) above which packing pays for itself. */
constexpr long long kPackedMinOperand = 8192;
/** Upper bound on any variant's MR x NR scratch tile. */
constexpr int kMaxMicroTile = 512;

inline int
round_up(int v, int mult)
{
    return (v + mult - 1) / mult * mult;
}

/**
 * Pack an mb x kb block of A (element (i, kk) at a[i*rs + kk*cs]) into
 * ceil(mb/mr) panels of kb groups of mr row values, zero-padded.
 */
void
pack_a_block(int mb, int kb, const float *a, size_t rs, size_t cs, int mr,
             float *out)
{
    for (int p = 0; p < mb; p += mr) {
        const int rows = std::min(mr, mb - p);
        const float *ablk = a + static_cast<size_t>(p) * rs;
        for (int kk = 0; kk < kb; ++kk) {
            const float *src = ablk + static_cast<size_t>(kk) * cs;
            for (int r = 0; r < rows; ++r)
                *out++ = src[static_cast<size_t>(r) * rs];
            for (int r = rows; r < mr; ++r)
                *out++ = 0.0f;
        }
    }
}

/**
 * Pack a kb x nb block of B (element (kk, j) at b[kk*rs + j*cs]) into
 * ceil(nb/nr) panels of kb groups of nr column values, zero-padded.
 */
void
pack_b_block(int kb, int nb, const float *b, size_t rs, size_t cs, int nr,
             float *out)
{
    for (int p = 0; p < nb; p += nr) {
        const int cols = std::min(nr, nb - p);
        const float *bblk = b + static_cast<size_t>(p) * cs;
        for (int kk = 0; kk < kb; ++kk) {
            const float *src = bblk + static_cast<size_t>(kk) * rs;
            if (cs == 1 && cols == nr) {
                std::memcpy(out, src, sizeof(float) * static_cast<size_t>(nr));
                out += nr;
            } else {
                for (int j = 0; j < cols; ++j)
                    *out++ = src[static_cast<size_t>(j) * cs];
                for (int j = cols; j < nr; ++j)
                    *out++ = 0.0f;
            }
        }
    }
}

/** Sweep one packed (mb x kb) x (kb x nb) macro block over C. */
void
macro_block(const KernelTable &t, int mb, int nb, int kb, const float *ap,
            const float *bp, float *c, int ldc, bool acc)
{
    const int mr = t.gemm_mr;
    const int nr = t.gemm_nr;
    const size_t astride = static_cast<size_t>(mr) * kb;
    const size_t bstride = static_cast<size_t>(nr) * kb;
    alignas(64) float tile[kMaxMicroTile];
    for (int jr = 0; jr < nb; jr += nr) {
        const int nn = std::min(nr, nb - jr);
        const float *bpanel = bp + static_cast<size_t>(jr / nr) * bstride;
        for (int ir = 0; ir < mb; ir += mr) {
            const int mm = std::min(mr, mb - ir);
            const float *apanel = ap + static_cast<size_t>(ir / mr) * astride;
            float *cblk = c + static_cast<size_t>(ir) * ldc + jr;
            if (mm == mr && nn == nr) {
                t.gemm_micro(kb, apanel, bpanel, cblk, ldc, acc);
            } else {
                // Ragged edge: full tile into scratch, then the valid
                // region onto C (same per-element reduction order).
                t.gemm_micro(kb, apanel, bpanel, tile, nr, false);
                for (int i = 0; i < mm; ++i) {
                    const float *trow = tile + static_cast<size_t>(i) * nr;
                    float *crow = cblk + static_cast<size_t>(i) * ldc;
                    if (acc) {
                        for (int j = 0; j < nn; ++j)
                            crow[j] += trow[j];
                    } else {
                        for (int j = 0; j < nn; ++j)
                            crow[j] = trow[j];
                    }
                }
            }
        }
    }
}

/**
 * One GEMM operand for the packed driver: either a raw strided matrix
 * (element (r, c) at raw[r*rs + c*cs]) or fully prepacked panels laid
 * out in the driver's own block order (see pack_gemm_a/pack_gemm_b).
 */
struct OperandA
{
    const float *raw = nullptr;
    size_t rs = 0;
    size_t cs = 0;
    const float *packed = nullptr;  ///< pc-major, then ic blocks.
};

struct OperandB
{
    const float *raw = nullptr;
    size_t rs = 0;
    size_t cs = 0;
    const float *packed = nullptr;  ///< jc-major, then pc blocks.
};

void
packed_gemm_driver(const KernelTable &t, int m, int n, int k,
                   const OperandA &oa, const OperandB &ob, float *c, int ldc,
                   bool accumulate)
{
    if (k <= 0) {
        if (!accumulate)
            for (int i = 0; i < m; ++i)
                std::memset(c + static_cast<size_t>(i) * ldc, 0,
                            sizeof(float) * static_cast<size_t>(n));
        return;
    }
    const int mr = t.gemm_mr;
    const int nr = t.gemm_nr;
    const int mc = t.gemm_mc;
    const int kc = t.gemm_kc;
    const int nc = t.gemm_nc;
    const int rnd_m = round_up(m, mr);
    thread_local std::vector<float> apack;
    thread_local std::vector<float> bpack;
    if (oa.packed == nullptr)
        apack.resize(static_cast<size_t>(round_up(std::min(m, mc), mr)) *
                     static_cast<size_t>(std::min(k, kc)));
    if (ob.packed == nullptr)
        bpack.resize(static_cast<size_t>(round_up(std::min(n, nc), nr)) *
                     static_cast<size_t>(std::min(k, kc)));
    for (int jc = 0; jc < n; jc += nc) {
        const int nb = std::min(nc, n - jc);
        const int rnd_nb = round_up(nb, nr);
        for (int pc = 0; pc < k; pc += kc) {
            const int kb = std::min(kc, k - pc);
            // Later kc blocks accumulate onto the earlier ones, so the
            // per-element reduction stays ascending k.
            const bool acc = accumulate || pc > 0;
            const float *bp;
            if (ob.packed != nullptr) {
                bp = ob.packed + static_cast<size_t>(jc) * k +
                     static_cast<size_t>(rnd_nb) * pc;
            } else {
                pack_b_block(kb, nb,
                             ob.raw + static_cast<size_t>(pc) * ob.rs +
                                 static_cast<size_t>(jc) * ob.cs,
                             ob.rs, ob.cs, nr, bpack.data());
                bp = bpack.data();
            }
            for (int ic = 0; ic < m; ic += mc) {
                const int mb = std::min(mc, m - ic);
                const float *ap;
                if (oa.packed != nullptr) {
                    ap = oa.packed + static_cast<size_t>(rnd_m) * pc +
                         static_cast<size_t>(ic) * kb;
                } else {
                    pack_a_block(mb, kb,
                                 oa.raw + static_cast<size_t>(ic) * oa.rs +
                                     static_cast<size_t>(pc) * oa.cs,
                                 oa.rs, oa.cs, mr, apack.data());
                    ap = apack.data();
                }
                macro_block(t, mb, nb, kb, ap, bp,
                            c + static_cast<size_t>(ic) * ldc + jc, ldc,
                            acc);
            }
        }
    }
}

std::atomic<GemmPath> &
gemm_path_slot()
{
    static std::atomic<GemmPath> path{GemmPath::Auto};
    return path;
}

/**
 * Pure function of (table, shape, path policy) — never of data — so
 * the reduction order each call site sees is reproducible.
 */
inline bool
use_packed_path(const KernelTable &t, int m, int n, int k)
{
    if (t.gemm_micro == nullptr)
        return false;
    switch (gemm_path_slot().load(std::memory_order_relaxed)) {
      case GemmPath::Direct:
        return false;
      case GemmPath::Packed:
        return true;
      case GemmPath::Auto:
        break;
    }
    if (k < kPackedMinK || m < t.gemm_mr || n < t.gemm_nr)
        return false;
    // Packing is O(mk + kn) against O(mnk) flops; it pays once an
    // operand no longer sits in L1 across the sweep.
    return static_cast<long long>(k) * n >= kPackedMinOperand ||
           static_cast<long long>(k) * m >= kPackedMinOperand;
}

const KernelTable *
make_scalar_table()
{
    static KernelTable t = [] {
        KernelTable k;
        k.gemm = scalar_gemm;
        k.gemm_tn = scalar_gemm_tn;
        k.gemm_nt = scalar_gemm_nt;
        k.axpy = scalar_axpy;
        k.scale = scalar_scale;
        k.vadd = scalar_vadd;
        k.vsub = scalar_vsub;
        k.add_bias_rows = scalar_add_bias_rows;
        k.accumulate_rows = scalar_accumulate_rows;
        k.relu_forward = scalar_relu_forward;
        k.relu_backward = scalar_relu_backward;
        k.sgd_step = scalar_sgd_step;
        k.sgd_step_prox = scalar_sgd_step_prox;
        k.absmax = scalar_absmax;
        k.quantize_i8 = scalar_quantize_i8;
        k.dequantize_i8 = scalar_dequantize_i8;
        k.fp16_encode = scalar_fp16_encode;
        k.fp16_decode = scalar_fp16_decode;
        k.axpy_f64 = scalar_axpy_f64;
        k.diff_axpy_f64 = scalar_diff_axpy_f64;
        k.cast_f64_to_f32 = scalar_cast_f64_to_f32;
        k.apply_step_f64 = scalar_apply_step_f64;
        k.lstm_gate_forward = scalar_lstm_gate;
        k.lstm_gate_backward = scalar_lstm_gate_backward;
        k.lstm_gate_infer = scalar_lstm_gate;
        // No gemm_micro: the scalar direct loops ARE the bit-exactness
        // baseline, so the scalar table has no packed path by design.
        // Parity tiers: all Exact (this table defines the baseline).
        return k;
    }();
    return &t;
}

/** The given arch's table, or null when not compiled in. */
const KernelTable *
table_for(KernelArch arch)
{
    switch (arch) {
      case KernelArch::Scalar:
        return scalar_kernel_table();
      case KernelArch::Neon:
        return neon_kernel_table();
      case KernelArch::Avx2:
        return avx2_kernel_table();
      case KernelArch::Avx512:
        return avx512_kernel_table();
    }
    return scalar_kernel_table();
}

/**
 * Table for the currently selected arch. Entries a variant left null
 * fall back to scalar, resolved per member at lookup time.
 */
inline const KernelTable &
active()
{
    if (const KernelTable *t = table_for(current_kernel_arch()))
        return *t;
    return *scalar_kernel_table();
}

/** Pick the active table's entry, or the scalar one when null. */
template <typename Fn>
inline Fn
pick(Fn KernelTable::*member)
{
    const Fn fn = active().*member;
    return fn != nullptr ? fn : scalar_kernel_table()->*member;
}

} // namespace

const KernelTable *
scalar_kernel_table()
{
    return make_scalar_table();
}

// ------------------------------------------------ public dispatchers

const KernelParity &
kernel_parity(KernelArch arch)
{
    const KernelTable *t = table_for(arch);
    return (t != nullptr ? t : scalar_kernel_table())->parity_tier;
}

GemmPath
set_gemm_path(GemmPath path)
{
    return gemm_path_slot().exchange(path, std::memory_order_relaxed);
}

GemmPath
current_gemm_path()
{
    return gemm_path_slot().load(std::memory_order_relaxed);
}

void
gemm(int m, int n, int k, const float *a, int lda, const float *b, int ldb,
     float *c, int ldc, bool accumulate)
{
    if (m <= 0 || n <= 0)
        return;
    const KernelTable &t = active();
    if (use_packed_path(t, m, n, k)) {
        packed_gemm_driver(t, m, n, k,
                           OperandA{a, static_cast<size_t>(lda), 1, nullptr},
                           OperandB{b, static_cast<size_t>(ldb), 1, nullptr},
                           c, ldc, accumulate);
        return;
    }
    pick(&KernelTable::gemm)(m, n, k, a, lda, b, ldb, c, ldc, accumulate);
}

void
gemm_tn(int m, int n, int k, const float *a, int lda, const float *b,
        int ldb, float *c, int ldc, bool accumulate)
{
    if (m <= 0 || n <= 0)
        return;
    const KernelTable &t = active();
    if (use_packed_path(t, m, n, k)) {
        // A stored {k, m}: element (i, kk) at a[kk * lda + i].
        packed_gemm_driver(t, m, n, k,
                           OperandA{a, 1, static_cast<size_t>(lda), nullptr},
                           OperandB{b, static_cast<size_t>(ldb), 1, nullptr},
                           c, ldc, accumulate);
        return;
    }
    pick(&KernelTable::gemm_tn)(m, n, k, a, lda, b, ldb, c, ldc, accumulate);
}

void
gemm_nt(int m, int n, int k, const float *a, int lda, const float *b,
        int ldb, float *c, int ldc, bool accumulate)
{
    if (m <= 0 || n <= 0)
        return;
    const KernelTable &t = active();
    if (use_packed_path(t, m, n, k)) {
        // B stored {n, k}: element (kk, j) at b[j * ldb + kk].
        packed_gemm_driver(t, m, n, k,
                           OperandA{a, static_cast<size_t>(lda), 1, nullptr},
                           OperandB{b, 1, static_cast<size_t>(ldb), nullptr},
                           c, ldc, accumulate);
        return;
    }
    pick(&KernelTable::gemm_nt)(m, n, k, a, lda, b, ldb, c, ldc, accumulate);
}

// ------------------------------------------- prepacked GEMM operands

PackedGemm
pack_gemm_a(int m, int k, const float *a, int lda, bool a_transposed)
{
    PackedGemm p;
    p.rows_ = m;
    p.cols_ = k;
    p.arch_ = current_kernel_arch();
    if (m <= 0 || k <= 0)
        return p;
    const size_t rs = a_transposed ? 1 : static_cast<size_t>(lda);
    const size_t cs = a_transposed ? static_cast<size_t>(lda) : 1;
    const KernelTable *t = table_for(p.arch_);
    if (t != nullptr && t->gemm_micro != nullptr && k >= kPackedMinK &&
        m >= t->gemm_mr) {
        p.panels_ = true;
        p.buf_.resize(static_cast<size_t>(round_up(m, t->gemm_mr)) * k);
        float *out = p.buf_.data();
        for (int pc = 0; pc < k; pc += t->gemm_kc) {
            const int kb = std::min(t->gemm_kc, k - pc);
            for (int ic = 0; ic < m; ic += t->gemm_mc) {
                const int mb = std::min(t->gemm_mc, m - ic);
                pack_a_block(mb, kb,
                             a + static_cast<size_t>(ic) * rs +
                                 static_cast<size_t>(pc) * cs,
                             rs, cs, t->gemm_mr, out);
                out += static_cast<size_t>(round_up(mb, t->gemm_mr)) * kb;
            }
        }
        return p;
    }
    // Below the cutoff (or scalar arch): a contiguous row-major copy;
    // compute calls route through the ordinary dispatcher, so the
    // scalar path keeps the seed-exact direct loops.
    p.buf_.resize(static_cast<size_t>(m) * k);
    for (int i = 0; i < m; ++i) {
        float *dst = p.buf_.data() + static_cast<size_t>(i) * k;
        const float *src = a + static_cast<size_t>(i) * rs;
        if (cs == 1)
            std::memcpy(dst, src, sizeof(float) * static_cast<size_t>(k));
        else
            for (int kk = 0; kk < k; ++kk)
                dst[kk] = src[static_cast<size_t>(kk) * cs];
    }
    return p;
}

PackedGemm
pack_gemm_b(int k, int n, const float *b, int ldb, bool b_transposed)
{
    PackedGemm p;
    p.rows_ = k;
    p.cols_ = n;
    p.arch_ = current_kernel_arch();
    if (k <= 0 || n <= 0)
        return p;
    const size_t rs = b_transposed ? 1 : static_cast<size_t>(ldb);
    const size_t cs = b_transposed ? static_cast<size_t>(ldb) : 1;
    const KernelTable *t = table_for(p.arch_);
    if (t != nullptr && t->gemm_micro != nullptr && k >= kPackedMinK &&
        n >= t->gemm_nr) {
        p.panels_ = true;
        p.buf_.resize(static_cast<size_t>(round_up(n, t->gemm_nr)) * k);
        float *out = p.buf_.data();
        for (int jc = 0; jc < n; jc += t->gemm_nc) {
            const int nb = std::min(t->gemm_nc, n - jc);
            for (int pc = 0; pc < k; pc += t->gemm_kc) {
                const int kb = std::min(t->gemm_kc, k - pc);
                pack_b_block(kb, nb,
                             b + static_cast<size_t>(pc) * rs +
                                 static_cast<size_t>(jc) * cs,
                             rs, cs, t->gemm_nr, out);
                out += static_cast<size_t>(round_up(nb, t->gemm_nr)) * kb;
            }
        }
        return p;
    }
    p.buf_.resize(static_cast<size_t>(k) * n);
    for (int kk = 0; kk < k; ++kk) {
        float *dst = p.buf_.data() + static_cast<size_t>(kk) * n;
        const float *src = b + static_cast<size_t>(kk) * rs;
        if (cs == 1)
            std::memcpy(dst, src, sizeof(float) * static_cast<size_t>(n));
        else
            for (int j = 0; j < n; ++j)
                dst[j] = src[static_cast<size_t>(j) * cs];
    }
    return p;
}

void
gemm_packed_a(const PackedGemm &a, int n, const float *b, int ldb, float *c,
              int ldc, bool accumulate)
{
    const int m = a.rows_;
    const int k = a.cols_;
    if (m <= 0 || n <= 0)
        return;
    if (!a.panels_) {
        gemm(m, n, k, a.buf_.data(), k, b, ldb, c, ldc, accumulate);
        return;
    }
    // Compute with the arch the panels were laid out for, so a handle
    // outlives any mid-flight set_kernel_arch flip.
    packed_gemm_driver(*table_for(a.arch_), m, n, k,
                       OperandA{nullptr, 0, 0, a.buf_.data()},
                       OperandB{b, static_cast<size_t>(ldb), 1, nullptr}, c,
                       ldc, accumulate);
}

void
gemm_packed_b(int m, const float *a, int lda, const PackedGemm &b, float *c,
              int ldc, bool accumulate)
{
    const int k = b.rows_;
    const int n = b.cols_;
    if (m <= 0 || n <= 0)
        return;
    if (!b.panels_) {
        gemm(m, n, k, a, lda, b.buf_.data(), n, c, ldc, accumulate);
        return;
    }
    packed_gemm_driver(*table_for(b.arch_), m, n, k,
                       OperandA{a, static_cast<size_t>(lda), 1, nullptr},
                       OperandB{nullptr, 0, 0, b.buf_.data()}, c, ldc,
                       accumulate);
}

void
axpy(size_t n, float alpha, const float *x, float *y)
{
    pick(&KernelTable::axpy)(n, alpha, x, y);
}

void
scale(size_t n, float alpha, float *y)
{
    pick(&KernelTable::scale)(n, alpha, y);
}

void
vadd(size_t n, const float *x, float *y)
{
    pick(&KernelTable::vadd)(n, x, y);
}

void
vsub(size_t n, const float *x, float *y)
{
    pick(&KernelTable::vsub)(n, x, y);
}

void
add_bias_rows(int rows, int cols, const float *bias, float *y)
{
    pick(&KernelTable::add_bias_rows)(rows, cols, bias, y);
}

void
accumulate_rows(int rows, int cols, const float *src, float *dst)
{
    pick(&KernelTable::accumulate_rows)(rows, cols, src, dst);
}

void
relu_forward(size_t n, float *y, uint8_t *mask)
{
    pick(&KernelTable::relu_forward)(n, y, mask);
}

void
relu_backward(size_t n, const uint8_t *mask, float *dy)
{
    pick(&KernelTable::relu_backward)(n, mask, dy);
}

void
sgd_step(size_t n, float *w, const float *g, float *v, float lr, float wd,
         float momentum)
{
    pick(&KernelTable::sgd_step)(n, w, g, v, lr, wd, momentum);
}

void
sgd_step_prox(size_t n, float *w, const float *g, float *v,
              const float *anchor, float lr, float wd, float momentum,
              float mu)
{
    pick(&KernelTable::sgd_step_prox)(n, w, g, v, anchor, lr, wd, momentum,
                                      mu);
}

// ------------------------------- push-delta codec (update compression)

float
absmax(size_t n, const float *x)
{
    return pick(&KernelTable::absmax)(n, x);
}

void
quantize_i8(size_t n, const float *x, float inv_scale, int8_t *q)
{
    pick(&KernelTable::quantize_i8)(n, x, inv_scale, q);
}

void
dequantize_i8(size_t n, const int8_t *q, float scale, float *y)
{
    pick(&KernelTable::dequantize_i8)(n, q, scale, y);
}

void
fp16_encode(size_t n, const float *x, uint16_t *h)
{
    pick(&KernelTable::fp16_encode)(n, x, h);
}

void
fp16_decode(size_t n, const uint16_t *h, float *y)
{
    pick(&KernelTable::fp16_decode)(n, h, y);
}

void
topk_select(size_t n, const float *x, size_t k, int32_t *idx)
{
    // Arch-independent by contract: comparison-only selection, no float
    // rounding — one shared implementation keeps the chosen support a
    // pure function of the input across every kernel arch. Magnitudes
    // compare as IEEE bit patterns (monotone with |x| for non-NaN; NaN
    // sorts largest), which is a strict total order even on garbage
    // inputs — no comparator UB.
    std::vector<uint32_t> mag(n);
    std::memcpy(mag.data(), x, n * sizeof(float));
    for (size_t i = 0; i < n; ++i)
        mag[i] &= 0x7fffffffu;
    std::vector<int32_t> order(n);
    for (size_t i = 0; i < n; ++i)
        order[i] = static_cast<int32_t>(i);
    const auto larger_mag = [&mag](int32_t a, int32_t b) {
        return mag[a] > mag[b] || (mag[a] == mag[b] && a < b);
    };
    if (k < n)
        std::nth_element(order.begin(), order.begin() + k, order.end(),
                         larger_mag);
    std::sort(order.begin(), order.begin() + k);
    std::copy(order.begin(), order.begin() + k, idx);
}

void
axpy_f64(size_t n, double alpha, const float *x, double *acc)
{
    pick(&KernelTable::axpy_f64)(n, alpha, x, acc);
}

void
diff_axpy_f64(size_t n, double alpha, const float *w, const float *u,
              double *acc)
{
    pick(&KernelTable::diff_axpy_f64)(n, alpha, w, u, acc);
}

void
cast_f64_to_f32(size_t n, const double *acc, float *out)
{
    pick(&KernelTable::cast_f64_to_f32)(n, acc, out);
}

void
apply_step_f64(size_t n, float *w, double tau, const double *dir)
{
    pick(&KernelTable::apply_step_f64)(n, w, tau, dir);
}

// --------------------------------------------- LSTM fused gate math

void
lstm_gate_forward(int batch, int hidden, float *z, const float *cprev,
                  float *c, float *h, int h_stride)
{
    pick(&KernelTable::lstm_gate_forward)(batch, hidden, z, cprev, c, h,
                                          h_stride);
}

void
lstm_gate_infer(int batch, int hidden, float *z, const float *cprev,
                float *c, float *h, int h_stride)
{
    pick(&KernelTable::lstm_gate_infer)(batch, hidden, z, cprev, c, h,
                                        h_stride);
}

void
lstm_gate_backward(int batch, int hidden, const float *z, const float *cprev,
                   const float *c, const float *dh, const float *dc,
                   float *dz, float *dc_prev)
{
    pick(&KernelTable::lstm_gate_backward)(batch, hidden, z, cprev, c, dh,
                                           dc, dz, dc_prev);
}

// --------------------------------------------------- im2col / col2im

void
im2col(const float *x, int channels, int ih, int iw, int k, int stride,
       int pad, float *col)
{
    const int oh = conv_out_size(ih, k, stride, pad);
    const int ow = conv_out_size(iw, k, stride, pad);
    const size_t ospatial = static_cast<size_t>(oh) * ow;
    for (int c = 0; c < channels; ++c) {
        const float *xc = x + static_cast<size_t>(c) * ih * iw;
        for (int ky = 0; ky < k; ++ky) {
            for (int kx = 0; kx < k; ++kx) {
                float *crow =
                    col + ((static_cast<size_t>(c) * k + ky) * k + kx) *
                              ospatial;
                for (int oy = 0; oy < oh; ++oy) {
                    const int y_in = oy * stride + ky - pad;
                    float *orow = crow + static_cast<size_t>(oy) * ow;
                    if (y_in < 0 || y_in >= ih) {
                        std::memset(orow, 0,
                                    sizeof(float) * static_cast<size_t>(ow));
                        continue;
                    }
                    const float *xrow = xc + static_cast<size_t>(y_in) * iw;
                    const int x0 = kx - pad;  // x_in at ox = 0.
                    if (stride == 1) {
                        // Contiguous tap run with zero fill at the edges.
                        const int lo = std::max(0, -x0);
                        const int hi = std::min(ow, iw - x0);
                        for (int ox = 0; ox < lo; ++ox)
                            orow[ox] = 0.0f;
                        if (hi > lo)
                            std::memcpy(orow + lo, xrow + x0 + lo,
                                        sizeof(float) *
                                            static_cast<size_t>(hi - lo));
                        for (int ox = std::max(lo, hi); ox < ow; ++ox)
                            orow[ox] = 0.0f;
                    } else {
                        for (int ox = 0; ox < ow; ++ox) {
                            const int x_in = x0 + ox * stride;
                            orow[ox] = (x_in < 0 || x_in >= iw)
                                           ? 0.0f
                                           : xrow[x_in];
                        }
                    }
                }
            }
        }
    }
}

void
col2im_add(const float *col, int channels, int ih, int iw, int k, int stride,
           int pad, float *x)
{
    const int oh = conv_out_size(ih, k, stride, pad);
    const int ow = conv_out_size(iw, k, stride, pad);
    const size_t ospatial = static_cast<size_t>(oh) * ow;
    for (int c = 0; c < channels; ++c) {
        float *xc = x + static_cast<size_t>(c) * ih * iw;
        for (int ky = 0; ky < k; ++ky) {
            for (int kx = 0; kx < k; ++kx) {
                const float *crow =
                    col + ((static_cast<size_t>(c) * k + ky) * k + kx) *
                              ospatial;
                for (int oy = 0; oy < oh; ++oy) {
                    const int y_in = oy * stride + ky - pad;
                    if (y_in < 0 || y_in >= ih)
                        continue;
                    float *xrow = xc + static_cast<size_t>(y_in) * iw;
                    const float *orow = crow + static_cast<size_t>(oy) * ow;
                    for (int ox = 0; ox < ow; ++ox) {
                        const int x_in = kx - pad + ox * stride;
                        if (x_in >= 0 && x_in < iw)
                            xrow[x_in] += orow[ox];
                    }
                }
            }
        }
    }
}

} // namespace autofl::kernels
