/**
 * @file
 * Runtime CPU-architecture selection for the compute kernels.
 *
 * The library ships one binary containing every kernel variant; the
 * variant actually executed is chosen once at startup from cpuid (and
 * can be overridden). Selection order:
 *
 *   1. `set_kernel_arch()` — explicit programmatic override (tests and
 *      benches flip variants in-process for parity/speedup checks).
 *   2. `AUTOFL_KERNEL_ARCH` environment variable: "scalar", "avx2" or
 *      "auto". Requests the hardware cannot honor fall back to the best
 *      supported variant with a stderr note.
 *   3. cpuid: the widest variant this CPU supports.
 *
 * Each variant has a fixed reduction order, so results are bitwise
 * deterministic per (variant, input) — see src/kernels/README.md for
 * the determinism contract.
 */
#ifndef AUTOFL_KERNELS_ARCH_H
#define AUTOFL_KERNELS_ARCH_H

namespace autofl::kernels {

/** Kernel instruction-set variants, widest last. */
enum class KernelArch {
    Scalar,  ///< Portable C++; bit-identical to the seed loops.
    Avx2,    ///< AVX2 + FMA (x86-64), 8-lane float vectors.
};

/** Widest variant this CPU (and this binary) supports. */
KernelArch best_kernel_arch();

/** The variant kernels dispatch to right now. */
KernelArch current_kernel_arch();

/**
 * Override the dispatch variant (clamped to best_kernel_arch()).
 * Returns the variant actually installed. Thread-safe, but callers
 * flipping variants mid-run own the ordering with in-flight kernels.
 */
KernelArch set_kernel_arch(KernelArch arch);

/** Lower-case variant name ("scalar", "avx2"). */
const char *kernel_arch_name(KernelArch arch);

} // namespace autofl::kernels

#endif // AUTOFL_KERNELS_ARCH_H
