/**
 * @file
 * Runtime CPU-architecture selection for the compute kernels.
 *
 * The library ships one binary containing every kernel variant; the
 * variant actually executed is chosen once at startup from cpuid (and
 * can be overridden). Selection order:
 *
 *   1. `set_kernel_arch()` — explicit programmatic override (tests and
 *      benches flip variants in-process for parity/speedup checks).
 *   2. `AUTOFL_KERNEL_ARCH` environment variable: "scalar", "avx2",
 *      "avx512", "neon" or "auto". Requests the hardware (or this
 *      binary) cannot honor fall back to the best supported variant
 *      with a stderr note — never a crash.
 *   3. cpuid: the widest variant this CPU supports.
 *
 * Each variant has a fixed reduction order, so results are bitwise
 * deterministic per (variant, input). How tightly variants agree with
 * each other is the per-family parity tier (KernelParity below) — see
 * src/kernels/README.md for the full determinism contract.
 */
#ifndef AUTOFL_KERNELS_ARCH_H
#define AUTOFL_KERNELS_ARCH_H

#include <vector>

namespace autofl::kernels {

/** Kernel instruction-set variants, widest last. */
enum class KernelArch {
    Scalar,  ///< Portable C++; bit-identical to the seed loops.
    Neon,    ///< NEON/ASIMD (aarch64), 4-lane float vectors.
    Avx2,    ///< AVX2 + FMA (x86-64), 8-lane float vectors.
    Avx512,  ///< AVX-512F + FMA (x86-64), 16-lane float vectors.
};

/**
 * Cross-variant agreement promised by one kernel family on one arch.
 * `Exact` families are bit-identical to the scalar table (and hence to
 * every other variant); `Tolerance` families agree within the 1e-4
 * relative class that tests/test_kernels.cc asserts.
 */
enum class ParityTier {
    Exact,      ///< Bit-identical across all variants.
    Tolerance,  ///< 1e-4 relative agreement; bitwise only per variant.
};

/** Per-family parity tiers for one kernel arch. */
struct KernelParity
{
    ParityTier gemm = ParityTier::Exact;
    ParityTier elementwise = ParityTier::Exact;
    ParityTier codec = ParityTier::Exact;
    ParityTier transcendental = ParityTier::Exact;
};

/** Widest variant this CPU (and this binary) supports. */
KernelArch best_kernel_arch();

/**
 * True when @p arch can run here: its table was compiled into this
 * binary and cpuid reports the ISA.
 */
bool kernel_arch_supported(KernelArch arch);

/** Every runnable variant, narrowest (Scalar) first. */
std::vector<KernelArch> supported_kernel_archs();

/** The variant kernels dispatch to right now. */
KernelArch current_kernel_arch();

/**
 * Override the dispatch variant (clamped to the widest supported
 * variant when the request cannot run here). Returns the variant
 * actually installed. Thread-safe, but callers flipping variants
 * mid-run own the ordering with in-flight kernels.
 */
KernelArch set_kernel_arch(KernelArch arch);

/**
 * Resolve an AUTOFL_KERNEL_ARCH-style request string to the variant
 * that would be installed: "scalar"/"neon"/"avx2"/"avx512" pick that
 * variant when supported, anything else (including unsupported
 * requests, unknown names, null and "") falls back to
 * best_kernel_arch() with a stderr note. Pure lookup + clamp — exposed
 * so tests can drive the negative paths without re-execing.
 */
KernelArch resolve_kernel_arch_request(const char *request);

/** Lower-case variant name ("scalar", "neon", "avx2", "avx512"). */
const char *kernel_arch_name(KernelArch arch);

/** Lower-case tier name ("exact", "tolerance"). */
const char *parity_tier_name(ParityTier tier);

} // namespace autofl::kernels

#endif // AUTOFL_KERNELS_ARCH_H
