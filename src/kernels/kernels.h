/**
 * @file
 * The shared compute backend: runtime-dispatched GEMM, im2col
 * convolution helpers and fused elementwise kernels over raw row-major
 * float buffers.
 *
 * Every compute inner loop in the repo — Tensor matmul, the nn layers,
 * the SGD step and the FL aggregation range helpers — routes through
 * these entry points, so a new arch variant (one KernelTable) speeds up
 * the whole stack at once. See src/kernels/README.md for the dispatch
 * design and the determinism contract; in short:
 *
 *  - Per variant, every kernel has a fixed reduction order: identical
 *    inputs give bitwise-identical outputs, independent of thread
 *    count or call site.
 *  - The scalar GEMM variants reduce over k in ascending order exactly
 *    like the seed triple loops (bit-compatible with pre-kernel runs).
 *  - Each kernel family carries an explicit per-arch parity tier
 *    (kernel_parity()): `exact` families (elementwise, codecs) are
 *    bit-identical across ALL variants; `tolerance` families (SIMD
 *    GEMM, vectorized transcendentals) agree within 1e-4 relative.
 */
#ifndef AUTOFL_KERNELS_KERNELS_H
#define AUTOFL_KERNELS_KERNELS_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "kernels/arch.h"

namespace autofl::kernels {

/** Per-family parity tiers the given variant promises vs scalar. */
const KernelParity &kernel_parity(KernelArch arch);

// ------------------------------------------------------------- GEMM
// Row-major. When @p accumulate is false, C is overwritten; when true,
// the product is added on top of the existing C (used to fuse bias
// pre-fill and gradient accumulation into the multiply).
//
// SIMD variants route large shapes through a packed-panel driver (A
// repacked into MR x kc row panels, B into kc x NR column panels, BLIS
//-style cache blocking) and keep the original blocked kernels for
// small shapes. Both paths are per-variant deterministic; they belong
// to the same 1e-4 `tolerance` parity class but are NOT bit-identical
// to each other, so the path choice is a pure function of (m, n, k)
// and the selected arch — never of data or timing.

/** C {m,n} = (or +=) A {m,k} x B {k,n}. */
void gemm(int m, int n, int k, const float *a, int lda, const float *b,
          int ldb, float *c, int ldc, bool accumulate = false);

/** C {m,n} = (or +=) A^T x B for A stored {k,m}. */
void gemm_tn(int m, int n, int k, const float *a, int lda, const float *b,
             int ldb, float *c, int ldc, bool accumulate = false);

/** C {m,n} = (or +=) A x B^T for B stored {n,k}. */
void gemm_nt(int m, int n, int k, const float *a, int lda, const float *b,
             int ldb, float *c, int ldc, bool accumulate = false);

/**
 * GEMM path selection hook for tests and benches. `Auto` (the default)
 * picks per shape; `Direct` forces the original streaming kernels;
 * `Packed` forces the packed-panel driver where the variant has one
 * (falls back to Direct on the scalar table, which by contract has no
 * packed path). Process-global, like set_kernel_arch().
 */
enum class GemmPath {
    Auto,
    Direct,
    Packed,
};

/** Install a path policy; returns the previous one. */
GemmPath set_gemm_path(GemmPath path);

/** The path policy gemm() consults right now. */
GemmPath current_gemm_path();

// ------------------------------------------- prepacked GEMM operands
// Weight-stationary call sites (LSTM steps share one W across all
// timesteps, conv layers share one W across the batch) pack the
// constant operand once and reuse the panels across every GEMM call.
// The panels are laid out for the arch selected at pack() time; the
// compute calls keep using that arch's microkernel, so a handle stays
// valid (and deterministic) even if the dispatch arch is flipped
// mid-flight. On the scalar table — or for shapes below the packing
// cutoff — the handle degrades to a contiguous row-major copy and the
// compute calls route through the ordinary dispatcher, preserving the
// scalar bit-exactness contract.

/** Opaque prepacked operand; movable, reusable across calls. */
class PackedGemm
{
  public:
    PackedGemm() = default;

    /** Logical rows of the (possibly transposed) operand. */
    int rows() const { return rows_; }
    /** Logical cols of the (possibly transposed) operand. */
    int cols() const { return cols_; }
    /** True when panel-packed (SIMD arch and above the cutoff). */
    bool packed() const { return panels_; }
    /** Arch whose panel layout (and microkernel) this handle uses. */
    KernelArch arch() const { return arch_; }

  private:
    friend PackedGemm pack_gemm_a(int m, int k, const float *a, int lda,
                                  bool a_transposed);
    friend PackedGemm pack_gemm_b(int k, int n, const float *b, int ldb,
                                  bool b_transposed);
    friend void gemm_packed_a(const PackedGemm &a, int n, const float *b,
                              int ldb, float *c, int ldc, bool accumulate);
    friend void gemm_packed_b(int m, const float *a, int lda,
                              const PackedGemm &b, float *c, int ldc,
                              bool accumulate);

    std::vector<float> buf_;
    int rows_ = 0;
    int cols_ = 0;
    KernelArch arch_ = KernelArch::Scalar;
    bool panels_ = false;
};

/**
 * Pack the A operand of C {m,n} = A {m,k} B: m x k panels, reusable
 * across gemm_packed_a calls. With @p a_transposed, @p a is stored
 * {k,m} with leading dimension @p lda (the gemm_tn A operand) and is
 * gathered into the same row-major panel layout.
 */
PackedGemm pack_gemm_a(int m, int k, const float *a, int lda,
                       bool a_transposed = false);

/**
 * Pack the B operand of C {m,n} = A B {k,n}. With @p b_transposed,
 * @p b is stored {n,k} with leading dimension @p ldb (the gemm_nt B
 * operand) and is gathered into the same column-panel layout.
 */
PackedGemm pack_gemm_b(int k, int n, const float *b, int ldb,
                       bool b_transposed = false);

/** C {a.rows(), n} = (or +=) packed A x B {a.cols(), n}. */
void gemm_packed_a(const PackedGemm &a, int n, const float *b, int ldb,
                   float *c, int ldc, bool accumulate = false);

/** C {m, b.cols()} = (or +=) A {m, b.rows()} x packed B. */
void gemm_packed_b(int m, const float *a, int lda, const PackedGemm &b,
                   float *c, int ldc, bool accumulate = false);

// ------------------------------------------------- fused elementwise

/** y += alpha * x. */
void axpy(size_t n, float alpha, const float *x, float *y);

/** y *= alpha. */
void scale(size_t n, float alpha, float *y);

/** y += x. */
void vadd(size_t n, const float *x, float *y);

/** y -= x. */
void vsub(size_t n, const float *x, float *y);

/** y[r, c] += bias[c] for every row of the {rows, cols} matrix. */
void add_bias_rows(int rows, int cols, const float *bias, float *y);

/** dst[c] += sum_r src[r, c] (rows processed in ascending order). */
void accumulate_rows(int rows, int cols, const float *src, float *dst);

/** In-place ReLU; mask[i] = 1 where the input was positive. */
void relu_forward(size_t n, float *y, uint8_t *mask);

/** Zero dy where the forward mask was zero. */
void relu_backward(size_t n, const uint8_t *mask, float *dy);

/**
 * Fused SGD step: grad = g + wd * w (+ momentum velocity update when
 * @p v is non-null and momentum != 0), then w -= lr * grad.
 */
void sgd_step(size_t n, float *w, const float *g, float *v, float lr,
              float wd, float momentum);

/** Fused FedProx step: adds mu * (w - anchor) to the gradient. */
void sgd_step_prox(size_t n, float *w, const float *g, float *v,
                   const float *anchor, float lr, float wd, float momentum,
                   float mu);

// ------------------------------- push-delta codec (update compression)
// The quantize/dequantize/fp16 family is bit-identical across ALL
// variants: max is an exact operation, and every conversion performs
// one round-to-nearest-even per element in both the scalar and the
// SIMD code paths (scalar nearbyintf == _mm256_cvtps_epi32 under the
// default rounding mode; the bit-manipulation fp16 conversion matches
// F16C). Inputs are expected finite; NaN elements quantize to -127
// deterministically on every variant.

/** max_i |x[i]| (0 for n == 0). Exact, order-independent. */
float absmax(size_t n, const float *x);

/** q[i] = clamp(rne(x[i] * inv_scale), -127, 127). */
void quantize_i8(size_t n, const float *x, float inv_scale, int8_t *q);

/** y[i] = q[i] * scale (exact int->float widen, one rounding). */
void dequantize_i8(size_t n, const int8_t *q, float scale, float *y);

/** h[i] = IEEE binary16 of x[i], round-to-nearest-even (subnormals,
 *  overflow-to-inf and NaN-quieting included). */
void fp16_encode(size_t n, const float *x, uint16_t *h);

/** y[i] = exact f32 widening of the binary16 h[i]. */
void fp16_decode(size_t n, const uint16_t *h, float *y);

/**
 * Indices of the k largest-magnitude elements of x, written to idx in
 * ascending index order. Ties break toward the lower index, so the
 * selection is a pure function of the input — arch-independent by
 * construction (comparison-only, no float rounding), like the training
 * gate kernels. Requires k <= n.
 */
void topk_select(size_t n, const float *x, size_t k, int32_t *idx);

// --------------------------------- f64 accumulation (FL aggregation)

/** acc[i] += alpha * x[i] into double accumulators. */
void axpy_f64(size_t n, double alpha, const float *x, double *acc);

/** acc[i] += alpha * (w[i] - u[i]) into double accumulators. */
void diff_axpy_f64(size_t n, double alpha, const float *w, const float *u,
                   double *acc);

/** out[i] = (float)acc[i]. */
void cast_f64_to_f32(size_t n, const double *acc, float *out);

/** w[i] = (float)(w[i] - tau * dir[i]). */
void apply_step_f64(size_t n, float *w, double tau, const double *dir);

// --------------------------------------------- LSTM fused gate math
// Fused across the four gates; z is the pre-activation
// {batch, 4*hidden} block laid out [i | f | g | o] and is activated in
// place. Arch-dispatched (transcendental parity tier): the scalar
// entries keep exact libm sigmoid/tanh and are the baseline; SIMD
// variants vectorize the transcendentals with a polynomial exp and
// agree within ~1e-6 relative — inside the 1e-4 tolerance class that
// training numerics already sit in through the GEMM tier. Per-variant
// bitwise determinism (the Sync == SemiAsync(S=0) contract) holds as
// for every kernel.

/**
 * Forward cell update: activate z in place, write the new cell state
 * into c and the hidden state into h (row stride @p h_stride supports
 * writing straight into the next timestep's packed [x|h] buffer).
 */
void lstm_gate_forward(int batch, int hidden, float *z, const float *cprev,
                       float *c, float *h, int h_stride);

/**
 * Backward cell update from the post-activation gates: fills dz
 * {batch, 4*hidden} and dc_prev {batch, hidden} from dh and dc.
 */
void lstm_gate_backward(int batch, int hidden, const float *z,
                        const float *cprev, const float *c, const float *dh,
                        const float *dc, float *dz, float *dc_prev);

/**
 * Inference-only variant of lstm_gate_forward (no backward follows, so
 * the activated z block is scratch).
 */
void lstm_gate_infer(int batch, int hidden, float *z, const float *cprev,
                     float *c, float *h, int h_stride);

// --------------------------------------------------- im2col / col2im
// Column buffer layout: col {channels * k * k, oh * ow}, row index
// (c * k + ky) * k + kx — the ascending (c, ky, kx) order the seed's
// direct convolution reduced in, so scalar conv-by-GEMM reproduces the
// seed's direct-loop bits. Out-of-range taps are written as zeros.

/** Spatial output size for one dimension. */
inline int
conv_out_size(int in, int k, int stride, int pad)
{
    return (in + 2 * pad - k) / stride + 1;
}

/** Unfold x {channels, ih, iw} into col (see layout above). */
void im2col(const float *x, int channels, int ih, int iw, int k, int stride,
            int pad, float *col);

/** Fold col back, accumulating overlapping taps into x. */
void col2im_add(const float *col, int channels, int ih, int iw, int k,
                int stride, int pad, float *x);

} // namespace autofl::kernels

#endif // AUTOFL_KERNELS_KERNELS_H
