/**
 * @file
 * NEON/ASIMD kernel variant (aarch64). ASIMD is baseline on aarch64,
 * so this TU needs no special compile flags — it self-guards on the
 * architecture macros and compiles to the null table everywhere else.
 * There is no runtime cpuid gate to clear: if the table exists, the
 * CPU runs it.
 *
 * Parity tiers match the AVX2 table: GEMM and the fused LSTM gates are
 * Tolerance (fused multiply-add / polynomial exp), elementwise and the
 * int8 codec are Exact — single-rounding mul/add in the scalar
 * operation sequence, never a fused vmla. The fp16 and f64 families
 * are left null (scalar fallback) until a native box can measure them.
 *
 * NaN note for the codec tier: AArch64 FCVTNS converts NaN to 0 where
 * x86 CVTPS2DQ gives INT_MIN, so quantize patches NaN lanes to -127
 * explicitly to keep the cross-variant bit contract.
 */
#include "kernels/kernel_table.h"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

namespace autofl::kernels {

namespace {

// ------------------------------------------------------------- GEMM

/** 4 x 8 register tile: rows i..i+3, columns j..j+7, full k sweep. */
inline void
micro_4x8(int k, const float *a, int lda, const float *b, int ldb, float *c,
          int ldc, bool accumulate)
{
    float32x4_t c00, c01, c10, c11, c20, c21, c30, c31;
    if (accumulate) {
        c00 = vld1q_f32(c + 0 * static_cast<size_t>(ldc));
        c01 = vld1q_f32(c + 0 * static_cast<size_t>(ldc) + 4);
        c10 = vld1q_f32(c + 1 * static_cast<size_t>(ldc));
        c11 = vld1q_f32(c + 1 * static_cast<size_t>(ldc) + 4);
        c20 = vld1q_f32(c + 2 * static_cast<size_t>(ldc));
        c21 = vld1q_f32(c + 2 * static_cast<size_t>(ldc) + 4);
        c30 = vld1q_f32(c + 3 * static_cast<size_t>(ldc));
        c31 = vld1q_f32(c + 3 * static_cast<size_t>(ldc) + 4);
    } else {
        c00 = c01 = c10 = c11 = c20 = c21 = c30 = c31 = vdupq_n_f32(0.0f);
    }
    for (int kk = 0; kk < k; ++kk) {
        const float32x4_t b0 = vld1q_f32(b + static_cast<size_t>(kk) * ldb);
        const float32x4_t b1 =
            vld1q_f32(b + static_cast<size_t>(kk) * ldb + 4);
        float32x4_t av = vdupq_n_f32(a[0 * static_cast<size_t>(lda) + kk]);
        c00 = vfmaq_f32(c00, b0, av);
        c01 = vfmaq_f32(c01, b1, av);
        av = vdupq_n_f32(a[1 * static_cast<size_t>(lda) + kk]);
        c10 = vfmaq_f32(c10, b0, av);
        c11 = vfmaq_f32(c11, b1, av);
        av = vdupq_n_f32(a[2 * static_cast<size_t>(lda) + kk]);
        c20 = vfmaq_f32(c20, b0, av);
        c21 = vfmaq_f32(c21, b1, av);
        av = vdupq_n_f32(a[3 * static_cast<size_t>(lda) + kk]);
        c30 = vfmaq_f32(c30, b0, av);
        c31 = vfmaq_f32(c31, b1, av);
    }
    vst1q_f32(c + 0 * static_cast<size_t>(ldc), c00);
    vst1q_f32(c + 0 * static_cast<size_t>(ldc) + 4, c01);
    vst1q_f32(c + 1 * static_cast<size_t>(ldc), c10);
    vst1q_f32(c + 1 * static_cast<size_t>(ldc) + 4, c11);
    vst1q_f32(c + 2 * static_cast<size_t>(ldc), c20);
    vst1q_f32(c + 2 * static_cast<size_t>(ldc) + 4, c21);
    vst1q_f32(c + 3 * static_cast<size_t>(ldc), c30);
    vst1q_f32(c + 3 * static_cast<size_t>(ldc) + 4, c31);
}

/** 1 x 4 tile for row and column tails; a element kk at a[kk*stride]. */
inline void
micro_1x4(int k, const float *a, int a_stride, const float *b, int ldb,
          float *c, bool accumulate)
{
    float32x4_t acc = accumulate ? vld1q_f32(c) : vdupq_n_f32(0.0f);
    for (int kk = 0; kk < k; ++kk) {
        const float32x4_t bv =
            vld1q_f32(b + static_cast<size_t>(kk) * ldb);
        const float32x4_t av =
            vdupq_n_f32(a[static_cast<size_t>(kk) * a_stride]);
        acc = vfmaq_f32(acc, bv, av);
    }
    vst1q_f32(c, acc);
}

/** Scalar column tail (j columns < 4 wide), register accumulator. */
void
tail_cols(int m, int j0, int n, int k, const float *a, int lda,
          int a_kstride, const float *b, int ldb, float *c, int ldc,
          bool accumulate)
{
    for (int i = 0; i < m; ++i) {
        for (int j = j0; j < n; ++j) {
            float acc = accumulate ? c[static_cast<size_t>(i) * ldc + j]
                                   : 0.0f;
            for (int kk = 0; kk < k; ++kk)
                acc += a[static_cast<size_t>(i) * lda +
                         static_cast<size_t>(kk) * a_kstride] *
                       b[static_cast<size_t>(kk) * ldb + j];
            c[static_cast<size_t>(i) * ldc + j] = acc;
        }
    }
}

void
neon_gemm(int m, int n, int k, const float *a, int lda, const float *b,
          int ldb, float *c, int ldc, bool accumulate)
{
    int j = 0;
    for (; j + 8 <= n; j += 8) {
        int i = 0;
        for (; i + 4 <= m; i += 4)
            micro_4x8(k, a + static_cast<size_t>(i) * lda, lda, b + j, ldb,
                      c + static_cast<size_t>(i) * ldc + j, ldc, accumulate);
        for (; i < m; ++i) {
            micro_1x4(k, a + static_cast<size_t>(i) * lda, 1, b + j, ldb,
                      c + static_cast<size_t>(i) * ldc + j, accumulate);
            micro_1x4(k, a + static_cast<size_t>(i) * lda, 1, b + j + 4,
                      ldb, c + static_cast<size_t>(i) * ldc + j + 4,
                      accumulate);
        }
    }
    for (; j + 4 <= n; j += 4) {
        for (int i = 0; i < m; ++i)
            micro_1x4(k, a + static_cast<size_t>(i) * lda, 1, b + j, ldb,
                      c + static_cast<size_t>(i) * ldc + j, accumulate);
    }
    if (j < n)
        tail_cols(m, j, n, k, a, lda, 1, b, ldb, c, ldc, accumulate);
}

/** gemm_tn: A stored {k, m}; element (i, kk) lives at a[kk * lda + i]. */
void
neon_gemm_tn(int m, int n, int k, const float *a, int lda, const float *b,
             int ldb, float *c, int ldc, bool accumulate)
{
    int j = 0;
    for (; j + 4 <= n; j += 4) {
        for (int i = 0; i < m; ++i)
            micro_1x4(k, a + i, lda, b + j, ldb,
                      c + static_cast<size_t>(i) * ldc + j, accumulate);
    }
    if (j < n)
        tail_cols(m, j, n, k, a, 1, lda, b, ldb, c, ldc, accumulate);
}

/** Horizontal sum, lane 0 to lane 3. */
inline float
hsum4(float32x4_t v)
{
    return ((vgetq_lane_f32(v, 0) + vgetq_lane_f32(v, 1)) +
            vgetq_lane_f32(v, 2)) +
           vgetq_lane_f32(v, 3);
}

void
neon_gemm_nt(int m, int n, int k, const float *a, int lda, const float *b,
             int ldb, float *c, int ldc, bool accumulate)
{
    const int k4 = k & ~3;
    for (int i = 0; i < m; ++i) {
        const float *arow = a + static_cast<size_t>(i) * lda;
        float *crow = c + static_cast<size_t>(i) * ldc;
        for (int j = 0; j < n; ++j) {
            const float *brow = b + static_cast<size_t>(j) * ldb;
            float32x4_t s = vdupq_n_f32(0.0f);
            for (int kk = 0; kk < k4; kk += 4)
                s = vfmaq_f32(s, vld1q_f32(arow + kk),
                              vld1q_f32(brow + kk));
            float d = hsum4(s);
            for (int kk = k4; kk < k; ++kk)
                d += arow[kk] * brow[kk];
            crow[j] = accumulate ? crow[j] + d : d;
        }
    }
}

/**
 * Packed-panel 8 x 8 microkernel: 16 q accumulators; A values come in
 * vector pairs so each FMA picks a lane (vfmaq_laneq) instead of a
 * separate broadcast.
 */
void
neon_micro_8x8(int kc, const float *ap, const float *bp, float *c, int ldc,
               bool accumulate)
{
    float32x4_t c00, c01, c10, c11, c20, c21, c30, c31, c40, c41, c50, c51,
        c60, c61, c70, c71;
    if (accumulate) {
        c00 = vld1q_f32(c + 0 * static_cast<size_t>(ldc));
        c01 = vld1q_f32(c + 0 * static_cast<size_t>(ldc) + 4);
        c10 = vld1q_f32(c + 1 * static_cast<size_t>(ldc));
        c11 = vld1q_f32(c + 1 * static_cast<size_t>(ldc) + 4);
        c20 = vld1q_f32(c + 2 * static_cast<size_t>(ldc));
        c21 = vld1q_f32(c + 2 * static_cast<size_t>(ldc) + 4);
        c30 = vld1q_f32(c + 3 * static_cast<size_t>(ldc));
        c31 = vld1q_f32(c + 3 * static_cast<size_t>(ldc) + 4);
        c40 = vld1q_f32(c + 4 * static_cast<size_t>(ldc));
        c41 = vld1q_f32(c + 4 * static_cast<size_t>(ldc) + 4);
        c50 = vld1q_f32(c + 5 * static_cast<size_t>(ldc));
        c51 = vld1q_f32(c + 5 * static_cast<size_t>(ldc) + 4);
        c60 = vld1q_f32(c + 6 * static_cast<size_t>(ldc));
        c61 = vld1q_f32(c + 6 * static_cast<size_t>(ldc) + 4);
        c70 = vld1q_f32(c + 7 * static_cast<size_t>(ldc));
        c71 = vld1q_f32(c + 7 * static_cast<size_t>(ldc) + 4);
    } else {
        c00 = c01 = c10 = c11 = c20 = c21 = c30 = c31 = c40 = c41 = c50 =
            c51 = c60 = c61 = c70 = c71 = vdupq_n_f32(0.0f);
    }
    for (int kk = 0; kk < kc; ++kk) {
        const float32x4_t b0 = vld1q_f32(bp);
        const float32x4_t b1 = vld1q_f32(bp + 4);
        bp += 8;
        const float32x4_t a03 = vld1q_f32(ap);
        const float32x4_t a47 = vld1q_f32(ap + 4);
        ap += 8;
        c00 = vfmaq_laneq_f32(c00, b0, a03, 0);
        c01 = vfmaq_laneq_f32(c01, b1, a03, 0);
        c10 = vfmaq_laneq_f32(c10, b0, a03, 1);
        c11 = vfmaq_laneq_f32(c11, b1, a03, 1);
        c20 = vfmaq_laneq_f32(c20, b0, a03, 2);
        c21 = vfmaq_laneq_f32(c21, b1, a03, 2);
        c30 = vfmaq_laneq_f32(c30, b0, a03, 3);
        c31 = vfmaq_laneq_f32(c31, b1, a03, 3);
        c40 = vfmaq_laneq_f32(c40, b0, a47, 0);
        c41 = vfmaq_laneq_f32(c41, b1, a47, 0);
        c50 = vfmaq_laneq_f32(c50, b0, a47, 1);
        c51 = vfmaq_laneq_f32(c51, b1, a47, 1);
        c60 = vfmaq_laneq_f32(c60, b0, a47, 2);
        c61 = vfmaq_laneq_f32(c61, b1, a47, 2);
        c70 = vfmaq_laneq_f32(c70, b0, a47, 3);
        c71 = vfmaq_laneq_f32(c71, b1, a47, 3);
    }
    vst1q_f32(c + 0 * static_cast<size_t>(ldc), c00);
    vst1q_f32(c + 0 * static_cast<size_t>(ldc) + 4, c01);
    vst1q_f32(c + 1 * static_cast<size_t>(ldc), c10);
    vst1q_f32(c + 1 * static_cast<size_t>(ldc) + 4, c11);
    vst1q_f32(c + 2 * static_cast<size_t>(ldc), c20);
    vst1q_f32(c + 2 * static_cast<size_t>(ldc) + 4, c21);
    vst1q_f32(c + 3 * static_cast<size_t>(ldc), c30);
    vst1q_f32(c + 3 * static_cast<size_t>(ldc) + 4, c31);
    vst1q_f32(c + 4 * static_cast<size_t>(ldc), c40);
    vst1q_f32(c + 4 * static_cast<size_t>(ldc) + 4, c41);
    vst1q_f32(c + 5 * static_cast<size_t>(ldc), c50);
    vst1q_f32(c + 5 * static_cast<size_t>(ldc) + 4, c51);
    vst1q_f32(c + 6 * static_cast<size_t>(ldc), c60);
    vst1q_f32(c + 6 * static_cast<size_t>(ldc) + 4, c61);
    vst1q_f32(c + 7 * static_cast<size_t>(ldc), c70);
    vst1q_f32(c + 7 * static_cast<size_t>(ldc) + 4, c71);
}

// --------------------------------------------- elementwise (no FMA)
// Separate vmulq/vaddq keep one rounding per operation in the scalar
// sequence — never vmla/vfma, which would fuse and break bit parity.

void
neon_axpy(size_t n, float alpha, const float *x, float *y)
{
    const float32x4_t va = vdupq_n_f32(alpha);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const float32x4_t prod = vmulq_f32(va, vld1q_f32(x + i));
        vst1q_f32(y + i, vaddq_f32(vld1q_f32(y + i), prod));
    }
    for (; i < n; ++i)
        y[i] += alpha * x[i];
}

void
neon_scale(size_t n, float alpha, float *y)
{
    const float32x4_t va = vdupq_n_f32(alpha);
    size_t i = 0;
    for (; i + 4 <= n; i += 4)
        vst1q_f32(y + i, vmulq_f32(vld1q_f32(y + i), va));
    for (; i < n; ++i)
        y[i] *= alpha;
}

void
neon_vadd(size_t n, const float *x, float *y)
{
    size_t i = 0;
    for (; i + 4 <= n; i += 4)
        vst1q_f32(y + i, vaddq_f32(vld1q_f32(y + i), vld1q_f32(x + i)));
    for (; i < n; ++i)
        y[i] += x[i];
}

void
neon_vsub(size_t n, const float *x, float *y)
{
    size_t i = 0;
    for (; i + 4 <= n; i += 4)
        vst1q_f32(y + i, vsubq_f32(vld1q_f32(y + i), vld1q_f32(x + i)));
    for (; i < n; ++i)
        y[i] -= x[i];
}

void
neon_add_bias_rows(int rows, int cols, const float *bias, float *y)
{
    for (int r = 0; r < rows; ++r)
        neon_vadd(static_cast<size_t>(cols), bias,
                  y + static_cast<size_t>(r) * cols);
}

void
neon_accumulate_rows(int rows, int cols, const float *src, float *dst)
{
    for (int r = 0; r < rows; ++r)
        neon_vadd(static_cast<size_t>(cols),
                  src + static_cast<size_t>(r) * cols, dst);
}

void
neon_relu_forward(size_t n, float *y, uint8_t *mask)
{
    const float32x4_t zero = vdupq_n_f32(0.0f);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const float32x4_t v = vld1q_f32(y + i);
        const uint32x4_t gt = vcgtq_f32(v, zero);
        vst1q_f32(y + i, vreinterpretq_f32_u32(
                             vandq_u32(vreinterpretq_u32_f32(v), gt)));
        mask[i + 0] = static_cast<uint8_t>(vgetq_lane_u32(gt, 0) & 1u);
        mask[i + 1] = static_cast<uint8_t>(vgetq_lane_u32(gt, 1) & 1u);
        mask[i + 2] = static_cast<uint8_t>(vgetq_lane_u32(gt, 2) & 1u);
        mask[i + 3] = static_cast<uint8_t>(vgetq_lane_u32(gt, 3) & 1u);
    }
    for (; i < n; ++i) {
        if (y[i] > 0.0f) {
            mask[i] = 1;
        } else {
            mask[i] = 0;
            y[i] = 0.0f;
        }
    }
}

void
neon_sgd_step(size_t n, float *w, const float *g, float *v, float lr,
              float wd, float momentum)
{
    const float32x4_t vwd = vdupq_n_f32(wd);
    const float32x4_t vlr = vdupq_n_f32(lr);
    const bool use_momentum = v != nullptr && momentum != 0.0f;
    const float32x4_t vmom = vdupq_n_f32(momentum);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const float32x4_t wv = vld1q_f32(w + i);
        float32x4_t grad =
            vaddq_f32(vld1q_f32(g + i), vmulq_f32(vwd, wv));
        if (use_momentum) {
            const float32x4_t vel =
                vaddq_f32(vmulq_f32(vmom, vld1q_f32(v + i)), grad);
            vst1q_f32(v + i, vel);
            grad = vel;
        }
        vst1q_f32(w + i, vsubq_f32(wv, vmulq_f32(vlr, grad)));
    }
    for (; i < n; ++i) {
        float grad = g[i] + wd * w[i];
        if (use_momentum) {
            v[i] = momentum * v[i] + grad;
            grad = v[i];
        }
        w[i] -= lr * grad;
    }
}

void
neon_sgd_step_prox(size_t n, float *w, const float *g, float *v,
                   const float *anchor, float lr, float wd, float momentum,
                   float mu)
{
    const float32x4_t vwd = vdupq_n_f32(wd);
    const float32x4_t vlr = vdupq_n_f32(lr);
    const float32x4_t vmu = vdupq_n_f32(mu);
    const bool use_momentum = v != nullptr && momentum != 0.0f;
    const float32x4_t vmom = vdupq_n_f32(momentum);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const float32x4_t wv = vld1q_f32(w + i);
        const float32x4_t base =
            vaddq_f32(vld1q_f32(g + i), vmulq_f32(vwd, wv));
        const float32x4_t prox =
            vmulq_f32(vmu, vsubq_f32(wv, vld1q_f32(anchor + i)));
        float32x4_t grad = vaddq_f32(base, prox);
        if (use_momentum) {
            const float32x4_t vel =
                vaddq_f32(vmulq_f32(vmom, vld1q_f32(v + i)), grad);
            vst1q_f32(v + i, vel);
            grad = vel;
        }
        vst1q_f32(w + i, vsubq_f32(wv, vmulq_f32(vlr, grad)));
    }
    for (; i < n; ++i) {
        float grad = g[i] + wd * w[i] + mu * (w[i] - anchor[i]);
        if (use_momentum) {
            v[i] = momentum * v[i] + grad;
            grad = v[i];
        }
        w[i] -= lr * grad;
    }
}

// ------------------------------------------- push-delta codec family

float
neon_absmax(size_t n, const float *x)
{
    float32x4_t acc = vdupq_n_f32(0.0f);
    size_t i = 0;
    for (; i + 4 <= n; i += 4)
        acc = vmaxq_f32(acc, vabsq_f32(vld1q_f32(x + i)));
    float m = vmaxvq_f32(acc);
    for (; i < n; ++i)
        m = __builtin_fmaxf(m, __builtin_fabsf(x[i]));
    return m;
}

/** rne(x * inv) clamped to [-127, 127]; NaN lanes patched to -127. */
inline int32x4_t
quant_lanes(const float *x, float32x4_t vinv, int32x4_t lo, int32x4_t hi)
{
    const float32x4_t prod = vmulq_f32(vld1q_f32(x), vinv);
    int32x4_t q = vcvtnq_s32_f32(prod);  // RNE; NaN -> 0 on AArch64.
    q = vmaxq_s32(q, lo);
    q = vminq_s32(q, hi);
    const uint32x4_t ordered = vceqq_f32(prod, prod);
    return vbslq_s32(ordered, q, lo);
}

void
neon_quantize_i8(size_t n, const float *x, float inv_scale, int8_t *q)
{
    const float32x4_t vinv = vdupq_n_f32(inv_scale);
    const int32x4_t lo = vdupq_n_s32(-127);
    const int32x4_t hi = vdupq_n_s32(127);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const int32x4_t a = quant_lanes(x + i, vinv, lo, hi);
        const int32x4_t b = quant_lanes(x + i + 4, vinv, lo, hi);
        const int16x8_t w = vcombine_s16(vqmovn_s32(a), vqmovn_s32(b));
        vst1_s8(q + i, vqmovn_s16(w));
    }
    for (; i < n; ++i) {
        float r = __builtin_nearbyintf(x[i] * inv_scale);
        r = __builtin_fminf(__builtin_fmaxf(r, -127.0f), 127.0f);
        q[i] = static_cast<int8_t>(r);
    }
}

void
neon_dequantize_i8(size_t n, const int8_t *q, float scale, float *y)
{
    const float32x4_t vs = vdupq_n_f32(scale);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const int16x8_t w = vmovl_s8(vld1_s8(q + i));
        const float32x4_t f0 = vcvtq_f32_s32(vmovl_s16(vget_low_s16(w)));
        const float32x4_t f1 = vcvtq_f32_s32(vmovl_s16(vget_high_s16(w)));
        vst1q_f32(y + i, vmulq_f32(f0, vs));
        vst1q_f32(y + i + 4, vmulq_f32(f1, vs));
    }
    for (; i < n; ++i)
        y[i] = static_cast<float>(q[i]) * scale;
}

// -------------------------------------------- fused LSTM gate family

/**
 * Vectorized exp — the same Cephes-style range reduction + degree-5
 * polynomial as the x86 variants, 4 lanes (~1e-7 relative on the
 * gate-activation range). Plain mul/add; the family is Tolerance-tier
 * regardless, but this keeps the polynomial bit-stable per variant.
 */
inline float32x4_t
exp_neon(float32x4_t x)
{
    x = vminq_f32(x, vdupq_n_f32(88.3762626647949f));
    x = vmaxq_f32(x, vdupq_n_f32(-88.3762626647949f));
    float32x4_t fx =
        vaddq_f32(vmulq_f32(x, vdupq_n_f32(1.44269504088896341f)),
                  vdupq_n_f32(0.5f));
    fx = vrndmq_f32(fx);  // floor (round toward minus infinity)
    x = vsubq_f32(x, vmulq_f32(fx, vdupq_n_f32(0.693359375f)));
    x = vsubq_f32(x, vmulq_f32(fx, vdupq_n_f32(-2.12194440e-4f)));
    const float32x4_t x2 = vmulq_f32(x, x);
    float32x4_t y = vdupq_n_f32(1.9875691500e-4f);
    y = vaddq_f32(vmulq_f32(y, x), vdupq_n_f32(1.3981999507e-3f));
    y = vaddq_f32(vmulq_f32(y, x), vdupq_n_f32(8.3334519073e-3f));
    y = vaddq_f32(vmulq_f32(y, x), vdupq_n_f32(4.1665795894e-2f));
    y = vaddq_f32(vmulq_f32(y, x), vdupq_n_f32(1.6666665459e-1f));
    y = vaddq_f32(vmulq_f32(y, x), vdupq_n_f32(5.0000001201e-1f));
    y = vaddq_f32(vmulq_f32(y, x2), x);
    y = vaddq_f32(y, vdupq_n_f32(1.0f));
    int32x4_t pow2 = vcvtq_s32_f32(fx);  // truncate; fx is integral
    pow2 = vaddq_s32(pow2, vdupq_n_s32(0x7f));
    pow2 = vshlq_n_s32(pow2, 23);
    return vmulq_f32(y, vreinterpretq_f32_s32(pow2));
}

inline float32x4_t
sigmoid_neon(float32x4_t x)
{
    const float32x4_t one = vdupq_n_f32(1.0f);
    const float32x4_t e = exp_neon(vsubq_f32(vdupq_n_f32(0.0f), x));
    return vdivq_f32(one, vaddq_f32(one, e));
}

inline float32x4_t
tanh_neon(float32x4_t x)
{
    // tanh(x) = 2 sigmoid(2x) - 1.
    const float32x4_t two = vdupq_n_f32(2.0f);
    const float32x4_t s = sigmoid_neon(vmulq_f32(two, x));
    return vsubq_f32(vmulq_f32(two, s), vdupq_n_f32(1.0f));
}

void
neon_lstm_gate(int batch, int hidden, float *z, const float *cprev,
               float *c, float *h, int h_stride)
{
    const int h4 = 4 * hidden;
    const int vec_end = hidden - hidden % 4;
    for (int n = 0; n < batch; ++n) {
        float *zrow = z + static_cast<size_t>(n) * h4;
        const float *cp = cprev + static_cast<size_t>(n) * hidden;
        float *cn = c + static_cast<size_t>(n) * hidden;
        float *hn = h + static_cast<size_t>(n) * h_stride;
        int j = 0;
        for (; j < vec_end; j += 4) {
            const float32x4_t zi = sigmoid_neon(vld1q_f32(zrow + j));
            const float32x4_t zf =
                sigmoid_neon(vld1q_f32(zrow + hidden + j));
            const float32x4_t zg =
                tanh_neon(vld1q_f32(zrow + 2 * hidden + j));
            const float32x4_t zo =
                sigmoid_neon(vld1q_f32(zrow + 3 * hidden + j));
            vst1q_f32(zrow + j, zi);
            vst1q_f32(zrow + hidden + j, zf);
            vst1q_f32(zrow + 2 * hidden + j, zg);
            vst1q_f32(zrow + 3 * hidden + j, zo);
            const float32x4_t cv =
                vaddq_f32(vmulq_f32(zf, vld1q_f32(cp + j)),
                          vmulq_f32(zi, zg));
            vst1q_f32(cn + j, cv);
            vst1q_f32(hn + j, vmulq_f32(zo, tanh_neon(cv)));
        }
        for (; j < hidden; ++j) {
            const float zi = 1.0f / (1.0f + __builtin_expf(-zrow[j]));
            const float zf =
                1.0f / (1.0f + __builtin_expf(-zrow[hidden + j]));
            const float zg = __builtin_tanhf(zrow[2 * hidden + j]);
            const float zo =
                1.0f / (1.0f + __builtin_expf(-zrow[3 * hidden + j]));
            zrow[j] = zi;
            zrow[hidden + j] = zf;
            zrow[2 * hidden + j] = zg;
            zrow[3 * hidden + j] = zo;
            const float cv = zf * cp[j] + zi * zg;
            cn[j] = cv;
            hn[j] = zo * __builtin_tanhf(cv);
        }
    }
}

void
neon_lstm_gate_backward(int batch, int hidden, const float *z,
                        const float *cprev, const float *c, const float *dh,
                        const float *dc, float *dz, float *dc_prev)
{
    const int h4 = 4 * hidden;
    const int vec_end = hidden - hidden % 4;
    const float32x4_t one = vdupq_n_f32(1.0f);
    for (int n = 0; n < batch; ++n) {
        const float *zrow = z + static_cast<size_t>(n) * h4;
        const float *cp = cprev + static_cast<size_t>(n) * hidden;
        const float *cn = c + static_cast<size_t>(n) * hidden;
        const float *dhn = dh + static_cast<size_t>(n) * hidden;
        const float *dcn = dc + static_cast<size_t>(n) * hidden;
        float *dzrow = dz + static_cast<size_t>(n) * h4;
        float *dcp = dc_prev + static_cast<size_t>(n) * hidden;
        int j = 0;
        for (; j < vec_end; j += 4) {
            const float32x4_t i_g = vld1q_f32(zrow + j);
            const float32x4_t f_g = vld1q_f32(zrow + hidden + j);
            const float32x4_t g_g = vld1q_f32(zrow + 2 * hidden + j);
            const float32x4_t o_g = vld1q_f32(zrow + 3 * hidden + j);
            const float32x4_t tc = tanh_neon(vld1q_f32(cn + j));
            const float32x4_t dht = vld1q_f32(dhn + j);

            const float32x4_t dtc = vsubq_f32(one, vmulq_f32(tc, tc));
            const float32x4_t dct =
                vaddq_f32(vmulq_f32(vmulq_f32(dht, o_g), dtc),
                          vld1q_f32(dcn + j));
            const float32x4_t d_o = vmulq_f32(dht, tc);
            const float32x4_t d_i = vmulq_f32(dct, g_g);
            const float32x4_t d_g = vmulq_f32(dct, i_g);
            const float32x4_t d_f = vmulq_f32(dct, vld1q_f32(cp + j));
            vst1q_f32(dcp + j, vmulq_f32(dct, f_g));

            vst1q_f32(dzrow + j, vmulq_f32(vmulq_f32(d_i, i_g),
                                           vsubq_f32(one, i_g)));
            vst1q_f32(dzrow + hidden + j,
                      vmulq_f32(vmulq_f32(d_f, f_g), vsubq_f32(one, f_g)));
            vst1q_f32(dzrow + 2 * hidden + j,
                      vmulq_f32(d_g,
                                vsubq_f32(one, vmulq_f32(g_g, g_g))));
            vst1q_f32(dzrow + 3 * hidden + j,
                      vmulq_f32(vmulq_f32(d_o, o_g), vsubq_f32(one, o_g)));
        }
        for (; j < hidden; ++j) {
            const float i_g = zrow[j];
            const float f_g = zrow[hidden + j];
            const float g_g = zrow[2 * hidden + j];
            const float o_g = zrow[3 * hidden + j];
            const float tc = __builtin_tanhf(cn[j]);
            const float dht = dhn[j];

            const float dct = dht * o_g * (1.0f - tc * tc) + dcn[j];
            const float d_o = dht * tc;
            const float d_i = dct * g_g;
            const float d_g = dct * i_g;
            const float d_f = dct * cp[j];
            dcp[j] = dct * f_g;

            dzrow[j] = d_i * i_g * (1.0f - i_g);
            dzrow[hidden + j] = d_f * f_g * (1.0f - f_g);
            dzrow[2 * hidden + j] = d_g * (1.0f - g_g * g_g);
            dzrow[3 * hidden + j] = d_o * o_g * (1.0f - o_g);
        }
    }
}

} // namespace

const KernelTable *
neon_kernel_table()
{
    static const KernelTable t = [] {
        KernelTable k;
        k.gemm = neon_gemm;
        k.gemm_tn = neon_gemm_tn;
        k.gemm_nt = neon_gemm_nt;
        k.gemm_micro = neon_micro_8x8;
        k.gemm_mr = 8;
        k.gemm_nr = 8;
        k.gemm_mc = 96;   // A block 96 x 256 = 96 KB, L2-resident.
        k.gemm_kc = 256;  // B panel 256 x 8 = 8 KB, L1-resident.
        k.gemm_nc = 512;  // B block 256 x 512 = 512 KB, LLC-resident.
        k.axpy = neon_axpy;
        k.scale = neon_scale;
        k.vadd = neon_vadd;
        k.vsub = neon_vsub;
        k.add_bias_rows = neon_add_bias_rows;
        k.accumulate_rows = neon_accumulate_rows;
        k.relu_forward = neon_relu_forward;
        k.sgd_step = neon_sgd_step;
        k.sgd_step_prox = neon_sgd_step_prox;
        k.absmax = neon_absmax;
        k.quantize_i8 = neon_quantize_i8;
        k.dequantize_i8 = neon_dequantize_i8;
        // fp16 + f64 families and relu_backward stay null (scalar
        // fallback) — correctness first until a native box measures.
        k.lstm_gate_forward = neon_lstm_gate;
        k.lstm_gate_infer = neon_lstm_gate;
        k.lstm_gate_backward = neon_lstm_gate_backward;
        k.parity_tier = KernelParity{
            .gemm = ParityTier::Tolerance,
            .elementwise = ParityTier::Exact,
            .codec = ParityTier::Exact,
            .transcendental = ParityTier::Tolerance,
        };
        return k;
    }();
    return &t;
}

} // namespace autofl::kernels

#else // !(__aarch64__ && __ARM_NEON)

namespace autofl::kernels {

const KernelTable *
neon_kernel_table()
{
    return nullptr;
}

} // namespace autofl::kernels

#endif
