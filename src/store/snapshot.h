/**
 * @file
 * On-disk snapshot format: the versioned, 64-byte-aligned, arch-
 * independent model artifact shared by the checkpoint writer (training
 * side) and the mmap reader (serving side).
 *
 * An artifact is a fixed 64-byte header — magic, format version, commit
 * epoch, training round, weight count, model topology hash, shard
 * count, payload offset, and two checksums — followed by the shard
 * table (one {begin, end} range per store shard) and, at a 64-byte-
 * aligned offset, the flat f32 weight payload as IEEE-754 bit images
 * (the same convention as the wire format in net/wire.h, so weights
 * survive the disk bit-exact and the determinism contract extends
 * across restarts). Integers are little-endian; the layout is defined
 * by bytes, never by host struct packing.
 *
 * Parsing never throws, never over-reads and never allocates from a
 * length it has not validated: every malformed artifact — truncated
 * file, stray magic, version from the future, header or payload
 * corruption, a shard table that does not tile the weight vector —
 * maps to a typed SnapshotStatus, so a damaged disk produces an error,
 * not a crash. The payload checksum covers every byte after the
 * header, which is what lets the corruption fuzz sweep promise that
 * any single flipped bit is detected.
 *
 * Durability protocol (writer side): serialize to a temp file in the
 * artifact's directory, fsync, rename() over the final name, fsync the
 * directory. rename() is atomic on POSIX, so a crash at any instant
 * leaves either the previous artifact or the new one — never a torn
 * file. Readers ignore temp names by construction (they open exact
 * paths).
 */
#ifndef AUTOFL_STORE_SNAPSHOT_H
#define AUTOFL_STORE_SNAPSHOT_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace autofl::store {

/** Typed outcome of reading bytes (or a file) as a snapshot. */
enum class SnapshotStatus {
    Ok,             ///< A fully valid artifact.
    IoError,        ///< The file could not be opened/read/written.
    Truncated,      ///< Shorter than its declared layout.
    BadMagic,       ///< First four bytes are not the artifact magic.
    BadVersion,     ///< Format version this reader does not speak.
    BadHeader,      ///< Header fields are inconsistent with the layout.
    Oversized,      ///< Declared weight count exceeds kMaxSnapshotFloats.
    BadChecksum,    ///< Header or payload bytes fail their checksum.
    BadShardTable,  ///< Shard ranges do not tile [0, dim) in order.
    BadTopology,    ///< Artifact was written for a different model.
};

/** Display name ("Ok", "BadChecksum", ...). */
const char *snapshot_status_name(SnapshotStatus s);

constexpr uint32_t kSnapshotMagic = 0x41465331u;  // "AFS1" (AutoFL Snap).
constexpr uint16_t kSnapshotVersion = 1;
constexpr size_t kSnapshotHeaderBytes = 64;

/** Alignment of the weight payload's file offset. A page-aligned mmap
 *  base plus a 64-byte-aligned offset gives cache-line-aligned weights
 *  in memory — the same guarantee Tensor storage makes. */
constexpr size_t kSnapshotAlign = 64;

/**
 * Weight-count ceiling: large enough for any model this repo trains
 * (weights are ~1e5 floats), small enough that a corrupt or hostile
 * dim field cannot drive a multi-gigabyte allocation — the same
 * reasoning as net/wire.h's kMaxPayloadBytes.
 */
constexpr uint64_t kMaxSnapshotFloats = 64ull << 20;

/** Shard-count ceiling (a store never stripes finer than its floats). */
constexpr uint32_t kMaxSnapshotShards = 1u << 16;

/** Fixed header fields of one artifact (see the file comment). */
struct SnapshotMeta
{
    uint64_t epoch = 0;   ///< Store commit clock at the checkpoint.
    uint64_t round = 0;   ///< Last fully retired training round.
    uint64_t dim = 0;     ///< Flat weight-vector length (f32 count).
    uint64_t topology_hash = 0;  ///< model_topology_hash() of the job.
    uint32_t shard_count = 0;    ///< Store lock stripes at write time.
};

/** One shard's flat-index range [begin, end). */
struct ShardRange
{
    uint64_t begin = 0;
    uint64_t end = 0;
};

/**
 * Stable identity of the model a snapshot belongs to: FNV-1a over the
 * workload name and the flat dimension. Restoring an artifact into a
 * different architecture is rejected as BadTopology instead of
 * silently scattering weights into the wrong layers.
 */
uint64_t model_topology_hash(const std::string &workload, uint64_t dim);

/**
 * The store's contiguous shard split (base size dim / shards, first
 * dim % shards stripes one element larger) — the same layout
 * ShardedStore uses, recorded in the artifact so a future multi-node
 * restore can hand each server node its own ranges.
 */
std::vector<ShardRange> even_shard_ranges(uint64_t dim, uint32_t shards);

/** Byte length serialize_snapshot would produce. */
size_t snapshot_bytes(const SnapshotMeta &meta);

/**
 * Serialize one artifact (header + shard table + aligned payload).
 * meta.dim/shard_count must match the actual vector sizes (asserted).
 */
std::vector<uint8_t> serialize_snapshot(const SnapshotMeta &meta,
                                        const std::vector<ShardRange> &shards,
                                        const float *weights);

/**
 * Zero-copy view into a validated artifact buffer. `weights` points
 * into the caller's buffer, which must outlive the view.
 */
struct SnapshotView
{
    SnapshotMeta meta;
    std::vector<ShardRange> shards;
    const float *weights = nullptr;
};

/**
 * Validate @p data as one complete artifact. On Ok, @p out views into
 * the buffer. @p expected_topology, when non-zero, must match the
 * header's hash (BadTopology otherwise). Any other status leaves
 * @p out untouched; no status ever throws.
 */
SnapshotStatus parse_snapshot(const uint8_t *data, size_t len,
                              SnapshotView *out,
                              uint64_t expected_topology = 0);

/** An artifact read into owned memory (the training-resume path). */
struct SnapshotData
{
    SnapshotMeta meta;
    std::vector<ShardRange> shards;
    std::vector<float> weights;
};

/**
 * Read and validate the artifact at @p path into owned memory. Every
 * failure — missing file, short read, any corruption — is a typed
 * status, never a crash or a throw.
 */
SnapshotStatus read_snapshot_file(const std::string &path, SnapshotData *out,
                                  uint64_t expected_topology = 0);

/**
 * Durably write one artifact: serialize, write to "<path>.tmp.<pid>",
 * fsync, atomically rename() onto @p path, fsync the directory. On any
 * IO failure the temp file is unlinked and IoError returned; @p path
 * is only ever the previous artifact or a complete new one.
 */
SnapshotStatus write_snapshot_file(const std::string &path,
                                   const SnapshotMeta &meta,
                                   const std::vector<ShardRange> &shards,
                                   const float *weights);

} // namespace autofl::store

#endif // AUTOFL_STORE_SNAPSHOT_H
