#include "store/checkpoint_writer.h"

#include <cstdio>

#include <sys/stat.h>
#include <unistd.h>

namespace autofl::store {

CheckpointWriter::CheckpointWriter(std::string dir, uint64_t topology_hash,
                                   uint32_t shard_count)
    : dir_(std::move(dir)), topology_hash_(topology_hash),
      shard_count_(shard_count)
{
    // Best-effort create; a missing/unwritable directory surfaces as
    // IoError in stats() on the first write, never as a throw.
    ::mkdir(dir_.c_str(), 0755);
    thread_ = std::thread([this] { run(); });
}

CheckpointWriter::~CheckpointWriter()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
}

std::string CheckpointWriter::latest_path() const
{
    return dir_ + "/latest.snap";
}

std::string CheckpointWriter::artifact_path(uint64_t round) const
{
    char name[64];
    std::snprintf(name, sizeof name, "/model-r%llu.snap",
                  static_cast<unsigned long long>(round));
    return dir_ + name;
}

void CheckpointWriter::request(
    uint64_t round, uint64_t epoch,
    std::shared_ptr<const std::vector<float>> weights)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (stop_)
            return;
        // Single pending slot: a newer checkpoint supersedes an
        // unstarted older one. The slow-disk failure mode is "fewer
        // artifacts", never "training waits".
        if (has_pending_)
            ++stats_.dropped;
        pending_ = Request{round, epoch, std::move(weights)};
        has_pending_ = true;
        ++stats_.requested;
    }
    cv_.notify_one();
}

void CheckpointWriter::flush()
{
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [this] { return !has_pending_ && !writing_; });
}

CheckpointStats CheckpointWriter::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
}

void CheckpointWriter::run()
{
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        cv_.wait(lk, [this] { return has_pending_ || stop_; });
        // Drain-on-shutdown: the destructor's stop still writes the
        // last accepted checkpoint, so "request then destroy" (the
        // end of every run) durably persists the final state.
        if (!has_pending_ && stop_)
            return;
        const Request req = std::move(pending_);
        has_pending_ = false;
        writing_ = true;
        lk.unlock();  // IO runs without the lock: request() stays wait-free.
        write_one(req);
        lk.lock();
        writing_ = false;
        done_cv_.notify_all();
    }
}

void CheckpointWriter::write_one(const Request &req)
{
    SnapshotMeta meta;
    meta.epoch = req.epoch;
    meta.round = req.round;
    meta.dim = req.weights->size();
    meta.topology_hash = topology_hash_;
    meta.shard_count = shard_count_;

    const std::string path = artifact_path(req.round);
    SnapshotStatus st = write_snapshot_file(
        path, meta, even_shard_ranges(meta.dim, shard_count_),
        req.weights->data());

    if (st == SnapshotStatus::Ok) {
        // Repoint latest.snap atomically: hard-link the new artifact
        // under a temp name, rename over latest. Either step failing
        // (or a crash between them) leaves latest pointing at some
        // complete artifact — never a torn one.
        const std::string latest = latest_path();
        const std::string tmp = latest + ".tmp";
        ::unlink(tmp.c_str());
        if (::link(path.c_str(), tmp.c_str()) != 0 ||
            ::rename(tmp.c_str(), latest.c_str()) != 0) {
            ::unlink(tmp.c_str());
            st = SnapshotStatus::IoError;
        }
    }

    std::lock_guard<std::mutex> lk(mu_);
    stats_.last_status = st;
    if (st == SnapshotStatus::Ok)
        ++stats_.written;
}

} // namespace autofl::store
