#include "store/checkpoint_writer.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

namespace autofl::store {

namespace {

/** "model-r<N>.snap" → N; false for any other file name. */
bool
artifact_file_round(const char *fname, uint64_t *round)
{
    static constexpr const char kPrefix[] = "model-r";
    static constexpr const char kSuffix[] = ".snap";
    const size_t len = std::strlen(fname);
    const size_t plen = sizeof(kPrefix) - 1;
    const size_t slen = sizeof(kSuffix) - 1;
    if (len <= plen + slen || std::strncmp(fname, kPrefix, plen) != 0 ||
        std::strcmp(fname + len - slen, kSuffix) != 0)
        return false;
    uint64_t r = 0;
    for (size_t i = plen; i < len - slen; ++i) {
        if (fname[i] < '0' || fname[i] > '9')
            return false;
        r = r * 10 + static_cast<uint64_t>(fname[i] - '0');
    }
    *round = r;
    return true;
}

} // namespace

CheckpointWriter::CheckpointWriter(std::string dir, uint64_t topology_hash,
                                   uint32_t shard_count,
                                   RetentionPolicy retention)
    : dir_(std::move(dir)), topology_hash_(topology_hash),
      shard_count_(shard_count), retention_(std::move(retention))
{
    // Best-effort create; a missing/unwritable directory surfaces as
    // IoError in stats() on the first write, never as a throw.
    ::mkdir(dir_.c_str(), 0755);
    std::sort(retention_.pinned.begin(), retention_.pinned.end());

    // Adopt artifacts a previous run left behind: resumed training must
    // count them toward keep-last-K, or a long stop/start cycle still
    // accumulates unboundedly.
    if (DIR *d = ::opendir(dir_.c_str())) {
        while (struct dirent *e = ::readdir(d)) {
            uint64_t r = 0;
            if (artifact_file_round(e->d_name, &r))
                kept_rounds_.push_back(r);
        }
        ::closedir(d);
        std::sort(kept_rounds_.begin(), kept_rounds_.end());
        stats_.deleted += apply_retention();  // Pre-thread: no lock needed.
    }
    thread_ = std::thread([this] { run(); });
}

CheckpointWriter::~CheckpointWriter()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
}

std::string CheckpointWriter::latest_path() const
{
    return dir_ + "/latest.snap";
}

std::string CheckpointWriter::artifact_path(uint64_t round) const
{
    char name[64];
    std::snprintf(name, sizeof name, "/model-r%llu.snap",
                  static_cast<unsigned long long>(round));
    return dir_ + name;
}

void CheckpointWriter::request(
    uint64_t round, uint64_t epoch,
    std::shared_ptr<const std::vector<float>> weights)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (stop_)
            return;
        // Single pending slot: a newer checkpoint supersedes an
        // unstarted older one. The slow-disk failure mode is "fewer
        // artifacts", never "training waits".
        if (has_pending_)
            ++stats_.dropped;
        pending_ = Request{round, epoch, std::move(weights)};
        has_pending_ = true;
        ++stats_.requested;
    }
    cv_.notify_one();
}

void CheckpointWriter::flush()
{
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [this] { return !has_pending_ && !writing_; });
}

CheckpointStats CheckpointWriter::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
}

void CheckpointWriter::run()
{
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        cv_.wait(lk, [this] { return has_pending_ || stop_; });
        // Drain-on-shutdown: the destructor's stop still writes the
        // last accepted checkpoint, so "request then destroy" (the
        // end of every run) durably persists the final state.
        if (!has_pending_ && stop_)
            return;
        const Request req = std::move(pending_);
        has_pending_ = false;
        writing_ = true;
        lk.unlock();  // IO runs without the lock: request() stays wait-free.
        write_one(req);
        lk.lock();
        writing_ = false;
        done_cv_.notify_all();
    }
}

void CheckpointWriter::write_one(const Request &req)
{
    SnapshotMeta meta;
    meta.epoch = req.epoch;
    meta.round = req.round;
    meta.dim = req.weights->size();
    meta.topology_hash = topology_hash_;
    meta.shard_count = shard_count_;

    const std::string path = artifact_path(req.round);
    SnapshotStatus st = write_snapshot_file(
        path, meta, even_shard_ranges(meta.dim, shard_count_),
        req.weights->data());

    if (st == SnapshotStatus::Ok) {
        // Repoint latest.snap atomically: hard-link the new artifact
        // under a temp name, rename over latest. Either step failing
        // (or a crash between them) leaves latest pointing at some
        // complete artifact — never a torn one.
        const std::string latest = latest_path();
        const std::string tmp = latest + ".tmp";
        ::unlink(tmp.c_str());
        if (::link(path.c_str(), tmp.c_str()) != 0 ||
            ::rename(tmp.c_str(), latest.c_str()) != 0) {
            ::unlink(tmp.c_str());
            st = SnapshotStatus::IoError;
        }
    }

    uint64_t deleted = 0;
    if (st == SnapshotStatus::Ok) {
        kept_rounds_.insert(
            std::upper_bound(kept_rounds_.begin(), kept_rounds_.end(),
                             req.round),
            req.round);
        deleted = apply_retention();
    }

    std::lock_guard<std::mutex> lk(mu_);
    stats_.last_status = st;
    stats_.deleted += deleted;
    if (st == SnapshotStatus::Ok)
        ++stats_.written;
}

uint64_t CheckpointWriter::apply_retention()
{
    if (retention_.keep_last <= 0)
        return 0;

    // Pins are kept *on top of* the newest-K window: count only
    // unpinned artifacts against keep_last, delete the oldest unpinned
    // ones beyond it. latest.snap hard-links the newest round, which is
    // always inside the window, so deletions never invalidate it.
    size_t unpinned = 0;
    for (uint64_t r : kept_rounds_)
        if (!std::binary_search(retention_.pinned.begin(),
                                retention_.pinned.end(), r))
            ++unpinned;
    if (unpinned <= static_cast<size_t>(retention_.keep_last))
        return 0;

    uint64_t deleted = 0;
    size_t excess = unpinned - static_cast<size_t>(retention_.keep_last);
    std::vector<uint64_t> survivors;
    survivors.reserve(kept_rounds_.size());
    for (uint64_t r : kept_rounds_) {
        const bool pinned = std::binary_search(retention_.pinned.begin(),
                                               retention_.pinned.end(), r);
        if (excess > 0 && !pinned &&
            ::unlink(artifact_path(r).c_str()) == 0) {
            --excess;
            ++deleted;
        } else {
            survivors.push_back(r);
        }
    }
    kept_rounds_ = std::move(survivors);
    return deleted;
}

} // namespace autofl::store
