/**
 * @file
 * MappedSnapshot: a validated artifact mapped read-only into the
 * process with mmap + MADV_WILLNEED — the serving-plane load path.
 *
 * Unlike read_snapshot_file (which copies weights into owned memory
 * for training resume), an mmap load never materialises a private
 * copy: the page cache backs the weights, multiple serving processes
 * opening the same artifact share one set of physical pages, and
 * cold-start cost is the page-in of the file rather than replaying a
 * training run to rebuild a store. MADV_WILLNEED starts that page-in
 * at open() so the first prediction does not eat the fault storm.
 *
 * Validation is the full parse_snapshot pass — header, shard table
 * and payload checksum — over the mapped bytes before the object is
 * returned, so a MappedSnapshot in hand is always a complete, intact
 * artifact. The payload offset is 64-byte aligned in the file and the
 * map is page-aligned, so weights() is cache-line aligned in memory.
 */
#ifndef AUTOFL_STORE_MAPPED_SNAPSHOT_H
#define AUTOFL_STORE_MAPPED_SNAPSHOT_H

#include <memory>
#include <string>

#include "store/snapshot.h"

namespace autofl::store {

class MappedSnapshot
{
  public:
    /**
     * Map and validate the artifact at @p path. On any failure @p st
     * (when non-null) receives the typed status and nullptr is
     * returned — a missing or corrupt artifact never crashes or
     * throws. @p expected_topology as in parse_snapshot.
     */
    static std::shared_ptr<const MappedSnapshot>
    open(const std::string &path, SnapshotStatus *st = nullptr,
         uint64_t expected_topology = 0);

    ~MappedSnapshot();
    MappedSnapshot(const MappedSnapshot &) = delete;
    MappedSnapshot &operator=(const MappedSnapshot &) = delete;

    const SnapshotMeta &meta() const { return meta_; }
    /** Cache-line-aligned, page-cache-backed weight payload. */
    const float *weights() const { return weights_; }
    size_t dim() const { return static_cast<size_t>(meta_.dim); }

  private:
    MappedSnapshot() = default;

    void *map_ = nullptr;
    size_t map_len_ = 0;
    SnapshotMeta meta_;
    const float *weights_ = nullptr;
};

} // namespace autofl::store

#endif // AUTOFL_STORE_MAPPED_SNAPSHOT_H
