/**
 * @file
 * CheckpointWriter: asynchronous, double-buffered artifact writer for
 * the training commit path.
 *
 * The commit path (AsyncAggregator striped commits / RoundPipeline
 * retirement) must never block on disk, so request() only hands the
 * writer a refcounted weight snapshot and returns. A background
 * thread serialises and durably writes it (temp + fsync + atomic
 * rename, see write_snapshot_file). The hand-off is double-buffered
 * with a single pending slot: if a new checkpoint arrives while the
 * previous one is still being written, the *unstarted* pending one is
 * replaced (and counted in stats().dropped) — the artifact on disk is
 * always some complete recent state, and a slow disk degrades
 * checkpoint frequency, never training throughput.
 *
 * Each checkpoint is written to "model-r<round>.snap" in the
 * configured directory, then "latest.snap" is atomically repointed at
 * it (link + rename), so a resuming process can always open
 * "latest.snap" and crash at any instant leaves both names valid.
 *
 * IO failures are recorded in stats().last_status — training never
 * throws because a disk filled up.
 */
#ifndef AUTOFL_STORE_CHECKPOINT_WRITER_H
#define AUTOFL_STORE_CHECKPOINT_WRITER_H

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "store/snapshot.h"

namespace autofl::store {

/** Counters for tests / benches; a snapshot, not a live view. */
struct CheckpointStats
{
    uint64_t requested = 0;  ///< request() calls accepted.
    uint64_t written = 0;    ///< Artifacts durably on disk.
    uint64_t dropped = 0;    ///< Pending checkpoints superseded unwritten.
    uint64_t deleted = 0;    ///< Artifacts removed by retention.
    SnapshotStatus last_status = SnapshotStatus::Ok;  ///< Last write outcome.
};

/**
 * What the writer keeps on disk. Without a policy every
 * "model-r<N>.snap" accumulates forever; production wants a bounded
 * window of recent rounds plus explicitly pinned epochs (the registry's
 * "pin" manifest lines — see ModelRegistry).
 */
struct RetentionPolicy
{
    /**
     * Keep the newest K artifacts by round. 0 (the default) keeps
     * everything — the pre-retention behavior. The artifact
     * "latest.snap" links to is always among the kept set (it is the
     * newest by construction).
     */
    int keep_last = 0;

    /** Rounds retention must never delete (pinned registry versions). */
    std::vector<uint64_t> pinned;
};

class CheckpointWriter
{
  public:
    /**
     * @param dir            Artifact directory (created if absent).
     * @param topology_hash  Stamped into every header.
     * @param shard_count    Store stripe count recorded in the shard
     *                       table (>= 1).
     * @param retention      Keep-last-K + pins; applied after every
     *                       successful write, and at construction over
     *                       artifacts a previous run left behind.
     */
    CheckpointWriter(std::string dir, uint64_t topology_hash,
                     uint32_t shard_count, RetentionPolicy retention = {});

    /** Drains the pending checkpoint (if any), then joins. */
    ~CheckpointWriter();

    CheckpointWriter(const CheckpointWriter &) = delete;
    CheckpointWriter &operator=(const CheckpointWriter &) = delete;

    /**
     * Enqueue the state after round @p round at store epoch @p epoch.
     * Never blocks on IO: replaces any unstarted pending checkpoint
     * (counted as dropped). @p weights is shared zero-copy with the
     * caller — typically the pipeline's own retained history snapshot.
     */
    void request(uint64_t round, uint64_t epoch,
                 std::shared_ptr<const std::vector<float>> weights);

    /** Block until every accepted checkpoint is written or dropped. */
    void flush();

    CheckpointStats stats() const;

    /** "<dir>/latest.snap" — what a resuming process should open. */
    std::string latest_path() const;
    /** "<dir>/model-r<round>.snap". */
    std::string artifact_path(uint64_t round) const;

  private:
    struct Request
    {
        uint64_t round = 0;
        uint64_t epoch = 0;
        std::shared_ptr<const std::vector<float>> weights;
    };

    void run();
    void write_one(const Request &req);
    /**
     * Delete unpinned artifacts beyond keep_last (writer thread / ctor
     * only — kept_rounds_ is single-owner). Returns how many were
     * removed; the caller folds that into stats_ under mu_.
     */
    uint64_t apply_retention();

    const std::string dir_;
    const uint64_t topology_hash_;
    const uint32_t shard_count_;
    RetentionPolicy retention_;        ///< pinned sorted in ctor.
    std::vector<uint64_t> kept_rounds_;  ///< Artifacts on disk, ascending.

    mutable std::mutex mu_;
    std::condition_variable cv_;       ///< Signals the writer thread.
    std::condition_variable done_cv_;  ///< Signals flush() waiters.
    Request pending_;                  ///< Valid iff has_pending_.
    bool has_pending_ = false;
    bool writing_ = false;
    bool stop_ = false;
    CheckpointStats stats_;

    std::thread thread_;
};

} // namespace autofl::store

#endif // AUTOFL_STORE_CHECKPOINT_WRITER_H
