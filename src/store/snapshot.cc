#include "store/snapshot.h"

#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace autofl::store {

const char *snapshot_status_name(SnapshotStatus s)
{
    switch (s) {
    case SnapshotStatus::Ok: return "Ok";
    case SnapshotStatus::IoError: return "IoError";
    case SnapshotStatus::Truncated: return "Truncated";
    case SnapshotStatus::BadMagic: return "BadMagic";
    case SnapshotStatus::BadVersion: return "BadVersion";
    case SnapshotStatus::BadHeader: return "BadHeader";
    case SnapshotStatus::Oversized: return "Oversized";
    case SnapshotStatus::BadChecksum: return "BadChecksum";
    case SnapshotStatus::BadShardTable: return "BadShardTable";
    case SnapshotStatus::BadTopology: return "BadTopology";
    }
    return "?";
}

namespace {

// Little-endian field helpers, mirroring net/wire.cc: the byte layout
// is spelled out per-field so the artifact is identical regardless of
// host endianness or struct packing.
void put_u16(std::vector<uint8_t> &buf, size_t at, uint16_t v)
{
    buf[at + 0] = static_cast<uint8_t>(v);
    buf[at + 1] = static_cast<uint8_t>(v >> 8);
}

void put_u32(std::vector<uint8_t> &buf, size_t at, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf[at + i] = static_cast<uint8_t>(v >> (8 * i));
}

void put_u64(std::vector<uint8_t> &buf, size_t at, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf[at + i] = static_cast<uint8_t>(v >> (8 * i));
}

uint16_t get_u16(const uint8_t *p)
{
    return static_cast<uint16_t>(p[0] | (uint16_t{p[1]} << 8));
}

uint32_t get_u32(const uint8_t *p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= uint32_t{p[i]} << (8 * i);
    return v;
}

uint64_t get_u64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= uint64_t{p[i]} << (8 * i);
    return v;
}

// FNV-1a 64. Not cryptographic — the threat model is disk rot and
// torn writes, not an adversary — but it detects any single byte flip
// and is fast enough to run over the full payload on every load.
constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

uint64_t fnv1a(const uint8_t *data, size_t len, uint64_t h = kFnvOffset)
{
    for (size_t i = 0; i < len; ++i) {
        h ^= data[i];
        h *= kFnvPrime;
    }
    return h;
}

size_t align_up(size_t n, size_t a)
{
    return (n + a - 1) / a * a;
}

// Header byte offsets (fixed; see snapshot.h file comment).
constexpr size_t kOffMagic = 0;
constexpr size_t kOffVersion = 4;
constexpr size_t kOffFlags = 6;
constexpr size_t kOffEpoch = 8;
constexpr size_t kOffRound = 16;
constexpr size_t kOffDim = 24;
constexpr size_t kOffTopology = 32;
constexpr size_t kOffShardCount = 40;
constexpr size_t kOffPayloadOffset = 44;
constexpr size_t kOffPayloadChecksum = 48;
constexpr size_t kOffHeaderChecksum = 56;

constexpr size_t kShardEntryBytes = 16;  // {u64 begin, u64 end}.

size_t payload_offset_for(uint32_t shard_count)
{
    return align_up(kSnapshotHeaderBytes + kShardEntryBytes * shard_count,
                    kSnapshotAlign);
}

} // namespace

uint64_t model_topology_hash(const std::string &workload, uint64_t dim)
{
    uint64_t h = fnv1a(reinterpret_cast<const uint8_t *>(workload.data()),
                       workload.size());
    uint8_t dim_le[8];
    for (int i = 0; i < 8; ++i)
        dim_le[i] = static_cast<uint8_t>(dim >> (8 * i));
    h = fnv1a(dim_le, sizeof dim_le, h);
    // Reserve 0 as "no expectation" in parse_snapshot.
    return h == 0 ? 1 : h;
}

std::vector<ShardRange> even_shard_ranges(uint64_t dim, uint32_t shards)
{
    assert(shards >= 1);
    // Same split as ShardedStore: base = dim / shards, and the first
    // dim % shards stripes carry one extra element.
    const uint64_t base = dim / shards;
    const uint64_t rem = dim % shards;
    std::vector<ShardRange> out(shards);
    uint64_t at = 0;
    for (uint32_t s = 0; s < shards; ++s) {
        const uint64_t len = base + (s < rem ? 1 : 0);
        out[s] = {at, at + len};
        at += len;
    }
    return out;
}

size_t snapshot_bytes(const SnapshotMeta &meta)
{
    return payload_offset_for(meta.shard_count) +
           sizeof(float) * static_cast<size_t>(meta.dim);
}

std::vector<uint8_t> serialize_snapshot(const SnapshotMeta &meta,
                                        const std::vector<ShardRange> &shards,
                                        const float *weights)
{
    assert(meta.shard_count == shards.size());
    assert(meta.dim <= kMaxSnapshotFloats);
    assert(meta.shard_count >= 1 && meta.shard_count <= kMaxSnapshotShards);

    const size_t payload_off = payload_offset_for(meta.shard_count);
    std::vector<uint8_t> buf(snapshot_bytes(meta), 0);

    put_u32(buf, kOffMagic, kSnapshotMagic);
    put_u16(buf, kOffVersion, kSnapshotVersion);
    put_u16(buf, kOffFlags, 0);
    put_u64(buf, kOffEpoch, meta.epoch);
    put_u64(buf, kOffRound, meta.round);
    put_u64(buf, kOffDim, meta.dim);
    put_u64(buf, kOffTopology, meta.topology_hash);
    put_u32(buf, kOffShardCount, meta.shard_count);
    put_u32(buf, kOffPayloadOffset, static_cast<uint32_t>(payload_off));

    size_t at = kSnapshotHeaderBytes;
    for (const ShardRange &r : shards) {
        put_u64(buf, at, r.begin);
        put_u64(buf, at + 8, r.end);
        at += kShardEntryBytes;
    }
    // Gap to payload_off stays zero (alignment padding, checksummed).

    // f32 payload as IEEE-754 bit images: memcpy is exact, and every
    // float — including NaN payloads — round-trips bit-identically.
    static_assert(sizeof(float) == 4, "snapshot format requires 32-bit float");
    if (meta.dim > 0)
        std::memcpy(buf.data() + payload_off, weights,
                    sizeof(float) * static_cast<size_t>(meta.dim));

    // Payload checksum covers [header end, EOF): shard table, padding
    // and weights, so any post-header byte flip is detected.
    put_u64(buf, kOffPayloadChecksum,
            fnv1a(buf.data() + kSnapshotHeaderBytes,
                  buf.size() - kSnapshotHeaderBytes));
    // Header checksum covers the header bytes before itself.
    put_u64(buf, kOffHeaderChecksum, fnv1a(buf.data(), kOffHeaderChecksum));
    return buf;
}

SnapshotStatus parse_snapshot(const uint8_t *data, size_t len,
                              SnapshotView *out, uint64_t expected_topology)
{
    // Validation order: existence of each field before reading it,
    // self-consistency before any size derived from it, checksums
    // before trusting content. Nothing is allocated from an
    // unvalidated length.
    if (len < kSnapshotHeaderBytes)
        return SnapshotStatus::Truncated;
    if (get_u32(data + kOffMagic) != kSnapshotMagic)
        return SnapshotStatus::BadMagic;
    if (get_u16(data + kOffVersion) != kSnapshotVersion)
        return SnapshotStatus::BadVersion;
    if (get_u16(data + kOffFlags) != 0)
        return SnapshotStatus::BadHeader;
    if (fnv1a(data, kOffHeaderChecksum) != get_u64(data + kOffHeaderChecksum))
        return SnapshotStatus::BadChecksum;

    SnapshotMeta meta;
    meta.epoch = get_u64(data + kOffEpoch);
    meta.round = get_u64(data + kOffRound);
    meta.dim = get_u64(data + kOffDim);
    meta.topology_hash = get_u64(data + kOffTopology);
    meta.shard_count = get_u32(data + kOffShardCount);

    if (meta.dim > kMaxSnapshotFloats)
        return SnapshotStatus::Oversized;
    if (meta.shard_count < 1 || meta.shard_count > kMaxSnapshotShards)
        return SnapshotStatus::BadHeader;

    const size_t payload_off = payload_offset_for(meta.shard_count);
    if (get_u32(data + kOffPayloadOffset) != payload_off)
        return SnapshotStatus::BadHeader;
    const size_t want =
        payload_off + sizeof(float) * static_cast<size_t>(meta.dim);
    if (len < want)
        return SnapshotStatus::Truncated;
    if (len > want)
        return SnapshotStatus::BadHeader;  // Trailing garbage.

    if (fnv1a(data + kSnapshotHeaderBytes, len - kSnapshotHeaderBytes) !=
        get_u64(data + kOffPayloadChecksum))
        return SnapshotStatus::BadChecksum;

    // Shard ranges must tile [0, dim) contiguously in order — the
    // invariant ShardedStore's layout provides and a ranged restore
    // would rely on.
    std::vector<ShardRange> shards(meta.shard_count);
    uint64_t at = 0;
    for (uint32_t s = 0; s < meta.shard_count; ++s) {
        const uint8_t *e =
            data + kSnapshotHeaderBytes + kShardEntryBytes * size_t{s};
        shards[s] = {get_u64(e), get_u64(e + 8)};
        if (shards[s].begin != at || shards[s].end < shards[s].begin)
            return SnapshotStatus::BadShardTable;
        at = shards[s].end;
    }
    if (at != meta.dim)
        return SnapshotStatus::BadShardTable;

    if (expected_topology != 0 && meta.topology_hash != expected_topology)
        return SnapshotStatus::BadTopology;

    out->meta = meta;
    out->shards = std::move(shards);
    out->weights = reinterpret_cast<const float *>(data + payload_off);
    return SnapshotStatus::Ok;
}

SnapshotStatus read_snapshot_file(const std::string &path, SnapshotData *out,
                                  uint64_t expected_topology)
{
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        return SnapshotStatus::IoError;

    struct stat st{};
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
        ::close(fd);
        return SnapshotStatus::IoError;
    }
    // Size sanity before allocating: a file larger than any valid
    // artifact is rejected without buffering it.
    const size_t max_bytes =
        payload_offset_for(kMaxSnapshotShards) +
        sizeof(float) * static_cast<size_t>(kMaxSnapshotFloats);
    if (static_cast<uint64_t>(st.st_size) > max_bytes) {
        ::close(fd);
        return SnapshotStatus::Oversized;
    }

    std::vector<uint8_t> buf(static_cast<size_t>(st.st_size));
    size_t got = 0;
    while (got < buf.size()) {
        const ssize_t n = ::read(fd, buf.data() + got, buf.size() - got);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            return SnapshotStatus::IoError;
        }
        if (n == 0)
            break;  // Shrank under us; parse reports Truncated.
        got += static_cast<size_t>(n);
    }
    ::close(fd);
    buf.resize(got);

    SnapshotView view;
    const SnapshotStatus st2 =
        parse_snapshot(buf.data(), buf.size(), &view, expected_topology);
    if (st2 != SnapshotStatus::Ok)
        return st2;
    out->meta = view.meta;
    out->shards = std::move(view.shards);
    out->weights.assign(view.weights, view.weights + view.meta.dim);
    return SnapshotStatus::Ok;
}

namespace {

bool write_all(int fd, const uint8_t *data, size_t len)
{
    size_t put = 0;
    while (put < len) {
        const ssize_t n = ::write(fd, data + put, len - put);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        put += static_cast<size_t>(n);
    }
    return true;
}

// fsync the directory containing `path` so the rename itself is
// durable (a crash after rename cannot resurrect the old name).
bool sync_parent_dir(const std::string &path)
{
    const size_t slash = path.find_last_of('/');
    const std::string dir = slash == std::string::npos
                                ? std::string(".")
                                : path.substr(0, slash == 0 ? 1 : slash);
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dfd < 0)
        return false;
    const bool ok = ::fsync(dfd) == 0;
    ::close(dfd);
    return ok;
}

} // namespace

SnapshotStatus write_snapshot_file(const std::string &path,
                                   const SnapshotMeta &meta,
                                   const std::vector<ShardRange> &shards,
                                   const float *weights)
{
    const std::vector<uint8_t> buf = serialize_snapshot(meta, shards, weights);

    // Temp name in the same directory (rename must not cross
    // filesystems); pid-suffixed so concurrent writers never collide.
    char suffix[32];
    std::snprintf(suffix, sizeof suffix, ".tmp.%ld",
                  static_cast<long>(::getpid()));
    const std::string tmp = path + suffix;

    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                          0644);
    if (fd < 0)
        return SnapshotStatus::IoError;
    const bool wrote = write_all(fd, buf.data(), buf.size());
    const bool synced = wrote && ::fsync(fd) == 0;
    ::close(fd);
    if (!synced || ::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        return SnapshotStatus::IoError;
    }
    // Best-effort: data + rename are already ordered; directory sync
    // failing (e.g. exotic fs) does not un-write the artifact.
    (void)sync_parent_dir(path);
    return SnapshotStatus::Ok;
}

} // namespace autofl::store
