/**
 * @file
 * ModelRegistry: the name@version → artifact catalogue on top of the
 * snapshot store — the piece that turns a directory of checkpoints
 * into a servable model fleet.
 *
 * Layout: one registry directory holds one subdirectory per model
 * name. Each model directory contains the artifacts the checkpoint
 * writer produced ("model-r<N>.snap", "latest.snap") plus a small text
 * MANIFEST recording the model's identity:
 *
 *     <registry_dir>/
 *       mnist-small/
 *         MANIFEST            afreg1 / model / workload / pin lines
 *         model-r3.snap
 *         model-r7.snap
 *         latest.snap         hard link to the newest artifact
 *       shakespeare/
 *         ...
 *
 * The artifact *round* is the registry *version*: "mnist-small@7"
 * names model-r7.snap; "mnist-small" (or @0) resolves to the newest
 * round present on disk. Versions are discovered by directory scan on
 * every lookup — the filesystem is the source of truth, so a registry
 * object held by a serving process sees artifacts the moment training
 * durably renames them in, with no refresh protocol.
 *
 * Every failure is a typed RegistryStatus — unknown model, unknown
 * version, missing or corrupt manifest, damaged artifact (the
 * underlying SnapshotStatus is surfaced alongside) — never a throw:
 * the registry sits on the serving cold-start path, where a damaged
 * disk must produce a diagnosis, not a crash.
 *
 * Pins: "pin <round>" manifest lines mark versions the retention
 * policy must never delete (see CheckpointWriter). pin() rewrites the
 * manifest with the same temp + rename discipline the artifacts use.
 */
#ifndef AUTOFL_STORE_MODEL_REGISTRY_H
#define AUTOFL_STORE_MODEL_REGISTRY_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "store/mapped_snapshot.h"
#include "store/snapshot.h"

namespace autofl::store {

/** Typed outcome of a registry operation. */
enum class RegistryStatus {
    Ok,              ///< Lookup / publish succeeded.
    IoError,         ///< The registry directory could not be read/written.
    BadName,         ///< Model name outside [A-Za-z0-9._-]+ (or empty).
    UnknownModel,    ///< No registered model under that name.
    UnknownVersion,  ///< Model exists but has no such version on disk.
    NoVersions,      ///< Model registered but no artifact written yet.
    BadManifest,     ///< MANIFEST missing, malformed or self-inconsistent.
    BadArtifact,     ///< The resolved artifact failed snapshot validation.
};

/** Display name ("Ok", "UnknownModel", ...). */
const char *registry_status_name(RegistryStatus s);

/** A parsed "name@version" reference (version 0 = newest). */
struct ModelRef
{
    std::string name;
    uint64_t version = 0;
};

/**
 * Parse "name" or "name@<version>" into a ModelRef. BadName on an
 * empty/illegal name or a malformed version field.
 */
RegistryStatus parse_model_ref(const std::string &ref, ModelRef *out);

/** One registered model as the scan sees it. */
struct RegistryModel
{
    std::string name;
    std::string workload;  ///< workload_name() string from the manifest.
    std::vector<uint64_t> versions;  ///< Rounds on disk, ascending.
    std::vector<uint64_t> pinned;    ///< Manifest-pinned rounds, ascending.

    /** Newest version on disk (0 when none is written yet). */
    uint64_t
    newest() const
    {
        return versions.empty() ? 0 : versions.back();
    }
};

/** name@version → snapshot-artifact catalogue over one directory. */
class ModelRegistry
{
  public:
    /** Bind to @p dir (created lazily by the first publish_dir). */
    explicit ModelRegistry(std::string dir);

    const std::string &dir() const { return dir_; }

    /**
     * Enumerate every registered model: each subdirectory holding a
     * parseable MANIFEST, with its on-disk versions. Subdirectories
     * with a *corrupt* manifest are skipped here (scan enumerates what
     * is servable) but fail typed on direct lookup. IoError when the
     * registry directory itself cannot be read.
     */
    RegistryStatus scan(std::vector<RegistryModel> *out) const;

    /**
     * One model's registration and versions. UnknownModel when the
     * directory is absent, BadManifest when present but unreadable.
     */
    RegistryStatus lookup(const std::string &name, RegistryModel *out) const;

    /**
     * Resolve @p ref to an artifact path without opening it.
     * ref.version 0 picks the newest version on disk; the resolved
     * version is reported through @p version when non-null.
     */
    RegistryStatus resolve(const ModelRef &ref, std::string *path,
                           uint64_t *version = nullptr) const;

    /**
     * Resolve, mmap and fully validate @p ref — the serving cold-start
     * path. On Ok, @p out holds the validated mapping (shared
     * read-only across processes; see MappedSnapshot). On BadArtifact
     * the snapshot-level cause lands in @p detail when non-null.
     */
    RegistryStatus open(const ModelRef &ref,
                        std::shared_ptr<const MappedSnapshot> *out,
                        uint64_t *version = nullptr,
                        SnapshotStatus *detail = nullptr) const;

    /**
     * Register @p name (creating directory + manifest as needed,
     * verifying the workload on re-publish — a name can never silently
     * switch architectures) and return the directory a
     * CheckpointWriter should write artifacts into. The training-side
     * publish hook: FlSystem points its writer here, and every
     * checkpoint becomes a registry version the moment its rename
     * lands.
     */
    RegistryStatus publish_dir(const std::string &name,
                               const std::string &workload,
                               std::string *out);

    /**
     * Pin @p version of @p name: retention keeps pinned rounds forever
     * (CheckpointWriter reads pins at startup; pins added while a
     * writer runs apply to its next construction). The version must
     * exist on disk. Manifest rewrite is temp + atomic rename.
     */
    RegistryStatus pin(const std::string &name, uint64_t version);

    /** Manifest path of @p name (for tests and tooling). */
    std::string manifest_path(const std::string &name) const;

    /** Model directory of @p name. */
    std::string model_dir(const std::string &name) const;

    /** Whether @p name is a legal model name. */
    static bool valid_name(const std::string &name);

  private:
    RegistryStatus read_manifest(const std::string &name,
                                 RegistryModel *out) const;
    RegistryStatus write_manifest(const RegistryModel &m) const;
    RegistryStatus scan_versions(const std::string &name,
                                 std::vector<uint64_t> *out) const;

    std::string dir_;
};

} // namespace autofl::store

#endif // AUTOFL_STORE_MODEL_REGISTRY_H
