#include "store/model_registry.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

namespace autofl::store {

namespace {

constexpr const char *kManifestName = "MANIFEST";
constexpr const char *kManifestMagic = "afreg1";

/** "model-r<N>.snap" → N; false for any other file name. */
bool
artifact_round(const char *fname, uint64_t *round)
{
    static constexpr const char kPrefix[] = "model-r";
    static constexpr const char kSuffix[] = ".snap";
    const size_t len = std::strlen(fname);
    const size_t plen = sizeof(kPrefix) - 1;
    const size_t slen = sizeof(kSuffix) - 1;
    if (len <= plen + slen || std::strncmp(fname, kPrefix, plen) != 0 ||
        std::strcmp(fname + len - slen, kSuffix) != 0)
        return false;
    uint64_t r = 0;
    for (size_t i = plen; i < len - slen; ++i) {
        if (fname[i] < '0' || fname[i] > '9')
            return false;
        r = r * 10 + static_cast<uint64_t>(fname[i] - '0');
    }
    *round = r;
    return true;
}

} // namespace

const char *
registry_status_name(RegistryStatus s)
{
    switch (s) {
      case RegistryStatus::Ok:
        return "Ok";
      case RegistryStatus::IoError:
        return "IoError";
      case RegistryStatus::BadName:
        return "BadName";
      case RegistryStatus::UnknownModel:
        return "UnknownModel";
      case RegistryStatus::UnknownVersion:
        return "UnknownVersion";
      case RegistryStatus::NoVersions:
        return "NoVersions";
      case RegistryStatus::BadManifest:
        return "BadManifest";
      case RegistryStatus::BadArtifact:
        return "BadArtifact";
    }
    return "?";
}

RegistryStatus
parse_model_ref(const std::string &ref, ModelRef *out)
{
    ModelRef r;
    const size_t at = ref.find('@');
    r.name = ref.substr(0, at);
    if (!ModelRegistry::valid_name(r.name))
        return RegistryStatus::BadName;
    if (at != std::string::npos) {
        const std::string v = ref.substr(at + 1);
        if (v.empty())
            return RegistryStatus::BadName;
        uint64_t ver = 0;
        for (char c : v) {
            if (c < '0' || c > '9')
                return RegistryStatus::BadName;
            ver = ver * 10 + static_cast<uint64_t>(c - '0');
        }
        r.version = ver;
    }
    *out = std::move(r);
    return RegistryStatus::Ok;
}

ModelRegistry::ModelRegistry(std::string dir) : dir_(std::move(dir)) {}

bool
ModelRegistry::valid_name(const std::string &name)
{
    if (name.empty() || name.size() > 128)
        return false;
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
            (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
        if (!ok)
            return false;
    }
    // "." / ".." would escape the registry directory.
    return name != "." && name != "..";
}

std::string
ModelRegistry::model_dir(const std::string &name) const
{
    return dir_ + "/" + name;
}

std::string
ModelRegistry::manifest_path(const std::string &name) const
{
    return model_dir(name) + "/" + kManifestName;
}

RegistryStatus
ModelRegistry::read_manifest(const std::string &name,
                             RegistryModel *out) const
{
    std::ifstream in(manifest_path(name));
    if (!in)
        return RegistryStatus::BadManifest;
    RegistryModel m;
    m.name = name;
    std::string line;
    if (!std::getline(in, line) || line != kManifestMagic)
        return RegistryStatus::BadManifest;
    bool have_model = false, have_workload = false;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::istringstream ls(line);
        std::string key;
        ls >> key;
        if (key == "model") {
            std::string v;
            ls >> v;
            // The manifest must agree with the directory it lives in —
            // a copied/stale manifest is corruption, not a rename.
            if (v != name)
                return RegistryStatus::BadManifest;
            have_model = true;
        } else if (key == "workload") {
            // Workload display names contain spaces ("CNN-MNIST" does
            // not, but be permissive): rest of line, trimmed.
            std::string rest;
            std::getline(ls, rest);
            const size_t b = rest.find_first_not_of(' ');
            if (b == std::string::npos)
                return RegistryStatus::BadManifest;
            m.workload = rest.substr(b);
            have_workload = true;
        } else if (key == "pin") {
            uint64_t r = 0;
            if (!(ls >> r))
                return RegistryStatus::BadManifest;
            m.pinned.push_back(r);
        } else {
            // Unknown keys are corruption in v1: the format is ours
            // end to end, so leniency would only mask damage.
            return RegistryStatus::BadManifest;
        }
    }
    if (!have_model || !have_workload)
        return RegistryStatus::BadManifest;
    std::sort(m.pinned.begin(), m.pinned.end());
    m.pinned.erase(std::unique(m.pinned.begin(), m.pinned.end()),
                   m.pinned.end());
    *out = std::move(m);
    return RegistryStatus::Ok;
}

RegistryStatus
ModelRegistry::write_manifest(const RegistryModel &m) const
{
    // Same durability discipline as the artifacts: temp in the same
    // directory, then atomic rename — a crash leaves the previous
    // manifest or the new one, never a torn file.
    const std::string path = manifest_path(m.name);
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            return RegistryStatus::IoError;
        out << kManifestMagic << "\n";
        out << "model " << m.name << "\n";
        out << "workload " << m.workload << "\n";
        for (uint64_t r : m.pinned)
            out << "pin " << r << "\n";
        out.flush();
        if (!out) {
            ::unlink(tmp.c_str());
            return RegistryStatus::IoError;
        }
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        return RegistryStatus::IoError;
    }
    return RegistryStatus::Ok;
}

RegistryStatus
ModelRegistry::scan_versions(const std::string &name,
                             std::vector<uint64_t> *out) const
{
    DIR *d = ::opendir(model_dir(name).c_str());
    if (d == nullptr)
        return RegistryStatus::UnknownModel;
    std::vector<uint64_t> versions;
    while (struct dirent *e = ::readdir(d)) {
        uint64_t r = 0;
        if (artifact_round(e->d_name, &r))
            versions.push_back(r);
    }
    ::closedir(d);
    std::sort(versions.begin(), versions.end());
    *out = std::move(versions);
    return RegistryStatus::Ok;
}

RegistryStatus
ModelRegistry::lookup(const std::string &name, RegistryModel *out) const
{
    if (!valid_name(name))
        return RegistryStatus::BadName;
    std::vector<uint64_t> versions;
    const RegistryStatus vs = scan_versions(name, &versions);
    if (vs != RegistryStatus::Ok)
        return vs;
    RegistryModel m;
    const RegistryStatus ms = read_manifest(name, &m);
    if (ms != RegistryStatus::Ok)
        return ms;
    m.versions = std::move(versions);
    *out = std::move(m);
    return RegistryStatus::Ok;
}

RegistryStatus
ModelRegistry::scan(std::vector<RegistryModel> *out) const
{
    DIR *d = ::opendir(dir_.c_str());
    if (d == nullptr)
        return RegistryStatus::IoError;
    std::vector<std::string> names;
    while (struct dirent *e = ::readdir(d)) {
        if (!valid_name(e->d_name))
            continue;
        struct stat st;
        if (::stat((dir_ + "/" + e->d_name).c_str(), &st) == 0 &&
            S_ISDIR(st.st_mode))
            names.push_back(e->d_name);
    }
    ::closedir(d);
    std::sort(names.begin(), names.end());

    std::vector<RegistryModel> models;
    for (const std::string &n : names) {
        RegistryModel m;
        if (lookup(n, &m) == RegistryStatus::Ok)
            models.push_back(std::move(m));
        // Corrupt/unregistered subdirectories are not servable; scan
        // skips them, direct lookup reports them typed.
    }
    *out = std::move(models);
    return RegistryStatus::Ok;
}

RegistryStatus
ModelRegistry::resolve(const ModelRef &ref, std::string *path,
                       uint64_t *version) const
{
    RegistryModel m;
    const RegistryStatus st = lookup(ref.name, &m);
    if (st != RegistryStatus::Ok)
        return st;
    uint64_t v = ref.version;
    if (v == 0) {
        if (m.versions.empty())
            return RegistryStatus::NoVersions;
        v = m.newest();
    } else if (!std::binary_search(m.versions.begin(), m.versions.end(),
                                   v)) {
        return RegistryStatus::UnknownVersion;
    }
    *path = model_dir(ref.name) + "/model-r" + std::to_string(v) + ".snap";
    if (version != nullptr)
        *version = v;
    return RegistryStatus::Ok;
}

RegistryStatus
ModelRegistry::open(const ModelRef &ref,
                    std::shared_ptr<const MappedSnapshot> *out,
                    uint64_t *version, SnapshotStatus *detail) const
{
    std::string path;
    const RegistryStatus rs = resolve(ref, &path, version);
    if (rs != RegistryStatus::Ok)
        return rs;
    SnapshotStatus st = SnapshotStatus::Ok;
    auto snap = MappedSnapshot::open(path, &st);
    if (detail != nullptr)
        *detail = st;
    if (snap == nullptr)
        return RegistryStatus::BadArtifact;
    *out = std::move(snap);
    return RegistryStatus::Ok;
}

RegistryStatus
ModelRegistry::publish_dir(const std::string &name,
                           const std::string &workload, std::string *out)
{
    if (!valid_name(name))
        return RegistryStatus::BadName;
    // Best-effort create registry + model dirs; failures surface on
    // the manifest write below.
    ::mkdir(dir_.c_str(), 0755);
    ::mkdir(model_dir(name).c_str(), 0755);

    RegistryModel m;
    const RegistryStatus ms = read_manifest(name, &m);
    if (ms == RegistryStatus::Ok) {
        // Re-publish: the name is already bound to an architecture; a
        // different workload under the same name would silently serve
        // the wrong model to every existing consumer.
        if (m.workload != workload)
            return RegistryStatus::BadManifest;
    } else {
        struct stat st;
        if (::stat(manifest_path(name).c_str(), &st) == 0)
            return RegistryStatus::BadManifest;  // Present but corrupt.
        m.name = name;
        m.workload = workload;
        const RegistryStatus ws = write_manifest(m);
        if (ws != RegistryStatus::Ok)
            return ws;
    }
    if (out != nullptr)
        *out = model_dir(name);
    return RegistryStatus::Ok;
}

RegistryStatus
ModelRegistry::pin(const std::string &name, uint64_t version)
{
    RegistryModel m;
    const RegistryStatus st = lookup(name, &m);
    if (st != RegistryStatus::Ok)
        return st;
    if (!std::binary_search(m.versions.begin(), m.versions.end(), version))
        return RegistryStatus::UnknownVersion;
    if (std::binary_search(m.pinned.begin(), m.pinned.end(), version))
        return RegistryStatus::Ok;  // Idempotent.
    m.pinned.push_back(version);
    std::sort(m.pinned.begin(), m.pinned.end());
    return write_manifest(m);
}

} // namespace autofl::store
