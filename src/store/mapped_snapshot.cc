#include "store/mapped_snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace autofl::store {

std::shared_ptr<const MappedSnapshot>
MappedSnapshot::open(const std::string &path, SnapshotStatus *st,
                     uint64_t expected_topology)
{
    SnapshotStatus local = SnapshotStatus::Ok;
    SnapshotStatus &out_st = st ? *st : local;

    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
        out_st = SnapshotStatus::IoError;
        return nullptr;
    }
    struct stat sb{};
    if (::fstat(fd, &sb) != 0 || !S_ISREG(sb.st_mode) || sb.st_size <= 0) {
        ::close(fd);
        out_st = SnapshotStatus::IoError;
        return nullptr;
    }

    const size_t len = static_cast<size_t>(sb.st_size);
    void *map = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
    // The mapping pins the file contents; the descriptor is not
    // needed afterwards.
    ::close(fd);
    if (map == MAP_FAILED) {
        out_st = SnapshotStatus::IoError;
        return nullptr;
    }
    // Prefault: tell the kernel we want the whole artifact resident
    // so the first prediction is not a page-fault storm. Advisory —
    // failure (e.g. on an exotic fs) costs latency, not correctness.
    (void)::madvise(map, len, MADV_WILLNEED);

    // Full validation over the mapped bytes: a MappedSnapshot in hand
    // is always a complete, checksummed artifact.
    SnapshotView view;
    const SnapshotStatus parsed =
        parse_snapshot(static_cast<const uint8_t *>(map), len, &view,
                       expected_topology);
    if (parsed != SnapshotStatus::Ok) {
        ::munmap(map, len);
        out_st = parsed;
        return nullptr;
    }

    auto snap = std::shared_ptr<MappedSnapshot>(new MappedSnapshot());
    snap->map_ = map;
    snap->map_len_ = len;
    snap->meta_ = view.meta;
    snap->weights_ = view.weights;
    out_st = SnapshotStatus::Ok;
    return snap;
}

MappedSnapshot::~MappedSnapshot()
{
    if (map_ != nullptr)
        ::munmap(map_, map_len_);
}

} // namespace autofl::store
