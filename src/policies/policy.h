/**
 * @file
 * Participant-selection policy interface and the static baselines the
 * paper compares against (Section 5.1): FedAvg-Random, Power (C7),
 * Performance (C1) and the Table 4 cluster templates C0-C7.
 */
#ifndef AUTOFL_POLICIES_POLICY_H
#define AUTOFL_POLICIES_POLICY_H

#include <memory>
#include <string>
#include <vector>

#include "core/autofl.h"
#include "sim/round.h"

namespace autofl {

/** Round-level participant selection + execution-target policy. */
class SelectionPolicy
{
  public:
    virtual ~SelectionPolicy() = default;

    /** Display name used in bench tables. */
    virtual std::string name() const = 0;

    /** Choose the round's participants and their execution settings. */
    virtual std::vector<ParticipantPlan> select(
        const GlobalObservation &global,
        const std::vector<LocalObservation> &locals, int k) = 0;

    /** Feed back the measured outcome (only learning policies care). */
    virtual void
    observe_outcome(const RoundExec &exec, double accuracy_percent)
    {
        (void)exec;
        (void)accuracy_percent;
    }
};

/** Tier composition template (Table 4). Counts are for K = 20. */
struct ClusterTemplate
{
    std::string label;  ///< "C0".."C7".
    int high = 0;
    int mid = 0;
    int low = 0;
    bool random = false;  ///< C0: uniform random selection.
};

/** The Table 4 templates C0..C7. */
const std::vector<ClusterTemplate> &table4_clusters();

/** Execution settings applied uniformly by a static policy. */
struct StaticExecSettings
{
    ExecTarget target = ExecTarget::Cpu;
    DvfsLevel dvfs = DvfsLevel::High;
};

/**
 * Fixed tier-composition policy: each round draws the template's tier
 * counts (scaled proportionally when k differs from 20) uniformly at
 * random within each tier.
 */
class StaticClusterPolicy : public SelectionPolicy
{
  public:
    StaticClusterPolicy(const Fleet &fleet, ClusterTemplate tmpl,
                        StaticExecSettings exec, uint64_t seed);

    std::string name() const override { return tmpl_.label; }
    std::vector<ParticipantPlan> select(
        const GlobalObservation &global,
        const std::vector<LocalObservation> &locals, int k) override;

    const ClusterTemplate &cluster() const { return tmpl_; }

    /** Change the uniform execution settings (used by the O_FL search). */
    void set_exec(StaticExecSettings exec) { exec_ = exec; }

  private:
    const Fleet &fleet_;
    ClusterTemplate tmpl_;
    StaticExecSettings exec_;
    Rng rng_;
    std::vector<int> high_ids_, mid_ids_, low_ids_;
};

/** FedAvg-Random baseline: uniform random K, CPU at max frequency. */
std::unique_ptr<SelectionPolicy> make_random_policy(const Fleet &fleet,
                                                    uint64_t seed);

/** Power baseline: minimize power draw — the all-low-end C7 cluster. */
std::unique_ptr<SelectionPolicy> make_power_policy(const Fleet &fleet,
                                                   uint64_t seed);

/** Performance baseline: minimize round time — the all-high-end C1. */
std::unique_ptr<SelectionPolicy> make_performance_policy(const Fleet &fleet,
                                                         uint64_t seed);

/** AutoFL adapter: owns an AutoFlScheduler and forwards both calls. */
class AutoFlPolicy : public SelectionPolicy
{
  public:
    AutoFlPolicy(const Fleet &fleet, const AutoFlConfig &cfg);

    std::string name() const override { return "AutoFL"; }
    std::vector<ParticipantPlan> select(
        const GlobalObservation &global,
        const std::vector<LocalObservation> &locals, int k) override;
    void observe_outcome(const RoundExec &exec,
                         double accuracy_percent) override;

    AutoFlScheduler &scheduler() { return scheduler_; }

  private:
    AutoFlScheduler scheduler_;
};

} // namespace autofl

#endif // AUTOFL_POLICIES_POLICY_H
