#include "policy.h"

#include <algorithm>
#include <cassert>

namespace autofl {

const std::vector<ClusterTemplate> &
table4_clusters()
{
    static const std::vector<ClusterTemplate> kClusters = {
        {"C0", 0, 0, 0, true},     // FedAvg-Random baseline.
        {"C1", 20, 0, 0, false},   // Performance.
        {"C2", 15, 5, 0, false},
        {"C3", 10, 5, 5, false},
        {"C4", 5, 10, 5, false},
        {"C5", 5, 5, 10, false},
        {"C6", 0, 5, 15, false},
        {"C7", 0, 0, 20, false},   // Power.
    };
    return kClusters;
}

StaticClusterPolicy::StaticClusterPolicy(const Fleet &fleet,
                                         ClusterTemplate tmpl,
                                         StaticExecSettings exec,
                                         uint64_t seed)
    : fleet_(fleet), tmpl_(std::move(tmpl)), exec_(exec), rng_(seed),
      high_ids_(fleet.ids_of(Tier::High)),
      mid_ids_(fleet.ids_of(Tier::Mid)),
      low_ids_(fleet.ids_of(Tier::Low))
{
}

std::vector<ParticipantPlan>
StaticClusterPolicy::select(const GlobalObservation &global,
                            const std::vector<LocalObservation> &locals,
                            int k)
{
    (void)global;
    (void)locals;
    std::vector<int> chosen;
    chosen.reserve(static_cast<size_t>(k));

    if (tmpl_.random) {
        std::vector<int> ids(static_cast<size_t>(fleet_.size()));
        for (int i = 0; i < fleet_.size(); ++i)
            ids[static_cast<size_t>(i)] = i;
        rng_.shuffle(ids);
        chosen.assign(ids.begin(), ids.begin() + k);
    } else {
        // Scale the template's tier counts from its K=20 basis to k.
        const int basis = tmpl_.high + tmpl_.mid + tmpl_.low;
        assert(basis > 0);
        int want_h = tmpl_.high * k / basis;
        int want_m = tmpl_.mid * k / basis;
        int want_l = tmpl_.low * k / basis;
        // Distribute rounding remainder in tier-count order.
        while (want_h + want_m + want_l < k) {
            if (tmpl_.high > 0 && want_h < static_cast<int>(high_ids_.size()))
                ++want_h;
            else if (tmpl_.mid > 0 &&
                     want_m < static_cast<int>(mid_ids_.size()))
                ++want_m;
            else
                ++want_l;
        }
        auto pick = [&](std::vector<int> ids, int count) {
            rng_.shuffle(ids);
            count = std::min<int>(count, static_cast<int>(ids.size()));
            chosen.insert(chosen.end(), ids.begin(), ids.begin() + count);
        };
        pick(high_ids_, want_h);
        pick(mid_ids_, want_m);
        pick(low_ids_, want_l);
    }

    std::vector<ParticipantPlan> plans;
    plans.reserve(chosen.size());
    for (int d : chosen) {
        ParticipantPlan p;
        p.device_id = d;
        p.target = exec_.target;
        p.dvfs = exec_.dvfs;
        plans.push_back(p);
    }
    return plans;
}

namespace {

std::unique_ptr<SelectionPolicy>
make_template_policy(const Fleet &fleet, const std::string &label,
                     const std::string &name, uint64_t seed)
{
    for (const auto &tmpl : table4_clusters()) {
        if (tmpl.label == label) {
            ClusterTemplate named = tmpl;
            named.label = name;
            return std::make_unique<StaticClusterPolicy>(
                fleet, named, StaticExecSettings{}, seed);
        }
    }
    assert(false);
    return nullptr;
}

} // namespace

std::unique_ptr<SelectionPolicy>
make_random_policy(const Fleet &fleet, uint64_t seed)
{
    return make_template_policy(fleet, "C0", "FedAvg-Random", seed);
}

std::unique_ptr<SelectionPolicy>
make_power_policy(const Fleet &fleet, uint64_t seed)
{
    return make_template_policy(fleet, "C7", "Power", seed);
}

std::unique_ptr<SelectionPolicy>
make_performance_policy(const Fleet &fleet, uint64_t seed)
{
    return make_template_policy(fleet, "C1", "Performance", seed);
}

AutoFlPolicy::AutoFlPolicy(const Fleet &fleet, const AutoFlConfig &cfg)
    : scheduler_(fleet, cfg)
{
}

std::vector<ParticipantPlan>
AutoFlPolicy::select(const GlobalObservation &global,
                     const std::vector<LocalObservation> &locals, int k)
{
    return scheduler_.select(global, locals, k);
}

void
AutoFlPolicy::observe_outcome(const RoundExec &exec, double accuracy_percent)
{
    scheduler_.observe_outcome(exec, accuracy_percent);
}

} // namespace autofl
