/**
 * @file
 * Oracle policies O_participant and O_FL (Section 5.1).
 *
 * Both are fixed configurations found by offline exhaustive search (the
 * search driver lives in the harness): O_participant fixes the best tier
 * composition under heterogeneity/variance; O_FL additionally fixes the
 * best per-tier execution target and DVFS level. They upper-bound what
 * AutoFL can learn.
 */
#ifndef AUTOFL_POLICIES_ORACLE_H
#define AUTOFL_POLICIES_ORACLE_H

#include "policies/policy.h"

namespace autofl {

/** Per-tier execution settings for O_FL. */
struct TierExecSettings
{
    StaticExecSettings high;
    StaticExecSettings mid;
    StaticExecSettings low;

    const StaticExecSettings &
    for_tier(Tier t) const
    {
        switch (t) {
          case Tier::High:
            return high;
          case Tier::Mid:
            return mid;
          case Tier::Low:
            return low;
        }
        return high;
    }
};

/** Fixed oracle configuration. */
struct OracleSpec
{
    ClusterTemplate cluster;
    TierExecSettings exec;
};

/** Policy executing a fixed oracle configuration. */
class OraclePolicy : public SelectionPolicy
{
  public:
    /**
     * @param display_name "O_participant" or "O_FL".
     */
    OraclePolicy(const Fleet &fleet, OracleSpec spec,
                 std::string display_name, uint64_t seed);

    std::string name() const override { return display_name_; }
    std::vector<ParticipantPlan> select(
        const GlobalObservation &global,
        const std::vector<LocalObservation> &locals, int k) override;

    const OracleSpec &spec() const { return spec_; }

    /**
     * Mark devices the oracle should prefer within each tier (the oracle
     * knows which devices hold IID shards and avoids non-IID ones, which
     * is what makes it an upper bound under data heterogeneity).
     */
    void set_preferred(std::vector<bool> preferred);

  private:
    std::vector<bool> preferred_;
    const Fleet &fleet_;
    OracleSpec spec_;
    std::string display_name_;
    Rng rng_;
    std::vector<int> high_ids_, mid_ids_, low_ids_;
};

} // namespace autofl

#endif // AUTOFL_POLICIES_ORACLE_H
