#include "oracle.h"

#include <algorithm>
#include <cassert>

namespace autofl {

OraclePolicy::OraclePolicy(const Fleet &fleet, OracleSpec spec,
                           std::string display_name, uint64_t seed)
    : fleet_(fleet), spec_(std::move(spec)),
      display_name_(std::move(display_name)), rng_(seed),
      high_ids_(fleet.ids_of(Tier::High)),
      mid_ids_(fleet.ids_of(Tier::Mid)),
      low_ids_(fleet.ids_of(Tier::Low))
{
}

void
OraclePolicy::set_preferred(std::vector<bool> preferred)
{
    preferred_ = std::move(preferred);
}

std::vector<ParticipantPlan>
OraclePolicy::select(const GlobalObservation &global,
                     const std::vector<LocalObservation> &locals, int k)
{
    (void)global;
    (void)locals;
    const ClusterTemplate &tmpl = spec_.cluster;
    const int basis = std::max(1, tmpl.high + tmpl.mid + tmpl.low);
    int want_h = tmpl.high * k / basis;
    int want_m = tmpl.mid * k / basis;
    int want_l = tmpl.low * k / basis;
    while (want_h + want_m + want_l < k) {
        if (tmpl.high > 0 && want_h < static_cast<int>(high_ids_.size()))
            ++want_h;
        else if (tmpl.mid > 0 && want_m < static_cast<int>(mid_ids_.size()))
            ++want_m;
        else
            ++want_l;
    }

    std::vector<ParticipantPlan> plans;
    plans.reserve(static_cast<size_t>(k));
    auto pick = [&](std::vector<int> ids, int count, Tier tier) {
        rng_.shuffle(ids);
        if (!preferred_.empty()) {
            // Preferred (IID) devices first, shuffled within each group.
            std::stable_partition(ids.begin(), ids.end(), [&](int d) {
                return preferred_[static_cast<size_t>(d)];
            });
        }
        count = std::min<int>(count, static_cast<int>(ids.size()));
        const StaticExecSettings &exec = spec_.exec.for_tier(tier);
        for (int i = 0; i < count; ++i) {
            ParticipantPlan p;
            p.device_id = ids[static_cast<size_t>(i)];
            p.target = exec.target;
            p.dvfs = exec.dvfs;
            plans.push_back(p);
        }
    };
    pick(high_ids_, want_h, Tier::High);
    pick(mid_ids_, want_m, Tier::Mid);
    pick(low_ids_, want_l, Tier::Low);
    return plans;
}

} // namespace autofl
