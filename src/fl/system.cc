#include "system.h"

#include <cassert>
#include <chrono>
#include <thread>

#include "ps/executor.h"
#include "ps/ps_server.h"
#include "util/rng.h"

namespace autofl {

FlSystem::FlSystem(const FlSystemConfig &cfg)
    : cfg_(cfg),
      data_(make_dataset(cfg.workload, cfg.data)),
      partition_(partition_dataset(data_.train, cfg.partition)),
      server_(cfg.workload, cfg.algorithm, cfg.hyper, cfg.seed),
      profile_(model_profile(cfg.workload))
{
    shards_.reserve(partition_.shards.size());
    for (const auto &indices : partition_.shards)
        shards_.push_back(data_.train.subset(indices));

    if (cfg_.ps.mode != SyncMode::Sync &&
        cfg_.algorithm != Algorithm::Fedl) {
        ps_ = std::make_unique<PsServer>(server_, cfg_.workload,
                                         cfg_.params, cfg_.hyper,
                                         cfg_.algorithm, cfg_.seed, cfg_.ps,
                                         cfg_.threads);
        // Eval workers score store snapshots with a scratch model per
        // call; the integer-count accuracy is deterministic whatever
        // the parallelism. Pipelined mode parallelizes across
        // snapshots (1 thread per call); classic mode runs the fn
        // inline once per round, so it fans out like Server::evaluate.
        const int eval_threads = ps_->pipelined() ? 1 : 8;
        ps_->set_eval_fn([this, eval_threads](
                             const std::vector<float> &weights) {
            return evaluate_model_weights(cfg_.workload, weights,
                                          data_.test, eval_threads);
        });
    }
}

FlSystem::~FlSystem() = default;

const Dataset &
FlSystem::shard(int device_id) const
{
    assert(device_id >= 0 && device_id < num_devices());
    return shards_[static_cast<size_t>(device_id)];
}

int
FlSystem::classes_on_device(int device_id) const
{
    return partition_.classes_per_device[static_cast<size_t>(device_id)];
}

bool
FlSystem::device_non_iid(int device_id) const
{
    return partition_.non_iid[static_cast<size_t>(device_id)];
}

PsExecutor &
FlSystem::local_executor()
{
    if (!local_exec_) {
        local_exec_ = std::make_unique<PsExecutor>(std::max(1, cfg_.threads));
        local_trainers_.reserve(
            static_cast<size_t>(local_exec_->threads()));
        for (int t = 0; t < local_exec_->threads(); ++t)
            local_trainers_.push_back(
                std::make_unique<LocalTrainer>(cfg_.workload));
    }
    return *local_exec_;
}

std::vector<LocalUpdate>
FlSystem::run_local_round(const std::vector<int> &device_ids, uint64_t round)
{
    const size_t n = device_ids.size();
    std::vector<LocalUpdate> updates(n);
    PsExecutor &exec = local_executor();

    // FEDL phase 1: clients report full local gradients at the current
    // global weights; the server averages them into its global-gradient
    // estimate used by every client's correction term.
    std::vector<std::vector<float>> fedl_grads;
    if (server_.wants_full_gradients()) {
        fedl_grads.resize(n);
        for (size_t i = 0; i < n; ++i) {
            exec.submit([this, &fedl_grads, &device_ids, i](int worker) {
                fedl_grads[i] =
                    local_trainers_[static_cast<size_t>(worker)]
                        ->full_gradient(server_.global_weights(),
                                        shard(device_ids[i]));
            });
        }
        exec.wait_idle();
        server_.update_global_gradient(fedl_grads);
    }

    // One executor job per client. Placement is dynamic, but each
    // update is a pure function of (seed, device, round) — never of
    // the worker running it — so the trained weights are identical at
    // any thread count (same contract the seed's striped loop had).
    for (size_t i = 0; i < n; ++i) {
        exec.submit([this, &updates, &device_ids, &fedl_grads, round,
                     i](int worker) {
            const int dev = device_ids[i];
            if (cfg_.ps.sim_device_latency_s > 0.0) {
                std::this_thread::sleep_for(std::chrono::duration<double>(
                    cfg_.ps.sim_latency_for(dev)));
            }
            Rng rng = client_rng(cfg_.seed, dev, round);
            std::vector<float> correction;
            if (server_.wants_full_gradients())
                correction = server_.fedl_correction(fedl_grads[i]);
            updates[i] =
                local_trainers_[static_cast<size_t>(worker)]->train(
                    server_.global_weights(), shard(dev), cfg_.params,
                    cfg_.hyper, cfg_.algorithm, correction, rng);
            updates[i].device_id = dev;
        });
    }
    exec.wait_idle();
    return updates;
}

void
FlSystem::aggregate(const std::vector<LocalUpdate> &updates)
{
    server_.aggregate(updates);
}

PsRoundStats
FlSystem::run_round(const std::vector<int> &device_ids, uint64_t round)
{
    if (!ps_) {
        auto updates = run_local_round(device_ids, round);
        aggregate(updates);
        PsRoundStats stats;
        stats.pushed = static_cast<int>(updates.size());
        stats.applied = stats.pushed;
        stats.commits = updates.empty() ? 0 : 1;
        return stats;
    }
    std::vector<PsRoundJob> jobs;
    jobs.reserve(device_ids.size());
    for (int dev : device_ids)
        jobs.push_back(PsRoundJob{dev, &shard(dev)});
    return ps_->run_round(jobs, round);
}

void
FlSystem::submit_round(const std::vector<int> &device_ids, uint64_t round,
                       PsRoundCallback cb)
{
    if (!ps_) {
        // Synchronous runtime: the round and its evaluation run inline;
        // the callback fires before we return.
        PsRoundResult res;
        res.round = round;
        res.stats = run_round(device_ids, round);
        res.accuracy = evaluate();
        if (cb)
            cb(res);
        return;
    }
    std::vector<PsRoundJob> jobs;
    jobs.reserve(device_ids.size());
    for (int dev : device_ids)
        jobs.push_back(PsRoundJob{dev, &shard(dev)});
    ps_->submit_round(jobs, round, std::move(cb));
}

void
FlSystem::drain()
{
    if (ps_)
        ps_->drain();
}

bool
FlSystem::pipelined() const
{
    return ps_ && ps_->pipelined();
}

double
FlSystem::evaluate()
{
    return server_.evaluate(data_.test);
}

} // namespace autofl
