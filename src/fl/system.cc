#include "system.h"

#include <cassert>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "fl/fl_cluster.h"
#include "ps/executor.h"
#include "ps/ps_server.h"
#include "serve/model_service.h"
#include "store/model_registry.h"
#include "util/rng.h"

namespace autofl {

void
FlSystemConfig::validate() const
{
    if (threads < 1) {
        throw std::invalid_argument(
            "FlSystemConfig.threads must be >= 1 (got " +
            std::to_string(threads) +
            "): local training needs at least one worker");
    }
    ps.validate("FlSystemConfig.ps");
    serve.validate("FlSystemConfig.serve");
    if (!serve.registry_dir.empty() && !ps.snapshot_dir.empty()) {
        throw std::invalid_argument(
            "FlSystemConfig.serve.registry_dir and "
            "FlSystemConfig.ps.snapshot_dir are both set: registry "
            "publication derives the artifact directory from the "
            "registry (registry_dir/<model>), so a bare snapshot_dir "
            "would be silently ignored; set exactly one");
    }
    if (ps.net.enabled() && algorithm == Algorithm::Fedl) {
        throw std::invalid_argument(
            "FlSystemConfig.ps.net cannot run FEDL: its two-phase "
            "global-gradient exchange is a synchronous barrier the "
            "cluster round protocol does not speak; use FedAvg or "
            "FedProx");
    }
}

namespace {

/** Validate-then-copy so bad configs throw before any member builds. */
FlSystemConfig
validated(FlSystemConfig cfg)
{
    cfg.validate();
    return cfg;
}

} // namespace

FlSystem::FlSystem(const FlSystemConfig &cfg)
    : cfg_(validated(cfg)),
      data_(make_dataset(cfg_.workload, cfg_.data)),
      partition_(partition_dataset(data_.train, cfg_.partition)),
      server_(cfg_.workload, cfg_.algorithm, cfg_.hyper, cfg_.seed),
      profile_(model_profile(cfg_.workload))
{
    shards_.reserve(partition_.shards.size());
    for (const auto &indices : partition_.shards)
        shards_.push_back(data_.train.subset(indices));

    const uint64_t topology = store::model_topology_hash(
        workload_name(cfg_.workload), server_.global_weights().size());

    // Registry publication: register (or re-open) this system's model
    // in the configured registry and redirect checkpointing into the
    // model's registry directory — every artifact the run writes
    // becomes a servable name@version the moment its rename lands.
    // Must precede runtime construction: PsServer and the barrier
    // writer below both read ps.snapshot_dir.
    if (!cfg_.serve.registry_dir.empty()) {
        store::ModelRegistry registry(cfg_.serve.registry_dir);
        const std::string name = cfg_.serve.model_name.empty()
            ? workload_name(cfg_.workload)
            : cfg_.serve.model_name;
        std::string dir;
        const store::RegistryStatus rs = registry.publish_dir(
            name, workload_name(cfg_.workload), &dir);
        if (rs != store::RegistryStatus::Ok) {
            throw std::runtime_error(
                "FlSystem: cannot publish model '" + name +
                "' into registry '" + cfg_.serve.registry_dir +
                "': " + store::registry_status_name(rs) +
                (rs == store::RegistryStatus::BadManifest
                     ? " (the name is already bound to a different "
                       "workload, or its manifest is corrupt)"
                     : ""));
        }
        cfg_.ps.snapshot_dir = dir;
        // Registry-pinned versions join the retention pins so keep-last
        // pruning never deletes a version someone pinned.
        store::RegistryModel m;
        if (registry.lookup(name, &m) == store::RegistryStatus::Ok) {
            for (uint64_t r : m.pinned)
                cfg_.ps.snapshot_pinned.push_back(r);
        }
    }

    if (!cfg_.ps.resume_from.empty()) {
        // Restore BEFORE any runtime is built: PsServer's store, the
        // cluster and the sync barrier all seed from the server's
        // weights, so setting them here resumes every runtime alike.
        // The topology hash covers workload name + dimension, so a
        // wrong-model artifact fails typed (BadTopology), not by
        // scattering weights.
        store::SnapshotData snap;
        const store::SnapshotStatus st = store::read_snapshot_file(
            cfg_.ps.resume_from, &snap, topology);
        if (st != store::SnapshotStatus::Ok) {
            throw std::runtime_error(
                "FlSystem: cannot resume from '" + cfg_.ps.resume_from +
                "': " + store::snapshot_status_name(st) +
                " (artifacts are written by store::CheckpointWriter; "
                "point resume_from at <snapshot_dir>/latest.snap)");
        }
        assert(snap.weights.size() == server_.global_weights().size());
        server_.set_global_weights(std::move(snap.weights));
        resumed_ = true;
        resume_round_ = snap.meta.round;
    }

    if (cfg_.ps.net.enabled()) {
        // Distributed transport: the cluster owns the store and the
        // aggregator; it assembles its worker fleet lazily at the
        // first round so constructing a system stays cheap.
        cluster_ = std::make_unique<FlCluster>(*this);
    } else if (cfg_.ps.mode != SyncMode::Sync &&
               cfg_.algorithm != Algorithm::Fedl) {
        ps_ = std::make_unique<PsServer>(server_, cfg_.workload,
                                         cfg_.params, cfg_.hyper,
                                         cfg_.algorithm, cfg_.seed, cfg_.ps,
                                         cfg_.threads);
    }

    // Persistence for the runtimes whose commit point is the round
    // barrier on this thread (sync, cluster). The ps runtime owns its
    // own writer, hooked into its commit path instead.
    if (!cfg_.ps.snapshot_dir.empty() && !ps_) {
        store::RetentionPolicy retention;
        retention.keep_last = cfg_.ps.snapshot_keep_last;
        retention.pinned = cfg_.ps.snapshot_pinned;
        ckpt_ = std::make_unique<store::CheckpointWriter>(
            cfg_.ps.snapshot_dir, topology,
            static_cast<uint32_t>(cfg_.ps.shards), std::move(retention));
    }

    // The serving plane. Pipelined mode sources snapshots straight from
    // the store (commit waves publish them); the synchronous and
    // classic runtimes publish at their round barrier, in evaluate().
    // Slot count covers the concurrent eval pool so its workers never
    // serialize on a shared scratch model.
    ServeConfig scfg = cfg_.serve;
    if (ps_ && ps_->pipelined())
        scfg.workers = std::max(scfg.workers, cfg_.ps.eval_workers);
    serve_ = std::make_unique<ModelService>(cfg_.workload, scfg);
    if (ps_ && ps_->pipelined())
        serve_->attach_store(&ps_->store());

    if (ps_) {
        // Snapshot scorer for the runtime's eval path. Accuracy is an
        // integer count, deterministic at any fan-out; the pipelined
        // eval pool parallelizes across snapshots (fan-out 1 per call)
        // while the classic barrier fans one call out across slots.
        const int fan_out = ps_->pipelined() ? 1 : 0;
        ps_->set_eval_fn([this, fan_out](const StoreSnapshot &snap) {
            return serve_->evaluate(SnapshotHandle(snap), data_.test,
                                    fan_out)
                .accuracy;
        });
    }
}

FlSystem::~FlSystem()
{
    // The dynamic batcher's dispatcher threads acquire store snapshots,
    // and the store dies with ps_ (destroyed before serve_, which must
    // outlive the pipeline drain). Stop serving first so no dispatcher
    // touches the store after it; queued online requests complete as
    // Shutdown, the pipeline's queued eval closures still run — they
    // call the engine directly, not the batcher.
    if (serve_)
        serve_->stop_serving();
}

const Dataset &
FlSystem::shard(int device_id) const
{
    assert(device_id >= 0 && device_id < num_devices());
    return shards_[static_cast<size_t>(device_id)];
}

int
FlSystem::classes_on_device(int device_id) const
{
    return partition_.classes_per_device[static_cast<size_t>(device_id)];
}

bool
FlSystem::device_non_iid(int device_id) const
{
    return partition_.non_iid[static_cast<size_t>(device_id)];
}

PsExecutor &
FlSystem::local_executor()
{
    if (!local_exec_) {
        local_exec_ = std::make_unique<PsExecutor>(std::max(1, cfg_.threads));
        local_trainers_.reserve(
            static_cast<size_t>(local_exec_->threads()));
        for (int t = 0; t < local_exec_->threads(); ++t)
            local_trainers_.push_back(
                std::make_unique<LocalTrainer>(cfg_.workload));
    }
    return *local_exec_;
}

std::vector<LocalUpdate>
FlSystem::run_local_round(const std::vector<int> &device_ids, uint64_t round)
{
    const size_t n = device_ids.size();
    std::vector<LocalUpdate> updates(n);
    PsExecutor &exec = local_executor();

    // FEDL phase 1: clients report full local gradients at the current
    // global weights; the server averages them into its global-gradient
    // estimate used by every client's correction term.
    std::vector<std::vector<float>> fedl_grads;
    if (server_.wants_full_gradients()) {
        fedl_grads.resize(n);
        for (size_t i = 0; i < n; ++i) {
            exec.submit([this, &fedl_grads, &device_ids, i](int worker) {
                fedl_grads[i] =
                    local_trainers_[static_cast<size_t>(worker)]
                        ->full_gradient(server_.global_weights(),
                                        shard(device_ids[i]));
            });
        }
        exec.wait_idle();
        server_.update_global_gradient(fedl_grads);
    }

    // One executor job per client. Placement is dynamic, but each
    // update is a pure function of (seed, device, round) — never of
    // the worker running it — so the trained weights are identical at
    // any thread count (same contract the seed's striped loop had).
    for (size_t i = 0; i < n; ++i) {
        exec.submit([this, &updates, &device_ids, &fedl_grads, round,
                     i](int worker) {
            const int dev = device_ids[i];
            if (cfg_.ps.sim_device_latency_s > 0.0) {
                std::this_thread::sleep_for(std::chrono::duration<double>(
                    cfg_.ps.sim_latency_for(dev)));
            }
            Rng rng = client_rng(cfg_.seed, dev, round);
            std::vector<float> correction;
            if (server_.wants_full_gradients())
                correction = server_.fedl_correction(fedl_grads[i]);
            updates[i] =
                local_trainers_[static_cast<size_t>(worker)]->train(
                    server_.global_weights(), shard(dev), cfg_.params,
                    cfg_.hyper, cfg_.algorithm, correction, rng);
            updates[i].device_id = dev;
        });
    }
    exec.wait_idle();
    return updates;
}

void
FlSystem::aggregate(const std::vector<LocalUpdate> &updates)
{
    server_.aggregate(updates);
}

PsRoundStats
FlSystem::run_round(const std::vector<int> &device_ids, uint64_t round)
{
    if (cluster_) {
        if (!cluster_->started()) {
            std::string err;
            if (!cluster_->start(&err))
                throw std::runtime_error("FlSystem: cluster start "
                                         "failed: " +
                                         err);
        }
        PsRoundStats stats = cluster_->run_round(device_ids, round);
        maybe_checkpoint(round);  // Cluster synced the server above.
        return stats;
    }
    if (!ps_) {
        auto updates = run_local_round(device_ids, round);
        aggregate(updates);
        PsRoundStats stats;
        stats.pushed = static_cast<int>(updates.size());
        stats.applied = stats.pushed;
        stats.commits = updates.empty() ? 0 : 1;
        maybe_checkpoint(round);
        return stats;
    }
    std::vector<PsRoundJob> jobs;
    jobs.reserve(device_ids.size());
    for (int dev : device_ids)
        jobs.push_back(PsRoundJob{dev, &shard(dev)});
    return ps_->run_round(jobs, round);
}

void
FlSystem::submit_round(const std::vector<int> &device_ids, uint64_t round,
                       PsRoundCallback cb)
{
    if (!ps_) {
        // Synchronous runtime: the round and its evaluation run inline;
        // the callback fires before we return.
        PsRoundResult res;
        res.round = round;
        res.stats = run_round(device_ids, round);
        res.accuracy = evaluate();
        if (cb)
            cb(res);
        return;
    }
    std::vector<PsRoundJob> jobs;
    jobs.reserve(device_ids.size());
    for (int dev : device_ids)
        jobs.push_back(PsRoundJob{dev, &shard(dev)});
    ps_->submit_round(jobs, round, std::move(cb));
}

void
FlSystem::drain()
{
    if (ps_)
        ps_->drain();
}

bool
FlSystem::pipelined() const
{
    return ps_ && ps_->pipelined();
}

store::CheckpointWriter *
FlSystem::checkpoint_writer()
{
    return ps_ ? ps_->checkpoint_writer() : ckpt_.get();
}

void
FlSystem::maybe_checkpoint(uint64_t round)
{
    // Barrier runtimes have no store commit clock; the artifact epoch
    // counts completed rounds (round + 1), which for single-commit
    // rounds is exactly what the ps runtimes would stamp.
    if (ckpt_ && cfg_.ps.snapshot_due(round)) {
        ckpt_->request(round, round + 1,
                       std::make_shared<const std::vector<float>>(
                           server_.global_weights()));
    }
}

double
FlSystem::evaluate()
{
    // One consumption path for every runtime: snapshot handle in,
    // batched engine eval out. Store-backed services (pipelined mode)
    // already hold the latest commit snapshot; the barrier runtimes
    // publish the current global weights as a model version first (a
    // no-op when the weights haven't changed).
    if (!serve_->store_backed())
        serve_->publish(server_.global_weights());
    return serve_->evaluate(serve_->acquire(), data_.test).accuracy;
}

} // namespace autofl
