#include "fl_cluster.h"

#include <chrono>
#include <cstdio>
#include <thread>

#include "fl/client.h"
#include "fl/system.h"
#include "util/rng.h"

namespace autofl {

namespace {

/**
 * The worker-side train function: a pure function of (seed, device,
 * round) exactly like every other runtime's, so where a job runs —
 * loopback thread, forked process, another machine — never shows in
 * the trained weights.
 */
LocalUpdate
train_cluster_job(LocalTrainer &trainer, const FlSystemConfig &cfg,
                  const Dataset &shard, const net::WorkerJob &job)
{
    if (cfg.ps.sim_device_latency_s > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(
            cfg.ps.sim_latency_for(job.device_id)));
    }
    Rng rng = client_rng(cfg.seed, job.device_id, job.round);
    LocalUpdate u = trainer.train(job.weights, shard, cfg.params,
                                  cfg.hyper, cfg.algorithm, {}, rng);
    u.device_id = job.device_id;
    return u;
}

} // namespace

FlCluster::FlCluster(FlSystem &sys) : sys_(sys)
{
}

FlCluster::~FlCluster()
{
    shutdown();
}

bool
FlCluster::start(std::string *err)
{
    if (cluster_)
        return true;
    const FlSystemConfig &cfg = sys_.config();
    const NetConfig &ncfg = cfg.ps.net;
    auto cluster = std::make_unique<net::ClusterServer>(
        sys_.server().global_weights(), cfg.algorithm, cfg.ps);

    const net::NetAddress addr = net::NetAddress::parse(ncfg.listen);
    if (addr.scheme == net::NetAddress::Scheme::Loopback) {
        for (int i = 0; i < ncfg.workers; ++i) {
            auto [server_end, worker_end] = net::make_loopback_pair();
            cluster->add_worker(std::move(server_end));
            auto lw = std::make_unique<LoopWorker>();
            lw->worker = std::make_unique<net::ClusterWorker>(
                std::move(worker_end), ncfg, cfg.ps.compression);
            net::ClusterWorker *w = lw->worker.get();
            lw->thread = std::thread([this, w, &cfg] {
                std::string join_err;
                if (!w->join(&join_err)) {
                    std::fprintf(stderr, "[net] loopback worker: %s\n",
                                 join_err.c_str());
                    return;
                }
                LocalTrainer trainer(cfg.workload);
                w->run([this, &trainer, &cfg](const net::WorkerJob &job) {
                    return train_cluster_job(trainer, cfg,
                                             sys_.shard(job.device_id),
                                             job);
                });
            });
            loop_workers_.push_back(std::move(lw));
        }
        cluster_ = std::move(cluster);
        return true;
    }

    if (!addr.socket_scheme()) {
        if (err)
            *err = "ps.net.listen '" + ncfg.listen +
                "' is not a cluster scheme";
        return false;
    }
    cluster_ = std::move(cluster);
    if (!cluster_->start_listening(err)) {
        cluster_.reset();
        return false;
    }
    if (!ncfg.spawn_cmd.empty()) {
        procs_ = std::make_unique<net::WorkerProcessGroup>();
        const int spawned =
            procs_->spawn(ncfg.workers, ncfg.spawn_cmd, ncfg.listen);
        if (spawned < ncfg.workers) {
            if (err)
                *err = "spawned only " + std::to_string(spawned) + " of " +
                    std::to_string(ncfg.workers) + " worker processes";
            shutdown();
            return false;
        }
    }
    const int joined =
        cluster_->accept_workers(ncfg.workers, ncfg.join_timeout_ms);
    if (joined < ncfg.workers) {
        if (err)
            *err = "only " + std::to_string(joined) + " of " +
                std::to_string(ncfg.workers) + " workers joined within " +
                std::to_string(ncfg.join_timeout_ms) + " ms";
        shutdown();
        return false;
    }
    return true;
}

PsRoundStats
FlCluster::run_round(const std::vector<int> &device_ids, uint64_t round)
{
    std::vector<net::ClusterJob> jobs;
    jobs.reserve(device_ids.size());
    for (int dev : device_ids)
        jobs.push_back(net::ClusterJob{dev});
    PsRoundStats stats = cluster_->run_round(jobs, round);
    // Same barrier contract as the classic runtime: after the round the
    // Server's weights ARE the store, so evaluate() and the serving
    // plane consume cluster rounds unchanged.
    sys_.server().set_global_weights(cluster_->store().read());
    return stats;
}

void
FlCluster::shutdown()
{
    if (shut_)
        return;
    shut_ = true;
    if (cluster_)
        cluster_->shutdown();
    for (auto &lw : loop_workers_)
        if (lw->thread.joinable())
            lw->thread.join();
    if (procs_) {
        const FlSystemConfig &cfg = sys_.config();
        exits_ = procs_->wait_all(
            std::max(5000, cfg.ps.net.heartbeat_timeout_ms * 2));
        procs_.reset();
    }
}

net::ClusterWorker *
FlCluster::loopback_worker(int i)
{
    if (i < 0 || i >= static_cast<int>(loop_workers_.size()))
        return nullptr;
    return loop_workers_[static_cast<size_t>(i)]->worker.get();
}

int
run_cluster_worker(const FlSystemConfig &cfg, const std::string &addr_str)
{
    // Rebuild the data plane exactly as the server did: make_dataset and
    // the partitioner are deterministic in (workload, data, partition),
    // so both sides hold identical shards without a byte of data on the
    // wire.
    TrainTestSplit data = make_dataset(cfg.workload, cfg.data);
    Partition partition = partition_dataset(data.train, cfg.partition);
    std::vector<Dataset> shards;
    shards.reserve(partition.shards.size());
    for (const auto &indices : partition.shards)
        shards.push_back(data.train.subset(indices));

    const net::NetAddress addr = net::NetAddress::parse(addr_str);
    std::string err;
    auto van = net::dial(addr, cfg.ps.net.connect_retry,
                         cfg.ps.net.connect_retry_delay_ms, &err);
    if (!van) {
        std::fprintf(stderr, "[net] worker: dial %s failed: %s\n",
                     addr_str.c_str(), err.c_str());
        return 1;
    }
    net::ClusterWorker worker(std::move(van), cfg.ps.net,
                              cfg.ps.compression);
    if (!worker.join(&err)) {
        std::fprintf(stderr, "[net] worker: %s\n", err.c_str());
        return 1;
    }
    LocalTrainer trainer(cfg.workload);
    const bool clean =
        worker.run([&](const net::WorkerJob &job) {
            const auto dev = static_cast<size_t>(job.device_id);
            return train_cluster_job(trainer, cfg, shards.at(dev), job);
        });
    return clean ? 0 : 2;
}

} // namespace autofl
