#include "fl_types.h"

namespace autofl {

FlGlobalParams
global_params_for(ParamSetting s)
{
    // Table 5: (B, E, K).
    switch (s) {
      case ParamSetting::S1:
        return {32, 10, 20};
      case ParamSetting::S2:
        return {32, 5, 20};
      case ParamSetting::S3:
        return {16, 5, 20};
      case ParamSetting::S4:
        return {16, 5, 10};
    }
    return {};
}

std::string
param_setting_name(ParamSetting s)
{
    switch (s) {
      case ParamSetting::S1:
        return "S1";
      case ParamSetting::S2:
        return "S2";
      case ParamSetting::S3:
        return "S3";
      case ParamSetting::S4:
        return "S4";
    }
    return "?";
}

const std::vector<ParamSetting> &
all_param_settings()
{
    static const std::vector<ParamSetting> kAll = {
        ParamSetting::S1, ParamSetting::S2, ParamSetting::S3,
        ParamSetting::S4};
    return kAll;
}

std::string
algorithm_name(Algorithm a)
{
    switch (a) {
      case Algorithm::FedAvg:
        return "FedAvg";
      case Algorithm::FedProx:
        return "FedProx";
      case Algorithm::FedNova:
        return "FedNova";
      case Algorithm::Fedl:
        return "FEDL";
    }
    return "unknown";
}

} // namespace autofl
