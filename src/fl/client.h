/**
 * @file
 * Local training: one device's E epochs of minibatch SGD on its shard
 * (Step 3 of the FL protocol, Figure 2).
 */
#ifndef AUTOFL_FL_CLIENT_H
#define AUTOFL_FL_CLIENT_H

#include <memory>

#include "data/dataset.h"
#include "fl/fl_types.h"
#include "nn/models.h"
#include "nn/sgd.h"
#include "util/rng.h"

namespace autofl {

/**
 * Reusable local-training engine. One instance holds one scratch model of
 * the workload's architecture; train() loads the broadcast global weights,
 * runs local SGD and returns the updated weights. Instances are
 * independent, so one per worker thread enables parallel client training.
 */
class LocalTrainer
{
  public:
    explicit LocalTrainer(Workload workload);

    /**
     * Run local training.
     *
     * @param global_weights Broadcast global model (flat layout).
     * @param shard This device's local dataset.
     * @param params Global (B, E, K) parameters; B and E are used here.
     * @param hyper Learning-rate and algorithm hyperparameters.
     * @param alg Algorithm: FedProx adds the proximal term; FEDL adds the
     *        gradient-correction linear term.
     * @param fedl_correction FEDL per-weight linear-term coefficients
     *        (empty unless alg == Fedl).
     * @param rng Per-device, per-round RNG (epoch shuffling).
     */
    LocalUpdate train(const std::vector<float> &global_weights,
                      const Dataset &shard, const FlGlobalParams &params,
                      const TrainHyper &hyper, Algorithm alg,
                      const std::vector<float> &fedl_correction, Rng rng);

    /**
     * Full-shard average gradient at the given weights (one forward +
     * backward pass, no update). Used by FEDL's correction term.
     */
    std::vector<float> full_gradient(const std::vector<float> &weights,
                                     const Dataset &shard);

    /** The wrapped model (tests). */
    Sequential &model() { return model_; }

  private:
    Workload workload_;
    Sequential model_;
};

} // namespace autofl

#endif // AUTOFL_FL_CLIENT_H
