/**
 * @file
 * Shared federated-learning types: global parameters (Table 5), training
 * hyperparameters, aggregation algorithm selection, and update payloads.
 */
#ifndef AUTOFL_FL_FL_TYPES_H
#define AUTOFL_FL_FL_TYPES_H

#include <string>
#include <vector>

namespace autofl {

/**
 * FL global parameters (B, E, K) fixed by the service provider for the
 * lifetime of a training job (Section 2.1).
 */
struct FlGlobalParams
{
    int batch_size = 16;  ///< Local minibatch size B.
    int epochs = 5;       ///< Local epochs E per round.
    int k = 20;           ///< Participants per round K.
};

/** The paper's four global-parameter settings (Table 5). */
enum class ParamSetting { S1, S2, S3, S4 };

/** Table 5 values for a setting. */
FlGlobalParams global_params_for(ParamSetting s);

/** Name like "S1". */
std::string param_setting_name(ParamSetting s);

/** All settings, for sweeps. */
const std::vector<ParamSetting> &all_param_settings();

/** Server-side aggregation / client-objective algorithm. */
enum class Algorithm {
    FedAvg,   ///< Weighted averaging of local weights (McMahan et al.).
    FedProx,  ///< FedAvg + proximal term on the local objective.
    FedNova,  ///< Normalized averaging by local step counts (Wang et al.).
    Fedl,     ///< Gradient-correction local objective (Dinh et al.).
};

/** Human-readable algorithm name. */
std::string algorithm_name(Algorithm a);

/** Local-training hyperparameters. */
struct TrainHyper
{
    double lr = 0.025;         ///< Local SGD learning rate.
    double momentum = 0.0;     ///< Local SGD momentum.
    double prox_mu = 0.01;     ///< FedProx proximal strength.
    double fedl_eta = 0.5;     ///< FEDL gradient-correction weight.
};

/** Result of one device's local training. */
struct LocalUpdate
{
    int device_id = -1;
    std::vector<float> weights;  ///< Post-training local weights.
    int num_steps = 0;           ///< SGD steps taken (tau_i for FedNova).
    int num_samples = 0;         ///< Shard size (FedAvg weighting).
    double train_loss = 0.0;     ///< Mean loss over the last local epoch.
    double train_acc = 0.0;      ///< Accuracy over the last local epoch.
};

} // namespace autofl

#endif // AUTOFL_FL_FL_TYPES_H
