/**
 * @file
 * FlSystem: the complete training-side FL stack — per-device shards, the
 * aggregation server, and (multithreaded) local training — independent of
 * any scheduling policy. Policies decide *who* trains; FlSystem does the
 * actual learning so accuracy dynamics (IID vs non-IID, straggler drops)
 * are real, not modeled.
 */
#ifndef AUTOFL_FL_SYSTEM_H
#define AUTOFL_FL_SYSTEM_H

#include <memory>
#include <vector>

#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/client.h"
#include "fl/server.h"
#include "ps/ps_config.h"
#include "serve/serve_config.h"
#include "store/checkpoint_writer.h"

namespace autofl {

class PsServer;
class PsExecutor;
class ModelService;
class FlCluster;

/** Configuration of one FL training job. */
struct FlSystemConfig
{
    Workload workload = Workload::CnnMnist;
    FlGlobalParams params;                 ///< (B, E, K).
    Algorithm algorithm = Algorithm::FedAvg;
    TrainHyper hyper;
    SyntheticConfig data;                  ///< Dataset generation.
    PartitionConfig partition;             ///< Shard assignment.
    uint64_t seed = 1234;                  ///< Weight init + client RNG.
    int threads = 8;                       ///< Parallel local training.
    PsConfig ps;                           ///< Parameter-server runtime.
    ServeConfig serve;                     ///< Model-serving plane.

    /**
     * Check the runtime knobs, throwing std::invalid_argument with an
     * actionable message on the first violation. FlSystem's
     * constructor calls this before building anything.
     */
    void validate() const;
};

/** Complete FL training stack for one job. */
class FlSystem
{
  public:
    explicit FlSystem(const FlSystemConfig &cfg);
    ~FlSystem();

    /** Number of devices holding shards. */
    int num_devices() const { return static_cast<int>(shards_.size()); }

    /** A device's local dataset. */
    const Dataset &shard(int device_id) const;

    /** Distinct label classes on a device (the S_Data feature input). */
    int classes_on_device(int device_id) const;

    /** Whether the partitioner made the device non-IID. */
    bool device_non_iid(int device_id) const;

    /** Global held-out test set. */
    const Dataset &test_set() const { return data_.test; }

    /** The aggregation server. */
    Server &server() { return server_; }
    const Server &server() const { return server_; }

    /**
     * Run local training on the selected devices, parallel across a
     * persistent PsExecutor pool (created on first use, reused every
     * round — client-level parallelism composes with the SIMD kernels
     * each job runs on). Updates are returned in @p device_ids order
     * and are a pure function of (seed, device, round), never of job
     * placement. FEDL's two-phase gradient exchange happens inside
     * when configured.
     * @param round Round index (decorrelates per-round client RNG).
     */
    std::vector<LocalUpdate> run_local_round(
        const std::vector<int> &device_ids, uint64_t round);

    /** Aggregate the given (included) updates into the global model. */
    void aggregate(const std::vector<LocalUpdate> &updates);

    /**
     * Unified round entry dispatching on cfg.ps.mode: the synchronous
     * barrier (run_local_round + aggregate) or the parameter-server
     * runtime (concurrent jobs, bounded-staleness aggregation). FEDL
     * always takes the synchronous path — its gradient exchange is a
     * barrier by construction.
     */
    PsRoundStats run_round(const std::vector<int> &device_ids,
                           uint64_t round);

    /**
     * Streaming round entry: enqueue the round and return. Under the
     * pipelined ps runtime (cfg.ps.pipeline_depth > 1) up to depth
     * rounds overlap and @p cb fires in round order — with the round's
     * test accuracy scored by a concurrent eval worker from the round's
     * final store snapshot — once the round retires. Under any other
     * runtime the round (and its evaluation) runs inline and @p cb
     * fires before this returns, so drivers can use one code path.
     * Submit from one driver thread, in increasing round order.
     */
    void submit_round(const std::vector<int> &device_ids, uint64_t round,
                      PsRoundCallback cb);

    /** Wait until every submitted round's callback has returned. */
    void drain();

    /** Whether submit_round actually overlaps rounds. */
    bool pipelined() const;

    /** The ps runtime, or null when running synchronously. */
    PsServer *ps() { return ps_.get(); }

    /**
     * The distributed cluster runtime (cfg.ps.net.listen != ""), or
     * null. Started lazily at the first round; rounds route through it
     * instead of the in-process runtimes.
     */
    FlCluster *cluster() { return cluster_.get(); }

    /**
     * The serving plane: versioned snapshot handles over this job's
     * global model plus the batched inference engine. Safe to query
     * from any thread, concurrently with (pipelined) training.
     */
    ModelService &serve() { return *serve_; }

    /**
     * Test accuracy of the current global model — a thin call into the
     * serving plane (acquire the latest snapshot, batched engine eval).
     */
    double evaluate();

    /** Job configuration. */
    const FlSystemConfig &config() const { return cfg_; }

    /** Structural profile of the trained model. */
    const NnProfile &profile() const { return profile_; }

    /**
     * Whether cfg.ps.resume_from restored an artifact into the server
     * before any runtime was built. All runtimes seed from the
     * server's weights (PsServer's store, the cluster, the sync
     * barrier), so a resumed system continues from the artifact state
     * no matter which path trains.
     */
    bool resumed() const { return resumed_; }

    /**
     * The restored artifact's round (meaningless unless resumed()).
     * Drivers continue the round sequence at resume_round() + 1; for
     * single-batch rounds the continuation is bit-identical to the
     * uninterrupted run (see PsConfig::resume_from).
     */
    uint64_t resume_round() const { return resume_round_; }

    /**
     * The active snapshot persistence writer: the ps runtime's when it
     * owns one, this system's for the sync/cluster runtimes, null when
     * cfg.ps.snapshot_dir is unset.
     */
    store::CheckpointWriter *checkpoint_writer();

  private:
    FlSystemConfig cfg_;
    TrainTestSplit data_;
    Partition partition_;
    std::vector<Dataset> shards_;
    Server server_;
    NnProfile profile_;

    // Declared before ps_ so it is destroyed after it: ~PsServer drains
    // the pipeline, whose queued eval closures call into serve_ — the
    // serving plane must outlive that drain.
    std::unique_ptr<ModelService> serve_;  ///< The serving plane.
    std::unique_ptr<PsServer> ps_;  ///< Non-null when cfg.ps.mode != Sync.
    std::unique_ptr<FlCluster> cluster_;  ///< Non-null when ps.net set.

    /**
     * Snapshot persistence for the runtimes that do NOT own a
     * PsServer (sync barrier, cluster): their commit point is the
     * round barrier on this thread, so the system itself requests the
     * checkpoints (see run_round). Null when ps_ owns the writer or
     * persistence is off.
     */
    std::unique_ptr<store::CheckpointWriter> ckpt_;
    bool resumed_ = false;
    uint64_t resume_round_ = 0;

    /** Barrier-runtime checkpoint point (no-op without ckpt_). */
    void maybe_checkpoint(uint64_t round);

    // Synchronous-path training pool: lazily created, then reused for
    // every round (the seed spawned fresh std::threads per round).
    std::unique_ptr<PsExecutor> local_exec_;
    std::vector<std::unique_ptr<LocalTrainer>> local_trainers_;

    /** Ensure local_exec_/local_trainers_ exist. */
    PsExecutor &local_executor();
};

} // namespace autofl

#endif // AUTOFL_FL_SYSTEM_H
