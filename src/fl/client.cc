#include "client.h"

#include <algorithm>
#include <cassert>

#include "nn/loss.h"

namespace autofl {

LocalTrainer::LocalTrainer(Workload workload)
    : workload_(workload), model_(make_model(workload))
{
}

LocalUpdate
LocalTrainer::train(const std::vector<float> &global_weights,
                    const Dataset &shard, const FlGlobalParams &params,
                    const TrainHyper &hyper, Algorithm alg,
                    const std::vector<float> &fedl_correction, Rng rng)
{
    assert(!shard.empty());
    model_.set_flat_weights(global_weights);
    Sgd opt(hyper.lr, hyper.momentum);
    SoftmaxCrossEntropy loss;

    const int n = static_cast<int>(shard.size());
    const int batch = std::max(1, std::min(params.batch_size, n));

    std::vector<int> order(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        order[static_cast<size_t>(i)] = i;

    LocalUpdate update;
    update.num_samples = n;

    double last_epoch_loss = 0.0;
    int last_epoch_correct = 0;
    for (int epoch = 0; epoch < params.epochs; ++epoch) {
        rng.shuffle(order);
        last_epoch_loss = 0.0;
        last_epoch_correct = 0;
        int batches = 0;
        for (int start = 0; start < n; start += batch, ++batches) {
            const int end = std::min(n, start + batch);
            std::vector<int> idx(order.begin() + start, order.begin() + end);
            Tensor x = shard.batch_x(idx);
            std::vector<int> y = shard.batch_y(idx);

            model_.zero_grad();
            Tensor logits = model_.forward(std::move(x));
            last_epoch_loss += loss.forward(logits, y);
            last_epoch_correct += loss.correct();
            model_.backward(loss.backward());

            if (alg == Algorithm::Fedl && !fedl_correction.empty()) {
                // FEDL linear term: add the correction coefficients to
                // every parameter gradient before the step.
                auto grads = model_.grads();
                size_t off = 0;
                for (Tensor *g : grads) {
                    for (size_t i = 0; i < g->size(); ++i, ++off)
                        (*g)[i] += fedl_correction[off];
                }
            }

            if (alg == Algorithm::FedProx) {
                opt.step_prox(model_, global_weights, hyper.prox_mu);
            } else {
                opt.step(model_);
            }
            ++update.num_steps;
        }
        if (batches > 0)
            last_epoch_loss /= batches;
    }

    update.weights = model_.flat_weights();
    update.train_loss = last_epoch_loss;
    update.train_acc = n > 0 ? static_cast<double>(last_epoch_correct) / n
                             : 0.0;
    return update;
}

std::vector<float>
LocalTrainer::full_gradient(const std::vector<float> &weights,
                            const Dataset &shard)
{
    model_.set_flat_weights(weights);
    model_.zero_grad();
    std::vector<int> idx(shard.size());
    for (size_t i = 0; i < shard.size(); ++i)
        idx[i] = static_cast<int>(i);
    Tensor x = shard.batch_x(idx);
    std::vector<int> y = shard.batch_y(idx);
    SoftmaxCrossEntropy loss;
    Tensor logits = model_.forward(std::move(x));
    loss.forward(logits, y);
    model_.backward(loss.backward());

    std::vector<float> out;
    out.reserve(model_.num_params());
    for (Tensor *g : model_.grads())
        out.insert(out.end(), g->vec().begin(), g->vec().end());
    return out;
}

} // namespace autofl
