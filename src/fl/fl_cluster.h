/**
 * @file
 * FlCluster: the FL system's face of the distributed transport
 * (src/net/). Owns a ClusterServer built from the job's global model
 * and, depending on cfg.ps.net.listen, either a fleet of in-process
 * loopback workers (deterministic; the bit-parity fast case) or real
 * worker processes over Unix/TCP sockets (spawned from
 * cfg.ps.net.spawn_cmd, or attached externally).
 *
 * Rounds route through ClusterServer::run_round and the trained store
 * is synced back into the Server after every round, so evaluate() and
 * the serving plane work unchanged — a cluster-backed FlSystem is
 * observationally the classic one, just with the workers elsewhere.
 */
#ifndef AUTOFL_FL_FL_CLUSTER_H
#define AUTOFL_FL_FL_CLUSTER_H

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/cluster.h"
#include "net/process.h"
#include "net/worker.h"
#include "ps/ps_config.h"

namespace autofl {

class FlSystem;
struct FlSystemConfig;

/** Cluster-backed round runtime of one FlSystem. */
class FlCluster
{
  public:
    /** Binds to @p sys; nothing starts until start(). */
    explicit FlCluster(FlSystem &sys);

    /** Shuts down if still running. */
    ~FlCluster();

    FlCluster(const FlCluster &) = delete;
    FlCluster &operator=(const FlCluster &) = delete;

    /**
     * Bring the cluster up: build the server from the current global
     * weights, then — loopback — spawn cfg.ps.net.workers in-process
     * worker threads, or — socket schemes — listen, spawn the
     * configured worker processes (when spawn_cmd is set) and accept
     * them. False with @p err set when the fleet cannot assemble.
     */
    bool start(std::string *err);

    /** Whether start() has completed successfully. */
    bool started() const { return cluster_ != nullptr; }

    /**
     * Run one round of @p device_ids through the cluster and sync the
     * store back into the Server. Dead workers' jobs surface as
     * `evicted`, never as a hang.
     */
    PsRoundStats run_round(const std::vector<int> &device_ids,
                           uint64_t round);

    /** Graceful stop: cluster shutdown, join threads / reap processes. */
    void shutdown();

    net::ClusterServer &server() { return *cluster_; }

    /**
     * Loopback worker @p i (0-based spawn order), for fault injection
     * in tests; null in socket mode or out of range.
     */
    net::ClusterWorker *loopback_worker(int i);

    /** Process fleet handle (chaos injection); null in loopback mode. */
    net::WorkerProcessGroup *processes() { return procs_.get(); }

    /** Exit records collected by shutdown() (socket mode). */
    const std::vector<net::WorkerExit> &worker_exits() const
    {
        return exits_;
    }

  private:
    struct LoopWorker
    {
        std::unique_ptr<net::ClusterWorker> worker;
        std::thread thread;
    };

    FlSystem &sys_;
    std::unique_ptr<net::ClusterServer> cluster_;
    std::vector<std::unique_ptr<LoopWorker>> loop_workers_;
    std::unique_ptr<net::WorkerProcessGroup> procs_;
    std::vector<net::WorkerExit> exits_;
    bool shut_ = false;
};

/**
 * Entry point of a worker process: rebuild the datasets
 * deterministically from @p cfg (no data ships over the wire), dial
 * @p addr, join, and serve rounds until the server says Shutdown.
 * Returns a process exit code: 0 clean shutdown, 1 could not join,
 * 2 transport died mid-run.
 */
int run_cluster_worker(const FlSystemConfig &cfg, const std::string &addr);

} // namespace autofl

#endif // AUTOFL_FL_FL_CLUSTER_H
