/**
 * @file
 * Aggregation arithmetic shared by the synchronous Server and the
 * parameter-server runtime's AsyncAggregator. Keeping both paths on one
 * implementation is what makes SemiAsync with staleness bound 0
 * reproduce synchronous FedAvg bit-for-bit: identical accumulation
 * order, identical double-precision intermediates, identical rounding.
 */
#ifndef AUTOFL_FL_AGGREGATION_H
#define AUTOFL_FL_AGGREGATION_H

#include <vector>

#include "fl/fl_types.h"

namespace autofl {

/**
 * Sample-weighted FedAvg combine (also used by FedProx and FEDL): the
 * weighted average of the updates' weight vectors with per-update mass
 * e_j = factor_j * num_samples_j (factor_j = 1 when @p factors is null).
 *
 * @param updates Non-empty update set, all of one dimension.
 * @param factors Optional per-update staleness factors, parallel to
 *        @p updates. All-1.0 factors reproduce plain FedAvg exactly.
 * @param lambda_out Optional: receives sum(e_j) / sum(num_samples_j),
 *        the fraction of the batch's mass surviving staleness damping
 *        (exactly 1.0 when every factor is 1.0). Used as the blend rate
 *        for semi-async commits.
 */
std::vector<float> fedavg_combine(const std::vector<LocalUpdate> &updates,
                                  const std::vector<double> *factors,
                                  double *lambda_out);

/**
 * FedNova normalized-averaging step applied in place to @p weights:
 * average the normalized directions d_j = (w - u_j) / tau_j with mass
 * e_j, then step by tau_eff = sum(p_j * tau_j). Null @p factors means
 * all-1.0 (the synchronous path).
 */
void fednova_apply(std::vector<float> &weights,
                   const std::vector<LocalUpdate> &updates,
                   const std::vector<double> *factors);

} // namespace autofl

#endif // AUTOFL_FL_AGGREGATION_H
