/**
 * @file
 * Aggregation arithmetic shared by the synchronous Server and the
 * parameter-server runtime's AsyncAggregator. Keeping both paths on one
 * implementation is what makes SemiAsync with staleness bound 0
 * reproduce synchronous FedAvg bit-for-bit: identical accumulation
 * order, identical double-precision intermediates, identical rounding.
 */
#ifndef AUTOFL_FL_AGGREGATION_H
#define AUTOFL_FL_AGGREGATION_H

#include <vector>

#include "fl/fl_types.h"

namespace autofl {

/**
 * Precomputed per-batch FedAvg coefficients. Splitting the combine into
 * a plan (O(K)) plus per-range accumulation (O(range * K)) is what lets
 * the striped aggregator commit disjoint store shards independently
 * while keeping the arithmetic — and therefore the bit pattern — of the
 * one-shot combine: every weight index sees the identical sequence of
 * double-precision operations either way.
 */
struct FedAvgPlan
{
    std::vector<double> prob;  ///< p_j = e_j / sum(e), e_j = f_j * n_j.
    double lambda = 0.0;       ///< sum(e_j) / sum(n_j); 1.0 when fresh.
};

/**
 * Build the FedAvg plan for a batch. Null @p factors means all-1.0
 * (plain FedAvg; lambda exactly 1.0).
 */
FedAvgPlan fedavg_plan(const std::vector<LocalUpdate> &updates,
                       const std::vector<double> *factors);

/**
 * Accumulate the planned weighted average over flat indices
 * [begin, end) into @p out (an array of end - begin floats).
 */
void fedavg_combine_range(const std::vector<LocalUpdate> &updates,
                          const FedAvgPlan &plan, size_t begin, size_t end,
                          float *out);

/**
 * Sample-weighted FedAvg combine (also used by FedProx and FEDL): the
 * weighted average of the updates' weight vectors with per-update mass
 * e_j = factor_j * num_samples_j (factor_j = 1 when @p factors is null).
 *
 * @param updates Non-empty update set, all of one dimension.
 * @param factors Optional per-update staleness factors, parallel to
 *        @p updates. All-1.0 factors reproduce plain FedAvg exactly.
 * @param lambda_out Optional: receives sum(e_j) / sum(num_samples_j),
 *        the fraction of the batch's mass surviving staleness damping
 *        (exactly 1.0 when every factor is 1.0). Used as the blend rate
 *        for semi-async commits.
 */
std::vector<float> fedavg_combine(const std::vector<LocalUpdate> &updates,
                                  const std::vector<double> *factors,
                                  double *lambda_out);

/** Precomputed per-batch FedNova coefficients (see FedAvgPlan). */
struct FedNovaPlan
{
    std::vector<double> prob;  ///< p_j = e_j / sum(e).
    double tau_eff = 0.0;      ///< sum(p_j * tau_j).
};

/** Build the FedNova plan for a batch (null factors == all-1.0). */
FedNovaPlan fednova_plan(const std::vector<LocalUpdate> &updates,
                         const std::vector<double> *factors);

/**
 * Apply the planned FedNova step in place to weights[begin, end):
 * w_i <- w_i - tau_eff * sum_j (p_j / tau_j) * (w_i - u_j[i]).
 * @p weights is the base of the full flat vector, not of the range.
 */
void fednova_apply_range(float *weights,
                         const std::vector<LocalUpdate> &updates,
                         const FedNovaPlan &plan, size_t begin, size_t end);

/**
 * FedNova normalized-averaging step applied in place to @p weights:
 * average the normalized directions d_j = (w - u_j) / tau_j with mass
 * e_j, then step by tau_eff = sum(p_j * tau_j). Null @p factors means
 * all-1.0 (the synchronous path).
 */
void fednova_apply(std::vector<float> &weights,
                   const std::vector<LocalUpdate> &updates,
                   const std::vector<double> *factors);

} // namespace autofl

#endif // AUTOFL_FL_AGGREGATION_H
