#include "server.h"

#include <algorithm>
#include <cassert>
#include <thread>

#include "fl/aggregation.h"
#include "nn/loss.h"

namespace autofl {

Server::Server(Workload workload, Algorithm alg, TrainHyper hyper,
               uint64_t seed)
    : workload_(workload), alg_(alg), hyper_(hyper),
      model_(make_model(workload))
{
    Rng rng(seed);
    model_.init_weights(rng);
    weights_ = model_.flat_weights();
}

void
Server::set_global_weights(std::vector<float> w)
{
    assert(w.size() == weights_.size());
    weights_ = std::move(w);
}

void
Server::aggregate(const std::vector<LocalUpdate> &updates)
{
    if (updates.empty())
        return;

    if (alg_ == Algorithm::FedNova) {
        // FedNova: average the *normalized* directions d_i =
        // (w_global - w_i) / tau_i, then apply with the effective step
        // count tau_eff = sum(p_i * tau_i). Removes the objective
        // inconsistency caused by heterogeneous local step counts.
        fednova_apply(weights_, updates, nullptr);
        return;
    }

    // FedAvg-style sample-weighted averaging (also used by FedProx and
    // FEDL, whose differences live in the client objective).
    weights_ = fedavg_combine(updates, nullptr, nullptr);
}

namespace {

/**
 * Shared inference body: mean loss (want_loss) or top-1 accuracy of
 * @p weights on @p test using per-thread scratch models.
 */
double
run_inference(Workload workload, const std::vector<float> &weights,
              const Dataset &test, int threads_wanted, bool want_loss)
{
    const int n = static_cast<int>(test.size());
    const int batch = 100;
    const int batches = (n + batch - 1) / batch;
    if (batches == 0)
        return 0.0;

    // Inference batches are independent: fan out across worker threads,
    // each with its own scratch model (weights are shared read-only
    // through the flat vector).
    const int threads = std::clamp(batches, 1, std::max(1, threads_wanted));
    std::vector<int> correct(static_cast<size_t>(threads), 0);
    std::vector<double> loss_sum(static_cast<size_t>(threads), 0.0);
    auto worker = [&](int tid) {
        Sequential scratch = make_model(workload);
        scratch.set_flat_weights(weights);
        SoftmaxCrossEntropy loss;
        for (int b = tid; b < batches; b += threads) {
            const int start = b * batch;
            const int end = std::min(n, start + batch);
            std::vector<int> idx;
            idx.reserve(static_cast<size_t>(end - start));
            for (int i = start; i < end; ++i)
                idx.push_back(i);
            Tensor logits = scratch.forward(test.batch_x(idx));
            loss_sum[static_cast<size_t>(tid)] +=
                loss.forward(logits, test.batch_y(idx));
            correct[static_cast<size_t>(tid)] += loss.correct();
        }
    };
    if (threads == 1) {
        worker(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(static_cast<size_t>(threads));
        for (int t = 0; t < threads; ++t)
            pool.emplace_back(worker, t);
        for (auto &t : pool)
            t.join();
    }

    double total_loss = 0.0;
    int total_correct = 0;
    for (int t = 0; t < threads; ++t) {
        total_loss += loss_sum[static_cast<size_t>(t)];
        total_correct += correct[static_cast<size_t>(t)];
    }
    if (want_loss)
        return total_loss / batches;
    return n > 0 ? static_cast<double>(total_correct) / n : 0.0;
}

} // namespace

double
evaluate_model_weights(Workload workload, const std::vector<float> &weights,
                       const Dataset &test, int threads)
{
    return run_inference(workload, weights, test, threads, false);
}

double
Server::evaluate_impl(const Dataset &test, bool want_loss)
{
    model_.set_flat_weights(weights_);
    return run_inference(workload_, weights_, test, 8, want_loss);
}

double
Server::evaluate(const Dataset &test)
{
    return evaluate_impl(test, false);
}

double
Server::evaluate_loss(const Dataset &test)
{
    return evaluate_impl(test, true);
}

std::vector<float>
Server::fedl_correction(const std::vector<float> &local_grad) const
{
    if (global_grad_.empty())
        return {};
    assert(local_grad.size() == global_grad_.size());
    std::vector<float> out(local_grad.size());
    for (size_t i = 0; i < out.size(); ++i)
        out[i] = static_cast<float>(hyper_.fedl_eta) * global_grad_[i] -
            local_grad[i];
    return out;
}

void
Server::update_global_gradient(
    const std::vector<std::vector<float>> &client_grads)
{
    if (client_grads.empty())
        return;
    global_grad_.assign(weights_.size(), 0.0f);
    for (const auto &g : client_grads) {
        assert(g.size() == global_grad_.size());
        for (size_t i = 0; i < g.size(); ++i)
            global_grad_[i] += g[i];
    }
    const float inv = 1.0f / static_cast<float>(client_grads.size());
    for (auto &v : global_grad_)
        v *= inv;
}

} // namespace autofl
