#include "server.h"

#include <cassert>

#include "fl/aggregation.h"

namespace autofl {

Server::Server(Workload workload, Algorithm alg, TrainHyper hyper,
               uint64_t seed)
    : alg_(alg), hyper_(hyper)
{
    Sequential model = make_model(workload);
    Rng rng(seed);
    model.init_weights(rng);
    weights_ = model.flat_weights();
}

void
Server::set_global_weights(std::vector<float> w)
{
    assert(w.size() == weights_.size());
    weights_ = std::move(w);
}

void
Server::aggregate(const std::vector<LocalUpdate> &updates)
{
    if (updates.empty())
        return;

    if (alg_ == Algorithm::FedNova) {
        // FedNova: average the *normalized* directions d_i =
        // (w_global - w_i) / tau_i, then apply with the effective step
        // count tau_eff = sum(p_i * tau_i). Removes the objective
        // inconsistency caused by heterogeneous local step counts.
        fednova_apply(weights_, updates, nullptr);
        return;
    }

    // FedAvg-style sample-weighted averaging (also used by FedProx and
    // FEDL, whose differences live in the client objective).
    weights_ = fedavg_combine(updates, nullptr, nullptr);
}

std::vector<float>
Server::fedl_correction(const std::vector<float> &local_grad) const
{
    if (global_grad_.empty())
        return {};
    assert(local_grad.size() == global_grad_.size());
    std::vector<float> out(local_grad.size());
    for (size_t i = 0; i < out.size(); ++i)
        out[i] = static_cast<float>(hyper_.fedl_eta) * global_grad_[i] -
            local_grad[i];
    return out;
}

void
Server::update_global_gradient(
    const std::vector<std::vector<float>> &client_grads)
{
    if (client_grads.empty())
        return;
    global_grad_.assign(weights_.size(), 0.0f);
    for (const auto &g : client_grads) {
        assert(g.size() == global_grad_.size());
        for (size_t i = 0; i < g.size(); ++i)
            global_grad_[i] += g[i];
    }
    const float inv = 1.0f / static_cast<float>(client_grads.size());
    for (auto &v : global_grad_)
        v *= inv;
}

} // namespace autofl
