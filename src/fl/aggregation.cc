#include "aggregation.h"

#include <algorithm>
#include <cassert>

#include "kernels/kernels.h"

namespace autofl {

namespace {

/** Per-update mass e_j; exactly num_samples when factors is null. */
inline double
mass(const std::vector<LocalUpdate> &updates,
     const std::vector<double> *factors, size_t j)
{
    const double n = updates[j].num_samples;
    return factors ? (*factors)[j] * n : n;
}

} // namespace

FedAvgPlan
fedavg_plan(const std::vector<LocalUpdate> &updates,
            const std::vector<double> *factors)
{
    assert(!updates.empty());
    assert(!factors || factors->size() == updates.size());

    double total_mass = 0.0;
    double total_samples = 0.0;
    for (size_t j = 0; j < updates.size(); ++j) {
        total_mass += mass(updates, factors, j);
        total_samples += updates[j].num_samples;
    }

    FedAvgPlan plan;
    plan.prob.resize(updates.size());
    for (size_t j = 0; j < updates.size(); ++j)
        plan.prob[j] = mass(updates, factors, j) / total_mass;
    plan.lambda = total_samples > 0.0 ? total_mass / total_samples : 0.0;
    return plan;
}

void
fedavg_combine_range(const std::vector<LocalUpdate> &updates,
                     const FedAvgPlan &plan, size_t begin, size_t end,
                     float *out)
{
    assert(plan.prob.size() == updates.size());
    const size_t len = end - begin;
    std::vector<double> acc(len, 0.0);
    for (size_t j = 0; j < updates.size(); ++j) {
        const LocalUpdate &u = updates[j];
        assert(u.weights.size() >= end);
        kernels::axpy_f64(len, plan.prob[j], u.weights.data() + begin,
                          acc.data());
    }
    kernels::cast_f64_to_f32(len, acc.data(), out);
}

std::vector<float>
fedavg_combine(const std::vector<LocalUpdate> &updates,
               const std::vector<double> *factors, double *lambda_out)
{
    assert(!updates.empty());
    const size_t dim = updates.front().weights.size();
    const FedAvgPlan plan = fedavg_plan(updates, factors);
    std::vector<float> out(dim);
    fedavg_combine_range(updates, plan, 0, dim, out.data());
    if (lambda_out)
        *lambda_out = plan.lambda;
    return out;
}

FedNovaPlan
fednova_plan(const std::vector<LocalUpdate> &updates,
             const std::vector<double> *factors)
{
    assert(!updates.empty());
    assert(!factors || factors->size() == updates.size());

    double total_mass = 0.0;
    for (size_t j = 0; j < updates.size(); ++j)
        total_mass += mass(updates, factors, j);

    FedNovaPlan plan;
    plan.prob.resize(updates.size());
    for (size_t j = 0; j < updates.size(); ++j) {
        const double p = mass(updates, factors, j) / total_mass;
        plan.prob[j] = p;
        plan.tau_eff += p * std::max(1, updates[j].num_steps);
    }
    return plan;
}

void
fednova_apply_range(float *weights, const std::vector<LocalUpdate> &updates,
                    const FedNovaPlan &plan, size_t begin, size_t end)
{
    assert(plan.prob.size() == updates.size());
    const size_t len = end - begin;
    std::vector<double> avg_dir(len, 0.0);
    for (size_t j = 0; j < updates.size(); ++j) {
        const LocalUpdate &u = updates[j];
        assert(u.weights.size() >= end);
        const double tau = std::max(1, u.num_steps);
        kernels::diff_axpy_f64(len, plan.prob[j] / tau, weights + begin,
                               u.weights.data() + begin, avg_dir.data());
    }
    kernels::apply_step_f64(len, weights + begin, plan.tau_eff,
                            avg_dir.data());
}

void
fednova_apply(std::vector<float> &weights,
              const std::vector<LocalUpdate> &updates,
              const std::vector<double> *factors)
{
    const FedNovaPlan plan = fednova_plan(updates, factors);
    fednova_apply_range(weights.data(), updates, plan, 0, weights.size());
}

} // namespace autofl
