#include "aggregation.h"

#include <algorithm>
#include <cassert>

namespace autofl {

namespace {

/** Per-update mass e_j; exactly num_samples when factors is null. */
inline double
mass(const std::vector<LocalUpdate> &updates,
     const std::vector<double> *factors, size_t j)
{
    const double n = updates[j].num_samples;
    return factors ? (*factors)[j] * n : n;
}

} // namespace

std::vector<float>
fedavg_combine(const std::vector<LocalUpdate> &updates,
               const std::vector<double> *factors, double *lambda_out)
{
    assert(!updates.empty());
    assert(!factors || factors->size() == updates.size());
    const size_t dim = updates.front().weights.size();

    double total_mass = 0.0;
    double total_samples = 0.0;
    for (size_t j = 0; j < updates.size(); ++j) {
        total_mass += mass(updates, factors, j);
        total_samples += updates[j].num_samples;
    }

    std::vector<double> acc(dim, 0.0);
    for (size_t j = 0; j < updates.size(); ++j) {
        const LocalUpdate &u = updates[j];
        assert(u.weights.size() == dim);
        const double p = mass(updates, factors, j) / total_mass;
        for (size_t i = 0; i < dim; ++i)
            acc[i] += p * u.weights[i];
    }

    std::vector<float> out(dim);
    for (size_t i = 0; i < dim; ++i)
        out[i] = static_cast<float>(acc[i]);
    if (lambda_out)
        *lambda_out = total_samples > 0.0 ? total_mass / total_samples : 0.0;
    return out;
}

void
fednova_apply(std::vector<float> &weights,
              const std::vector<LocalUpdate> &updates,
              const std::vector<double> *factors)
{
    assert(!updates.empty());
    assert(!factors || factors->size() == updates.size());
    const size_t dim = weights.size();

    double total_mass = 0.0;
    for (size_t j = 0; j < updates.size(); ++j)
        total_mass += mass(updates, factors, j);

    std::vector<double> avg_dir(dim, 0.0);
    double tau_eff = 0.0;
    for (size_t j = 0; j < updates.size(); ++j) {
        const LocalUpdate &u = updates[j];
        assert(u.weights.size() == dim);
        const double p = mass(updates, factors, j) / total_mass;
        const double tau = std::max(1, u.num_steps);
        tau_eff += p * tau;
        const double scale = p / tau;
        for (size_t i = 0; i < dim; ++i)
            avg_dir[i] += scale * (static_cast<double>(weights[i]) -
                                   u.weights[i]);
    }
    for (size_t i = 0; i < dim; ++i)
        weights[i] = static_cast<float>(weights[i] - tau_eff * avg_dir[i]);
}

} // namespace autofl
