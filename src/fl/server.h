/**
 * @file
 * Aggregation server: owns the global model, aggregates local updates
 * (FedAvg / FedNova / FEDL bookkeeping), and evaluates test accuracy
 * (Steps 1, 2, 5 of Figure 2).
 */
#ifndef AUTOFL_FL_SERVER_H
#define AUTOFL_FL_SERVER_H

#include <vector>

#include "data/dataset.h"
#include "fl/fl_types.h"
#include "nn/models.h"

namespace autofl {

/**
 * Top-1 accuracy of @p weights on @p test, evaluated with a scratch
 * model. Free-standing and state-free so concurrent eval workers can
 * score different store snapshots in parallel; the returned accuracy is
 * a deterministic integer count over @p test regardless of @p threads.
 *
 * @param threads Inference fan-out within this call (the concurrent
 *        eval pool usually passes 1 and parallelizes across snapshots).
 */
double evaluate_model_weights(Workload workload,
                              const std::vector<float> &weights,
                              const Dataset &test, int threads);

/** FL aggregation server. */
class Server
{
  public:
    /**
     * @param workload Model architecture to host.
     * @param alg Aggregation algorithm.
     * @param hyper Hyperparameters (FEDL eta, used in aggregation).
     * @param seed Global weight-initialization seed.
     */
    Server(Workload workload, Algorithm alg, TrainHyper hyper, uint64_t seed);

    /** Current global weights (broadcast payload, Step 2). */
    const std::vector<float> &global_weights() const { return weights_; }

    /** Replace global weights (tests / warm starts). */
    void set_global_weights(std::vector<float> w);

    /**
     * Aggregate the round's included local updates into the global model
     * (Step 5). Updates from dropped stragglers must not be passed in.
     * No-op when @p updates is empty (all participants dropped).
     */
    void aggregate(const std::vector<LocalUpdate> &updates);

    /** Top-1 accuracy of the global model on @p test. */
    double evaluate(const Dataset &test);

    /** Mean cross-entropy of the global model on @p test. */
    double evaluate_loss(const Dataset &test);

    /**
     * FEDL correction coefficients for a client whose full local gradient
     * at the current weights is @p local_grad: eta * global_grad_estimate
     * - local_grad. Empty when no global gradient estimate exists yet.
     */
    std::vector<float> fedl_correction(
        const std::vector<float> &local_grad) const;

    /** Whether FEDL needs clients' full gradients this round. */
    bool wants_full_gradients() const { return alg_ == Algorithm::Fedl; }

    /** Record client full gradients to refresh the FEDL estimate. */
    void update_global_gradient(
        const std::vector<std::vector<float>> &client_grads);

    Algorithm algorithm() const { return alg_; }
    size_t num_params() const { return weights_.size(); }

  private:
    Workload workload_;
    Algorithm alg_;
    TrainHyper hyper_;
    Sequential model_;
    std::vector<float> weights_;
    std::vector<float> global_grad_;  ///< FEDL's \bar{grad} estimate.

    double evaluate_impl(const Dataset &test, bool want_loss);
};

} // namespace autofl

#endif // AUTOFL_FL_SERVER_H
