/**
 * @file
 * Aggregation server: owns the global model weights, aggregates local
 * updates (FedAvg / FedNova / FEDL bookkeeping) — Steps 1, 2 and 5 of
 * Figure 2. Model *consumption* (test-set evaluation, online
 * inference) lives in the serving plane: ModelService in src/serve/.
 */
#ifndef AUTOFL_FL_SERVER_H
#define AUTOFL_FL_SERVER_H

#include <vector>

#include "fl/fl_types.h"
#include "nn/models.h"

namespace autofl {

/** FL aggregation server. */
class Server
{
  public:
    /**
     * @param workload Model architecture to host.
     * @param alg Aggregation algorithm.
     * @param hyper Hyperparameters (FEDL eta, used in aggregation).
     * @param seed Global weight-initialization seed.
     */
    Server(Workload workload, Algorithm alg, TrainHyper hyper, uint64_t seed);

    /** Current global weights (broadcast payload, Step 2). */
    const std::vector<float> &global_weights() const { return weights_; }

    /** Replace global weights (tests / warm starts). */
    void set_global_weights(std::vector<float> w);

    /**
     * Aggregate the round's included local updates into the global model
     * (Step 5). Updates from dropped stragglers must not be passed in.
     * No-op when @p updates is empty (all participants dropped).
     */
    void aggregate(const std::vector<LocalUpdate> &updates);

    /**
     * FEDL correction coefficients for a client whose full local gradient
     * at the current weights is @p local_grad: eta * global_grad_estimate
     * - local_grad. Empty when no global gradient estimate exists yet.
     */
    std::vector<float> fedl_correction(
        const std::vector<float> &local_grad) const;

    /** Whether FEDL needs clients' full gradients this round. */
    bool wants_full_gradients() const { return alg_ == Algorithm::Fedl; }

    /** Record client full gradients to refresh the FEDL estimate. */
    void update_global_gradient(
        const std::vector<std::vector<float>> &client_grads);

    Algorithm algorithm() const { return alg_; }
    size_t num_params() const { return weights_.size(); }

  private:
    Algorithm alg_;
    TrainHyper hyper_;
    std::vector<float> weights_;
    std::vector<float> global_grad_;  ///< FEDL's \bar{grad} estimate.
};

} // namespace autofl

#endif // AUTOFL_FL_SERVER_H
