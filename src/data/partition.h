/**
 * @file
 * Federated data partitioning: IID and Dirichlet non-IID shard assignment
 * across the device fleet (Section 5.2 of the paper).
 */
#ifndef AUTOFL_DATA_PARTITION_H
#define AUTOFL_DATA_PARTITION_H

#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace autofl {

/** Data-distribution scenarios evaluated in the paper (Section 5.2). */
enum class DataDistribution {
    IdealIid,    ///< Every device holds samples of all classes.
    NonIid50,    ///< 50% of devices hold Dirichlet(0.1) non-IID shards.
    NonIid75,    ///< 75% of devices hold Dirichlet(0.1) non-IID shards.
    NonIid100,   ///< All devices hold Dirichlet(0.1) non-IID shards.
};

/** Human-readable scenario name. */
std::string data_distribution_name(DataDistribution d);

/** Fraction of devices that are non-IID under the scenario. */
double non_iid_fraction(DataDistribution d);

/** Result of partitioning a dataset across N devices. */
struct Partition
{
    /** Sample indices per device (into the source dataset). */
    std::vector<std::vector<int>> shards;

    /** Whether each device was assigned a non-IID shard. */
    std::vector<bool> non_iid;

    /** Distinct label classes present on each device. */
    std::vector<int> classes_per_device;
};

/** Partitioner configuration. */
struct PartitionConfig
{
    int num_devices = 200;
    DataDistribution distribution = DataDistribution::IdealIid;
    double dirichlet_alpha = 0.1;  ///< Paper's concentration parameter.
    uint64_t seed = 7;
};

/**
 * Partition @p data across devices.
 *
 * IID devices receive a uniformly random, class-balanced slice. Non-IID
 * devices draw per-class proportions from Dirichlet(alpha); with alpha =
 * 0.1 most of a device's quota lands in one or two classes, matching the
 * paper's setup.
 */
Partition partition_dataset(const Dataset &data, const PartitionConfig &cfg);

} // namespace autofl

#endif // AUTOFL_DATA_PARTITION_H
