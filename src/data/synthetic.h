/**
 * @file
 * Procedural dataset generators standing in for MNIST, Shakespeare and
 * ImageNet (see DESIGN.md "Substitutions").
 *
 * Each generator produces a learnable class structure: per-class template
 * patterns (images) or per-class continuation statistics (text) perturbed
 * with noise, so that real SGD training converges and data-heterogeneity
 * effects (Dirichlet non-IID partitions) manifest as in the paper.
 */
#ifndef AUTOFL_DATA_SYNTHETIC_H
#define AUTOFL_DATA_SYNTHETIC_H

#include "data/dataset.h"
#include "util/rng.h"

namespace autofl {

/** Generator configuration. */
struct SyntheticConfig
{
    int train_samples = 4000;  ///< Total training samples across the fleet.
    int test_samples = 800;    ///< Held-out global test set size.
    double noise = 1.15;       ///< Additive noise level (images).
    uint64_t seed = 42;        ///< Generation seed.
};

/** Train + test pair produced by a generator. */
struct TrainTestSplit
{
    Dataset train;
    Dataset test;
};

/**
 * Synthetic MNIST: 12x12 single-channel images. Each class has a smooth
 * random template; samples are the template with additive noise and a
 * +/-1 pixel random shift.
 */
TrainTestSplit make_synthetic_mnist(const SyntheticConfig &cfg);

/**
 * Synthetic ImageNet: 16x16 RGB textures. Each class mixes two oriented
 * sinusoidal gratings with class-specific frequencies and colors.
 */
TrainTestSplit make_synthetic_imagenet(const SyntheticConfig &cfg);

/**
 * Synthetic Shakespeare: one-hot character windows of length kTextSeqLen
 * drawn from an order-2 Markov chain over a 26-character vocabulary;
 * the label is the next character.
 */
TrainTestSplit make_synthetic_text(const SyntheticConfig &cfg);

/** Dispatch on workload. */
TrainTestSplit make_dataset(Workload w, const SyntheticConfig &cfg);

} // namespace autofl

#endif // AUTOFL_DATA_SYNTHETIC_H
