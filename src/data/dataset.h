/**
 * @file
 * In-memory labeled dataset container shared by all three workloads.
 *
 * Image workloads store samples as {n, c, h, w}; the text workload stores
 * one-hot sequences as {n, time, vocab}. Batch extraction produces the
 * layout each model's forward() expects.
 */
#ifndef AUTOFL_DATA_DATASET_H
#define AUTOFL_DATA_DATASET_H

#include <vector>

#include "nn/models.h"
#include "tensor/tensor.h"

namespace autofl {

/** Labeled sample container for one workload. */
struct Dataset
{
    Workload workload = Workload::CnnMnist;
    Tensor x;            ///< {n, ...} sample tensor (layout per workload).
    std::vector<int> y;  ///< One class label per sample.
    int num_classes = 0;

    /** Number of samples. */
    size_t size() const { return y.size(); }

    /** True when there are no samples. */
    bool empty() const { return y.empty(); }

    /** Copy the selected samples into a new dataset. */
    Dataset subset(const std::vector<int> &indices) const;

    /**
     * Build a model-ready input batch from sample indices:
     * {b, c, h, w} for image workloads, {time, b, vocab} for text.
     */
    Tensor batch_x(const std::vector<int> &indices) const;

    /** Labels for the same index list. */
    std::vector<int> batch_y(const std::vector<int> &indices) const;

    /** Distinct labels present. */
    int distinct_classes() const;

    /** Per-class sample counts (length num_classes). */
    std::vector<int> class_histogram() const;
};

} // namespace autofl

#endif // AUTOFL_DATA_DATASET_H
