#include "synthetic.h"

#include <cmath>

namespace autofl {

namespace {

/** Smooth a square image in place with a 3x3 box blur (@p passes times). */
void
box_blur(std::vector<float> &img, int side, int passes)
{
    std::vector<float> tmp(img.size());
    for (int pass = 0; pass < passes; ++pass) {
        for (int y = 0; y < side; ++y) {
            for (int x = 0; x < side; ++x) {
                float acc = 0.0f;
                int cnt = 0;
                for (int dy = -1; dy <= 1; ++dy) {
                    for (int dx = -1; dx <= 1; ++dx) {
                        const int yy = y + dy, xx = x + dx;
                        if (yy < 0 || yy >= side || xx < 0 || xx >= side)
                            continue;
                        acc += img[static_cast<size_t>(yy) * side + xx];
                        ++cnt;
                    }
                }
                tmp[static_cast<size_t>(y) * side + x] = acc / cnt;
            }
        }
        img.swap(tmp);
    }
}

/** Generate the per-class 12x12 digit-like template bank. */
std::vector<std::vector<float>>
mnist_templates(Rng &rng)
{
    std::vector<std::vector<float>> templates;
    templates.reserve(kMnistClasses);
    for (int c = 0; c < kMnistClasses; ++c) {
        std::vector<float> t(static_cast<size_t>(kMnistSide) * kMnistSide);
        for (auto &v : t)
            v = static_cast<float>(rng.uniform(-1.0, 1.0));
        box_blur(t, kMnistSide, 2);
        // Re-normalize after blurring so classes keep comparable energy.
        float mx = 1e-6f;
        for (float v : t)
            mx = std::max(mx, std::abs(v));
        for (auto &v : t)
            v /= mx;
        templates.push_back(std::move(t));
    }
    return templates;
}

Dataset
sample_mnist(const std::vector<std::vector<float>> &templates, int n,
             double noise, Rng &rng)
{
    Dataset d;
    d.workload = Workload::CnnMnist;
    d.num_classes = kMnistClasses;
    d.x = Tensor({n, 1, kMnistSide, kMnistSide});
    d.y.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        const int c = static_cast<int>(rng.randint(0, kMnistClasses - 1));
        d.y.push_back(c);
        const auto &t = templates[static_cast<size_t>(c)];
        const int sy = static_cast<int>(rng.randint(-1, 1));
        const int sx = static_cast<int>(rng.randint(-1, 1));
        for (int y = 0; y < kMnistSide; ++y) {
            for (int x = 0; x < kMnistSide; ++x) {
                const int yy = std::clamp(y + sy, 0, kMnistSide - 1);
                const int xx = std::clamp(x + sx, 0, kMnistSide - 1);
                const float base = t[static_cast<size_t>(yy) * kMnistSide + xx];
                d.x.at4(i, 0, y, x) = base +
                    static_cast<float>(rng.normal(0.0, noise));
            }
        }
    }
    return d;
}

Dataset
sample_imagenet(int n, double noise, Rng &rng, Rng &class_rng)
{
    // Class-specific grating parameters: frequency, orientation, color.
    struct ClassParams {
        float fx1, fy1, fx2, fy2;
        float col[kImageNetChannels];
    };
    std::vector<ClassParams> params;
    params.reserve(kImageNetClasses);
    for (int c = 0; c < kImageNetClasses; ++c) {
        ClassParams p;
        p.fx1 = static_cast<float>(class_rng.uniform(0.3, 2.2));
        p.fy1 = static_cast<float>(class_rng.uniform(0.3, 2.2));
        p.fx2 = static_cast<float>(class_rng.uniform(0.3, 2.2));
        p.fy2 = static_cast<float>(class_rng.uniform(0.3, 2.2));
        for (auto &col : p.col)
            col = static_cast<float>(class_rng.uniform(-1.0, 1.0));
        params.push_back(p);
    }

    Dataset d;
    d.workload = Workload::MobileNetImageNet;
    d.num_classes = kImageNetClasses;
    d.x = Tensor({n, kImageNetChannels, kImageNetSide, kImageNetSide});
    d.y.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        const int c = static_cast<int>(rng.randint(0, kImageNetClasses - 1));
        d.y.push_back(c);
        const ClassParams &p = params[static_cast<size_t>(c)];
        const float phase1 = static_cast<float>(rng.uniform(0.0, 2.0 * M_PI));
        const float phase2 = static_cast<float>(rng.uniform(0.0, 2.0 * M_PI));
        for (int ch = 0; ch < kImageNetChannels; ++ch) {
            for (int y = 0; y < kImageNetSide; ++y) {
                for (int x = 0; x < kImageNetSide; ++x) {
                    const float g1 = std::sin(p.fx1 * x + p.fy1 * y + phase1);
                    const float g2 = std::cos(p.fx2 * x - p.fy2 * y + phase2);
                    d.x.at4(i, ch, y, x) =
                        p.col[ch] * (0.6f * g1 + 0.4f * g2) +
                        static_cast<float>(rng.normal(0.0, noise));
                }
            }
        }
    }
    return d;
}

/**
 * Markov chain over the text vocabulary: the continuation depends on the
 * last two characters, with the dominant signal carried by the most
 * recent one. The mixture keeps the task solvable by a recurrent model
 * within a few hundred federated SGD steps while still rewarding use of
 * deeper context.
 */
class MarkovChain
{
  public:
    explicit MarkovChain(Rng &rng)
    {
        // Sparse, peaked continuation distributions make the next
        // character predictable (an LSTM can reach high accuracy).
        last_.resize(static_cast<size_t>(kTextVocab));
        for (auto &row : last_)
            row = rng.dirichlet(0.05, kTextVocab);
        pair_.resize(static_cast<size_t>(kTextVocab) * kTextVocab);
        for (auto &row : pair_)
            row = rng.dirichlet(0.05, kTextVocab);
    }

    int
    next(int a, int b, Rng &rng) const
    {
        // 75% of transitions follow the order-1 table, 25% the order-2
        // table, so most of the attainable accuracy needs only the last
        // character.
        if (rng.bernoulli(0.85))
            return rng.categorical(last_[static_cast<size_t>(b)]);
        return rng.categorical(
            pair_[static_cast<size_t>(a) * kTextVocab + b]);
    }

  private:
    std::vector<std::vector<double>> last_;
    std::vector<std::vector<double>> pair_;
};

Dataset
sample_text(const MarkovChain &chain, int n, Rng &rng)
{
    Dataset d;
    d.workload = Workload::LstmShakespeare;
    d.num_classes = kTextVocab;
    d.x = Tensor({n, kTextSeqLen, kTextVocab});
    d.y.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        // Generate a fresh window per sample to decorrelate samples.
        int a = static_cast<int>(rng.randint(0, kTextVocab - 1));
        int b = static_cast<int>(rng.randint(0, kTextVocab - 1));
        for (int t = 0; t < kTextSeqLen; ++t) {
            const int c = chain.next(a, b, rng);
            d.x.at3(i, t, c) = 1.0f;
            a = b;
            b = c;
        }
        d.y.push_back(chain.next(a, b, rng));
    }
    return d;
}

} // namespace

TrainTestSplit
make_synthetic_mnist(const SyntheticConfig &cfg)
{
    Rng rng(cfg.seed);
    Rng template_rng = rng.fork(1);
    Rng train_rng = rng.fork(2);
    Rng test_rng = rng.fork(3);
    const auto templates = mnist_templates(template_rng);
    TrainTestSplit out;
    out.train = sample_mnist(templates, cfg.train_samples, cfg.noise,
                             train_rng);
    out.test = sample_mnist(templates, cfg.test_samples, cfg.noise, test_rng);
    return out;
}

TrainTestSplit
make_synthetic_imagenet(const SyntheticConfig &cfg)
{
    Rng rng(cfg.seed ^ 0xa5a5a5a5ULL);
    Rng class_rng = rng.fork(1);
    Rng train_rng = rng.fork(2);
    Rng test_rng = rng.fork(3);
    // Re-seed class params identically for train and test draws.
    TrainTestSplit out;
    {
        Rng c1 = class_rng;
        out.train = sample_imagenet(cfg.train_samples, cfg.noise, train_rng,
                                    c1);
    }
    {
        Rng c2 = class_rng;
        out.test = sample_imagenet(cfg.test_samples, cfg.noise, test_rng, c2);
    }
    return out;
}

TrainTestSplit
make_synthetic_text(const SyntheticConfig &cfg)
{
    Rng rng(cfg.seed ^ 0x5a5a5a5aULL);
    Rng chain_rng = rng.fork(1);
    Rng train_rng = rng.fork(2);
    Rng test_rng = rng.fork(3);
    MarkovChain chain(chain_rng);
    TrainTestSplit out;
    out.train = sample_text(chain, cfg.train_samples, train_rng);
    out.test = sample_text(chain, cfg.test_samples, test_rng);
    return out;
}

TrainTestSplit
make_dataset(Workload w, const SyntheticConfig &cfg)
{
    switch (w) {
      case Workload::CnnMnist:
        return make_synthetic_mnist(cfg);
      case Workload::LstmShakespeare:
        return make_synthetic_text(cfg);
      case Workload::MobileNetImageNet:
        return make_synthetic_imagenet(cfg);
    }
    return {};
}

} // namespace autofl
