#include "partition.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace autofl {

std::string
data_distribution_name(DataDistribution d)
{
    switch (d) {
      case DataDistribution::IdealIid:
        return "Ideal IID";
      case DataDistribution::NonIid50:
        return "Non-IID (50%)";
      case DataDistribution::NonIid75:
        return "Non-IID (75%)";
      case DataDistribution::NonIid100:
        return "Non-IID (100%)";
    }
    return "unknown";
}

double
non_iid_fraction(DataDistribution d)
{
    switch (d) {
      case DataDistribution::IdealIid:
        return 0.0;
      case DataDistribution::NonIid50:
        return 0.5;
      case DataDistribution::NonIid75:
        return 0.75;
      case DataDistribution::NonIid100:
        return 1.0;
    }
    return 0.0;
}

Partition
partition_dataset(const Dataset &data, const PartitionConfig &cfg)
{
    assert(cfg.num_devices > 0);
    Rng rng(cfg.seed);

    const int n = static_cast<int>(data.size());
    const int classes = data.num_classes;
    const int quota = std::max(1, n / cfg.num_devices);

    // Pools of sample indices per class, pre-shuffled.
    std::vector<std::vector<int>> pools(static_cast<size_t>(classes));
    for (int i = 0; i < n; ++i)
        pools[static_cast<size_t>(data.y[static_cast<size_t>(i)])].push_back(i);
    for (auto &p : pools)
        rng.shuffle(p);
    std::vector<size_t> cursor(static_cast<size_t>(classes), 0);

    // Which devices are non-IID.
    const int non_iid_count = static_cast<int>(
        non_iid_fraction(cfg.distribution) * cfg.num_devices + 0.5);
    std::vector<int> device_order(static_cast<size_t>(cfg.num_devices));
    for (int i = 0; i < cfg.num_devices; ++i)
        device_order[static_cast<size_t>(i)] = i;
    rng.shuffle(device_order);

    Partition out;
    out.shards.resize(static_cast<size_t>(cfg.num_devices));
    out.non_iid.assign(static_cast<size_t>(cfg.num_devices), false);
    out.classes_per_device.assign(static_cast<size_t>(cfg.num_devices), 0);
    for (int i = 0; i < non_iid_count; ++i)
        out.non_iid[static_cast<size_t>(device_order[static_cast<size_t>(i)])] =
            true;

    // Draw from a class pool with wraparound (samples may be reused when a
    // heavily-demanded class runs dry; this mirrors sampling with
    // replacement and keeps every shard at its quota).
    auto draw_from_class = [&](int c) {
        auto &pool = pools[static_cast<size_t>(c)];
        if (pool.empty())
            return static_cast<int>(rng.randint(0, n - 1));
        size_t &cur = cursor[static_cast<size_t>(c)];
        const int idx = pool[cur % pool.size()];
        ++cur;
        return idx;
    };

    for (int dev = 0; dev < cfg.num_devices; ++dev) {
        auto &shard = out.shards[static_cast<size_t>(dev)];
        shard.reserve(static_cast<size_t>(quota));
        if (out.non_iid[static_cast<size_t>(dev)]) {
            const auto props = rng.dirichlet(cfg.dirichlet_alpha, classes);
            for (int s = 0; s < quota; ++s) {
                const int c = rng.categorical(props);
                shard.push_back(draw_from_class(c));
            }
        } else {
            // IID: round-robin over classes for an even split.
            for (int s = 0; s < quota; ++s) {
                const int c = (dev + s) % classes;
                shard.push_back(draw_from_class(c));
            }
        }
        std::set<int> distinct;
        for (int idx : shard)
            distinct.insert(data.y[static_cast<size_t>(idx)]);
        out.classes_per_device[static_cast<size_t>(dev)] =
            static_cast<int>(distinct.size());
    }
    return out;
}

} // namespace autofl
