#include "dataset.h"

#include <cassert>
#include <set>

namespace autofl {

Dataset
Dataset::subset(const std::vector<int> &indices) const
{
    Dataset out;
    out.workload = workload;
    out.num_classes = num_classes;
    std::vector<int> shape = x.shape();
    shape[0] = static_cast<int>(indices.size());
    out.x = Tensor(shape);
    out.y.reserve(indices.size());

    size_t sample_elems = 1;
    for (size_t d = 1; d < shape.size(); ++d)
        sample_elems *= static_cast<size_t>(shape[d]);

    for (size_t i = 0; i < indices.size(); ++i) {
        const size_t src = static_cast<size_t>(indices[i]) * sample_elems;
        const size_t dst = i * sample_elems;
        std::copy(x.data() + src, x.data() + src + sample_elems,
                  out.x.data() + dst);
        out.y.push_back(y[static_cast<size_t>(indices[i])]);
    }
    return out;
}

Tensor
Dataset::batch_x(const std::vector<int> &indices) const
{
    const int b = static_cast<int>(indices.size());
    size_t sample_elems = 1;
    for (int d = 1; d < x.rank(); ++d)
        sample_elems *= static_cast<size_t>(x.dim(d));

    if (workload == Workload::LstmShakespeare) {
        // Stored {n, time, vocab}; model wants {time, b, vocab}.
        const int time = x.dim(1), vocab = x.dim(2);
        Tensor out({time, b, vocab});
        for (int bi = 0; bi < b; ++bi) {
            const size_t src =
                static_cast<size_t>(indices[static_cast<size_t>(bi)]) *
                sample_elems;
            for (int t = 0; t < time; ++t) {
                const float *s = x.data() + src +
                    static_cast<size_t>(t) * vocab;
                float *d = out.data() +
                    (static_cast<size_t>(t) * b + bi) * vocab;
                std::copy(s, s + vocab, d);
            }
        }
        return out;
    }

    std::vector<int> shape = x.shape();
    shape[0] = b;
    Tensor out(shape);
    for (int bi = 0; bi < b; ++bi) {
        const size_t src =
            static_cast<size_t>(indices[static_cast<size_t>(bi)]) *
            sample_elems;
        std::copy(x.data() + src, x.data() + src + sample_elems,
                  out.data() + static_cast<size_t>(bi) * sample_elems);
    }
    return out;
}

std::vector<int>
Dataset::batch_y(const std::vector<int> &indices) const
{
    std::vector<int> out;
    out.reserve(indices.size());
    for (int i : indices)
        out.push_back(y[static_cast<size_t>(i)]);
    return out;
}

int
Dataset::distinct_classes() const
{
    std::set<int> s(y.begin(), y.end());
    return static_cast<int>(s.size());
}

std::vector<int>
Dataset::class_histogram() const
{
    std::vector<int> hist(static_cast<size_t>(num_classes), 0);
    for (int label : y) {
        assert(label >= 0 && label < num_classes);
        ++hist[static_cast<size_t>(label)];
    }
    return hist;
}

} // namespace autofl
