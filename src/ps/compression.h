/**
 * @file
 * Push-path update compression: the client-delta codecs (Fp16, Int8
 * with per-range absmax scales, TopK magnitude sparsification) and the
 * per-client error-feedback accumulator that carries the quantization
 * residual into the next round's delta, so compression biases decay
 * instead of accumulating.
 *
 * The codec operates on *deltas* (local weights minus the pulled
 * weights): deltas shrink as training converges, which is what makes
 * aggressive quantization safe, and the receiver reconstructs absolute
 * weights by adding the decoded delta back onto the exact pulled
 * payload it served. Compression::None bypasses the codec entirely —
 * zero float operations — preserving the runtime's bit-for-bit
 * contracts.
 *
 * Kept free of fl/ and net/ includes so ps_config.h can embed a
 * CompressionConfig without include cycles; the wire mapping lives in
 * src/net/wire.h.
 */
#ifndef AUTOFL_PS_COMPRESSION_H
#define AUTOFL_PS_COMPRESSION_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace autofl {

/**
 * Push-delta encoding, a resource knob next to SyncMode:
 *
 * - None: raw f32 deltas / absolute weights; bit-for-bit the
 *   uncompressed runtime.
 * - Fp16: IEEE binary16 per element (2x smaller, ~2^-11 relative).
 * - Int8: per-range absmax quantization — one f32 scale per
 *   quant_range elements, one signed byte per element (~4x smaller).
 * - TopK: keep the k = topk_fraction * n largest-magnitude elements;
 *   ranged u16 index + fp16 value pairs (~10x smaller at 10%).
 */
enum class Compression { None, Fp16, Int8, TopK };

/** Display name: "none", "fp16", "int8" or "topk". */
std::string compression_name(Compression c);

/** Parse a compression_name string; returns false on unknown input. */
bool parse_compression(const std::string &name, Compression *out);

/** Push-path compression knobs (PsConfig::compression). */
struct CompressionConfig
{
    Compression mode = Compression::None;

    /**
     * Int8: elements sharing one absmax scale. Smaller ranges track
     * per-layer magnitude spread more closely at 4 bytes of scale
     * overhead per range (0.4% at the default).
     */
    int quant_range = 1024;

    /** TopK: fraction of elements kept, in (0, 1]. */
    double topk_fraction = 0.10;

    bool enabled() const { return mode != Compression::None; }

    /**
     * Validate the knobs, throwing std::invalid_argument with an
     * actionable message; @p who names the owning config.
     */
    void validate(const char *who) const;
};

/**
 * One encoded delta — the codec's in-memory form, mapped 1:1 onto a
 * PushDelta wire message (scales -> the floats section, payload -> the
 * bytes section, the small fields -> ints).
 */
struct EncodedDelta
{
    Compression mode = Compression::None;
    uint32_t n = 0;            ///< Original element count.
    uint32_t k = 0;            ///< TopK: kept element count.
    uint32_t quant_range = 0;  ///< Int8: elements per scale.

    /** Int8: per-range absmax (scale = absmax / 127). */
    std::vector<float> scales;

    /**
     * Packed bytes. Fp16: n binary16 values. Int8: n signed bytes.
     * TopK: per 65536-element range, a u32 count followed by count
     * ascending u16 local indices and count binary16 values.
     */
    std::vector<uint8_t> payload;

    /** None only: the raw delta, untouched. */
    std::vector<float> dense;
};

/** Typed decode outcome; anything but Ok means a malformed payload. */
enum class CodecStatus {
    Ok,
    BadMode,     ///< Unknown Compression value.
    BadLength,   ///< Section sizes inconsistent with n / quant_range.
    BadScale,    ///< Non-finite or negative Int8 scale (e.g. NaN).
    BadK,        ///< TopK count exceeds n or the per-range capacity.
    BadIndex,    ///< TopK index out of range or not strictly ascending.
};

/** Status name for logs ("ok", "bad-scale", ...). */
const char *codec_status_name(CodecStatus s);

/** TopK range granularity (u16 local indices). */
constexpr size_t kTopKRangeLen = 65536;

/**
 * Encode @p n delta elements under @p cfg. For Compression::None the
 * delta is moved into EncodedDelta::dense untouched. The encode is a
 * pure function of (cfg, delta) — kernel-arch independent, see the
 * codec family contract in kernels.h.
 */
EncodedDelta encode_delta(const CompressionConfig &cfg,
                          std::vector<float> delta);

/**
 * Decode into @p out (resized to e.n). Validates every structural
 * invariant of the encoding first — truncated scale tables, counts
 * exceeding a range, NaN scales — and returns a typed status without
 * touching @p out on failure. Never crashes on malformed input.
 */
CodecStatus decode_delta(const EncodedDelta &e, std::vector<float> *out);

/** Wire payload cost of an encoded delta (scales + payload + dense). */
size_t encoded_payload_bytes(const EncodedDelta &e);

/**
 * Analytic encoded size of an n-element delta under @p cfg — the same
 * formula the codec realizes, shared with the simulator's
 * bytes-per-round model (sim/perf.h).
 */
size_t encoded_delta_bytes(const CompressionConfig &cfg, size_t n);

/**
 * Per-client error-feedback accumulator. Each encode folds the
 * client's residual into the delta, then stores the new residual
 * (folded delta minus its decoded reconstruction) for the next round:
 * what one round's quantizer drops, a later round re-sends, so the
 * compressed stream delivers the full update in the limit.
 *
 * Thread-safe across devices; the runtime guarantees one in-flight
 * encode per device (a device trains at most once per round and
 * compression requires pipeline_depth == 1), which keeps the residual
 * sequence — and therefore training — deterministic.
 */
class ErrorFeedback
{
  public:
    /**
     * Fold residual, encode, update residual. When @p decoded is
     * non-null it receives the reconstruction the receiver will see
     * (exactly decode_delta of the result). None mode is a pure move
     * with no residual bookkeeping.
     */
    EncodedDelta encode(const CompressionConfig &cfg, int device,
                        std::vector<float> delta,
                        std::vector<float> *decoded = nullptr);

    /**
     * In-process round trip for the classic (non-cluster) runtime:
     * replaces @p weights with pulled + decode(encode(weights -
     * pulled)) under error feedback, returning the would-be wire
     * payload bytes. None mode leaves @p weights untouched (zero
     * float ops) and just prices the raw payload.
     */
    size_t compress_update(const CompressionConfig &cfg, int device,
                           const float *pulled, std::vector<float> &weights);

    /** Drop all residuals (new training run). */
    void reset();

    /** Devices with a stored residual (tests/metrics). */
    size_t tracked_devices() const;

    /** Copy of one device's residual; empty when untracked. */
    std::vector<float> residual(int device) const;

  private:
    mutable std::mutex mu_;
    std::map<int, std::vector<float>> residual_;
};

} // namespace autofl

#endif // AUTOFL_PS_COMPRESSION_H
