#include "async_aggregator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <optional>

#include "fl/aggregation.h"

namespace autofl {

AsyncAggregator::AsyncAggregator(ShardedStore &store, Algorithm alg,
                                 const PsConfig &cfg)
    : store_(store), alg_(alg), cfg_(cfg)
{
    assert(alg_ != Algorithm::Fedl);  // FEDL needs a synchronous phase.
}

size_t
AsyncAggregator::threshold_for(int expected_updates) const
{
    if (cfg_.mode == SyncMode::Async)
        return 1;
    // SemiAsync: ceil(K / (S+1)) so a round spans at most S+1 commits;
    // S=0 makes the threshold the whole round (one commit of all-fresh
    // updates == synchronous FedAvg).
    const int s = std::max(0, cfg_.staleness_bound);
    return static_cast<size_t>(
        std::max(1, (expected_updates + s) / (s + 1)));
}

// ----------------------------------------------------------- classic --

void
AsyncAggregator::begin_round(int expected_updates)
{
    std::lock_guard<std::mutex> lk(mu_);
    assert(buffer_.empty());
    stats_ = PsRoundStats{};
    staleness_sum_ = 0.0;
    threshold_ = threshold_for(expected_updates);
}

void
AsyncAggregator::push(PsPush p)
{
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.pushed;
    buffer_.push_back(std::move(p));
    if (buffer_.size() >= threshold_)
        commit_locked();
}

PsRoundStats
AsyncAggregator::flush()
{
    std::lock_guard<std::mutex> lk(mu_);
    commit_locked();
    if (stats_.applied > 0)
        stats_.mean_staleness = staleness_sum_ / stats_.applied;
    return stats_;
}

void
AsyncAggregator::commit_locked()
{
    if (buffer_.empty())
        return;

    // Deterministic composition: commit in submission order regardless
    // of which worker thread finished first.
    std::sort(buffer_.begin(), buffer_.end(),
              [](const PsPush &a, const PsPush &b) { return a.seq < b.seq; });

    std::vector<LocalUpdate> applied;
    std::vector<double> factors;
    applied.reserve(buffer_.size());
    factors.reserve(buffer_.size());
    for (auto &p : buffer_) {
        // pull_clock was read before the snapshot, so this staleness is
        // an upper bound on what the job actually saw — the bound is
        // enforced conservatively.
        const int s = static_cast<int>(clock_ - p.pull_clock);
        if (cfg_.mode == SyncMode::SemiAsync && s > cfg_.staleness_bound) {
            ++stats_.evicted;
            continue;
        }
        factors.push_back(std::pow(1.0 + s, -cfg_.staleness_alpha));
        staleness_sum_ += s;
        stats_.max_staleness = std::max(stats_.max_staleness, s);
        lifetime_max_staleness_ = std::max(lifetime_max_staleness_, s);
        applied.push_back(std::move(p.update));
    }
    buffer_.clear();
    if (applied.empty())
        return;  // Everything evicted: no commit, clock unchanged.

    // Classic mode has no snapshot consumers (the pipeline — the only
    // reader of the epoch history — is never constructed at depth 1),
    // so commits skip the per-commit snapshot copy entirely.
    apply_batch_striped(applied, factors, clock_, nullptr);

    stats_.applied += static_cast<int>(applied.size());
    ++stats_.commits;
    ++clock_;
}

// --------------------------------------------------------- pipelined --

void
AsyncAggregator::set_pipeline_hooks(SnapshotHook on_snapshot,
                                    RetireHook on_retire)
{
    std::lock_guard<std::mutex> lk(mu_);
    on_snapshot_ = std::move(on_snapshot);
    on_retire_ = std::move(on_retire);
}

RoundPlan
AsyncAggregator::register_round(uint64_t round, int expected_updates)
{
    // Empty rounds never reach the aggregator: RoundPipeline retires
    // them on the spot without consuming commit clocks.
    assert(expected_updates > 0);

    std::lock_guard<std::mutex> lk(mu_);
    RoundPlan plan;
    plan.round = round;
    plan.expected = expected_updates;
    plan.threshold = threshold_for(expected_updates);
    plan.num_batches = static_cast<int>(
        (static_cast<size_t>(expected_updates) + plan.threshold - 1) /
        plan.threshold);
    plan.base_clock = next_base_clock_;
    next_base_clock_ += static_cast<uint64_t>(plan.num_batches);

    RoundCtx ctx;
    ctx.plan = plan;
    ctx.buckets.resize(static_cast<size_t>(plan.num_batches));
    rounds_.emplace(round, std::move(ctx));
    return plan;
}

void
AsyncAggregator::push_pipelined(uint64_t round, PsPush p)
{
    std::unique_lock<std::mutex> lk(mu_);
    auto it = rounds_.find(round);
    assert(it != rounds_.end());
    RoundCtx &ctx = it->second;
    ++ctx.stats.pushed;

    const int bidx = static_cast<int>(p.seq / ctx.plan.threshold);
    assert(bidx >= 0 && bidx < ctx.plan.num_batches);
    auto &bucket = ctx.buckets[static_cast<size_t>(bidx)];
    bucket.push_back(std::move(p));

    // Sequence-contiguous batches: batch b is seqs [bT, (b+1)T) and
    // closes when its last member arrives — composition is structural,
    // never a race.
    const size_t begin = static_cast<size_t>(bidx) * ctx.plan.threshold;
    const size_t end =
        std::min(static_cast<size_t>(ctx.plan.expected),
                 begin + ctx.plan.threshold);
    if (bucket.size() == end - begin)
        form_commit_locked(ctx, bidx);
    pump(lk);
}

void
AsyncAggregator::form_commit_locked(RoundCtx &ctx, int batch_index)
{
    auto &bucket = ctx.buckets[static_cast<size_t>(batch_index)];
    std::sort(bucket.begin(), bucket.end(),
              [](const PsPush &a, const PsPush &b) { return a.seq < b.seq; });

    PendingCommit pc;
    pc.clock = ctx.plan.base_clock + static_cast<uint64_t>(batch_index);
    pc.round = ctx.plan.round;
    // Only two of a round's epochs are ever read: the first commit
    // (the next round's pull) and the last (retirement-time eval).
    // Intermediate commits skip the snapshot copy entirely.
    pc.publish = batch_index == 0 ||
        batch_index == ctx.plan.num_batches - 1;

    // Round-local staleness: every job of the round pulled the round's
    // launch snapshot, so batch b commits b own-round commits after its
    // pull. With T = ceil(K / (S+1)) this never exceeds the bound — the
    // guard below only fires if a round was registered with a batch
    // count beyond S+1. An evicted batch still consumes its commit slot
    // (an empty commit) so the structural clock arithmetic holds.
    const int s = batch_index;
    if (cfg_.mode == SyncMode::SemiAsync && s > cfg_.staleness_bound) {
        ctx.stats.evicted += static_cast<int>(bucket.size());
    } else {
        pc.updates.reserve(bucket.size());
        pc.factors.reserve(bucket.size());
        for (auto &p : bucket) {
            pc.factors.push_back(std::pow(1.0 + s, -cfg_.staleness_alpha));
            ctx.staleness_sum += s;
            ctx.stats.max_staleness = std::max(ctx.stats.max_staleness, s);
            lifetime_max_staleness_ = std::max(lifetime_max_staleness_, s);
            pc.updates.push_back(std::move(p.update));
        }
        ctx.stats.applied += static_cast<int>(bucket.size());
        ++ctx.stats.commits;
    }
    bucket.clear();
    bucket.shrink_to_fit();
    ready_.emplace(pc.clock, std::move(pc));
}

void
AsyncAggregator::pump(std::unique_lock<std::mutex> &lk)
{
    for (;;) {
        auto it = ready_.find(next_claim_);
        if (it == ready_.end())
            return;
        PendingCommit pc = std::move(it->second);
        ready_.erase(it);
        ++next_claim_;

        // Apply outside the lock: the wave blocks on per-shard turns
        // and later pushes must be able to keep forming batches. A
        // concurrent thread claiming the next clock chases this wave
        // through the stripes.
        lk.unlock();
        apply_commit(pc);
        lk.lock();

        clock_ = std::max(clock_, pc.clock + 1);
        auto rit = rounds_.find(pc.round);
        assert(rit != rounds_.end());
        RoundCtx &ctx = rit->second;
        ++ctx.batches_applied;
        std::optional<std::pair<PsRoundStats, uint64_t>> retired;
        if (ctx.batches_applied == ctx.plan.num_batches) {
            if (ctx.stats.applied > 0)
                ctx.stats.mean_staleness =
                    ctx.staleness_sum / ctx.stats.applied;
            retired = {ctx.stats,
                       ctx.plan.base_clock +
                           static_cast<uint64_t>(ctx.plan.num_batches)};
            rounds_.erase(rit);
        }
        if (retired && on_retire_) {
            const uint64_t round = pc.round;
            lk.unlock();
            on_retire_(round, retired->first, retired->second);
            lk.lock();
        }
    }
}

void
AsyncAggregator::apply_commit(PendingCommit &pc)
{
    std::shared_ptr<std::vector<float>> snap;
    if (pc.publish)
        snap = std::make_shared<std::vector<float>>(store_.dim());
    if (pc.updates.empty()) {
        // Evicted batch: a no-op commit that still advances every
        // shard's turn (and snapshots the unchanged content when this
        // epoch is a consumed one).
        for (int s = 0; s < store_.num_shards(); ++s)
            store_.update_shard_in_turn(s, pc.clock, nullptr, snap.get());
    } else {
        apply_batch_striped(pc.updates, pc.factors, pc.clock, snap.get());
    }
    if (!pc.publish)
        return;
    const uint64_t epoch = pc.clock + 1;
    store_.set_latest_snapshot(epoch, snap);
    if (on_snapshot_)
        on_snapshot_(StoreSnapshot{epoch, std::move(snap)});
}

// ------------------------------------------------------------ shared --

void
AsyncAggregator::apply_batch_striped(const std::vector<LocalUpdate> &updates,
                                     const std::vector<double> &factors,
                                     uint64_t turn,
                                     std::vector<float> *snap_out)
{
    if (alg_ == Algorithm::FedNova) {
        const FedNovaPlan plan = fednova_plan(updates, &factors);
        for (int s = 0; s < store_.num_shards(); ++s) {
            store_.update_shard_in_turn(
                s, turn,
                [&](float *w, size_t begin, size_t end) {
                    fednova_apply_range(w, updates, plan, begin, end);
                },
                snap_out);
        }
        return;
    }

    const FedAvgPlan plan = fedavg_plan(updates, &factors);
    double lambda = plan.lambda;
    if (cfg_.mode == SyncMode::Async)
        lambda *= cfg_.async_mix;

    std::vector<float> staging;
    for (int s = 0; s < store_.num_shards(); ++s) {
        const size_t begin = store_.shard_begin(s);
        const size_t end = store_.shard_end(s);
        // Stage the shard's slice of the batch average outside the
        // stripe lock; only the blend holds the shard.
        staging.resize(end - begin);
        fedavg_combine_range(updates, plan, begin, end, staging.data());
        store_.update_shard_in_turn(
            s, turn,
            [&](float *w, size_t b, size_t e) {
                if (lambda >= 1.0) {
                    // All-fresh batch: lambda is exactly 1.0 and the
                    // blend degenerates to the average itself. Writing
                    // it unblended keeps bit-parity with the
                    // synchronous Server.
                    std::copy(staging.begin(), staging.end(), w + b);
                } else {
                    for (size_t i = b; i < e; ++i)
                        w[i] = static_cast<float>(
                            (1.0 - lambda) * w[i] +
                            lambda * staging[i - b]);
                }
            },
            snap_out);
    }
}

uint64_t
AsyncAggregator::clock() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return clock_;
}

int
AsyncAggregator::lifetime_max_applied_staleness() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return lifetime_max_staleness_;
}

} // namespace autofl
