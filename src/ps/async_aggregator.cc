#include "async_aggregator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "fl/aggregation.h"

namespace autofl {

AsyncAggregator::AsyncAggregator(ShardedStore &store, Algorithm alg,
                                 const PsConfig &cfg)
    : store_(store), alg_(alg), cfg_(cfg)
{
    assert(alg_ != Algorithm::Fedl);  // FEDL needs a synchronous phase.
}

void
AsyncAggregator::begin_round(int expected_updates)
{
    std::lock_guard<std::mutex> lk(mu_);
    assert(buffer_.empty());
    stats_ = PsRoundStats{};
    staleness_sum_ = 0.0;
    if (cfg_.mode == SyncMode::Async) {
        threshold_ = 1;
    } else {
        // SemiAsync: ceil(K / (S+1)) so a round spans at most S+1
        // commits; S=0 makes the threshold the whole round (one commit
        // of all-fresh updates == synchronous FedAvg).
        const int s = std::max(0, cfg_.staleness_bound);
        threshold_ = static_cast<size_t>(
            std::max(1, (expected_updates + s) / (s + 1)));
    }
}

void
AsyncAggregator::push(PsPush p)
{
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.pushed;
    buffer_.push_back(std::move(p));
    if (buffer_.size() >= threshold_)
        commit_locked();
}

PsRoundStats
AsyncAggregator::flush()
{
    std::lock_guard<std::mutex> lk(mu_);
    commit_locked();
    if (stats_.applied > 0)
        stats_.mean_staleness = staleness_sum_ / stats_.applied;
    return stats_;
}

uint64_t
AsyncAggregator::clock() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return clock_;
}

int
AsyncAggregator::lifetime_max_applied_staleness() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return lifetime_max_staleness_;
}

void
AsyncAggregator::commit_locked()
{
    if (buffer_.empty())
        return;

    // Deterministic composition: commit in submission order regardless
    // of which worker thread finished first.
    std::sort(buffer_.begin(), buffer_.end(),
              [](const PsPush &a, const PsPush &b) { return a.seq < b.seq; });

    std::vector<LocalUpdate> applied;
    std::vector<double> factors;
    applied.reserve(buffer_.size());
    factors.reserve(buffer_.size());
    for (auto &p : buffer_) {
        // pull_clock was read before the snapshot, so this staleness is
        // an upper bound on what the job actually saw — the bound is
        // enforced conservatively.
        const int s = static_cast<int>(clock_ - p.pull_clock);
        if (cfg_.mode == SyncMode::SemiAsync && s > cfg_.staleness_bound) {
            ++stats_.evicted;
            continue;
        }
        factors.push_back(std::pow(1.0 + s, -cfg_.staleness_alpha));
        staleness_sum_ += s;
        stats_.max_staleness = std::max(stats_.max_staleness, s);
        lifetime_max_staleness_ = std::max(lifetime_max_staleness_, s);
        applied.push_back(std::move(p.update));
    }
    buffer_.clear();
    if (applied.empty())
        return;  // Everything evicted: no commit, clock unchanged.

    if (alg_ == Algorithm::FedNova) {
        std::vector<float> w = store_.read();
        fednova_apply(w, applied, &factors);
        store_.write(w);
    } else {
        double lambda = 0.0;
        std::vector<float> avg = fedavg_combine(applied, &factors, &lambda);
        if (cfg_.mode == SyncMode::Async)
            lambda *= cfg_.async_mix;
        if (lambda >= 1.0) {
            // All-fresh batch: lambda is exactly 1.0 and the blend
            // degenerates to the average itself. Writing it unblended
            // keeps bit-parity with the synchronous Server.
            store_.write(avg);
        } else {
            std::vector<float> w = store_.read();
            for (size_t i = 0; i < w.size(); ++i)
                w[i] = static_cast<float>((1.0 - lambda) * w[i] +
                                          lambda * avg[i]);
            store_.write(w);
        }
    }

    stats_.applied += static_cast<int>(applied.size());
    ++stats_.commits;
    ++clock_;
}

} // namespace autofl
