#include "executor.h"

#include <algorithm>

namespace autofl {

PsExecutor::PsExecutor(int threads)
{
    const int n = std::max(1, threads);
    workers_.reserve(static_cast<size_t>(n));
    for (int t = 0; t < n; ++t)
        workers_.emplace_back(&PsExecutor::run, this, t);
}

PsExecutor::~PsExecutor()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
PsExecutor::submit(Job job)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        queue_.push_back(std::move(job));
    }
    work_cv_.notify_one();
}

void
PsExecutor::wait_idle()
{
    std::unique_lock<std::mutex> lk(mu_);
    idle_cv_.wait(lk, [this] { return queue_.empty() && active_ == 0; });
}

size_t
PsExecutor::completed() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return completed_;
}

void
PsExecutor::run(int worker)
{
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lk(mu_);
            work_cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return;  // stop_ set and nothing left to drain.
            job = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        job(worker);
        {
            std::lock_guard<std::mutex> lk(mu_);
            --active_;
            ++completed_;
            if (queue_.empty() && active_ == 0)
                idle_cv_.notify_all();
        }
    }
}

} // namespace autofl
