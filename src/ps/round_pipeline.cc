#include "ps/round_pipeline.h"

#include <algorithm>
#include <cassert>

#include "ps/ps_server.h"

namespace autofl {

RoundPipeline::RoundPipeline(PsExecutor &exec, PsExecutor *eval_exec,
                             AsyncAggregator &agg, const ShardedStore &store,
                             const PsConfig &cfg, TrainFn train)
    : exec_(exec), eval_exec_(eval_exec), agg_(agg), cfg_(cfg),
      train_(std::move(train))
{
    // Seed the epoch history with the store's initial snapshot so round
    // 0 (pull epoch 0) can launch immediately.
    const StoreSnapshot init = store.latest_snapshot();
    history_[init.epoch] = init.weights;

    agg_.set_pipeline_hooks(
        [this](const StoreSnapshot &s) { on_snapshot(s); },
        [this](uint64_t round, const PsRoundStats &stats,
               uint64_t final_epoch) {
            on_retired(round, stats, final_epoch);
        });
}

RoundPipeline::~RoundPipeline()
{
    drain();
}

void
RoundPipeline::set_eval_fn(EvalFn fn)
{
    std::lock_guard<std::mutex> lk(pmu_);
    eval_fn_ = std::move(fn);
}

void
RoundPipeline::set_checkpoint_hook(CheckpointFn fn)
{
    std::lock_guard<std::mutex> lk(pmu_);
    checkpoint_fn_ = std::move(fn);
}

uint64_t
RoundPipeline::pull_epoch_for_locked() const
{
    // Launch trigger: the previous round's first commit. The epoch is
    // structural, so the pulled weights are a pure function of the
    // round layout, never of thread timing. In-order retirement means
    // this snapshot already contains every commit of rounds before the
    // previous one — training overlap spans exactly two rounds. This
    // is also the history-pruning floor: no future round can pull
    // below the *next* submission's epoch.
    if (submitted_ == 0)
        return 0;
    return last_plan_.base_clock + (last_plan_.num_batches > 0 ? 1 : 0);
}

void
RoundPipeline::submit(std::vector<PsRoundJob> jobs, uint64_t round,
                      PsRoundCallback cb, bool evaluate)
{
    const int expected = static_cast<int>(jobs.size());

    RoundPlan plan;
    if (expected > 0) {
        plan = agg_.register_round(round, expected);
    } else {
        // Empty rounds never touch the aggregator: they retire on the
        // spot (accuracy -1: there is no new snapshot to score) and
        // leave the commit-clock chain untouched.
        std::lock_guard<std::mutex> lk(pmu_);
        plan.round = round;
        plan.base_clock = last_plan_.base_clock +
            static_cast<uint64_t>(last_plan_.num_batches);
    }

    std::unique_lock<std::mutex> lk(pmu_);
    auto e = std::make_shared<Entry>();
    e->round = round;
    e->jobs = std::move(jobs);
    e->cb = std::move(cb);
    e->plan = plan;
    e->pull_epoch = pull_epoch_for_locked();
    e->want_eval = evaluate;
    e->final_epoch = plan.base_clock;
    if (expected == 0)
        e->done = true;
    order_.push_back(e);

    last_plan_ = plan;
    ++submitted_;

    try_launch_locked();
    prune_history_locked();
    deliver_ready(lk);  // Covers the empty-round fast path.
}

void
RoundPipeline::try_launch_locked()
{
    // Launches are in submission order: a later round never jumps an
    // earlier one, which keeps the executor's FIFO queue aligned with
    // the commit order (the deadlock-freedom invariant: a blocked
    // commit wave's predecessor jobs are always already dequeued).
    for (auto &e : order_) {
        if (e->launched || e->plan.expected == 0)
            continue;
        auto it = history_.find(e->pull_epoch);
        if (it == history_.end())
            return;
        e->launched = true;
        launch_locked(*e);
    }
}

void
RoundPipeline::launch_locked(Entry &e)
{
    std::shared_ptr<const std::vector<float>> weights =
        history_.at(e.pull_epoch);
    const uint64_t round = e.round;
    const uint64_t pull_epoch = e.pull_epoch;
    for (size_t seq = 0; seq < e.jobs.size(); ++seq) {
        const PsRoundJob job = e.jobs[seq];
        exec_.submit([this, job, seq, round, pull_epoch, weights](
                         int worker) {
            LocalUpdate u = train_(worker, job, *weights, round);
            agg_.push_pipelined(
                round, PsPush{std::move(u), static_cast<uint64_t>(seq),
                              pull_epoch});
        });
    }
}

void
RoundPipeline::on_snapshot(const StoreSnapshot &snap)
{
    std::unique_lock<std::mutex> lk(pmu_);
    history_[snap.epoch] = snap.weights;
    try_launch_locked();
    prune_history_locked();
}

void
RoundPipeline::on_retired(uint64_t round, const PsRoundStats &stats,
                          uint64_t final_epoch)
{
    std::unique_lock<std::mutex> lk(pmu_);
    std::shared_ptr<Entry> entry;
    for (auto &e : order_) {
        if (e->round == round) {
            entry = e;
            break;
        }
    }
    assert(entry);
    entry->stats = stats;
    entry->final_epoch = final_epoch;
    entry->retired = true;

    auto it = history_.find(final_epoch);
    std::shared_ptr<const std::vector<float>> snap =
        it != history_.end() ? it->second : nullptr;
    assert(snap);

    if (checkpoint_fn_ && snap) {
        // Persistence rides retirement: rounds retire in order, so the
        // hook sees a monotone (round, epoch) sequence, and the shared
        // history snapshot crosses zero-copy. Invoked with the lock
        // released (hook style: see AsyncAggregator) — the writer only
        // enqueues, but no pipeline lock is ever held across foreign
        // code.
        const CheckpointFn fn = checkpoint_fn_;
        lk.unlock();
        fn(round, final_epoch, snap);
        lk.lock();
    }

    if (eval_exec_ && eval_fn_ && snap && entry->want_eval) {
        // Score the retired round's snapshot concurrently; the shared
        // snapshot keeps the weights alive past any history pruning.
        EvalFn fn = eval_fn_;
        eval_exec_->submit([this, round, fn, snap, final_epoch](int) {
            finalize(round, fn(StoreSnapshot{final_epoch, snap}));
        });
        return;
    }
    entry->done = true;
    deliver_ready(lk);
}

void
RoundPipeline::finalize(uint64_t round, double accuracy)
{
    std::unique_lock<std::mutex> lk(pmu_);
    for (auto &e : order_) {
        if (e->round == round) {
            e->accuracy = accuracy;
            e->done = true;
            break;
        }
    }
    deliver_ready(lk);
}

void
RoundPipeline::deliver_ready(std::unique_lock<std::mutex> &lk)
{
    if (delivering_)
        return;  // Another thread is already draining, in order.
    delivering_ = true;
    while (!order_.empty() && order_.front()->done) {
        std::shared_ptr<Entry> e = order_.front();
        order_.pop_front();
        PsRoundResult res;
        res.round = e->round;
        res.stats = e->stats;
        res.accuracy = e->accuracy;
        res.final_epoch = e->final_epoch;
        PsRoundCallback cb = std::move(e->cb);
        lk.unlock();
        if (cb)
            cb(res);
        lk.lock();
    }
    delivering_ = false;
    drain_cv_.notify_all();
}

void
RoundPipeline::prune_history_locked()
{
    // Future rounds always pull at or above the next submission's
    // epoch; launched rounds hold their pull snapshot via shared_ptr,
    // but an unretired round still needs its *final* epoch in the
    // history for retirement-time evaluation. Everything below the
    // floor is garbage.
    uint64_t floor = pull_epoch_for_locked();
    for (const auto &e : order_) {
        if (e->plan.expected == 0)
            continue;
        if (!e->launched)
            floor = std::min(floor, e->pull_epoch);
        if (!e->retired) {
            floor = std::min(
                floor, e->plan.base_clock +
                           static_cast<uint64_t>(e->plan.num_batches));
        }
    }
    history_.erase(history_.begin(), history_.lower_bound(floor));
}

void
RoundPipeline::drain()
{
    std::unique_lock<std::mutex> lk(pmu_);
    drain_cv_.wait(lk, [this] {
        return order_.empty() && !delivering_;
    });
}

} // namespace autofl
