/**
 * @file
 * Bounded-staleness semi-async aggregation over a ShardedStore.
 *
 * Client jobs pull the global weights at logical clock t and push their
 * trained update tagged with t. The aggregator buffers pushes and
 * commits a batch when the buffer reaches the round's commit threshold
 * (ceil(K / (S+1)) in SemiAsync mode, 1 in Async mode); each commit
 * advances the clock. At commit time an update's staleness is the
 * number of commits since its pull; updates staler than the bound S are
 * evicted (SemiAsync) — the parameter-server re-expression of the
 * synchronous path's straggler drop.
 *
 * Commit rule (FedAvg family): with staleness factors f_j = (1+s_j)^-a
 * and masses e_j = f_j * n_j,
 *
 *     w <- (1 - lambda) * w + lambda * sum_j (e_j / E) u_j,
 *     lambda = E / N,  E = sum e_j,  N = sum n_j.
 *
 * When every update in the batch is fresh (s_j = 0, exact under
 * SemiAsync S=0, where the threshold equals the round size), f_j = 1.0
 * and lambda = 1.0 *exactly*, so the blend reduces to the identical
 * fedavg_combine arithmetic the synchronous Server runs — which is why
 * SemiAsync(S=0) reproduces synchronous FedAvg bit-for-bit.
 */
#ifndef AUTOFL_PS_ASYNC_AGGREGATOR_H
#define AUTOFL_PS_ASYNC_AGGREGATOR_H

#include <cstdint>
#include <mutex>
#include <vector>

#include "fl/fl_types.h"
#include "ps/ps_config.h"
#include "ps/sharded_store.h"

namespace autofl {

/** One client push: the update plus its provenance. */
struct PsPush
{
    LocalUpdate update;
    uint64_t seq = 0;         ///< Submission order within the round.
    uint64_t pull_clock = 0;  ///< Aggregator clock when weights were pulled.
};

/** Staleness-weighted, bounded-staleness update sink. */
class AsyncAggregator
{
  public:
    /**
     * @param store Global model store commits are applied to.
     * @param alg Aggregation algorithm (FEDL is rejected upstream).
     * @param cfg Mode, staleness bound, damping exponents.
     */
    AsyncAggregator(ShardedStore &store, Algorithm alg, const PsConfig &cfg);

    /**
     * Start a round of @p expected_updates pushes: resets round stats
     * and sets the commit threshold (the clock is *not* reset — it is
     * the staleness reference across the job's lifetime).
     */
    void begin_round(int expected_updates);

    /** Thread-safe push; may trigger a commit when the threshold fills. */
    void push(PsPush p);

    /** Commit any buffered remainder and return the round's stats. */
    PsRoundStats flush();

    /** Logical commit clock (total commits so far). */
    uint64_t clock() const;

    /** Largest staleness ever applied (property-test hook). */
    int lifetime_max_applied_staleness() const;

  private:
    ShardedStore &store_;
    Algorithm alg_;
    PsConfig cfg_;

    mutable std::mutex mu_;
    std::vector<PsPush> buffer_;
    uint64_t clock_ = 0;
    size_t threshold_ = 1;
    PsRoundStats stats_;
    double staleness_sum_ = 0.0;
    int lifetime_max_staleness_ = 0;

    void commit_locked();
};

} // namespace autofl

#endif // AUTOFL_PS_ASYNC_AGGREGATOR_H
