/**
 * @file
 * Bounded-staleness semi-async aggregation over a ShardedStore.
 *
 * Client jobs pull the global weights and push their trained update; the
 * aggregator batches pushes and commits each batch against the store.
 * Commits are *striped*: the batch average is staged one store shard at
 * a time and applied under that shard's lock once the shard has absorbed
 * every earlier commit, so two consecutive commits wave through the
 * stripes in parallel (commit c+1 writes shard 0 while commit c is
 * still writing shard 1) yet every shard sees commits in exactly clock
 * order. Each completed wave publishes an immutable StoreSnapshot for
 * epoch-gated pulls and concurrent evaluation.
 *
 * Commit rule (FedAvg family): with staleness factors f_j = (1+s_j)^-a
 * and masses e_j = f_j * n_j,
 *
 *     w <- (1 - lambda) * w + lambda * sum_j (e_j / E) u_j,
 *     lambda = E / N,  E = sum e_j,  N = sum n_j.
 *
 * When every update in the batch is fresh (s_j = 0), f_j = 1.0 and
 * lambda = 1.0 *exactly*, so the blend reduces to the identical
 * fedavg_combine arithmetic the synchronous Server runs — which is why
 * SemiAsync(S=0) reproduces synchronous FedAvg bit-for-bit.
 *
 * Two batching disciplines share the commit engine:
 *
 * - **Classic** (begin_round/push/flush; pipeline_depth == 1): one
 *   round at a time, arrival-order batches of ceil(K / (S+1)) pushes
 *   (1 in Async mode), staleness measured against the aggregator clock
 *   at pull time, updates staler than the bound S evicted — exactly the
 *   PR-1 semantics.
 * - **Pipelined** (register_round/push_pipelined): several rounds in
 *   flight. Batches are *sequence-contiguous* (batch b of round r is
 *   seqs [bT, (b+1)T)), commits retire in (round, batch) order, and a
 *   round's staleness is its batch index — all structural, which is
 *   what makes pipelined execution deterministic: two runs with the
 *   same seed commit identical batches in identical order regardless of
 *   thread interleaving.
 */
#ifndef AUTOFL_PS_ASYNC_AGGREGATOR_H
#define AUTOFL_PS_ASYNC_AGGREGATOR_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "fl/fl_types.h"
#include "ps/ps_config.h"
#include "ps/sharded_store.h"

namespace autofl {

/** One client push: the update plus its provenance. */
struct PsPush
{
    LocalUpdate update;
    uint64_t seq = 0;         ///< Submission order within the round.
    uint64_t pull_clock = 0;  ///< Aggregator clock when weights were pulled.
};

/** Structural layout of one pipelined round, fixed at registration. */
struct RoundPlan
{
    uint64_t round = 0;
    int expected = 0;         ///< Pushes the round will deliver.
    size_t threshold = 1;     ///< Batch size T = ceil(K / (S+1)).
    int num_batches = 0;      ///< ceil(expected / T); <= S+1.
    uint64_t base_clock = 0;  ///< Clock of the round's first commit.
};

/** Staleness-weighted, bounded-staleness update sink. */
class AsyncAggregator
{
  public:
    /**
     * @param store Global model store commits are applied to.
     * @param alg Aggregation algorithm (FEDL is rejected upstream).
     * @param cfg Mode, staleness bound, damping exponents.
     */
    AsyncAggregator(ShardedStore &store, Algorithm alg, const PsConfig &cfg);

    // ------------------------------------------------- classic mode --

    /**
     * Start a round of @p expected_updates pushes: resets round stats
     * and sets the commit threshold (the clock is *not* reset — it is
     * the staleness reference across the job's lifetime).
     */
    void begin_round(int expected_updates);

    /** Thread-safe push; may trigger a commit when the threshold fills. */
    void push(PsPush p);

    /** Commit any buffered remainder and return the round's stats. */
    PsRoundStats flush();

    // ----------------------------------------------- pipelined mode --

    /** A commit's wave finished; its snapshot epoch is live. */
    using SnapshotHook = std::function<void(const StoreSnapshot &)>;

    /** A round's last batch committed. */
    using RetireHook = std::function<void(
        uint64_t round, const PsRoundStats &stats, uint64_t final_epoch)>;

    /**
     * Install the pipeline callbacks. Both are invoked from whichever
     * worker thread completed the triggering commit, with no aggregator
     * lock held.
     */
    void set_pipeline_hooks(SnapshotHook on_snapshot, RetireHook on_retire);

    /**
     * Register a pipelined round. Rounds must be registered in
     * submission order; the returned plan fixes the round's batch
     * layout and commit-clock range, from which the pipeline derives
     * its (structural, deterministic) pull epochs.
     */
    RoundPlan register_round(uint64_t round, int expected_updates);

    /**
     * Thread-safe pipelined push. Completing a batch parks it until its
     * commit clock is next to retire, then the depositing thread drives
     * every consecutively-ready commit through the striped wave.
     */
    void push_pipelined(uint64_t round, PsPush p);

    // ------------------------------------------------------- shared --

    /** Logical commit clock (total commit slots consumed so far). */
    uint64_t clock() const;

    /** Largest staleness ever applied (property-test hook). */
    int lifetime_max_applied_staleness() const;

  private:
    /** A formed batch awaiting its turn in the commit order. */
    struct PendingCommit
    {
        uint64_t clock = 0;
        uint64_t round = 0;
        bool publish = false;  ///< Snapshot this commit's epoch.
        std::vector<LocalUpdate> updates;  ///< Empty == evicted batch.
        std::vector<double> factors;
    };

    /** Bookkeeping for one in-flight pipelined round. */
    struct RoundCtx
    {
        RoundPlan plan;
        std::vector<std::vector<PsPush>> buckets;  ///< Arrivals per batch.
        int batches_applied = 0;
        PsRoundStats stats;
        double staleness_sum = 0.0;
    };

    ShardedStore &store_;
    Algorithm alg_;
    PsConfig cfg_;

    mutable std::mutex mu_;

    // Classic mode.
    std::vector<PsPush> buffer_;
    size_t threshold_ = 1;
    PsRoundStats stats_;
    double staleness_sum_ = 0.0;

    // Pipelined mode.
    std::map<uint64_t, RoundCtx> rounds_;
    std::map<uint64_t, PendingCommit> ready_;
    uint64_t next_base_clock_ = 0;
    uint64_t next_claim_ = 0;
    SnapshotHook on_snapshot_;
    RetireHook on_retire_;

    // Shared.
    uint64_t clock_ = 0;
    int lifetime_max_staleness_ = 0;

    size_t threshold_for(int expected_updates) const;
    void commit_locked();
    void form_commit_locked(RoundCtx &ctx, int batch_index);
    void pump(std::unique_lock<std::mutex> &lk);
    void apply_commit(PendingCommit &pc);

    /**
     * The striped commit: stage the batch combine shard by shard and
     * apply each stage under the shard's turn-ordered lock, copying the
     * committed ranges into @p snap_out when non-null.
     */
    void apply_batch_striped(const std::vector<LocalUpdate> &updates,
                             const std::vector<double> &factors,
                             uint64_t turn, std::vector<float> *snap_out);
};

} // namespace autofl

#endif // AUTOFL_PS_ASYNC_AGGREGATOR_H
