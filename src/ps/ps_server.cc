#include "ps_server.h"

#include <cassert>
#include <chrono>
#include <condition_variable>
#include <stdexcept>
#include <thread>

#include "util/rng.h"

namespace autofl {

std::string
sync_mode_name(SyncMode m)
{
    switch (m) {
      case SyncMode::Sync:
        return "Sync";
      case SyncMode::SemiAsync:
        return "SemiAsync";
      case SyncMode::Async:
        return "Async";
    }
    return "unknown";
}

void
PsConfig::validate(const char *who) const
{
    const std::string w(who);
    if (pipeline_depth < 1) {
        throw std::invalid_argument(
            w + ".pipeline_depth must be >= 1 (got " +
            std::to_string(pipeline_depth) +
            "): 1 drains every round at its barrier; values above 1 "
            "stream that many rounds in flight");
    }
    if (staleness_bound < 0) {
        throw std::invalid_argument(
            w + ".staleness_bound must be >= 0 (got " +
            std::to_string(staleness_bound) +
            "): 0 reproduces synchronous FedAvg exactly; larger bounds "
            "admit staler updates");
    }
    if (eval_workers < 1) {
        throw std::invalid_argument(
            w + ".eval_workers must be >= 1 (got " +
            std::to_string(eval_workers) +
            "): the pipelined runtime needs at least one concurrent "
            "snapshot-eval worker");
    }
    if (shards < 1) {
        throw std::invalid_argument(
            w + ".shards must be >= 1 (got " + std::to_string(shards) +
            "): the model store needs at least one lock stripe");
    }
    if (executor_threads < 0) {
        throw std::invalid_argument(
            w + ".executor_threads must be >= 0 (got " +
            std::to_string(executor_threads) +
            "): 0 inherits the system thread count");
    }
    if (snapshot_every_epochs < 1) {
        throw std::invalid_argument(
            w + ".snapshot_every_epochs must be >= 1 (got " +
            std::to_string(snapshot_every_epochs) +
            "): 1 checkpoints after every round; larger values thin "
            "the artifact cadence");
    }
    if (snapshot_keep_last < 0) {
        throw std::invalid_argument(
            w + ".snapshot_keep_last must be >= 0 (got " +
            std::to_string(snapshot_keep_last) +
            "): 0 keeps every artifact; K keeps the newest K plus "
            "pinned rounds");
    }
    if (snapshot_keep_last != 0 && snapshot_dir.empty()) {
        throw std::invalid_argument(
            w + ".snapshot_keep_last is set but " + w +
            ".snapshot_dir is empty: retention without a directory "
            "prunes nothing; set snapshot_dir to enable persistence");
    }
    if (snapshot_every_epochs != 1 && snapshot_dir.empty()) {
        throw std::invalid_argument(
            w + ".snapshot_every_epochs is set but " + w +
            ".snapshot_dir is empty: a cadence without a directory "
            "silently checkpoints nothing; set snapshot_dir to enable "
            "persistence (or leave the cadence at its default)");
    }
    net.validate((w + ".net").c_str());
    compression.validate((w + ".compression").c_str());
    if (!resume_from.empty() && compression.enabled()) {
        throw std::invalid_argument(
            w + ".resume_from cannot be combined with push compression: "
            "artifacts persist the global weights but not the "
            "per-client error-feedback residuals, so a resumed "
            "compressed run would silently diverge; resume "
            "uncompressed or restart the compressed run from scratch");
    }
    if (compression.enabled()) {
        if (mode == SyncMode::Sync) {
            throw std::invalid_argument(
                w + ".compression: push-delta compression runs on the "
                "parameter-server push path; use mode SemiAsync with "
                "staleness_bound 0 for synchronous semantics, or Async");
        }
        if (pipeline_depth != 1) {
            throw std::invalid_argument(
                w + ".compression requires pipeline_depth == 1 (got " +
                std::to_string(pipeline_depth) +
                "): the error-feedback residual sequence is "
                "deterministic only when a device trains at most once "
                "concurrently");
        }
    }
    if (net.enabled()) {
        if (mode == SyncMode::Sync) {
            throw std::invalid_argument(
                w + ".net: the distributed transport runs on the "
                "parameter-server runtime; use mode SemiAsync with "
                "staleness_bound 0 for synchronous semantics (it is "
                "bit-identical to Sync), or Async");
        }
        if (pipeline_depth != 1) {
            throw std::invalid_argument(
                w + ".net requires pipeline_depth == 1 (got " +
                std::to_string(pipeline_depth) +
                "): streaming round overlap is not yet wired through "
                "the transport");
        }
    }
}

PsServer::PsServer(Server &server, Workload workload,
                   const FlGlobalParams &params, const TrainHyper &hyper,
                   Algorithm alg, uint64_t seed, const PsConfig &cfg,
                   int default_threads)
    : server_(server), params_(params), hyper_(hyper), alg_(alg),
      seed_(seed), cfg_(cfg),
      store_(server.global_weights(), cfg.shards),
      exec_(cfg.executor_threads > 0 ? cfg.executor_threads :
                                       default_threads),
      agg_(store_, alg, cfg)
{
    assert(alg != Algorithm::Fedl);
    trainers_.reserve(static_cast<size_t>(exec_.threads()));
    for (int t = 0; t < exec_.threads(); ++t)
        trainers_.push_back(std::make_unique<LocalTrainer>(workload));

    if (!cfg_.snapshot_dir.empty()) {
        store::RetentionPolicy retention;
        retention.keep_last = cfg_.snapshot_keep_last;
        retention.pinned = cfg_.snapshot_pinned;
        ckpt_ = std::make_unique<store::CheckpointWriter>(
            cfg_.snapshot_dir,
            store::model_topology_hash(workload_name(workload),
                                       server.global_weights().size()),
            static_cast<uint32_t>(cfg_.shards), std::move(retention));
    }

    if (cfg_.pipeline_depth > 1) {
        eval_exec_ = std::make_unique<PsExecutor>(
            std::max(1, cfg_.eval_workers));
        pipeline_ = std::make_unique<RoundPipeline>(
            exec_, eval_exec_.get(), agg_, store_, cfg_,
            [this](int worker, const PsRoundJob &job,
                   const std::vector<float> &weights, uint64_t round) {
                if (cfg_.sim_device_latency_s > 0.0) {
                    std::this_thread::sleep_for(
                        std::chrono::duration<double>(
                            cfg_.sim_latency_for(job.device_id)));
                }
                Rng rng = client_rng(seed_, job.device_id, round);
                LocalUpdate u =
                    trainers_[static_cast<size_t>(worker)]->train(
                        weights, *job.shard, params_, hyper_, alg_, {},
                        rng);
                u.device_id = job.device_id;
                return u;
            });
        if (ckpt_) {
            // Persistence rides retirement: the hook shares the
            // pipeline's own history snapshot zero-copy and the writer
            // only enqueues — a slow disk thins artifacts, it never
            // slows a commit wave.
            pipeline_->set_checkpoint_hook(
                [this](uint64_t round, uint64_t epoch,
                       std::shared_ptr<const std::vector<float>> w) {
                    if (cfg_.snapshot_due(round))
                        ckpt_->request(round, epoch, std::move(w));
                });
        }
    }
}

PsServer::~PsServer() = default;

void
PsServer::set_eval_fn(RoundPipeline::EvalFn fn)
{
    eval_fn_ = fn;
    if (pipeline_)
        pipeline_->set_eval_fn(std::move(fn));
}

PsRoundStats
PsServer::run_round(const std::vector<PsRoundJob> &jobs, uint64_t round)
{
    if (pipeline_) {
        // Blocking wrapper over the streaming path: correct anywhere,
        // overlapping nothing. It returns stats only, so the round is
        // submitted unevaluated — no discarded test-set inference.
        std::mutex mu;
        std::condition_variable cv;
        bool ready = false;
        PsRoundStats stats;
        pipeline_->submit(jobs, round,
                          [&](const PsRoundResult &res) {
                              std::lock_guard<std::mutex> lk(mu);
                              stats = res.stats;
                              ready = true;
                              cv.notify_one();
                          },
                          /*evaluate=*/false);
        std::unique_lock<std::mutex> lk(mu);
        cv.wait(lk, [&] { return ready; });
        server_.set_global_weights(store_.read());
        return stats;
    }

    agg_.begin_round(static_cast<int>(jobs.size()));
    for (size_t seq = 0; seq < jobs.size(); ++seq) {
        const PsRoundJob job = jobs[seq];
        exec_.submit([this, job, seq, round](int worker) {
            // Clock first, snapshot second: a commit landing in between
            // makes the recorded staleness an upper bound, never an
            // undercount, so the bound stays honest.
            const uint64_t pull_clock = agg_.clock();
            const std::vector<float> weights = store_.read();
            if (cfg_.sim_device_latency_s > 0.0) {
                std::this_thread::sleep_for(std::chrono::duration<double>(
                    cfg_.sim_latency_for(job.device_id)));
            }
            Rng rng = client_rng(seed_, job.device_id, round);
            LocalUpdate u = trainers_[static_cast<size_t>(worker)]->train(
                weights, *job.shard, params_, hyper_, alg_, {}, rng);
            u.device_id = job.device_id;
            // The in-process push "wire": encode the delta against the
            // pulled weights and hand the aggregator the decoded
            // reconstruction — exactly what a cluster server commits.
            // None is a pure byte count, zero float ops (bit parity).
            push_payload_bytes_.fetch_add(
                error_feedback_.compress_update(cfg_.compression,
                                                job.device_id,
                                                weights.data(), u.weights),
                std::memory_order_relaxed);
            agg_.push(PsPush{std::move(u), static_cast<uint64_t>(seq),
                             pull_clock});
        });
    }
    exec_.wait_idle();
    PsRoundStats stats = agg_.flush();
    server_.set_global_weights(store_.read());
    // Classic-mode persistence point: the barrier. The store is
    // quiescent here, so the synced server weights ARE the post-round
    // state; the copy crosses to the writer thread and training moves
    // on.
    if (ckpt_ && cfg_.snapshot_due(round)) {
        ckpt_->request(round, agg_.clock(),
                       std::make_shared<const std::vector<float>>(
                           server_.global_weights()));
    }
    return stats;
}

void
PsServer::submit_round(const std::vector<PsRoundJob> &jobs, uint64_t round,
                       PsRoundCallback cb)
{
    if (pipeline_) {
        pipeline_->submit(jobs, round, std::move(cb));
        return;
    }
    // Classic mode: run the barriered round inline and score it on the
    // calling thread, so drivers can use one streaming code path at any
    // depth.
    PsRoundResult res;
    res.round = round;
    res.stats = run_round(jobs, round);
    res.final_epoch = agg_.clock();
    // Empty rounds report accuracy -1, matching the pipelined contract
    // (no new snapshot to score). The classic runtime never publishes
    // commit snapshots, so the barrier builds an epoch-tagged one here
    // (epoch = commit clock) for the shared serving-plane scorer —
    // from the wrapped Server's weights, which run_round just synced
    // from the store, sparing a second sharded read.
    if (eval_fn_ && !jobs.empty()) {
        res.accuracy = eval_fn_(StoreSnapshot{
            agg_.clock(), std::make_shared<const std::vector<float>>(
                              server_.global_weights())});
    }
    if (cb)
        cb(res);
}

uint64_t
PsServer::push_payload_bytes() const
{
    return push_payload_bytes_.load(std::memory_order_relaxed);
}

void
PsServer::drain()
{
    if (pipeline_)
        pipeline_->drain();
    else
        exec_.wait_idle();
    server_.set_global_weights(store_.read());
}

} // namespace autofl
