#include "ps_server.h"

#include <cassert>
#include <chrono>
#include <thread>

#include "util/rng.h"

namespace autofl {

std::string
sync_mode_name(SyncMode m)
{
    switch (m) {
      case SyncMode::Sync:
        return "Sync";
      case SyncMode::SemiAsync:
        return "SemiAsync";
      case SyncMode::Async:
        return "Async";
    }
    return "unknown";
}

PsServer::PsServer(Server &server, Workload workload,
                   const FlGlobalParams &params, const TrainHyper &hyper,
                   Algorithm alg, uint64_t seed, const PsConfig &cfg,
                   int default_threads)
    : server_(server), params_(params), hyper_(hyper), alg_(alg),
      seed_(seed), cfg_(cfg),
      store_(server.global_weights(), cfg.shards),
      exec_(cfg.executor_threads > 0 ? cfg.executor_threads :
                                       default_threads),
      agg_(store_, alg, cfg)
{
    assert(alg != Algorithm::Fedl);
    trainers_.reserve(static_cast<size_t>(exec_.threads()));
    for (int t = 0; t < exec_.threads(); ++t)
        trainers_.push_back(std::make_unique<LocalTrainer>(workload));
}

PsRoundStats
PsServer::run_round(const std::vector<PsRoundJob> &jobs, uint64_t round)
{
    agg_.begin_round(static_cast<int>(jobs.size()));
    for (size_t seq = 0; seq < jobs.size(); ++seq) {
        const PsRoundJob job = jobs[seq];
        exec_.submit([this, job, seq, round](int worker) {
            // Clock first, snapshot second: a commit landing in between
            // makes the recorded staleness an upper bound, never an
            // undercount, so the bound stays honest.
            const uint64_t pull_clock = agg_.clock();
            const std::vector<float> weights = store_.read();
            if (cfg_.sim_device_latency_s > 0.0) {
                std::this_thread::sleep_for(std::chrono::duration<double>(
                    cfg_.sim_latency_for(job.device_id)));
            }
            Rng rng = client_rng(seed_, job.device_id, round);
            LocalUpdate u = trainers_[static_cast<size_t>(worker)]->train(
                weights, *job.shard, params_, hyper_, alg_, {}, rng);
            u.device_id = job.device_id;
            agg_.push(PsPush{std::move(u), static_cast<uint64_t>(seq),
                             pull_clock});
        });
    }
    exec_.wait_idle();
    PsRoundStats stats = agg_.flush();
    server_.set_global_weights(store_.read());
    return stats;
}

} // namespace autofl
