/**
 * @file
 * PsServer: the parameter-server runtime facade. Owns the sharded model
 * store, the executor pool and the bounded-staleness aggregator, and
 * runs one training round as a stream of concurrent client jobs that
 * pull weights, train locally and push their updates as they finish.
 * The wrapped synchronous Server keeps model init and evaluation; its
 * global weights are re-synced from the store after every round.
 */
#ifndef AUTOFL_PS_PS_SERVER_H
#define AUTOFL_PS_PS_SERVER_H

#include <memory>
#include <vector>

#include "data/dataset.h"
#include "fl/client.h"
#include "fl/server.h"
#include "ps/async_aggregator.h"
#include "ps/executor.h"
#include "ps/ps_config.h"
#include "ps/sharded_store.h"

namespace autofl {

/** One client job: a device and its local shard. */
struct PsRoundJob
{
    int device_id = -1;
    const Dataset *shard = nullptr;
};

/** Parameter-server runtime wrapping a synchronous Server. */
class PsServer
{
  public:
    /**
     * @param server Aggregation server holding the initialized model;
     *        must outlive this object. Its weights seed the store.
     * @param params,hyper,alg,seed The FL job settings (alg must not be
     *        FEDL, whose gradient exchange is inherently synchronous).
     * @param cfg Runtime knobs; cfg.executor_threads of 0 falls back to
     *        @p default_threads.
     */
    PsServer(Server &server, Workload workload, const FlGlobalParams &params,
             const TrainHyper &hyper, Algorithm alg, uint64_t seed,
             const PsConfig &cfg, int default_threads);

    /**
     * Run one round: submit every job (in order — submission order is
     * the deterministic aggregation order), wait for the stream to
     * drain, flush the aggregator and write the store back into the
     * wrapped Server. Jobs pull the freshest per-shard-consistent
     * weights when they *start*, so with more jobs than executor
     * threads later jobs train on mid-round commits — the semi-async
     * pipeline.
     */
    PsRoundStats run_round(const std::vector<PsRoundJob> &jobs,
                           uint64_t round);

    const ShardedStore &store() const { return store_; }
    AsyncAggregator &aggregator() { return agg_; }
    PsExecutor &executor() { return exec_; }

  private:
    Server &server_;
    FlGlobalParams params_;
    TrainHyper hyper_;
    Algorithm alg_;
    uint64_t seed_;
    PsConfig cfg_;
    ShardedStore store_;
    PsExecutor exec_;
    AsyncAggregator agg_;
    std::vector<std::unique_ptr<LocalTrainer>> trainers_;  ///< Per worker.
};

} // namespace autofl

#endif // AUTOFL_PS_PS_SERVER_H
