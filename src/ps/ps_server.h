/**
 * @file
 * PsServer: the parameter-server runtime facade. Owns the sharded model
 * store, the executor pool, the bounded-staleness aggregator and — when
 * PsConfig::pipeline_depth > 1 — the streaming RoundPipeline plus a
 * concurrent snapshot-eval pool. The wrapped synchronous Server keeps
 * model init; its global weights are re-synced from the store whenever
 * the runtime drains.
 */
#ifndef AUTOFL_PS_PS_SERVER_H
#define AUTOFL_PS_PS_SERVER_H

#include <atomic>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "fl/client.h"
#include "fl/server.h"
#include "ps/async_aggregator.h"
#include "ps/executor.h"
#include "ps/ps_config.h"
#include "ps/round_pipeline.h"
#include "ps/sharded_store.h"
#include "store/checkpoint_writer.h"

namespace autofl {

/** One client job: a device and its local shard. */
struct PsRoundJob
{
    int device_id = -1;
    const Dataset *shard = nullptr;
};

/** Parameter-server runtime wrapping a synchronous Server. */
class PsServer
{
  public:
    /**
     * @param server Aggregation server holding the initialized model;
     *        must outlive this object. Its weights seed the store.
     * @param params,hyper,alg,seed The FL job settings (alg must not be
     *        FEDL, whose gradient exchange is inherently synchronous).
     * @param cfg Runtime knobs; cfg.executor_threads of 0 falls back to
     *        @p default_threads.
     */
    PsServer(Server &server, Workload workload, const FlGlobalParams &params,
             const TrainHyper &hyper, Algorithm alg, uint64_t seed,
             const PsConfig &cfg, int default_threads);

    ~PsServer();

    /** Whether the streaming pipeline (depth > 1) is active. */
    bool pipelined() const { return pipeline_ != nullptr; }

    /**
     * Install the snapshot scorer used by the concurrent eval workers
     * (pipelined mode; ignored otherwise). Must be thread-safe.
     */
    void set_eval_fn(RoundPipeline::EvalFn fn);

    /**
     * Run one round to completion.
     *
     * Classic mode (pipeline_depth == 1): submit every job (in order —
     * submission order is the deterministic aggregation order), wait
     * for the stream to drain, flush the aggregator and write the store
     * back into the wrapped Server. Jobs pull the freshest
     * per-shard-consistent weights when they *start*, so with more jobs
     * than executor threads later jobs train on mid-round commits — the
     * semi-async pipeline.
     *
     * Pipelined mode: submit through the pipeline and block for this
     * round's result — correct but sequential; callers wanting overlap
     * use submit_round.
     */
    PsRoundStats run_round(const std::vector<PsRoundJob> &jobs,
                           uint64_t round);

    /**
     * Streaming entry: enqueue the round and return immediately. The
     * callback fires in round order once the round has retired and its
     * final snapshot is scored. In classic mode this degrades to a
     * synchronous run_round + inline evaluation before @p cb returns.
     */
    void submit_round(const std::vector<PsRoundJob> &jobs, uint64_t round,
                      PsRoundCallback cb);

    /**
     * Block until every submitted round has been delivered, then sync
     * the wrapped Server's weights from the store.
     */
    void drain();

    const ShardedStore &store() const { return store_; }
    AsyncAggregator &aggregator() { return agg_; }
    PsExecutor &executor() { return exec_; }

    /**
     * Push-path wire bytes this runtime would have moved (classic mode,
     * in-process): the sum of each update's encoded payload size under
     * cfg.compression — raw f32 bytes for None.
     */
    uint64_t push_payload_bytes() const;

    /** Per-client error-feedback state (tests/metrics). */
    const ErrorFeedback &error_feedback() const { return error_feedback_; }

    /**
     * The snapshot persistence writer (null unless cfg.snapshot_dir is
     * set). Owned here so the checkpoint cadence rides this runtime's
     * commit path: pipelined rounds persist through the RoundPipeline
     * retirement hook (zero-copy history snapshot), classic rounds at
     * their barrier. Callers flush() it to wait for artifacts on disk.
     */
    store::CheckpointWriter *checkpoint_writer() { return ckpt_.get(); }

  private:
    Server &server_;
    FlGlobalParams params_;
    TrainHyper hyper_;
    Algorithm alg_;
    uint64_t seed_;
    PsConfig cfg_;
    ShardedStore store_;
    PsExecutor exec_;
    AsyncAggregator agg_;
    std::vector<std::unique_ptr<LocalTrainer>> trainers_;  ///< Per worker.
    RoundPipeline::EvalFn eval_fn_;  ///< Classic-mode inline scoring.
    ErrorFeedback error_feedback_;   ///< Push-compression residuals.
    std::atomic<uint64_t> push_payload_bytes_{0};

    /**
     * Snapshot persistence (cfg.snapshot_dir). Declared before the
     * pipeline: the pipeline's retirement hook enqueues into the
     * writer, so the pipeline must drain (be destroyed) first.
     */
    std::unique_ptr<store::CheckpointWriter> ckpt_;

    // Pipelined mode only. Declared after the components they use so
    // the pipeline drains (and the eval pool joins) before any of them
    // is torn down.
    std::unique_ptr<PsExecutor> eval_exec_;
    std::unique_ptr<RoundPipeline> pipeline_;
};

} // namespace autofl

#endif // AUTOFL_PS_PS_SERVER_H
