#include "compression.h"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "kernels/kernels.h"

namespace autofl {

namespace {

/** ceil(n / d) for positive d. */
inline size_t
div_up(size_t n, size_t d)
{
    return (n + d - 1) / d;
}

/** TopK kept count for an n-element delta: at least 1, at most n. */
inline size_t
topk_count(double fraction, size_t n)
{
    if (n == 0)
        return 0;
    const size_t k =
        static_cast<size_t>(std::llround(fraction * static_cast<double>(n)));
    return k < 1 ? 1 : (k > n ? n : k);
}

void
encode_int8(const CompressionConfig &cfg, const std::vector<float> &delta,
            EncodedDelta *e)
{
    const size_t n = delta.size();
    const size_t range = static_cast<size_t>(cfg.quant_range);
    const size_t ranges = div_up(n, range);
    e->quant_range = static_cast<uint32_t>(cfg.quant_range);
    e->scales.resize(ranges);
    e->payload.resize(n);
    int8_t *q = reinterpret_cast<int8_t *>(e->payload.data());
    for (size_t r = 0; r < ranges; ++r) {
        const size_t lo = r * range;
        const size_t len = (lo + range <= n) ? range : n - lo;
        const float m = kernels::absmax(len, delta.data() + lo);
        // A degenerate range (all-zero, or non-finite magnitudes)
        // stores scale 0 and quantizes to zeros; error feedback
        // re-sends anything representable next round.
        if (!(m > 0.0f) || !std::isfinite(m)) {
            e->scales[r] = 0.0f;
            std::memset(q + lo, 0, len);
            continue;
        }
        e->scales[r] = m;
        kernels::quantize_i8(len, delta.data() + lo, 127.0f / m, q + lo);
    }
}

void
encode_fp16(const std::vector<float> &delta, EncodedDelta *e)
{
    const size_t n = delta.size();
    e->payload.resize(2 * n);
    kernels::fp16_encode(n, delta.data(),
                         reinterpret_cast<uint16_t *>(e->payload.data()));
}

void
encode_topk(const CompressionConfig &cfg, const std::vector<float> &delta,
            EncodedDelta *e)
{
    const size_t n = delta.size();
    const size_t k = topk_count(cfg.topk_fraction, n);
    e->k = static_cast<uint32_t>(k);

    std::vector<int32_t> idx(k);
    kernels::topk_select(n, delta.data(), k, idx.data());

    std::vector<float> vals(k);
    for (size_t i = 0; i < k; ++i)
        vals[i] = delta[static_cast<size_t>(idx[i])];
    std::vector<uint16_t> half(k);
    kernels::fp16_encode(k, vals.data(), half.data());

    // Ranged layout: per 65536-element range a u32 count, then count
    // ascending u16 local indices, then count binary16 values —
    // 4 bytes per kept element plus 4 per range.
    const size_t ranges = div_up(n, kTopKRangeLen);
    e->payload.resize(4 * ranges + 4 * k);
    uint8_t *p = e->payload.data();
    size_t cursor = 0;  // Next unconsumed selected index.
    for (size_t r = 0; r < ranges; ++r) {
        const size_t hi = (r + 1) * kTopKRangeLen;
        const size_t begin = cursor;
        while (cursor < k && static_cast<size_t>(idx[cursor]) < hi)
            ++cursor;
        const uint32_t count = static_cast<uint32_t>(cursor - begin);
        std::memcpy(p, &count, 4);
        p += 4;
        for (size_t i = begin; i < cursor; ++i) {
            const uint16_t local = static_cast<uint16_t>(
                static_cast<size_t>(idx[i]) - r * kTopKRangeLen);
            std::memcpy(p, &local, 2);
            p += 2;
        }
        std::memcpy(p, half.data() + begin, 2 * count);
        p += 2 * count;
    }
}

CodecStatus
decode_int8(const EncodedDelta &e, std::vector<float> *out)
{
    const size_t n = e.n;
    if (e.quant_range == 0 || e.payload.size() != n ||
        e.scales.size() != div_up(n, e.quant_range))
        return CodecStatus::BadLength;
    for (const float m : e.scales)
        if (!std::isfinite(m) || m < 0.0f)
            return CodecStatus::BadScale;
    out->resize(n);
    const int8_t *q = reinterpret_cast<const int8_t *>(e.payload.data());
    const size_t range = e.quant_range;
    for (size_t r = 0; r < e.scales.size(); ++r) {
        const size_t lo = r * range;
        const size_t len = (lo + range <= n) ? range : n - lo;
        kernels::dequantize_i8(len, q + lo, e.scales[r] / 127.0f,
                               out->data() + lo);
    }
    return CodecStatus::Ok;
}

CodecStatus
decode_fp16(const EncodedDelta &e, std::vector<float> *out)
{
    if (e.payload.size() != 2 * static_cast<size_t>(e.n) ||
        !e.scales.empty())
        return CodecStatus::BadLength;
    out->resize(e.n);
    kernels::fp16_decode(
        e.n, reinterpret_cast<const uint16_t *>(e.payload.data()),
        out->data());
    return CodecStatus::Ok;
}

CodecStatus
decode_topk(const EncodedDelta &e, std::vector<float> *out)
{
    const size_t n = e.n;
    const size_t k = e.k;
    if (k > n || !e.scales.empty())
        return CodecStatus::BadK;
    const size_t ranges = div_up(n, kTopKRangeLen);
    if (e.payload.size() != 4 * ranges + 4 * k)
        return CodecStatus::BadLength;

    // Validate the full structure before writing any output.
    const uint8_t *p = e.payload.data();
    size_t total = 0;
    for (size_t r = 0; r < ranges; ++r) {
        const size_t range_len =
            (r + 1) * kTopKRangeLen <= n ? kTopKRangeLen
                                         : n - r * kTopKRangeLen;
        // In bounds: the exact-size check above plus the incremental
        // total + count <= k bound keep every read inside payload.
        uint32_t count;
        std::memcpy(&count, p, 4);
        p += 4;
        if (count > range_len || total + count > k)
            return CodecStatus::BadK;
        uint16_t prev = 0;
        for (uint32_t i = 0; i < count; ++i) {
            uint16_t local;
            std::memcpy(&local, p + 2 * i, 2);
            if (local >= range_len || (i > 0 && local <= prev))
                return CodecStatus::BadIndex;
            prev = local;
        }
        p += 4 * static_cast<size_t>(count);  // Indices + values.
        total += count;
    }
    if (total != k)
        return CodecStatus::BadK;

    out->assign(n, 0.0f);
    p = e.payload.data();
    std::vector<uint16_t> halves;
    std::vector<float> vals;
    for (size_t r = 0; r < ranges; ++r) {
        uint32_t count;
        std::memcpy(&count, p, 4);
        p += 4;
        halves.resize(count);
        vals.resize(count);
        std::memcpy(halves.data(), p + 2 * static_cast<size_t>(count),
                    2 * static_cast<size_t>(count));
        kernels::fp16_decode(count, halves.data(), vals.data());
        float *base = out->data() + r * kTopKRangeLen;
        for (uint32_t i = 0; i < count; ++i) {
            uint16_t local;
            std::memcpy(&local, p + 2 * i, 2);
            base[local] = vals[i];
        }
        p += 4 * static_cast<size_t>(count);
    }
    return CodecStatus::Ok;
}

} // namespace

std::string
compression_name(Compression c)
{
    switch (c) {
      case Compression::None:
        return "none";
      case Compression::Fp16:
        return "fp16";
      case Compression::Int8:
        return "int8";
      case Compression::TopK:
        return "topk";
    }
    return "unknown";
}

bool
parse_compression(const std::string &name, Compression *out)
{
    if (name == "none")
        *out = Compression::None;
    else if (name == "fp16")
        *out = Compression::Fp16;
    else if (name == "int8")
        *out = Compression::Int8;
    else if (name == "topk")
        *out = Compression::TopK;
    else
        return false;
    return true;
}

void
CompressionConfig::validate(const char *who) const
{
    const std::string w = who;
    if (mode == Compression::Int8 && quant_range < 1)
        throw std::invalid_argument(
            w + ".quant_range must be >= 1 for int8 compression (got " +
            std::to_string(quant_range) + ")");
    if (mode == Compression::TopK &&
        !(topk_fraction > 0.0 && topk_fraction <= 1.0))
        throw std::invalid_argument(
            w + ".topk_fraction must be in (0, 1] for topk compression "
                "(got " +
            std::to_string(topk_fraction) + ")");
}

const char *
codec_status_name(CodecStatus s)
{
    switch (s) {
      case CodecStatus::Ok:
        return "ok";
      case CodecStatus::BadMode:
        return "bad-mode";
      case CodecStatus::BadLength:
        return "bad-length";
      case CodecStatus::BadScale:
        return "bad-scale";
      case CodecStatus::BadK:
        return "bad-k";
      case CodecStatus::BadIndex:
        return "bad-index";
    }
    return "unknown";
}

EncodedDelta
encode_delta(const CompressionConfig &cfg, std::vector<float> delta)
{
    EncodedDelta e;
    e.mode = cfg.mode;
    e.n = static_cast<uint32_t>(delta.size());
    switch (cfg.mode) {
      case Compression::None:
        e.dense = std::move(delta);
        break;
      case Compression::Fp16:
        encode_fp16(delta, &e);
        break;
      case Compression::Int8:
        encode_int8(cfg, delta, &e);
        break;
      case Compression::TopK:
        encode_topk(cfg, delta, &e);
        break;
    }
    return e;
}

CodecStatus
decode_delta(const EncodedDelta &e, std::vector<float> *out)
{
    switch (e.mode) {
      case Compression::None:
        if (e.dense.size() != e.n)
            return CodecStatus::BadLength;
        *out = e.dense;
        return CodecStatus::Ok;
      case Compression::Fp16:
        return decode_fp16(e, out);
      case Compression::Int8:
        return decode_int8(e, out);
      case Compression::TopK:
        return decode_topk(e, out);
    }
    return CodecStatus::BadMode;
}

size_t
encoded_payload_bytes(const EncodedDelta &e)
{
    return 4 * e.scales.size() + e.payload.size() + 4 * e.dense.size();
}

size_t
encoded_delta_bytes(const CompressionConfig &cfg, size_t n)
{
    switch (cfg.mode) {
      case Compression::None:
        return 4 * n;
      case Compression::Fp16:
        return 2 * n;
      case Compression::Int8:
        return n + 4 * div_up(n, static_cast<size_t>(cfg.quant_range));
      case Compression::TopK:
        return 4 * div_up(n, kTopKRangeLen) +
            4 * topk_count(cfg.topk_fraction, n);
    }
    return 4 * n;
}

EncodedDelta
ErrorFeedback::encode(const CompressionConfig &cfg, int device,
                      std::vector<float> delta,
                      std::vector<float> *decoded)
{
    if (!cfg.enabled()) {
        if (decoded != nullptr)
            *decoded = delta;
        return encode_delta(cfg, std::move(delta));
    }

    // Fold the carried residual in. The residual is moved out under the
    // lock (one in-flight encode per device by runtime contract), so
    // the O(n) codec work runs unlocked.
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = residual_.find(device);
        if (it != residual_.end() && it->second.size() == delta.size())
            kernels::vadd(delta.size(), it->second.data(), delta.data());
    }

    EncodedDelta e = encode_delta(cfg, delta);  // Copies: delta lives on.

    // New residual: folded delta minus what the receiver reconstructs.
    std::vector<float> rec;
    decode_delta(e, &rec);
    kernels::vsub(delta.size(), rec.data(), delta.data());
    if (decoded != nullptr)
        *decoded = std::move(rec);
    {
        std::lock_guard<std::mutex> lock(mu_);
        residual_[device] = std::move(delta);
    }
    return e;
}

size_t
ErrorFeedback::compress_update(const CompressionConfig &cfg, int device,
                               const float *pulled,
                               std::vector<float> &weights)
{
    const size_t n = weights.size();
    if (!cfg.enabled())
        return 4 * n;  // Raw f32 payload; weights untouched, bit-for-bit.

    // delta = weights - pulled, under error feedback.
    std::vector<float> delta = weights;
    kernels::vsub(n, pulled, delta.data());
    std::vector<float> decoded;
    const EncodedDelta e = encode(cfg, device, std::move(delta), &decoded);

    // The receiver's view: pulled + decoded delta.
    weights.assign(pulled, pulled + n);
    kernels::vadd(n, decoded.data(), weights.data());
    return encoded_payload_bytes(e);
}

void
ErrorFeedback::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    residual_.clear();
}

size_t
ErrorFeedback::tracked_devices() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return residual_.size();
}

std::vector<float>
ErrorFeedback::residual(int device) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = residual_.find(device);
    return it != residual_.end() ? it->second : std::vector<float>{};
}

} // namespace autofl
