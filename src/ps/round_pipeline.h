/**
 * @file
 * RoundPipeline: the streaming round scheduler — out-of-order execution,
 * in-order commit.
 *
 * The classic runtime drains the executor at every round barrier, so a
 * single straggler idles every worker. The pipeline instead keeps up to
 * PsConfig::pipeline_depth rounds in flight: round r+1's jobs are
 * submitted to the executor as soon as round r's first commit publishes
 * a store snapshot, so workers fill the straggler's shadow with the
 * next round's training while the aggregator retires commits in strict
 * round order.
 *
 * Determinism contract. Every scheduling decision is *structural* — a
 * function of the round layout, never of thread timing:
 *
 * - Every job of round r pulls the same published snapshot, taken at
 *   the round's launch epoch E_r = base_{r-1} + 1 (the previous
 *   round's first commit). Pulls wait for that exact epoch.
 * - Batches are sequence-contiguous and commits retire in (round,
 *   batch) order (see AsyncAggregator), so the store content at every
 *   epoch is a pure function of the seed.
 * - Results are delivered through a reorder buffer in round order.
 *
 * A corollary of the first-commit trigger: when round r launches,
 * every round before r-1 has fully committed, so training overlap
 * structurally spans two rounds — the previous round's straggler tail
 * and the current round. PsConfig::pipeline_depth > 1 is what turns
 * streaming on; beyond that it bounds how far results (and the
 * driver's observations) may lag behind submissions, not how many
 * rounds train at once.
 *
 * Hence pipeline_depth=1 with SemiAsync(S=0) is bit-for-bit the
 * synchronous path, and two pipelined runs at any depth with the same
 * seed produce identical weights — the property tests enforce both.
 *
 * Evaluation rides the same snapshots: when a round retires, its final
 * snapshot is handed to a concurrent eval pool; accuracy lands in the
 * round's result without ever blocking training.
 */
#ifndef AUTOFL_PS_ROUND_PIPELINE_H
#define AUTOFL_PS_ROUND_PIPELINE_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "ps/async_aggregator.h"
#include "ps/executor.h"
#include "ps/ps_config.h"
#include "ps/sharded_store.h"

namespace autofl {

struct PsRoundJob;

/** Streaming round scheduler over the executor + aggregator + store. */
class RoundPipeline
{
  public:
    /** Runs one client job against the given pulled weights. */
    using TrainFn = std::function<LocalUpdate(
        int worker, const PsRoundJob &job,
        const std::vector<float> &weights, uint64_t round)>;

    /**
     * Scores an epoch-tagged snapshot (test accuracy). The serving
     * plane wraps the snapshot in a SnapshotHandle, so concurrent eval
     * workers ride the same versioned consumption path as online
     * inference (see serve/ModelService).
     */
    using EvalFn = std::function<double(const StoreSnapshot &snap)>;

    /**
     * Receives a retired round's final snapshot — the persistence
     * hook. Invoked in retirement (= round) order with the pipeline
     * lock released, sharing the pipeline's own history snapshot
     * zero-copy; the receiver (store::CheckpointWriter) must only
     * enqueue, never block on IO.
     */
    using CheckpointFn = std::function<void(
        uint64_t round, uint64_t final_epoch,
        std::shared_ptr<const std::vector<float>> weights)>;

    /**
     * @param exec Training executor (jobs are launched onto it in round
     *        order — the FIFO queue is what lets blocked commit waves
     *        always find their predecessor jobs already running).
     * @param eval_exec Concurrent eval pool; null disables evaluation.
     * @param agg Aggregator; the pipeline installs its hooks.
     * @param cfg Pipeline depth and latency knobs.
     * @param train Job runner (pull -> local SGD), thread-safe per
     *        worker index.
     */
    RoundPipeline(PsExecutor &exec, PsExecutor *eval_exec,
                  AsyncAggregator &agg, const ShardedStore &store,
                  const PsConfig &cfg, TrainFn train);

    /** Drains all in-flight rounds. */
    ~RoundPipeline();

    RoundPipeline(const RoundPipeline &) = delete;
    RoundPipeline &operator=(const RoundPipeline &) = delete;

    /** Install the snapshot scorer (called before the first submit). */
    void set_eval_fn(EvalFn fn);

    /** Install the persistence hook (called before the first submit). */
    void set_checkpoint_hook(CheckpointFn fn);

    /**
     * Enqueue one round. Returns immediately; jobs launch once the
     * round's pull epoch publishes, and @p cb fires (from a pipeline
     * thread) once the round has retired and — when @p evaluate — its
     * snapshot is scored (callers that discard the accuracy pass false
     * and skip the test-set inference). Not thread-safe against
     * itself: one driver thread submits, in increasing round order.
     */
    void submit(std::vector<PsRoundJob> jobs, uint64_t round,
                PsRoundCallback cb, bool evaluate = true);

    /** Block until every submitted round's callback has returned. */
    void drain();

  private:
    struct Entry
    {
        uint64_t round = 0;
        std::vector<PsRoundJob> jobs;
        PsRoundCallback cb;
        RoundPlan plan;
        uint64_t pull_epoch = 0;
        bool want_eval = true;
        bool launched = false;
        bool retired = false;
        bool done = false;
        PsRoundStats stats;
        double accuracy = -1.0;
        uint64_t final_epoch = 0;
    };

    PsExecutor &exec_;
    PsExecutor *eval_exec_;
    AsyncAggregator &agg_;
    PsConfig cfg_;
    TrainFn train_;
    EvalFn eval_fn_;
    CheckpointFn checkpoint_fn_;

    mutable std::mutex pmu_;
    std::condition_variable drain_cv_;
    std::deque<std::shared_ptr<Entry>> order_;  ///< Undelivered, in order.
    std::map<uint64_t, std::shared_ptr<const std::vector<float>>> history_;
    RoundPlan last_plan_;   ///< Most recently submitted round's plan.
    size_t submitted_ = 0;
    bool delivering_ = false;

    void on_snapshot(const StoreSnapshot &snap);
    void on_retired(uint64_t round, const PsRoundStats &stats,
                    uint64_t final_epoch);
    void try_launch_locked();
    void launch_locked(Entry &e);
    void finalize(uint64_t round, double accuracy);
    void deliver_ready(std::unique_lock<std::mutex> &lk);
    void prune_history_locked();

    /**
     * The structural launch epoch of the *next* submission: the last
     * submitted round's first commit (0 before any submission). Also
     * the history-pruning floor.
     */
    uint64_t pull_epoch_for_locked() const;
};

} // namespace autofl

#endif // AUTOFL_PS_ROUND_PIPELINE_H
