/**
 * @file
 * Fixed thread pool with a FIFO task queue, used by the parameter-server
 * runtime to run client local-training jobs concurrently. Jobs receive
 * their worker index so callers can keep per-worker scratch state (one
 * LocalTrainer per worker) without locking.
 */
#ifndef AUTOFL_PS_EXECUTOR_H
#define AUTOFL_PS_EXECUTOR_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace autofl {

/** Thread pool executing submitted jobs on a fixed set of workers. */
class PsExecutor
{
  public:
    /** A job; the argument is the executing worker's index. */
    using Job = std::function<void(int worker)>;

    /** @param threads Pool size; clamped to at least 1. */
    explicit PsExecutor(int threads);

    /** Drains the queue, then joins every worker. */
    ~PsExecutor();

    PsExecutor(const PsExecutor &) = delete;
    PsExecutor &operator=(const PsExecutor &) = delete;

    /** Pool size. */
    int threads() const { return static_cast<int>(workers_.size()); }

    /** Enqueue a job; runs on the first free worker, FIFO order. */
    void submit(Job job);

    /** Block until the queue is empty and no job is running. */
    void wait_idle();

    /** Jobs finished since construction. */
    size_t completed() const;

  private:
    std::vector<std::thread> workers_;
    std::deque<Job> queue_;
    mutable std::mutex mu_;
    std::condition_variable work_cv_;   ///< Queue non-empty or stopping.
    std::condition_variable idle_cv_;   ///< Queue empty and none active.
    size_t active_ = 0;
    size_t completed_ = 0;
    bool stop_ = false;

    void run(int worker);
};

} // namespace autofl

#endif // AUTOFL_PS_EXECUTOR_H
