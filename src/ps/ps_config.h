/**
 * @file
 * Configuration knobs and round statistics for the parameter-server
 * runtime (src/ps/). Kept free of other fl/ includes so fl/system.h can
 * embed a PsConfig without an include cycle.
 */
#ifndef AUTOFL_PS_PS_CONFIG_H
#define AUTOFL_PS_PS_CONFIG_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/net_config.h"
#include "ps/compression.h"

namespace autofl {

/**
 * How the server consumes client updates.
 *
 * - Sync: the classic round barrier — every included participant trains
 *   on the same broadcast weights and one aggregation commits them all.
 * - SemiAsync: bounded-staleness pipeline. The aggregator commits a
 *   partial batch as soon as ceil(K / (S+1)) updates are buffered;
 *   updates observed staler than the bound S are evicted (the
 *   parameter-server re-expression of FedAvg's straggler drop). S = 0
 *   degenerates to Sync bit-for-bit under a fixed seed.
 * - Async: every update commits on arrival with no staleness bound,
 *   damped by the staleness factor and the async mixing rate.
 */
enum class SyncMode { Sync, SemiAsync, Async };

/** Display name: "Sync", "SemiAsync" or "Async". */
std::string sync_mode_name(SyncMode m);

/** Parameter-server runtime configuration. */
struct PsConfig
{
    SyncMode mode = SyncMode::Sync;

    /** Lock stripes in the sharded model store. */
    int shards = 8;

    /**
     * Staleness bound S (SemiAsync only): an update pulled at clock t is
     * evicted when committed at clock > t + S. 0 reproduces synchronous
     * FedAvg exactly.
     */
    int staleness_bound = 1;

    /** Staleness damping exponent: updates weigh 1/(1+s)^alpha. */
    double staleness_alpha = 0.5;

    /** Extra damping of each single-update commit in Async mode. */
    double async_mix = 0.25;

    /** Executor thread-pool size; 0 inherits FlSystemConfig::threads. */
    int executor_threads = 0;

    /**
     * Streaming switch. 1 (the default) drains every round at its
     * barrier — the classic runtime. Above 1, round t+1's jobs are
     * launched as soon as round t's first commit publishes a store
     * snapshot, so training structurally overlaps two rounds (the
     * previous round's straggler tail plus the current round) while
     * commits retire in round order, keeping the result stream
     * deterministic (see RoundPipeline). Values above 2 do not deepen
     * training overlap; in the experiment harness they bound how many
     * rounds the driver may submit ahead of the results it has
     * observed.
     */
    int pipeline_depth = 1;

    /**
     * Concurrent evaluation workers scoring retired-round snapshots
     * (pipelined mode only). Evaluation overlaps later rounds' training;
     * results are still delivered in round order.
     */
    int eval_workers = 2;

    /**
     * Simulated per-device latency (seconds) injected into each local
     * training job, scaled 0.5x-2x by device id. 0 disables. Used by the
     * throughput bench so rounds/sec measures the runtime's ability to
     * overlap device latency rather than raw single-core arithmetic.
     */
    double sim_device_latency_s = 0.0;

    /**
     * The job's simulated latency: base scaled by a deterministic
     * 0.5x-2x per-device heterogeneity. One definition shared by the
     * Sync and ps paths so bench rows compare runtimes, not sleep
     * schedules.
     */
    double sim_latency_for(int device_id) const
    {
        return sim_device_latency_s * (0.5 + 0.5 * (device_id % 4));
    }

    /**
     * Distributed transport (src/net/). net.listen == "" keeps the
     * classic in-process runtime; "loopback" routes rounds through
     * LoopbackVan endpoints, and a socket scheme runs real worker
     * processes. See NetConfig.
     */
    NetConfig net;

    /**
     * Push-path update compression (see ps/compression.h). Client
     * pushes carry encoded deltas instead of raw f32 weights — over
     * the cluster as PushDelta wire messages, in-process as an
     * encode/decode round trip before the aggregator — with per-client
     * error feedback. None keeps the bit-for-bit uncompressed runtime.
     * Compressed modes require the ps runtime (mode != Sync) at
     * pipeline_depth 1: the residual sequence is deterministic only
     * when a device trains at most once concurrently.
     */
    CompressionConfig compression;

    /**
     * Snapshot persistence (src/store/). Non-empty: the runtime owns a
     * store::CheckpointWriter and durably writes the post-round model
     * (temp + fsync + atomic rename; "latest.snap" always names a
     * complete artifact) without ever blocking training. Empty (the
     * default) disables checkpointing.
     */
    std::string snapshot_dir;

    /**
     * Checkpoint cadence: persist after every Nth retired round's
     * commits (for single-batch rounds — Sync, SemiAsync(S=0) — one
     * round is one store epoch, so this is snapshot-every-N-epochs).
     * 1 checkpoints every round. Only meaningful with snapshot_dir.
     */
    int snapshot_every_epochs = 1;

    /**
     * Checkpoint retention: keep the newest K "model-r<N>.snap"
     * artifacts (plus any registry-pinned rounds) and delete older
     * ones, counting deletions in the writer's stats. 0 (the default)
     * keeps everything. Only meaningful with snapshot_dir.
     */
    int snapshot_keep_last = 0;

    /**
     * Rounds retention must never delete — the registry's pinned
     * versions. FlSystem fills this from the registry manifest when
     * publishing through one; set by hand otherwise. Ignored when
     * snapshot_keep_last == 0.
     */
    std::vector<uint64_t> snapshot_pinned;

    /**
     * Path of an artifact to restore before training starts (the
     * crash-resume flag). The run continues from the artifact's round:
     * for single-batch rounds, resuming at round R and re-running is
     * bit-identical to the uninterrupted run — the same determinism
     * contract as SemiAsync(S=0) == Sync. With S > 0 the resumed run
     * is a valid continuation but not bit-exact (a final-state
     * artifact cannot reproduce an intra-round first-commit pull).
     * Empty disables. Incompatible with push compression (per-client
     * error-feedback residuals are not persisted).
     */
    std::string resume_from;

    /** Whether the round just retired is a checkpoint point. */
    bool snapshot_due(uint64_t round) const
    {
        return !snapshot_dir.empty() &&
               (round + 1) %
                       static_cast<uint64_t>(snapshot_every_epochs) ==
                   0;
    }

    /**
     * Validate the knobs, throwing std::invalid_argument with an
     * actionable message. @p who names the owning config in messages
     * (e.g. "FlSystemConfig::ps").
     */
    void validate(const char *who) const;
};

/** Outcome statistics of one training round under the ps runtime. */
struct PsRoundStats
{
    int pushed = 0;    ///< Updates handed to the aggregator.
    int applied = 0;   ///< Updates folded into the global model.
    int evicted = 0;   ///< Updates dropped for exceeding the bound.
    int commits = 0;   ///< Aggregation commits this round.
    double mean_staleness = 0.0;  ///< Mean staleness of applied updates.
    int max_staleness = 0;        ///< Max staleness of applied updates.
};

/** One retired round's result, delivered by the streaming pipeline. */
struct PsRoundResult
{
    uint64_t round = 0;
    PsRoundStats stats;

    /**
     * Test accuracy of the store snapshot taken right after the round's
     * last commit, scored by a concurrent eval worker; -1 when no eval
     * function is configured.
     */
    double accuracy = -1.0;

    /** Store epoch (commit clock) after the round's last commit. */
    uint64_t final_epoch = 0;
};

/** Round-ordered completion callback for pipelined round submission. */
using PsRoundCallback = std::function<void(const PsRoundResult &)>;

} // namespace autofl

#endif // AUTOFL_PS_PS_CONFIG_H
