#include "sharded_store.h"

#include <algorithm>
#include <cassert>

namespace autofl {

ShardedStore::ShardedStore(std::vector<float> init, int num_shards)
    : data_(std::move(init)),
      num_shards_(std::clamp<int>(num_shards, 1,
                                  std::max<int>(1, static_cast<int>(
                                                       data_.size())))),
      base_(data_.size() / static_cast<size_t>(num_shards_)),
      rem_(data_.size() % static_cast<size_t>(num_shards_)),
      shards_(std::make_unique<Shard[]>(static_cast<size_t>(num_shards_)))
{
}

size_t
ShardedStore::shard_begin(int s) const
{
    assert(s >= 0 && s < num_shards_);
    const size_t u = static_cast<size_t>(s);
    return u * base_ + std::min(u, rem_);
}

size_t
ShardedStore::shard_end(int s) const
{
    const size_t u = static_cast<size_t>(s);
    return shard_begin(s) + base_ + (u < rem_ ? 1 : 0);
}

int
ShardedStore::shard_of(size_t index) const
{
    assert(index < dim());
    // The first rem_ shards hold base_+1 entries each.
    const size_t fat = rem_ * (base_ + 1);
    if (index < fat)
        return static_cast<int>(index / (base_ + 1));
    return static_cast<int>(rem_ + (index - fat) / base_);
}

uint64_t
ShardedStore::shard_version(int s) const
{
    assert(s >= 0 && s < num_shards_);
    return shards_[static_cast<size_t>(s)].version.load(
        std::memory_order_acquire);
}

std::vector<uint64_t>
ShardedStore::versions() const
{
    std::vector<uint64_t> out(static_cast<size_t>(num_shards_));
    for (int s = 0; s < num_shards_; ++s)
        out[static_cast<size_t>(s)] = shard_version(s);
    return out;
}

std::vector<float>
ShardedStore::read() const
{
    std::vector<float> out(data_.size());
    for (int s = 0; s < num_shards_; ++s) {
        std::lock_guard<std::mutex> lk(shards_[static_cast<size_t>(s)].mu);
        std::copy(data_.begin() + static_cast<ptrdiff_t>(shard_begin(s)),
                  data_.begin() + static_cast<ptrdiff_t>(shard_end(s)),
                  out.begin() + static_cast<ptrdiff_t>(shard_begin(s)));
    }
    return out;
}

void
ShardedStore::write(const std::vector<float> &w)
{
    assert(w.size() == data_.size());
    for (int s = 0; s < num_shards_; ++s) {
        Shard &sh = shards_[static_cast<size_t>(s)];
        std::lock_guard<std::mutex> lk(sh.mu);
        std::copy(w.begin() + static_cast<ptrdiff_t>(shard_begin(s)),
                  w.begin() + static_cast<ptrdiff_t>(shard_end(s)),
                  data_.begin() + static_cast<ptrdiff_t>(shard_begin(s)));
        sh.version.fetch_add(1, std::memory_order_acq_rel);
    }
}

void
ShardedStore::apply_delta(const std::vector<float> &delta, double scale)
{
    assert(delta.size() == data_.size());
    for (int s = 0; s < num_shards_; ++s) {
        Shard &sh = shards_[static_cast<size_t>(s)];
        std::lock_guard<std::mutex> lk(sh.mu);
        for (size_t i = shard_begin(s); i < shard_end(s); ++i)
            data_[i] = static_cast<float>(data_[i] + scale * delta[i]);
        sh.version.fetch_add(1, std::memory_order_acq_rel);
    }
}

} // namespace autofl
