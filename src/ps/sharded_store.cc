#include "sharded_store.h"

#include <algorithm>
#include <cassert>

namespace autofl {

ShardedStore::ShardedStore(std::vector<float> init, int num_shards)
    : data_(std::move(init)),
      num_shards_(std::clamp<int>(num_shards, 1,
                                  std::max<int>(1, static_cast<int>(
                                                       data_.size())))),
      base_(data_.size() / static_cast<size_t>(num_shards_)),
      rem_(data_.size() % static_cast<size_t>(num_shards_)),
      shards_(std::make_unique<Shard[]>(static_cast<size_t>(num_shards_)))
{
    // Epoch 0: the initial weights, so pulls and eval work before any
    // commit has been published.
    latest_ = StoreSnapshot{
        0, std::make_shared<const std::vector<float>>(data_)};
}

size_t
ShardedStore::shard_begin(int s) const
{
    assert(s >= 0 && s < num_shards_);
    const size_t u = static_cast<size_t>(s);
    return u * base_ + std::min(u, rem_);
}

size_t
ShardedStore::shard_end(int s) const
{
    const size_t u = static_cast<size_t>(s);
    return shard_begin(s) + base_ + (u < rem_ ? 1 : 0);
}

int
ShardedStore::shard_of(size_t index) const
{
    assert(index < dim());
    // The first rem_ shards hold base_+1 entries each.
    const size_t fat = rem_ * (base_ + 1);
    if (index < fat)
        return static_cast<int>(index / (base_ + 1));
    return static_cast<int>(rem_ + (index - fat) / base_);
}

uint64_t
ShardedStore::shard_version(int s) const
{
    assert(s >= 0 && s < num_shards_);
    return shards_[static_cast<size_t>(s)].version.load(
        std::memory_order_acquire);
}

std::vector<uint64_t>
ShardedStore::versions() const
{
    std::vector<uint64_t> out(static_cast<size_t>(num_shards_));
    for (int s = 0; s < num_shards_; ++s)
        out[static_cast<size_t>(s)] = shard_version(s);
    return out;
}

std::vector<float>
ShardedStore::read() const
{
    std::vector<float> out(data_.size());
    for (int s = 0; s < num_shards_; ++s) {
        std::lock_guard<std::mutex> lk(shards_[static_cast<size_t>(s)].mu);
        std::copy(data_.begin() + static_cast<ptrdiff_t>(shard_begin(s)),
                  data_.begin() + static_cast<ptrdiff_t>(shard_end(s)),
                  out.begin() + static_cast<ptrdiff_t>(shard_begin(s)));
    }
    return out;
}

void
ShardedStore::write(const std::vector<float> &w)
{
    assert(w.size() == data_.size());
    for (int s = 0; s < num_shards_; ++s) {
        Shard &sh = shards_[static_cast<size_t>(s)];
        std::lock_guard<std::mutex> lk(sh.mu);
        std::copy(w.begin() + static_cast<ptrdiff_t>(shard_begin(s)),
                  w.begin() + static_cast<ptrdiff_t>(shard_end(s)),
                  data_.begin() + static_cast<ptrdiff_t>(shard_begin(s)));
        sh.version.fetch_add(1, std::memory_order_acq_rel);
        sh.cv.notify_all();
    }
}

void
ShardedStore::apply_delta(const std::vector<float> &delta, double scale)
{
    assert(delta.size() == data_.size());
    for (int s = 0; s < num_shards_; ++s) {
        Shard &sh = shards_[static_cast<size_t>(s)];
        std::lock_guard<std::mutex> lk(sh.mu);
        for (size_t i = shard_begin(s); i < shard_end(s); ++i)
            data_[i] = static_cast<float>(data_[i] + scale * delta[i]);
        sh.version.fetch_add(1, std::memory_order_acq_rel);
        sh.cv.notify_all();
    }
}

void
ShardedStore::update_shard_in_turn(int s, uint64_t turn, const RangeFn &fn,
                                   std::vector<float> *snap_out)
{
    assert(s >= 0 && s < num_shards_);
    Shard &sh = shards_[static_cast<size_t>(s)];
    std::unique_lock<std::mutex> lk(sh.mu);
    sh.cv.wait(lk, [&] {
        return sh.version.load(std::memory_order_acquire) == turn;
    });
    const size_t begin = shard_begin(s);
    const size_t end = shard_end(s);
    if (fn)
        fn(data_.data(), begin, end);
    if (snap_out) {
        assert(snap_out->size() == data_.size());
        std::copy(data_.begin() + static_cast<ptrdiff_t>(begin),
                  data_.begin() + static_cast<ptrdiff_t>(end),
                  snap_out->begin() + static_cast<ptrdiff_t>(begin));
    }
    sh.version.fetch_add(1, std::memory_order_acq_rel);
    sh.cv.notify_all();
}

StoreSnapshot
ShardedStore::set_latest_snapshot(
    uint64_t epoch, std::shared_ptr<const std::vector<float>> weights)
{
    std::lock_guard<std::mutex> lk(snap_mu_);
    if (epoch > latest_.epoch)
        latest_ = StoreSnapshot{epoch, std::move(weights)};
    return latest_;
}

StoreSnapshot
ShardedStore::latest_snapshot() const
{
    std::lock_guard<std::mutex> lk(snap_mu_);
    return latest_;
}

} // namespace autofl
