/**
 * @file
 * Lock-striped global model store. The flat weight vector is partitioned
 * into contiguous shards, each guarded by its own mutex and carrying its
 * own version counter (number of writes it has absorbed). Readers take
 * one shard lock at a time, so snapshots are per-shard consistent and
 * concurrent commits never serialize behind a single global lock.
 */
#ifndef AUTOFL_PS_SHARDED_STORE_H
#define AUTOFL_PS_SHARDED_STORE_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace autofl {

/**
 * Immutable snapshot of the full weight vector at a commit epoch.
 * Reading one is a shared_ptr copy — no locks, no data copy — so any
 * number of eval workers can score the same epoch concurrently while
 * commits keep mutating the live store.
 */
struct StoreSnapshot
{
    uint64_t epoch = 0;
    std::shared_ptr<const std::vector<float>> weights;
};

/** Sharded, versioned storage for the flat global weight vector. */
class ShardedStore
{
  public:
    /**
     * @param init Initial weights; fixes dim() for the store's lifetime.
     * @param num_shards Lock stripes; clamped to [1, dim()] (at least 1
     *        even for an empty vector).
     */
    ShardedStore(std::vector<float> init, int num_shards);

    /** Weight-vector length. */
    size_t dim() const { return data_.size(); }

    /** Number of lock stripes. */
    int num_shards() const { return num_shards_; }

    /** First flat index of shard @p s. */
    size_t shard_begin(int s) const;

    /** One past the last flat index of shard @p s. */
    size_t shard_end(int s) const;

    /** Shard holding flat index @p index. */
    int shard_of(size_t index) const;

    /** Writes shard @p s has absorbed. */
    uint64_t shard_version(int s) const;

    /** All shard versions (one atomic read each). */
    std::vector<uint64_t> versions() const;

    /**
     * Copy out the full vector, locking shards one at a time. Concurrent
     * writers make the copy per-shard (not globally) consistent — the
     * tolerated inconsistency that bounded-staleness aggregation absorbs.
     */
    std::vector<float> read() const;

    /** Replace the full vector; bumps every shard version. */
    void write(const std::vector<float> &w);

    /** data[i] += scale * delta[i], shard by shard; bumps versions. */
    void apply_delta(const std::vector<float> &delta, double scale);

    /** Mutator over [begin, end) of the flat vector (base pointer). */
    using RangeFn = std::function<void(float *data, size_t begin,
                                       size_t end)>;

    /**
     * Striped, turn-ordered commit primitive. Blocks until shard @p s
     * has absorbed exactly @p turn writes, then applies @p fn to its
     * range under the shard lock, optionally copies the result into
     * @p snap_out, bumps the version and wakes the next commit's wave.
     *
     * Two commits with consecutive turns therefore pipeline through the
     * stripes: commit turn+1 writes shard 0 while commit turn is still
     * writing shard 1 — disjoint shards proceed in parallel, yet every
     * shard sees commits in exactly clock order.
     */
    void update_shard_in_turn(int s, uint64_t turn, const RangeFn &fn,
                              std::vector<float> *snap_out);

    /**
     * Publish @p weights as the snapshot for @p epoch. Stale epochs
     * (<= the published one) are ignored, so late-finishing waves can
     * never roll the snapshot back. Returns the current latest.
     */
    StoreSnapshot set_latest_snapshot(
        uint64_t epoch, std::shared_ptr<const std::vector<float>> weights);

    /** Latest published snapshot (epoch 0 == the initial weights). */
    StoreSnapshot latest_snapshot() const;

  private:
    struct Shard
    {
        mutable std::mutex mu;
        std::condition_variable cv;  ///< Signals a version bump.
        std::atomic<uint64_t> version{0};
    };

    std::vector<float> data_;
    int num_shards_;
    size_t base_;  ///< Minimum shard size; the first rem_ shards get +1.
    size_t rem_;
    std::unique_ptr<Shard[]> shards_;

    mutable std::mutex snap_mu_;
    StoreSnapshot latest_;
};

} // namespace autofl

#endif // AUTOFL_PS_SHARDED_STORE_H
