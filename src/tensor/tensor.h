/**
 * @file
 * Minimal dense float32 tensor used by the from-scratch NN library.
 *
 * The tensor is a contiguous row-major buffer plus a shape. It is
 * intentionally small: the FL training stack needs batched 2-D and 4-D
 * arrays, elementwise arithmetic, and matrix multiplication — nothing
 * more. Storage is 64-byte aligned (cache line / full AVX-512 vector)
 * and all compute routes through the runtime-dispatched kernels in
 * src/kernels/, which the layers in src/nn/ call directly for their
 * fused forward/backward passes.
 */
#ifndef AUTOFL_TENSOR_TENSOR_H
#define AUTOFL_TENSOR_TENSOR_H

#include <cassert>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

namespace autofl {

/** Minimal C++17 allocator handing out @p Align -byte aligned blocks. */
template <typename T, size_t Align>
struct AlignedAllocator
{
    using value_type = T;

    AlignedAllocator() = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Align> &) noexcept
    {
    }

    T *
    allocate(size_t n)
    {
        if (n == 0)
            return nullptr;
        void *p = ::operator new(n * sizeof(T), std::align_val_t(Align));
        return static_cast<T *>(p);
    }

    void
    deallocate(T *p, size_t) noexcept
    {
        ::operator delete(p, std::align_val_t(Align));
    }

    template <typename U>
    struct rebind
    {
        using other = AlignedAllocator<U, Align>;
    };

    friend bool
    operator==(const AlignedAllocator &, const AlignedAllocator &)
    {
        return true;
    }
    friend bool
    operator!=(const AlignedAllocator &, const AlignedAllocator &)
    {
        return false;
    }
};

/** 64-byte-aligned float buffer backing Tensor storage. */
using AlignedFloatVec = std::vector<float, AlignedAllocator<float, 64>>;

/** Dense row-major float tensor with up to 4 dimensions in practice. */
class Tensor
{
  public:
    /** Empty tensor (rank 0, no elements). */
    Tensor() = default;

    /** Zero-initialized tensor with the given shape. */
    explicit Tensor(std::vector<int> shape);

    /** Tensor with the given shape and fill value. */
    Tensor(std::vector<int> shape, float fill);

    /** Tensor copying the given flat data (size must match shape). */
    Tensor(std::vector<int> shape, const std::vector<float> &data);

    /** Tensor adopting an already-aligned buffer (size must match). */
    Tensor(std::vector<int> shape, AlignedFloatVec data);

    /** Shape vector, e.g. {batch, channels, h, w}. */
    const std::vector<int> &shape() const { return shape_; }

    /** Rank (number of dimensions). */
    int rank() const { return static_cast<int>(shape_.size()); }

    /** Size of dimension @p d (supports negative indices from the back). */
    int dim(int d) const;

    /** Total element count. */
    size_t size() const { return data_.size(); }

    /** True when the tensor holds no elements. */
    bool empty() const { return data_.empty(); }

    /** Flat element access. */
    float &operator[](size_t i) { return data_[i]; }
    float operator[](size_t i) const { return data_[i]; }

    /** 2-D access for {rows, cols} tensors. */
    float &at2(int r, int c);
    float at2(int r, int c) const;

    /** 3-D access for {d0, d1, d2} tensors. */
    float &at3(int a, int b, int c);
    float at3(int a, int b, int c) const;

    /** 4-D access for {n, c, h, w} tensors. */
    float &at4(int n, int c, int h, int w);
    float at4(int n, int c, int h, int w) const;

    /** Raw data access. */
    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }
    AlignedFloatVec &vec() { return data_; }
    const AlignedFloatVec &vec() const { return data_; }

    /** Set every element to @p v. */
    void fill(float v);

    /** Reinterpret with a new shape of identical element count. */
    Tensor reshaped(std::vector<int> new_shape) const &;

    /** Rvalue overload: moves the buffer instead of copying it. */
    Tensor reshaped(std::vector<int> new_shape) &&;

    /** Elementwise in-place operations. */
    Tensor &operator+=(const Tensor &other);
    Tensor &operator-=(const Tensor &other);
    Tensor &operator*=(float s);

    /** Elementwise binary operators (shapes must match). */
    Tensor operator+(const Tensor &other) const;
    Tensor operator-(const Tensor &other) const;
    Tensor operator*(float s) const;

    /** Sum of all elements. */
    double sum() const;

    /** Squared L2 norm of all elements. */
    double squared_norm() const;

    /** Human-readable shape string like "[2, 3, 4]". */
    std::string shape_str() const;

    /** Number of elements implied by a shape. */
    static size_t shape_size(const std::vector<int> &shape);

  private:
    std::vector<int> shape_;
    AlignedFloatVec data_;
};

/**
 * Matrix multiply: a {m, k} x b {k, n} -> {m, n}, via the
 * runtime-dispatched kernels::gemm (blocked SIMD where the CPU has it;
 * the scalar variant is bit-identical to the original triple loop).
 */
Tensor matmul(const Tensor &a, const Tensor &b);

/** Matrix multiply with a transposed: a {k, m} -> aT b where b {k, n}. */
Tensor matmul_tn(const Tensor &a, const Tensor &b);

/** Matrix multiply with b transposed: a {m, k} x b {n, k} -> {m, n}. */
Tensor matmul_nt(const Tensor &a, const Tensor &b);

/** True when the two shapes are identical. */
bool same_shape(const Tensor &a, const Tensor &b);

} // namespace autofl

#endif // AUTOFL_TENSOR_TENSOR_H
