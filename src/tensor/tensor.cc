#include "tensor.h"

#include <numeric>
#include <sstream>

#include "kernels/kernels.h"

namespace autofl {

Tensor::Tensor(std::vector<int> shape)
    : shape_(std::move(shape)), data_(shape_size(shape_), 0.0f)
{
}

Tensor::Tensor(std::vector<int> shape, float fill)
    : shape_(std::move(shape)), data_(shape_size(shape_), fill)
{
}

Tensor::Tensor(std::vector<int> shape, const std::vector<float> &data)
    : shape_(std::move(shape)), data_(data.begin(), data.end())
{
    assert(data_.size() == shape_size(shape_));
}

Tensor::Tensor(std::vector<int> shape, AlignedFloatVec data)
    : shape_(std::move(shape)), data_(std::move(data))
{
    assert(data_.size() == shape_size(shape_));
}

int
Tensor::dim(int d) const
{
    if (d < 0)
        d += rank();
    assert(d >= 0 && d < rank());
    return shape_[static_cast<size_t>(d)];
}

float &
Tensor::at2(int r, int c)
{
    assert(rank() == 2);
    return data_[static_cast<size_t>(r) * static_cast<size_t>(shape_[1]) +
                 static_cast<size_t>(c)];
}

float
Tensor::at2(int r, int c) const
{
    return const_cast<Tensor *>(this)->at2(r, c);
}

float &
Tensor::at3(int a, int b, int c)
{
    assert(rank() == 3);
    return data_[(static_cast<size_t>(a) * static_cast<size_t>(shape_[1]) +
                  static_cast<size_t>(b)) * static_cast<size_t>(shape_[2]) +
                 static_cast<size_t>(c)];
}

float
Tensor::at3(int a, int b, int c) const
{
    return const_cast<Tensor *>(this)->at3(a, b, c);
}

float &
Tensor::at4(int n, int c, int h, int w)
{
    assert(rank() == 4);
    size_t idx = static_cast<size_t>(n);
    idx = idx * static_cast<size_t>(shape_[1]) + static_cast<size_t>(c);
    idx = idx * static_cast<size_t>(shape_[2]) + static_cast<size_t>(h);
    idx = idx * static_cast<size_t>(shape_[3]) + static_cast<size_t>(w);
    return data_[idx];
}

float
Tensor::at4(int n, int c, int h, int w) const
{
    return const_cast<Tensor *>(this)->at4(n, c, h, w);
}

void
Tensor::fill(float v)
{
    std::fill(data_.begin(), data_.end(), v);
}

Tensor
Tensor::reshaped(std::vector<int> new_shape) const &
{
    assert(shape_size(new_shape) == data_.size());
    return Tensor(std::move(new_shape), data_);
}

Tensor
Tensor::reshaped(std::vector<int> new_shape) &&
{
    assert(shape_size(new_shape) == data_.size());
    return Tensor(std::move(new_shape), std::move(data_));
}

Tensor &
Tensor::operator+=(const Tensor &other)
{
    assert(data_.size() == other.data_.size());
    kernels::vadd(data_.size(), other.data(), data());
    return *this;
}

Tensor &
Tensor::operator-=(const Tensor &other)
{
    assert(data_.size() == other.data_.size());
    kernels::vsub(data_.size(), other.data(), data());
    return *this;
}

Tensor &
Tensor::operator*=(float s)
{
    kernels::scale(data_.size(), s, data());
    return *this;
}

Tensor
Tensor::operator+(const Tensor &other) const
{
    Tensor out = *this;
    out += other;
    return out;
}

Tensor
Tensor::operator-(const Tensor &other) const
{
    Tensor out = *this;
    out -= other;
    return out;
}

Tensor
Tensor::operator*(float s) const
{
    Tensor out = *this;
    out *= s;
    return out;
}

double
Tensor::sum() const
{
    double s = 0.0;
    for (float v : data_)
        s += v;
    return s;
}

double
Tensor::squared_norm() const
{
    double s = 0.0;
    for (float v : data_)
        s += static_cast<double>(v) * static_cast<double>(v);
    return s;
}

std::string
Tensor::shape_str() const
{
    std::ostringstream os;
    os << "[";
    for (size_t i = 0; i < shape_.size(); ++i) {
        if (i)
            os << ", ";
        os << shape_[i];
    }
    os << "]";
    return os.str();
}

size_t
Tensor::shape_size(const std::vector<int> &shape)
{
    size_t n = 1;
    for (int d : shape) {
        assert(d >= 0);
        n *= static_cast<size_t>(d);
    }
    return shape.empty() ? 0 : n;
}

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    assert(a.rank() == 2 && b.rank() == 2);
    const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
    assert(b.dim(0) == k);
    Tensor out({m, n});
    kernels::gemm(m, n, k, a.data(), k, b.data(), n, out.data(), n);
    return out;
}

Tensor
matmul_tn(const Tensor &a, const Tensor &b)
{
    assert(a.rank() == 2 && b.rank() == 2);
    const int k = a.dim(0), m = a.dim(1), n = b.dim(1);
    assert(b.dim(0) == k);
    Tensor out({m, n});
    kernels::gemm_tn(m, n, k, a.data(), m, b.data(), n, out.data(), n);
    return out;
}

Tensor
matmul_nt(const Tensor &a, const Tensor &b)
{
    assert(a.rank() == 2 && b.rank() == 2);
    const int m = a.dim(0), k = a.dim(1), n = b.dim(0);
    assert(b.dim(1) == k);
    Tensor out({m, n});
    kernels::gemm_nt(m, n, k, a.data(), k, b.data(), k, out.data(), n);
    return out;
}

bool
same_shape(const Tensor &a, const Tensor &b)
{
    return a.shape() == b.shape();
}

} // namespace autofl
