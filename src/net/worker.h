/**
 * @file
 * ClusterWorker: the worker node of the distributed parameter-server
 * runtime. Joins the server, heartbeats on a background thread, and
 * processes RoundAssign jobs sequentially: pull the round's weights
 * (the response carries the aggregator clock), invoke the caller's
 * train function, push the update with its provenance.
 *
 * The worker is deliberately policy-free: it knows nothing about
 * datasets or training — the JobFn owns all of that — so net/ stays
 * usable from tests and benches without dragging the FL system in.
 *
 * Fault injection: halt_after_jobs(n) wedges the worker after its n-th
 * completed job — heartbeats stop and no further message is ever sent,
 * but the transport stays OPEN. That exercises the Monitor's
 * heartbeat-timeout path (the hard failure mode), not the easy
 * closed-connection path.
 */
#ifndef AUTOFL_NET_WORKER_H
#define AUTOFL_NET_WORKER_H

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fl/fl_types.h"
#include "net/net_config.h"
#include "net/van.h"
#include "ps/compression.h"

namespace autofl::net {

/** One assigned job, as handed to the train function. */
struct WorkerJob
{
    int device_id = -1;
    uint64_t round = 0;
    uint64_t seq = 0;             ///< Driver-assigned; aggregator sort key.
    std::vector<float> weights;   ///< Pulled global model.
    uint64_t pull_clock = 0;      ///< Aggregator clock at the pull.
};

/** Trains one job; the returned update is pushed verbatim. */
using JobFn = std::function<LocalUpdate(const WorkerJob &)>;

/** Worker node endpoint over any Transport. */
class ClusterWorker
{
  public:
    /**
     * @param van Established connection to the server.
     * @param cfg Heartbeat cadence and join timeout.
     * @param compression Push-delta codec; when enabled, updates leave
     *        as PushDelta messages (delta against the pulled weights,
     *        with this worker's per-device error feedback) instead of
     *        raw Push. Must match the server's PsConfig::compression.
     */
    ClusterWorker(std::unique_ptr<Transport> van, NetConfig cfg,
                  CompressionConfig compression = {});

    /** Stops the heartbeat thread and closes the transport. */
    ~ClusterWorker();

    ClusterWorker(const ClusterWorker &) = delete;
    ClusterWorker &operator=(const ClusterWorker &) = delete;

    /**
     * Join handshake: send Join, wait for JoinAck (bounded by
     * cfg.join_timeout_ms), start heartbeating. Messages the server
     * sends ahead of the ack are stashed, not lost. False with @p err
     * set on timeout or a broken transport.
     */
    bool join(std::string *err);

    /** Node id assigned by the server (-1 before join). */
    int id() const { return id_; }

    /**
     * Serve rounds until the server says Shutdown. Returns true on a
     * clean shutdown, false if the transport closed or errored first.
     * A halted (fault-injected) worker keeps draining its socket
     * silently and returns false once the server tears it down.
     */
    bool run(const JobFn &fn);

    /**
     * Fault injection: complete @p n more jobs, then go silent with
     * the transport open (see file comment). Negative disables.
     */
    void halt_after_jobs(int n) { halt_after_jobs_ = n; }

    /** Graceful leave: announce Bye and stop heartbeating. */
    void leave();

    Transport &van() { return *van_; }

  private:
    std::unique_ptr<Transport> van_;
    NetConfig cfg_;
    CompressionConfig compression_;
    ErrorFeedback error_feedback_;  ///< Per-device residuals, this node.
    int id_ = -1;
    std::deque<Message> pending_;  ///< Stashed during join()/pull().

    std::thread hb_;
    std::mutex hb_mu_;
    std::condition_variable hb_cv_;
    bool hb_stop_ = false;

    std::atomic<int> halt_after_jobs_{-1};
    int jobs_done_ = 0;
    bool halted_ = false;

    void start_heartbeat();
    void stop_heartbeat();
    void heartbeat_loop();

    /** Next message, pending_ first. Ok/Timeout/Closed/Error. */
    RecvStatus next_message(Message *out, int timeout_ms);

    /**
     * Pull the weights for (round, seq). Blocks until the matching
     * PullResp arrives, stashing unrelated messages. False if the
     * transport dies first.
     */
    bool pull(uint64_t round, uint64_t seq, WorkerJob *job);

    void enter_halt();
};

} // namespace autofl::net

#endif // AUTOFL_NET_WORKER_H
