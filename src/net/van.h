/**
 * @file
 * The Van: point-to-point message endpoints behind one Transport
 * interface.
 *
 * Two implementations share the wire.h message model:
 *
 * - LoopbackVan — a deterministic in-process endpoint pair. Messages
 *   move through a FIFO queue without serialization, so the weight
 *   vectors a loopback cluster exchanges are the very same allocations
 *   the sender produced (the zero-copy fast case). Per-pair delivery
 *   is strictly FIFO, which is what the determinism contract needs:
 *   ordering across peers is structural (push seqs), never timing.
 *
 * - SocketVan — a connected stream socket (Unix domain or TCP) carrying
 *   serialized frames. Malformed inbound frames surface as
 *   RecvStatus::Error with the typed WireStatus in last_error(); the
 *   connection is closed rather than resynchronized (a stream that has
 *   lost framing cannot be trusted again).
 *
 * Both ends are full duplex: send() is safe from any thread (frames
 * never interleave); recv() is single-consumer.
 */
#ifndef AUTOFL_NET_VAN_H
#define AUTOFL_NET_VAN_H

#include <memory>
#include <string>
#include <utility>

#include "net/wire.h"

namespace autofl::net {

/** Typed outcome of one receive attempt. */
enum class RecvStatus {
    Ok,       ///< A message was delivered.
    Timeout,  ///< Nothing arrived within the deadline.
    Closed,   ///< Peer closed (or this end was closed); terminal.
    Error,    ///< Malformed frame or socket failure; terminal.
};

/** Display name ("Ok", "Closed", ...). */
const char *recv_status_name(RecvStatus s);

/** One bidirectional message endpoint. */
class Transport
{
  public:
    virtual ~Transport() = default;

    /**
     * Send one message; @p m is consumed (moved through the loopback
     * queue, serialized by sockets). Returns false once the connection
     * is closed or broken — callers treat that as the peer being gone,
     * never as an error to retry.
     */
    virtual bool send(Message m) = 0;

    /**
     * Receive the next message. @p timeout_ms < 0 blocks indefinitely;
     * 0 polls. Timeout is transient; Closed and Error are terminal.
     */
    virtual RecvStatus recv(Message *out, int timeout_ms) = 0;

    /** Close this end; unblocks the peer's recv with Closed. */
    virtual void close() = 0;

    /** "loopback", "unix" or "tcp". */
    virtual const char *kind() const = 0;

    /** Wire bytes sent/received (loopback counts would-be frame sizes). */
    virtual uint64_t bytes_sent() const = 0;
    virtual uint64_t bytes_received() const = 0;

    /**
     * Wire bytes sent/received for one message type — how the benches
     * attribute a round's traffic to pulls vs pushes, and what makes
     * push-compression wins visible per message class.
     */
    virtual uint64_t bytes_sent(MsgType t) const = 0;
    virtual uint64_t bytes_received(MsgType t) const = 0;

    /** Last terminal error ("" when none), e.g. "BadMagic". */
    virtual std::string last_error() const { return ""; }
};

/** Connected pair of in-process loopback endpoints. */
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
make_loopback_pair();

/**
 * Endpoint address. Schemes:
 * - "loopback"           — in-process endpoint pairs (no socket).
 * - "unix:/path/to.sock" — Unix domain stream socket.
 * - "tcp:host:port"      — TCP with TCP_NODELAY.
 */
struct NetAddress
{
    enum class Scheme { Invalid, Loopback, Unix, Tcp };

    Scheme scheme = Scheme::Invalid;
    std::string path;  ///< Unix socket path.
    std::string host;  ///< TCP host.
    int port = 0;      ///< TCP port.

    static NetAddress parse(const std::string &addr);
    bool valid() const { return scheme != Scheme::Invalid; }
    bool socket_scheme() const
    {
        return scheme == Scheme::Unix || scheme == Scheme::Tcp;
    }
};

/** Listening socket producing accepted SocketVan connections. */
class Listener
{
  public:
    /**
     * Bind and listen on @p addr (Unix or TCP scheme). Returns null
     * with @p err set on failure. A Unix path is unlinked first so
     * stale socket files from a killed run cannot block a new one.
     */
    static std::unique_ptr<Listener> listen(const NetAddress &addr,
                                            std::string *err);

    ~Listener();

    /** Accept one connection; null on timeout or after close(). */
    std::unique_ptr<Transport> accept(int timeout_ms);

    /** Stop accepting; unblocks a pending accept. */
    void close();

  private:
    Listener(int fd, NetAddress addr);

    int fd_ = -1;
    NetAddress addr_;
};

/**
 * Connect to @p addr, retrying @p retries times @p retry_delay_ms
 * apart (workers race the server's bind). Null with @p err set once
 * the budget is exhausted.
 */
std::unique_ptr<Transport> dial(const NetAddress &addr, int retries,
                                int retry_delay_ms, std::string *err);

} // namespace autofl::net

#endif // AUTOFL_NET_VAN_H
