#include "worker.h"

#include <chrono>
#include <cstdio>

#include "kernels/kernels.h"

namespace autofl::net {

ClusterWorker::ClusterWorker(std::unique_ptr<Transport> van, NetConfig cfg,
                             CompressionConfig compression)
    : van_(std::move(van)), cfg_(std::move(cfg)), compression_(compression)
{
}

ClusterWorker::~ClusterWorker()
{
    stop_heartbeat();
    if (van_)
        van_->close();
}

bool
ClusterWorker::join(std::string *err)
{
    Message hello;
    hello.type = MsgType::Join;
    if (!van_->send(std::move(hello))) {
        if (err)
            *err = "join: transport broken before handshake";
        return false;
    }
    const auto deadline = std::chrono::steady_clock::now() +
        std::chrono::milliseconds(cfg_.join_timeout_ms);
    for (;;) {
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - std::chrono::steady_clock::now())
                .count();
        if (left <= 0) {
            if (err)
                *err = "join: no JoinAck within " +
                    std::to_string(cfg_.join_timeout_ms) + " ms";
            return false;
        }
        Message m;
        const RecvStatus rs = van_->recv(&m, static_cast<int>(left));
        if (rs == RecvStatus::Timeout)
            continue;
        if (rs != RecvStatus::Ok) {
            if (err)
                *err = std::string("join: transport ") +
                    recv_status_name(rs) +
                    (van_->last_error().empty() ?
                         "" :
                         " (" + van_->last_error() + ")");
            return false;
        }
        if (m.type == MsgType::JoinAck) {
            id_ = static_cast<int>(m.seq);
            start_heartbeat();
            return true;
        }
        // The server may race real traffic ahead of the ack over a
        // loopback pair registered before we looked; keep it.
        pending_.push_back(std::move(m));
    }
}

void
ClusterWorker::start_heartbeat()
{
    std::lock_guard<std::mutex> lk(hb_mu_);
    if (hb_.joinable())
        return;
    hb_stop_ = false;
    hb_ = std::thread([this] { heartbeat_loop(); });
}

void
ClusterWorker::stop_heartbeat()
{
    {
        std::lock_guard<std::mutex> lk(hb_mu_);
        hb_stop_ = true;
        hb_cv_.notify_all();
    }
    if (hb_.joinable())
        hb_.join();
}

void
ClusterWorker::heartbeat_loop()
{
    const auto period = std::chrono::milliseconds(
        std::max(1, cfg_.heartbeat_interval_ms));
    std::unique_lock<std::mutex> lk(hb_mu_);
    while (!hb_stop_) {
        if (hb_cv_.wait_for(lk, period, [this] { return hb_stop_; }))
            return;
        lk.unlock();
        Message beat;
        beat.type = MsgType::Heartbeat;
        beat.from = id_;
        const bool ok = van_->send(std::move(beat));
        lk.lock();
        if (!ok)
            return;  // Transport gone; run() will observe it too.
    }
}

RecvStatus
ClusterWorker::next_message(Message *out, int timeout_ms)
{
    if (!pending_.empty()) {
        *out = std::move(pending_.front());
        pending_.pop_front();
        return RecvStatus::Ok;
    }
    return van_->recv(out, timeout_ms);
}

bool
ClusterWorker::pull(uint64_t round, uint64_t seq, WorkerJob *job)
{
    Message req;
    req.type = MsgType::PullReq;
    req.from = id_;
    req.round = round;
    req.seq = seq;
    if (!van_->send(std::move(req)))
        return false;
    for (;;) {
        Message m;
        const RecvStatus rs = next_message(&m, -1);
        if (rs == RecvStatus::Timeout)
            continue;
        if (rs != RecvStatus::Ok)
            return false;
        if (m.type == MsgType::PullResp && m.seq == seq &&
            m.round == round) {
            job->weights = std::move(m.floats);
            job->pull_clock = m.clock;
            return true;
        }
        if (m.type == MsgType::HeartbeatAck)
            continue;  // Liveness noise; nothing to keep.
        pending_.push_back(std::move(m));
    }
}

void
ClusterWorker::enter_halt()
{
    halted_ = true;
    stop_heartbeat();
    std::fprintf(stderr,
                 "[net] worker %d halting after %d jobs (fault "
                 "injection; transport stays open)\n",
                 id_, jobs_done_);
}

bool
ClusterWorker::run(const JobFn &fn)
{
    for (;;) {
        Message m;
        const RecvStatus rs = next_message(&m, -1);
        if (rs == RecvStatus::Timeout)
            continue;
        if (rs != RecvStatus::Ok)
            return false;
        if (halted_)
            continue;  // Wedged: drain the socket, answer nothing.
        switch (m.type) {
          case MsgType::RoundAssign: {
              // Pairs of (device_id, seq), processed sequentially —
              // one worker is one device at a time, like the serial
              // executor lane of the in-process runtime.
              for (size_t i = 0; i + 1 < m.ints.size(); i += 2) {
                  WorkerJob job;
                  job.device_id = m.ints[i];
                  job.round = m.round;
                  job.seq = static_cast<uint64_t>(m.ints[i + 1]);
                  if (!pull(m.round, job.seq, &job))
                      return false;
                  LocalUpdate u = fn(job);
                  Message push;
                  if (compression_.enabled() &&
                      u.weights.size() == job.weights.size()) {
                      // Ship the delta against the pulled weights;
                      // error feedback folds in whatever previous
                      // rounds' quantizers dropped for this device.
                      std::vector<float> delta = std::move(u.weights);
                      kernels::vsub(delta.size(), job.weights.data(),
                                    delta.data());
                      push = make_push_delta(
                          u.device_id, static_cast<int>(u.num_steps),
                          static_cast<int>(u.num_samples), u.train_loss,
                          u.train_acc,
                          error_feedback_.encode(compression_, u.device_id,
                                                 std::move(delta)));
                  } else {
                      push.type = MsgType::Push;
                      push.ints = {u.device_id,
                                   static_cast<int32_t>(u.num_steps),
                                   static_cast<int32_t>(u.num_samples)};
                      push.doubles = {u.train_loss, u.train_acc};
                      push.floats = std::move(u.weights);
                  }
                  push.from = id_;
                  push.round = m.round;
                  push.seq = job.seq;
                  push.clock = job.pull_clock;
                  if (!van_->send(std::move(push)))
                      return false;
                  ++jobs_done_;
                  const int halt_at = halt_after_jobs_.load();
                  if (halt_at >= 0 && jobs_done_ >= halt_at) {
                      enter_halt();
                      break;
                  }
              }
              break;
          }
          case MsgType::Barrier: {
              Message ack;
              ack.type = MsgType::BarrierAck;
              ack.from = id_;
              ack.seq = m.seq;
              if (!van_->send(std::move(ack)))
                  return false;
              break;
          }
          case MsgType::Shutdown:
              stop_heartbeat();
              return true;
          case MsgType::HeartbeatAck:
          default:
              break;  // Server-bound or noise; ignore.
        }
    }
}

void
ClusterWorker::leave()
{
    stop_heartbeat();
    Message bye;
    bye.type = MsgType::Bye;
    bye.from = id_;
    van_->send(std::move(bye));
}

} // namespace autofl::net
