/**
 * @file
 * Monitor: heartbeat-driven failure detection. Workers beat every
 * heartbeat_interval_ms; the monitor sweeps the book and declares any
 * node silent for longer than heartbeat_timeout_ms dead, invoking the
 * owner's on_dead callback exactly once per node (the Postoffice's
 * Alive -> Dead transition is the dedup point, so a closed transport
 * reporting the same death first wins harmlessly).
 *
 * Failure policy: a dead node is *evicted*, never waited for — its
 * in-flight work is dropped through the same accounting path as a
 * staleness eviction, so a crashed client costs one round's
 * contribution, not a hang.
 */
#ifndef AUTOFL_NET_MONITOR_H
#define AUTOFL_NET_MONITOR_H

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "net/postoffice.h"

namespace autofl::net {

/** Heartbeat watchdog over the Postoffice's alive workers. */
class Monitor
{
  public:
    /** Invoked (on the monitor thread) once per detected death. */
    using OnDead = std::function<void(int node, int silent_ms)>;

    /**
     * @param po Membership book; deaths are recorded there.
     * @param timeout_ms Silence threshold.
     * @param on_dead Death handler (eviction lives in the owner).
     */
    Monitor(Postoffice &po, int timeout_ms, OnDead on_dead);

    /** Stops the sweep thread. */
    ~Monitor();

    Monitor(const Monitor &) = delete;
    Monitor &operator=(const Monitor &) = delete;

    /** Start sweeping (idempotent). */
    void start();

    /** Stop sweeping (idempotent; joins the thread). */
    void stop();

    /** Record a sign of life from @p node (heartbeat or any message). */
    void note_alive(int node);

  private:
    using Clock = std::chrono::steady_clock;

    Postoffice &po_;
    const int timeout_ms_;
    OnDead on_dead_;

    std::mutex mu_;
    std::condition_variable cv_;
    std::unordered_map<int, Clock::time_point> last_seen_;
    std::thread sweeper_;
    bool running_ = false;
    bool stop_ = false;

    void sweep_loop();
};

} // namespace autofl::net

#endif // AUTOFL_NET_MONITOR_H
