#include "wire.h"

#include <cstring>

namespace autofl::net {

namespace {

// Scalar encoding is explicit little-endian so the format is defined by
// bytes, not by host layout. Float/double sections are memcpy'd IEEE-754
// bit images (every supported target is little-endian IEEE-754), which
// is what keeps weights bit-exact across the wire.

void
put_u16(std::vector<uint8_t> &b, uint16_t v)
{
    b.push_back(static_cast<uint8_t>(v));
    b.push_back(static_cast<uint8_t>(v >> 8));
}

void
put_u32(std::vector<uint8_t> &b, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        b.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
put_u64(std::vector<uint8_t> &b, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        b.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint16_t
get_u16(const uint8_t *p)
{
    return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t
get_u32(const uint8_t *p)
{
    return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
        (static_cast<uint32_t>(p[2]) << 16) |
        (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t
get_u64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
}

/** Fixed metadata bytes at the head of every payload. */
constexpr size_t kMetaBytes = 4 + 8 + 8 + 8 + 5 * 4;  // from,r,s,c + counts.

size_t
payload_bytes(const Message &m)
{
    return kMetaBytes + 4 * m.ints.size() + 4 * m.floats.size() +
        8 * m.doubles.size() + m.text.size() + m.bytes.size();
}

} // namespace

const char *
msg_type_name(MsgType t)
{
    switch (t) {
      case MsgType::Join:
        return "Join";
      case MsgType::JoinAck:
        return "JoinAck";
      case MsgType::Heartbeat:
        return "Heartbeat";
      case MsgType::HeartbeatAck:
        return "HeartbeatAck";
      case MsgType::RoundAssign:
        return "RoundAssign";
      case MsgType::PullReq:
        return "PullReq";
      case MsgType::PullResp:
        return "PullResp";
      case MsgType::Push:
        return "Push";
      case MsgType::Barrier:
        return "Barrier";
      case MsgType::BarrierAck:
        return "BarrierAck";
      case MsgType::Bye:
        return "Bye";
      case MsgType::Shutdown:
        return "Shutdown";
      case MsgType::PushDelta:
        return "PushDelta";
    }
    return "unknown";
}

const char *
wire_status_name(WireStatus s)
{
    switch (s) {
      case WireStatus::Ok:
        return "Ok";
      case WireStatus::NeedMore:
        return "NeedMore";
      case WireStatus::BadMagic:
        return "BadMagic";
      case WireStatus::BadVersion:
        return "BadVersion";
      case WireStatus::BadType:
        return "BadType";
      case WireStatus::Oversized:
        return "Oversized";
      case WireStatus::BadPayload:
        return "BadPayload";
      case WireStatus::BadCodec:
        return "BadCodec";
    }
    return "unknown";
}

size_t
wire_frame_bytes(const Message &m)
{
    return kWireHeaderBytes + payload_bytes(m);
}

std::vector<uint8_t>
frame_message(const Message &m)
{
    const size_t payload = payload_bytes(m);
    std::vector<uint8_t> b;
    b.reserve(kWireHeaderBytes + payload);
    put_u32(b, kWireMagic);
    put_u16(b, kWireVersion);
    put_u16(b, static_cast<uint16_t>(m.type));
    put_u32(b, static_cast<uint32_t>(payload));
    put_u32(b, static_cast<uint32_t>(m.from));
    put_u64(b, m.round);
    put_u64(b, m.seq);
    put_u64(b, m.clock);
    put_u32(b, static_cast<uint32_t>(m.ints.size()));
    put_u32(b, static_cast<uint32_t>(m.floats.size()));
    put_u32(b, static_cast<uint32_t>(m.doubles.size()));
    put_u32(b, static_cast<uint32_t>(m.text.size()));
    put_u32(b, static_cast<uint32_t>(m.bytes.size()));
    const size_t meta_end = b.size();
    b.resize(kWireHeaderBytes + payload);
    uint8_t *p = b.data() + meta_end;
    std::memcpy(p, m.ints.data(), 4 * m.ints.size());
    p += 4 * m.ints.size();
    std::memcpy(p, m.floats.data(), 4 * m.floats.size());
    p += 4 * m.floats.size();
    std::memcpy(p, m.doubles.data(), 8 * m.doubles.size());
    p += 8 * m.doubles.size();
    std::memcpy(p, m.text.data(), m.text.size());
    p += m.text.size();
    std::memcpy(p, m.bytes.data(), m.bytes.size());
    return b;
}

WireStatus
check_header(const uint8_t *data, size_t len, uint32_t *payload_len)
{
    if (len < kWireHeaderBytes)
        return WireStatus::NeedMore;
    if (get_u32(data) != kWireMagic)
        return WireStatus::BadMagic;
    if (get_u16(data + 4) != kWireVersion)
        return WireStatus::BadVersion;
    const uint16_t type = get_u16(data + 6);
    if (type < kMinMsgType || type > kMaxMsgType)
        return WireStatus::BadType;
    const uint32_t payload = get_u32(data + 8);
    if (payload > kMaxPayloadBytes)
        return WireStatus::Oversized;
    if (payload < kMetaBytes)
        return WireStatus::BadPayload;
    *payload_len = payload;
    return WireStatus::Ok;
}

WireStatus
parse_frame(const uint8_t *data, size_t len, Message *out, size_t *consumed)
{
    uint32_t payload = 0;
    const WireStatus hs = check_header(data, len, &payload);
    if (hs != WireStatus::Ok)
        return hs;
    if (len < kWireHeaderBytes + payload)
        return WireStatus::NeedMore;

    const uint8_t *p = data + kWireHeaderBytes;
    Message m;
    m.type = static_cast<MsgType>(get_u16(data + 6));
    m.from = static_cast<int32_t>(get_u32(p));
    m.round = get_u64(p + 4);
    m.seq = get_u64(p + 12);
    m.clock = get_u64(p + 20);
    const uint64_t n_ints = get_u32(p + 28);
    const uint64_t n_floats = get_u32(p + 32);
    const uint64_t n_doubles = get_u32(p + 36);
    const uint64_t n_text = get_u32(p + 40);
    const uint64_t n_bytes = get_u32(p + 44);

    // The declared section counts must tile the declared payload
    // exactly; the 64-bit sum cannot overflow (counts are 32-bit).
    const uint64_t need = kMetaBytes + 4 * n_ints + 4 * n_floats +
        8 * n_doubles + n_text + n_bytes;
    if (need != payload)
        return WireStatus::BadPayload;

    p += kMetaBytes;
    m.ints.resize(n_ints);
    std::memcpy(m.ints.data(), p, 4 * n_ints);
    p += 4 * n_ints;
    m.floats.resize(n_floats);
    std::memcpy(m.floats.data(), p, 4 * n_floats);
    p += 4 * n_floats;
    m.doubles.resize(n_doubles);
    std::memcpy(m.doubles.data(), p, 8 * n_doubles);
    p += 8 * n_doubles;
    m.text.assign(reinterpret_cast<const char *>(p), n_text);
    p += n_text;
    m.bytes.resize(n_bytes);
    std::memcpy(m.bytes.data(), p, n_bytes);

    *out = std::move(m);
    *consumed = kWireHeaderBytes + payload;
    return WireStatus::Ok;
}

// ------------------------------------------------ PushDelta mapping

Message
make_push_delta(int device, int steps, int samples, double loss, double acc,
                EncodedDelta e)
{
    Message m;
    m.type = MsgType::PushDelta;
    m.ints = {device,
              steps,
              samples,
              static_cast<int32_t>(e.mode),
              static_cast<int32_t>(e.n),
              static_cast<int32_t>(e.k),
              static_cast<int32_t>(e.quant_range)};
    m.doubles = {loss, acc};
    m.floats = std::move(e.scales);
    m.bytes = std::move(e.payload);
    return m;
}

WireStatus
decode_push_delta(const Message &m, size_t dim, std::vector<float> *delta)
{
    if (m.type != MsgType::PushDelta)
        return WireStatus::BadType;
    if (m.ints.size() != kPushDeltaInts || m.doubles.size() != 2)
        return WireStatus::BadCodec;
    const int32_t codec = m.ints[3];
    // None never ships as PushDelta (raw pushes keep the Push message),
    // so only the compressed codec ids are valid here.
    if (codec != static_cast<int32_t>(Compression::Fp16) &&
        codec != static_cast<int32_t>(Compression::Int8) &&
        codec != static_cast<int32_t>(Compression::TopK))
        return WireStatus::BadCodec;
    if (m.ints[4] < 0 || static_cast<size_t>(m.ints[4]) != dim ||
        m.ints[5] < 0 || m.ints[6] < 0)
        return WireStatus::BadCodec;

    EncodedDelta e;
    e.mode = static_cast<Compression>(codec);
    e.n = static_cast<uint32_t>(m.ints[4]);
    e.k = static_cast<uint32_t>(m.ints[5]);
    e.quant_range = static_cast<uint32_t>(m.ints[6]);
    e.scales = m.floats;
    e.payload = m.bytes;
    if (decode_delta(e, delta) != CodecStatus::Ok)
        return WireStatus::BadCodec;
    return WireStatus::Ok;
}

WireStatus
validate_push_delta(const Message &m, size_t dim)
{
    std::vector<float> scratch;
    return decode_push_delta(m, dim, &scratch);
}

} // namespace autofl::net
