/**
 * @file
 * ClusterServer: the server node of the distributed parameter-server
 * runtime. Owns the ShardedStore and the bounded-staleness
 * AsyncAggregator (the same commit engine as the in-process runtime),
 * and speaks the wire.h protocol to worker nodes over any Transport —
 * loopback Vans, Unix sockets or TCP.
 *
 * Round protocol. run_round assigns jobs round-robin over the alive
 * workers (RoundAssign carries (device, seq) pairs; seq is the
 * submission order, which the aggregator sorts by — composition is
 * structural, so results are independent of worker placement and
 * timing). Each worker pulls the weights per job (PullResp carries the
 * aggregator clock the staleness bound is measured against), trains,
 * and pushes its update; the server feeds pushes straight into the
 * aggregator and the round completes when every job has either arrived
 * or been evicted.
 *
 * Failure semantics. The Monitor declares a silent worker dead
 * (heartbeat timeout), a closed transport declares one dead
 * immediately, and the optional round deadline declares heartbeating
 * stragglers dead — in every case the node's in-flight jobs are
 * evicted through the same accounting as a staleness eviction
 * (PsRoundStats::evicted) and the round completes without them. A dead
 * client costs one round's contribution, never a hang.
 */
#ifndef AUTOFL_NET_CLUSTER_H
#define AUTOFL_NET_CLUSTER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/monitor.h"
#include "net/postoffice.h"
#include "net/van.h"
#include "ps/async_aggregator.h"
#include "ps/ps_config.h"
#include "ps/sharded_store.h"

namespace autofl::net {

/** One client job of a distributed round. */
struct ClusterJob
{
    int device_id = -1;
};

/** Server node of the distributed ps runtime. */
class ClusterServer
{
  public:
    /**
     * @param init_weights Initial global model; fixes the store dim.
     * @param alg Aggregation algorithm (FEDL is rejected upstream).
     * @param cfg Runtime knobs: mode/staleness/shards plus cfg.net
     *        (heartbeats, timeouts). The monitor starts immediately.
     */
    ClusterServer(std::vector<float> init_weights, Algorithm alg,
                  const PsConfig &cfg);

    /** Shuts the cluster down if still running. */
    ~ClusterServer();

    ClusterServer(const ClusterServer &) = delete;
    ClusterServer &operator=(const ClusterServer &) = delete;

    /**
     * Register a worker over an established transport (the loopback
     * path). Assigns the node id and starts its receive thread.
     * Returns the id.
     */
    int add_worker(std::unique_ptr<Transport> van);

    /** Bind cfg.net.listen (socket schemes). False with @p err set. */
    bool start_listening(std::string *err);

    /**
     * Accept and register @p n workers within @p timeout_ms. Returns
     * the number accepted (== n on success).
     */
    int accept_workers(int n, int timeout_ms);

    /**
     * Run one round of @p jobs across the alive workers. Blocks until
     * every job has arrived or been evicted; returns the aggregator's
     * stats with dead-worker losses folded into `evicted`. With no
     * alive workers the round completes immediately, fully evicted.
     */
    PsRoundStats run_round(const std::vector<ClusterJob> &jobs,
                           uint64_t round);

    /**
     * Membership-wide sync point: broadcast Barrier and wait for every
     * alive worker's ack (deaths shrink the quorum). False on timeout.
     */
    bool barrier(int timeout_ms);

    /**
     * Graceful stop: barrier (bounded), broadcast Shutdown, close
     * every transport and join the receive threads. Idempotent.
     */
    void shutdown();

    ShardedStore &store() { return store_; }
    const ShardedStore &store() const { return store_; }
    Postoffice &postoffice() { return po_; }
    AsyncAggregator &aggregator() { return agg_; }

    /** Total jobs evicted because their worker died or timed out. */
    uint64_t dead_evictions() const { return dead_evictions_; }

    /**
     * Server-side wire bytes received on the push path (Push +
     * PushDelta frames, summed over every registered worker) — the
     * uplink traffic push compression is allowed to shrink. Pull
     * responses are deliberately excluded.
     */
    uint64_t push_bytes_received() const;

  private:
    struct Peer
    {
        int id = -1;
        std::unique_ptr<Transport> van;
        std::thread rx;
    };

    PsConfig cfg_;
    ShardedStore store_;
    AsyncAggregator agg_;
    Postoffice po_;
    Monitor monitor_;
    std::unique_ptr<Listener> listener_;
    std::vector<std::unique_ptr<Peer>> peers_;  ///< Index id-1.
    std::atomic<bool> shutting_down_{false};
    bool shut_ = false;
    std::atomic<uint64_t> dead_evictions_{0};

    // Round state.
    mutable std::mutex round_mu_;
    std::condition_variable round_cv_;
    bool round_active_ = false;
    uint64_t current_round_ = 0;
    int expected_ = 0;
    int arrived_ = 0;
    int lost_ = 0;
    std::map<int, std::vector<uint64_t>> outstanding_;  ///< node -> seqs.

    /**
     * Compressed mode only: the exact full-pull payload served per
     * (node, seq), kept so a PushDelta can be reconstructed as
     * pulled + decoded delta — the store advances between pull and
     * push, so re-reading it would decode against the wrong base.
     * Entries die with their push, their node, or their round.
     */
    std::map<std::pair<int, uint64_t>, std::vector<float>> pull_cache_;

    // Barrier state.
    std::condition_variable barrier_cv_;

    void rx_loop(Peer *peer);
    void handle(Peer *peer, Message &&m);
    bool send_to(int id, Message m);

    /**
     * Evict @p id's in-flight jobs and wake the round waiter. The
     * caller owns the Alive -> Dead transition (Postoffice::mark_dead),
     * so this runs at most once per node.
     */
    void evict_node(int id, const char *why, int silent_ms);
};

} // namespace autofl::net

#endif // AUTOFL_NET_CLUSTER_H
