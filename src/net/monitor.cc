#include "monitor.h"

#include <vector>

namespace autofl::net {

Monitor::Monitor(Postoffice &po, int timeout_ms, OnDead on_dead)
    : po_(po), timeout_ms_(timeout_ms), on_dead_(std::move(on_dead))
{
}

Monitor::~Monitor()
{
    stop();
}

void
Monitor::start()
{
    std::lock_guard<std::mutex> lk(mu_);
    if (running_)
        return;
    running_ = true;
    stop_ = false;
    sweeper_ = std::thread([this] { sweep_loop(); });
}

void
Monitor::stop()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (!running_)
            return;
        stop_ = true;
        cv_.notify_all();
    }
    sweeper_.join();
    std::lock_guard<std::mutex> lk(mu_);
    running_ = false;
}

void
Monitor::note_alive(int node)
{
    std::lock_guard<std::mutex> lk(mu_);
    last_seen_[node] = Clock::now();
}

void
Monitor::sweep_loop()
{
    // Sweep at a quarter of the timeout so detection lands within
    // ~1.25x the configured threshold.
    const auto period =
        std::chrono::milliseconds(std::max(1, timeout_ms_ / 4));
    std::unique_lock<std::mutex> lk(mu_);
    while (!stop_) {
        cv_.wait_for(lk, period, [this] { return stop_; });
        if (stop_)
            return;
        const auto now = Clock::now();
        std::vector<std::pair<int, int>> dead;  // (node, silent_ms).
        for (int id : po_.alive_workers()) {
            auto it = last_seen_.find(id);
            if (it == last_seen_.end()) {
                // Never beat: start its clock at first sweep so a
                // worker that joins and immediately wedges still times
                // out rather than escaping the book.
                last_seen_[id] = now;
                continue;
            }
            const int silent = static_cast<int>(
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    now - it->second)
                    .count());
            if (silent >= timeout_ms_)
                dead.emplace_back(id, silent);
        }
        // Callbacks run without the monitor lock: the handler evicts
        // jobs and may send messages, and note_alive must stay callable
        // from receive threads throughout.
        lk.unlock();
        for (auto [id, silent] : dead) {
            if (po_.mark_dead(id) && on_dead_)
                on_dead_(id, silent);
        }
        lk.lock();
    }
}

} // namespace autofl::net
