#include "postoffice.h"

#include <algorithm>

namespace autofl::net {

int
Postoffice::add_worker(std::string name)
{
    std::lock_guard<std::mutex> lk(mu_);
    NodeInfo info;
    info.id = static_cast<int>(workers_.size()) + 1;
    info.role = NodeRole::Worker;
    info.state = NodeState::Alive;
    info.name = std::move(name);
    workers_.push_back(info);
    return info.id;
}

void
Postoffice::mark_left(int id)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (id < 1 || id > static_cast<int>(workers_.size()))
        return;
    NodeInfo &n = workers_[static_cast<size_t>(id - 1)];
    if (n.state == NodeState::Alive)
        n.state = NodeState::Left;
}

bool
Postoffice::mark_dead(int id)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (id < 1 || id > static_cast<int>(workers_.size()))
        return false;
    NodeInfo &n = workers_[static_cast<size_t>(id - 1)];
    if (n.state != NodeState::Alive)
        return false;
    n.state = NodeState::Dead;
    return true;
}

bool
Postoffice::is_alive(int id) const
{
    std::lock_guard<std::mutex> lk(mu_);
    if (id < 1 || id > static_cast<int>(workers_.size()))
        return false;
    return workers_[static_cast<size_t>(id - 1)].state == NodeState::Alive;
}

std::vector<int>
Postoffice::alive_workers() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<int> ids;
    for (const NodeInfo &n : workers_)
        if (n.state == NodeState::Alive)
            ids.push_back(n.id);
    return ids;
}

int
Postoffice::alive_count() const
{
    return static_cast<int>(alive_workers().size());
}

int
Postoffice::total_joined() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return static_cast<int>(workers_.size());
}

std::vector<NodeInfo>
Postoffice::members() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return workers_;
}

uint64_t
Postoffice::open_barrier()
{
    std::lock_guard<std::mutex> lk(mu_);
    ++barrier_id_;
    barrier_acks_.clear();
    return barrier_id_;
}

bool
Postoffice::barrier_ack(int id, uint64_t barrier_id)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (barrier_id != barrier_id_)
        return barrier_done_locked();
    if (std::find(barrier_acks_.begin(), barrier_acks_.end(), id) ==
        barrier_acks_.end())
        barrier_acks_.push_back(id);
    return barrier_done_locked();
}

bool
Postoffice::barrier_done() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return barrier_done_locked();
}

bool
Postoffice::barrier_done_locked() const
{
    for (const NodeInfo &n : workers_) {
        if (n.state != NodeState::Alive)
            continue;
        if (std::find(barrier_acks_.begin(), barrier_acks_.end(), n.id) ==
            barrier_acks_.end())
            return false;
    }
    return true;
}

std::pair<size_t, size_t>
Postoffice::shard_range(int s, size_t dim, int num_shards)
{
    // Mirror of ShardedStore's layout: minimum size dim / n, with the
    // first dim % n shards one element larger.
    const size_t n = static_cast<size_t>(std::max(1, num_shards));
    const size_t base = dim / n;
    const size_t rem = dim % n;
    const size_t i = static_cast<size_t>(s);
    const size_t begin = i * base + std::min(i, rem);
    const size_t end = begin + base + (i < rem ? 1 : 0);
    return {begin, end};
}

} // namespace autofl::net
