/**
 * @file
 * WorkerProcessGroup: fork/exec a fleet of worker processes and track
 * them to a clean exit. The parent is the server; each child runs the
 * configured spawn command with the server's address in
 * AUTOFL_NET_ADDR (and its index in AUTOFL_NET_WORKER) — workers
 * rebuild their datasets deterministically from config + seed, so no
 * data ever ships over the wire at launch.
 *
 * The group is also the chaos handle: kill_worker() delivers a signal
 * (SIGKILL for crash-fault tests), and wait_all() bounds the reap so a
 * wedged child becomes a reported failure plus a SIGKILL, never an
 * orphan surviving the test run.
 */
#ifndef AUTOFL_NET_PROCESS_H
#define AUTOFL_NET_PROCESS_H

#include <string>
#include <sys/types.h>
#include <vector>

namespace autofl::net {

/** Exit record of one reaped worker process. */
struct WorkerExit
{
    pid_t pid = -1;
    bool exited = false;    ///< Normal exit (vs signal).
    int exit_code = -1;     ///< Valid when exited.
    int term_signal = 0;    ///< Valid when !exited.
    bool forced = false;    ///< We had to SIGKILL it at the deadline.
};

/** A spawned fleet of worker processes. */
class WorkerProcessGroup
{
  public:
    WorkerProcessGroup() = default;

    /** Kills anything still running (no orphans past the group). */
    ~WorkerProcessGroup();

    WorkerProcessGroup(const WorkerProcessGroup &) = delete;
    WorkerProcessGroup &operator=(const WorkerProcessGroup &) = delete;

    /**
     * Spawn @p n workers. @p cmd is split on whitespace into argv and
     * exec'd with AUTOFL_NET_ADDR=@p addr and AUTOFL_NET_WORKER=<index>
     * in the environment. Returns the number successfully forked.
     */
    int spawn(int n, const std::string &cmd, const std::string &addr);

    /** Pids in spawn order (-1 once reaped). */
    const std::vector<pid_t> &pids() const { return pids_; }

    /** Number of children not yet reaped. */
    int live_count() const;

    /**
     * Send @p sig to worker @p index (chaos injection). False if the
     * index is bad or the child is already reaped.
     */
    bool kill_worker(int index, int sig);

    /**
     * Reap every child within @p timeout_ms; stragglers are SIGKILLed
     * and reaped with `forced` set. Returns the exit records in spawn
     * order. Clean means: every record exited with code 0, none forced
     * (chaos-killed workers are expected to show their signal).
     */
    std::vector<WorkerExit> wait_all(int timeout_ms);

  private:
    std::vector<pid_t> pids_;
    std::vector<WorkerExit> exits_;
};

} // namespace autofl::net

#endif // AUTOFL_NET_PROCESS_H
