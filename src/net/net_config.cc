#include "net_config.h"

#include <stdexcept>

#include "net/van.h"

namespace autofl {

void
NetConfig::validate(const char *who) const
{
    if (!enabled())
        return;
    const std::string w(who);
    const net::NetAddress addr = net::NetAddress::parse(listen);
    if (!addr.valid()) {
        throw std::invalid_argument(
            w + ".listen '" + listen +
            "' is not a transport address: use \"loopback\" (in-process "
            "nodes), \"unix:/path/to.sock\" or \"tcp:host:port\" (literal "
            "IPv4, port 1-65535)");
    }
    if (workers < 1) {
        throw std::invalid_argument(
            w + ".workers must be >= 1 (got " + std::to_string(workers) +
            "): the cluster needs at least one worker node");
    }
    if (!spawn_cmd.empty() && !addr.socket_scheme()) {
        throw std::invalid_argument(
            w + ".spawn_cmd is set but listen is '" + listen +
            "': spawning worker processes needs a unix: or tcp: address "
            "they can dial");
    }
    if (heartbeat_interval_ms < 1) {
        throw std::invalid_argument(
            w + ".heartbeat_interval_ms must be >= 1 (got " +
            std::to_string(heartbeat_interval_ms) +
            "): workers must heartbeat to stay members");
    }
    if (heartbeat_timeout_ms < 2 * heartbeat_interval_ms) {
        throw std::invalid_argument(
            w + ".heartbeat_timeout_ms must be >= 2x heartbeat_interval_ms "
            "(got " + std::to_string(heartbeat_timeout_ms) + " vs interval " +
            std::to_string(heartbeat_interval_ms) +
            "): a single delayed beat would otherwise evict a live node");
    }
    if (connect_retry < 1) {
        throw std::invalid_argument(
            w + ".connect_retry must be >= 1 (got " +
            std::to_string(connect_retry) +
            "): workers need at least one dial attempt");
    }
    if (connect_retry_delay_ms < 1) {
        throw std::invalid_argument(
            w + ".connect_retry_delay_ms must be >= 1 (got " +
            std::to_string(connect_retry_delay_ms) +
            "): back-to-back dial retries just burn the retry budget");
    }
    if (join_timeout_ms < 1) {
        throw std::invalid_argument(
            w + ".join_timeout_ms must be >= 1 (got " +
            std::to_string(join_timeout_ms) +
            "): the server cannot wait forever for workers to join");
    }
    if (round_timeout_ms != 0 && round_timeout_ms < heartbeat_timeout_ms) {
        throw std::invalid_argument(
            w + ".round_timeout_ms must be 0 (disabled) or >= "
            "heartbeat_timeout_ms (got " + std::to_string(round_timeout_ms) +
            " vs timeout " + std::to_string(heartbeat_timeout_ms) +
            "): the round backstop must not fire before failure detection "
            "has had its chance");
    }
}

} // namespace autofl
