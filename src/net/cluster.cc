#include "cluster.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>

#include "kernels/kernels.h"

namespace autofl::net {

ClusterServer::ClusterServer(std::vector<float> init_weights, Algorithm alg,
                             const PsConfig &cfg)
    : cfg_(cfg), store_(std::move(init_weights), cfg.shards),
      agg_(store_, alg, cfg),
      monitor_(po_, cfg.net.heartbeat_timeout_ms,
               [this](int node, int silent_ms) {
                   evict_node(node, "heartbeat timeout", silent_ms);
               })
{
    monitor_.start();
}

ClusterServer::~ClusterServer()
{
    shutdown();
}

int
ClusterServer::add_worker(std::unique_ptr<Transport> van)
{
    const int id = po_.add_worker("");
    auto peer = std::make_unique<Peer>();
    peer->id = id;
    peer->van = std::move(van);
    Peer *p = peer.get();
    peers_.push_back(std::move(peer));
    assert(static_cast<int>(peers_.size()) == id);
    monitor_.note_alive(id);  // The join itself is a sign of life.
    p->rx = std::thread([this, p] { rx_loop(p); });
    return id;
}

bool
ClusterServer::start_listening(std::string *err)
{
    const NetAddress addr = NetAddress::parse(cfg_.net.listen);
    if (!addr.socket_scheme()) {
        if (err)
            *err = "listen address '" + cfg_.net.listen +
                "' is not a socket scheme";
        return false;
    }
    listener_ = Listener::listen(addr, err);
    return listener_ != nullptr;
}

int
ClusterServer::accept_workers(int n, int timeout_ms)
{
    const auto deadline = std::chrono::steady_clock::now() +
        std::chrono::milliseconds(timeout_ms);
    int accepted = 0;
    while (accepted < n && listener_) {
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - std::chrono::steady_clock::now())
                .count();
        if (left <= 0)
            break;
        auto van = listener_->accept(static_cast<int>(left));
        if (!van)
            continue;
        add_worker(std::move(van));
        ++accepted;
    }
    return accepted;
}

void
ClusterServer::rx_loop(Peer *peer)
{
    for (;;) {
        Message m;
        const RecvStatus rs = peer->van->recv(&m, -1);
        if (rs == RecvStatus::Ok) {
            monitor_.note_alive(peer->id);
            handle(peer, std::move(m));
            continue;
        }
        if (rs == RecvStatus::Timeout)
            continue;
        // Closed or Error: the node is gone. During shutdown that is
        // the expected teardown; otherwise it is a failure detected
        // faster than any heartbeat timeout.
        if (!shutting_down_ && po_.mark_dead(peer->id)) {
            const std::string why = rs == RecvStatus::Error ?
                "protocol error: " + peer->van->last_error() :
                "connection closed";
            evict_node(peer->id, why.c_str(), 0);
        }
        return;
    }
}

void
ClusterServer::handle(Peer *peer, Message &&m)
{
    switch (m.type) {
      case MsgType::Join: {
          Message ack;
          ack.type = MsgType::JoinAck;
          ack.from = Postoffice::kServerId;
          ack.seq = static_cast<uint64_t>(peer->id);
          peer->van->send(std::move(ack));
          return;
      }
      case MsgType::Heartbeat: {
          Message ack;
          ack.type = MsgType::HeartbeatAck;
          ack.from = Postoffice::kServerId;
          peer->van->send(std::move(ack));
          return;
      }
      case MsgType::PullReq: {
          // Clock first, weights second: a commit landing in between
          // makes the recorded staleness an upper bound, never an
          // undercount (same discipline as the in-process runtime).
          Message resp;
          resp.type = MsgType::PullResp;
          resp.from = Postoffice::kServerId;
          resp.round = m.round;
          resp.seq = m.seq;
          resp.clock = agg_.clock();
          std::vector<float> full = store_.read();
          if (m.ints.size() == 2) {
              // Ranged pull: shard interval [lo, hi) in store stripes.
              const int lo = m.ints[0], hi = m.ints[1];
              if (lo < 0 || hi <= lo || hi > store_.num_shards())
                  return;  // Malformed range; drop, peer will time out.
              const auto [begin, _lo_end] = Postoffice::shard_range(
                  lo, store_.dim(), store_.num_shards());
              const auto [_hi_begin, end] = Postoffice::shard_range(
                  hi - 1, store_.dim(), store_.num_shards());
              resp.ints = {static_cast<int32_t>(begin),
                           static_cast<int32_t>(end)};
              resp.floats.assign(full.begin() + static_cast<long>(begin),
                                 full.begin() + static_cast<long>(end));
          } else {
              resp.ints = {0, static_cast<int32_t>(store_.dim())};
              resp.floats = std::move(full);
              if (cfg_.compression.enabled()) {
                  std::lock_guard<std::mutex> lk(round_mu_);
                  pull_cache_[{peer->id, m.seq}] = resp.floats;
              }
          }
          peer->van->send(std::move(resp));
          return;
      }
      case MsgType::Push: {
          if (m.floats.size() != store_.dim() || m.ints.size() != 3 ||
              m.doubles.size() != 2) {
              std::fprintf(stderr,
                           "[net] worker %d push malformed "
                           "(%zu floats, dim %zu); dropping\n",
                           peer->id, m.floats.size(), store_.dim());
              return;
          }
          bool accept = false;
          {
              std::lock_guard<std::mutex> lk(round_mu_);
              auto it = outstanding_.find(peer->id);
              if (round_active_ && m.round == current_round_ &&
                  it != outstanding_.end()) {
                  auto &seqs = it->second;
                  auto sit = std::find(seqs.begin(), seqs.end(), m.seq);
                  if (sit != seqs.end()) {
                      seqs.erase(sit);
                      accept = true;
                  }
              }
          }
          if (!accept)
              return;  // Late push from an evicted/stale round.
          LocalUpdate u;
          u.device_id = m.ints[0];
          u.num_steps = m.ints[1];
          u.num_samples = m.ints[2];
          u.train_loss = m.doubles[0];
          u.train_acc = m.doubles[1];
          u.weights = std::move(m.floats);
          agg_.push(PsPush{std::move(u), m.seq, m.clock});
          {
              std::lock_guard<std::mutex> lk(round_mu_);
              ++arrived_;
              round_cv_.notify_all();
          }
          return;
      }
      case MsgType::PushDelta: {
          // Full validation before any commit: every malformed frame —
          // wrong section sizes, unknown codec, truncated scale table,
          // NaN scales, bad sparse indices — is a typed drop, never a
          // crash. Late deltas from evicted rounds fall out of the
          // acceptance check exactly like raw pushes.
          std::vector<float> delta;
          const WireStatus ws = decode_push_delta(m, store_.dim(), &delta);
          if (ws != WireStatus::Ok) {
              std::fprintf(stderr,
                           "[net] worker %d push-delta rejected (%s); "
                           "dropping\n",
                           peer->id, wire_status_name(ws));
              return;
          }
          bool accept = false;
          std::vector<float> pulled;
          {
              std::lock_guard<std::mutex> lk(round_mu_);
              auto it = outstanding_.find(peer->id);
              if (round_active_ && m.round == current_round_ &&
                  it != outstanding_.end()) {
                  auto &seqs = it->second;
                  auto sit = std::find(seqs.begin(), seqs.end(), m.seq);
                  if (sit != seqs.end()) {
                      seqs.erase(sit);
                      accept = true;
                      auto pit = pull_cache_.find({peer->id, m.seq});
                      if (pit != pull_cache_.end()) {
                          pulled = std::move(pit->second);
                          pull_cache_.erase(pit);
                      }
                  }
              }
          }
          if (!accept)
              return;  // Late delta from an evicted/stale round.
          if (pulled.size() != store_.dim()) {
              // The job was claimed but its pull base is gone (e.g. a
              // codec mismatch between worker and server config); the
              // update is unreconstructable. Account it as lost so the
              // round completes instead of hanging on this seq.
              std::fprintf(stderr,
                           "[net] worker %d push-delta seq %llu has no "
                           "cached pull base; counting as lost\n",
                           peer->id,
                           static_cast<unsigned long long>(m.seq));
              std::lock_guard<std::mutex> lk(round_mu_);
              ++lost_;
              round_cv_.notify_all();
              return;
          }
          LocalUpdate u;
          u.device_id = m.ints[0];
          u.num_steps = m.ints[1];
          u.num_samples = m.ints[2];
          u.train_loss = m.doubles[0];
          u.train_acc = m.doubles[1];
          // Reconstruct the absolute weights the worker trained to:
          // the exact pulled payload plus the decoded delta — the same
          // floats the in-process runtime's decode-before-commit hands
          // its aggregator.
          u.weights = std::move(pulled);
          kernels::vadd(u.weights.size(), delta.data(), u.weights.data());
          agg_.push(PsPush{std::move(u), m.seq, m.clock});
          {
              std::lock_guard<std::mutex> lk(round_mu_);
              ++arrived_;
              round_cv_.notify_all();
          }
          return;
      }
      case MsgType::BarrierAck: {
          po_.barrier_ack(peer->id, m.seq);
          std::lock_guard<std::mutex> lk(round_mu_);
          barrier_cv_.notify_all();
          return;
      }
      case MsgType::Bye: {
          po_.mark_left(peer->id);
          // A leave with jobs in flight still evicts them — the work
          // is gone either way; Left just records it was voluntary.
          evict_node(peer->id, "left", 0);
          return;
      }
      default:
          return;  // Worker-bound types are ignored on the server.
    }
}

bool
ClusterServer::send_to(int id, Message m)
{
    if (id < 1 || id > static_cast<int>(peers_.size()))
        return false;
    return peers_[static_cast<size_t>(id - 1)]->van->send(std::move(m));
}

void
ClusterServer::evict_node(int id, const char *why, int silent_ms)
{
    size_t evicted = 0;
    {
        std::lock_guard<std::mutex> lk(round_mu_);
        auto it = outstanding_.find(id);
        if (it != outstanding_.end()) {
            evicted = it->second.size();
            lost_ += static_cast<int>(evicted);
            outstanding_.erase(it);
        }
        for (auto pit = pull_cache_.begin(); pit != pull_cache_.end();) {
            if (pit->first.first == id)
                pit = pull_cache_.erase(pit);
            else
                ++pit;
        }
        // Account before waking the round waiter: run_round returns as
        // soon as the notify lands, and callers read dead_evictions()
        // right after.
        dead_evictions_ += evicted;
        round_cv_.notify_all();
        barrier_cv_.notify_all();
    }
    std::fprintf(stderr,
                 "[net] worker %d gone (%s%s); evicting %zu in-flight "
                 "job%s as stale\n",
                 id, why,
                 silent_ms > 0 ?
                     (" after " + std::to_string(silent_ms) + " ms").c_str() :
                     "",
                 evicted, evicted == 1 ? "" : "s");
}

PsRoundStats
ClusterServer::run_round(const std::vector<ClusterJob> &jobs, uint64_t round)
{
    const int n = static_cast<int>(jobs.size());
    PsRoundStats stats;
    if (n == 0)
        return stats;
    const std::vector<int> ids = po_.alive_workers();
    if (ids.empty()) {
        std::fprintf(stderr,
                     "[net] round %llu: no alive workers; evicting all %d "
                     "jobs\n",
                     static_cast<unsigned long long>(round), n);
        stats.evicted = n;
        dead_evictions_ += static_cast<uint64_t>(n);
        return stats;
    }

    agg_.begin_round(n);
    std::map<int, std::vector<int32_t>> assign;  // node -> [dev, seq, ...].
    {
        std::lock_guard<std::mutex> lk(round_mu_);
        round_active_ = true;
        current_round_ = round;
        expected_ = n;
        arrived_ = 0;
        lost_ = 0;
        outstanding_.clear();
        pull_cache_.clear();
        for (int i = 0; i < n; ++i) {
            const int w = ids[static_cast<size_t>(i) % ids.size()];
            outstanding_[w].push_back(static_cast<uint64_t>(i));
            auto &list = assign[w];
            list.push_back(jobs[static_cast<size_t>(i)].device_id);
            list.push_back(i);
        }
    }
    for (auto &[w, list] : assign) {
        Message m;
        m.type = MsgType::RoundAssign;
        m.from = Postoffice::kServerId;
        m.round = round;
        m.ints = std::move(list);
        if (!send_to(w, std::move(m)) && po_.mark_dead(w))
            evict_node(w, "send failed", 0);
    }

    {
        std::unique_lock<std::mutex> lk(round_mu_);
        const auto complete = [&] { return arrived_ + lost_ >= expected_; };
        if (cfg_.net.round_timeout_ms > 0) {
            if (!round_cv_.wait_for(
                    lk,
                    std::chrono::milliseconds(cfg_.net.round_timeout_ms),
                    complete)) {
                // Deadline backstop: whoever still owes jobs is a
                // straggler beyond tolerance — declare dead, evict.
                std::vector<int> late;
                for (const auto &[w, seqs] : outstanding_)
                    if (!seqs.empty())
                        late.push_back(w);
                lk.unlock();
                for (int w : late)
                    if (po_.mark_dead(w))
                        evict_node(w, "round deadline", 0);
                lk.lock();
                round_cv_.wait(lk, complete);
            }
        } else {
            round_cv_.wait(lk, complete);
        }
        round_active_ = false;
        stats = agg_.flush();
        stats.evicted += lost_;
    }
    return stats;
}

bool
ClusterServer::barrier(int timeout_ms)
{
    const uint64_t id = po_.open_barrier();
    for (int w : po_.alive_workers()) {
        Message m;
        m.type = MsgType::Barrier;
        m.from = Postoffice::kServerId;
        m.seq = id;
        send_to(w, std::move(m));
    }
    std::unique_lock<std::mutex> lk(round_mu_);
    return barrier_cv_.wait_for(lk, std::chrono::milliseconds(timeout_ms),
                                [&] { return po_.barrier_done(); });
}

uint64_t
ClusterServer::push_bytes_received() const
{
    uint64_t bytes = 0;
    for (const auto &p : peers_) {
        bytes += p->van->bytes_received(MsgType::Push) +
            p->van->bytes_received(MsgType::PushDelta);
    }
    return bytes;
}

void
ClusterServer::shutdown()
{
    if (shut_)
        return;
    shut_ = true;

    // Sync point first so workers drain their queues before the
    // Shutdown lands; a dead worker shrinks the quorum, and a timeout
    // just means we proceed to the hard stop.
    if (!peers_.empty())
        barrier(std::max(1000, cfg_.net.heartbeat_timeout_ms));

    shutting_down_ = true;
    for (auto &p : peers_) {
        Message m;
        m.type = MsgType::Shutdown;
        m.from = Postoffice::kServerId;
        p->van->send(std::move(m));
    }
    if (listener_)
        listener_->close();
    for (auto &p : peers_)
        p->van->close();
    for (auto &p : peers_)
        if (p->rx.joinable())
            p->rx.join();
    monitor_.stop();
}

} // namespace autofl::net
