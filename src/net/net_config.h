/**
 * @file
 * Knobs of the distributed parameter-server transport. Kept free of
 * other net/ includes so ps/ps_config.h can embed a NetConfig without
 * pulling the socket layer into every translation unit.
 */
#ifndef AUTOFL_NET_NET_CONFIG_H
#define AUTOFL_NET_NET_CONFIG_H

#include <string>

namespace autofl {

/** Distributed-runtime configuration (disabled unless listen is set). */
struct NetConfig
{
    /**
     * Transport selector. "" keeps the in-process runtime (the zero-copy
     * fast case). "loopback" runs server and workers as nodes of one
     * process over deterministic in-memory Vans. "unix:/path" and
     * "tcp:host:port" listen on a real socket for worker processes.
     */
    std::string listen;

    /** Worker nodes: spawned threads (loopback) or awaited joins. */
    int workers = 4;

    /**
     * Worker launch command (socket schemes only). When non-empty,
     * FlSystem forks and execs it once per worker with AUTOFL_NET_ADDR
     * set to the listen address; empty means workers are launched
     * externally and the server just waits for them to join.
     */
    std::string spawn_cmd;

    /** Worker heartbeat period. */
    int heartbeat_interval_ms = 250;

    /**
     * Silence threshold after which the Monitor declares a node dead
     * and its in-flight jobs are evicted (the staleness-eviction path).
     */
    int heartbeat_timeout_ms = 2000;

    /** Worker dial attempts (workers race the server's bind). */
    int connect_retry = 40;

    /** Delay between dial attempts. */
    int connect_retry_delay_ms = 50;

    /** Deadline for the expected workers to join at startup. */
    int join_timeout_ms = 20000;

    /**
     * Hard per-round deadline: outstanding jobs past it are evicted and
     * their workers declared dead (stragglers that heartbeat but never
     * push). 0 disables the backstop.
     */
    int round_timeout_ms = 120000;

    /** Whether the distributed runtime is selected at all. */
    bool enabled() const { return !listen.empty(); }

    /**
     * Validate the knobs, throwing std::invalid_argument with an
     * actionable message. @p who names the owning config in messages
     * (e.g. "FlSystemConfig.ps.net").
     */
    void validate(const char *who) const;
};

} // namespace autofl

#endif // AUTOFL_NET_NET_CONFIG_H
