/**
 * @file
 * Wire format of the distributed parameter-server transport: one framed,
 * versioned message layout shared by every Van implementation.
 *
 * A frame is a 12-byte header — magic, version, type, payload length —
 * followed by a self-describing payload: the routing metadata (sender,
 * round, seq, clock) and five typed sections (i32 / f32 / f64 / text /
 * bytes) whose declared element counts must tile the payload exactly.
 * Integers are little-endian; float sections are IEEE-754 bit images,
 * so weights cross the wire bit-exact (the determinism contract depends
 * on it). Version 2 added the bytes section and the PushDelta message
 * carrying compressed client deltas (ps/compression.h); version-1 peers
 * are rejected with BadVersion.
 *
 * Parsing never throws, never over-reads and never allocates from a
 * length it has not validated: every malformed frame maps to a typed
 * WireStatus so a hostile or truncated peer produces an error, not a
 * crash or a hang.
 */
#ifndef AUTOFL_NET_WIRE_H
#define AUTOFL_NET_WIRE_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "ps/compression.h"

namespace autofl::net {

using autofl::EncodedDelta;

/**
 * Message taxonomy of the star topology (one server, N workers).
 *
 * Control plane: Join/JoinAck (membership handshake, assigns the node
 * id), Heartbeat/HeartbeatAck (liveness, see Monitor), Barrier/
 * BarrierAck (membership-wide sync point), Bye (graceful leave),
 * Shutdown (server tells workers to exit).
 *
 * Data plane: RoundAssign (server -> worker: device/seq job pairs),
 * PullReq/PullResp (worker pulls a weight-shard range; the response
 * carries the aggregator clock the staleness bound is measured
 * against), Push (worker returns its trained update with provenance),
 * PushDelta (the compressed form: an encoded delta against the pulled
 * weights — see ps/compression.h — with the same provenance).
 */
enum class MsgType : uint16_t {
    Join = 1,
    JoinAck,
    Heartbeat,
    HeartbeatAck,
    RoundAssign,
    PullReq,
    PullResp,
    Push,
    Barrier,
    BarrierAck,
    Bye,
    Shutdown,
    PushDelta,
};

constexpr uint16_t kMinMsgType = 1;
constexpr uint16_t kMaxMsgType = static_cast<uint16_t>(MsgType::PushDelta);

/** Display name ("Push", "JoinAck", ...). */
const char *msg_type_name(MsgType t);

/** One transport message: fixed routing metadata + typed payloads. */
struct Message
{
    MsgType type = MsgType::Heartbeat;
    int32_t from = -1;   ///< Sender node id (-1 before JoinAck).
    uint64_t round = 0;  ///< FL round the message belongs to.
    uint64_t seq = 0;    ///< Job sequence / request id / barrier id.
    uint64_t clock = 0;  ///< Aggregator clock (pull staleness reference).

    std::vector<int32_t> ints;    ///< Job pairs, shard ranges, counts.
    std::vector<float> floats;    ///< Weight payloads (bit-exact).
    std::vector<double> doubles;  ///< Update provenance (loss, acc).
    std::string text;             ///< Diagnostics (join names, errors).
    std::vector<uint8_t> bytes;   ///< Packed codec payloads (PushDelta).
};

/** Typed outcome of parsing bytes as a frame. */
enum class WireStatus {
    Ok,          ///< A full valid frame was consumed.
    NeedMore,    ///< Truncated: a valid prefix, more bytes required.
    BadMagic,    ///< First four bytes are not the protocol magic.
    BadVersion,  ///< Frame speaks a protocol version we do not.
    BadType,     ///< Message type outside the known taxonomy.
    Oversized,   ///< Declared payload exceeds kMaxPayloadBytes.
    BadPayload,  ///< Section counts do not tile the payload exactly.
    BadCodec,    ///< PushDelta sections are no valid encoded delta.
};

/** Display name ("Ok", "BadMagic", ...). */
const char *wire_status_name(WireStatus s);

constexpr uint32_t kWireMagic = 0x41465031u;  // "AFP1" (AutoFL PS).
constexpr uint16_t kWireVersion = 2;  // v2: bytes section + PushDelta.
constexpr size_t kWireHeaderBytes = 12;

/**
 * Payload ceiling: large enough for any model this repo trains (weights
 * are ~1e5 floats), small enough that a corrupt or hostile length field
 * cannot drive a multi-gigabyte allocation.
 */
constexpr uint32_t kMaxPayloadBytes = 256u << 20;

/** Serialize @p m into one contiguous frame (header + payload). */
std::vector<uint8_t> frame_message(const Message &m);

/**
 * Exact frame size frame_message(m) would produce, without
 * serializing — the loopback Van's byte accounting.
 */
size_t wire_frame_bytes(const Message &m);

/**
 * Validate a frame header. On Ok, @p payload_len receives the declared
 * payload length (already bounded by kMaxPayloadBytes). @p len below
 * kWireHeaderBytes is NeedMore. Socket receivers use this to size the
 * payload read before any allocation.
 */
WireStatus check_header(const uint8_t *data, size_t len,
                        uint32_t *payload_len);

/**
 * Parse one frame from @p data. On Ok, @p out holds the message and
 * @p consumed the frame's byte length. Any other status leaves @p out
 * untouched; NeedMore means a longer prefix may still parse, every
 * other status is a permanent rejection of this frame.
 */
WireStatus parse_frame(const uint8_t *data, size_t len, Message *out,
                       size_t *consumed);

// ------------------------------------------------ PushDelta mapping
// A PushDelta message carries an EncodedDelta plus the Push message's
// provenance: ints = {device, steps, samples, codec, n, k, quant_range},
// doubles = {loss, acc}, floats = the Int8 scale table, bytes = the
// packed codec payload. Compression::None never ships as PushDelta —
// uncompressed pushes keep the plain Push message, bit-for-bit.

/** ints section length of a PushDelta message. */
constexpr size_t kPushDeltaInts = 7;

/** Build a PushDelta message (type/sections only; routing metadata —
 *  from/round/seq/clock — is the caller's). */
Message make_push_delta(int device, int steps, int samples, double loss,
                        double acc, EncodedDelta e);

/**
 * Validate a PushDelta's sections against the expected model dimension
 * and decode the delta into @p delta. Every malformed encoding — wrong
 * section sizes, unknown codec id, truncated scale table, NaN scales,
 * counts exceeding a range, out-of-range sparse indices — maps to
 * BadCodec (never a crash); a non-PushDelta type is BadType.
 */
WireStatus decode_push_delta(const Message &m, size_t dim,
                             std::vector<float> *delta);

/** Validation-only decode_push_delta (fuzzing / gatekeeping). */
WireStatus validate_push_delta(const Message &m, size_t dim);

} // namespace autofl::net

#endif // AUTOFL_NET_WIRE_H
