#include "process.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>

namespace autofl::net {

namespace {

std::vector<std::string>
split_command(const std::string &cmd)
{
    std::vector<std::string> out;
    std::istringstream ss(cmd);
    std::string tok;
    while (ss >> tok)
        out.push_back(tok);
    return out;
}

} // namespace

WorkerProcessGroup::~WorkerProcessGroup()
{
    for (size_t i = 0; i < pids_.size(); ++i) {
        if (pids_[i] <= 0)
            continue;
        ::kill(pids_[i], SIGKILL);
        ::waitpid(pids_[i], nullptr, 0);
        pids_[i] = -1;
    }
}

int
WorkerProcessGroup::spawn(int n, const std::string &cmd,
                          const std::string &addr)
{
    const std::vector<std::string> args = split_command(cmd);
    if (args.empty()) {
        std::fprintf(stderr, "[net] spawn: empty command\n");
        return 0;
    }
    std::vector<char *> argv;
    argv.reserve(args.size() + 1);
    for (const std::string &a : args)
        argv.push_back(const_cast<char *>(a.c_str()));
    argv.push_back(nullptr);

    int spawned = 0;
    for (int i = 0; i < n; ++i) {
        const pid_t pid = ::fork();
        if (pid < 0) {
            std::fprintf(stderr, "[net] fork failed: %s\n",
                         std::strerror(errno));
            break;
        }
        if (pid == 0) {
            // Child: hand over the rendezvous via the environment and
            // exec. _exit (not exit) on failure — never unwind the
            // parent's atexit state from a failed child.
            ::setenv("AUTOFL_NET_ADDR", addr.c_str(), 1);
            ::setenv("AUTOFL_NET_WORKER", std::to_string(i).c_str(), 1);
            ::execvp(argv[0], argv.data());
            std::fprintf(stderr, "[net] execvp %s failed: %s\n", argv[0],
                         std::strerror(errno));
            ::_exit(127);
        }
        pids_.push_back(pid);
        ++spawned;
    }
    exits_.resize(pids_.size());
    return spawned;
}

int
WorkerProcessGroup::live_count() const
{
    int n = 0;
    for (pid_t p : pids_)
        if (p > 0)
            ++n;
    return n;
}

bool
WorkerProcessGroup::kill_worker(int index, int sig)
{
    if (index < 0 || index >= static_cast<int>(pids_.size()))
        return false;
    const pid_t pid = pids_[static_cast<size_t>(index)];
    if (pid <= 0)
        return false;
    return ::kill(pid, sig) == 0;
}

std::vector<WorkerExit>
WorkerProcessGroup::wait_all(int timeout_ms)
{
    const auto deadline = std::chrono::steady_clock::now() +
        std::chrono::milliseconds(timeout_ms);
    const auto reap = [this](size_t i, int flags) {
        const pid_t pid = pids_[i];
        int status = 0;
        const pid_t r = ::waitpid(pid, &status, flags);
        if (r != pid)
            return false;
        WorkerExit &e = exits_[i];
        e.pid = pid;
        if (WIFEXITED(status)) {
            e.exited = true;
            e.exit_code = WEXITSTATUS(status);
        } else if (WIFSIGNALED(status)) {
            e.exited = false;
            e.term_signal = WTERMSIG(status);
        }
        pids_[i] = -1;
        return true;
    };

    while (live_count() > 0 &&
           std::chrono::steady_clock::now() < deadline) {
        bool progressed = false;
        for (size_t i = 0; i < pids_.size(); ++i)
            if (pids_[i] > 0 && reap(i, WNOHANG))
                progressed = true;
        if (!progressed && live_count() > 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }

    // Deadline: anything still alive is wedged — force it down so no
    // orphan outlives the run, and record that we had to.
    for (size_t i = 0; i < pids_.size(); ++i) {
        if (pids_[i] <= 0)
            continue;
        std::fprintf(stderr,
                     "[net] worker pid %d missed the exit deadline; "
                     "sending SIGKILL\n",
                     static_cast<int>(pids_[i]));
        ::kill(pids_[i], SIGKILL);
        reap(i, 0);
        exits_[i].forced = true;
    }
    return exits_;
}

} // namespace autofl::net
