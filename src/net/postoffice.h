/**
 * @file
 * Postoffice: the cluster's membership book. Tracks node identity
 * (server id 0, workers 1..N in join order), liveness transitions
 * (joined -> alive -> left/dead), barrier bookkeeping, and the
 * shard-range routing arithmetic (identical to ShardedStore's layout,
 * so a ranged pull addresses exactly the bytes a store shard owns).
 *
 * The Postoffice records state; it decides nothing. The Monitor turns
 * heartbeat silence into mark_dead calls, and the ClusterServer turns
 * those into job evictions.
 */
#ifndef AUTOFL_NET_POSTOFFICE_H
#define AUTOFL_NET_POSTOFFICE_H

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace autofl::net {

/** Node role in the star topology. */
enum class NodeRole { Server, Worker };

/** Liveness of one member. */
enum class NodeState {
    Alive,  ///< Joined and heartbeating.
    Left,   ///< Sent Bye; a clean departure.
    Dead,   ///< Declared failed by the Monitor or a closed transport.
};

/** One member's book entry. */
struct NodeInfo
{
    int id = -1;
    NodeRole role = NodeRole::Worker;
    NodeState state = NodeState::Alive;
    std::string name;  ///< Diagnostic label from the Join message.
};

/** Membership registry; all methods are thread-safe. */
class Postoffice
{
  public:
    static constexpr int kServerId = 0;

    /** Register a joining worker; returns its assigned id (1-based). */
    int add_worker(std::string name);

    /** Record a clean leave (Bye). No-op once dead. */
    void mark_left(int id);

    /**
     * Record a failure. Returns true on the Alive -> Dead transition
     * (false when already dead/left/unknown), so eviction runs once
     * even when the monitor and a closed transport race to report it.
     */
    bool mark_dead(int id);

    bool is_alive(int id) const;

    /** Ids of alive workers, ascending (deterministic routing order). */
    std::vector<int> alive_workers() const;

    int alive_count() const;

    /** Workers that ever joined. */
    int total_joined() const;

    /** Snapshot of the whole book (diagnostics, tests). */
    std::vector<NodeInfo> members() const;

    // ------------------------------------------------------- barrier --

    /**
     * Open a new barrier generation and return its id. Acks from the
     * previous generation no longer count.
     */
    uint64_t open_barrier();

    /**
     * Record @p id's ack for barrier @p barrier_id. Returns true when
     * every currently-alive worker has acked — deaths during a barrier
     * shrink the quorum rather than wedging it.
     */
    bool barrier_ack(int id, uint64_t barrier_id);

    /** Whether the open barrier is satisfied by the alive quorum. */
    bool barrier_done() const;

    // ------------------------------------------------------- routing --

    /**
     * Flat-index range [begin, end) of shard @p s when @p dim weights
     * are split into @p num_shards contiguous shards — the same
     * arithmetic as ShardedStore (first dim % num_shards shards get one
     * extra element), so ranged pulls align with store stripes.
     */
    static std::pair<size_t, size_t> shard_range(int s, size_t dim,
                                                 int num_shards);

  private:
    mutable std::mutex mu_;
    std::vector<NodeInfo> workers_;  ///< Index i holds node id i+1.
    uint64_t barrier_id_ = 0;
    std::vector<int> barrier_acks_;

    bool barrier_done_locked() const;
};

} // namespace autofl::net

#endif // AUTOFL_NET_POSTOFFICE_H
