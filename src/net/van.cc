#include "van.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>

namespace autofl::net {

const char *
recv_status_name(RecvStatus s)
{
    switch (s) {
      case RecvStatus::Ok:
        return "Ok";
      case RecvStatus::Timeout:
        return "Timeout";
      case RecvStatus::Closed:
        return "Closed";
      case RecvStatus::Error:
        return "Error";
    }
    return "unknown";
}

// -------------------------------------------------------- loopback van --

namespace {

/** Per-MsgType byte counters (index 0 unused; bad types dropped). */
struct TypeCounters
{
    std::atomic<uint64_t> v[kMaxMsgType + 1] = {};

    void add(MsgType t, uint64_t b)
    {
        const uint16_t i = static_cast<uint16_t>(t);
        if (i >= kMinMsgType && i <= kMaxMsgType)
            v[i].fetch_add(b, std::memory_order_relaxed);
    }

    uint64_t get(MsgType t) const
    {
        const uint16_t i = static_cast<uint16_t>(t);
        return (i >= kMinMsgType && i <= kMaxMsgType)
                   ? v[i].load(std::memory_order_relaxed)
                   : 0;
    }
};

/** One direction of a loopback pair: a FIFO of moved-in messages. */
struct LoopbackQueue
{
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> q;
    bool closed = false;
    uint64_t bytes = 0;  ///< Sum of would-be frame sizes.
};

class LoopbackVan : public Transport
{
  public:
    LoopbackVan(std::shared_ptr<LoopbackQueue> tx,
                std::shared_ptr<LoopbackQueue> rx)
        : tx_(std::move(tx)), rx_(std::move(rx))
    {
    }

    ~LoopbackVan() override { close(); }

    bool send(Message m) override
    {
        const size_t frame = wire_frame_bytes(m);
        const MsgType type = m.type;
        std::lock_guard<std::mutex> lk(tx_->mu);
        if (tx_->closed)
            return false;
        tx_->bytes += frame;
        sent_ += frame;
        sent_by_type_.add(type, frame);
        tx_->q.push_back(std::move(m));
        tx_->cv.notify_one();
        return true;
    }

    RecvStatus recv(Message *out, int timeout_ms) override
    {
        std::unique_lock<std::mutex> lk(rx_->mu);
        const auto ready = [&] { return !rx_->q.empty() || rx_->closed; };
        if (timeout_ms < 0) {
            rx_->cv.wait(lk, ready);
        } else if (!rx_->cv.wait_for(
                       lk, std::chrono::milliseconds(timeout_ms), ready)) {
            return RecvStatus::Timeout;
        }
        if (rx_->q.empty())
            return RecvStatus::Closed;
        *out = std::move(rx_->q.front());
        rx_->q.pop_front();
        const size_t frame = wire_frame_bytes(*out);
        received_ += frame;
        received_by_type_.add(out->type, frame);
        return RecvStatus::Ok;
    }

    void close() override
    {
        for (auto *q : {tx_.get(), rx_.get()}) {
            std::lock_guard<std::mutex> lk(q->mu);
            q->closed = true;
            q->cv.notify_all();
        }
    }

    const char *kind() const override { return "loopback"; }
    uint64_t bytes_sent() const override { return sent_; }
    uint64_t bytes_received() const override { return received_; }
    uint64_t bytes_sent(MsgType t) const override
    {
        return sent_by_type_.get(t);
    }
    uint64_t bytes_received(MsgType t) const override
    {
        return received_by_type_.get(t);
    }

  private:
    std::shared_ptr<LoopbackQueue> tx_, rx_;
    std::atomic<uint64_t> sent_{0}, received_{0};
    TypeCounters sent_by_type_, received_by_type_;
};

} // namespace

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
make_loopback_pair()
{
    auto a2b = std::make_shared<LoopbackQueue>();
    auto b2a = std::make_shared<LoopbackQueue>();
    return {std::make_unique<LoopbackVan>(a2b, b2a),
            std::make_unique<LoopbackVan>(b2a, a2b)};
}

// -------------------------------------------------------------- address --

NetAddress
NetAddress::parse(const std::string &addr)
{
    NetAddress a;
    if (addr == "loopback") {
        a.scheme = Scheme::Loopback;
        return a;
    }
    if (addr.rfind("unix:", 0) == 0) {
        a.path = addr.substr(5);
        if (a.path.empty() || a.path.size() >= sizeof(sockaddr_un{}.sun_path))
            return NetAddress{};
        a.scheme = Scheme::Unix;
        return a;
    }
    if (addr.rfind("tcp:", 0) == 0) {
        const std::string rest = addr.substr(4);
        const size_t colon = rest.rfind(':');
        if (colon == std::string::npos || colon == 0)
            return NetAddress{};
        a.host = rest.substr(0, colon);
        try {
            a.port = std::stoi(rest.substr(colon + 1));
        } catch (const std::exception &) {
            return NetAddress{};
        }
        if (a.port < 1 || a.port > 65535)
            return NetAddress{};
        a.scheme = Scheme::Tcp;
        return a;
    }
    return NetAddress{};
}

// ------------------------------------------------------------ socket van --

namespace {

/** Blocking write of the whole buffer; false once the peer is gone. */
bool
write_all(int fd, const uint8_t *data, size_t len)
{
    while (len > 0) {
        const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        len -= static_cast<size_t>(n);
    }
    return true;
}

class SocketVan : public Transport
{
  public:
    SocketVan(int fd, const char *kind) : fd_(fd), kind_(kind) {}

    ~SocketVan() override { close(); }

    bool send(Message m) override
    {
        const std::vector<uint8_t> frame = frame_message(m);
        std::lock_guard<std::mutex> lk(send_mu_);
        if (fd_ < 0)
            return false;
        if (!write_all(fd_, frame.data(), frame.size()))
            return false;
        sent_ += frame.size();
        sent_by_type_.add(m.type, frame.size());
        return true;
    }

    RecvStatus recv(Message *out, int timeout_ms) override
    {
        // Wait for the first header byte under the caller's deadline;
        // once a frame has started, the rest is read under the I/O
        // deadline (a peer that stalls mid-frame is broken, not idle).
        uint8_t header[kWireHeaderBytes];
        RecvStatus rs = read_exact(header, 1, timeout_ms);
        if (rs != RecvStatus::Ok)
            return rs;
        rs = read_exact(header + 1, sizeof(header) - 1, kIoTimeoutMs);
        if (rs != RecvStatus::Ok)
            return fail(rs == RecvStatus::Timeout ? "stalled mid-header" :
                                                    "peer closed mid-header");

        uint32_t payload_len = 0;
        const WireStatus hs = check_header(header, sizeof(header),
                                           &payload_len);
        if (hs != WireStatus::Ok)
            return fail(wire_status_name(hs));

        std::vector<uint8_t> frame(kWireHeaderBytes + payload_len);
        std::memcpy(frame.data(), header, sizeof(header));
        rs = read_exact(frame.data() + kWireHeaderBytes, payload_len,
                        kIoTimeoutMs);
        if (rs != RecvStatus::Ok)
            return fail(rs == RecvStatus::Timeout ? "stalled mid-frame" :
                                                    "peer closed mid-frame");

        size_t consumed = 0;
        const WireStatus ps = parse_frame(frame.data(), frame.size(), out,
                                          &consumed);
        if (ps != WireStatus::Ok)
            return fail(wire_status_name(ps));
        received_ += frame.size();
        received_by_type_.add(out->type, frame.size());
        return RecvStatus::Ok;
    }

    void close() override
    {
        std::lock_guard<std::mutex> lk(send_mu_);
        if (fd_ >= 0) {
            ::shutdown(fd_, SHUT_RDWR);
            ::close(fd_);
            fd_ = -1;
        }
    }

    const char *kind() const override { return kind_; }
    uint64_t bytes_sent() const override { return sent_; }
    uint64_t bytes_received() const override { return received_; }
    uint64_t bytes_sent(MsgType t) const override
    {
        return sent_by_type_.get(t);
    }
    uint64_t bytes_received(MsgType t) const override
    {
        return received_by_type_.get(t);
    }

    std::string last_error() const override
    {
        std::lock_guard<std::mutex> lk(err_mu_);
        return err_;
    }

  private:
    /** A frame stalled longer than this is a broken peer, not an idle one. */
    static constexpr int kIoTimeoutMs = 10000;

    RecvStatus fail(const std::string &why)
    {
        {
            std::lock_guard<std::mutex> lk(err_mu_);
            err_ = why;
        }
        close();
        return RecvStatus::Error;
    }

    /** Read exactly @p len bytes; Timeout applies to each poll wait. */
    RecvStatus read_exact(uint8_t *data, size_t len, int timeout_ms)
    {
        while (len > 0) {
            const int fd = fd_;
            if (fd < 0)
                return RecvStatus::Closed;
            pollfd pfd{fd, POLLIN, 0};
            const int pr = ::poll(&pfd, 1, timeout_ms);
            if (pr == 0)
                return RecvStatus::Timeout;
            if (pr < 0) {
                if (errno == EINTR)
                    continue;
                return RecvStatus::Closed;
            }
            const ssize_t n = ::recv(fd, data, len, 0);
            if (n == 0)
                return RecvStatus::Closed;
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return RecvStatus::Closed;
            }
            data += n;
            len -= static_cast<size_t>(n);
        }
        return RecvStatus::Ok;
    }

    std::atomic<int> fd_;
    const char *kind_;
    std::mutex send_mu_;  ///< Frames from concurrent senders never interleave.
    mutable std::mutex err_mu_;
    std::string err_;
    std::atomic<uint64_t> sent_{0}, received_{0};
    TypeCounters sent_by_type_, received_by_type_;
};

int
make_socket_fd(const NetAddress &addr, std::string *err)
{
    const int domain =
        addr.scheme == NetAddress::Scheme::Unix ? AF_UNIX : AF_INET;
    const int fd = ::socket(domain, SOCK_STREAM, 0);
    if (fd < 0 && err)
        *err = std::string("socket: ") + std::strerror(errno);
    return fd;
}

/** Fill a sockaddr for @p addr; returns its size (0 on failure). */
socklen_t
fill_sockaddr(const NetAddress &addr, sockaddr_storage *ss, std::string *err)
{
    std::memset(ss, 0, sizeof(*ss));
    if (addr.scheme == NetAddress::Scheme::Unix) {
        auto *sun = reinterpret_cast<sockaddr_un *>(ss);
        sun->sun_family = AF_UNIX;
        std::strncpy(sun->sun_path, addr.path.c_str(),
                     sizeof(sun->sun_path) - 1);
        return sizeof(sockaddr_un);
    }
    auto *sin = reinterpret_cast<sockaddr_in *>(ss);
    sin->sin_family = AF_INET;
    sin->sin_port = htons(static_cast<uint16_t>(addr.port));
    if (::inet_pton(AF_INET, addr.host.c_str(), &sin->sin_addr) != 1) {
        if (err)
            *err = "unresolvable host '" + addr.host +
                "' (tcp addresses take a literal IPv4, e.g. 127.0.0.1)";
        return 0;
    }
    return sizeof(sockaddr_in);
}

void
tune_stream_fd(int fd, const NetAddress &addr)
{
    if (addr.scheme == NetAddress::Scheme::Tcp) {
        // The round protocol is request/response; Nagle would add a
        // delayed-ack RTT to every pull and push.
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
}

} // namespace

// -------------------------------------------------------------- listener --

Listener::Listener(int fd, NetAddress addr) : fd_(fd), addr_(std::move(addr))
{
}

Listener::~Listener()
{
    close();
}

std::unique_ptr<Listener>
Listener::listen(const NetAddress &addr, std::string *err)
{
    if (!addr.socket_scheme()) {
        if (err)
            *err = "listen needs a unix: or tcp: address";
        return nullptr;
    }
    if (addr.scheme == NetAddress::Scheme::Unix)
        ::unlink(addr.path.c_str());

    const int fd = make_socket_fd(addr, err);
    if (fd < 0)
        return nullptr;
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_storage ss;
    const socklen_t slen = fill_sockaddr(addr, &ss, err);
    if (slen == 0 || ::bind(fd, reinterpret_cast<sockaddr *>(&ss), slen) < 0 ||
        ::listen(fd, 64) < 0) {
        if (err && err->empty())
            *err = std::string("bind/listen: ") + std::strerror(errno);
        ::close(fd);
        return nullptr;
    }
    return std::unique_ptr<Listener>(new Listener(fd, addr));
}

std::unique_ptr<Transport>
Listener::accept(int timeout_ms)
{
    const int fd = fd_;
    if (fd < 0)
        return nullptr;
    pollfd pfd{fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, timeout_ms);
    if (pr <= 0)
        return nullptr;
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0)
        return nullptr;
    tune_stream_fd(conn, addr_);
    return std::make_unique<SocketVan>(
        conn, addr_.scheme == NetAddress::Scheme::Unix ? "unix" : "tcp");
}

void
Listener::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
        if (addr_.scheme == NetAddress::Scheme::Unix)
            ::unlink(addr_.path.c_str());
    }
}

std::unique_ptr<Transport>
dial(const NetAddress &addr, int retries, int retry_delay_ms,
     std::string *err)
{
    if (!addr.socket_scheme()) {
        if (err)
            *err = "dial needs a unix: or tcp: address";
        return nullptr;
    }
    std::string last;
    for (int attempt = 0; attempt < std::max(1, retries); ++attempt) {
        if (attempt > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(retry_delay_ms));
        }
        const int fd = make_socket_fd(addr, &last);
        if (fd < 0)
            continue;
        sockaddr_storage ss;
        const socklen_t slen = fill_sockaddr(addr, &ss, &last);
        if (slen == 0) {
            ::close(fd);
            break;  // Unresolvable address: retrying cannot help.
        }
        if (::connect(fd, reinterpret_cast<sockaddr *>(&ss), slen) == 0) {
            tune_stream_fd(fd, addr);
            return std::make_unique<SocketVan>(
                fd,
                addr.scheme == NetAddress::Scheme::Unix ? "unix" : "tcp");
        }
        last = std::string("connect: ") + std::strerror(errno);
        ::close(fd);
    }
    if (err)
        *err = last.empty() ? "connect failed" : last;
    return nullptr;
}

} // namespace autofl::net
