/**
 * @file
 * Serving-plane configuration. Kept free of other serve/ includes so
 * fl/system.h and harness/experiment.h can embed a ServeConfig without
 * pulling in the ModelService machinery.
 */
#ifndef AUTOFL_SERVE_SERVE_CONFIG_H
#define AUTOFL_SERVE_SERVE_CONFIG_H

namespace autofl {

/** Configuration of the model-serving plane (src/serve/). */
struct ServeConfig
{
    /**
     * Rows per batched forward pass. Inference folds this many samples
     * into each layer call, so the Dense/LSTM projections run as one
     * GEMM instead of batch_size GEMV-shaped calls. 1 reproduces the
     * per-sample path (the bench's baseline). The default sits at the
     * cache knee: larger batches keep growing the GEMMs but push
     * conv activations out of L1/L2 (see BENCH_serve_throughput.json).
     */
    int batch_size = 16;

    /**
     * Inference worker slots. Each slot owns a scratch model whose
     * loaded weights are cached by snapshot identity, so repeated
     * queries against the same snapshot skip the weight reload. Also
     * the default evaluation fan-out.
     */
    int workers = 4;

    /**
     * How many epochs a cached SnapshotHandle may trail the latest
     * snapshot before ModelService::refresh() swaps it. 0 always
     * serves the freshest snapshot; a positive lag amortizes the
     * snapshot lookup across queries while training streams commits.
     */
    int max_snapshot_lag = 0;

    /**
     * Validate the knobs, throwing std::invalid_argument with an
     * actionable message. @p who names the owning config in messages
     * (e.g. "FlSystemConfig::serve").
     */
    void validate(const char *who) const;
};

} // namespace autofl

#endif // AUTOFL_SERVE_SERVE_CONFIG_H
