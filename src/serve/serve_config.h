/**
 * @file
 * Serving-plane configuration. Kept free of other serve/ includes so
 * fl/system.h and harness/experiment.h can embed a ServeConfig without
 * pulling in the ModelService machinery.
 */
#ifndef AUTOFL_SERVE_SERVE_CONFIG_H
#define AUTOFL_SERVE_SERVE_CONFIG_H

namespace autofl {

/**
 * What the request queue does with new work once queue_depth requests
 * are already waiting (admission control under overload).
 */
enum class ShedPolicy {
    /**
     * Reject the incoming request with ReplyStatus::Shed. Admitted
     * requests keep their latency bound; late arrivals fail fast.
     */
    RejectNew,
    /**
     * Evict the oldest queued request (completing it with
     * ReplyStatus::Shed) and admit the new one. Serves the freshest
     * traffic; long-waiting requests are the ones sacrificed.
     */
    DropOldest,
};

/** Configuration of the model-serving plane (src/serve/). */
struct ServeConfig
{
    /**
     * Rows per batched forward pass. Inference folds this many samples
     * into each layer call, so the Dense/LSTM projections run as one
     * GEMM instead of batch_size GEMV-shaped calls. 1 reproduces the
     * per-sample path (the bench's baseline). The default sits at the
     * cache knee: larger batches keep growing the GEMMs but push
     * conv activations out of L1/L2 (see BENCH_serve_throughput.json).
     */
    int batch_size = 16;

    /**
     * Inference worker slots. Each slot owns a scratch model whose
     * loaded weights are cached by snapshot identity, so repeated
     * queries against the same snapshot skip the weight reload. Also
     * the default evaluation fan-out.
     */
    int workers = 4;

    /**
     * How many epochs a cached SnapshotHandle may trail the latest
     * snapshot before ModelService::refresh() swaps it. 0 always
     * serves the freshest snapshot; a positive lag amortizes the
     * snapshot lookup across queries while training streams commits.
     */
    int max_snapshot_lag = 0;

    /**
     * Bound on requests waiting in the dynamic-batching queue (the
     * admission-control knob). Once the queue holds this many requests
     * the shed policy applies: overload produces typed Shed replies
     * with bounded latency for admitted work instead of an unbounded
     * backlog. In-flight batches (already claimed by a dispatcher) do
     * not count against the bound.
     */
    int queue_depth = 256;

    /**
     * Deadline (microseconds) for closing a partially filled batch: a
     * dispatcher that opened a batch stops waiting for more rows this
     * long after the batch opened, so a lone request never waits for
     * batch_size - 1 peers that may not come. 0 dispatches whatever is
     * queued immediately (no coalescing wait).
     */
    int batch_timeout_us = 200;

    /** Overload behavior once queue_depth requests wait (see above). */
    ShedPolicy shed = ShedPolicy::RejectNew;

    /**
     * Validate the knobs, throwing std::invalid_argument with an
     * actionable message. @p who names the owning config in messages
     * (e.g. "FlSystemConfig::serve").
     */
    void validate(const char *who) const;
};

} // namespace autofl

#endif // AUTOFL_SERVE_SERVE_CONFIG_H
