/**
 * @file
 * Serving-plane configuration. Kept free of other serve/ includes so
 * fl/system.h and harness/experiment.h can embed a ServeConfig without
 * pulling in the ModelService machinery.
 */
#ifndef AUTOFL_SERVE_SERVE_CONFIG_H
#define AUTOFL_SERVE_SERVE_CONFIG_H

#include <cstdint>
#include <string>

namespace autofl {

/**
 * What the request queue does with new work once queue_depth requests
 * are already waiting (admission control under overload).
 */
enum class ShedPolicy {
    /**
     * Reject the incoming request with ReplyStatus::Shed. Admitted
     * requests keep their latency bound; late arrivals fail fast.
     */
    RejectNew,
    /**
     * Evict the oldest queued request (completing it with
     * ReplyStatus::Shed) and admit the new one. Serves the freshest
     * traffic; long-waiting requests are the ones sacrificed.
     */
    DropOldest,
};

/**
 * Request priority class. Scheduling is strict-priority with a
 * starvation bound: within a class the earliest deadline dispatches
 * first (FIFO at equal deadlines); a lower class that has been passed
 * over ServeConfig::starvation_limit times gets the next dispatch
 * regardless, so sustained high-priority load cannot starve it.
 */
enum class Priority : uint8_t {
    High = 0,
    Normal = 1,
    Low = 2,
};

/** Number of Priority classes (array-sizing constant). */
inline constexpr int kPriorityClasses = 3;

/**
 * Per-request SLO fields, defaulted from ServeConfig when a caller
 * submits without options.
 */
struct SubmitOptions
{
    /**
     * Absolute completion deadline in microseconds on the serving
     * plane's steady clock (see ModelService::now_us()). 0 = no
     * deadline. A request whose deadline already passed — or provably
     * cannot be met given the model's observed batch service time — is
     * shed as ReplyStatus::DeadlineExceeded *before* any inference
     * work runs on it.
     */
    uint64_t deadline_us = 0;

    /** Scheduling class (see Priority). */
    Priority priority = Priority::Normal;
};

/** Configuration of the model-serving plane (src/serve/). */
struct ServeConfig
{
    /**
     * Rows per batched forward pass. Inference folds this many samples
     * into each layer call, so the Dense/LSTM projections run as one
     * GEMM instead of batch_size GEMV-shaped calls. 1 reproduces the
     * per-sample path (the bench's baseline). The default sits at the
     * cache knee: larger batches keep growing the GEMMs but push
     * conv activations out of L1/L2 (see BENCH_serve_throughput.json).
     */
    int batch_size = 16;

    /**
     * Inference worker slots. Each slot owns a scratch model whose
     * loaded weights are cached by snapshot identity, so repeated
     * queries against the same snapshot skip the weight reload. Also
     * the default evaluation fan-out.
     */
    int workers = 4;

    /**
     * How many epochs a cached SnapshotHandle may trail the latest
     * snapshot before ModelService::refresh() swaps it. 0 always
     * serves the freshest snapshot; a positive lag amortizes the
     * snapshot lookup across queries while training streams commits.
     */
    int max_snapshot_lag = 0;

    /**
     * Bound on requests waiting in the dynamic-batching queue (the
     * admission-control knob). Once the queue holds this many requests
     * the shed policy applies: overload produces typed Shed replies
     * with bounded latency for admitted work instead of an unbounded
     * backlog. In-flight batches (already claimed by a dispatcher) do
     * not count against the bound.
     */
    int queue_depth = 256;

    /**
     * Deadline (microseconds) for closing a partially filled batch: a
     * dispatcher that opened a batch stops waiting for more rows this
     * long after the batch opened, so a lone request never waits for
     * batch_size - 1 peers that may not come. 0 dispatches whatever is
     * queued immediately (no coalescing wait).
     */
    int batch_timeout_us = 200;

    /** Overload behavior once queue_depth requests wait (see above). */
    ShedPolicy shed = ShedPolicy::RejectNew;

    /**
     * Model registry directory (see store::ModelRegistry). When set on
     * an FlSystemConfig/ExperimentConfig, training publishes its
     * checkpoints as registry versions under model_name instead of
     * writing a bare ps.snapshot_dir, and a ServingGateway can serve
     * every registered model from a cold start. Empty = no registry
     * (single-model legacy paths).
     */
    std::string registry_dir;

    /**
     * Registry name this system trains/serves. Empty defaults to the
     * workload's workload_name() at publish time.
     */
    std::string model_name;

    /**
     * Relative slot-pool weight of this model under a ServingGateway.
     * Model i is guaranteed max(1, floor(workers * w_i / sum_w))
     * dispatcher slots when it has queued work; idle capacity is shared
     * work-conserving. Must be > 0.
     */
    double weight = 1.0;

    /**
     * Default relative deadline (microseconds from submit) applied when
     * a request carries SubmitOptions::deadline_us == 0. 0 = requests
     * without an explicit deadline have none.
     */
    uint64_t default_deadline_us = 0;

    /** Default scheduling class for option-less submissions. */
    Priority default_priority = Priority::Normal;

    /**
     * Starvation bound: after a priority class's head request has been
     * passed over this many times by higher-class dispatches, it wins
     * the next dispatch regardless of class. Must be >= 1.
     */
    int starvation_limit = 8;

    /**
     * Validate the knobs, throwing std::invalid_argument with an
     * actionable message. @p who names the owning config in messages
     * (e.g. "FlSystemConfig::serve").
     */
    void validate(const char *who) const;
};

} // namespace autofl

#endif // AUTOFL_SERVE_SERVE_CONFIG_H
