#include "serve/request_queue.h"

#include <algorithm>
#include <utility>

namespace autofl {

const char *
reply_status_name(ReplyStatus s)
{
    switch (s) {
      case ReplyStatus::Ok:
        return "Ok";
      case ReplyStatus::Shed:
        return "Shed";
      case ReplyStatus::DeadlineExceeded:
        return "DeadlineExceeded";
      case ReplyStatus::NoModel:
        return "NoModel";
      case ReplyStatus::BadRequest:
        return "BadRequest";
      case ReplyStatus::Shutdown:
        return "Shutdown";
    }
    return "?";
}

uint64_t
serve_now_us()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

RequestQueue::RequestQueue(int depth, ShedPolicy policy,
                           int starvation_limit)
    : depth_(static_cast<size_t>(std::max(1, depth))), policy_(policy),
      starvation_limit_(std::max(1, starvation_limit))
{
}

RequestQueue::Push
RequestQueue::push(InferenceRequest &req, uint64_t now_us,
                   InferenceRequest &evicted, bool &has_evicted)
{
    has_evicted = false;
    // Expired-on-arrival is checked before admission control: a dead
    // request must neither occupy a queue slot nor evict viable work.
    if (req.deadline_us != 0 && req.deadline_us <= now_us)
        return Push::Expired;
    if (size() >= depth_) {
        if (policy_ == ShedPolicy::RejectNew)
            return Push::Shed;
        // DropOldest: evict the earliest-admitted waiter across all
        // classes — the request that has already burned the most of its
        // latency budget — handing it back for the caller to complete
        // as Shed outside the owner's lock.
        int victim = -1;
        uint64_t oldest = 0;
        for (int c = 0; c < kPriorityClasses; ++c) {
            if (classes_[c].empty())
                continue;
            const uint64_t s = classes_[c].front().seq;
            if (victim < 0 || s < oldest) {
                victim = c;
                oldest = s;
            }
        }
        evicted = std::move(classes_[victim].front());
        classes_[victim].pop_front();
        has_evicted = true;
    }
    req.seq = next_seq_++;
    classes_[static_cast<int>(req.priority)].push_back(std::move(req));
    return Push::Admitted;
}

int
RequestQueue::pick_class() const
{
    // A class passed over starvation_limit_ times outranks everything
    // above it; among starved classes the lowest-priority (most
    // starved-prone) wins. Otherwise strict priority.
    for (int c = kPriorityClasses - 1; c >= 0; --c)
        if (!classes_[c].empty() && passed_over_[c] >= starvation_limit_)
            return c;
    for (int c = 0; c < kPriorityClasses; ++c)
        if (!classes_[c].empty())
            return c;
    return -1;
}

int
RequestQueue::pop_batch(std::vector<InferenceRequest> &out,
                        std::vector<InferenceRequest> &infeasible,
                        int max_rows, uint64_t now_us, uint64_t estimate_us)
{
    const int want = std::max(1, max_rows);
    int rows = 0;
    while (rows < want) {
        const int c = pick_class();
        if (c < 0)
            break;

        // EDF within the class: earliest non-zero deadline wins;
        // deadline-less requests sort after every deadlined peer. Ties
        // fall to admission order (seq) — the scan keeps the first of
        // equals, and seq grows with admission.
        auto &q = classes_[c];
        size_t best = 0;
        for (size_t i = 1; i < q.size(); ++i) {
            const uint64_t di = q[i].deadline_us == 0
                ? UINT64_MAX
                : q[i].deadline_us;
            const uint64_t db = q[best].deadline_us == 0
                ? UINT64_MAX
                : q[best].deadline_us;
            if (di < db || (di == db && q[i].seq < q[best].seq))
                best = i;
        }
        InferenceRequest req = std::move(q[best]);
        q.erase(q.begin() + static_cast<ptrdiff_t>(best));

        // Starvation accounting per pick: every other class left
        // waiting was passed over once more; the picked class resets.
        for (int o = 0; o < kPriorityClasses; ++o)
            passed_over_[o] = (o == c || classes_[o].empty())
                ? 0
                : passed_over_[o] + 1;

        // Feasibility shed: a request that cannot finish before its
        // deadline — given the model's observed batch service time —
        // is never executed. It is removed here (not left queued) so a
        // hopeless request cannot occupy its class's EDF head forever.
        if (req.deadline_us != 0 &&
            req.deadline_us < now_us + estimate_us) {
            infeasible.push_back(std::move(req));
            continue;
        }
        rows += req.samples;
        out.push_back(std::move(req));
    }
    return rows;
}

std::vector<InferenceRequest>
RequestQueue::drain()
{
    std::vector<InferenceRequest> out;
    out.reserve(size());
    for (auto &c : classes_) {
        while (!c.empty()) {
            out.push_back(std::move(c.front()));
            c.pop_front();
        }
    }
    return out;
}

} // namespace autofl
