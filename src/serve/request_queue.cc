#include "serve/request_queue.h"

#include <algorithm>
#include <utility>

namespace autofl {

const char *
reply_status_name(ReplyStatus s)
{
    switch (s) {
      case ReplyStatus::Ok:
        return "Ok";
      case ReplyStatus::Shed:
        return "Shed";
      case ReplyStatus::NoModel:
        return "NoModel";
      case ReplyStatus::BadRequest:
        return "BadRequest";
      case ReplyStatus::Shutdown:
        return "Shutdown";
    }
    return "?";
}

RequestQueue::RequestQueue(int depth, ShedPolicy policy)
    : depth_(static_cast<size_t>(std::max(1, depth))), policy_(policy)
{
}

RequestQueue::Push
RequestQueue::push(InferenceRequest &req, InferenceRequest &evicted,
                   bool &has_evicted)
{
    has_evicted = false;
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (closed_)
            return Push::Closed;
        if (q_.size() >= depth_) {
            if (policy_ == ShedPolicy::RejectNew)
                return Push::Shed;
            // DropOldest: hand the head back for the caller to complete
            // as Shed outside the lock, then admit the newcomer.
            evicted = std::move(q_.front());
            q_.pop_front();
            has_evicted = true;
        }
        q_.push_back(std::move(req));
    }
    work_cv_.notify_one();
    return Push::Admitted;
}

bool
RequestQueue::pop_batch(std::vector<InferenceRequest> &out, int max_rows,
                        std::chrono::microseconds timeout)
{
    const int want = std::max(1, max_rows);
    std::unique_lock<std::mutex> lk(mu_);
    work_cv_.wait(lk, [&] { return !q_.empty() || closed_; });
    if (closed_)
        return false;  // Leftovers go to drain(), typed Shutdown.

    // The batch opens on the first request; the deadline anchors here
    // so a partial batch waits at most `timeout` for peers, however
    // they trickle in.
    const auto deadline =
        std::chrono::steady_clock::now() + timeout;
    int rows = 0;
    const auto take = [&] {
        while (!q_.empty() && rows < want) {
            rows += q_.front().samples;
            out.push_back(std::move(q_.front()));
            q_.pop_front();
        }
    };
    take();
    while (rows < want && !closed_) {
        if (!work_cv_.wait_until(lk, deadline,
                                 [&] { return !q_.empty() || closed_; }))
            break;  // Deadline: dispatch the partial batch.
        take();
    }
    return true;
}

void
RequestQueue::close()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        closed_ = true;
    }
    work_cv_.notify_all();
}

std::vector<InferenceRequest>
RequestQueue::drain()
{
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<InferenceRequest> out;
    out.reserve(q_.size());
    while (!q_.empty()) {
        out.push_back(std::move(q_.front()));
        q_.pop_front();
    }
    return out;
}

size_t
RequestQueue::size() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return q_.size();
}

} // namespace autofl
