/**
 * @file
 * DynamicBatcher: the multi-model scheduling core of the serving plane
 * — shared dispatcher slots, weighted slot sharing, deadline-aware
 * batching.
 *
 * Callers submit model-ready input rows (tagged with a deadline and a
 * priority class) and get a future; `workers` dispatcher threads pull
 * requests off per-model RequestQueues, close a batch at
 * ServeConfig::batch_size rows or the batch_timeout_us deadline
 * (whichever first), run ONE inference pass over the coalesced rows on
 * the model's engine against its latest snapshot, and split the logits
 * back per request. N concurrent 1-row callers therefore pay
 * ~1/batch_size of a forward pass each instead of a full pass per call.
 *
 * Scheduling (the SLO machinery):
 *
 *  - **Weighted slot sharing.** Model i is guaranteed
 *    max(1, floor(workers * w_i / sum_w)) dispatcher slots whenever it
 *    has queued work. A free dispatcher always serves a below-guarantee
 *    model with work first; only when none exists may a model borrow
 *    beyond its guarantee (work-conserving), so one overloaded model
 *    cannot starve another — isolation the tab_serve_latency bench
 *    gates on.
 *  - **Priority + EDF.** Within a model, batches are built
 *    earliest-deadline-first within strict priority classes, FIFO at
 *    equal deadlines, with a starvation bound (see RequestQueue).
 *  - **Deadline-aware shedding.** A request whose deadline has passed
 *    at arrival, or provably cannot be met given the model's observed
 *    (EWMA) batch service time at dispatch, completes as
 *    ReplyStatus::DeadlineExceeded *without ever executing* — the plane
 *    never spends a forward pass on an answer it then throws away.
 *
 * Under overload the bounded queues shed typed rejections instead of
 * growing without bound, so admitted requests keep a bounded p99.
 *
 * Determinism: on the scalar kernel arch, inference logits are
 * bit-identical for any batch shape, so the same requests produce the
 * same predictions at ANY concurrency — however timing composes them
 * into batches. SIMD archs agree within the kernels' 1e-4 cross-variant
 * contract.
 */
#ifndef AUTOFL_SERVE_DYNAMIC_BATCHER_H
#define AUTOFL_SERVE_DYNAMIC_BATCHER_H

#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/request_queue.h"
#include "serve/serve_config.h"

namespace autofl {

class ModelService;

/** Multi-model request-scheduling layer over shared dispatcher slots. */
class DynamicBatcher
{
  public:
    /**
     * Multi-model construction: @p workers shared dispatcher slots.
     * Register models with add_model(), then call start().
     */
    explicit DynamicBatcher(int workers);

    /**
     * Single-model convenience (the ModelService private batcher):
     * add_model(service, cfg) + start() with cfg.workers slots.
     */
    DynamicBatcher(ModelService &service, const ServeConfig &cfg);

    /** Shuts down (joining dispatchers) if still running. */
    ~DynamicBatcher();

    DynamicBatcher(const DynamicBatcher &) = delete;
    DynamicBatcher &operator=(const DynamicBatcher &) = delete;

    /**
     * Register @p service before start(). @p cfg supplies the model's
     * batching knobs, queue bound, slot weight and default SLOs
     * (validated). @p service must outlive the batcher (or its
     * shutdown). @return The model id to submit against.
     */
    int add_model(ModelService &service, const ServeConfig &cfg);

    /**
     * Compute slot guarantees and spawn the dispatcher threads.
     * add_model() is rejected afterwards.
     */
    void start();

    /**
     * Submit @p rows (>= 1 sample along the workload's batch axis,
     * layout per Dataset::batch_x) for batched inference against model
     * @p model's latest snapshot at dispatch time. Never blocks: under
     * overload the future completes immediately with ReplyStatus::Shed
     * per the model's shed policy, and an expired deadline completes as
     * DeadlineExceeded without queuing. opts.deadline_us == 0 picks up
     * the model's cfg.default_deadline_us (when set).
     * @param want_classes Also fill per-sample argmax classes.
     */
    std::future<InferenceReply> submit(int model, Tensor rows,
                                       bool want_classes,
                                       SubmitOptions opts = {});

    /**
     * Stop serving: close the queues, fail queued requests with
     * ReplyStatus::Shutdown, finish in-flight batches and join the
     * dispatchers. Idempotent, and serialized — every caller returns
     * only once the shutdown has fully completed. Subsequent submits
     * complete as Shutdown.
     */
    void shutdown();

    /** Snapshot of one model's serving counters. */
    ServeStats stats(int model) const;

    /** Registered models. */
    int model_count() const;

    /** Shared dispatcher slots. */
    int workers() const { return workers_; }

  private:
    /** Everything the scheduler knows about one registered model. */
    struct Model
    {
        Model(ModelService &svc, const ServeConfig &c, int axis, int rank);

        ModelService &service;
        ServeConfig cfg;
        const int batch_axis;  ///< Workload's sample dimension (cached).
        const int batch_rank;  ///< Workload's input rank (cached).
        RequestQueue queue;    ///< Guarded by the batcher's mu_.
        ServeStats stats;      ///< Guarded by mu_.
        uint64_t ewma_us = 0;  ///< Observed batch service time (mu_).
        int running = 0;       ///< Dispatchers currently on this model.
        int guarantee = 1;     ///< Weighted slot guarantee (start()).
    };

    void dispatch_loop();
    void dispatch(Model &m, std::vector<InferenceRequest> &batch);
    /** Next model a free dispatcher should serve; -1 when none has
     *  work. Guarantee-entitled models always win over borrowers. */
    int pick_model() const;  // Requires mu_.

    const int workers_;
    std::vector<std::unique_ptr<Model>> models_;

    mutable std::mutex mu_;  ///< Queues, stats, scheduling state.
    std::condition_variable work_cv_;
    bool started_ = false;  ///< Guarded by mu_.
    bool closed_ = false;   ///< Guarded by mu_.

    std::mutex shutdown_mu_;  ///< Serializes shutdown end to end.
    bool stopped_ = false;    ///< Guarded by shutdown_mu_.

    std::vector<std::thread> dispatchers_;  ///< Joined in shutdown().
};

} // namespace autofl

#endif // AUTOFL_SERVE_DYNAMIC_BATCHER_H
