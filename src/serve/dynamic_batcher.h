/**
 * @file
 * DynamicBatcher: coalesces concurrent inference submissions into full
 * engine batches.
 *
 * Callers submit model-ready input rows and get a future; dispatcher
 * threads (one per worker slot) pull requests off the bounded
 * RequestQueue, close a batch at ServeConfig::batch_size rows or the
 * batch_timeout_us deadline (whichever first), run ONE inference pass
 * over the coalesced rows on a pooled engine slot against the latest
 * snapshot, and split the logits back per request. N concurrent 1-row
 * callers therefore pay ~1/batch_size of a forward pass each instead of
 * a full pass per call — and under overload the queue sheds typed
 * rejections instead of growing without bound, so admitted requests
 * keep a bounded p99.
 *
 * Determinism: on the scalar kernel arch, inference logits are
 * bit-identical for any batch shape, so the same requests produce the
 * same predictions at ANY concurrency — however timing composes them
 * into batches. SIMD archs agree within the kernels' 1e-4 cross-variant
 * contract.
 */
#ifndef AUTOFL_SERVE_DYNAMIC_BATCHER_H
#define AUTOFL_SERVE_DYNAMIC_BATCHER_H

#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/request_queue.h"
#include "serve/serve_config.h"

namespace autofl {

class ModelService;

/** Request-scheduling layer between submitters and the engine slots. */
class DynamicBatcher
{
  public:
    /**
     * Spawns cfg.workers dispatcher threads (one per engine slot, so
     * every slot can run a coalesced batch concurrently).
     * @param service Owning service; supplies snapshots and the engine.
     */
    DynamicBatcher(ModelService &service, const ServeConfig &cfg);

    /** Shuts down (joining dispatchers) if still running. */
    ~DynamicBatcher();

    DynamicBatcher(const DynamicBatcher &) = delete;
    DynamicBatcher &operator=(const DynamicBatcher &) = delete;

    /**
     * Submit @p rows (>= 1 sample along the workload's batch axis,
     * layout per Dataset::batch_x) for batched inference against the
     * latest snapshot at dispatch time. Never blocks: under overload
     * the future completes immediately with ReplyStatus::Shed per the
     * shed policy. @p want_classes also fills per-sample argmax
     * classes in the reply.
     */
    std::future<InferenceReply> submit(Tensor rows, bool want_classes);

    /**
     * Stop serving: close the queue, fail queued requests with
     * ReplyStatus::Shutdown, finish in-flight batches and join the
     * dispatchers. Idempotent, and serialized — every caller returns
     * only once the shutdown has fully completed. Subsequent submits
     * complete as Shutdown (the closed queue rejects them typed).
     */
    void shutdown();

    /** Snapshot of the serving counters. */
    ServeStats stats() const;

  private:
    void dispatch_loop();
    void dispatch(std::vector<InferenceRequest> &batch);

    ModelService &service_;
    ServeConfig cfg_;
    const int batch_axis_;  ///< Workload's sample dimension (cached).
    const int batch_rank_;  ///< Workload's input rank (cached).
    RequestQueue queue_;

    std::mutex shutdown_mu_;  ///< Serializes shutdown end to end.
    bool stopped_ = false;    ///< Guarded by shutdown_mu_.

    mutable std::mutex stats_mu_;
    ServeStats stats_;

    std::vector<std::thread> dispatchers_;  ///< Joined in shutdown().
};

} // namespace autofl

#endif // AUTOFL_SERVE_DYNAMIC_BATCHER_H
