/**
 * @file
 * ServingGateway: the multi-model front door of the serving plane.
 *
 * A gateway owns the shared dispatcher-slot pool (one multi-model
 * DynamicBatcher) and a fleet of per-model ModelService/InferenceEngine
 * instances behind string keys. Models arrive two ways:
 *
 *  - **Registry cold start** (load_registry / load_model): resolve
 *    "name" or "name@version" through a store::ModelRegistry, mmap the
 *    snapshot artifact, rebuild the architecture from the manifest's
 *    workload line and serve it — no training stack constructed, pages
 *    shared read-only with every other process serving the same
 *    artifact. Failures are typed RegistryStatus values (unknown
 *    name/version, corrupt manifest, damaged artifact), never throws.
 *  - **Live binding** (add_service): an externally owned ModelService
 *    that training is still publishing into — the
 *    serving-while-training path, now per model.
 *
 * Setup (load/add) is single-threaded and must precede start();
 * submit/query/stats are thread-safe afterwards. Scheduling across
 * models is the batcher's weighted slot sharing: each model's
 * ServeConfig::weight buys it a guaranteed share of the slot pool, so
 * one overloaded model cannot starve the others (see DynamicBatcher).
 */
#ifndef AUTOFL_SERVE_SERVING_GATEWAY_H
#define AUTOFL_SERVE_SERVING_GATEWAY_H

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "serve/dynamic_batcher.h"
#include "serve/model_service.h"
#include "serve/serve_config.h"
#include "store/model_registry.h"

namespace autofl {

/** Multi-model serving facade over a registry + shared slot pool. */
class ServingGateway
{
  public:
    /**
     * @param base Gateway-wide defaults: base.workers sizes the shared
     *             dispatcher pool, base.registry_dir points
     *             load_registry()/load_model() at a registry; the other
     *             knobs default per-model config where none is given.
     */
    explicit ServingGateway(ServeConfig base = {});
    ~ServingGateway();

    ServingGateway(const ServingGateway &) = delete;
    ServingGateway &operator=(const ServingGateway &) = delete;

    /**
     * Cold-start every registered model at its newest version. Models
     * that fail to load are skipped (their name + typed status land in
     * @p failed when non-null) — a damaged neighbor must not keep the
     * healthy fleet down. @return IoError when the registry directory
     * itself is unreadable, otherwise Ok (load_count() says how many
     * models serve).
     */
    store::RegistryStatus load_registry(
        std::vector<std::pair<std::string, store::RegistryStatus>>
            *failed = nullptr);

    /**
     * Load one "name" or "name@version" reference from the registry
     * under exactly that key (so "m@3" and "m" can serve side by side).
     * @param cfg Per-model knobs (weight, SLOs, batching); nullptr uses
     *            the gateway base. @return Typed failure; Ok on load.
     */
    store::RegistryStatus load_model(const std::string &ref,
                                     const ServeConfig *cfg = nullptr);

    /**
     * Bind an externally owned live service under @p name. @p service
     * must outlive the gateway (or its stop_serving()). Setup-phase
     * only, like load_model.
     */
    void add_service(const std::string &name, ModelService &service,
                     const ServeConfig *cfg = nullptr);

    /** Spawn the shared dispatchers. Requires >= 1 model. */
    void start();

    /** Registered model keys, in registration order. */
    std::vector<std::string> models() const;

    /** The service behind @p key (nullptr when unknown). */
    ModelService *service(const std::string &key);

    /** Registry version serving under @p key (0 for live bindings). */
    uint64_t version(const std::string &key) const;

    /**
     * Submit against model @p key (see DynamicBatcher::submit for the
     * batching/SLO contract). An unknown key completes immediately as
     * ReplyStatus::BadRequest.
     */
    std::future<InferenceReply> submit(const std::string &key, Tensor rows,
                                       bool want_classes = false,
                                       SubmitOptions opts = {});

    /** Synchronous convenience wrapper: submit and wait. */
    InferenceReply
    query(const std::string &key, Tensor rows, bool want_classes = false,
          SubmitOptions opts = {})
    {
        return submit(key, std::move(rows), want_classes, opts).get();
    }

    /** One model's serving counters (zeros for an unknown key). */
    ServeStats stats(const std::string &key) const;

    /**
     * Stop the shared batcher: queued requests complete as Shutdown,
     * dispatchers join. Idempotent. Owned (registry-loaded) services
     * stay alive for direct engine use until destruction.
     */
    void stop_serving();

  private:
    struct Entry
    {
        std::string key;
        std::unique_ptr<ModelService> owned;  ///< Registry-loaded only.
        ModelService *service = nullptr;
        ServeConfig cfg;
        uint64_t version = 0;  ///< Registry version (0 = live binding).
        int id = -1;           ///< Batcher model id (set by start()).
    };

    const Entry *find(const std::string &key) const;

    ServeConfig base_;
    store::ModelRegistry registry_;
    std::vector<Entry> entries_;  ///< Setup-phase writes only.
    std::unique_ptr<DynamicBatcher> batcher_;
    bool started_ = false;
};

} // namespace autofl

#endif // AUTOFL_SERVE_SERVING_GATEWAY_H
