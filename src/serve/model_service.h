/**
 * @file
 * ModelService: the serving-plane facade — one model-consumption path
 * for everything that *reads* the global model while training writes
 * it.
 *
 * The unit of consumption is the SnapshotHandle: a refcounted,
 * epoch-tagged view of one immutable weight vector. Acquiring a handle
 * is one mutex-guarded shared_ptr copy; every read through it after
 * that is lock-free and safe while striped commit waves keep mutating
 * the live store — the store publishes fresh snapshots, it never
 * touches old ones, and the handle's refcount keeps its vector alive
 * for as long as any consumer holds it. Epochs are monotone, so a
 * consumer can reason about model freshness ("how many commits behind
 * am I serving?") without ever blocking a commit.
 *
 * Three snapshot sources share the facade:
 *
 *  - **Store-backed** (attach_store): the pipelined ps runtime, whose
 *    commit waves publish epoch-tagged snapshots as a side effect of
 *    committing. Serving rides those snapshots with zero extra copies.
 *  - **Self-published** (publish): the synchronous runtimes, whose
 *    commit point is the round barrier. The barrier publishes the new
 *    global weights; identical re-publishes keep their epoch, so the
 *    epoch really counts model versions.
 *  - **Artifact-backed** (attach_artifact): a serving-only process
 *    cold-starting from an on-disk snapshot (store::MappedSnapshot) —
 *    no ps store, no training run. The handle views the mmap'd pages
 *    directly, so weights are shared read-only across every process
 *    serving the same artifact.
 *
 * Inference goes through the owned InferenceEngine: batched forward
 * passes on worker slots with per-snapshot weight caching. Concurrent
 * online queries go through submit(), the dynamic-batching entry point:
 * a bounded RequestQueue plus DynamicBatcher coalesce them into full
 * engine batches and shed typed rejections under overload. See
 * src/serve/README.md for the full API contract.
 */
#ifndef AUTOFL_SERVE_MODEL_SERVICE_H
#define AUTOFL_SERVE_MODEL_SERVICE_H

#include <atomic>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "ps/sharded_store.h"
#include "serve/inference_engine.h"
#include "serve/request_queue.h"
#include "serve/serve_config.h"
#include "store/mapped_snapshot.h"

namespace autofl {

class DynamicBatcher;

/** Parameter-server facade over model consumption. */
class ModelService
{
  public:
    /**
     * @param workload Model architecture served.
     * @param cfg Serving knobs (validated; throws on nonsense).
     */
    explicit ModelService(Workload workload, ServeConfig cfg = {});
    ~ModelService();

    ModelService(const ModelService &) = delete;
    ModelService &operator=(const ModelService &) = delete;

    /**
     * Source snapshots from @p store (which must outlive every
     * consumer; see stop_serving): acquire() returns the store's
     * latest published snapshot. Set-once-before-use: call exactly
     * once (asserted), and strictly before publish() is ever called —
     * concurrent acquire() calls are safe (the pointer is an atomic
     * with release/acquire ordering), but the service must never
     * switch sources mid-flight. Only the pipelined runtime publishes
     * store snapshots past epoch 0.
     */
    void attach_store(const ShardedStore *store);

    /** Whether acquire() reads a live store. */
    bool
    store_backed() const
    {
        return store_.load(std::memory_order_acquire) != nullptr;
    }

    /**
     * Source snapshots from an mmap'd on-disk artifact — the serving
     * cold-start path: no ps store, no training run, weights read
     * straight from the (validated) mapped file and shared read-only
     * with any other process serving it. Set-once-before-use like
     * attach_store, exclusive with the other two sources. Throws
     * std::invalid_argument when the artifact's dimension or topology
     * hash does not match the served architecture — a wrong-model
     * artifact must fail loudly at attach, not scatter weights at
     * first query. acquire() then yields handles tagged with the
     * artifact's commit epoch.
     */
    void
    attach_artifact(std::shared_ptr<const store::MappedSnapshot> artifact);

    /** Whether acquire() reads an attached artifact. */
    bool
    artifact_backed() const
    {
        return artifact_.load(std::memory_order_acquire) != nullptr;
    }

    /**
     * Publish @p weights as the newest model version (self-published
     * source only). Re-publishing bitwise-identical weights keeps the
     * current epoch — the epoch counts model versions, not calls.
     * @return The epoch now serving.
     */
    uint64_t publish(const std::vector<float> &weights);

    /** Handle on the latest snapshot (epoch 0 before any publish). */
    SnapshotHandle acquire() const;

    /**
     * Re-acquire only when @p h trails the latest epoch by more than
     * cfg.max_snapshot_lag (an invalid handle always refreshes).
     * @return True when @p h was swapped to a newer snapshot.
     */
    bool refresh(SnapshotHandle &h) const;

    /** Epoch of the latest snapshot. */
    uint64_t latest_epoch() const { return acquire().epoch(); }

    /**
     * Batched test-set scoring of a snapshot — the one evaluation body
     * behind FlSystem::evaluate(), the pipeline's concurrent eval
     * workers and the harness accuracy path. Deterministic for any
     * fan-out (see InferenceEngine::evaluate).
     */
    EvalStats evaluate(const SnapshotHandle &h, const Dataset &test,
                       int fan_out = 0)
    {
        return engine_.evaluate(h, test, fan_out);
    }

    /** Batched class predictions for selected samples of a dataset. */
    std::vector<int> classify(const SnapshotHandle &h, const Dataset &data,
                              const std::vector<int> &indices)
    {
        return engine_.classify(h, data, indices);
    }

    /**
     * Submit @p rows (layout per Dataset::batch_x, >= 1 sample along
     * the workload's batch axis) to the dynamic batcher: concurrent
     * submissions coalesce into one engine batch (closed at
     * cfg.batch_size samples or the cfg.batch_timeout_us deadline)
     * against the latest snapshot at dispatch time. Never blocks —
     * under overload the future completes immediately with
     * ReplyStatus::Shed per cfg.shed (bounded queue, bounded p99).
     * @param want_classes Also argmax each sample into reply.classes.
     */
    std::future<InferenceReply> submit(Tensor rows,
                                       bool want_classes = false);

    /**
     * Submit with explicit SLO fields: an absolute deadline
     * (opts.deadline_us on the serve_now_us() clock; expired or
     * infeasible requests complete as ReplyStatus::DeadlineExceeded
     * without executing) and a priority class (strict priority with a
     * starvation bound, EDF within the class). opts.deadline_us == 0
     * picks up cfg.default_deadline_us when configured.
     */
    std::future<InferenceReply> submit(Tensor rows, bool want_classes,
                                       SubmitOptions opts);

    /** Synchronous convenience wrapper: submit and wait. */
    InferenceReply
    query(Tensor rows, bool want_classes = false)
    {
        return submit(std::move(rows), want_classes).get();
    }

    /** Microseconds now on the deadline clock (see SubmitOptions). */
    static uint64_t now_us() { return serve_now_us(); }

    /**
     * Stop the dynamic batcher (idempotent): queued requests complete
     * as ReplyStatus::Shutdown, in-flight batches finish, dispatcher
     * threads join, and later submits complete as Shutdown. Owners of
     * a store-backed service MUST call this before the attached store
     * dies — dispatchers acquire store snapshots. Direct engine calls
     * (evaluate/classify/forward) keep working.
     */
    void stop_serving();

    /** Serving counters (zeros before the first submit()). */
    ServeStats serving_stats() const;

    /** The batched inference engine (raw forward access). */
    InferenceEngine &engine() { return engine_; }

    const ServeConfig &config() const { return cfg_; }
    Workload workload() const { return workload_; }

  private:
    Workload workload_;
    ServeConfig cfg_;
    InferenceEngine engine_;

    /**
     * Store-backed source. Written once by attach_store() before any
     * consumer runs; atomic because acquire()/store_backed() read it
     * from serving threads without taking mu_ (release store pairs
     * with acquire loads).
     */
    std::atomic<const ShardedStore *> store_{nullptr};

    /**
     * Artifact-backed source, same set-once-before-use discipline as
     * store_: the atomic pointer gates readers (release store pairs
     * with acquire loads), artifact_owner_ holds the mapping alive and
     * is never written again after attach, so lock-free shared_ptr
     * copies from serving threads are safe.
     */
    std::atomic<const store::MappedSnapshot *> artifact_{nullptr};
    std::shared_ptr<const store::MappedSnapshot> artifact_owner_;

    mutable std::mutex mu_;  ///< Guards the self-published slot.
    StoreSnapshot local_;    ///< Self-published source.
    uint64_t next_epoch_ = 1;

    mutable std::mutex batcher_mu_;  ///< Guards lazy batcher creation.
    bool serving_stopped_ = false;   ///< stop_serving() is permanent.
    // Declared last: the batcher's dispatchers use engine_ and the
    // snapshot sources above, so it must be destroyed (joined) first.
    std::unique_ptr<DynamicBatcher> batcher_;
};

} // namespace autofl

#endif // AUTOFL_SERVE_MODEL_SERVICE_H
