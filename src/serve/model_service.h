/**
 * @file
 * ModelService: the serving-plane facade — one model-consumption path
 * for everything that *reads* the global model while training writes
 * it.
 *
 * The unit of consumption is the SnapshotHandle: a refcounted,
 * epoch-tagged view of one immutable weight vector. Acquiring a handle
 * is one mutex-guarded shared_ptr copy; every read through it after
 * that is lock-free and safe while striped commit waves keep mutating
 * the live store — the store publishes fresh snapshots, it never
 * touches old ones, and the handle's refcount keeps its vector alive
 * for as long as any consumer holds it. Epochs are monotone, so a
 * consumer can reason about model freshness ("how many commits behind
 * am I serving?") without ever blocking a commit.
 *
 * Two snapshot sources share the facade:
 *
 *  - **Store-backed** (attach_store): the pipelined ps runtime, whose
 *    commit waves publish epoch-tagged snapshots as a side effect of
 *    committing. Serving rides those snapshots with zero extra copies.
 *  - **Self-published** (publish): the synchronous runtimes, whose
 *    commit point is the round barrier. The barrier publishes the new
 *    global weights; identical re-publishes keep their epoch, so the
 *    epoch really counts model versions.
 *
 * Inference goes through the owned InferenceEngine: batched forward
 * passes on worker slots with per-snapshot weight caching. See
 * src/serve/README.md for the full API contract.
 */
#ifndef AUTOFL_SERVE_MODEL_SERVICE_H
#define AUTOFL_SERVE_MODEL_SERVICE_H

#include <memory>
#include <mutex>
#include <vector>

#include "ps/sharded_store.h"
#include "serve/inference_engine.h"
#include "serve/serve_config.h"

namespace autofl {

/** Parameter-server facade over model consumption. */
class ModelService
{
  public:
    /**
     * @param workload Model architecture served.
     * @param cfg Serving knobs (validated; throws on nonsense).
     */
    explicit ModelService(Workload workload, ServeConfig cfg = {});

    ModelService(const ModelService &) = delete;
    ModelService &operator=(const ModelService &) = delete;

    /**
     * Source snapshots from @p store (which must outlive this object):
     * acquire() returns the store's latest published snapshot. Call
     * once, before consumers start; only the pipelined runtime
     * publishes store snapshots past epoch 0.
     */
    void attach_store(const ShardedStore *store);

    /** Whether acquire() reads a live store. */
    bool store_backed() const { return store_ != nullptr; }

    /**
     * Publish @p weights as the newest model version (self-published
     * source only). Re-publishing bitwise-identical weights keeps the
     * current epoch — the epoch counts model versions, not calls.
     * @return The epoch now serving.
     */
    uint64_t publish(const std::vector<float> &weights);

    /** Handle on the latest snapshot (epoch 0 before any publish). */
    SnapshotHandle acquire() const;

    /**
     * Re-acquire only when @p h trails the latest epoch by more than
     * cfg.max_snapshot_lag (an invalid handle always refreshes).
     * @return True when @p h was swapped to a newer snapshot.
     */
    bool refresh(SnapshotHandle &h) const;

    /** Epoch of the latest snapshot. */
    uint64_t latest_epoch() const { return acquire().epoch(); }

    /**
     * Batched test-set scoring of a snapshot — the one evaluation body
     * behind FlSystem::evaluate(), the pipeline's concurrent eval
     * workers and the harness accuracy path. Deterministic for any
     * fan-out (see InferenceEngine::evaluate).
     */
    EvalStats evaluate(const SnapshotHandle &h, const Dataset &test,
                       int fan_out = 0)
    {
        return engine_.evaluate(h, test, fan_out);
    }

    /** Batched class predictions for selected samples of a dataset. */
    std::vector<int> classify(const SnapshotHandle &h, const Dataset &data,
                              const std::vector<int> &indices)
    {
        return engine_.classify(h, data, indices);
    }

    /** The batched inference engine (raw forward access). */
    InferenceEngine &engine() { return engine_; }

    const ServeConfig &config() const { return cfg_; }
    Workload workload() const { return workload_; }

  private:
    Workload workload_;
    ServeConfig cfg_;
    InferenceEngine engine_;

    const ShardedStore *store_ = nullptr;  ///< Store-backed source.

    mutable std::mutex mu_;  ///< Guards the self-published slot.
    StoreSnapshot local_;    ///< Self-published source.
    uint64_t next_epoch_ = 1;
};

} // namespace autofl

#endif // AUTOFL_SERVE_MODEL_SERVICE_H
