#include "serve/inference_engine.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>

#include "nn/loss.h"

namespace autofl {

void
ServeConfig::validate(const char *who) const
{
    const std::string w(who);
    if (batch_size < 1) {
        throw std::invalid_argument(
            w + ".batch_size must be >= 1 (got " +
            std::to_string(batch_size) +
            "): inference folds batch_size samples into each forward "
            "pass; use 1 for the per-sample path");
    }
    if (workers < 1) {
        throw std::invalid_argument(
            w + ".workers must be >= 1 (got " + std::to_string(workers) +
            "): the inference engine needs at least one worker slot");
    }
    if (max_snapshot_lag < 0) {
        throw std::invalid_argument(
            w + ".max_snapshot_lag must be >= 0 (got " +
            std::to_string(max_snapshot_lag) +
            "): 0 always serves the freshest snapshot; a positive lag "
            "lets cached handles trail that many epochs");
    }
    if (queue_depth < 1) {
        throw std::invalid_argument(
            w + ".queue_depth must be >= 1 (got " +
            std::to_string(queue_depth) +
            "): admission control needs at least one queue slot; raise "
            "it to absorb bursts, shrink it to shed earlier");
    }
    if (batch_timeout_us < 0) {
        throw std::invalid_argument(
            w + ".batch_timeout_us must be >= 0 (got " +
            std::to_string(batch_timeout_us) +
            "): 0 dispatches queued requests immediately; a positive "
            "deadline lets a partial batch wait for peers to coalesce");
    }
    if (!(weight > 0.0)) {
        throw std::invalid_argument(
            w + ".weight must be > 0 (got " + std::to_string(weight) +
            "): gateway slot sharing guarantees each model "
            "max(1, floor(workers * w_i / sum_w)) slots");
    }
    if (starvation_limit < 1) {
        throw std::invalid_argument(
            w + ".starvation_limit must be >= 1 (got " +
            std::to_string(starvation_limit) +
            "): the bound on consecutive higher-priority dispatches a "
            "waiting class can be passed over");
    }
    if (!model_name.empty() && registry_dir.empty()) {
        throw std::invalid_argument(
            w + ".model_name is set but .registry_dir is empty: a "
            "registry name is only meaningful with a registry "
            "directory to publish into");
    }
}

InferenceEngine::InferenceEngine(Workload workload, const ServeConfig &cfg)
    : workload_(workload), cfg_(cfg)
{
    cfg_.validate("ServeConfig");
    slots_.reserve(static_cast<size_t>(cfg_.workers));
    for (int i = 0; i < cfg_.workers; ++i) {
        auto slot = std::make_unique<Slot>();
        slot->model = make_model(workload_);
        slots_.push_back(std::move(slot));
    }
}

InferenceEngine::Slot &
InferenceEngine::claim(const SnapshotHandle &snap)
{
    const void *id = snap.valid() ? snap.owner().get() : nullptr;
    std::unique_lock<std::mutex> lk(pool_mu_);
    for (;;) {
        // Prefer a free slot that already holds this snapshot's weights
        // (serving affinity: no reload); fall back to any free slot.
        Slot *any_free = nullptr;
        for (auto &sp : slots_) {
            if (sp->busy)
                continue;
            if (sp->loaded.get() == id) {
                sp->busy = true;
                return *sp;
            }
            if (any_free == nullptr)
                any_free = sp.get();
        }
        if (any_free != nullptr) {
            any_free->busy = true;
            return *any_free;
        }
        // Every slot busy: wait for whichever frees first. release()
        // signals the pool, so N waiters over N slots always make
        // progress on any freed slot.
        free_cv_.wait(lk);
    }
}

void
InferenceEngine::release(Slot &s)
{
    {
        std::lock_guard<std::mutex> lk(pool_mu_);
        s.busy = false;
    }
    free_cv_.notify_one();
}

InferenceEngine::Lease::Lease(InferenceEngine &eng,
                              const SnapshotHandle &snap)
    : eng_(&eng), slot_(&eng.claim(snap))
{
    // The weight load runs outside pool_mu_: the busy flag makes the
    // slot exclusively ours, so only the pool scan ever holds the lock.
    if (snap.valid() && slot_->loaded.get() != snap.owner().get()) {
        const std::span<const float> w = snap.weights();
        slot_->model.set_flat_weights(w.data(), w.size());
        slot_->loaded = snap.owner();
    }
}

EvalStats
InferenceEngine::evaluate(const SnapshotHandle &snap, const Dataset &test,
                          int fan_out)
{
    EvalStats st;
    // Only a valid handle carries a meaningful epoch; an invalid one
    // scores nothing and its epoch field is garbage, so stamping it
    // would make "nothing ran" indistinguishable from a real epoch-N
    // result. samples stays 0 whenever no row was scored.
    if (snap.valid())
        st.epoch = snap.epoch();
    if (!snap.valid() || test.empty())
        return st;
    st.samples = static_cast<int>(test.size());

    const int n = st.samples;
    const int bs = cfg_.batch_size;
    const int batches = (n + bs - 1) / bs;
    const int threads =
        std::clamp(fan_out > 0 ? fan_out : cfg_.workers, 1, batches);

    // Per-batch partial results, reduced in batch order below: the
    // outcome is identical whatever the fan-out.
    std::vector<int> correct(static_cast<size_t>(batches), 0);
    std::vector<double> loss(static_cast<size_t>(batches), 0.0);
    auto worker = [&](int tid) {
        Lease lease(*this, snap);
        SoftmaxCrossEntropy lossfn;
        std::vector<int> idx;
        for (int b = tid; b < batches; b += threads) {
            const int begin = b * bs;
            const int end = std::min(n, begin + bs);
            idx.resize(static_cast<size_t>(end - begin));
            std::iota(idx.begin(), idx.end(), begin);
            Tensor logits = lease.model().infer(test.batch_x(idx));
            // loss.forward returns the batch mean; weight it back to a
            // sum so the dataset mean is exact with a ragged tail.
            loss[static_cast<size_t>(b)] =
                lossfn.forward(logits, test.batch_y(idx)) * (end - begin);
            correct[static_cast<size_t>(b)] = lossfn.correct();
        }
    };
    if (threads == 1) {
        worker(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(static_cast<size_t>(threads));
        for (int t = 0; t < threads; ++t)
            pool.emplace_back(worker, t);
        for (auto &t : pool)
            t.join();
    }

    double loss_sum = 0.0;
    for (int b = 0; b < batches; ++b) {
        st.correct += correct[static_cast<size_t>(b)];
        loss_sum += loss[static_cast<size_t>(b)];
    }
    st.accuracy = static_cast<double>(st.correct) / n;
    st.mean_loss = loss_sum / n;
    return st;
}

std::vector<int>
InferenceEngine::classify(const SnapshotHandle &snap, const Dataset &data,
                          const std::vector<int> &indices)
{
    std::vector<int> out;
    if (!snap.valid() || indices.empty())
        return out;
    out.reserve(indices.size());
    Lease lease(*this, snap);
    const size_t bs = static_cast<size_t>(cfg_.batch_size);
    std::vector<int> chunk;
    for (size_t begin = 0; begin < indices.size(); begin += bs) {
        const size_t end = std::min(indices.size(), begin + bs);
        chunk.assign(indices.begin() + static_cast<ptrdiff_t>(begin),
                     indices.begin() + static_cast<ptrdiff_t>(end));
        Tensor logits = lease.model().infer(data.batch_x(chunk));
        const std::vector<int> cls = argmax_rows(logits);
        out.insert(out.end(), cls.begin(), cls.end());
    }
    return out;
}

Tensor
InferenceEngine::forward(const SnapshotHandle &snap, Tensor batch)
{
    // Throw, not assert: a Release build must never silently serve a
    // slot whose scratch model has no weights loaded.
    if (!snap.valid()) {
        throw std::invalid_argument(
            "InferenceEngine::forward requires a valid snapshot handle "
            "(no model version published/attached yet)");
    }
    Lease lease(*this, snap);
    return lease.model().infer(std::move(batch));
}

} // namespace autofl
