#include "serve/inference_engine.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>

#include "nn/loss.h"

namespace autofl {

void
ServeConfig::validate(const char *who) const
{
    const std::string w(who);
    if (batch_size < 1) {
        throw std::invalid_argument(
            w + ".batch_size must be >= 1 (got " +
            std::to_string(batch_size) +
            "): inference folds batch_size samples into each forward "
            "pass; use 1 for the per-sample path");
    }
    if (workers < 1) {
        throw std::invalid_argument(
            w + ".workers must be >= 1 (got " + std::to_string(workers) +
            "): the inference engine needs at least one worker slot");
    }
    if (max_snapshot_lag < 0) {
        throw std::invalid_argument(
            w + ".max_snapshot_lag must be >= 0 (got " +
            std::to_string(max_snapshot_lag) +
            "): 0 always serves the freshest snapshot; a positive lag "
            "lets cached handles trail that many epochs");
    }
}

InferenceEngine::InferenceEngine(Workload workload, const ServeConfig &cfg)
    : workload_(workload), cfg_(cfg)
{
    cfg_.validate("ServeConfig");
    slots_.reserve(static_cast<size_t>(cfg_.workers));
    for (int i = 0; i < cfg_.workers; ++i) {
        auto slot = std::make_unique<Slot>();
        slot->model = make_model(workload_);
        slots_.push_back(std::move(slot));
    }
}

InferenceEngine::Slot &
InferenceEngine::claim(const SnapshotHandle &snap)
{
    const size_t n = slots_.size();
    size_t start;
    {
        std::lock_guard<std::mutex> lk(claim_mu_);
        start = next_slot_++;
    }
    const std::vector<float> *id =
        snap.valid() ? snap.shared().get() : nullptr;
    // Pass 0 keeps only a free slot that already holds this snapshot's
    // weights (serving affinity: no reload); pass 1 takes any free slot.
    for (int pass = 0; pass < 2; ++pass) {
        for (size_t i = 0; i < n; ++i) {
            Slot &s = *slots_[(start + i) % n];
            if (!s.mu.try_lock())
                continue;
            if (pass == 0 && s.loaded.get() != id) {
                s.mu.unlock();
                continue;
            }
            return s;
        }
    }
    // Every slot busy: queue on one deterministically.
    Slot &s = *slots_[start % n];
    s.mu.lock();
    return s;
}

InferenceEngine::Lease::Lease(InferenceEngine &eng,
                              const SnapshotHandle &snap)
    : slot_(&eng.claim(snap))
{
    if (snap.valid() && slot_->loaded.get() != snap.shared().get()) {
        slot_->model.set_flat_weights(snap.weights());
        slot_->loaded = snap.shared();
    }
}

EvalStats
InferenceEngine::evaluate(const SnapshotHandle &snap, const Dataset &test,
                          int fan_out)
{
    EvalStats st;
    st.epoch = snap.epoch();
    // An invalid handle (or empty set) scores nothing: samples stays 0
    // so the caller can tell "nothing ran" from a real 0% result.
    if (!snap.valid() || test.empty())
        return st;
    st.samples = static_cast<int>(test.size());

    const int n = st.samples;
    const int bs = cfg_.batch_size;
    const int batches = (n + bs - 1) / bs;
    const int threads =
        std::clamp(fan_out > 0 ? fan_out : cfg_.workers, 1, batches);

    // Per-batch partial results, reduced in batch order below: the
    // outcome is identical whatever the fan-out.
    std::vector<int> correct(static_cast<size_t>(batches), 0);
    std::vector<double> loss(static_cast<size_t>(batches), 0.0);
    auto worker = [&](int tid) {
        Lease lease(*this, snap);
        SoftmaxCrossEntropy lossfn;
        std::vector<int> idx;
        for (int b = tid; b < batches; b += threads) {
            const int begin = b * bs;
            const int end = std::min(n, begin + bs);
            idx.resize(static_cast<size_t>(end - begin));
            std::iota(idx.begin(), idx.end(), begin);
            Tensor logits = lease.model().infer(test.batch_x(idx));
            // loss.forward returns the batch mean; weight it back to a
            // sum so the dataset mean is exact with a ragged tail.
            loss[static_cast<size_t>(b)] =
                lossfn.forward(logits, test.batch_y(idx)) * (end - begin);
            correct[static_cast<size_t>(b)] = lossfn.correct();
        }
    };
    if (threads == 1) {
        worker(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(static_cast<size_t>(threads));
        for (int t = 0; t < threads; ++t)
            pool.emplace_back(worker, t);
        for (auto &t : pool)
            t.join();
    }

    double loss_sum = 0.0;
    for (int b = 0; b < batches; ++b) {
        st.correct += correct[static_cast<size_t>(b)];
        loss_sum += loss[static_cast<size_t>(b)];
    }
    st.accuracy = static_cast<double>(st.correct) / n;
    st.mean_loss = loss_sum / n;
    return st;
}

std::vector<int>
InferenceEngine::classify(const SnapshotHandle &snap, const Dataset &data,
                          const std::vector<int> &indices)
{
    std::vector<int> out;
    if (!snap.valid() || indices.empty())
        return out;
    out.reserve(indices.size());
    Lease lease(*this, snap);
    const size_t bs = static_cast<size_t>(cfg_.batch_size);
    std::vector<int> chunk;
    for (size_t begin = 0; begin < indices.size(); begin += bs) {
        const size_t end = std::min(indices.size(), begin + bs);
        chunk.assign(indices.begin() + static_cast<ptrdiff_t>(begin),
                     indices.begin() + static_cast<ptrdiff_t>(end));
        Tensor logits = lease.model().infer(data.batch_x(chunk));
        const std::vector<int> cls = argmax_rows(logits);
        out.insert(out.end(), cls.begin(), cls.end());
    }
    return out;
}

Tensor
InferenceEngine::forward(const SnapshotHandle &snap, Tensor batch)
{
    assert(snap.valid());
    Lease lease(*this, snap);
    return lease.model().infer(std::move(batch));
}

} // namespace autofl
