#include "serve/dynamic_batcher.h"

#include <cassert>
#include <cstring>
#include <utility>

#include "nn/loss.h"
#include "serve/model_service.h"

namespace autofl {

namespace {

/** Complete one request with a data-free status. */
void
finish(InferenceRequest &req, ReplyStatus status)
{
    InferenceReply reply;
    reply.status = status;
    reply.completed_at = std::chrono::steady_clock::now();
    req.promise.set_value(std::move(reply));
}

} // namespace

DynamicBatcher::Model::Model(ModelService &svc, const ServeConfig &c,
                             int axis, int rank)
    : service(svc), cfg(c), batch_axis(axis), batch_rank(rank),
      queue(c.queue_depth, c.shed, c.starvation_limit)
{
}

DynamicBatcher::DynamicBatcher(int workers)
    : workers_(workers < 1 ? 1 : workers)
{
}

DynamicBatcher::DynamicBatcher(ModelService &service, const ServeConfig &cfg)
    : DynamicBatcher(cfg.workers)
{
    add_model(service, cfg);
    start();
}

DynamicBatcher::~DynamicBatcher()
{
    shutdown();
}

int
DynamicBatcher::add_model(ModelService &service, const ServeConfig &cfg)
{
    cfg.validate("DynamicBatcher.add_model cfg");
    std::lock_guard<std::mutex> lk(mu_);
    assert(!started_ && "add_model must precede start()");
    models_.push_back(std::make_unique<Model>(
        service, cfg, model_batch_axis(service.workload()),
        static_cast<int>(model_batch_shape(service.workload(), 1).size())));
    return static_cast<int>(models_.size()) - 1;
}

void
DynamicBatcher::start()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        assert(!started_);
        assert(!models_.empty() && "start() needs at least one model");
        started_ = true;

        // Weighted slot guarantees: model i holds
        // max(1, floor(workers * w_i / sum_w)) of the shared dispatcher
        // slots whenever it has queued work. Every model gets at least
        // one — weights shape the split, they cannot silence a model.
        double sum_w = 0.0;
        for (const auto &m : models_)
            sum_w += m->cfg.weight;
        for (auto &m : models_) {
            const double share =
                static_cast<double>(workers_) * m->cfg.weight / sum_w;
            m->guarantee = share < 1.0 ? 1 : static_cast<int>(share);
        }
    }
    dispatchers_.reserve(static_cast<size_t>(workers_));
    for (int i = 0; i < workers_; ++i)
        dispatchers_.emplace_back([this] { dispatch_loop(); });
}

std::future<InferenceReply>
DynamicBatcher::submit(int model, Tensor rows, bool want_classes,
                       SubmitOptions opts)
{
    InferenceRequest req;
    std::future<InferenceReply> fut = req.promise.get_future();

    assert(model >= 0 && model < model_count());
    Model &m = *models_[static_cast<size_t>(model)];

    // Validate the shape up front: coalescing concatenates raw buffers
    // along the batch axis, so a tensor that does not fit the served
    // model must fail typed here, never reach a memcpy.
    const int n =
        rows.rank() == m.batch_rank ? rows.dim(m.batch_axis) : 0;
    if (n < 1 ||
        rows.shape() != model_batch_shape(m.service.workload(), n)) {
        {
            std::lock_guard<std::mutex> lk(mu_);
            ++m.stats.submitted;
        }
        finish(req, ReplyStatus::BadRequest);
        return fut;
    }
    req.samples = n;
    req.rows = std::move(rows);
    req.want_classes = want_classes;
    req.priority = opts.priority;
    const uint64_t now = serve_now_us();
    // An explicit deadline wins; otherwise the model's configured
    // default SLO applies (0 = none).
    req.deadline_us = opts.deadline_us != 0
        ? opts.deadline_us
        : (m.cfg.default_deadline_us != 0
               ? now + m.cfg.default_deadline_us
               : 0);

    InferenceRequest evicted;
    bool has_evicted = false;
    bool was_closed = false;
    RequestQueue::Push outcome = RequestQueue::Push::Shed;
    {
        std::lock_guard<std::mutex> lk(mu_);
        ++m.stats.submitted;
        // The closed check and the push share one critical section: a
        // request must never enter a queue shutdown() has already
        // drained — its promise would never resolve.
        was_closed = closed_;
        if (!was_closed) {
            // Count admission BEFORE the push is visible: a dispatcher
            // may pop and complete the request the moment it lands, and
            // a concurrent stats reader must never see
            // completed > admitted. The optimistic increment is taken
            // back on refusal.
            ++m.stats.admitted;
            outcome = m.queue.push(req, now, evicted, has_evicted);
            switch (outcome) {
              case RequestQueue::Push::Admitted:
                if (has_evicted)
                    ++m.stats.shed;
                break;
              case RequestQueue::Push::Shed:
                --m.stats.admitted;
                ++m.stats.shed;
                break;
              case RequestQueue::Push::Expired:
                --m.stats.admitted;
                ++m.stats.deadline_shed;
                break;
            }
        }
    }
    if (was_closed) {
        finish(req, ReplyStatus::Shutdown);
        return fut;
    }
    switch (outcome) {
      case RequestQueue::Push::Admitted:
        if (has_evicted)
            finish(evicted, ReplyStatus::Shed);
        // notify_all, not notify_one: one shared CV serves both the
        // idle outer wait and the coalesce wait, so a single
        // notification could be swallowed by a coalesce-waiting
        // dispatcher whose own predicate is still false while an idle
        // dispatcher sleeps on.
        work_cv_.notify_all();
        break;
      case RequestQueue::Push::Shed:
        finish(req, ReplyStatus::Shed);
        break;
      case RequestQueue::Push::Expired:
        finish(req, ReplyStatus::DeadlineExceeded);
        break;
    }
    return fut;
}

int
DynamicBatcher::pick_model() const
{
    // Below-guarantee models with work always win the slot — that is
    // the isolation property: an overloaded neighbor saturating its own
    // share cannot take the slots this model is entitled to. Only when
    // no entitled model has work may a model borrow beyond its
    // guarantee (work-conserving); ties fall to the least loaded
    // relative to weight.
    int pick = -1;
    bool pick_entitled = false;
    double pick_load = 0.0;
    for (int i = 0; i < static_cast<int>(models_.size()); ++i) {
        const Model &m = *models_[static_cast<size_t>(i)];
        if (m.queue.empty())
            continue;
        const bool entitled = m.running < m.guarantee;
        const double load =
            static_cast<double>(m.running + 1) / m.cfg.weight;
        if (pick < 0 || (entitled && !pick_entitled) ||
            (entitled == pick_entitled && load < pick_load)) {
            pick = i;
            pick_entitled = entitled;
            pick_load = load;
        }
    }
    return pick;
}

void
DynamicBatcher::dispatch_loop()
{
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        int idx = -1;
        work_cv_.wait(lk, [&] {
            return closed_ || (idx = pick_model()) >= 0;
        });
        if (closed_)
            return;  // Leftovers go to shutdown()'s drain, typed.
        Model &m = *models_[static_cast<size_t>(idx)];
        m.running += 1;  // Claim the slot before any waiting.

        // Coalesce: the batch opened when this slot claimed the model;
        // wait at most batch_timeout_us for batch_size rows to gather,
        // so a lone request never waits for peers that may not come.
        if (m.cfg.batch_timeout_us > 0 &&
            m.queue.queued_rows() < m.cfg.batch_size) {
            const auto deadline = std::chrono::steady_clock::now() +
                std::chrono::microseconds(m.cfg.batch_timeout_us);
            work_cv_.wait_until(lk, deadline, [&] {
                return closed_ ||
                    m.queue.queued_rows() >= m.cfg.batch_size;
            });
        }
        if (closed_) {
            m.running -= 1;
            return;
        }

        std::vector<InferenceRequest> batch, infeasible;
        m.queue.pop_batch(batch, infeasible, m.cfg.batch_size,
                          serve_now_us(), m.ewma_us);
        m.stats.deadline_shed += infeasible.size();
        lk.unlock();

        // Shed the provably late ones without executing them.
        for (auto &req : infeasible)
            finish(req, ReplyStatus::DeadlineExceeded);

        uint64_t dur_us = 0;
        if (!batch.empty()) {
            const uint64_t t0 = serve_now_us();
            dispatch(m, batch);
            dur_us = serve_now_us() - t0;
        }

        lk.lock();
        m.running -= 1;
        if (dur_us != 0) {
            // EWMA of batch service time: the feasibility estimate used
            // to shed requests that cannot finish before their
            // deadline. Full-batch durations make it conservative for
            // partial batches — sheds err toward firing only when the
            // deadline is truly hopeless or the backlog deep.
            m.ewma_us = m.ewma_us == 0 ? dur_us
                                       : (3 * m.ewma_us + dur_us) / 4;
        }
        // A dispatch may have freed guarantee headroom for another
        // model's waiting dispatcher; and infeasible-only pops consumed
        // queue entries others may be waiting to coalesce on.
        work_cv_.notify_all();
    }
}

void
DynamicBatcher::dispatch(Model &m, std::vector<InferenceRequest> &batch)
{
    assert(!batch.empty());
    const SnapshotHandle snap = m.service.acquire();
    if (!snap.valid()) {
        for (auto &req : batch)
            finish(req, ReplyStatus::NoModel);
        return;
    }

    // Coalesce every request's samples into one model-ready tensor
    // along the workload's batch axis (axis 0 for the image workloads;
    // the LSTM's batch_x layout is time-major {seq, batch, vocab}, so
    // its samples concatenate along axis 1). All requests target the
    // same architecture: every dim but the batch axis must agree.
    // Sample counts are taken up front — the single-request fast path
    // moves the tensor out.
    const int axis = m.batch_axis;
    std::vector<int> counts;
    counts.reserve(batch.size());
    int total = 0;
    for (const auto &req : batch) {
        assert(req.samples == req.rows.dim(axis));
        counts.push_back(req.samples);
        total += req.samples;
    }
    Tensor big;
    if (batch.size() == 1) {
        big = std::move(batch[0].rows);
    } else {
        std::vector<int> shape = batch[0].rows.shape();
        // outer: dims before the batch axis (the LSTM's time steps);
        // inner: elements per sample per outer index.
        size_t outer = 1;
        for (int d = 0; d < axis; ++d)
            outer *= static_cast<size_t>(shape[static_cast<size_t>(d)]);
        size_t inner = 1;
        for (int d = axis + 1; d < static_cast<int>(shape.size()); ++d)
            inner *= static_cast<size_t>(shape[static_cast<size_t>(d)]);
        shape[static_cast<size_t>(axis)] = total;
        big = Tensor(std::move(shape));
        for (size_t o = 0; o < outer; ++o) {
            size_t off = 0;  // Sample offset within this outer index.
            for (size_t r = 0; r < batch.size(); ++r) {
                const Tensor &src = batch[r].rows;
                const size_t n = static_cast<size_t>(counts[r]);
                std::memcpy(
                    big.data() +
                        (o * static_cast<size_t>(total) + off) * inner,
                    src.data() + o * n * inner, n * inner * sizeof(float));
                off += n;
            }
        }
    }

    // One inference pass over the coalesced batch; forward() claims a
    // free engine slot (waiting on the pool's condvar under load).
    Tensor logits = m.service.engine().forward(snap, std::move(big));
    const int classes = logits.dim(-1);

    // Count before fulfilling any promise: a caller whose future just
    // resolved may read the stats immediately.
    {
        std::lock_guard<std::mutex> lk(mu_);
        ++m.stats.batches;
        m.stats.batched_rows += static_cast<uint64_t>(total);
        m.stats.completed += batch.size();
    }

    // Split the logits back per request, in scheduling order.
    const auto done = std::chrono::steady_clock::now();
    int row = 0;
    for (size_t i = 0; i < batch.size(); ++i) {
        InferenceRequest &req = batch[i];
        const int n = counts[i];
        InferenceReply reply;
        reply.status = ReplyStatus::Ok;
        reply.epoch = snap.epoch();
        reply.batch_rows = total;
        reply.completed_at = done;
        reply.logits = Tensor({n, classes});
        std::memcpy(reply.logits.data(),
                    logits.data() +
                        static_cast<size_t>(row) *
                            static_cast<size_t>(classes),
                    static_cast<size_t>(n) * static_cast<size_t>(classes) *
                        sizeof(float));
        if (req.want_classes)
            reply.classes = argmax_rows(reply.logits);
        req.promise.set_value(std::move(reply));
        row += n;
    }
}

void
DynamicBatcher::shutdown()
{
    // Serialized, not merely flagged: a second caller (say the
    // destructor racing an explicit stop_serving) must not return
    // while the first is still joining dispatchers.
    std::lock_guard<std::mutex> slk(shutdown_mu_);
    if (stopped_)
        return;
    {
        std::lock_guard<std::mutex> lk(mu_);
        closed_ = true;
    }
    work_cv_.notify_all();
    for (auto &t : dispatchers_)
        t.join();
    // Whatever the dispatchers did not drain fails typed, not silently.
    std::vector<InferenceRequest> leftovers;
    {
        std::lock_guard<std::mutex> lk(mu_);
        for (auto &m : models_)
            for (auto &req : m->queue.drain())
                leftovers.push_back(std::move(req));
    }
    for (auto &req : leftovers)
        finish(req, ReplyStatus::Shutdown);
    stopped_ = true;
}

ServeStats
DynamicBatcher::stats(int model) const
{
    assert(model >= 0 && model < model_count());
    std::lock_guard<std::mutex> lk(mu_);
    return models_[static_cast<size_t>(model)]->stats;
}

int
DynamicBatcher::model_count() const
{
    return static_cast<int>(models_.size());
}

} // namespace autofl
