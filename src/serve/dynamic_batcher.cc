#include "serve/dynamic_batcher.h"

#include <cassert>
#include <cstring>
#include <utility>

#include "nn/loss.h"
#include "serve/model_service.h"

namespace autofl {

namespace {

/** Complete one request with a data-free status. */
void
finish(InferenceRequest &req, ReplyStatus status)
{
    InferenceReply reply;
    reply.status = status;
    reply.completed_at = std::chrono::steady_clock::now();
    req.promise.set_value(std::move(reply));
}

} // namespace

DynamicBatcher::DynamicBatcher(ModelService &service,
                               const ServeConfig &cfg)
    : service_(service), cfg_(cfg),
      batch_axis_(model_batch_axis(service.workload())),
      batch_rank_(static_cast<int>(
          model_batch_shape(service.workload(), 1).size())),
      queue_(cfg.queue_depth, cfg.shed)
{
    dispatchers_.reserve(static_cast<size_t>(cfg_.workers));
    for (int i = 0; i < cfg_.workers; ++i)
        dispatchers_.emplace_back([this] { dispatch_loop(); });
}

DynamicBatcher::~DynamicBatcher()
{
    shutdown();
}

std::future<InferenceReply>
DynamicBatcher::submit(Tensor rows, bool want_classes)
{
    InferenceRequest req;
    std::future<InferenceReply> fut = req.promise.get_future();

    // Validate the shape up front: coalescing concatenates raw buffers
    // along the batch axis, so a tensor that does not fit the served
    // model must fail typed here, never reach a memcpy.
    const int n =
        rows.rank() == batch_rank_ ? rows.dim(batch_axis_) : 0;
    if (n < 1 ||
        rows.shape() != model_batch_shape(service_.workload(), n)) {
        {
            std::lock_guard<std::mutex> lk(stats_mu_);
            ++stats_.submitted;
        }
        finish(req, ReplyStatus::BadRequest);
        return fut;
    }
    req.samples = n;
    req.rows = std::move(rows);
    req.want_classes = want_classes;

    // Count BEFORE the push: a dispatcher may pop and complete the
    // request the moment it lands in the queue, and a concurrent stats
    // reader must never see completed > admitted. The optimistic
    // admitted increment is taken back on the non-admitted outcomes.
    {
        std::lock_guard<std::mutex> lk(stats_mu_);
        ++stats_.submitted;
        ++stats_.admitted;
    }
    InferenceRequest evicted;
    bool has_evicted = false;
    switch (queue_.push(req, evicted, has_evicted)) {
      case RequestQueue::Push::Admitted: {
        if (has_evicted) {
            {
                std::lock_guard<std::mutex> lk(stats_mu_);
                ++stats_.shed;
            }
            finish(evicted, ReplyStatus::Shed);
        }
        break;
      }
      case RequestQueue::Push::Shed: {
        {
            std::lock_guard<std::mutex> lk(stats_mu_);
            --stats_.admitted;
            ++stats_.shed;
        }
        finish(req, ReplyStatus::Shed);
        break;
      }
      case RequestQueue::Push::Closed: {
        {
            std::lock_guard<std::mutex> lk(stats_mu_);
            --stats_.admitted;
        }
        finish(req, ReplyStatus::Shutdown);
        break;
      }
    }
    return fut;
}

void
DynamicBatcher::dispatch_loop()
{
    std::vector<InferenceRequest> batch;
    while (queue_.pop_batch(batch, cfg_.batch_size,
                            std::chrono::microseconds(
                                cfg_.batch_timeout_us))) {
        dispatch(batch);
        batch.clear();
    }
}

void
DynamicBatcher::dispatch(std::vector<InferenceRequest> &batch)
{
    assert(!batch.empty());
    const SnapshotHandle snap = service_.acquire();
    if (!snap.valid()) {
        for (auto &req : batch)
            finish(req, ReplyStatus::NoModel);
        return;
    }

    // Coalesce every request's samples into one model-ready tensor
    // along the workload's batch axis (axis 0 for the image workloads;
    // the LSTM's batch_x layout is time-major {seq, batch, vocab}, so
    // its samples concatenate along axis 1). All requests target the
    // same architecture: every dim but the batch axis must agree.
    // Sample counts are taken up front — the single-request fast path
    // moves the tensor out.
    const int axis = batch_axis_;
    std::vector<int> counts;
    counts.reserve(batch.size());
    int total = 0;
    for (const auto &req : batch) {
        assert(req.samples == req.rows.dim(axis));
        counts.push_back(req.samples);
        total += req.samples;
    }
    Tensor big;
    if (batch.size() == 1) {
        big = std::move(batch[0].rows);
    } else {
        std::vector<int> shape = batch[0].rows.shape();
        // outer: dims before the batch axis (the LSTM's time steps);
        // inner: elements per sample per outer index.
        size_t outer = 1;
        for (int d = 0; d < axis; ++d)
            outer *= static_cast<size_t>(shape[static_cast<size_t>(d)]);
        size_t inner = 1;
        for (int d = axis + 1; d < static_cast<int>(shape.size()); ++d)
            inner *= static_cast<size_t>(shape[static_cast<size_t>(d)]);
        shape[static_cast<size_t>(axis)] = total;
        big = Tensor(std::move(shape));
        for (size_t o = 0; o < outer; ++o) {
            size_t off = 0;  // Sample offset within this outer index.
            for (size_t r = 0; r < batch.size(); ++r) {
                const Tensor &src = batch[r].rows;
                const size_t n = static_cast<size_t>(counts[r]);
                std::memcpy(
                    big.data() +
                        (o * static_cast<size_t>(total) + off) * inner,
                    src.data() + o * n * inner, n * inner * sizeof(float));
                off += n;
            }
        }
    }

    // One inference pass over the coalesced batch; forward() claims a
    // free engine slot (waiting on the pool's condvar under load).
    Tensor logits = service_.engine().forward(snap, std::move(big));
    const int classes = logits.dim(-1);

    // Count before fulfilling any promise: a caller whose future just
    // resolved may read the stats immediately.
    {
        std::lock_guard<std::mutex> lk(stats_mu_);
        ++stats_.batches;
        stats_.batched_rows += static_cast<uint64_t>(total);
        stats_.completed += batch.size();
    }

    // Split the logits back per request, in arrival order.
    const auto done = std::chrono::steady_clock::now();
    int row = 0;
    for (size_t i = 0; i < batch.size(); ++i) {
        InferenceRequest &req = batch[i];
        const int n = counts[i];
        InferenceReply reply;
        reply.status = ReplyStatus::Ok;
        reply.epoch = snap.epoch();
        reply.batch_rows = total;
        reply.completed_at = done;
        reply.logits = Tensor({n, classes});
        std::memcpy(reply.logits.data(),
                    logits.data() +
                        static_cast<size_t>(row) *
                            static_cast<size_t>(classes),
                    static_cast<size_t>(n) * static_cast<size_t>(classes) *
                        sizeof(float));
        if (req.want_classes)
            reply.classes = argmax_rows(reply.logits);
        req.promise.set_value(std::move(reply));
        row += n;
    }
}

void
DynamicBatcher::shutdown()
{
    // Serialized, not merely flagged: a second caller (say the
    // destructor racing an explicit stop_serving) must not return
    // while the first is still joining dispatchers.
    std::lock_guard<std::mutex> lk(shutdown_mu_);
    if (stopped_)
        return;
    queue_.close();
    for (auto &t : dispatchers_)
        t.join();
    // Whatever the dispatchers did not drain fails typed, not silently.
    for (auto &req : queue_.drain())
        finish(req, ReplyStatus::Shutdown);
    stopped_ = true;
}

ServeStats
DynamicBatcher::stats() const
{
    std::lock_guard<std::mutex> lk(stats_mu_);
    return stats_;
}

} // namespace autofl
