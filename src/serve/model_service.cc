#include "serve/model_service.h"

#include <cassert>

namespace autofl {

ModelService::ModelService(Workload workload, ServeConfig cfg)
    : workload_(workload), cfg_(cfg), engine_(workload, cfg)
{
    // Epoch 0, no weights: acquire() yields an invalid handle until the
    // first publish (or an attached store, whose epoch 0 is the init
    // weights).
}

void
ModelService::attach_store(const ShardedStore *store)
{
    assert(store != nullptr);
    std::lock_guard<std::mutex> lk(mu_);
    assert(local_.weights == nullptr);  // One source per service.
    store_ = store;
}

uint64_t
ModelService::publish(const std::vector<float> &weights)
{
    std::lock_guard<std::mutex> lk(mu_);
    assert(store_ == nullptr);  // Store-backed services never publish.
    if (local_.weights != nullptr && *local_.weights == weights)
        return local_.epoch;  // Same version: epoch unchanged.
    local_ = StoreSnapshot{
        next_epoch_++,
        std::make_shared<const std::vector<float>>(weights)};
    return local_.epoch;
}

SnapshotHandle
ModelService::acquire() const
{
    if (store_ != nullptr)
        return SnapshotHandle(store_->latest_snapshot());
    std::lock_guard<std::mutex> lk(mu_);
    return SnapshotHandle(local_);
}

bool
ModelService::refresh(SnapshotHandle &h) const
{
    SnapshotHandle latest = acquire();
    if (!latest.valid())
        return false;
    if (h.valid() &&
        latest.epoch() - h.epoch() <=
            static_cast<uint64_t>(cfg_.max_snapshot_lag))
        return false;
    h = std::move(latest);
    return true;
}

} // namespace autofl
