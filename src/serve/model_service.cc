#include "serve/model_service.h"

#include <cassert>
#include <stdexcept>
#include <string>
#include <utility>

#include "serve/dynamic_batcher.h"

namespace autofl {

ModelService::ModelService(Workload workload, ServeConfig cfg)
    : workload_(workload), cfg_(cfg), engine_(workload, cfg)
{
    // Epoch 0, no weights: acquire() yields an invalid handle until the
    // first publish (or an attached store, whose epoch 0 is the init
    // weights).
}

// Out of line for the forward-declared DynamicBatcher; the member is
// declared last, so its destructor joins the dispatchers before the
// engine or the snapshot sources go away.
ModelService::~ModelService() = default;

void
ModelService::attach_store(const ShardedStore *store)
{
    assert(store != nullptr);
    std::lock_guard<std::mutex> lk(mu_);
    assert(local_.weights == nullptr);  // One source per service.
    assert(artifact_.load(std::memory_order_relaxed) == nullptr);
    // Set-once-before-use: flipping sources mid-flight would tear the
    // epoch sequence consumers reason about.
    assert(store_.load(std::memory_order_relaxed) == nullptr);
    store_.store(store, std::memory_order_release);
}

void
ModelService::attach_artifact(
    std::shared_ptr<const store::MappedSnapshot> artifact)
{
    assert(artifact != nullptr);
    std::lock_guard<std::mutex> lk(mu_);
    assert(local_.weights == nullptr);  // One source per service.
    assert(store_.load(std::memory_order_relaxed) == nullptr);
    assert(artifact_.load(std::memory_order_relaxed) == nullptr);

    // Throw, not assert: an operator pointing a Release serving
    // process at the wrong model's artifact must get a diagnosis, not
    // garbage predictions.
    const size_t want = engine_.model_params();
    if (artifact->dim() != want) {
        throw std::invalid_argument(
            "ModelService::attach_artifact: artifact holds " +
            std::to_string(artifact->dim()) + " weights but " +
            workload_name(workload_) + " has " +
            std::to_string(want) +
            " parameters: this artifact was written for a different "
            "model");
    }
    const uint64_t expect =
        store::model_topology_hash(workload_name(workload_), want);
    if (artifact->meta().topology_hash != expect) {
        throw std::invalid_argument(
            "ModelService::attach_artifact: artifact topology hash does "
            "not match " +
            workload_name(workload_) +
            ": same weight count, different architecture — refusing to "
            "scatter weights into the wrong layers");
    }

    artifact_owner_ = std::move(artifact);
    artifact_.store(artifact_owner_.get(), std::memory_order_release);
}

uint64_t
ModelService::publish(const std::vector<float> &weights)
{
    std::lock_guard<std::mutex> lk(mu_);
    // Store- and artifact-backed services never publish.
    assert(store_.load(std::memory_order_relaxed) == nullptr);
    assert(artifact_.load(std::memory_order_relaxed) == nullptr);
    if (local_.weights != nullptr && *local_.weights == weights)
        return local_.epoch;  // Same version: epoch unchanged.
    local_ = StoreSnapshot{
        next_epoch_++,
        std::make_shared<const std::vector<float>>(weights)};
    return local_.epoch;
}

SnapshotHandle
ModelService::acquire() const
{
    // Lock-free on the store-backed path: attach_store's release store
    // pairs with this acquire load, and the store itself synchronizes
    // its snapshot publication.
    if (const ShardedStore *s = store_.load(std::memory_order_acquire))
        return SnapshotHandle(s->latest_snapshot());
    // Lock-free on the artifact path too: the mapping is immutable and
    // artifact_owner_ is never reassigned after the release store.
    if (const store::MappedSnapshot *a =
            artifact_.load(std::memory_order_acquire)) {
        return SnapshotHandle(a->meta().epoch, artifact_owner_, a->weights(),
                              a->dim());
    }
    std::lock_guard<std::mutex> lk(mu_);
    return SnapshotHandle(local_);
}

bool
ModelService::refresh(SnapshotHandle &h) const
{
    SnapshotHandle latest = acquire();
    if (!latest.valid())
        return false;
    if (h.valid() &&
        latest.epoch() - h.epoch() <=
            static_cast<uint64_t>(cfg_.max_snapshot_lag))
        return false;
    h = std::move(latest);
    return true;
}

std::future<InferenceReply>
ModelService::submit(Tensor rows, bool want_classes)
{
    // Option-less submissions inherit the configured default SLO class;
    // the default deadline is applied inside the batcher.
    SubmitOptions opts;
    opts.priority = cfg_.default_priority;
    return submit(std::move(rows), want_classes, opts);
}

std::future<InferenceReply>
ModelService::submit(Tensor rows, bool want_classes, SubmitOptions opts)
{
    DynamicBatcher *b = nullptr;
    {
        std::lock_guard<std::mutex> lk(batcher_mu_);
        if (!serving_stopped_ && !batcher_)
            batcher_ = std::make_unique<DynamicBatcher>(*this, cfg_);
        // A stopped batcher still takes submissions: its closed queue
        // fails them typed, counted and timestamped like any other
        // completion. It is never resurrected.
        b = batcher_.get();
    }
    if (b == nullptr) {
        // Stopped before the batcher ever existed: fail typed without
        // creating one (there are no stats to count into yet).
        std::promise<InferenceReply> p;
        InferenceReply reply;
        reply.status = ReplyStatus::Shutdown;
        reply.completed_at = std::chrono::steady_clock::now();
        p.set_value(std::move(reply));
        return p.get_future();
    }
    return b->submit(0, std::move(rows), want_classes, opts);
}

void
ModelService::stop_serving()
{
    DynamicBatcher *b = nullptr;
    {
        std::lock_guard<std::mutex> lk(batcher_mu_);
        serving_stopped_ = true;
        b = batcher_.get();
    }
    // Shut down outside batcher_mu_: the join can take as long as an
    // in-flight batch, and concurrent submit()/serving_stats() callers
    // must keep getting their immediate (typed) answers meanwhile.
    if (b != nullptr)
        b->shutdown();
}

ServeStats
ModelService::serving_stats() const
{
    std::lock_guard<std::mutex> lk(batcher_mu_);
    return batcher_ ? batcher_->stats(0) : ServeStats{};
}

} // namespace autofl
