/**
 * @file
 * RequestQueue: the admission-controlled waiting room of the serving
 * plane's dynamic batcher.
 *
 * Concurrent callers drop InferenceRequests here; dispatcher threads
 * pull them back out coalesced into batches (pop_batch closes a batch
 * at max_rows or a deadline, whichever first). The queue is bounded:
 * once ServeConfig::queue_depth requests wait, the shed policy decides
 * whether the newcomer or the oldest waiter is completed with a typed
 * ReplyStatus::Shed — overload degrades into fast typed rejections with
 * bounded latency for admitted work, never into an unbounded backlog.
 *
 * Pushes never block (shedding replaces back-pressure), so the only
 * condition variable is the consumer-side "work arrived" signal.
 */
#ifndef AUTOFL_SERVE_REQUEST_QUEUE_H
#define AUTOFL_SERVE_REQUEST_QUEUE_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include "serve/serve_config.h"
#include "tensor/tensor.h"

namespace autofl {

/** How one submitted request ended. */
enum class ReplyStatus {
    Ok,       ///< Served: logits (and classes, when asked) are filled.
    Shed,     ///< Rejected by admission control under overload.
    NoModel,  ///< No model version published yet at dispatch time.
    BadRequest,  ///< Input shape does not fit the served model.
    Shutdown, ///< The service stopped before the request was served.
};

/** Display name of a reply status. */
const char *reply_status_name(ReplyStatus s);

/** Completion of one submitted inference request. */
struct InferenceReply
{
    ReplyStatus status = ReplyStatus::Shutdown;
    Tensor logits;             ///< {samples, classes} when status == Ok.
    std::vector<int> classes;  ///< Argmax per sample, when requested.
    uint64_t epoch = 0;        ///< Snapshot version that answered.
    int batch_rows = 0;  ///< Samples in the coalesced batch served in.
    /** When the batcher completed the request (sheds stamp too), so an
     *  open-loop load generator can measure completion latency without
     *  polling the future. */
    std::chrono::steady_clock::time_point completed_at;
    bool ok() const { return status == ReplyStatus::Ok; }
};

/** One queued unit of work: model-ready input rows plus its promise. */
struct InferenceRequest
{
    Tensor rows;      ///< Model-ready input (layout per Dataset::batch_x).
    int samples = 1;  ///< Sample count along the workload's batch axis.
    bool want_classes = false;  ///< Also argmax the logits per sample.
    std::promise<InferenceReply> promise;
};

/** Serving-plane counters (monotone; snapshot via DynamicBatcher). */
struct ServeStats
{
    uint64_t submitted = 0;  ///< submit() calls observed.
    uint64_t admitted = 0;   ///< Requests that entered the queue.
    uint64_t shed = 0;       ///< Typed rejections (either shed policy).
    uint64_t completed = 0;  ///< Requests answered with Ok.
    uint64_t batches = 0;    ///< Coalesced engine batches dispatched.
    uint64_t batched_rows = 0;  ///< Total rows across those batches.

    /** Mean rows per dispatched batch (the coalescing win). */
    double
    mean_batch_rows() const
    {
        return batches ? static_cast<double>(batched_rows) /
                static_cast<double>(batches)
                       : 0.0;
    }
};

/** Bounded MPMC queue of inference requests with shed-based admission. */
class RequestQueue
{
  public:
    /**
     * @param depth Admission bound (>= 1).
     * @param policy What to do with new work once depth requests wait.
     */
    RequestQueue(int depth, ShedPolicy policy);

    RequestQueue(const RequestQueue &) = delete;
    RequestQueue &operator=(const RequestQueue &) = delete;

    /** Outcome of a push attempt. */
    enum class Push {
        Admitted,  ///< @p req entered the queue (possibly evicting).
        Shed,      ///< Queue full under RejectNew: @p req stays with the
                   ///< caller, who completes its promise as Shed.
        Closed,    ///< Queue closed: @p req stays with the caller.
    };

    /**
     * Try to enqueue @p req; consumes it only when admitted. Under
     * DropOldest a full queue admits @p req by evicting the oldest
     * waiter into @p evicted (set @p has_evicted) for the caller to
     * complete as Shed outside the lock.
     */
    Push push(InferenceRequest &req, InferenceRequest &evicted,
              bool &has_evicted);

    /**
     * Pull one coalesced batch: blocks until a request arrives (the
     * batch "opens"), then keeps gathering until the batch holds at
     * least @p max_rows rows or @p timeout has elapsed since it opened,
     * whichever first. Appends to @p out in arrival order.
     * @return False when the queue is closed and drained (dispatcher
     *         exit signal); @p out is untouched then.
     */
    bool pop_batch(std::vector<InferenceRequest> &out, int max_rows,
                   std::chrono::microseconds timeout);

    /**
     * Close the queue: subsequent pushes return Closed, blocked
     * pop_batch calls drain what is left and then return false.
     */
    void close();

    /**
     * Remove every queued request (for the owner to complete as
     * Shutdown). Call after close(); dispatchers may have drained some
     * already.
     */
    std::vector<InferenceRequest> drain();

    /** Requests currently waiting. */
    size_t size() const;

  private:
    const size_t depth_;
    const ShedPolicy policy_;

    mutable std::mutex mu_;
    std::condition_variable work_cv_;  ///< Signaled per admitted push.
    std::deque<InferenceRequest> q_;
    bool closed_ = false;
};

} // namespace autofl

#endif // AUTOFL_SERVE_REQUEST_QUEUE_H
