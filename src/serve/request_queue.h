/**
 * @file
 * RequestQueue: the SLO-aware waiting room of the serving plane.
 *
 * The queue orders work by scheduling class and deadline: strict
 * priority across classes with a starvation bound (a class passed over
 * starvation_limit times wins the next pick regardless), earliest
 * deadline first within a class, FIFO (admission sequence) at equal
 * deadlines. Deadline-less requests (deadline_us == 0) sort after every
 * deadlined peer of their class.
 *
 * Admission is bounded: once `depth` requests wait, the shed policy
 * decides whether the newcomer or the oldest waiter is completed with a
 * typed ReplyStatus::Shed. Requests whose deadline has already passed
 * at push — or provably cannot be met given the model's observed batch
 * service time at pop — are handed back for a typed
 * ReplyStatus::DeadlineExceeded *without ever running*: overload and
 * hopeless deadlines degrade into fast typed rejections, never into
 * wasted inference or an unbounded backlog.
 *
 * Unlike its pre-registry ancestor this class is NOT thread-safe: it is
 * a pure scheduling structure. The multi-model DynamicBatcher owns one
 * mutex + condition variable across all of its per-model queues (a
 * dispatcher must pick a *model* and a *batch* under one lock), so the
 * queue itself stays lock-free and unit-testable synchronously.
 */
#ifndef AUTOFL_SERVE_REQUEST_QUEUE_H
#define AUTOFL_SERVE_REQUEST_QUEUE_H

#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <vector>

#include "serve/serve_config.h"
#include "tensor/tensor.h"

namespace autofl {

/** How one submitted request ended. */
enum class ReplyStatus {
    Ok,       ///< Served: logits (and classes, when asked) are filled.
    Shed,     ///< Rejected by admission control under overload.
    DeadlineExceeded,  ///< Deadline passed/infeasible; never executed.
    NoModel,  ///< No model version published yet at dispatch time.
    BadRequest,  ///< Input shape does not fit the served model.
    Shutdown, ///< The service stopped before the request was served.
};

/** Display name of a reply status. */
const char *reply_status_name(ReplyStatus s);

/** Microseconds on the serving plane's steady clock (deadline base). */
uint64_t serve_now_us();

/** Completion of one submitted inference request. */
struct InferenceReply
{
    ReplyStatus status = ReplyStatus::Shutdown;
    Tensor logits;             ///< {samples, classes} when status == Ok.
    std::vector<int> classes;  ///< Argmax per sample, when requested.
    uint64_t epoch = 0;        ///< Snapshot version that answered.
    int batch_rows = 0;  ///< Samples in the coalesced batch served in.
    /** When the batcher completed the request (sheds stamp too), so an
     *  open-loop load generator can measure completion latency without
     *  polling the future. */
    std::chrono::steady_clock::time_point completed_at;
    bool ok() const { return status == ReplyStatus::Ok; }
};

/** One queued unit of work: model-ready input rows plus its promise. */
struct InferenceRequest
{
    Tensor rows;      ///< Model-ready input (layout per Dataset::batch_x).
    int samples = 1;  ///< Sample count along the workload's batch axis.
    bool want_classes = false;  ///< Also argmax the logits per sample.
    uint64_t deadline_us = 0;   ///< Absolute serve_now_us() deadline; 0 = none.
    Priority priority = Priority::Normal;  ///< Scheduling class.
    uint64_t seq = 0;  ///< Admission order, assigned by push (FIFO tie-break).
    std::promise<InferenceReply> promise;
};

/** Serving-plane counters (monotone; snapshot via DynamicBatcher). */
struct ServeStats
{
    uint64_t submitted = 0;  ///< submit() calls observed.
    uint64_t admitted = 0;   ///< Requests that entered the queue.
    uint64_t shed = 0;       ///< Typed rejections (either shed policy).
    uint64_t deadline_shed = 0;  ///< DeadlineExceeded (expired/infeasible).
    uint64_t completed = 0;  ///< Requests answered with Ok.
    uint64_t batches = 0;    ///< Coalesced engine batches dispatched.
    uint64_t batched_rows = 0;  ///< Total rows across those batches.

    /** Mean rows per dispatched batch (the coalescing win). */
    double
    mean_batch_rows() const
    {
        return batches ? static_cast<double>(batched_rows) /
                static_cast<double>(batches)
                       : 0.0;
    }
};

/**
 * Bounded priority/EDF queue of inference requests. NOT thread-safe —
 * the owning batcher serializes access (see file comment).
 */
class RequestQueue
{
  public:
    /**
     * @param depth Admission bound (>= 1).
     * @param policy What to do with new work once depth requests wait.
     * @param starvation_limit Picks a class may be passed over (>= 1).
     */
    RequestQueue(int depth, ShedPolicy policy, int starvation_limit);

    RequestQueue(const RequestQueue &) = delete;
    RequestQueue &operator=(const RequestQueue &) = delete;
    RequestQueue(RequestQueue &&) = default;

    /** Outcome of a push attempt. */
    enum class Push {
        Admitted,  ///< @p req entered the queue (possibly evicting).
        Shed,      ///< Queue full under RejectNew: @p req stays with the
                   ///< caller, who completes its promise as Shed.
        Expired,   ///< deadline_us <= now at arrival: @p req stays with
                   ///< the caller, who completes it as DeadlineExceeded.
    };

    /**
     * Try to enqueue @p req; consumes it only when admitted (stamping
     * req.seq). Expired-on-arrival requests are refused before
     * admission control runs — they could never be served in time, so
     * they must not evict viable work. Under DropOldest a full queue
     * admits @p req by evicting the earliest-admitted waiter into
     * @p evicted (set @p has_evicted) for the caller to complete as
     * Shed outside the owner's lock.
     */
    Push push(InferenceRequest &req, uint64_t now_us,
              InferenceRequest &evicted, bool &has_evicted);

    /**
     * Build the next batch: repeatedly pick the scheduling-next request
     * (starvation-bounded strict priority, EDF within class, FIFO at
     * equal deadlines) until @p max_rows samples are gathered or the
     * queue empties. A picked request whose deadline cannot be met —
     * deadline_us != 0 and deadline_us < now_us + estimate_us, where
     * the estimate is the model's observed batch service time — goes to
     * @p infeasible instead of @p out (shed before executing, counted
     * by the caller as DeadlineExceeded).
     * @return Rows gathered into @p out.
     */
    int pop_batch(std::vector<InferenceRequest> &out,
                  std::vector<InferenceRequest> &infeasible, int max_rows,
                  uint64_t now_us, uint64_t estimate_us);

    /** Remove every queued request (owner completes them as Shutdown). */
    std::vector<InferenceRequest> drain();

    /** Requests currently waiting. */
    size_t
    size() const
    {
        size_t n = 0;
        for (const auto &c : classes_)
            n += c.size();
        return n;
    }

    bool empty() const { return size() == 0; }

    /** Total samples currently waiting (for coalescing decisions). */
    int
    queued_rows() const
    {
        int n = 0;
        for (const auto &c : classes_)
            for (const auto &e : c)
                n += e.samples;
        return n;
    }

  private:
    /** Class index of the scheduling-next request; -1 when empty. */
    int pick_class() const;

    const size_t depth_;
    const ShedPolicy policy_;
    const int starvation_limit_;

    /** Waiting requests per class, in admission order. */
    std::deque<InferenceRequest> classes_[kPriorityClasses];
    /** Consecutive picks each non-empty class was passed over. */
    int passed_over_[kPriorityClasses] = {0, 0, 0};
    uint64_t next_seq_ = 1;
};

} // namespace autofl

#endif // AUTOFL_SERVE_REQUEST_QUEUE_H
