#include "serve/serving_gateway.h"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace autofl {

ServingGateway::ServingGateway(ServeConfig base)
    : base_(std::move(base)), registry_(base_.registry_dir)
{
    base_.validate("ServingGateway base");
}

ServingGateway::~ServingGateway()
{
    stop_serving();
}

store::RegistryStatus
ServingGateway::load_registry(
    std::vector<std::pair<std::string, store::RegistryStatus>> *failed)
{
    std::vector<store::RegistryModel> models;
    const store::RegistryStatus st = registry_.scan(&models);
    if (st != store::RegistryStatus::Ok)
        return st;
    for (const auto &m : models) {
        const store::RegistryStatus ls = load_model(m.name);
        if (ls != store::RegistryStatus::Ok && failed != nullptr)
            failed->emplace_back(m.name, ls);
    }
    return store::RegistryStatus::Ok;
}

store::RegistryStatus
ServingGateway::load_model(const std::string &ref, const ServeConfig *cfg)
{
    assert(!started_ && "load_model is setup-phase only");
    store::ModelRef parsed;
    store::RegistryStatus st = store::parse_model_ref(ref, &parsed);
    if (st != store::RegistryStatus::Ok)
        return st;
    if (find(ref) != nullptr)
        return store::RegistryStatus::Ok;  // Already serving this key.

    store::RegistryModel meta;
    st = registry_.lookup(parsed.name, &meta);
    if (st != store::RegistryStatus::Ok)
        return st;
    Workload workload;
    if (!workload_from_name(meta.workload, &workload))
        return store::RegistryStatus::BadManifest;

    std::shared_ptr<const store::MappedSnapshot> artifact;
    uint64_t version = 0;
    st = registry_.open(parsed, &artifact, &version);
    if (st != store::RegistryStatus::Ok)
        return st;

    Entry e;
    e.key = ref;
    e.cfg = cfg != nullptr ? *cfg : base_;
    // The slot pool is the gateway's: per-model engines keep a full
    // complement of slots so a dispatcher never blocks on an engine
    // slot while holding its scheduling share.
    e.cfg.workers = base_.workers;
    e.cfg.validate("ServingGateway.load_model cfg");
    e.owned = std::make_unique<ModelService>(workload, e.cfg);
    try {
        e.owned->attach_artifact(std::move(artifact));
    } catch (const std::invalid_argument &) {
        // Manifest said one architecture, artifact holds another —
        // registry-level corruption, reported typed like the rest.
        return store::RegistryStatus::BadArtifact;
    }
    e.service = e.owned.get();
    e.version = version;
    entries_.push_back(std::move(e));
    return store::RegistryStatus::Ok;
}

void
ServingGateway::add_service(const std::string &name, ModelService &service,
                            const ServeConfig *cfg)
{
    assert(!started_ && "add_service is setup-phase only");
    assert(find(name) == nullptr && "duplicate gateway key");
    Entry e;
    e.key = name;
    e.cfg = cfg != nullptr ? *cfg : base_;
    e.cfg.validate("ServingGateway.add_service cfg");
    e.service = &service;
    entries_.push_back(std::move(e));
}

void
ServingGateway::start()
{
    assert(!started_);
    assert(!entries_.empty() && "start() needs at least one model");
    batcher_ = std::make_unique<DynamicBatcher>(base_.workers);
    for (auto &e : entries_)
        e.id = batcher_->add_model(*e.service, e.cfg);
    batcher_->start();
    started_ = true;
}

std::vector<std::string>
ServingGateway::models() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &e : entries_)
        out.push_back(e.key);
    return out;
}

const ServingGateway::Entry *
ServingGateway::find(const std::string &key) const
{
    for (const auto &e : entries_)
        if (e.key == key)
            return &e;
    return nullptr;
}

ModelService *
ServingGateway::service(const std::string &key)
{
    const Entry *e = find(key);
    return e != nullptr ? e->service : nullptr;
}

uint64_t
ServingGateway::version(const std::string &key) const
{
    const Entry *e = find(key);
    return e != nullptr ? e->version : 0;
}

std::future<InferenceReply>
ServingGateway::submit(const std::string &key, Tensor rows,
                       bool want_classes, SubmitOptions opts)
{
    const Entry *e = find(key);
    if (e == nullptr || !started_) {
        // Unknown model key: typed, immediate — the caller asked for
        // something this gateway does not serve.
        std::promise<InferenceReply> p;
        InferenceReply reply;
        reply.status = ReplyStatus::BadRequest;
        reply.completed_at = std::chrono::steady_clock::now();
        p.set_value(std::move(reply));
        return p.get_future();
    }
    return batcher_->submit(e->id, std::move(rows), want_classes, opts);
}

ServeStats
ServingGateway::stats(const std::string &key) const
{
    const Entry *e = find(key);
    if (e == nullptr || e->id < 0 || batcher_ == nullptr)
        return ServeStats{};
    return batcher_->stats(e->id);
}

void
ServingGateway::stop_serving()
{
    if (batcher_ != nullptr)
        batcher_->shutdown();
}

} // namespace autofl
