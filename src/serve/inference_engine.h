/**
 * @file
 * InferenceEngine: batched forward passes over snapshot weights.
 *
 * The engine owns a fixed pool of worker slots, each holding a scratch
 * model tagged with the identity (epoch + buffer) of the weights it
 * last loaded, so repeated queries against one snapshot skip the flat
 * weight reload entirely — the serving hot path is claim slot, batch,
 * infer. Models run through Sequential::infer(), the inference-only
 * pass that folds cfg.batch_size samples into each layer call (one
 * GEMM where the per-sample path ran batch GEMV-shaped calls) and
 * retains no backward state.
 *
 * Determinism contract: evaluate() partitions the dataset into
 * fixed-size batches in index order and reduces per-batch results in
 * batch order, so accuracy and loss are identical for ANY fan-out.
 * Batched and per-sample logits are bit-identical per arch variant
 * (scalar exactly; SIMD variants agree within 1e-4 relative across
 * batch shapes — the GEMM variant tolerance).
 */
#ifndef AUTOFL_SERVE_INFERENCE_ENGINE_H
#define AUTOFL_SERVE_INFERENCE_ENGINE_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "nn/models.h"
#include "ps/sharded_store.h"
#include "serve/serve_config.h"

namespace autofl {

/**
 * Refcounted, epoch-tagged view of one immutable model version.
 * Copying shares the underlying storage; reads through a valid handle
 * are lock-free and remain safe after training has moved on — the
 * refcount keeps the storage alive.
 *
 * The handle is a *view* (owner + pointer + length), so the storage
 * behind it can be a store-published weight vector or an mmap'd
 * snapshot artifact (store::MappedSnapshot) — the engine's slot
 * caching keys on owner identity either way and never cares which.
 */
class SnapshotHandle
{
  public:
    /** Invalid handle (no snapshot). */
    SnapshotHandle() = default;

    /** Wrap a published store snapshot. */
    explicit SnapshotHandle(StoreSnapshot snap)
        : epoch_(snap.epoch), owner_(snap.weights),
          data_(snap.weights ? snap.weights->data() : nullptr),
          size_(snap.weights ? snap.weights->size() : 0)
    {
    }

    /**
     * View @p size floats at @p data, kept alive by @p owner — the
     * artifact-backed source (data points into the mapped file).
     */
    SnapshotHandle(uint64_t epoch, std::shared_ptr<const void> owner,
                   const float *data, size_t size)
        : epoch_(epoch), owner_(std::move(owner)), data_(data), size_(size)
    {
    }

    /** Whether the handle references a snapshot. */
    bool valid() const { return data_ != nullptr; }

    /** Commit epoch (model version) of the snapshot. */
    uint64_t epoch() const { return epoch_; }

    /** The immutable flat weights. Handle must be valid. */
    std::span<const float>
    weights() const
    {
        return {data_, size_};
    }

    /**
     * Shared ownership of the backing storage (lifetime extension).
     * Also the snapshot's *identity*: two handles view the same model
     * version iff their owners are the same object.
     */
    const std::shared_ptr<const void> &
    owner() const
    {
        return owner_;
    }

  private:
    uint64_t epoch_ = 0;
    std::shared_ptr<const void> owner_;
    const float *data_ = nullptr;
    size_t size_ = 0;
};

/** Result of one batched dataset scoring pass. */
struct EvalStats
{
    int samples = 0;         ///< Rows scored.
    int correct = 0;         ///< Argmax-correct rows.
    double accuracy = 0.0;   ///< correct / samples (0 on empty input).
    double mean_loss = 0.0;  ///< Sample-weighted mean cross-entropy.
    uint64_t epoch = 0;      ///< Snapshot epoch that was scored.
};

/** Batched inference over snapshot weights on pooled worker slots. */
class InferenceEngine
{
  public:
    /**
     * @param workload Model architecture to instantiate per slot.
     * @param cfg Batch size and slot-pool size (pre-validated).
     */
    InferenceEngine(Workload workload, const ServeConfig &cfg);

    InferenceEngine(const InferenceEngine &) = delete;
    InferenceEngine &operator=(const InferenceEngine &) = delete;

    /**
     * Score @p test with the snapshot's weights. Thread-safe: each of
     * the @p fan_out threads (0 = cfg.workers, clamped to the batch
     * count) claims one worker slot. The result is deterministic for
     * any fan-out.
     */
    EvalStats evaluate(const SnapshotHandle &snap, const Dataset &test,
                      int fan_out = 0);

    /**
     * Predicted classes for @p indices of @p data, computed in
     * cfg.batch_size chunks on one claimed slot. Thread-safe.
     */
    std::vector<int> classify(const SnapshotHandle &snap,
                              const Dataset &data,
                              const std::vector<int> &indices);

    /**
     * Raw logits for one model-ready input batch (layout per
     * Dataset::batch_x). Thread-safe; claims one slot. Throws
     * std::invalid_argument on an invalid handle — a slot must never
     * serve without loaded weights.
     */
    Tensor forward(const SnapshotHandle &snap, Tensor batch);

    int batch_size() const { return cfg_.batch_size; }
    int workers() const { return cfg_.workers; }

    /**
     * Flat parameter count of the served architecture — what any
     * snapshot source must supply (ModelService validates artifact
     * dimensions against this before attaching them).
     */
    size_t model_params() const { return slots_.front()->model.num_params(); }

  private:
    /**
     * One pooled scratch model with weight-identity caching. The slot
     * shares ownership of the weights it last loaded: identity is
     * plain pointer equality, and the held reference makes address
     * reuse (a freed buffer reallocated at the same address) — the
     * classic caching-aliasing bug — structurally impossible.
     * Exclusive access is the busy flag, guarded by pool_mu_; the model
     * itself is touched only between claim() and release().
     */
    struct Slot
    {
        Sequential model;
        std::shared_ptr<const void> loaded;
        bool busy = false;
    };

  public:
    /**
     * RAII slot claim that also ensures the snapshot's weights are
     * loaded. Claiming prefers a free slot that already holds this
     * snapshot (serving affinity: no reload), then any free slot; when
     * every slot is busy the claim waits on the pool's free-slot
     * condition variable and takes *whichever* slot frees first —
     * waiters never park on one predetermined slot while others open
     * up. Public so callers that make several engine calls against one
     * snapshot (or tests pinning a slot) can hold the claim across
     * them.
     */
    class Lease
    {
      public:
        Lease(InferenceEngine &eng, const SnapshotHandle &snap);
        ~Lease() { eng_->release(*slot_); }
        Lease(const Lease &) = delete;
        Lease &operator=(const Lease &) = delete;
        Sequential &model() { return slot_->model; }

      private:
        InferenceEngine *eng_;
        Slot *slot_;
    };

  private:
    Workload workload_;
    ServeConfig cfg_;
    std::vector<std::unique_ptr<Slot>> slots_;
    std::mutex pool_mu_;               ///< Guards every Slot::busy flag.
    std::condition_variable free_cv_;  ///< Signaled on each release().

    Slot &claim(const SnapshotHandle &snap);
    void release(Slot &s);
};

} // namespace autofl

#endif // AUTOFL_SERVE_INFERENCE_ENGINE_H
