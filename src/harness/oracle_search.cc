#include "oracle_search.h"

namespace autofl {

std::vector<std::pair<ClusterTemplate, ExperimentResult>>
characterize_clusters(const ExperimentConfig &base, int rounds)
{
    std::vector<std::pair<ClusterTemplate, ExperimentResult>> out;
    for (const auto &tmpl : table4_clusters()) {
        ExperimentConfig cfg = base;
        cfg.policy = PolicyKind::StaticCluster;
        cfg.static_cluster = tmpl;
        out.emplace_back(tmpl, run_characterization(cfg, rounds));
    }
    return out;
}

OracleSearchResult
search_oracle_participant(const ExperimentConfig &base, int rounds)
{
    OracleSearchResult best;
    for (const auto &tmpl : table4_clusters()) {
        if (tmpl.random)
            continue;  // C0 is the baseline, not a composition.
        ExperimentConfig cfg = base;
        cfg.policy = PolicyKind::StaticCluster;
        cfg.static_cluster = tmpl;
        const ExperimentResult res = run_characterization(cfg, rounds);
        if (res.ppw_round() > best.ppw) {
            best.ppw = res.ppw_round();
            best.avg_round_s = res.avg_round_s();
            best.spec.cluster = tmpl;
            best.spec.exec = TierExecSettings{};
        }
    }
    return best;
}

OracleSearchResult
search_oracle_fl(const ExperimentConfig &base, const OracleSpec &participant,
                 int rounds, double round_slack)
{
    auto evaluate = [&](const OracleSpec &spec) {
        ExperimentConfig cfg = base;
        cfg.policy = PolicyKind::OracleFl;
        cfg.oracle_spec = spec;
        return run_characterization(cfg, rounds);
    };

    OracleSearchResult best;
    best.spec = participant;
    {
        const ExperimentResult r = evaluate(best.spec);
        best.ppw = r.ppw_round();
        best.avg_round_s = r.avg_round_s();
    }
    const double round_budget = best.avg_round_s * round_slack;

    // Greedy per-tier sweep: for each tier in turn, try every
    // (target, DVFS) pair keeping the other tiers fixed; keep the best
    // PPW that respects the round-time budget.
    const ExecTarget targets[] = {ExecTarget::Cpu, ExecTarget::Gpu};
    for (Tier tier : {Tier::High, Tier::Mid, Tier::Low}) {
        OracleSpec tier_best = best.spec;
        double tier_best_ppw = best.ppw;
        double tier_best_round = best.avg_round_s;
        for (ExecTarget target : targets) {
            for (DvfsLevel level : all_dvfs_levels()) {
                OracleSpec candidate = best.spec;
                StaticExecSettings exec{target, level};
                switch (tier) {
                  case Tier::High:
                    candidate.exec.high = exec;
                    break;
                  case Tier::Mid:
                    candidate.exec.mid = exec;
                    break;
                  case Tier::Low:
                    candidate.exec.low = exec;
                    break;
                }
                const ExperimentResult r = evaluate(candidate);
                if (r.avg_round_s() <= round_budget &&
                    r.ppw_round() > tier_best_ppw) {
                    tier_best = candidate;
                    tier_best_ppw = r.ppw_round();
                    tier_best_round = r.avg_round_s();
                }
            }
        }
        best.spec = tier_best;
        best.ppw = tier_best_ppw;
        best.avg_round_s = tier_best_round;
    }
    return best;
}

} // namespace autofl
