/**
 * @file
 * Experiment harness: one entry point that wires the fleet simulator, the
 * FL training stack, and a selection policy into a full evaluation run,
 * producing the metrics every paper figure reports (PPW, convergence
 * time, accuracy, selection mix).
 */
#ifndef AUTOFL_HARNESS_EXPERIMENT_H
#define AUTOFL_HARNESS_EXPERIMENT_H

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "data/partition.h"
#include "fl/system.h"
#include "policies/oracle.h"
#include "policies/policy.h"

namespace autofl {

/** Policy under evaluation. */
enum class PolicyKind {
    FedAvgRandom,   ///< Baseline: uniform random K.
    Power,          ///< All low-end (C7).
    Performance,    ///< All high-end (C1).
    StaticCluster,  ///< One of the Table 4 templates.
    OracleParticipant,  ///< O_participant (fixed searched composition).
    OracleFl,       ///< O_FL (composition + execution settings).
    AutoFl,         ///< The RL scheduler.
};

/** Display name of a policy kind. */
std::string policy_kind_name(PolicyKind k);

/** Full experiment configuration. */
struct ExperimentConfig
{
    Workload workload = Workload::CnnMnist;
    ParamSetting setting = ParamSetting::S3;
    VarianceScenario variance = VarianceScenario::None;
    DataDistribution distribution = DataDistribution::IdealIid;
    Algorithm algorithm = Algorithm::FedAvg;

    /**
     * Server runtime: synchronous rounds, or the ps runtime's
     * semi-async / async aggregation. Under the ps runtime the
     * deadline-based straggler drop is disabled — slow participants are
     * instead evicted by the staleness bound at aggregation time.
     */
    SyncMode sync_mode = SyncMode::Sync;
    int staleness_bound = 1;  ///< S for SemiAsync (0 == Sync exactly).
    int ps_shards = 8;        ///< Model-store lock stripes.

    /**
     * Rounds the ps runtime keeps in flight (1 = classic drained
     * rounds). Above 1 the harness round loop goes streaming: it
     * selects and submits round t+1 while round t is still draining,
     * and consumes results — evaluated concurrently from store
     * snapshots — with a lag of up to pipeline_depth rounds.
     */
    int pipeline_depth = 1;
    int eval_workers = 2;     ///< Concurrent snapshot-eval pool size.

    /**
     * Distributed transport (src/net/). Leave net.listen empty for the
     * in-process runtimes; "loopback" routes rounds through in-process
     * Van endpoints, "unix:/path" or "tcp:host:port" runs real worker
     * processes (net.spawn_cmd) with heartbeat-based failure eviction.
     * Requires a non-Sync sync_mode and pipeline_depth == 1.
     */
    NetConfig net;

    /**
     * Push-path update compression (ps/compression.h). Shrinks the
     * simulated uplink (download stays full f32) and, on the real
     * runtimes, replaces raw pushes with encoded deltas under error
     * feedback. Requires a non-Sync sync_mode and pipeline_depth == 1.
     */
    CompressionConfig compression;

    /**
     * Serving plane: inference batch size, worker slots and snapshot
     * freshness for every model read (FlSystem::evaluate, the
     * pipeline's eval workers, online queries while training), plus
     * the dynamic-batching queue knobs (queue_depth, batch_timeout_us,
     * shed policy) governing admission control for submit() traffic.
     */
    ServeConfig serve;

    /**
     * Snapshot persistence (src/store/): non-empty enables async
     * checkpointing of the post-round model into this directory (temp
     * + fsync + atomic rename — a crash never leaves a torn artifact).
     */
    std::string snapshot_dir;

    /** Checkpoint cadence in retired rounds (see PsConfig). */
    int snapshot_every_epochs = 1;

    /**
     * Checkpoint retention: keep the newest K artifacts plus pinned
     * rounds; 0 keeps everything (see PsConfig::snapshot_keep_last).
     * Applies to both bare snapshot_dir and registry publication
     * (serve.registry_dir) runs.
     */
    int snapshot_keep_last = 0;

    /**
     * Resume the run from this artifact (usually
     * <snapshot_dir>/latest.snap): training restarts at the artifact's
     * round + 1 and the round loop records only the remaining rounds.
     * Bit-identical continuation for single-batch rounds; see
     * PsConfig::resume_from for the contract.
     */
    std::string resume_from;

    /**
     * Sliding-window length (rounds) for the runtime statistics the
     * scheduler observes: S_Stale is bucketed from the windowed mean
     * staleness, so one odd round cannot flip the state while a
     * sustained shift shows up within a window.
     */
    int staleness_window = 8;

    PolicyKind policy = PolicyKind::FedAvgRandom;
    ClusterTemplate static_cluster;   ///< When policy == StaticCluster.
    OracleSpec oracle_spec;           ///< When policy == Oracle*.
    bool oracle_prefers_iid = false;  ///< Oracle may skip non-IID devices.
    AutoFlConfig autofl;              ///< When policy == AutoFl.

    /**
     * Scheduling-only RL warmup rounds before the measured run. The
     * paper's FL jobs run hundreds of rounds, so most execute with a
     * converged Q-table (reward converges after 50-80 rounds, Fig. 15);
     * our miniature jobs converge in tens of rounds, so the energy-driven
     * part of the Q-table is pre-trained on simulated rounds (with a
     * slowly improving synthetic accuracy signal) to match the paper's
     * steady-state behavior. Set to 0 to measure cold-start AutoFL
     * (Fig. 15 does).
     */
    int autofl_warmup_rounds = 250;

    FleetMix fleet_mix;               ///< 30/70/100 default.
    int max_rounds = 60;
    double target_accuracy = 0.0;     ///< 0 -> per-workload default.
    RoundSimConfig round_sim;
    int threads = 16;
    uint64_t seed = 1;

    /** Per-workload dataset sizing (0 -> defaults). */
    int train_samples = 0;
    int test_samples = 0;

    /**
     * Check the runtime knobs (pipeline depth, staleness bound, eval
     * workers, store shards, serving plane), throwing
     * std::invalid_argument with an actionable message on the first
     * violation. run_experiment calls this before building anything.
     */
    void validate() const;
};

/** Per-workload default convergence target (fraction, not percent). */
double default_target_accuracy(Workload w);

/** One round's record. */
struct RoundRecord
{
    int round = 0;
    double accuracy = 0.0;        ///< Global test accuracy after the round.
    double round_s = 0.0;
    double energy_global_j = 0.0;
    double energy_participants_j = 0.0;
    double work_flops = 0.0;
    int included = 0;             ///< Updates that reached aggregation.
    int evicted = 0;              ///< Dropped for staleness (ps runtime).
    double mean_staleness = 0.0;  ///< Mean applied staleness (ps runtime).
    double window_staleness = 0.0;  ///< Windowed mean the scheduler saw.
    int selected_high = 0, selected_mid = 0, selected_low = 0;
    std::array<int, 6> action_counts{};  ///< Selected action histogram.
    double mean_reward = 0.0;     ///< AutoFL only.
};

/** Aggregated result of one experiment. */
struct ExperimentResult
{
    std::string policy_name;
    std::vector<RoundRecord> rounds;

    double final_accuracy = 0.0;
    int rounds_to_target = -1;        ///< -1: target not reached.
    double time_to_target_s = 0.0;    ///< Simulated, when reached.
    double energy_to_target_j = 0.0;  ///< Fleet energy, when reached.

    double total_time_s = 0.0;
    double total_energy_j = 0.0;
    double total_work_flops = 0.0;
    double participant_energy_j = 0.0;

    /** Round-level global PPW: useful work per Joule of fleet energy. */
    double ppw_round() const;

    /** Round-level local PPW: work per Joule of participant energy. */
    double ppw_local() const;

    /**
     * Convergence-level efficiency: 1 / energy-to-target. Zero when the
     * target was never reached (paper's "does not converge" bars).
     */
    double ppw_convergence() const;

    /** Mean simulated round latency. */
    double avg_round_s() const;

    /** Mean selection mix over rounds (fractions summing to ~1). */
    std::array<double, 3> tier_mix() const;

    /** Mean action mix over rounds (fractions over the 6 actions). */
    std::array<double, 6> action_mix() const;

    bool converged() const { return rounds_to_target >= 0; }
};

/** Run a full experiment (real training + simulation). */
ExperimentResult run_experiment(const ExperimentConfig &cfg);

/** One server-runtime variant in a sync-mode scenario sweep. */
struct SyncModeScenario
{
    SyncMode mode = SyncMode::Sync;
    int staleness_bound = 0;  ///< Used by SemiAsync only.
};

/**
 * Scenario sweep over server runtimes: run the same job under each
 * variant (e.g. Sync, SemiAsync at several staleness bounds, Async) so
 * the semi-async FL scenario family is comparable against the paper's
 * synchronous baseline on one config. Results are returned in scenario
 * order with policy_name suffixed by the runtime ("AutoFL/SemiAsync-2").
 */
std::vector<ExperimentResult> run_sync_mode_sweep(
    const ExperimentConfig &cfg,
    const std::vector<SyncModeScenario> &scenarios);

/**
 * Characterization mode: identical scheduling/energy simulation but no
 * NN training or evaluation (accuracy is not produced). Used by the
 * Figure 4/5 sweeps where only round-level PPW matters; runs in
 * microseconds per round.
 */
ExperimentResult run_characterization(const ExperimentConfig &cfg,
                                      int rounds);

/** Similarity of two mixes: 1 - L1/2 (1 = identical distributions). */
template <size_t N>
double
mix_similarity(const std::array<double, N> &a, const std::array<double, N> &b)
{
    double l1 = 0.0;
    for (size_t i = 0; i < N; ++i)
        l1 += std::abs(a[i] - b[i]);
    return 1.0 - 0.5 * l1;
}

} // namespace autofl

#endif // AUTOFL_HARNESS_EXPERIMENT_H
