/**
 * @file
 * Offline exhaustive search producing the O_participant and O_FL oracle
 * configurations (Section 5.1's comparison points).
 *
 * The search runs the scheduling/energy simulation only (no NN training:
 * a static policy's round-level energy efficiency is independent of the
 * weights), so it completes in milliseconds. O_participant maximizes
 * round-level global PPW over the Table 4 tier compositions;
 * O_FL additionally searches per-tier execution targets and DVFS levels
 * subject to not stretching the round more than a small tolerance (the
 * paper notes O_FL trades slight computation-time increases for energy).
 */
#ifndef AUTOFL_HARNESS_ORACLE_SEARCH_H
#define AUTOFL_HARNESS_ORACLE_SEARCH_H

#include "harness/experiment.h"

namespace autofl {

/** Search result with the score it achieved. */
struct OracleSearchResult
{
    OracleSpec spec;
    double ppw = 0.0;          ///< Round-level global PPW of the winner.
    double avg_round_s = 0.0;  ///< Mean round latency of the winner.
};

/**
 * Find the best tier composition for the scenario in @p base
 * (workload, setting, variance). Policy fields of @p base are ignored.
 * @param rounds Simulated rounds per candidate.
 */
OracleSearchResult search_oracle_participant(const ExperimentConfig &base,
                                             int rounds = 24);

/**
 * Find the best per-tier execution settings on top of a participant
 * composition (greedy per-tier sweep over target x DVFS).
 * @param participant Composition to start from (e.g. the
 *        search_oracle_participant winner).
 * @param round_slack Allowed round-time stretch vs. the starting point.
 */
OracleSearchResult search_oracle_fl(const ExperimentConfig &base,
                                    const OracleSpec &participant,
                                    int rounds = 24,
                                    double round_slack = 1.20);

/** PPW of every Table 4 cluster under the scenario (Figure 4/5 rows). */
std::vector<std::pair<ClusterTemplate, ExperimentResult>>
characterize_clusters(const ExperimentConfig &base, int rounds = 24);

} // namespace autofl

#endif // AUTOFL_HARNESS_ORACLE_SEARCH_H
