#include "experiment.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <stdexcept>

#include "sim/scale.h"
#include "util/stats.h"

namespace autofl {

void
ExperimentConfig::validate() const
{
    // Delegate the ps-runtime knobs that map 1:1 onto PsConfig (same
    // field names, so the messages read "ExperimentConfig.<knob>").
    // ps_shards is checked here because its name differs from
    // PsConfig::shards.
    PsConfig ps_view;
    ps_view.mode = sync_mode;
    ps_view.pipeline_depth = pipeline_depth;
    ps_view.staleness_bound = staleness_bound;
    ps_view.eval_workers = eval_workers;
    ps_view.net = net;
    ps_view.compression = compression;
    ps_view.snapshot_dir = snapshot_dir;
    ps_view.snapshot_every_epochs = snapshot_every_epochs;
    ps_view.snapshot_keep_last = snapshot_keep_last;
    ps_view.resume_from = resume_from;
    // Registry publication supplies the snapshot directory itself, so
    // cadence/retention knobs must stay valid without a bare
    // snapshot_dir; validate against the directory the run will use.
    if (!serve.registry_dir.empty() && ps_view.snapshot_dir.empty())
        ps_view.snapshot_dir = serve.registry_dir;
    ps_view.validate("ExperimentConfig");
    if (!serve.registry_dir.empty() && !snapshot_dir.empty()) {
        throw std::invalid_argument(
            "ExperimentConfig.serve.registry_dir and "
            "ExperimentConfig.snapshot_dir are both set: registry "
            "publication derives the artifact directory from the "
            "registry; set exactly one");
    }
    if (ps_shards < 1) {
        throw std::invalid_argument(
            "ExperimentConfig.ps_shards must be >= 1 (got " +
            std::to_string(ps_shards) +
            "): the model store needs at least one lock stripe");
    }
    if (threads < 1) {
        throw std::invalid_argument(
            "ExperimentConfig.threads must be >= 1 (got " +
            std::to_string(threads) +
            "): local training needs at least one worker");
    }
    serve.validate("ExperimentConfig.serve");
}

std::string
policy_kind_name(PolicyKind k)
{
    switch (k) {
      case PolicyKind::FedAvgRandom:
        return "FedAvg-Random";
      case PolicyKind::Power:
        return "Power";
      case PolicyKind::Performance:
        return "Performance";
      case PolicyKind::StaticCluster:
        return "StaticCluster";
      case PolicyKind::OracleParticipant:
        return "O_participant";
      case PolicyKind::OracleFl:
        return "O_FL";
      case PolicyKind::AutoFl:
        return "AutoFL";
    }
    return "unknown";
}

double
default_target_accuracy(Workload w)
{
    switch (w) {
      case Workload::CnnMnist:
        return 0.82;
      case Workload::LstmShakespeare:
        return 0.25;
      case Workload::MobileNetImageNet:
        return 0.50;
    }
    return 0.8;
}

double
ExperimentResult::ppw_round() const
{
    return total_energy_j > 0.0 ? total_work_flops / total_energy_j : 0.0;
}

double
ExperimentResult::ppw_local() const
{
    return participant_energy_j > 0.0 ?
        total_work_flops / participant_energy_j : 0.0;
}

double
ExperimentResult::ppw_convergence() const
{
    if (!converged() || energy_to_target_j <= 0.0)
        return 0.0;
    return 1.0 / energy_to_target_j;
}

double
ExperimentResult::avg_round_s() const
{
    return rounds.empty() ? 0.0 :
        total_time_s / static_cast<double>(rounds.size());
}

std::array<double, 3>
ExperimentResult::tier_mix() const
{
    std::array<double, 3> mix{};
    double total = 0.0;
    for (const auto &r : rounds) {
        mix[0] += r.selected_high;
        mix[1] += r.selected_mid;
        mix[2] += r.selected_low;
        total += r.selected_high + r.selected_mid + r.selected_low;
    }
    if (total > 0.0)
        for (auto &m : mix)
            m /= total;
    return mix;
}

std::array<double, 6>
ExperimentResult::action_mix() const
{
    std::array<double, 6> mix{};
    double total = 0.0;
    for (const auto &r : rounds) {
        for (size_t a = 0; a < mix.size(); ++a) {
            mix[a] += r.action_counts[a];
            total += r.action_counts[a];
        }
    }
    if (total > 0.0)
        for (auto &m : mix)
            m /= total;
    return mix;
}

namespace {

/** Default dataset sizing per workload, balancing fidelity and runtime. */
void
default_data_sizes(Workload w, int &train, int &test)
{
    switch (w) {
      case Workload::CnnMnist:
        train = 4000;
        test = 600;
        break;
      case Workload::LstmShakespeare:
        train = 4000;
        test = 320;
        break;
      case Workload::MobileNetImageNet:
        train = 2400;
        test = 300;
        break;
    }
}

/** Per-workload training hyperparameters and data-noise calibration. */
void
default_training_setup(Workload w, TrainHyper &hyper, double &noise)
{
    switch (w) {
      case Workload::CnnMnist:
        hyper.lr = 0.03;
        noise = 0.95;
        break;
      case Workload::LstmShakespeare:
        hyper.lr = 0.8;
        hyper.momentum = 0.9;  // Plain SGD barely moves the gates.
        noise = 0.0;  // Text difficulty comes from the Markov chain.
        break;
      case Workload::MobileNetImageNet:
        hyper.lr = 0.06;
        hyper.momentum = 0.5;
        noise = 0.55;
        break;
    }
}

std::unique_ptr<SelectionPolicy>
build_policy(const ExperimentConfig &cfg, const Fleet &fleet,
             const std::vector<bool> *iid_flags)
{
    const uint64_t pseed = cfg.seed ^ 0xfeedULL;
    switch (cfg.policy) {
      case PolicyKind::FedAvgRandom:
        return make_random_policy(fleet, pseed);
      case PolicyKind::Power:
        return make_power_policy(fleet, pseed);
      case PolicyKind::Performance:
        return make_performance_policy(fleet, pseed);
      case PolicyKind::StaticCluster:
        return std::make_unique<StaticClusterPolicy>(
            fleet, cfg.static_cluster, StaticExecSettings{}, pseed);
      case PolicyKind::OracleParticipant:
      case PolicyKind::OracleFl: {
        auto oracle = std::make_unique<OraclePolicy>(
            fleet, cfg.oracle_spec,
            policy_kind_name(cfg.policy), pseed);
        if (cfg.oracle_prefers_iid && iid_flags)
            oracle->set_preferred(*iid_flags);
        return oracle;
      }
      case PolicyKind::AutoFl: {
        AutoFlConfig acfg = cfg.autofl;
        acfg.seed ^= cfg.seed;
        return std::make_unique<AutoFlPolicy>(fleet, acfg);
      }
    }
    return nullptr;
}

void
count_selection(const Fleet &fleet, const std::vector<ParticipantPlan> &plans,
                RoundRecord &rec)
{
    for (const auto &p : plans) {
        switch (fleet.device(p.device_id).tier()) {
          case Tier::High:
            ++rec.selected_high;
            break;
          case Tier::Mid:
            ++rec.selected_mid;
            break;
          case Tier::Low:
            ++rec.selected_low;
            break;
        }
        Action a;
        a.target = p.target;
        a.dvfs = p.dvfs;
        ++rec.action_counts[static_cast<size_t>(encode_action(a))];
    }
}

} // namespace

ExperimentResult
run_experiment(const ExperimentConfig &cfg)
{
    cfg.validate();
    const FlGlobalParams params = global_params_for(cfg.setting);
    const double target = cfg.target_accuracy > 0.0 ?
        cfg.target_accuracy : default_target_accuracy(cfg.workload);

    // FL training stack.
    FlSystemConfig fcfg;
    fcfg.workload = cfg.workload;
    fcfg.params = params;
    fcfg.algorithm = cfg.algorithm;
    default_data_sizes(cfg.workload, fcfg.data.train_samples,
                       fcfg.data.test_samples);
    if (cfg.train_samples > 0)
        fcfg.data.train_samples = cfg.train_samples;
    if (cfg.test_samples > 0)
        fcfg.data.test_samples = cfg.test_samples;
    default_training_setup(cfg.workload, fcfg.hyper, fcfg.data.noise);
    fcfg.data.seed = cfg.seed * 31 + 7;
    fcfg.partition.num_devices = cfg.fleet_mix.total();
    fcfg.partition.distribution = cfg.distribution;
    fcfg.partition.seed = cfg.seed * 17 + 3;
    fcfg.seed = cfg.seed;
    fcfg.threads = cfg.threads;
    fcfg.ps.mode = cfg.sync_mode;
    fcfg.ps.staleness_bound = cfg.staleness_bound;
    fcfg.ps.shards = cfg.ps_shards;
    fcfg.ps.pipeline_depth = cfg.pipeline_depth;
    fcfg.ps.eval_workers = cfg.eval_workers;
    fcfg.ps.net = cfg.net;
    fcfg.ps.compression = cfg.compression;
    fcfg.ps.snapshot_dir = cfg.snapshot_dir;
    fcfg.ps.snapshot_every_epochs = cfg.snapshot_every_epochs;
    fcfg.ps.snapshot_keep_last = cfg.snapshot_keep_last;
    fcfg.ps.resume_from = cfg.resume_from;
    fcfg.serve = cfg.serve;
    FlSystem fl(fcfg);
    const bool ps_mode = fl.ps() != nullptr || fl.cluster() != nullptr;

    // Under the ps runtime stragglers are evicted by the staleness
    // bound at aggregation time, not dropped at a simulated deadline.
    RoundSimConfig round_sim = cfg.round_sim;
    if (ps_mode)
        round_sim.deadline_multiple = 0.0;

    // Device population.
    Fleet fleet(cfg.fleet_mix, cfg.variance, cfg.seed * 13 + 5);

    // Policy (oracles may be told which devices hold IID shards).
    std::vector<bool> iid_flags(static_cast<size_t>(fleet.size()), false);
    for (int d = 0; d < fleet.size(); ++d)
        iid_flags[static_cast<size_t>(d)] = !fl.device_non_iid(d);
    auto policy = build_policy(cfg, fleet, &iid_flags);

    GlobalObservation gobs;
    gobs.profile = fl.profile();
    gobs.params = params;

    const double mem_frac = gobs.profile.mem_bound_frac;
    const int total_classes = model_num_classes(cfg.workload);

    ExperimentResult res;
    res.policy_name = policy->name();

    // Energy-driven RL warmup: scheduling + simulation only (no NN
    // training), with a slowly improving synthetic accuracy so the
    // reward stays on its success branch and ranks actions by energy.
    if (cfg.policy == PolicyKind::AutoFl && cfg.autofl_warmup_rounds > 0) {
        // Wider exploration while pre-training the tables, then the
        // paper's epsilon for the measured run.
        auto *afl = dynamic_cast<AutoFlPolicy *>(policy.get());
        afl->scheduler().set_epsilon(0.3);
        double synth_acc = 20.0;
        const int quota =
            std::max(1, static_cast<int>(fl.shard(0).size()));
        for (int w = 0; w < cfg.autofl_warmup_rounds; ++w) {
            fleet.begin_round();
            std::vector<LocalObservation> locals(
                static_cast<size_t>(fleet.size()));
            for (int d = 0; d < fleet.size(); ++d) {
                auto &l = locals[static_cast<size_t>(d)];
                l.state = fleet.device(d).state();
                l.data_classes = fl.classes_on_device(d);
                l.total_classes = total_classes;
            }
            auto plans = policy->select(gobs, locals, params.k);
            std::vector<ComputeProfile> profiles(
                plans.size(),
                ComputeProfile{static_cast<double>(params.epochs) * quota *
                                   gobs.profile.flops_per_sample *
                                   kTrainFlopFactor,
                               mem_frac, gobs.profile.model_bytes,
                               params.batch_size});
            RoundExec exec =
                simulate_round(fleet, plans, profiles, round_sim);
            // Keep the synthetic accuracy strictly increasing for the
            // whole warmup so the reward stays on its success branch
            // (the failure branch carries no energy/time signal). The
            // per-round gain scales with the participants' label-class
            // coverage, encoding the convergence physics of Figure 6
            // (non-IID participants slow convergence) so the warmup also
            // pre-trains the S_Data-conditioned preferences.
            double coverage = 0.0;
            for (const auto &p : plans) {
                coverage += static_cast<double>(
                                fl.classes_on_device(p.device_id)) /
                    total_classes;
            }
            coverage /= std::max<size_t>(1, plans.size());
            synth_acc += (60.0 / std::max(1, cfg.autofl_warmup_rounds)) *
                (0.3 + 1.2 * coverage);
            policy->observe_outcome(exec, synth_acc);
        }
        afl->scheduler().set_epsilon(0.05);
    }

    // Streaming round loop. Everything below speaks the submit/callback
    // protocol; under the classic runtimes submit_round completes (and
    // its callback fires) inline, so depth_limit 1 reproduces the old
    // blocking loop exactly. Under the pipelined ps runtime up to
    // pipeline_depth rounds stay in flight: the scheduler selects and
    // submits round t+1 while round t is still draining, and observes
    // each round's outcome — evaluated concurrently from the round's
    // final store snapshot — with a lag of up to depth rounds.
    const int depth_limit =
        fl.pipelined() ? std::max(1, cfg.pipeline_depth) : 1;

    // Scheduling context retained until the round's result arrives.
    struct InFlight
    {
        int round = 0;
        RoundExec exec;
        std::vector<ParticipantPlan> plans;
    };
    std::deque<InFlight> inflight;

    std::mutex res_mu;
    std::condition_variable res_cv;
    std::deque<PsRoundResult> arrived;
    auto on_result = [&](const PsRoundResult &r) {
        std::lock_guard<std::mutex> lk(res_mu);
        arrived.push_back(r);
        res_cv.notify_one();
    };

    // Windowed runtime statistics: S_Stale buckets from the sliding
    // mean, so one odd round cannot flip the scheduler's state while a
    // sustained shift shows up within a window.
    SlidingWindow stale_window(
        static_cast<size_t>(std::max(1, cfg.staleness_window)));

    bool stop = false;
    auto process_one = [&]() {
        PsRoundResult r;
        {
            std::unique_lock<std::mutex> lk(res_mu);
            res_cv.wait(lk, [&] { return !arrived.empty(); });
            r = arrived.front();
            arrived.pop_front();
        }
        assert(!inflight.empty());
        InFlight ctx = std::move(inflight.front());
        inflight.pop_front();
        assert(static_cast<uint64_t>(ctx.round) == r.round);
        if (stop)
            return;  // Past the target: drain without recording.
        // Empty rounds (no participants) deliver accuracy -1 — there
        // is no new snapshot to score — so carry the last known value,
        // or evaluate the untouched initial model if nothing completed
        // yet.
        const double acc = r.accuracy >= 0.0 ? r.accuracy :
            res.rounds.empty() ? fl.evaluate() : res.final_accuracy;

        policy->observe_outcome(ctx.exec, acc * 100.0);
        stale_window.add(r.stats.mean_staleness);
        gobs.observed_staleness = stale_window.mean();

        RoundRecord rec;
        rec.round = ctx.round;
        rec.accuracy = acc;
        rec.round_s = ctx.exec.round_s;
        rec.energy_global_j = ctx.exec.energy_global_j();
        rec.energy_participants_j = ctx.exec.energy_participants_j;
        rec.work_flops = ctx.exec.work_flops;
        rec.included =
            ps_mode ? r.stats.applied : ctx.exec.included_count();
        rec.evicted = r.stats.evicted;
        rec.mean_staleness = r.stats.mean_staleness;
        rec.window_staleness = stale_window.mean();
        count_selection(fleet, ctx.plans, rec);
        if (auto *afl = dynamic_cast<AutoFlPolicy *>(policy.get()))
            rec.mean_reward = afl->scheduler().last_mean_reward();
        res.rounds.push_back(rec);

        res.total_time_s += ctx.exec.round_s;
        res.total_energy_j += ctx.exec.energy_global_j();
        res.total_work_flops += ctx.exec.work_flops;
        res.participant_energy_j += ctx.exec.energy_participants_j;
        res.final_accuracy = acc;

        if (res.rounds_to_target < 0 && acc >= target) {
            res.rounds_to_target = ctx.round + 1;
            res.time_to_target_s = res.total_time_s;
            res.energy_to_target_j = res.total_energy_j;
            stop = true;  // Converged: drain the pipeline and finish.
        }
    };

    // A resumed run continues the round sequence where the artifact
    // left off: round indices drive the per-round client RNG and the
    // fleet simulation, so keeping them global (not restarting at 0)
    // is what makes the continuation match the uninterrupted run.
    const int start_round =
        fl.resumed() ? static_cast<int>(fl.resume_round()) + 1 : 0;

    for (int round = start_round; round < cfg.max_rounds && !stop;
         ++round) {
        fleet.begin_round();

        std::vector<LocalObservation> locals(
            static_cast<size_t>(fleet.size()));
        for (int d = 0; d < fleet.size(); ++d) {
            auto &l = locals[static_cast<size_t>(d)];
            l.state = fleet.device(d).state();
            l.data_classes = fl.classes_on_device(d);
            l.total_classes = total_classes;
        }

        auto plans = policy->select(gobs, locals, params.k);

        std::vector<ComputeProfile> profiles;
        profiles.reserve(plans.size());
        for (const auto &p : plans) {
            ComputeProfile prof;
            prof.train_flops = static_cast<double>(params.epochs) *
                static_cast<double>(fl.shard(p.device_id).size()) *
                gobs.profile.flops_per_sample * kTrainFlopFactor;
            prof.mem_bound_frac = mem_frac;
            prof.payload_bytes = gobs.profile.model_bytes;
            prof.batch_size = params.batch_size;
            if (cfg.compression.enabled()) {
                // Uplink shrinks to the codec's encoded delta size;
                // the downlink stays the full f32 model.
                prof.uplink_bytes =
                    static_cast<double>(encoded_delta_bytes(
                        cfg.compression,
                        static_cast<size_t>(gobs.profile.model_bytes /
                                            4.0)));
            }
            profiles.push_back(prof);
        }

        RoundExec exec = simulate_round(fleet, plans, profiles, round_sim);

        // Synchronous runtime: train only the participants whose
        // gradients survive the deadline; dropped stragglers burn
        // energy but contribute nothing (which is what hurts baseline
        // accuracy). Ps runtime: every participant trains, submitted in
        // simulated completion order so simulated stragglers arrive
        // last and are the ones the staleness machinery damps.
        std::vector<int> round_ids;
        if (ps_mode) {
            std::vector<DeviceExec> ordered = exec.participants;
            std::stable_sort(ordered.begin(), ordered.end(),
                             [](const DeviceExec &a, const DeviceExec &b) {
                                 return a.completion_s() < b.completion_s();
                             });
            for (const auto &e : ordered)
                round_ids.push_back(e.device_id);
        } else {
            for (const auto &e : exec.participants)
                if (e.included)
                    round_ids.push_back(e.device_id);
        }

        inflight.push_back(InFlight{round, exec, std::move(plans)});
        fl.submit_round(round_ids, static_cast<uint64_t>(round), on_result);

        while (static_cast<int>(inflight.size()) >= depth_limit)
            process_one();
    }
    while (!inflight.empty())
        process_one();
    fl.drain();
    // A resume so late that no rounds remain still reports the
    // restored model's real accuracy, not the 0.0 default.
    if (res.rounds.empty())
        res.final_accuracy = fl.evaluate();
    return res;
}

std::vector<ExperimentResult>
run_sync_mode_sweep(const ExperimentConfig &cfg,
                    const std::vector<SyncModeScenario> &scenarios)
{
    std::vector<ExperimentResult> results;
    results.reserve(scenarios.size());
    for (const auto &sc : scenarios) {
        ExperimentConfig run_cfg = cfg;
        run_cfg.sync_mode = sc.mode;
        run_cfg.staleness_bound = sc.staleness_bound;
        ExperimentResult res = run_experiment(run_cfg);
        res.policy_name += "/" + sync_mode_name(sc.mode);
        if (sc.mode == SyncMode::SemiAsync)
            res.policy_name += "-" + std::to_string(sc.staleness_bound);
        if (sc.mode != SyncMode::Sync && run_cfg.pipeline_depth > 1)
            res.policy_name += "-p" + std::to_string(run_cfg.pipeline_depth);
        results.push_back(std::move(res));
    }
    return results;
}

ExperimentResult
run_characterization(const ExperimentConfig &cfg, int rounds)
{
    const FlGlobalParams params = global_params_for(cfg.setting);
    Fleet fleet(cfg.fleet_mix, cfg.variance, cfg.seed * 13 + 5);
    auto policy = build_policy(cfg, fleet, nullptr);

    GlobalObservation gobs;
    gobs.profile = model_profile(cfg.workload);
    gobs.params = params;

    int train_samples = 0, test_samples = 0;
    default_data_sizes(cfg.workload, train_samples, test_samples);
    if (cfg.train_samples > 0)
        train_samples = cfg.train_samples;
    const int quota = std::max(1, train_samples / fleet.size());

    const double mem_frac = gobs.profile.mem_bound_frac;
    const int total_classes = model_num_classes(cfg.workload);

    ExperimentResult res;
    res.policy_name = policy->name();

    for (int round = 0; round < rounds; ++round) {
        fleet.begin_round();
        std::vector<LocalObservation> locals(
            static_cast<size_t>(fleet.size()));
        for (int d = 0; d < fleet.size(); ++d) {
            auto &l = locals[static_cast<size_t>(d)];
            l.state = fleet.device(d).state();
            l.data_classes = total_classes;
            l.total_classes = total_classes;
        }
        auto plans = policy->select(gobs, locals, params.k);

        std::vector<ComputeProfile> profiles;
        profiles.reserve(plans.size());
        for (size_t i = 0; i < plans.size(); ++i) {
            ComputeProfile prof;
            prof.train_flops = static_cast<double>(params.epochs) * quota *
                gobs.profile.flops_per_sample * kTrainFlopFactor;
            prof.mem_bound_frac = mem_frac;
            prof.payload_bytes = gobs.profile.model_bytes;
            prof.batch_size = params.batch_size;
            if (cfg.compression.enabled()) {
                // Uplink shrinks to the codec's encoded delta size;
                // the downlink stays the full f32 model.
                prof.uplink_bytes =
                    static_cast<double>(encoded_delta_bytes(
                        cfg.compression,
                        static_cast<size_t>(gobs.profile.model_bytes /
                                            4.0)));
            }
            profiles.push_back(prof);
        }
        RoundExec exec = simulate_round(fleet, plans, profiles,
                                        cfg.round_sim);

        RoundRecord rec;
        rec.round = round;
        rec.round_s = exec.round_s;
        rec.energy_global_j = exec.energy_global_j();
        rec.energy_participants_j = exec.energy_participants_j;
        rec.work_flops = exec.work_flops;
        rec.included = exec.included_count();
        count_selection(fleet, plans, rec);
        res.rounds.push_back(rec);

        res.total_time_s += exec.round_s;
        res.total_energy_j += exec.energy_global_j();
        res.total_work_flops += exec.work_flops;
        res.participant_energy_j += exec.energy_participants_j;
    }
    return res;
}

} // namespace autofl
