#include "stats.h"

#include <algorithm>
#include <cmath>

namespace autofl {

void
RunningStat::add(double x)
{
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    sum_ += x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    double delta = other.mean_ - mean_;
    size_t total = n_ + other.n_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
        static_cast<double>(other.n_) / static_cast<double>(total);
    mean_ = (mean_ * static_cast<double>(n_) +
             other.mean_ * static_cast<double>(other.n_)) /
        static_cast<double>(total);
    n_ = total;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
Ewma::add(double x)
{
    if (!initialized_) {
        value_ = x;
        initialized_ = true;
    } else {
        value_ = alpha_ * x + (1.0 - alpha_) * value_;
    }
    return value_;
}

double
percentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    if (p <= 0.0)
        return values.front();
    if (p >= 100.0)
        return values.back();
    double rank = p / 100.0 * static_cast<double>(values.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= values.size())
        return values.back();
    return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

double
mean_of(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double s = 0.0;
    for (double v : values)
        s += v;
    return s / static_cast<double>(values.size());
}

SlidingWindow::SlidingWindow(size_t capacity)
    : ring_(std::max<size_t>(1, capacity), 0.0)
{
}

void
SlidingWindow::add(double x)
{
    ring_[next_] = x;
    next_ = (next_ + 1) % ring_.size();
    count_ = std::min(count_ + 1, ring_.size());
}

double
SlidingWindow::mean() const
{
    if (count_ == 0)
        return 0.0;
    double s = 0.0;
    for (size_t i = 0; i < count_; ++i)
        s += ring_[i];
    return s / static_cast<double>(count_);
}

double
geomean_of(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace autofl
