/**
 * @file
 * Plain-text table and CSV emitters used by the bench binaries to print
 * the paper-shaped result rows/series.
 */
#ifndef AUTOFL_UTIL_TABLE_H
#define AUTOFL_UTIL_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace autofl {

/**
 * Column-aligned text table. Cells are strings; numeric helpers format
 * with a fixed precision. Rendering pads every column to its widest cell.
 */
class TextTable
{
  public:
    /** Set the header row. */
    void set_header(std::vector<std::string> header);

    /** Append a row of pre-formatted cells. */
    void add_row(std::vector<std::string> row);

    /** Format a double with @p precision decimal places. */
    static std::string num(double v, int precision = 2);

    /** Render to a stream with column alignment and a separator rule. */
    void render(std::ostream &os) const;

    /** Render to a CSV string (no padding, comma separated). */
    std::string to_csv() const;

    /** Number of data rows. */
    size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print a section banner ("== title ==") to the stream. */
void print_banner(std::ostream &os, const std::string &title);

} // namespace autofl

#endif // AUTOFL_UTIL_TABLE_H
