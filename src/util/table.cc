#include "table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace autofl {

void
TextTable::set_header(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::add_row(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

std::string
TextTable::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

void
TextTable::render(std::ostream &os) const
{
    size_t cols = header_.size();
    for (const auto &r : rows_)
        cols = std::max(cols, r.size());
    std::vector<size_t> width(cols, 0);
    auto widen = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    };
    widen(header_);
    for (const auto &r : rows_)
        widen(r);

    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < cols; ++c) {
            const std::string cell = c < row.size() ? row[c] : "";
            os << std::left << std::setw(static_cast<int>(width[c]) + 2) << cell;
        }
        os << "\n";
    };
    emit(header_);
    size_t rule = 0;
    for (size_t c = 0; c < cols; ++c)
        rule += width[c] + 2;
    os << std::string(rule, '-') << "\n";
    for (const auto &r : rows_)
        emit(r);
}

std::string
TextTable::to_csv() const
{
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ",";
            os << row[c];
        }
        os << "\n";
    };
    emit(header_);
    for (const auto &r : rows_)
        emit(r);
    return os.str();
}

void
print_banner(std::ostream &os, const std::string &title)
{
    os << "\n== " << title << " ==\n";
}

} // namespace autofl
