/**
 * @file
 * Streaming statistics accumulators used by the experiment harness and
 * the bench reporters.
 */
#ifndef AUTOFL_UTIL_STATS_H
#define AUTOFL_UTIL_STATS_H

#include <cstddef>
#include <limits>
#include <vector>

namespace autofl {

/**
 * Welford-style running mean/variance accumulator with min/max tracking.
 */
class RunningStat
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const RunningStat &other);

    /** Number of observations. */
    size_t count() const { return n_; }

    /** Arithmetic mean (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Unbiased sample variance (0 when fewer than two samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Minimum observation (+inf when empty). */
    double min() const { return min_; }

    /** Maximum observation (-inf when empty). */
    double max() const { return max_; }

    /** Sum of all observations. */
    double sum() const { return sum_; }

  private:
    size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Exponentially weighted moving average, used for reward smoothing in the
 * RL convergence bench (Fig. 15).
 */
class Ewma
{
  public:
    /** @param alpha Smoothing factor in (0, 1]; larger tracks faster. */
    explicit Ewma(double alpha = 0.2) : alpha_(alpha) {}

    /** Feed one observation; returns the updated average. */
    double add(double x);

    /** Current average (0 before any observation). */
    double value() const { return value_; }

    /** Whether any observation has been fed. */
    bool initialized() const { return initialized_; }

  private:
    double alpha_;
    double value_ = 0.0;
    bool initialized_ = false;
};

/**
 * Fixed-capacity sliding-window mean. The experiment harness feeds it
 * per-round runtime observations (mean update staleness, round time) so
 * the scheduler's state reflects the last few rounds of a streaming
 * pipeline rather than one noisy round or the whole run.
 */
class SlidingWindow
{
  public:
    /** @param capacity Window length; clamped to at least 1. */
    explicit SlidingWindow(size_t capacity = 8);

    /** Add one observation, evicting the oldest beyond capacity. */
    void add(double x);

    /** Mean of the windowed observations (0 when empty). */
    double mean() const;

    /** Observations currently in the window. */
    size_t count() const { return count_; }

    /** Window length. */
    size_t capacity() const { return ring_.size(); }

  private:
    std::vector<double> ring_;
    size_t next_ = 0;
    size_t count_ = 0;
};

/** Linear-interpolation percentile of a sample (p in [0, 100]). */
double percentile(std::vector<double> values, double p);

/** Arithmetic mean of a sample (0 when empty). */
double mean_of(const std::vector<double> &values);

/** Geometric mean of strictly positive values (0 when empty). */
double geomean_of(const std::vector<double> &values);

} // namespace autofl

#endif // AUTOFL_UTIL_STATS_H
