/**
 * @file
 * Deterministic random number generation for the AutoFL simulator.
 *
 * Every stochastic component in the repository (data synthesis, Dirichlet
 * partitioning, interference traces, network bandwidth, epsilon-greedy
 * exploration) draws from an explicitly seeded Rng instance so that all
 * experiments are reproducible bit-for-bit.
 */
#ifndef AUTOFL_UTIL_RNG_H
#define AUTOFL_UTIL_RNG_H

#include <algorithm>
#include <cstdint>
#include <vector>

namespace autofl {

/**
 * Xoshiro256** PRNG seeded through SplitMix64.
 *
 * Satisfies the UniformRandomBitGenerator concept so it can also be used
 * with <random> distributions, but provides the handful of distributions
 * the simulator needs directly to avoid libstdc++ implementation drift.
 */
class Rng
{
  public:
    using result_type = uint64_t;

    /** Construct from a 64-bit seed. Identical seeds yield identical streams. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Derive an independent child stream (for per-device RNGs). */
    Rng fork(uint64_t stream_id);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    /** Next raw 64-bit value. */
    result_type operator()();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    int64_t randint(int64_t lo, int64_t hi);

    /** Standard normal via Box-Muller. */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Bernoulli trial with probability p of returning true. */
    bool bernoulli(double p);

    /** Gamma(shape, 1) sample (Marsaglia-Tsang); shape > 0. */
    double gamma(double shape);

    /**
     * Dirichlet sample with symmetric concentration alpha over k classes.
     * Smaller alpha concentrates mass on fewer classes (paper uses 0.1).
     */
    std::vector<double> dirichlet(double alpha, int k);

    /** Sample an index in [0, weights.size()) proportionally to weights. */
    int categorical(const std::vector<double> &weights);

    /** One SplitMix64 step: advances @p x and returns the mixed output. */
    static uint64_t splitmix64(uint64_t &x);

    /** Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            size_t j = static_cast<size_t>(randint(0, static_cast<int64_t>(i) - 1));
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    uint64_t s_[4];
    bool have_cached_normal_ = false;
    double cached_normal_ = 0.0;
};

/**
 * Seed for one client's local-training stream, derived only from the
 * job identity (global seed, device id, round) — never from the worker
 * thread that happens to run the job — so serial, parallel and
 * parameter-server executions of the same round produce identical
 * weights. Each component passes through a SplitMix64 stage, so streams
 * across devices and rounds are decorrelated.
 */
uint64_t client_seed(uint64_t global_seed, int device_id, uint64_t round);

/** Rng seeded with client_seed(). */
inline Rng
client_rng(uint64_t global_seed, int device_id, uint64_t round)
{
    return Rng(client_seed(global_seed, device_id, round));
}

} // namespace autofl

#endif // AUTOFL_UTIL_RNG_H
