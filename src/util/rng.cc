#include "rng.h"

#include <cassert>
#include <cmath>

namespace autofl {

namespace {

inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

uint64_t
Rng::splitmix64(uint64_t &x)
{
    uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed)
{
    uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

Rng
Rng::fork(uint64_t stream_id)
{
    // Mix the stream id into a fresh seed drawn from this stream so that
    // child streams are decorrelated from each other and from the parent.
    uint64_t mixed = (*this)() ^ (stream_id * 0x9e3779b97f4a7c15ULL + 0x7f4a7c15ULL);
    return Rng(mixed);
}

Rng::result_type
Rng::operator()()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53-bit mantissa of a uniform double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

int64_t
Rng::randint(int64_t lo, int64_t hi)
{
    assert(lo <= hi);
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    // Rejection sampling to avoid modulo bias.
    uint64_t limit = (~0ULL) - ((~0ULL) % span);
    uint64_t r;
    do {
        r = (*this)();
    } while (span != 0 && r >= limit && limit != 0);
    return lo + static_cast<int64_t>(span == 0 ? r : r % span);
}

double
Rng::normal()
{
    if (have_cached_normal_) {
        have_cached_normal_ = false;
        return cached_normal_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300)
        u1 = uniform();
    double u2 = uniform();
    double mag = std::sqrt(-2.0 * std::log(u1));
    cached_normal_ = mag * std::sin(2.0 * M_PI * u2);
    have_cached_normal_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

double
Rng::gamma(double shape)
{
    assert(shape > 0.0);
    if (shape < 1.0) {
        // Boost to shape >= 1 then apply the standard correction.
        double u = 0.0;
        while (u <= 1e-300)
            u = uniform();
        return gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
    }
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
        double x = normal();
        double v = 1.0 + c * x;
        if (v <= 0.0)
            continue;
        v = v * v * v;
        double u = uniform();
        if (u < 1.0 - 0.0331 * x * x * x * x)
            return d * v;
        if (u > 1e-300 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
            return d * v;
    }
}

std::vector<double>
Rng::dirichlet(double alpha, int k)
{
    assert(k > 0);
    std::vector<double> out(static_cast<size_t>(k));
    double sum = 0.0;
    for (auto &v : out) {
        v = gamma(alpha);
        sum += v;
    }
    if (sum <= 0.0) {
        // Degenerate draw (all gammas underflowed); fall back to one-hot.
        out.assign(out.size(), 0.0);
        out[static_cast<size_t>(randint(0, k - 1))] = 1.0;
        return out;
    }
    for (auto &v : out)
        v /= sum;
    return out;
}

uint64_t
client_seed(uint64_t global_seed, int device_id, uint64_t round)
{
    // Chain each identity component through a SplitMix64 stage; the
    // stages are bijective, so distinct (seed, device, round) triples
    // cannot collide by construction of the chain inputs alone.
    uint64_t x = global_seed;
    uint64_t h = Rng::splitmix64(x);
    x = h ^ (static_cast<uint64_t>(static_cast<uint32_t>(device_id)) *
             0x9e3779b97f4a7c15ULL);
    h = Rng::splitmix64(x);
    x = h ^ (round * 0xbf58476d1ce4e5b9ULL);
    return Rng::splitmix64(x);
}

int
Rng::categorical(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights)
        total += w;
    double r = uniform() * total;
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (r < acc)
            return static_cast<int>(i);
    }
    return static_cast<int>(weights.size()) - 1;
}

} // namespace autofl
