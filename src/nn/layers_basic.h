/**
 * @file
 * Parameter-free layers: ReLU, MaxPool2D, GlobalAvgPool and Flatten.
 */
#ifndef AUTOFL_NN_LAYERS_BASIC_H
#define AUTOFL_NN_LAYERS_BASIC_H

#include "nn/layer.h"

namespace autofl {

/** Elementwise rectified linear unit (applied in place on the input). */
class ReLU : public Layer
{
  public:
    Tensor forward(Tensor x) override;
    Tensor infer(Tensor x) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<int> output_shape(const std::vector<int> &in) const override;
    double flops_per_sample(const std::vector<int> &in) const override;
    std::string name() const override { return "ReLU"; }

  private:
    std::vector<uint8_t> mask_;
};

/** Max pooling over {batch, channels, h, w} with square window. */
class MaxPool2D : public Layer
{
  public:
    /** @param k Window size. @param stride Stride (defaults to k). */
    explicit MaxPool2D(int k, int stride = 0);

    Tensor forward(Tensor x) override;
    Tensor infer(Tensor x) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<int> output_shape(const std::vector<int> &in) const override;
    double flops_per_sample(const std::vector<int> &in) const override;
    std::string name() const override;

  private:
    int k_, stride_;
    std::vector<int> in_shape_;
    std::vector<size_t> argmax_;

    int out_size(int s) const { return (s - k_) / stride_ + 1; }

    /**
     * Shared window-max body of forward() and infer(); records winner
     * indices into @p argmax when non-null (backward needs them).
     */
    Tensor pool(const Tensor &x, size_t *argmax) const;
};

/** Global average pool: {b, c, h, w} -> {b, c}. */
class GlobalAvgPool : public Layer
{
  public:
    Tensor forward(Tensor x) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<int> output_shape(const std::vector<int> &in) const override;
    double flops_per_sample(const std::vector<int> &in) const override;
    std::string name() const override { return "GlobalAvgPool"; }

  private:
    std::vector<int> in_shape_;
};

/** Flatten all dims after the batch dim: {b, ...} -> {b, prod(...)}. */
class Flatten : public Layer
{
  public:
    Tensor forward(Tensor x) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<int> output_shape(const std::vector<int> &in) const override;
    double flops_per_sample(const std::vector<int> &in) const override;
    std::string name() const override { return "Flatten"; }

  private:
    std::vector<int> in_shape_;
};

} // namespace autofl

#endif // AUTOFL_NN_LAYERS_BASIC_H
