#include "conv2d.h"

#include <cmath>
#include <sstream>

namespace autofl {

Conv2D::Conv2D(int in_ch, int out_ch, int kernel, int stride, int pad,
               int groups)
    : in_ch_(in_ch), out_ch_(out_ch), k_(kernel), stride_(stride), pad_(pad),
      groups_(groups),
      w_({out_ch, in_ch / groups, kernel, kernel}),
      b_({out_ch}),
      dw_({out_ch, in_ch / groups, kernel, kernel}),
      db_({out_ch})
{
    assert(in_ch_ % groups_ == 0 && out_ch_ % groups_ == 0);
}

void
Conv2D::init_weights(Rng &rng)
{
    // He-normal: suits the ReLU activations that follow every conv.
    const int fan_in = (in_ch_ / groups_) * k_ * k_;
    const float std = std::sqrt(2.0f / static_cast<float>(fan_in));
    for (size_t i = 0; i < w_.size(); ++i)
        w_[i] = static_cast<float>(rng.normal(0.0, std));
    b_.fill(0.0f);
}

Tensor
Conv2D::forward(const Tensor &x)
{
    assert(x.rank() == 4 && x.dim(1) == in_ch_);
    x_cache_ = x;
    const int batch = x.dim(0), ih = x.dim(2), iw = x.dim(3);
    const int oh = out_size(ih), ow = out_size(iw);
    const int icg = in_ch_ / groups_, ocg = out_ch_ / groups_;
    Tensor y({batch, out_ch_, oh, ow});

    for (int n = 0; n < batch; ++n) {
        for (int g = 0; g < groups_; ++g) {
            for (int ocl = 0; ocl < ocg; ++ocl) {
                const int oc = g * ocg + ocl;
                for (int oy = 0; oy < oh; ++oy) {
                    for (int ox = 0; ox < ow; ++ox) {
                        float acc = b_[static_cast<size_t>(oc)];
                        for (int icl = 0; icl < icg; ++icl) {
                            const int ic = g * icg + icl;
                            for (int ky = 0; ky < k_; ++ky) {
                                const int y_in = oy * stride_ + ky - pad_;
                                if (y_in < 0 || y_in >= ih)
                                    continue;
                                for (int kx = 0; kx < k_; ++kx) {
                                    const int x_in = ox * stride_ + kx - pad_;
                                    if (x_in < 0 || x_in >= iw)
                                        continue;
                                    acc += x.at4(n, ic, y_in, x_in) *
                                        w_.at4(oc, icl, ky, kx);
                                }
                            }
                        }
                        y.at4(n, oc, oy, ox) = acc;
                    }
                }
            }
        }
    }
    return y;
}

Tensor
Conv2D::backward(const Tensor &grad_out)
{
    const Tensor &x = x_cache_;
    const int batch = x.dim(0), ih = x.dim(2), iw = x.dim(3);
    const int oh = out_size(ih), ow = out_size(iw);
    const int icg = in_ch_ / groups_, ocg = out_ch_ / groups_;
    assert(grad_out.dim(1) == out_ch_ && grad_out.dim(2) == oh &&
           grad_out.dim(3) == ow);
    Tensor dx({batch, in_ch_, ih, iw});

    for (int n = 0; n < batch; ++n) {
        for (int g = 0; g < groups_; ++g) {
            for (int ocl = 0; ocl < ocg; ++ocl) {
                const int oc = g * ocg + ocl;
                for (int oy = 0; oy < oh; ++oy) {
                    for (int ox = 0; ox < ow; ++ox) {
                        const float go = grad_out.at4(n, oc, oy, ox);
                        if (go == 0.0f)
                            continue;
                        db_[static_cast<size_t>(oc)] += go;
                        for (int icl = 0; icl < icg; ++icl) {
                            const int ic = g * icg + icl;
                            for (int ky = 0; ky < k_; ++ky) {
                                const int y_in = oy * stride_ + ky - pad_;
                                if (y_in < 0 || y_in >= ih)
                                    continue;
                                for (int kx = 0; kx < k_; ++kx) {
                                    const int x_in = ox * stride_ + kx - pad_;
                                    if (x_in < 0 || x_in >= iw)
                                        continue;
                                    dw_.at4(oc, icl, ky, kx) +=
                                        go * x.at4(n, ic, y_in, x_in);
                                    dx.at4(n, ic, y_in, x_in) +=
                                        go * w_.at4(oc, icl, ky, kx);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    return dx;
}

std::vector<int>
Conv2D::output_shape(const std::vector<int> &in) const
{
    assert(in.size() == 4 && in[1] == in_ch_);
    return {in[0], out_ch_, out_size(in[2]), out_size(in[3])};
}

double
Conv2D::flops_per_sample(const std::vector<int> &in) const
{
    const int oh = out_size(in[2]), ow = out_size(in[3]);
    const double macs = static_cast<double>(out_ch_) * oh * ow *
        (in_ch_ / groups_) * k_ * k_;
    return 2.0 * macs;
}

std::string
Conv2D::name() const
{
    std::ostringstream os;
    os << "Conv2D(" << in_ch_ << "->" << out_ch_ << ", k=" << k_
       << ", s=" << stride_ << ", p=" << pad_ << ", g=" << groups_ << ")";
    return os.str();
}

} // namespace autofl
