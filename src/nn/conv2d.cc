#include "conv2d.h"

#include <cmath>
#include <cstring>
#include <sstream>

#include "kernels/kernels.h"

namespace autofl {

Conv2D::Conv2D(int in_ch, int out_ch, int kernel, int stride, int pad,
               int groups)
    : in_ch_(in_ch), out_ch_(out_ch), k_(kernel), stride_(stride), pad_(pad),
      groups_(groups),
      w_({out_ch, in_ch / groups, kernel, kernel}),
      b_({out_ch}),
      dw_({out_ch, in_ch / groups, kernel, kernel}),
      db_({out_ch})
{
    assert(in_ch_ % groups_ == 0 && out_ch_ % groups_ == 0);
}

void
Conv2D::init_weights(Rng &rng)
{
    // He-normal: suits the ReLU activations that follow every conv.
    const int fan_in = (in_ch_ / groups_) * k_ * k_;
    const float std = std::sqrt(2.0f / static_cast<float>(fan_in));
    for (size_t i = 0; i < w_.size(); ++i)
        w_[i] = static_cast<float>(rng.normal(0.0, std));
    b_.fill(0.0f);
}

Tensor
Conv2D::forward(Tensor x)
{
    assert(x.rank() == 4 && x.dim(1) == in_ch_);
    x_cache_ = std::move(x);  // Backward re-unfolds the input for dW.
    return convolve(x_cache_);
}

Tensor
Conv2D::infer(Tensor x)
{
    assert(x.rank() == 4 && x.dim(1) == in_ch_);
    const int batch = x.dim(0);
    // Grouped (depthwise) convolutions stay per-sample: their GEMMs
    // are so small (depthwise M = 1, K = k*k) that gathering a wide
    // column buffer costs more than the GEMM saves. Pointwise convs
    // skip the wide gather too: convolve() needs no unfold for them
    // and packs W's panels once for the whole batch, so the gather
    // and the output un-scatter would add the only copies in the
    // pipeline (the MobileNet batched-throughput regression came from
    // exactly those copies).
    if (batch == 1 || groups_ > 1 || pointwise())
        return convolve(x);

    // Batched inference (ungrouped, non-pointwise by the guard above):
    // gather every sample's columns into one wide
    // {patch, batch * ospatial} buffer and convolve the whole batch
    // with a single GEMM — batch tiny per-sample GEMMs become one call
    // with a wide N. Each output element is still the same ascending-k
    // dot product on top of the pre-filled bias, so the result is
    // bit-identical to the per-sample path on the scalar arch.
    const int ih = x.dim(2), iw = x.dim(3);
    const int oh = out_size(ih), ow = out_size(iw);
    const int patch = in_ch_ * k_ * k_;
    const int ospatial = oh * ow;
    const size_t cols = static_cast<size_t>(batch) * ospatial;
    const size_t row_bytes = sizeof(float) * static_cast<size_t>(ospatial);
    Tensor y({batch, out_ch_, oh, ow});

    col_.resize(static_cast<size_t>(patch) * ospatial);
    colw_.resize(static_cast<size_t>(patch) * cols);
    outw_.resize(static_cast<size_t>(out_ch_) * cols);

    for (int n = 0; n < batch; ++n) {
        const float *xn = x.data() +
            static_cast<size_t>(n) * in_ch_ * ih * iw;
        kernels::im2col(xn, in_ch_, ih, iw, k_, stride_, pad_,
                        col_.data());
        for (int r = 0; r < patch; ++r) {
            std::memcpy(colw_.data() + static_cast<size_t>(r) * cols +
                            static_cast<size_t>(n) * ospatial,
                        col_.data() + static_cast<size_t>(r) * ospatial,
                        row_bytes);
        }
    }
    for (int oc = 0; oc < out_ch_; ++oc) {
        const float bias = b_[static_cast<size_t>(oc)];
        float *orow = outw_.data() + static_cast<size_t>(oc) * cols;
        for (size_t i = 0; i < cols; ++i)
            orow[i] = bias;
    }
    kernels::gemm(out_ch_, static_cast<int>(cols), patch, w_.data(), patch,
                  colw_.data(), static_cast<int>(cols), outw_.data(),
                  static_cast<int>(cols), /*accumulate=*/true);
    for (int n = 0; n < batch; ++n) {
        for (int oc = 0; oc < out_ch_; ++oc) {
            std::memcpy(y.data() +
                            (static_cast<size_t>(n) * out_ch_ + oc) *
                                ospatial,
                        outw_.data() + static_cast<size_t>(oc) * cols +
                            static_cast<size_t>(n) * ospatial,
                        row_bytes);
        }
    }
    return y;
}

Tensor
Conv2D::convolve(const Tensor &xin)
{
    const int batch = xin.dim(0), ih = xin.dim(2), iw = xin.dim(3);
    const int oh = out_size(ih), ow = out_size(iw);
    const int icg = in_ch_ / groups_, ocg = out_ch_ / groups_;
    const int patch = icg * k_ * k_;
    const int ospatial = oh * ow;
    Tensor y({batch, out_ch_, oh, ow});

    if (!pointwise())
        col_.resize(static_cast<size_t>(patch) * ospatial);

    // Ungrouped layers share one W across the whole batch: pack its
    // panels once and let every per-sample GEMM reuse them. Grouped
    // weights are per-group slices too small to pay for packing.
    kernels::PackedGemm wp;
    if (groups_ == 1)
        wp = kernels::pack_gemm_a(ocg, patch, w_.data(), patch);

    for (int n = 0; n < batch; ++n) {
        for (int g = 0; g < groups_; ++g) {
            const float *xg = xin.data() +
                (static_cast<size_t>(n) * in_ch_ + g * icg) * ih * iw;
            const float *col = xg;
            if (!pointwise()) {
                kernels::im2col(xg, icg, ih, iw, k_, stride_, pad_,
                                col_.data());
                col = col_.data();
            }
            // Pre-fill the output rows with the bias, then let the GEMM
            // accumulate on top: same bias-first reduction order as the
            // original direct loops.
            float *yg = y.data() +
                (static_cast<size_t>(n) * out_ch_ + g * ocg) * ospatial;
            for (int ocl = 0; ocl < ocg; ++ocl) {
                const float bias = b_[static_cast<size_t>(g * ocg + ocl)];
                float *yrow = yg + static_cast<size_t>(ocl) * ospatial;
                for (int i = 0; i < ospatial; ++i)
                    yrow[i] = bias;
            }
            if (groups_ == 1) {
                kernels::gemm_packed_a(wp, ospatial, col, ospatial, yg,
                                       ospatial, /*accumulate=*/true);
            } else {
                const float *wg =
                    w_.data() + static_cast<size_t>(g) * ocg * patch;
                kernels::gemm(ocg, ospatial, patch, wg, patch, col,
                              ospatial, yg, ospatial, /*accumulate=*/true);
            }
        }
    }
    return y;
}

Tensor
Conv2D::backward(const Tensor &grad_out)
{
    const Tensor &x = x_cache_;
    const int batch = x.dim(0), ih = x.dim(2), iw = x.dim(3);
    const int oh = out_size(ih), ow = out_size(iw);
    const int icg = in_ch_ / groups_, ocg = out_ch_ / groups_;
    const int patch = icg * k_ * k_;
    const int ospatial = oh * ow;
    assert(grad_out.dim(1) == out_ch_ && grad_out.dim(2) == oh &&
           grad_out.dim(3) == ow);
    Tensor dx({batch, in_ch_, ih, iw});

    if (!pointwise()) {
        col_.resize(static_cast<size_t>(patch) * ospatial);
        dcol_.resize(static_cast<size_t>(patch) * ospatial);
    }

    // The dcol GEMM multiplies W^T against every sample's dy: gather
    // the transposed panels once per backward call. (The dW gemm_nt has
    // no batch-constant operand — both dy and col change per sample.)
    kernels::PackedGemm wpt;
    if (groups_ == 1)
        wpt = kernels::pack_gemm_a(patch, ocg, w_.data(), patch,
                                   /*a_transposed=*/true);

    for (int n = 0; n < batch; ++n) {
        for (int g = 0; g < groups_; ++g) {
            const float *dyg = grad_out.data() +
                (static_cast<size_t>(n) * out_ch_ + g * ocg) * ospatial;
            // db: per-channel sums of the output gradient, accumulated
            // in ascending spatial order like the direct loops.
            for (int ocl = 0; ocl < ocg; ++ocl) {
                const float *dyrow =
                    dyg + static_cast<size_t>(ocl) * ospatial;
                float &db = db_[static_cast<size_t>(g * ocg + ocl)];
                for (int i = 0; i < ospatial; ++i)
                    db += dyrow[i];
            }
            const float *xg = x.data() +
                (static_cast<size_t>(n) * in_ch_ + g * icg) * ih * iw;
            const float *col = xg;
            if (!pointwise()) {
                kernels::im2col(xg, icg, ih, iw, k_, stride_, pad_,
                                col_.data());
                col = col_.data();
            }
            // dW_g += dy_g x col^T.
            float *dwg = dw_.data() + static_cast<size_t>(g) * ocg * patch;
            kernels::gemm_nt(ocg, patch, ospatial, dyg, ospatial, col,
                             ospatial, dwg, patch, /*accumulate=*/true);
            // dcol = W_g^T x dy_g, folded back into dx.
            const float *wg =
                w_.data() + static_cast<size_t>(g) * ocg * patch;
            float *dxg = dx.data() +
                (static_cast<size_t>(n) * in_ch_ + g * icg) * ih * iw;
            float *dcol = pointwise() ? dxg : dcol_.data();
            if (groups_ == 1)
                kernels::gemm_packed_a(wpt, ospatial, dyg, ospatial, dcol,
                                       ospatial);
            else
                kernels::gemm_tn(patch, ospatial, ocg, wg, patch, dyg,
                                 ospatial, dcol, ospatial);
            if (!pointwise())
                kernels::col2im_add(dcol_.data(), icg, ih, iw, k_, stride_,
                                    pad_, dxg);
        }
    }
    return dx;
}

std::vector<int>
Conv2D::output_shape(const std::vector<int> &in) const
{
    assert(in.size() == 4 && in[1] == in_ch_);
    return {in[0], out_ch_, out_size(in[2]), out_size(in[3])};
}

double
Conv2D::flops_per_sample(const std::vector<int> &in) const
{
    const int oh = out_size(in[2]), ow = out_size(in[3]);
    const double macs = static_cast<double>(out_ch_) * oh * ow *
        (in_ch_ / groups_) * k_ * k_;
    return 2.0 * macs;
}

std::string
Conv2D::name() const
{
    std::ostringstream os;
    os << "Conv2D(" << in_ch_ << "->" << out_ch_ << ", k=" << k_
       << ", s=" << stride_ << ", p=" << pad_ << ", g=" << groups_ << ")";
    return os.str();
}

} // namespace autofl
