/**
 * @file
 * Single-layer LSTM with manual backpropagation through time.
 *
 * Input shape is {time, batch, in}; the layer emits the final hidden state
 * {batch, hidden} (the next-character model reads only the last step, and
 * stacked LSTMs use return_sequences to pass the full {time, batch, hidden}
 * activation tensor to the next recurrent layer).
 *
 * Each timestep packs [x_t | h_{t-1}] into one {batch, in + hidden} row
 * block and runs a single fused GEMM against the stacked weight matrix
 * [Wx; Wh] {in + hidden, 4 * hidden} — all four gates, both input and
 * recurrent projections, one kernel call — followed by the fused gate
 * activation/cell-update kernel. Backward mirrors it: one gemm_tn per
 * step accumulates the packed weight gradient and one gemm_nt produces
 * [dx_t | dh_{t-1}] together.
 */
#ifndef AUTOFL_NN_LSTM_H
#define AUTOFL_NN_LSTM_H

#include "nn/layer.h"

namespace autofl {

/** LSTM layer (gate order: input, forget, cell, output). */
class Lstm : public Layer
{
  public:
    /**
     * @param in Input feature width.
     * @param hidden Hidden state width.
     * @param return_sequences When true, output is {time, batch, hidden};
     *        otherwise the final hidden state {batch, hidden}.
     */
    Lstm(int in, int hidden, bool return_sequences = false);

    Tensor forward(Tensor x) override;
    Tensor infer(Tensor x) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<Tensor *> params() override { return {&wx_, &wh_, &b_}; }
    std::vector<Tensor *> grads() override { return {&dwx_, &dwh_, &db_}; }
    void init_weights(Rng &rng) override;
    std::vector<int> output_shape(const std::vector<int> &in) const override;
    double flops_per_sample(const std::vector<int> &in) const override;
    LayerKind kind() const override { return LayerKind::Recurrent; }
    std::string name() const override;

  private:
    int in_, hidden_;
    bool return_sequences_;
    Tensor wx_;  ///< {in, 4*hidden}
    Tensor wh_;  ///< {hidden, 4*hidden}
    Tensor b_;   ///< {4*hidden}
    Tensor dwx_, dwh_, db_;

    // Packed [Wx; Wh] {in + hidden, 4*hidden}, rebuilt per forward from
    // the (externally updated) split parameter tensors.
    Tensor wcat_;
    Tensor h_last_;  ///< Final hidden state (the non-sequence output).

    // Forward caches for BPTT (one entry per timestep).
    std::vector<Tensor> xhs_;    ///< packed [x_t | h_{t-1}] {batch, in+hidden}
    std::vector<Tensor> cs_;     ///< cell states; cs_[0] is c_{-1} (zeros)
    std::vector<Tensor> gates_;  ///< post-activation gates {batch, 4*hidden}

    /** Rebuild wcat_ from wx_/wh_ (weights change between batches). */
    void pack_weights();
};

} // namespace autofl

#endif // AUTOFL_NN_LSTM_H
