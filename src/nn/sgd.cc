#include "sgd.h"

#include <cassert>

namespace autofl {

Sgd::Sgd(double lr, double momentum, double weight_decay)
    : lr_(lr), momentum_(momentum), weight_decay_(weight_decay)
{
}

void
Sgd::ensure_velocity(Sequential &model)
{
    if (momentum_ == 0.0)
        return;
    auto params = model.params();
    if (velocity_.size() == params.size())
        return;
    velocity_.clear();
    velocity_.reserve(params.size());
    for (Tensor *p : params)
        velocity_.emplace_back(p->size(), 0.0f);
}

void
Sgd::step(Sequential &model)
{
    ensure_velocity(model);
    auto params = model.params();
    auto grads = model.grads();
    assert(params.size() == grads.size());
    for (size_t pi = 0; pi < params.size(); ++pi) {
        Tensor &w = *params[pi];
        const Tensor &g = *grads[pi];
        assert(w.size() == g.size());
        for (size_t i = 0; i < w.size(); ++i) {
            float grad = g[i] + static_cast<float>(weight_decay_) * w[i];
            if (momentum_ != 0.0) {
                float &v = velocity_[pi][i];
                v = static_cast<float>(momentum_) * v + grad;
                grad = v;
            }
            w[i] -= static_cast<float>(lr_) * grad;
        }
    }
}

void
Sgd::step_prox(Sequential &model, const std::vector<float> &anchor, double mu)
{
    if (mu == 0.0) {
        step(model);
        return;
    }
    ensure_velocity(model);
    auto params = model.params();
    auto grads = model.grads();
    assert(params.size() == grads.size());
    size_t off = 0;
    for (size_t pi = 0; pi < params.size(); ++pi) {
        Tensor &w = *params[pi];
        const Tensor &g = *grads[pi];
        for (size_t i = 0; i < w.size(); ++i) {
            assert(off < anchor.size());
            float grad = g[i] + static_cast<float>(weight_decay_) * w[i] +
                static_cast<float>(mu) * (w[i] - anchor[off]);
            if (momentum_ != 0.0) {
                float &v = velocity_[pi][i];
                v = static_cast<float>(momentum_) * v + grad;
                grad = v;
            }
            w[i] -= static_cast<float>(lr_) * grad;
            ++off;
        }
    }
    assert(off == anchor.size());
}

void
Sgd::reset()
{
    velocity_.clear();
}

} // namespace autofl
