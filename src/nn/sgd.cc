#include "sgd.h"

#include <cassert>

#include "kernels/kernels.h"

namespace autofl {

Sgd::Sgd(double lr, double momentum, double weight_decay)
    : lr_(lr), momentum_(momentum), weight_decay_(weight_decay)
{
}

void
Sgd::ensure_velocity(Sequential &model)
{
    if (momentum_ == 0.0)
        return;
    auto params = model.params();
    if (velocity_.size() == params.size())
        return;
    velocity_.clear();
    velocity_.reserve(params.size());
    for (Tensor *p : params)
        velocity_.emplace_back(p->size(), 0.0f);
}

void
Sgd::step(Sequential &model)
{
    ensure_velocity(model);
    auto params = model.params();
    auto grads = model.grads();
    assert(params.size() == grads.size());
    for (size_t pi = 0; pi < params.size(); ++pi) {
        Tensor &w = *params[pi];
        const Tensor &g = *grads[pi];
        assert(w.size() == g.size());
        float *v = momentum_ != 0.0 ? velocity_[pi].data() : nullptr;
        kernels::sgd_step(w.size(), w.data(), g.data(), v,
                          static_cast<float>(lr_),
                          static_cast<float>(weight_decay_),
                          static_cast<float>(momentum_));
    }
}

void
Sgd::step_prox(Sequential &model, const std::vector<float> &anchor, double mu)
{
    if (mu == 0.0) {
        step(model);
        return;
    }
    ensure_velocity(model);
    auto params = model.params();
    auto grads = model.grads();
    assert(params.size() == grads.size());
    size_t off = 0;
    for (size_t pi = 0; pi < params.size(); ++pi) {
        Tensor &w = *params[pi];
        const Tensor &g = *grads[pi];
        assert(off + w.size() <= anchor.size());
        float *v = momentum_ != 0.0 ? velocity_[pi].data() : nullptr;
        kernels::sgd_step_prox(w.size(), w.data(), g.data(), v,
                               anchor.data() + off,
                               static_cast<float>(lr_),
                               static_cast<float>(weight_decay_),
                               static_cast<float>(momentum_),
                               static_cast<float>(mu));
        off += w.size();
    }
    assert(off == anchor.size());
}

void
Sgd::reset()
{
    velocity_.clear();
}

} // namespace autofl
